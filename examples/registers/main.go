// Registers demonstrates the register-file story that motivates
// clustering: schedule a register-hungry loop on a unified 16-wide
// machine and on a 4-cluster machine of the same width, then run stage
// scheduling and modulo-variable-expansion register allocation, and
// compare the size of the register file each design needs.
//
// Run with: go run ./examples/registers
package main

import (
	"fmt"
	"log"

	"clustersched"
)

// filterLoop is a 9-tap FIR-like body: many long-lived values (the tap
// products all feed one reduction tree), the classic register-pressure
// stress.
func filterLoop() *clustersched.Graph {
	g := clustersched.NewGraph()
	var products []int
	for tap := 0; tap < 9; tap++ {
		x := g.AddNode(clustersched.OpLoad, fmt.Sprintf("x[i+%d]", tap))
		p := g.AddNode(clustersched.OpFMul, fmt.Sprintf("c%d*x", tap))
		g.AddEdge(x, p, 0)
		products = append(products, p)
	}
	// Reduction tree.
	for len(products) > 1 {
		var next []int
		for i := 0; i+1 < len(products); i += 2 {
			s := g.AddNode(clustersched.OpFAdd, "")
			g.AddEdge(products[i], s, 0)
			g.AddEdge(products[i+1], s, 0)
			next = append(next, s)
		}
		if len(products)%2 == 1 {
			next = append(next, products[len(products)-1])
		}
		products = next
	}
	st := g.AddNode(clustersched.OpStore, "y[i]")
	g.AddEdge(products[0], st, 0)
	g.AddNode(clustersched.OpBranch, "loop")
	return g
}

func main() {
	g := filterLoop()
	fmt.Printf("9-tap filter loop: %d operations\n\n", g.NumNodes())
	fmt.Printf("%-26s %4s %8s %9s %9s %13s %5s\n",
		"machine", "II", "MaxLive", "regs", "regs+SS", "largest file", "MVE")

	machines := []*clustersched.Machine{
		clustersched.BusedGP(4, 4, 2).Unified(),
		clustersched.BusedGP(4, 4, 2),
	}
	for _, m := range machines {
		res, err := clustersched.Schedule(g, m)
		if err != nil {
			log.Fatal(err)
		}
		live, _ := res.MaxLive()
		before := res.Registers()

		moved := res.OptimizeStages()
		if err := res.Validate(); err != nil {
			log.Fatalf("invalid after stage scheduling: %v", err)
		}
		after := res.Registers()
		largest := 0
		for _, r := range after.RegsPerCluster {
			if r > largest {
				largest = r
			}
		}
		fmt.Printf("%-26s %4d %8d %9d %9d %13d %5d   (stage scheduler moved %d ops)\n",
			m.Name, res.II, live, before.TotalRegisters(), after.TotalRegisters(),
			largest, res.MVEFactor(), moved)
	}

	fmt.Println("\nThe clustered machine pays a few extra registers for copy")
	fmt.Println("lifetimes, but its largest single register file is less than half")
	fmt.Println("the unified machine's — and a register file's area grows")
	fmt.Println("quadratically with its port count, which is the paper's point.")
}
