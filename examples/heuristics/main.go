// Heuristics reproduces the paper's introductory example (Section 3,
// Figure 6) and then compares the four assignment variants of
// Figures 12/13 on a small loop sample, showing why recurrence-first
// ordering, copy prediction, and iterative repair matter.
//
// Run with: go run ./examples/heuristics
package main

import (
	"fmt"

	"clustersched"
)

func main() {
	introExample()
	variantComparison()
}

// introExample builds the Figure 6 graph: A->B->C->D->E->F with the
// loop-carried edge D->B closing the critical recurrence {B, C, D}.
// On a hypothetical machine of two single-unit clusters, a naive
// bottom-up assignment fails at the minimum II of 4, while the full
// heuristic hides all communication.
func introExample() {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpALU, "A")
	b := g.AddNode(clustersched.OpALU, "B")
	c := g.AddNode(clustersched.OpLoad, "C") // 2-cycle latency, as in the paper
	d := g.AddNode(clustersched.OpALU, "D")
	e := g.AddNode(clustersched.OpALU, "E")
	f := g.AddNode(clustersched.OpALU, "F")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, b, 1) // recurrence: RecMII = (1+2+1)/1 = 4
	g.AddEdge(d, e, 0)
	g.AddEdge(e, f, 0)

	intro := introMachine()

	fmt.Println("== paper Section 3 example ==")
	fmt.Printf("machine: %s, MII=%d\n", intro, clustersched.MII(g, intro))
	for _, v := range []clustersched.Variant{clustersched.Simple, clustersched.HeuristicIterative} {
		res, err := clustersched.Schedule(g, intro, clustersched.WithVariant(v))
		if err != nil {
			fmt.Printf("  %-20s no schedule: %v\n", v, err)
			continue
		}
		fmt.Printf("  %-20s II=%d copies=%d SCC{B,C,D} on clusters {%d,%d,%d}\n",
			v, res.II, res.Copies, res.ClusterOf[1], res.ClusterOf[2], res.ClusterOf[3])
	}
	fmt.Println()
}

func introMachine() *clustersched.Machine {
	// Two clusters of one GP unit each, two buses, one port per side —
	// the Section 3 target.
	m := clustersched.BusedGP(2, 2, 1)
	m.Name = "intro-2x1"
	for i := range m.Clusters {
		m.Clusters[i].FUs = m.Clusters[i].FUs[:1]
	}
	return m
}

// variantComparison runs the four algorithms over a sample of the
// synthetic suite on the four-cluster machine and prints how often
// each matches the unified machine's II (the paper's Figure 13).
func variantComparison() {
	loops := clustersched.GenerateSuite(1, 200)
	clustered := clustersched.BusedGP(4, 4, 2)
	unified := clustered.Unified()

	fmt.Println("== Figure 13 in miniature: 200 loops, 4 clusters x 4 GP, 4 buses, 2 ports ==")
	variants := []clustersched.Variant{
		clustersched.Simple,
		clustersched.SimpleIterative,
		clustersched.Heuristic,
		clustersched.HeuristicIterative,
	}
	for _, v := range variants {
		match, total := 0, 0
		for _, g := range loops {
			u, err := clustersched.Schedule(g, unified)
			if err != nil {
				continue
			}
			c, err := clustersched.Schedule(g, clustered, clustersched.WithVariant(v))
			if err != nil {
				continue
			}
			total++
			if c.II <= u.II {
				match++
			}
		}
		fmt.Printf("  %-20s matches unified II on %3d/%3d loops (%.1f%%)\n",
			v, match, total, 100*float64(match)/float64(total))
	}
}
