// Gridmachine schedules a Livermore-style hydro-fragment kernel onto
// the paper's four-cluster grid machine (Section 2.1, Figure 4): four
// clusters of three specialized units each, connected in a square by
// dedicated point-to-point links. Values needed two hops away must be
// forwarded through an intermediate cluster by chained copies — the
// assignment pass plans those chains and the example prints them.
//
// Run with: go run ./examples/gridmachine
package main

import (
	"fmt"
	"log"

	"clustersched"
)

// hydroKernel models Livermore kernel 1 (hydro fragment):
//
//	x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])
//
// plus a running checksum to give the grid something to forward.
func hydroKernel() *clustersched.Graph {
	g := clustersched.NewGraph()
	z10 := g.AddNode(clustersched.OpLoad, "z[k+10]")
	z11 := g.AddNode(clustersched.OpLoad, "z[k+11]")
	rz := g.AddNode(clustersched.OpFMul, "r*z10")
	tz := g.AddNode(clustersched.OpFMul, "t*z11")
	sum := g.AddNode(clustersched.OpFAdd, "rz+tz")
	y := g.AddNode(clustersched.OpLoad, "y[k]")
	ys := g.AddNode(clustersched.OpFMul, "y*sum")
	qx := g.AddNode(clustersched.OpFAdd, "q+ys")
	st := g.AddNode(clustersched.OpStore, "x[k]")
	chk := g.AddNode(clustersched.OpFAdd, "chk")
	br := g.AddNode(clustersched.OpBranch, "loop")

	g.AddEdge(z10, rz, 0)
	g.AddEdge(z11, tz, 0)
	g.AddEdge(rz, sum, 0)
	g.AddEdge(tz, sum, 0)
	g.AddEdge(y, ys, 0)
	g.AddEdge(sum, ys, 0)
	g.AddEdge(ys, qx, 0)
	g.AddEdge(qx, st, 0)
	g.AddEdge(qx, chk, 0)
	g.AddEdge(chk, chk, 1) // checksum recurrence
	_ = br
	return g
}

func main() {
	g := hydroKernel()
	grid := clustersched.Grid4(2)
	unified := grid.Unified()

	u, err := clustersched.Schedule(g, unified)
	if err != nil {
		log.Fatal(err)
	}
	c, err := clustersched.Schedule(g, grid)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		log.Fatalf("schedule failed validation: %v", err)
	}

	fmt.Printf("kernel on %s\n", grid)
	fmt.Printf("unified II=%d, grid II=%d (%d copies over the links)\n\n", u.II, c.II, c.Copies)

	fmt.Println("placement and copy routes:")
	for n := 0; n < c.Annotated.NumNodes(); n++ {
		node := c.Annotated.Nodes[n]
		if node.Kind == clustersched.OpCopy {
			fmt.Printf("  %-16s link copy on cluster %d, cycle %d\n",
				node.Name, c.ClusterOf[n], c.CycleOf[n])
			continue
		}
		fmt.Printf("  %-16s cluster %d, cycle %d\n", node.Name, c.ClusterOf[n], c.CycleOf[n])
	}
	fmt.Println()
	fmt.Print(c.Kernel())
}
