// Quickstart: software-pipeline a dot-product loop onto a two-cluster
// VLIW machine and print the kernel.
//
// The loop is
//
//	for i { s = s + a[i]*b[i] }
//
// whose accumulator forms a recurrence (s depends on last iteration's
// s), so the cluster assignment pass must keep the accumulation on one
// cluster — a copy on that cycle would stretch the recurrence and slow
// every iteration down.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustersched"
)

func main() {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a[i]")
	b := g.AddNode(clustersched.OpLoad, "b[i]")
	mul := g.AddNode(clustersched.OpFMul, "t")
	acc := g.AddNode(clustersched.OpFAdd, "s")
	g.AddEdge(a, mul, 0)
	g.AddEdge(b, mul, 0)
	g.AddEdge(mul, acc, 0)
	g.AddEdge(acc, acc, 1) // s of this iteration needs s of the previous one

	// Two clusters of four general-purpose units, two broadcast buses,
	// one read and one write port per cluster (the paper's Figure 2).
	m := clustersched.BusedGP(2, 2, 1)

	res, err := clustersched.Schedule(g, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		log.Fatalf("schedule failed validation: %v", err)
	}

	fmt.Printf("machine: %s\n", m)
	fmt.Printf("initiation interval: %d cycles (lower bound %d)\n", res.II, res.MII)
	fmt.Printf("inter-cluster copies: %d\n", res.Copies)
	for n := 0; n < res.Annotated.NumNodes(); n++ {
		node := res.Annotated.Nodes[n]
		fmt.Printf("  %-10s -> cluster %d, cycle %d\n",
			fmt.Sprintf("%s %s", node.Kind, node.Name), res.ClusterOf[n], res.CycleOf[n])
	}
	fmt.Println()
	fmt.Print(res.Kernel())

	// One iteration starts every res.II cycles: with II=1 this machine
	// retires one dot-product step per cycle in steady state.
	live, perCluster := res.MaxLive()
	fmt.Printf("\nregister pressure: %d values live at once (per cluster %v)\n", live, perCluster)
}
