// Scaling walks the paper's motivation end to end: take one wide loop
// and schedule it on machines of growing width — unified machines that
// would need ever more register-file ports, and clustered machines of
// the same width that would not — and show that cluster assignment
// keeps the clustered initiation intervals at the unified level
// (Table 3's story).
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"clustersched"
)

// wideLoop is an unrolled-by-4 independent vector update,
// a[i] = a[i]*b[i] + c, the kind of loop that actually fills a
// 16-wide machine.
func wideLoop() *clustersched.Graph {
	g := clustersched.NewGraph()
	for u := 0; u < 4; u++ {
		a := g.AddNode(clustersched.OpLoad, fmt.Sprintf("a[i+%d]", u))
		b := g.AddNode(clustersched.OpLoad, fmt.Sprintf("b[i+%d]", u))
		mul := g.AddNode(clustersched.OpFMul, "")
		add := g.AddNode(clustersched.OpFAdd, "")
		st := g.AddNode(clustersched.OpStore, fmt.Sprintf("a[i+%d]", u))
		g.AddEdge(a, mul, 0)
		g.AddEdge(b, mul, 0)
		g.AddEdge(mul, add, 0)
		g.AddEdge(add, st, 0)
	}
	g.AddNode(clustersched.OpBranch, "loop")
	return g
}

func main() {
	g := wideLoop()
	fmt.Printf("loop: %d operations\n\n", g.NumNodes())
	fmt.Printf("%-26s %10s %12s %8s %10s\n", "machine", "width", "unified II", "II", "copies")

	rows := []struct {
		clusters, buses, ports int
	}{
		{2, 2, 1},
		{4, 4, 2},
		{6, 6, 3},
		{8, 7, 3},
	}
	for _, r := range rows {
		m := clustersched.BusedGP(r.clusters, r.buses, r.ports)
		u, err := clustersched.Schedule(g, m.Unified())
		if err != nil {
			log.Fatal(err)
		}
		c, err := clustersched.Schedule(g, m)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			log.Fatalf("schedule failed validation: %v", err)
		}
		fmt.Printf("%-26s %10d %12d %8d %10d\n",
			m.Name, m.TotalWidth(), u.II, c.II, c.Copies)
	}

	fmt.Println("\nA unified register file at width 16+ needs dozens of ports;")
	fmt.Println("each cluster above needs only its own 8-10. The initiation")
	fmt.Println("intervals stay at the unified machine's level because the")
	fmt.Println("assignment pass hides the copy latency off the critical paths.")
}
