package clustersched_test

import (
	"fmt"

	"clustersched"
)

// ExampleSchedule software-pipelines a dot product onto the paper's
// two-cluster machine.
func ExampleSchedule() {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a[i]")
	b := g.AddNode(clustersched.OpLoad, "b[i]")
	mul := g.AddNode(clustersched.OpFMul, "t")
	acc := g.AddNode(clustersched.OpFAdd, "s")
	g.AddEdge(a, mul, 0)
	g.AddEdge(b, mul, 0)
	g.AddEdge(mul, acc, 0)
	g.AddEdge(acc, acc, 1) // the accumulator recurrence

	res, err := clustersched.Schedule(g, clustersched.BusedGP(2, 2, 1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("II=%d copies=%d\n", res.II, res.Copies)
	// Output: II=1 copies=0
}

// ExampleCompileSource compiles loop-language source and schedules the
// result on the four-cluster grid machine.
func ExampleCompileSource() {
	loops, err := clustersched.CompileSource(`
loop smooth {
    x[i] = (x[i-1] + x[i] + x[i+1]) / 3.0
}`)
	if err != nil {
		panic(err)
	}
	res, err := clustersched.Schedule(loops[0].Graph, clustersched.Grid4(2))
	if err != nil {
		panic(err)
	}
	// The stencil's recurrence runs through memory: store x[i] feeds
	// next iteration's load x[i-1], so II equals the cycle's latency.
	fmt.Printf("%s: II=%d (MII=%d)\n", loops[0].Name, res.II, res.MII)
	// Output: smooth: II=14 (MII=14)
}

// ExampleMII computes the initiation-interval lower bound without
// scheduling.
func ExampleMII() {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpFMul, "") // latency 3
	b := g.AddNode(clustersched.OpFAdd, "") // latency 1
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1) // recurrence of latency 4 over one iteration

	fmt.Println(clustersched.MII(g, clustersched.BusedGP(2, 2, 1)))
	// Output: 4
}

// ExampleResult_Validate shows the independent correctness check every
// schedule can be put through.
func ExampleResult_Validate() {
	g := clustersched.NewGraph()
	ld := g.AddNode(clustersched.OpLoad, "x")
	st := g.AddNode(clustersched.OpStore, "y")
	g.AddEdge(ld, st, 0)
	res, err := clustersched.Schedule(g, clustersched.BusedFS(2, 2, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Validate() == nil && res.Simulate(0) == nil)
	// Output: true
}
