// Tests for the context-aware entry point and the observability layer:
// cancellation semantics, deadlines, trace event streams, and the
// Stats accounting on Result.
package clustersched_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"clustersched"
)

func TestScheduleContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := clustersched.ScheduleContext(ctx, dotProduct(), clustersched.BusedGP(2, 2, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScheduleContextCancelMidEscalation cancels from inside the
// search — the observer fires cancel when the first assignment phase
// opens — and checks the run stops before the next II candidate is
// tried.
func TestScheduleContextCancelMidEscalation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	candidates := 0
	obs := clustersched.ObserverFunc(func(e clustersched.Event) {
		switch e.Kind {
		case clustersched.KindIICandidate:
			candidates++
		case clustersched.KindPhaseBegin:
			if e.Phase == "assign" {
				cancel()
			}
		}
	})
	_, err := clustersched.ScheduleContext(ctx, dotProduct(), clustersched.BusedGP(2, 2, 1),
		clustersched.WithObserver(obs))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if candidates != 1 {
		t.Errorf("observed %d II candidates after mid-search cancel, want exactly 1", candidates)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}

func TestScheduleContextNilContext(t *testing.T) {
	//nolint:staticcheck // deliberate nil ctx: the API promises Background semantics.
	res, err := clustersched.ScheduleContext(nil, dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatalf("ScheduleContext(nil, ...): %v", err)
	}
	if res.II != 1 {
		t.Errorf("II = %d, want 1", res.II)
	}
}

func TestWithTimeout(t *testing.T) {
	_, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1),
		clustersched.WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestWithTimeoutGenerousDeadlinePasses(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1),
		clustersched.WithTimeout(time.Minute))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestStatsGoldenDotProduct pins the search-effort counters of the
// canonical dot-product example. The pipeline is deterministic, so
// these are exact; a change here means the search itself changed.
func TestStatsGoldenDotProduct(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	s := res.Stats()
	if s.IICandidates != 1 {
		t.Errorf("IICandidates = %d, want 1 (MII schedules first try)", s.IICandidates)
	}
	if s.AssignCommits != 4 {
		t.Errorf("AssignCommits = %d, want 4 (one per op, no copies)", s.AssignCommits)
	}
	if s.PCRRejections != 2 {
		t.Errorf("PCRRejections = %d, want 2", s.PCRRejections)
	}
	if s.ForcePlacements != 0 || s.Evictions != 0 {
		t.Errorf("ForcePlacements/Evictions = %d/%d, want 0/0", s.ForcePlacements, s.Evictions)
	}
	if s.AssignRejects != 0 || s.SchedRejects != 0 {
		t.Errorf("AssignRejects/SchedRejects = %d/%d, want 0/0", s.AssignRejects, s.SchedRejects)
	}
	if s.AssignTime <= 0 || s.SchedTime <= 0 || s.MIITime <= 0 {
		t.Errorf("phase times %v/%v/%v, want all positive", s.MIITime, s.AssignTime, s.SchedTime)
	}
}

// TestObserverEventStream checks the event protocol end to end: a
// successful run opens and closes each phase, announces every II
// candidate, and commits every node.
func TestObserverEventStream(t *testing.T) {
	var events []clustersched.Event
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1),
		clustersched.WithObserver(clustersched.ObserverFunc(func(e clustersched.Event) {
			events = append(events, e)
		})))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	count := map[clustersched.EventKind]int{}
	for _, e := range events {
		count[e.Kind]++
	}
	if count[clustersched.KindPhaseBegin] != count[clustersched.KindPhaseEnd] {
		t.Errorf("phase_begin %d != phase_end %d", count[clustersched.KindPhaseBegin], count[clustersched.KindPhaseEnd])
	}
	if got := count[clustersched.KindIICandidate]; got != res.Stats().IICandidates {
		t.Errorf("ii_candidate events %d != Stats.IICandidates %d", got, res.Stats().IICandidates)
	}
	if got := count[clustersched.KindAssignCommit]; got != res.Stats().AssignCommits {
		t.Errorf("assign_commit events %d != Stats.AssignCommits %d", got, res.Stats().AssignCommits)
	}
	if events[0].Kind != clustersched.KindPhaseBegin || events[0].Phase != "mii" {
		t.Errorf("first event %v %q, want phase_begin mii", events[0].Kind, events[0].Phase)
	}
}

func TestJSONObserverStream(t *testing.T) {
	var buf bytes.Buffer
	_, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1),
		clustersched.WithObserver(clustersched.NewJSONObserver(&buf)))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d JSON lines", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if _, ok := rec["kind"]; !ok {
			t.Fatalf("line %d has no kind: %s", i, line)
		}
	}
}
