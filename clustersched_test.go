package clustersched_test

import (
	"bytes"
	"strings"
	"testing"

	"clustersched"
)

func dotProduct() *clustersched.Graph {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a[i]")
	b := g.AddNode(clustersched.OpLoad, "b[i]")
	m := g.AddNode(clustersched.OpFMul, "t")
	s := g.AddNode(clustersched.OpFAdd, "s")
	g.AddEdge(a, m, 0)
	g.AddEdge(b, m, 0)
	g.AddEdge(m, s, 0)
	g.AddEdge(s, s, 1)
	return g
}

func TestScheduleDotProduct(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.II != 1 {
		t.Errorf("II = %d, want 1 (four ops on eight units, unit recurrence)", res.II)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.Stages() < 2 {
		t.Errorf("Stages = %d, want software pipelining overlap", res.Stages())
	}
}

func TestScheduleOnEveryMachineFamily(t *testing.T) {
	machines := []*clustersched.Machine{
		clustersched.BusedGP(2, 2, 1),
		clustersched.BusedGP(4, 4, 2),
		clustersched.BusedFS(2, 2, 1),
		clustersched.BusedFS(4, 4, 2),
		clustersched.Grid4(2),
	}
	for _, m := range machines {
		res, err := clustersched.Schedule(dotProduct(), m)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if err := res.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", m.Name, err)
		}
	}
}

func TestScheduleOptions(t *testing.T) {
	g := dotProduct()
	m := clustersched.BusedGP(2, 2, 1)
	for _, v := range []clustersched.Variant{
		clustersched.Simple, clustersched.SimpleIterative,
		clustersched.Heuristic, clustersched.HeuristicIterative,
	} {
		res, err := clustersched.Schedule(g, m, clustersched.WithVariant(v))
		if err != nil {
			t.Errorf("variant %s: %v", v, err)
			continue
		}
		if err := res.Validate(); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
	res, err := clustersched.Schedule(g, m,
		clustersched.WithScheduler(clustersched.SMS),
		clustersched.WithBudget(4),
		clustersched.WithMaxIISlack(16))
	if err != nil {
		t.Fatalf("SMS schedule: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("SMS schedule invalid: %v", err)
	}
}

func TestMIIExported(t *testing.T) {
	g := dotProduct()
	if got := clustersched.MII(g, clustersched.BusedGP(2, 2, 1)); got != 1 {
		t.Errorf("MII = %d, want 1", got)
	}
}

func TestKernelAndPipelinedRender(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if k := res.Kernel(); !strings.Contains(k, "fadd:s") {
		t.Errorf("Kernel missing the accumulator:\n%s", k)
	}
	if p := res.Pipelined(); !strings.Contains(p, "prologue:") || !strings.Contains(p, "epilogue:") {
		t.Errorf("Pipelined missing sections:\n%s", p)
	}
}

func TestMaxLiveExposed(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	total, perCluster := res.MaxLive()
	if total <= 0 {
		t.Errorf("MaxLive = %d, want > 0", total)
	}
	if len(perCluster) != 2 {
		t.Errorf("perCluster = %v, want 2 entries", perCluster)
	}
}

func TestGenerateSuite(t *testing.T) {
	loops := clustersched.GenerateSuite(5, 25)
	if len(loops) != 25 {
		t.Fatalf("suite size = %d", len(loops))
	}
	for i, g := range loops {
		if err := g.Validate(); err != nil {
			t.Errorf("loop %d: %v", i, err)
		}
	}
}

func TestLoopTextRoundTrip(t *testing.T) {
	g := dotProduct()
	var buf bytes.Buffer
	if err := clustersched.WriteLoop(&buf, "dp", g); err != nil {
		t.Fatal(err)
	}
	loops, err := clustersched.ReadLoops(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].Name != "dp" {
		t.Fatalf("round trip: %+v", loops)
	}
	if loops[0].Graph.NumNodes() != g.NumNodes() {
		t.Error("node count changed in round trip")
	}
	// The round-tripped loop must still schedule.
	res, err := clustersched.Schedule(loops[0].Graph, clustersched.BusedFS(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCopiesAnnotatedOnClusteredMachines(t *testing.T) {
	// A wide independent loop on single-unit clusters forces copies;
	// the public Result must expose them coherently.
	g := clustersched.NewGraph()
	p := g.AddNode(clustersched.OpALU, "p")
	for i := 0; i < 3; i++ {
		c := g.AddNode(clustersched.OpALU, "")
		g.AddEdge(p, c, 0)
	}
	m := clustersched.BusedGP(4, 4, 2)
	// Shrink clusters to one unit to force distribution at II=1.
	for i := range m.Clusters {
		m.Clusters[i].FUs = m.Clusters[i].FUs[:1]
	}
	res, err := clustersched.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.II == 1 && res.Copies == 0 {
		t.Error("II=1 on single-unit clusters requires copies")
	}
	if res.Annotated.NumNodes() != g.NumNodes()+res.Copies {
		t.Error("Annotated node count inconsistent with Copies")
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOptimizeStagesKeepsValidity(t *testing.T) {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a")
	b := g.AddNode(clustersched.OpFDiv, "b")
	c := g.AddNode(clustersched.OpFAdd, "c")
	g.AddEdge(a, c, 0)
	g.AddEdge(b, c, 0)
	res, err := clustersched.Schedule(g, clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	liveBefore, _ := res.MaxLive()
	res.OptimizeStages()
	liveAfter, _ := res.MaxLive()
	if err := res.Validate(); err != nil {
		t.Fatalf("invalid after stage scheduling: %v", err)
	}
	if liveAfter > liveBefore {
		t.Errorf("MaxLive rose %d -> %d", liveBefore, liveAfter)
	}
}

func TestRegistersAllocation(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	alloc := res.Registers()
	if alloc.TotalRegisters() <= 0 {
		t.Error("no registers allocated")
	}
	if res.MVEFactor() < 1 {
		t.Error("MVE factor below 1")
	}
}

func TestDOTOutput(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	out := res.DOT()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "subgraph cluster_0") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
}

func TestCustomMachineConstruction(t *testing.T) {
	m := &clustersched.Machine{
		Name:    "custom",
		Network: clustersched.Broadcast,
		Buses:   2,
		Clusters: []clustersched.Cluster{
			clustersched.NewCluster([]clustersched.FUClass{
				clustersched.FUMemory, clustersched.FUInteger, clustersched.FUFloat,
			}, 1, 1),
			clustersched.NewCluster([]clustersched.FUClass{
				clustersched.FUGeneral, clustersched.FUGeneral,
			}, 2, 2),
		},
		Latencies: clustersched.DefaultLatencies(),
	}
	res, err := clustersched.Schedule(dotProduct(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSimulateExposed(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.Grid4(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Simulate(0); err != nil {
		t.Errorf("Simulate: %v", err)
	}
}

func TestUnrollThroughPublicAPI(t *testing.T) {
	g := dotProduct().Unroll(3)
	if g.NumNodes() != 12 {
		t.Fatalf("unrolled nodes = %d, want 12", g.NumNodes())
	}
	res, err := clustersched.Schedule(g, clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
	if err := res.Simulate(0); err != nil {
		t.Errorf("unrolled kernel simulation: %v", err)
	}
}

func TestCompileSourceExposed(t *testing.T) {
	loops, err := clustersched.CompileSource(`loop dp { s = s + a[i]*b[i] }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].Name != "dp" {
		t.Fatalf("loops = %+v", loops)
	}
	res, err := clustersched.Schedule(loops[0].Graph, clustersched.BusedFS(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Simulate(0); err != nil {
		t.Errorf("compiled kernel simulation: %v", err)
	}
}

func TestHeterogeneousMachine(t *testing.T) {
	// Section 2.1: "the techniques presented produce assignments for
	// machines with arbitrary numbers of clusters which can be
	// homogeneous or heterogeneous in the types of function units they
	// contain."
	m := &clustersched.Machine{
		Name:    "hetero",
		Network: clustersched.Broadcast,
		Buses:   2,
		Clusters: []clustersched.Cluster{
			clustersched.NewCluster([]clustersched.FUClass{
				clustersched.FUGeneral, clustersched.FUGeneral, clustersched.FUGeneral, clustersched.FUGeneral,
			}, 1, 1),
			clustersched.NewCluster([]clustersched.FUClass{
				clustersched.FUMemory, clustersched.FUInteger, clustersched.FUFloat,
			}, 1, 1),
		},
		Latencies: clustersched.DefaultLatencies(),
	}
	for i, g := range clustersched.GenerateSuite(33, 40) {
		res, err := clustersched.Schedule(g, m)
		if err != nil {
			t.Errorf("loop %d: %v", i, err)
			continue
		}
		if err := res.Validate(); err != nil {
			t.Errorf("loop %d: %v", i, err)
		}
		if err := res.Simulate(0); err != nil {
			t.Errorf("loop %d: simulation: %v", i, err)
		}
	}
}

func TestRotatingRegistersExposed(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rot := res.RegistersRotating()
	if rot.TotalRegisters() <= 0 {
		t.Error("no rotating registers allocated")
	}
	if err := res.SimulateRotating(0); err != nil {
		t.Errorf("SimulateRotating: %v", err)
	}
}

func TestGanttExposed(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Gantt(); !strings.Contains(g, "kernel occupancy") {
		t.Errorf("Gantt output malformed:\n%s", g)
	}
}
