// Package cache is the scheduling daemon's content-addressed result
// cache. A request is identified by a canonical hash (Key) of its
// data-dependence graph, machine configuration, and the pipeline
// options that affect the outcome; identical requests — however they
// were spelled — map to the same entry.
//
// The store is a sharded LRU with a byte budget: keys spread over
// independently locked shards so concurrent requests rarely contend,
// and each shard evicts from its cold end when its share of the budget
// overflows. Computation is deduplicated per key (singleflight): while
// one caller runs the pipeline for a key, every other caller for the
// same key waits for that one result instead of running the pipeline
// again. Hit, miss, coalesced-wait, and eviction counters are exposed
// through Stats for the daemon's /statsz endpoint.
package cache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/fnv"
	"io"
	"sync"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// Key returns the canonical content hash of one scheduling request:
// every node (kind and name), every edge (endpoints and distance),
// every field of the machine configuration that can change the
// schedule or its rendering, and the caller's extra strings (variant,
// scheduler, budgets — anything else that selects a different result).
// The encoding is injective — lengths are written before variable-size
// parts — so two different requests cannot collide by concatenation.
// Like the pipeline itself, it requires non-nil inputs.
func Key(g *ddg.Graph, m *machine.Config, extra ...string) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	wInt := func(v int) {
		n := binary.PutVarint(buf[:], int64(v))
		h.Write(buf[:n])
	}
	wStr := func(s string) {
		wInt(len(s))
		io.WriteString(h, s)
	}

	wStr("clustersched-key-v1")

	wInt(g.NumNodes())
	for _, n := range g.Nodes {
		wInt(int(n.Kind))
		wStr(n.Name)
	}
	wInt(len(g.Edges))
	for _, e := range g.Edges {
		wInt(e.From)
		wInt(e.To)
		wInt(e.Distance)
	}

	wStr(m.Name)
	wInt(int(m.Network))
	wInt(m.Buses)
	wInt(len(m.Clusters))
	for i := range m.Clusters {
		c := &m.Clusters[i]
		wInt(len(c.FUs))
		for _, fu := range c.FUs {
			wInt(int(fu))
		}
		wInt(c.ReadPorts)
		wInt(c.WritePorts)
	}
	wInt(len(m.Links))
	for _, l := range m.Links {
		wInt(l.A)
		wInt(l.B)
	}
	for _, lat := range m.Latencies {
		wInt(lat)
	}
	for _, np := range m.NonPipelined {
		if np {
			wInt(1)
		} else {
			wInt(0)
		}
	}

	wInt(len(extra))
	for _, s := range extra {
		wStr(s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Source classifies how GetOrCompute produced its value.
type Source int

// Value sources.
const (
	// Miss: this caller ran the compute function.
	Miss Source = iota
	// Hit: the value came straight from the store.
	Hit
	// Coalesced: another caller was already computing the same key;
	// this caller waited and shared that result.
	Coalesced
)

// String returns the lower-case source name (the daemon's X-Cache
// header value).
func (s Source) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// ShardStats is one shard's slice of the counters: the same fields
// as Stats, scoped to the keys that hash into the shard. The fleet
// balancer and operators read these off /statsz to see shard skew —
// a hot shard shows up as an outsized Bytes/Evictions row.
type ShardStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// Stats is a point-in-time snapshot of the cache's counters, summed
// over every shard.
type Stats struct {
	// Hits counts lookups served straight from the store.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the compute function.
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that waited for an in-flight
	// computation of the same key instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped to keep shards inside the byte
	// budget.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current contents; MaxBytes is the
	// configured budget.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// Shards is the per-shard breakdown, populated by StatsDetail only
	// (Stats leaves it nil to keep the aggregate snapshot cheap).
	Shards []ShardStats `json:"shards,omitempty"`
}

const numShards = 16

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map slot, entry header) charged against the byte budget on
// top of the key and value lengths.
const entryOverhead = 128

// DefaultMaxBytes is the byte budget used when New is given a
// non-positive one.
const DefaultMaxBytes = 64 << 20

// Cache is the sharded store. Create one with New; the zero value is
// not usable.
type Cache struct {
	shards        [numShards]shard
	maxShardBytes int64
	maxBytes      int64
}

// New returns a cache bounded to roughly maxBytes of keys plus values
// (DefaultMaxBytes when maxBytes <= 0). Entries larger than one
// shard's share of the budget are returned to their caller but never
// stored.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{maxBytes: maxBytes, maxShardBytes: maxBytes / numShards}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

type entry struct {
	key        string
	val        []byte
	next, prev *entry // LRU list: next is colder, prev is hotter
}

type call struct {
	done chan struct{}
	val  []byte
	err  error
}

type shard struct {
	mu     sync.Mutex
	items  map[string]*entry
	flight map[string]*call
	// head is hottest, tail coldest; nil when empty.
	head, tail *entry
	bytes      int64

	hits, misses, coalesced, evictions uint64
}

func (s *shard) init() {
	s.items = make(map[string]*entry)
	s.flight = make(map[string]*call)
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	io.WriteString(h, key)
	return &c.shards[h.Sum32()%numShards]
}

// GetOrCompute returns the cached value for key, or runs fn once to
// produce it. Concurrent callers with the same key are coalesced: one
// runs fn, the rest wait and share its result. Successful values are
// stored (unless oversized); errors are never cached. A waiting
// caller whose own ctx ends returns ctx.Err() immediately; a waiter
// whose leader was canceled retries as the new leader, so one
// disconnecting client cannot poison identical live requests.
//
// The returned slice is shared with the cache and must not be
// modified.
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, Source, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if e, ok := s.items[key]; ok {
			s.moveToFrontLocked(e)
			s.hits++
			val := e.val
			s.mu.Unlock()
			return val, Hit, nil
		}
		if cl, ok := s.flight[key]; ok {
			s.coalesced++
			s.mu.Unlock()
			// The race between the leader finishing and our context
			// expiring only decides who reports cancellation; the
			// cached bytes are identical on every outcome.
			//schedvet:allow nondet follower wakeup order does not affect results
			select {
			case <-cl.done:
				if cl.err == nil {
					return cl.val, Coalesced, nil
				}
				if errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded) {
					if ctx.Err() == nil {
						continue // leader was canceled, we are still live: take over
					}
					return nil, Coalesced, ctx.Err()
				}
				return nil, Coalesced, cl.err
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{})}
		s.flight[key] = cl
		s.misses++
		s.mu.Unlock()

		cl.val, cl.err = fn(ctx)

		s.mu.Lock()
		delete(s.flight, key)
		if cl.err == nil {
			s.insertLocked(key, cl.val, c.maxShardBytes)
		}
		s.mu.Unlock()
		close(cl.done)
		return cl.val, Miss, cl.err
	}
}

// Get returns the cached value for key without computing anything.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		s.moveToFrontLocked(e)
		s.hits++
		return e.val, true
	}
	return nil, false
}

// Stats sums every shard's counters.
func (c *Cache) Stats() Stats {
	st := Stats{MaxBytes: c.maxBytes}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Coalesced += s.coalesced
		st.Evictions += s.evictions
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// StatsDetail is Stats with the per-shard breakdown attached, for
// /statsz consumers watching occupancy and eviction skew. Each shard
// is snapshotted under its own lock, so rows are individually
// consistent (the aggregate is their sum, not a global freeze).
func (c *Cache) StatsDetail() Stats {
	st := Stats{MaxBytes: c.maxBytes, Shards: make([]ShardStats, numShards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		row := ShardStats{
			Hits:      s.hits,
			Misses:    s.misses,
			Coalesced: s.coalesced,
			Evictions: s.evictions,
			Entries:   len(s.items),
			Bytes:     s.bytes,
		}
		s.mu.Unlock()
		st.Shards[i] = row
		st.Hits += row.Hits
		st.Misses += row.Misses
		st.Coalesced += row.Coalesced
		st.Evictions += row.Evictions
		st.Entries += row.Entries
		st.Bytes += row.Bytes
	}
	return st
}

func entryCost(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + entryOverhead
}

// insertLocked stores the value and evicts from the cold end until the
// shard fits its budget again. Oversized values are not stored at all.
func (s *shard) insertLocked(key string, val []byte, maxBytes int64) {
	cost := entryCost(key, val)
	if cost > maxBytes {
		return
	}
	if e, ok := s.items[key]; ok { // racing leaders after a retry
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		s.moveToFrontLocked(e)
	} else {
		e = &entry{key: key, val: val}
		s.items[key] = e
		s.bytes += cost
		s.pushFrontLocked(e)
	}
	for s.bytes > maxBytes && s.tail != nil {
		s.evictLocked(s.tail)
	}
}

func (s *shard) evictLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.items, e.key)
	s.bytes -= entryCost(e.key, e.val)
	s.evictions++
}

func (s *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}
