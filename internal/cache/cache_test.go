package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func testGraph() *ddg.Graph {
	g := ddg.NewGraph(4, 4)
	a := g.AddNode(ddg.OpLoad, "a[i]")
	b := g.AddNode(ddg.OpLoad, "b[i]")
	m := g.AddNode(ddg.OpFMul, "")
	s := g.AddNode(ddg.OpFAdd, "s")
	g.AddEdge(a, m, 0)
	g.AddEdge(b, m, 0)
	g.AddEdge(m, s, 0)
	g.AddEdge(s, s, 1)
	return g
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	g := testGraph()
	m := machine.NewBusedGP(2, 2, 1)

	base := Key(g, m, "heuristic-iterative", "ims")
	if again := Key(testGraph(), machine.NewBusedGP(2, 2, 1), "heuristic-iterative", "ims"); again != base {
		t.Fatalf("identical request hashed differently:\n%s\n%s", base, again)
	}
	if len(base) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", base)
	}

	distinct := map[string]string{"base": base}
	add := func(label, key string) {
		for prev, k := range distinct {
			if k == key {
				t.Errorf("%s collides with %s", label, prev)
			}
		}
		distinct[label] = key
	}

	g2 := testGraph()
	g2.Nodes[0].Kind = ddg.OpStore
	add("node kind changed", Key(g2, m, "heuristic-iterative", "ims"))

	g3 := testGraph()
	g3.Nodes[0].Name = "c[i]"
	add("node name changed", Key(g3, m, "heuristic-iterative", "ims"))

	g4 := testGraph()
	g4.Edges[3].Distance = 2
	add("edge distance changed", Key(g4, m, "heuristic-iterative", "ims"))

	g5 := testGraph()
	g5.AddEdge(0, 3, 1)
	add("edge added", Key(g5, m, "heuristic-iterative", "ims"))

	add("machine ports changed", Key(g, machine.NewBusedGP(2, 2, 2), "heuristic-iterative", "ims"))
	add("machine buses changed", Key(g, machine.NewBusedGP(2, 1, 1), "heuristic-iterative", "ims"))
	add("extra changed", Key(g, m, "simple", "ims"))
	add("extra split moved", Key(g, m, "heuristic-iterativeims"))
}

func TestGetOrComputeHitAndCounters(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	fn := func(context.Context) ([]byte, error) {
		calls++
		return []byte("result"), nil
	}
	v, src, err := c.GetOrCompute(context.Background(), "k1", fn)
	if err != nil || string(v) != "result" || src != Miss {
		t.Fatalf("first call = (%q, %v, %v), want (result, miss, nil)", v, src, err)
	}
	v, src, err = c.GetOrCompute(context.Background(), "k1", fn)
	if err != nil || string(v) != "result" || src != Hit {
		t.Fatalf("second call = (%q, %v, %v), want (result, hit, nil)", v, src, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 || st.MaxBytes != 1<<20 {
		t.Errorf("stats bytes = %d/%d, want positive and max 1MiB", st.Bytes, st.MaxBytes)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	boom := errors.New("boom")
	fn := func(context.Context) ([]byte, error) {
		calls++
		return nil, boom
	}
	if _, _, err := c.GetOrCompute(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrCompute(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("failed compute ran %d times, want 2 (errors must not be cached)", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after failures, want 0", st.Entries)
	}
}

// TestByteBudgetEviction fills one logical cache well past its budget
// and checks the invariants: bytes never exceed the budget, evictions
// are counted, and the coldest keys are the ones gone.
func TestByteBudgetEviction(t *testing.T) {
	// Budget small enough that a few KB of values overflow every shard.
	const budget = numShards * 2048
	c := New(budget)
	val := make([]byte, 512)
	const n = 256
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%04d", i)
		_, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
			return val, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after inserting %d x %dB into a %dB budget", n, len(val), budget)
	}
	if st.Bytes > budget {
		t.Errorf("cache holds %d bytes, budget %d", st.Bytes, budget)
	}
	if st.Entries == 0 {
		t.Errorf("cache empty after inserts; eviction too aggressive")
	}
	if uint64(st.Entries)+st.Evictions != n {
		t.Errorf("entries %d + evictions %d != inserts %d", st.Entries, st.Evictions, n)
	}
	// The most recently inserted key must have survived in its shard.
	if _, ok := c.Get(fmt.Sprintf("key-%04d", n-1)); !ok {
		t.Errorf("most recent key evicted before older ones")
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New(numShards * 256)
	big := make([]byte, 1024)
	v, src, err := c.GetOrCompute(context.Background(), "big", func(context.Context) ([]byte, error) {
		return big, nil
	})
	if err != nil || src != Miss || len(v) != len(big) {
		t.Fatalf("oversized compute = (%d bytes, %v, %v)", len(v), src, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversized value was stored (%d entries)", st.Entries)
	}
}

// TestSingleflight launches many goroutines for one cold key and
// checks exactly one computes while the rest coalesce onto its result.
func TestSingleflight(t *testing.T) {
	c := New(1 << 20)
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) ([]byte, error) {
		calls.Add(1)
		close(started)
		<-release
		return []byte("shared"), nil
	}

	const followers = 8
	var wg sync.WaitGroup
	results := make([]Source, followers)
	errs := make([]error, followers)

	// Leader first, so the flight entry exists before followers arrive.
	var leaderSrc Source
	var leaderErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderSrc, leaderErr = c.GetOrCompute(context.Background(), "k", fn)
	}()
	<-started

	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v []byte
			v, results[i], errs[i] = c.GetOrCompute(context.Background(), "k", fn)
			if errs[i] == nil && string(v) != "shared" {
				errs[i] = fmt.Errorf("got %q", v)
			}
		}(i)
	}
	close(release)
	wg.Wait()

	if leaderErr != nil || leaderSrc != Miss {
		t.Fatalf("leader = (%v, %v), want (miss, nil)", leaderSrc, leaderErr)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", got)
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Errorf("follower %d: %v", i, errs[i])
		}
		// A follower that arrived after the value landed sees a plain
		// hit; one that waited sees a coalesced share. Both are fine —
		// what matters is that none recomputed.
		if results[i] != Coalesced && results[i] != Hit {
			t.Errorf("follower %d source = %v", i, results[i])
		}
	}
}

// TestFollowerSurvivesCanceledLeader: when the computing caller is
// canceled, a waiting caller with a live context must take over and
// compute the value itself rather than inherit the cancellation.
func TestFollowerSurvivesCanceledLeader(t *testing.T) {
	c := New(1 << 20)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(leaderCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(leaderStarted)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-leaderStarted

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			return []byte("recovered"), nil
		})
		if err != nil || string(v) != "recovered" {
			t.Errorf("follower = (%q, %v), want recovered", v, err)
		}
	}()

	cancelLeader()
	wg.Wait()
}

func TestWaiterOwnContextCancel(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return []byte("late"), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func(context.Context) ([]byte, error) {
		return nil, errors.New("must not run")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want canceled", err)
	}
}
