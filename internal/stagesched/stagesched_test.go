package stagesched

import (
	"math/rand"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/sched"
	"clustersched/internal/verify"
)

// schedule runs the full pipeline by hand so the tests control the
// machine and can post-process the schedule.
func schedule(t *testing.T, g *ddg.Graph, m *machine.Config) (sched.Input, *sched.Schedule) {
	t.Helper()
	base := mii.MII(g, m)
	for ii := base; ii < base+32; ii++ {
		res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if !ok {
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		if s, ok := sched.IMS(in, 0); ok {
			return in, s
		}
	}
	t.Fatal("unschedulable fixture")
	return sched.Input{}, nil
}

func TestOptimizePullsProducerTowardUse(t *testing.T) {
	// a (load) is scheduled greedily at cycle 0 by IMS; its only use is
	// far away behind an fdiv chain. Stage scheduling should move the
	// load later by whole IIs, shortening its value lifetime.
	g := ddg.NewGraph(4, 3)
	a := g.AddNode(ddg.OpLoad, "early")
	b := g.AddNode(ddg.OpFDiv, "")
	c := g.AddNode(ddg.OpFDiv, "")
	d := g.AddNode(ddg.OpALU, "")
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(a, d, 0) // a's value waits ~18 cycles if a stays at 0
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s, ok := sched.IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	before, _ := verify.MaxLive(in, s)
	moved := Optimize(in, s)
	after, _ := verify.MaxLive(in, s)
	if err := verify.Schedule(in, s); err != nil {
		t.Fatalf("optimized schedule invalid: %v", err)
	}
	if moved == 0 {
		t.Error("expected the load to move toward its use")
	}
	if after > before {
		t.Errorf("MaxLive rose from %d to %d", before, after)
	}
	if s.CycleOf[a]+m.Latency(ddg.OpLoad) < s.CycleOf[d]-1 {
		t.Errorf("load still far from its use: load@%d use@%d", s.CycleOf[a], s.CycleOf[d])
	}
}

func TestOptimizeKeepsSchedulesValid(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		g := loopgen.Loop(rng)
		m := machines[i%len(machines)]
		in, s := schedule(t, g, m)
		ii := s.II
		slots := modSlots(s)
		Optimize(in, s)
		if err := verify.Schedule(in, s); err != nil {
			t.Fatalf("loop %d on %s: invalid after stage scheduling: %v", i, m.Name, err)
		}
		if s.II != ii {
			t.Fatal("stage scheduling changed II")
		}
		for v, slot := range modSlots(s) {
			if slot != slots[v] {
				t.Fatalf("loop %d: node %d changed modulo slot %d -> %d", i, v, slots[v], slot)
			}
		}
	}
}

func modSlots(s *sched.Schedule) []int {
	out := make([]int, len(s.CycleOf))
	for i, c := range s.CycleOf {
		out[i] = ((c % s.II) + s.II) % s.II
	}
	return out
}

func TestOptimizeNeverIncreasesTotalLifetime(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := machine.NewBusedGP(2, 2, 1)
	for i := 0; i < 40; i++ {
		g := loopgen.Loop(rng)
		in, s := schedule(t, g, m)
		before := totalLifetime(in, s)
		Optimize(in, s)
		after := totalLifetime(in, s)
		if after > before {
			t.Errorf("loop %d: total lifetime rose %d -> %d", i, before, after)
		}
	}
}

func totalLifetime(in sched.Input, s *sched.Schedule) int {
	total := 0
	g := in.Graph
	lat := in.Machine.Latency
	for v := 0; v < g.NumNodes(); v++ {
		def := s.CycleOf[v] + lat(g.Nodes[v].Kind)
		last := def
		for _, e := range g.OutEdges(v) {
			if use := s.CycleOf[e.To] + s.II*e.Distance; use > last {
				last = use
			}
		}
		total += last - def
	}
	return total
}

func TestOptimizeIdempotentAtFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := machine.NewBusedGP(2, 2, 1)
	g := loopgen.Loop(rng)
	in, s := schedule(t, g, m)
	Optimize(in, s)
	if moved := Optimize(in, s); moved != 0 {
		t.Errorf("second Optimize moved %d ops; expected a fixpoint", moved)
	}
}

func TestOptimizeOnTightRecurrence(t *testing.T) {
	// Everything inside one recurrence has zero whole-II slack; nothing
	// may move.
	g := ddg.NewGraph(3, 3)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 1)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s, ok := sched.IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	cycles := append([]int(nil), s.CycleOf...)
	Optimize(in, s)
	for v := range cycles {
		if s.CycleOf[v] != cycles[v] {
			t.Errorf("node %d moved %d -> %d inside a tight recurrence", v, cycles[v], s.CycleOf[v])
		}
	}
}
