// Package stagesched implements stage scheduling (Eichenberger &
// Davidson, MICRO 1995), the register-pressure post-pass the paper
// pairs with iterative modulo scheduling: operations are moved by
// whole multiples of II — which keeps every modulo reservation slot,
// and therefore every resource assignment, untouched — within their
// dependence slack, so as to shorten value lifetimes and reduce the
// number of registers the kernel needs.
package stagesched

import (
	"clustersched/internal/sched"
)

// MaxPasses bounds the hill-climbing sweeps; lifetimes converge in a
// couple of passes on real loops.
const MaxPasses = 10

// Optimize moves operations between stages to minimize the total
// register lifetime of the schedule. The schedule is modified in
// place; the return value is the number of operations moved. Resource
// feasibility is preserved by construction (only whole-II moves), and
// all dependences are re-checked against their slack before a move.
func Optimize(in sched.Input, s *sched.Schedule) int {
	g := in.Graph
	n := g.NumNodes()
	moved := 0

	for pass := 0; pass < MaxPasses; pass++ {
		changed := false
		for v := 0; v < n; v++ {
			lo, hi := slack(in, s, v)
			if lo >= hi {
				continue
			}
			cur := s.CycleOf[v]
			bestCycle, bestCost := cur, cost(in, s, v, cur)
			for c := firstAligned(lo, cur, s.II); c <= hi; c += s.II {
				if c == cur {
					continue
				}
				if k := cost(in, s, v, c); k < bestCost {
					bestCost, bestCycle = k, c
				}
			}
			if bestCycle != cur {
				s.CycleOf[v] = bestCycle
				moved++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return moved
}

// firstAligned returns the smallest cycle >= lo congruent to cur
// modulo ii.
func firstAligned(lo, cur, ii int) int {
	delta := (cur - lo) % ii
	if delta < 0 {
		delta += ii
	}
	return lo + delta
}

// slack returns the dependence-feasible cycle window of node v given
// every other node stays put. Self edges are excluded: both endpoints
// move together, so they never constrain a whole-II shift (they were
// satisfied by II >= RecMII at scheduling time).
func slack(in sched.Input, s *sched.Schedule, v int) (lo, hi int) {
	g := in.Graph
	lat := in.Machine.Latency
	const inf = int(^uint(0) >> 1)
	lo, hi = -inf/2, inf/2
	for _, e := range g.InEdges(v) {
		if e.From == v {
			continue
		}
		if t := s.CycleOf[e.From] + lat(g.Nodes[e.From].Kind) - s.II*e.Distance; t > lo {
			lo = t
		}
	}
	for _, e := range g.OutEdges(v) {
		if e.To == v {
			continue
		}
		if t := s.CycleOf[e.To] - lat(g.Nodes[v].Kind) + s.II*e.Distance; t < hi {
			hi = t
		}
	}
	// Keep sinks/sources from drifting arbitrarily: bound the window to
	// one schedule length around the current cycle.
	span := s.II * (s.StageCount() + 1)
	if lo < s.CycleOf[v]-span {
		lo = s.CycleOf[v] - span
	}
	if hi > s.CycleOf[v]+span {
		hi = s.CycleOf[v] + span
	}
	return lo, hi
}

// cost is the total lifetime of the values affected by placing v at
// cycle c: v's own result plus the results of v's producers (whose
// last use may be v).
func cost(in sched.Input, s *sched.Schedule, v, c int) int {
	g := in.Graph
	at := func(n int) int {
		if n == v {
			return c
		}
		return s.CycleOf[n]
	}
	total := lifetimeAt(in, s, v, at)
	for _, p := range g.Predecessors(v) {
		if p != v {
			total += lifetimeAt(in, s, p, at)
		}
	}
	return total
}

// lifetimeAt computes node p's value lifetime under the hypothetical
// cycle function at.
func lifetimeAt(in sched.Input, s *sched.Schedule, p int, at func(int) int) int {
	g := in.Graph
	lat := in.Machine.Latency
	def := at(p) + lat(g.Nodes[p].Kind)
	last := def
	for _, e := range g.OutEdges(p) {
		if use := at(e.To) + s.II*e.Distance; use > last {
			last = use
		}
	}
	return last - def
}
