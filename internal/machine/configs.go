package machine

import "fmt"

// GPCluster returns a cluster of n general-purpose units with the given
// bus read/write port counts.
func GPCluster(n, readPorts, writePorts int) Cluster {
	fus := make([]FUClass, n)
	for i := range fus {
		fus[i] = FUGeneral
	}
	return Cluster{FUs: fus, ReadPorts: readPorts, WritePorts: writePorts}
}

// FSCluster4 returns the paper's fully specialized 4-unit cluster: one
// memory unit, two integer units, one floating-point unit.
func FSCluster4(readPorts, writePorts int) Cluster {
	return Cluster{
		FUs:        []FUClass{FUMemory, FUInteger, FUInteger, FUFloat},
		ReadPorts:  readPorts,
		WritePorts: writePorts,
	}
}

// FSCluster3 returns the grid machine's 3-unit cluster: one memory, one
// integer, one floating-point unit.
func FSCluster3(readPorts, writePorts int) Cluster {
	return Cluster{
		FUs:        []FUClass{FUMemory, FUInteger, FUFloat},
		ReadPorts:  readPorts,
		WritePorts: writePorts,
	}
}

// NewBusedGP builds an n-cluster broadcast machine of 4-wide GP
// clusters, the configuration of Figures 12-17 and Table 3.
func NewBusedGP(clusters, buses, ports int) *Config {
	m := &Config{
		Name:      fmt.Sprintf("gp-%dc-%db-%dp", clusters, buses, ports),
		Network:   Broadcast,
		Buses:     buses,
		Latencies: DefaultLatencies(),
	}
	for i := 0; i < clusters; i++ {
		m.Clusters = append(m.Clusters, GPCluster(4, ports, ports))
	}
	return m
}

// NewBusedFS builds an n-cluster broadcast machine of fully specialized
// 4-unit clusters, the configuration of Figures 18 and 19.
func NewBusedFS(clusters, buses, ports int) *Config {
	m := &Config{
		Name:      fmt.Sprintf("fs-%dc-%db-%dp", clusters, buses, ports),
		Network:   Broadcast,
		Buses:     buses,
		Latencies: DefaultLatencies(),
	}
	for i := 0; i < clusters; i++ {
		m.Clusters = append(m.Clusters, FSCluster4(ports, ports))
	}
	return m
}

// NewGrid4 builds the four-cluster grid machine of Section 2.1 /
// Figure 4: four 3-unit FS clusters arranged in a square, each cluster
// connected by a dedicated link to its horizontal and vertical
// neighbour only (clusters 0-1, 0-2, 1-3, 2-3).
func NewGrid4(ports int) *Config {
	m := &Config{
		Name:    fmt.Sprintf("grid-4c-%dp", ports),
		Network: PointToPoint,
		Links: []Link{
			{A: 0, B: 1},
			{A: 0, B: 2},
			{A: 1, B: 3},
			{A: 2, B: 3},
		},
		Latencies: DefaultLatencies(),
	}
	for i := 0; i < 4; i++ {
		m.Clusters = append(m.Clusters, FSCluster3(ports, ports))
	}
	return m
}

// NewRing builds an n-cluster point-to-point ring of 3-unit FS
// clusters: cluster i links to clusters (i±1) mod n. The ring
// generalizes the paper's grid (a 4-ring is exactly the grid's
// topology) to study how chained forwarding scales with hop count.
func NewRing(clusters, ports int) *Config {
	m := &Config{
		Name:      fmt.Sprintf("ring-%dc-%dp", clusters, ports),
		Network:   PointToPoint,
		Latencies: DefaultLatencies(),
	}
	for i := 0; i < clusters; i++ {
		m.Clusters = append(m.Clusters, FSCluster3(ports, ports))
		if clusters > 1 {
			next := (i + 1) % clusters
			if i < next || clusters == 2 && i == 0 {
				m.Links = append(m.Links, Link{A: i, B: next})
			}
		}
	}
	if clusters > 2 {
		m.Links = append(m.Links, Link{A: clusters - 1, B: 0})
	}
	return m
}

// NewUnifiedGP builds a width-wide unified GP machine directly.
func NewUnifiedGP(width int) *Config {
	m := &Config{
		Name:      fmt.Sprintf("gp-unified-%dw", width),
		Network:   Broadcast,
		Clusters:  []Cluster{GPCluster(width, 0, 0)},
		Latencies: DefaultLatencies(),
	}
	return m
}
