// Package machine describes clustered VLIW targets: clusters of
// function units with private register files, connected by broadcast
// buses or dedicated point-to-point links, exactly as in Section 2.1 of
// the paper. It also supplies the Table 2 operation latencies and the
// equally-wide unified machine used as the comparison baseline.
package machine

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
)

// FUClass is a function-unit class. A general-purpose (GP) unit runs
// any operation; fully specialized (FS) units are split into memory,
// integer, and floating-point groups.
type FUClass int

// Function unit classes.
const (
	FUGeneral FUClass = iota
	FUMemory
	FUInteger
	FUFloat
	numFUClasses
)

// NumFUClasses is the number of distinct function-unit classes.
const NumFUClasses = int(numFUClasses)

var fuClassNames = [...]string{
	FUGeneral: "gp",
	FUMemory:  "mem",
	FUInteger: "int",
	FUFloat:   "fp",
}

// String returns the class mnemonic.
func (c FUClass) String() string {
	if c < 0 || int(c) >= len(fuClassNames) {
		return fmt.Sprintf("fuclass(%d)", int(c))
	}
	return fuClassNames[c]
}

// CanExecute reports whether a unit of this class may issue an
// operation of kind k. Copy operations never occupy a function unit
// (paper Section 2.1); they are matched against ports and buses only.
func (c FUClass) CanExecute(k ddg.OpKind) bool {
	if k == ddg.OpCopy {
		return false
	}
	switch c {
	case FUGeneral:
		return true
	case FUMemory:
		return k == ddg.OpLoad || k == ddg.OpStore
	case FUInteger:
		return k == ddg.OpALU || k == ddg.OpShift || k == ddg.OpBranch
	case FUFloat:
		return k == ddg.OpFAdd || k == ddg.OpFMul || k == ddg.OpFDiv || k == ddg.OpFSqrt
	default:
		return false
	}
}

// RequiredClass returns the FU class that executes kind k on a fully
// specialized machine.
func RequiredClass(k ddg.OpKind) FUClass {
	switch k {
	case ddg.OpLoad, ddg.OpStore:
		return FUMemory
	case ddg.OpALU, ddg.OpShift, ddg.OpBranch:
		return FUInteger
	case ddg.OpFAdd, ddg.OpFMul, ddg.OpFDiv, ddg.OpFSqrt:
		return FUFloat
	default:
		return FUGeneral
	}
}

// Cluster describes one cluster: its function units plus the read and
// write ports that connect its register file to the inter-cluster
// communication fabric.
type Cluster struct {
	FUs        []FUClass
	ReadPorts  int // ports feeding outgoing copies
	WritePorts int // ports accepting incoming copy results
}

// FUCountFor returns how many units of the cluster may execute kind k.
func (c *Cluster) FUCountFor(k ddg.OpKind) int {
	n := 0
	for _, fu := range c.FUs {
		if fu.CanExecute(k) {
			n++
		}
	}
	return n
}

// Width returns the number of function units in the cluster.
func (c *Cluster) Width() int { return len(c.FUs) }

// Network selects the inter-cluster communication fabric.
type Network int

// Network kinds.
const (
	// Broadcast: copies reserve one of Config.Buses for a cycle and the
	// value may be written to any cluster with a free write port; a
	// value therefore needs at most one copy operation.
	Broadcast Network = iota
	// PointToPoint: copies reserve a dedicated link between two
	// adjacent clusters; each copy reaches exactly one cluster.
	PointToPoint
)

// String names the network kind.
func (n Network) String() string {
	switch n {
	case Broadcast:
		return "broadcast"
	case PointToPoint:
		return "point-to-point"
	default:
		return fmt.Sprintf("network(%d)", int(n))
	}
}

// Link is a dedicated bidirectional connection between clusters A and B.
type Link struct {
	A, B int
}

// Config is a complete machine description.
type Config struct {
	Name      string
	Clusters  []Cluster
	Network   Network
	Buses     int    // number of broadcast buses (Broadcast network)
	Links     []Link // dedicated connections (PointToPoint network)
	Latencies [ddg.NumOpKinds]int
	// NonPipelined marks operation kinds whose function unit stays
	// busy for the whole latency instead of accepting a new operation
	// every cycle (real machines rarely pipeline dividers). The unit
	// is occupied for Latency(k) consecutive cycles.
	NonPipelined [ddg.NumOpKinds]bool
}

// DefaultLatencies returns the Table 2 operation latencies: one cycle
// for ALU/shift/branch/store/FP-add/copy, two for loads, three for FP
// multiply, nine for FP divide and square root.
func DefaultLatencies() [ddg.NumOpKinds]int {
	var lat [ddg.NumOpKinds]int
	lat[ddg.OpALU] = 1
	lat[ddg.OpShift] = 1
	lat[ddg.OpBranch] = 1
	lat[ddg.OpStore] = 1
	lat[ddg.OpFAdd] = 1
	lat[ddg.OpCopy] = 1
	lat[ddg.OpLoad] = 2
	lat[ddg.OpFMul] = 3
	lat[ddg.OpFDiv] = 9
	lat[ddg.OpFSqrt] = 9
	return lat
}

// Latency returns the latency of operation kind k on this machine.
func (m *Config) Latency(k ddg.OpKind) int { return m.Latencies[k] }

// Occupancy returns how many consecutive cycles an operation of kind k
// holds its function unit: one on fully pipelined units, the full
// latency on non-pipelined ones.
func (m *Config) Occupancy(k ddg.OpKind) int {
	if m.NonPipelined[k] {
		return m.Latencies[k]
	}
	return 1
}

// NumClusters returns the cluster count.
func (m *Config) NumClusters() int { return len(m.Clusters) }

// TotalWidth returns the machine's total number of function units.
func (m *Config) TotalWidth() int {
	w := 0
	for i := range m.Clusters {
		w += m.Clusters[i].Width()
	}
	return w
}

// FUCountFor returns how many units across the whole machine may
// execute kind k.
func (m *Config) FUCountFor(k ddg.OpKind) int {
	n := 0
	for i := range m.Clusters {
		n += m.Clusters[i].FUCountFor(k)
	}
	return n
}

// Clustered reports whether the machine has more than one cluster.
func (m *Config) Clustered() bool { return len(m.Clusters) > 1 }

// LinkBetween returns the index into Links of the connection between
// clusters a and b, or -1 when they are not adjacent.
func (m *Config) LinkBetween(a, b int) int {
	for i, l := range m.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return i
		}
	}
	return -1
}

// LinksAt returns the indices of all links incident to cluster c.
func (m *Config) LinksAt(c int) []int {
	var out []int
	for i, l := range m.Links {
		if l.A == c || l.B == c {
			out = append(out, i)
		}
	}
	return out
}

// Path returns the sequence of clusters of a shortest route from
// cluster a to cluster b over the link fabric (BFS), including both
// endpoints. On a broadcast machine the path is always [a, b]. It
// returns nil when b is unreachable from a.
func (m *Config) Path(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if m.Network == Broadcast {
		return []int{a, b}
	}
	prev := make([]int, len(m.Clusters))
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, li := range m.LinksAt(u) {
			l := m.Links[li]
			v := l.A
			if v == u {
				v = l.B
			}
			if prev[v] != -1 {
				continue
			}
			prev[v] = u
			if v == b {
				var path []int
				for w := b; w != a; w = prev[w] {
					path = append(path, w)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// Configuration diagnostic codes reported by Lint. Package lint layers
// additional MACH-prefixed advisory codes on top of these.
const (
	CodeNoClusters     = "MACH001" // machine without clusters
	CodeEmptyCluster   = "MACH002" // cluster with zero function units
	CodeOrphanKind     = "MACH003" // operation kind executable nowhere
	CodeNegativePorts  = "MACH004" // cluster with a negative port count
	CodeNoBuses        = "MACH005" // clustered broadcast machine with no bus
	CodeNoLinks        = "MACH006" // clustered point-to-point machine with no links
	CodeBadLink        = "MACH007" // link endpoint out of range or self-link
	CodeUnreachable    = "MACH008" // cluster pair with no link path
	CodeUnknownNetwork = "MACH009" // network kind out of range
	CodeLatencyGap     = "MACH010" // operation kind with non-positive latency
)

// Lint checks the configuration for internal consistency and returns
// all problems as diagnostics, not just the first.
func (m *Config) Lint() []diag.Diagnostic {
	var r diag.Reporter
	mname := fmt.Sprintf("machine %q", m.Name)
	if len(m.Clusters) == 0 {
		r.Report(diag.Diagnostic{
			Code: CodeNoClusters, Severity: diag.Error, Subject: mname,
			Message: fmt.Sprintf("machine %q: no clusters", m.Name),
			Fix:     "add at least one cluster with function units",
		})
	}
	for i := range m.Clusters {
		c := &m.Clusters[i]
		subject := fmt.Sprintf("cluster %d", i)
		if len(c.FUs) == 0 {
			r.Errorf(CodeEmptyCluster, subject, "machine %q: cluster %d has no function units", m.Name, i)
		}
		if c.ReadPorts < 0 || c.WritePorts < 0 {
			r.Errorf(CodeNegativePorts, subject, "machine %q: cluster %d has negative port count", m.Name, i)
		}
	}
	switch m.Network {
	case Broadcast:
		if len(m.Clusters) > 1 && m.Buses <= 0 {
			r.Report(diag.Diagnostic{
				Code: CodeNoBuses, Severity: diag.Error, Subject: mname,
				Message: fmt.Sprintf("machine %q: clustered broadcast machine needs at least one bus", m.Name),
				Fix:     "set Buses >= 1 so inter-cluster copies have a fabric to ride",
			})
		}
	case PointToPoint:
		if len(m.Clusters) > 1 && len(m.Links) == 0 {
			r.Errorf(CodeNoLinks, mname, "machine %q: clustered point-to-point machine needs links", m.Name)
		}
		badLink := false
		for i, l := range m.Links {
			if l.A < 0 || l.A >= len(m.Clusters) || l.B < 0 || l.B >= len(m.Clusters) || l.A == l.B {
				r.Errorf(CodeBadLink, fmt.Sprintf("link %d", i), "machine %q: link %d (%d-%d) is invalid", m.Name, i, l.A, l.B)
				badLink = true
			}
		}
		// Every pair of clusters must be bridgeable, possibly via hops.
		// Skip when a link is malformed: Path would chase bad endpoints.
		if !badLink {
			for a := 0; a < len(m.Clusters); a++ {
				for b := a + 1; b < len(m.Clusters); b++ {
					if m.Path(a, b) == nil {
						r.Report(diag.Diagnostic{
							Code: CodeUnreachable, Severity: diag.Error,
							Subject: fmt.Sprintf("clusters %d,%d", a, b),
							Message: fmt.Sprintf("machine %q: cluster %d cannot reach cluster %d", m.Name, a, b),
							Fix:     "add links until the cluster graph is connected",
						})
					}
				}
			}
		}
	default:
		r.Errorf(CodeUnknownNetwork, mname, "machine %q: unknown network %d", m.Name, int(m.Network))
	}
	for k := 0; k < ddg.NumOpKinds; k++ {
		if m.Latencies[k] <= 0 {
			r.Report(diag.Diagnostic{
				Code: CodeLatencyGap, Severity: diag.Error,
				Subject: fmt.Sprintf("kind %s", ddg.OpKind(k)),
				Message: fmt.Sprintf("machine %q: kind %s has non-positive latency %d", m.Name, ddg.OpKind(k), m.Latencies[k]),
				Fix:     "fill the latency table for every operation kind (see machine.DefaultLatencies)",
			})
		}
		if ddg.OpKind(k) == ddg.OpCopy {
			continue
		}
		if len(m.Clusters) > 0 && m.FUCountFor(ddg.OpKind(k)) == 0 {
			r.Report(diag.Diagnostic{
				Code: CodeOrphanKind, Severity: diag.Error,
				Subject: fmt.Sprintf("kind %s", ddg.OpKind(k)),
				Message: fmt.Sprintf("machine %q: no function unit can execute %s", m.Name, ddg.OpKind(k)),
				Fix:     "add a general-purpose unit or a specialized unit covering the kind to some cluster",
			})
		}
	}
	return r.Diagnostics()
}

// Validate checks the configuration for internal consistency. It
// returns nil for a consistent machine, or a *diag.List carrying every
// violation, whose Error string leads with the first one.
func (m *Config) Validate() error {
	if err := diag.AsError(m.Lint()); err != nil {
		return err
	}
	return nil
}

// Unified returns the equally wide non-clustered baseline: a single
// cluster holding every function unit of m, with no communication
// fabric. This is the comparison machine used throughout the paper's
// evaluation.
func (m *Config) Unified() *Config {
	var fus []FUClass
	for i := range m.Clusters {
		fus = append(fus, m.Clusters[i].FUs...)
	}
	return &Config{
		Name:         m.Name + "-unified",
		Clusters:     []Cluster{{FUs: fus}},
		Network:      Broadcast,
		Latencies:    m.Latencies,
		NonPipelined: m.NonPipelined,
	}
}

// String summarizes the configuration.
func (m *Config) String() string {
	s := fmt.Sprintf("%s: %d cluster(s)", m.Name, len(m.Clusters))
	if m.Clustered() {
		switch m.Network {
		case Broadcast:
			s += fmt.Sprintf(", %d bus(es)", m.Buses)
		case PointToPoint:
			s += fmt.Sprintf(", %d link(s)", len(m.Links))
		}
	}
	return s
}
