package machine

import (
	"testing"

	"clustersched/internal/ddg"
)

func TestCanExecuteMatrix(t *testing.T) {
	cases := []struct {
		cls  FUClass
		kind ddg.OpKind
		want bool
	}{
		{FUGeneral, ddg.OpALU, true},
		{FUGeneral, ddg.OpLoad, true},
		{FUGeneral, ddg.OpFSqrt, true},
		{FUGeneral, ddg.OpCopy, false}, // copies never use a function unit
		{FUMemory, ddg.OpLoad, true},
		{FUMemory, ddg.OpStore, true},
		{FUMemory, ddg.OpALU, false},
		{FUInteger, ddg.OpALU, true},
		{FUInteger, ddg.OpShift, true},
		{FUInteger, ddg.OpBranch, true},
		{FUInteger, ddg.OpFAdd, false},
		{FUFloat, ddg.OpFAdd, true},
		{FUFloat, ddg.OpFMul, true},
		{FUFloat, ddg.OpFDiv, true},
		{FUFloat, ddg.OpFSqrt, true},
		{FUFloat, ddg.OpLoad, false},
		{FUFloat, ddg.OpCopy, false},
	}
	for _, tc := range cases {
		if got := tc.cls.CanExecute(tc.kind); got != tc.want {
			t.Errorf("%s.CanExecute(%s) = %v, want %v", tc.cls, tc.kind, got, tc.want)
		}
	}
}

func TestRequiredClass(t *testing.T) {
	cases := map[ddg.OpKind]FUClass{
		ddg.OpLoad:   FUMemory,
		ddg.OpStore:  FUMemory,
		ddg.OpALU:    FUInteger,
		ddg.OpShift:  FUInteger,
		ddg.OpBranch: FUInteger,
		ddg.OpFAdd:   FUFloat,
		ddg.OpFMul:   FUFloat,
		ddg.OpFDiv:   FUFloat,
		ddg.OpFSqrt:  FUFloat,
	}
	for k, want := range cases {
		if got := RequiredClass(k); got != want {
			t.Errorf("RequiredClass(%s) = %s, want %s", k, got, want)
		}
	}
}

func TestDefaultLatenciesMatchTable2(t *testing.T) {
	lat := DefaultLatencies()
	cases := map[ddg.OpKind]int{
		ddg.OpALU:    1,
		ddg.OpShift:  1,
		ddg.OpBranch: 1,
		ddg.OpStore:  1,
		ddg.OpFAdd:   1,
		ddg.OpCopy:   1,
		ddg.OpLoad:   2,
		ddg.OpFMul:   3,
		ddg.OpFDiv:   9,
		ddg.OpFSqrt:  9,
	}
	for k, want := range cases {
		if lat[k] != want {
			t.Errorf("latency(%s) = %d, want %d (Table 2)", k, lat[k], want)
		}
	}
}

func TestNewBusedGP(t *testing.T) {
	m := NewBusedGP(4, 4, 2)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NumClusters() != 4 || m.TotalWidth() != 16 || m.Buses != 4 {
		t.Errorf("unexpected shape: clusters=%d width=%d buses=%d", m.NumClusters(), m.TotalWidth(), m.Buses)
	}
	for i := range m.Clusters {
		c := &m.Clusters[i]
		if c.ReadPorts != 2 || c.WritePorts != 2 {
			t.Errorf("cluster %d ports = %d/%d, want 2/2", i, c.ReadPorts, c.WritePorts)
		}
		if c.FUCountFor(ddg.OpFDiv) != 4 {
			t.Errorf("GP cluster should run anything on all 4 units")
		}
	}
}

func TestNewBusedFS(t *testing.T) {
	m := NewBusedFS(2, 2, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c := &m.Clusters[0]
	if c.FUCountFor(ddg.OpLoad) != 1 || c.FUCountFor(ddg.OpALU) != 2 || c.FUCountFor(ddg.OpFMul) != 1 {
		t.Errorf("FS cluster mix wrong: mem=%d int=%d fp=%d",
			c.FUCountFor(ddg.OpLoad), c.FUCountFor(ddg.OpALU), c.FUCountFor(ddg.OpFMul))
	}
	if m.FUCountFor(ddg.OpALU) != 4 {
		t.Errorf("machine-wide integer units = %d, want 4", m.FUCountFor(ddg.OpALU))
	}
}

func TestNewGrid4(t *testing.T) {
	m := NewGrid4(2)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Network != PointToPoint || len(m.Links) != 4 {
		t.Fatalf("grid should have 4 point-to-point links")
	}
	// Square: 0-1, 0-2, 1-3, 2-3. Diagonals are not adjacent.
	if m.LinkBetween(0, 3) != -1 || m.LinkBetween(1, 2) != -1 {
		t.Error("diagonal clusters must not be adjacent")
	}
	if m.LinkBetween(0, 1) < 0 || m.LinkBetween(1, 0) < 0 {
		t.Error("links must be bidirectional")
	}
	if got := len(m.LinksAt(0)); got != 2 {
		t.Errorf("cluster 0 has %d links, want 2", got)
	}
}

func TestGridPathRouting(t *testing.T) {
	m := NewGrid4(1)
	p := m.Path(0, 3)
	if len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Fatalf("Path(0,3) = %v, want a 2-hop route", p)
	}
	if mid := p[1]; mid != 1 && mid != 2 {
		t.Errorf("intermediate cluster %d not adjacent to both ends", mid)
	}
	if p := m.Path(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("Path to self = %v", p)
	}
	if p := m.Path(0, 1); len(p) != 2 {
		t.Errorf("adjacent path = %v, want direct", p)
	}
}

func TestBroadcastPathIsDirect(t *testing.T) {
	m := NewBusedGP(4, 4, 1)
	if p := m.Path(0, 3); len(p) != 2 {
		t.Errorf("broadcast path = %v, want [0 3]", p)
	}
}

func TestUnified(t *testing.T) {
	m := NewBusedFS(4, 4, 2)
	u := m.Unified()
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if u.Clustered() {
		t.Error("unified machine must have one cluster")
	}
	if u.TotalWidth() != m.TotalWidth() {
		t.Errorf("unified width %d != clustered width %d", u.TotalWidth(), m.TotalWidth())
	}
	if u.FUCountFor(ddg.OpLoad) != m.FUCountFor(ddg.OpLoad) {
		t.Error("unified machine must keep the FU mix")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	lat := DefaultLatencies()
	cases := []struct {
		name string
		m    Config
	}{
		{"no clusters", Config{Name: "x", Latencies: lat}},
		{"clustered without buses", Config{
			Name:      "x",
			Clusters:  []Cluster{GPCluster(2, 1, 1), GPCluster(2, 1, 1)},
			Network:   Broadcast,
			Latencies: lat,
		}},
		{"empty cluster", Config{
			Name:      "x",
			Clusters:  []Cluster{{}},
			Network:   Broadcast,
			Latencies: lat,
		}},
		{"bad link", Config{
			Name:      "x",
			Clusters:  []Cluster{GPCluster(2, 1, 1), GPCluster(2, 1, 1)},
			Network:   PointToPoint,
			Links:     []Link{{A: 0, B: 5}},
			Latencies: lat,
		}},
		{"disconnected p2p", Config{
			Name:      "x",
			Clusters:  []Cluster{GPCluster(1, 1, 1), GPCluster(1, 1, 1), GPCluster(1, 1, 1)},
			Network:   PointToPoint,
			Links:     []Link{{A: 0, B: 1}},
			Latencies: lat,
		}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestValidateRejectsZeroLatency(t *testing.T) {
	m := NewBusedGP(2, 2, 1)
	m.Latencies[ddg.OpALU] = 0
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted zero latency")
	}
}

func TestFSClusterCannotRunEverything(t *testing.T) {
	// A machine of only memory units must be rejected: no unit can run ALU.
	m := &Config{
		Name:      "mem-only",
		Clusters:  []Cluster{{FUs: []FUClass{FUMemory}, ReadPorts: 1, WritePorts: 1}},
		Network:   Broadcast,
		Latencies: DefaultLatencies(),
	}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted a machine that cannot execute integer ops")
	}
}

func TestStringSummaries(t *testing.T) {
	if s := NewBusedGP(2, 2, 1).String(); s == "" {
		t.Error("empty String()")
	}
	if s := NewGrid4(1).String(); s == "" {
		t.Error("empty String()")
	}
	if Broadcast.String() != "broadcast" || PointToPoint.String() != "point-to-point" {
		t.Error("Network.String mismatch")
	}
}

func TestNewRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		m := NewRing(n, 2)
		if err := m.Validate(); err != nil {
			t.Fatalf("ring-%d: %v", n, err)
		}
		wantLinks := n
		if n == 2 {
			wantLinks = 1
		}
		if len(m.Links) != wantLinks {
			t.Errorf("ring-%d has %d links, want %d", n, len(m.Links), wantLinks)
		}
		// Every cluster reaches every other; max hop count is n/2.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				p := m.Path(a, b)
				if p == nil {
					t.Fatalf("ring-%d: no path %d -> %d", n, a, b)
				}
				if hops := len(p) - 1; hops > n/2 {
					t.Errorf("ring-%d: path %d->%d takes %d hops, want <= %d", n, a, b, hops, n/2)
				}
			}
		}
	}
}

func TestRing4MatchesGridTopology(t *testing.T) {
	ring := NewRing(4, 2)
	// A 4-ring is the grid's square: each cluster has exactly two
	// neighbours and the diagonal needs two hops.
	for c := 0; c < 4; c++ {
		if got := len(ring.LinksAt(c)); got != 2 {
			t.Errorf("cluster %d has %d links, want 2", c, got)
		}
	}
	if p := ring.Path(0, 2); len(p) != 3 {
		t.Errorf("diagonal path = %v, want 2 hops", p)
	}
}
