package machine

import "sync"

// Topology is the precomputed link fabric of one configuration: the
// link index and shortest cluster path for every cluster pair, plus the
// links incident to each cluster. Consumers that previously re-ran the
// BFS of Config.Path per construction (one cluster-assignment run
// builds a full pair table) share one Topology per Config instead.
//
// All returned slices are owned by the Topology and must be treated as
// read-only.
type Topology struct {
	nc      int
	pathTab [][]int // [a*nc+b] -> Config.Path(a, b)
	linkTab []int   // [a*nc+b] -> link index, or -1
	linksAt [][]int // [cluster] -> incident link indices
}

// Path returns the precomputed Config.Path(a, b) result.
func (t *Topology) Path(a, b int) []int { return t.pathTab[a*t.nc+b] }

// LinkBetween returns the precomputed Config.LinkBetween(a, b) result.
func (t *Topology) LinkBetween(a, b int) int { return t.linkTab[a*t.nc+b] }

// LinksAt returns the precomputed Config.LinksAt(c) result.
func (t *Topology) LinksAt(c int) []int { return t.linksAt[c] }

// topoCache memoizes TopologyOf per Config. The cache is bounded: paths
// that mint throwaway configurations (Unified() per run, machine
// sweeps) must not pin memory forever, so when the cache fills up it is
// dropped wholesale and rebuilt on demand.
var topoCache struct {
	sync.Mutex
	m map[*Config]*Topology
}

const topoCacheLimit = 128

// TopologyOf returns the Topology of m, derived on first use and cached
// by configuration identity. The configuration must not be mutated
// after the first call (the same contract the reservation tables have
// always had between ResetII calls).
func TopologyOf(m *Config) *Topology {
	topoCache.Lock()
	if t, ok := topoCache.m[m]; ok {
		topoCache.Unlock()
		return t
	}
	topoCache.Unlock()

	nc := len(m.Clusters)
	t := &Topology{
		nc:      nc,
		pathTab: make([][]int, nc*nc),
		linkTab: make([]int, nc*nc),
		linksAt: make([][]int, nc),
	}
	for i := 0; i < nc; i++ {
		t.linksAt[i] = m.LinksAt(i)
		for j := 0; j < nc; j++ {
			t.pathTab[i*nc+j] = m.Path(i, j)
			t.linkTab[i*nc+j] = m.LinkBetween(i, j)
		}
	}

	topoCache.Lock()
	if len(topoCache.m) >= topoCacheLimit {
		topoCache.m = nil
	}
	if topoCache.m == nil {
		topoCache.m = make(map[*Config]*Topology, topoCacheLimit)
	}
	topoCache.m[m] = t
	topoCache.Unlock()
	return t
}
