package ddgio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
)

const sampleText = `
# a dot product
loop dotproduct
node 0 load a[i]
node 1 load b[i]
node 2 fmul
node 3 fadd s
edge 0 2 0
edge 1 2 0
edge 2 3 0
edge 3 3 1
end
loop second
node 0 alu
node 1 store
edge 0 1 0
end
`

func TestReadSample(t *testing.T) {
	loops, err := Read(strings.NewReader(sampleText))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	dp := loops[0]
	if dp.Name != "dotproduct" || dp.Graph.NumNodes() != 4 || dp.Graph.NumEdges() != 4 {
		t.Errorf("dotproduct parsed wrong: %s %d/%d", dp.Name, dp.Graph.NumNodes(), dp.Graph.NumEdges())
	}
	if dp.Graph.Nodes[0].Kind != ddg.OpLoad || dp.Graph.Nodes[0].Name != "a[i]" {
		t.Errorf("node 0 = %v %q", dp.Graph.Nodes[0].Kind, dp.Graph.Nodes[0].Name)
	}
	if dp.Graph.Edges[3].Distance != 1 {
		t.Error("recurrence edge distance lost")
	}
	if loops[1].Name != "second" {
		t.Errorf("second loop name = %q", loops[1].Name)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		g := loopgen.Loop(rng)
		var buf bytes.Buffer
		if err := Write(&buf, "x", g); err != nil {
			t.Fatalf("Write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read back: %v\n%s", err, buf.String())
		}
		if len(back) != 1 {
			t.Fatalf("round trip returned %d loops", len(back))
		}
		if got, want := back[0].Graph.String(), g.String(); got != want {
			t.Fatalf("round trip changed the graph:\n--- got\n%s--- want\n%s", got, want)
		}
	}
}

func TestWriteAllRoundTrip(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 4, Count: 10})
	var buf bytes.Buffer
	if err := WriteAll(&buf, loops); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(back) != 10 {
		t.Fatalf("got %d loops, want 10", len(back))
	}
	if back[3].Name != "loop3" {
		t.Errorf("loop 3 named %q", back[3].Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"node outside loop", "node 0 alu\n", "outside loop"},
		{"edge outside loop", "edge 0 1 0\n", "outside loop"},
		{"end outside loop", "end\n", "outside loop"},
		{"unclosed loop", "loop x\nnode 0 alu\n", "not closed"},
		{"nested loop", "loop x\nloop y\n", "not closed"},
		{"bad kind", "loop x\nnode 0 bogus\nend\n", "unknown kind"},
		{"out of order ids", "loop x\nnode 1 alu\nend\n", "out of order"},
		{"edge to missing node", "loop x\nnode 0 alu\nedge 0 5 0\nend\n", "undeclared"},
		{"negative distance", "loop x\nnode 0 alu\nnode 1 alu\nedge 0 1 -1\nend\n", "negative"},
		{"bad integer", "loop x\nnode 0 alu\nnode 1 alu\nedge 0 one 0\nend\n", "bad integer"},
		{"short node", "loop x\nnode 0\nend\n", "needs id and kind"},
		{"short edge", "loop x\nnode 0 alu\nedge 0 0\nend\n", "needs from"},
		{"unknown directive", "loop x\nfrobnicate\nend\n", "unknown directive"},
		{"zero-dist cycle rejected", "loop x\nnode 0 alu\nedge 0 0 0\nend\n", "invalid loop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.text))
			if err == nil {
				t.Fatal("Read accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadEmptyStream(t *testing.T) {
	loops, err := Read(strings.NewReader("\n# nothing here\n"))
	if err != nil || len(loops) != 0 {
		t.Errorf("empty stream: %v, %v", loops, err)
	}
}

func TestNodeNameWithSpaces(t *testing.T) {
	text := "loop x\nnode 0 load the first element\nend\n"
	loops, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := loops[0].Graph.Nodes[0].Name; got != "the first element" {
		t.Errorf("name = %q", got)
	}
}
