package ddgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary text to the loop parser: no panics, and
// anything accepted must round-trip through Write and Read unchanged.
func FuzzRead(f *testing.F) {
	seeds := []string{
		sampleText,
		"loop x\nnode 0 alu\nend\n",
		"loop y\nnode 0 load a\nnode 1 store\nedge 0 1 0\nend\n",
		"loop z\nnode 0 fadd\nedge 0 0 1\nend\n",
		"garbage\n",
		"loop q\nnode 0 bogus\nend\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loops, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, l := range loops {
			var buf bytes.Buffer
			if err := Write(&buf, l.Name, l.Graph); err != nil {
				t.Fatalf("Write failed on accepted loop: %v", err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatalf("round trip failed: %v\n%s", err, buf.String())
			}
			if len(back) != 1 || back[0].Graph.String() != l.Graph.String() {
				t.Fatalf("round trip changed loop %q", l.Name)
			}
		}
	})
}
