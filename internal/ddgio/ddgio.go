// Package ddgio reads and writes data-dependence graphs in a small
// line-oriented text format, so loops from outside the synthetic suite
// (hand-written kernels, other compilers' dumps) can be fed to the
// tools:
//
//	# comment
//	loop dotproduct
//	node 0 load a[i]
//	node 1 load b[i]
//	node 2 fmul
//	node 3 fadd s
//	edge 0 2 0
//	edge 1 2 0
//	edge 2 3 0
//	edge 3 3 1
//	end
//
// A stream may contain any number of loops. Node IDs must be dense and
// declared in increasing order; the trailing name after the kind is
// optional and uninterpreted.
package ddgio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clustersched/internal/ddg"
)

// NamedGraph pairs a loop with the name from its "loop" header.
type NamedGraph struct {
	Name  string
	Graph *ddg.Graph
}

// Read parses every loop in the stream. Each finished loop is
// validated; semantically broken graphs (e.g. zero-distance cycles)
// are rejected. Use ReadLax to load such graphs anyway, for tools —
// like clusterlint — that want to analyse broken inputs rather than
// refuse them.
func Read(r io.Reader) ([]NamedGraph, error) {
	return read(r, true)
}

// ReadLax parses every loop in the stream without validating the
// finished graphs. Syntactic errors (unknown directives, dangling
// node references, malformed numbers) are still reported; semantic
// ones (zero-distance cycles) are left for the caller to diagnose.
func ReadLax(r io.Reader) ([]NamedGraph, error) {
	return read(r, false)
}

func read(r io.Reader, validate bool) ([]NamedGraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		out  []NamedGraph
		cur  *NamedGraph
		line int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "loop":
			if cur != nil {
				return nil, fmt.Errorf("ddgio: line %d: loop %q not closed with end", line, cur.Name)
			}
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			cur = &NamedGraph{Name: name, Graph: ddg.NewGraph(16, 32)}
		case "node":
			if cur == nil {
				return nil, fmt.Errorf("ddgio: line %d: node outside loop", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("ddgio: line %d: node needs id and kind", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("ddgio: line %d: bad node id %q", line, fields[1])
			}
			if id != cur.Graph.NumNodes() {
				return nil, fmt.Errorf("ddgio: line %d: node id %d out of order (want %d)", line, id, cur.Graph.NumNodes())
			}
			kind, ok := ddg.ParseOpKind(fields[2])
			if !ok {
				return nil, fmt.Errorf("ddgio: line %d: unknown kind %q", line, fields[2])
			}
			name := ""
			if len(fields) > 3 {
				name = strings.Join(fields[3:], " ")
			}
			cur.Graph.AddNode(kind, name)
		case "edge":
			if cur == nil {
				return nil, fmt.Errorf("ddgio: line %d: edge outside loop", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("ddgio: line %d: edge needs from, to, distance", line)
			}
			var v [3]int
			for i := 0; i < 3; i++ {
				x, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("ddgio: line %d: bad integer %q", line, fields[i+1])
				}
				v[i] = x
			}
			if v[0] < 0 || v[0] >= cur.Graph.NumNodes() || v[1] < 0 || v[1] >= cur.Graph.NumNodes() {
				return nil, fmt.Errorf("ddgio: line %d: edge references undeclared node", line)
			}
			if v[2] < 0 {
				return nil, fmt.Errorf("ddgio: line %d: negative distance", line)
			}
			cur.Graph.AddEdge(v[0], v[1], v[2])
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("ddgio: line %d: end outside loop", line)
			}
			if validate {
				if err := cur.Graph.Validate(); err != nil {
					return nil, fmt.Errorf("ddgio: line %d: invalid loop %q: %w", line, cur.Name, err)
				}
			}
			out = append(out, *cur)
			cur = nil
		default:
			return nil, fmt.Errorf("ddgio: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ddgio: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("ddgio: loop %q not closed with end", cur.Name)
	}
	return out, nil
}

// Write renders one loop in the text format.
func Write(w io.Writer, name string, g *ddg.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "loop %s\n", name)
	for _, n := range g.Nodes {
		if n.Name != "" {
			fmt.Fprintf(bw, "node %d %s %s\n", n.ID, n.Kind, n.Name)
		} else {
			fmt.Fprintf(bw, "node %d %s\n", n.ID, n.Kind)
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "edge %d %d %d\n", e.From, e.To, e.Distance)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// WriteAll renders a whole suite, naming loops loop0, loop1, ...
func WriteAll(w io.Writer, loops []*ddg.Graph) error {
	for i, g := range loops {
		if err := Write(w, fmt.Sprintf("loop%d", i), g); err != nil {
			return err
		}
	}
	return nil
}
