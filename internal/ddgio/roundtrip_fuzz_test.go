package ddgio

import (
	"bytes"
	"strings"
	"testing"

	"clustersched/internal/ddg"
)

// nameAlphabet is the set of rune building blocks for fuzzed node
// names. The format stores a name as the tail of a whitespace-split
// line, so any single-space-separated token sequence must survive;
// leading/trailing space and runs of spaces are canonicalized away by
// the parser and are not representable.
var nameAlphabet = []string{"a", "b[i]", "x+y", "s", "tmp_0", "#not-a-comment", "loop", "edge", "末"}

// fuzzGraph deterministically grows a graph from the fuzz bytes:
// every byte stream maps to some valid Write input, so the fuzzer
// explores graph shapes rather than fighting the parser's syntax.
func fuzzGraph(data []byte) (string, *ddg.Graph) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	kinds := []ddg.OpKind{
		ddg.OpALU, ddg.OpShift, ddg.OpBranch, ddg.OpLoad, ddg.OpStore,
		ddg.OpFAdd, ddg.OpFMul, ddg.OpFDiv, ddg.OpFSqrt, ddg.OpCopy,
	}
	g := ddg.NewGraph(8, 16)
	numNodes := 1 + int(next())%12
	for i := 0; i < numNodes; i++ {
		kind := kinds[int(next())%len(kinds)]
		var words []string
		for n := int(next()) % 4; n > 0; n-- {
			words = append(words, nameAlphabet[int(next())%len(nameAlphabet)])
		}
		g.AddNode(kind, strings.Join(words, " "))
	}
	numEdges := int(next()) % 16
	for i := 0; i < numEdges; i++ {
		from := int(next()) % numNodes
		to := int(next()) % numNodes
		dist := int(next()) % 4
		g.AddEdge(from, to, dist)
	}
	name := "l" + strings.Repeat("x", int(next())%5)
	return name, g
}

// FuzzWriteReadLax checks the inverse direction of FuzzRead: any graph
// we can build survives Write -> ReadLax with its name, node kinds and
// names, and edges (order, endpoints, distances) intact. ReadLax is
// the right reader because fuzzed graphs may be semantically broken
// (zero-distance cycles) yet must still round-trip textually.
func FuzzWriteReadLax(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 5, 2, 9, 3, 3, 0, 1, 1, 1, 2, 0, 2})
	f.Add([]byte("some unstructured seed bytes \x00\xff\x80"))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, g := fuzzGraph(data)
		var buf bytes.Buffer
		if err := Write(&buf, name, g); err != nil {
			t.Fatalf("Write: %v", err)
		}
		text := buf.String()

		back, err := ReadLax(strings.NewReader(text))
		if err != nil {
			t.Fatalf("ReadLax rejected Write output: %v\n%s", err, text)
		}
		if len(back) != 1 {
			t.Fatalf("ReadLax returned %d loops, want 1", len(back))
		}
		if back[0].Name != name {
			t.Errorf("name %q became %q", name, back[0].Name)
		}
		got := back[0].Graph
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("shape changed: %d/%d nodes, %d/%d edges\n%s",
				got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges(), text)
		}
		for i, n := range g.Nodes {
			if got.Nodes[i].Kind != n.Kind || got.Nodes[i].Name != n.Name {
				t.Errorf("node %d: %v %q became %v %q", i, n.Kind, n.Name, got.Nodes[i].Kind, got.Nodes[i].Name)
			}
		}
		for i, e := range g.Edges {
			if got.Edges[i] != e {
				t.Errorf("edge %d: %+v became %+v", i, e, got.Edges[i])
			}
		}

		// Write is canonical: re-rendering the parsed graph reproduces
		// the text byte for byte.
		var again bytes.Buffer
		if err := Write(&again, back[0].Name, got); err != nil {
			t.Fatalf("re-Write: %v", err)
		}
		if again.String() != text {
			t.Errorf("Write is not canonical:\nfirst:\n%s\nsecond:\n%s", text, again.String())
		}
	})
}
