// Package sim functionally executes a software-pipelined schedule: it
// runs N overlapped iterations cycle by cycle, models every cluster's
// register file under the MVE register allocation (rotating the
// binding instance each iteration), propagates value tags through
// operations and inter-cluster copies, and verifies that every operand
// read observes exactly the value the loop's sequential semantics
// require. It is the strongest end-to-end oracle in the repository:
// a wrong cluster route, a clobbered register, a mis-rotated instance,
// or a lifetime cut short all surface as a concrete wrong read at a
// concrete cycle.
package sim

import (
	"fmt"
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
)

// tag identifies one dynamic value: node v's result in iteration iter.
type tag struct {
	node int
	iter int
}

// regKey addresses one register of one cluster's file.
type regKey struct {
	cluster  int
	register int
}

// bindKey looks up where value v's instance lives in a cluster's file.
type bindKey struct {
	value    int
	cluster  int
	instance int
}

// Binding resolves where value's instance of the given absolute
// iteration lives in cluster's register file; ok is false when the
// allocation has no register for it (an allocation bug).
type Binding func(value, cluster, iter int) (register int, ok bool)

// Run executes iters iterations of the schedule with the given MVE
// allocation and reports the first semantic violation, or nil when
// every read of every iteration saw the right value.
func Run(in sched.Input, s *sched.Schedule, alloc *regalloc.Allocation, iters int) error {
	if iters <= 0 {
		iters = 3*alloc.Factor + 4
	}
	return RunWithBinding(in, s, iters, MVEBinding(alloc))
}

// MVEBinding adapts an MVE register allocation to the Binding the
// executors consume: value v's instance of absolute iteration i lives
// in the register bound to instance i mod Factor.
func MVEBinding(alloc *regalloc.Allocation) Binding {
	binding := map[bindKey]int{}
	for _, b := range alloc.Bindings {
		binding[bindKey{value: b.Value, cluster: b.Cluster, instance: b.Instance}] = b.Register
	}
	return func(value, cluster, iter int) (int, bool) {
		r, ok := binding[bindKey{value: value, cluster: cluster, instance: iter % alloc.Factor}]
		return r, ok
	}
}

// RunRotating executes the schedule under a rotating-register-file
// allocation: value v's instance of iteration i lives in physical
// register (logical(v) + i) mod R of its cluster's file, exactly the
// Cydra 5 / IA-64 rotation semantics.
func RunRotating(in sched.Input, s *sched.Schedule, rot *regalloc.Rotating, iters int) error {
	if iters <= 0 {
		iters = 3*rot.MaxSpan() + 6
	}
	return RunWithBinding(in, s, iters, func(value, cluster, iter int) (int, bool) {
		l, ok := rot.Logical(value, cluster)
		if !ok {
			return 0, false
		}
		r := rot.RegsPerCluster[cluster]
		return ((l+iter)%r + r) % r, true
	})
}

// RunWithBinding executes iters iterations under an arbitrary register
// binding and reports the first semantic violation.
func RunWithBinding(in sched.Input, s *sched.Schedule, iters int, binding Binding) error {
	g := in.Graph
	lat := in.Machine.Latency

	clusterOf := func(n int) int {
		if in.ClusterOf == nil {
			return 0
		}
		return in.ClusterOf[n]
	}
	produces := func(n int) bool {
		k := g.Nodes[n].Kind
		return k != ddg.OpStore && k != ddg.OpBranch
	}
	// writeFiles lists the clusters whose register file receives node
	// n's result.
	writeFiles := func(n int) []int {
		if g.Nodes[n].Kind == ddg.OpCopy && in.CopyTargets != nil {
			return in.CopyTargets[n]
		}
		return []int{clusterOf(n)}
	}

	// Build the event list: reads at issue time, writes at completion.
	type event struct {
		cycle int
		write bool
		node  int
		iter  int
	}
	var events []event
	for v := 0; v < g.NumNodes(); v++ {
		for it := 0; it < iters; it++ {
			issue := s.CycleOf[v] + it*s.II
			events = append(events, event{cycle: issue, node: v, iter: it})
			if produces(v) {
				events = append(events, event{cycle: issue + lat(g.Nodes[v].Kind), write: true, node: v, iter: it})
			}
		}
	}
	// Writes before reads within a cycle: a dependence satisfied with
	// zero slack delivers its value exactly at the consumer's issue
	// cycle, and the register allocator guarantees the overwritten
	// value's last use lies strictly earlier.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].cycle != events[j].cycle {
			return events[i].cycle < events[j].cycle
		}
		return events[i].write && !events[j].write
	})

	regs := map[regKey]tag{}

	for _, ev := range events {
		v, it := ev.node, ev.iter
		if ev.write {
			for _, cl := range writeFiles(v) {
				r, ok := binding(v, cl, it)
				if !ok {
					return fmt.Errorf("sim: node %d has no register binding in cluster %d (iteration %d)",
						v, cl, it)
				}
				regs[regKey{cluster: cl, register: r}] = tag{node: v, iter: it}
			}
			continue
		}
		// Issue: check every register operand. Edges from stores and
		// branches are ordering dependences (memory, control), not
		// register reads.
		for _, e := range g.InEdges(v) {
			u := e.From
			if !produces(u) {
				continue
			}
			srcIter := it - e.Distance
			if srcIter < 0 {
				continue // value predates the loop (preloaded)
			}
			cl := clusterOf(v)
			r, ok := binding(u, cl, srcIter)
			if !ok {
				return fmt.Errorf("sim: cycle %d: node %d (cluster %d) reads value %d, which has no register in that file",
					ev.cycle, v, cl, u)
			}
			got, ok := regs[regKey{cluster: cl, register: r}]
			want := tag{node: u, iter: srcIter}
			if !ok {
				return fmt.Errorf("sim: cycle %d: node %d reads c%d.r%d before any write (want value %d of iteration %d)",
					ev.cycle, v, cl, r, u, srcIter)
			}
			if got != want {
				return fmt.Errorf("sim: cycle %d: node %d reads c%d.r%d = (node %d, iter %d), want (node %d, iter %d)",
					ev.cycle, v, cl, r, got.node, got.iter, want.node, want.iter)
			}
		}
	}
	return nil
}
