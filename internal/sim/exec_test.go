package sim

import (
	"math/rand"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/regalloc"
)

// TestValuesDotProduct pins the value executors on the canonical
// fixture: pipelined values must equal the naive execution for every
// producing node and iteration.
func TestValuesDotProduct(t *testing.T) {
	g := ddg.NewGraph(4, 4)
	a := g.AddNode(ddg.OpLoad, "a")
	b := g.AddNode(ddg.OpLoad, "b")
	mul := g.AddNode(ddg.OpFMul, "")
	acc := g.AddNode(ddg.OpFAdd, "s")
	g.AddEdge(a, mul, 0)
	g.AddEdge(b, mul, 0)
	g.AddEdge(mul, acc, 0)
	g.AddEdge(acc, acc, 1)
	m := machine.NewBusedGP(2, 2, 1)
	in, s := schedule(t, g, m)
	alloc := regalloc.AllocateMVE(in, s)
	const iters = 12
	pipe, err := PipelinedValues(in, s, iters, MVEBinding(alloc))
	if err != nil {
		t.Fatalf("pipelined execution: %v", err)
	}
	naive := NaiveValues(in.Graph, iters)
	for it := 0; it < iters; it++ {
		for n := 0; n < in.Graph.NumNodes(); n++ {
			if naive[it][n] != pipe[it][n] {
				t.Fatalf("node %d iter %d: naive %x, pipelined %x", n, it, naive[it][n], pipe[it][n])
			}
		}
	}
}

// TestValuesSuiteLoops runs the value differential over suite loops on
// three machine families, also checking that copies are transparent:
// the annotated graph's naive values agree with the original graph's
// on the original nodes.
func TestValuesSuiteLoops(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 60; i++ {
		g := loopgen.Loop(rng)
		m := machines[i%len(machines)]
		in, s := schedule(t, g, m)
		alloc := regalloc.AllocateMVE(in, s)
		iters := 3*alloc.Factor + 4
		naiveOrig := NaiveValues(g, iters)
		naiveAnn := NaiveValues(in.Graph, iters)
		pipe, err := PipelinedValues(in, s, iters, MVEBinding(alloc))
		if err != nil {
			t.Fatalf("loop %d on %s: pipelined execution: %v", i, m.Name, err)
		}
		for it := 0; it < iters; it++ {
			for n := 0; n < g.NumNodes(); n++ {
				if naiveOrig[it][n] != naiveAnn[it][n] {
					t.Fatalf("loop %d on %s: copy insertion changed node %d's value at iter %d", i, m.Name, n, it)
				}
			}
			for n := 0; n < in.Graph.NumNodes(); n++ {
				if naiveAnn[it][n] != pipe[it][n] {
					t.Fatalf("loop %d on %s: node %d iter %d: naive %x, pipelined %x",
						i, m.Name, n, it, naiveAnn[it][n], pipe[it][n])
				}
			}
		}
	}
}

// TestValuesDetectClobber forces two live values onto one register and
// requires the value differential to notice — the sensitivity check
// that proves the oracle can actually fail.
func TestValuesDetectClobber(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := machine.NewBusedGP(2, 2, 1)
	detected, trials := 0, 0
	for i := 0; i < 40 && trials < 12; i++ {
		g := loopgen.Loop(rng)
		in, s := schedule(t, g, m)
		alloc := regalloc.AllocateMVE(in, s)
		idx := -1
		for j := range alloc.Bindings {
			for k := j + 1; k < len(alloc.Bindings); k++ {
				a, b := alloc.Bindings[j], alloc.Bindings[k]
				if a.Cluster == b.Cluster && a.Register != b.Register && a.Len > 1 && b.Len > 1 {
					alloc.Bindings[k].Register = a.Register
					idx = k
					break
				}
			}
			if idx >= 0 {
				break
			}
		}
		if idx < 0 {
			continue
		}
		trials++
		iters := 3*alloc.Factor + 4
		pipe, err := PipelinedValues(in, s, iters, MVEBinding(alloc))
		if err != nil {
			detected++
			continue
		}
		naive := NaiveValues(in.Graph, iters)
		for it := 0; it < iters && idx >= 0; it++ {
			for n := 0; n < in.Graph.NumNodes(); n++ {
				if naive[it][n] != pipe[it][n] {
					detected++
					idx = -1
					break
				}
			}
		}
	}
	if trials == 0 {
		t.Skip("no corruptible fixtures")
	}
	if detected < trials/2 {
		t.Errorf("value differential detected only %d/%d forced clobbers", detected, trials)
	}
}
