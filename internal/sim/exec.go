package sim

import (
	"fmt"
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/sched"
)

// This file is the value-differential oracle: instead of propagating
// (node, iteration) tags, it propagates concrete 64-bit values through
// the register files and compares the pipelined execution against a
// straightforward non-pipelined evaluation of the dependence graph.
// Every operation computes a collision-resistant mix of its operand
// values, so any routing error — wrong operand, wrong iteration, a
// value read from the wrong register — changes the downstream values
// with overwhelming probability. Memory is symbolic, exactly as in
// the tag oracle: each load site draws a per-iteration value stream
// and stores are ordering-only, so the comparison exercises register
// dataflow, copy routing, and MVE rotation, not an array model.
//
// Two properties make naive and pipelined executions comparable:
//
//   - Copies are transparent: a copy's value is its operand's value,
//     so a consumer rerouted through an inserted copy chain computes
//     exactly what it computed in the original graph.
//   - Operand values fold commutatively, so the mix is independent of
//     in-edge order (copy insertion may reorder a consumer's edges).

// mixSeed starts a node's hash from its identity and kind, and
// mixStep folds one 64-bit quantity in (FNV-1a with an avalanche
// finisher, so single-bit differences spread).
func mixSeed(node int, kind ddg.OpKind) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	h = mixStep(h, uint64(node)+1)
	return mixStep(h, uint64(kind)+0x9e3779b97f4a7c15)
}

func mixStep(h, x uint64) uint64 {
	h ^= x
	h *= 1099511628211 // FNV prime
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// nodeValue computes node v's value at iteration it given its folded
// operand sum (see valueOf for the fold). Leaf operations (no
// producing operands) vary by iteration — a load reads a different
// element each time around.
func nodeValue(v int, kind ddg.OpKind, it int, operands uint64, leaf bool) uint64 {
	h := mixSeed(v, kind)
	if leaf {
		return mixStep(h, uint64(int64(it))+0x5bf03635)
	}
	return mixStep(h, operands)
}

// preloadValue is the value a consumer observes for an operand whose
// producing iteration predates the loop (srcIter < 0): a constant of
// the producer's identity and the negative iteration. Copies are
// resolved transparently so an annotated graph's preloads agree with
// the original graph's.
func preloadValue(g *ddg.Graph, v, it int) uint64 {
	for g.Nodes[v].Kind == ddg.OpCopy {
		src, dist, ok := copySource(g, v)
		if !ok {
			break
		}
		v, it = src, it-dist
	}
	return mixStep(mixSeed(v, g.Nodes[v].Kind), uint64(int64(it)))
}

// copySource finds a copy node's producing operand and edge distance.
func copySource(g *ddg.Graph, c int) (src, dist int, ok bool) {
	for _, e := range g.InEdges(c) {
		if producesValue(g, e.From) {
			return e.From, e.Distance, true
		}
	}
	return 0, 0, false
}

func producesValue(g *ddg.Graph, n int) bool {
	k := g.Nodes[n].Kind
	return k != ddg.OpStore && k != ddg.OpBranch
}

// NaiveValues executes iters iterations of g non-pipelined, in plain
// dependence order, and returns vals[it][node] for every node (zero
// for stores and branches, which produce no value). It is the
// reference side of the differential: what the loop means, independent
// of any schedule, cluster assignment, or register binding. Copies
// (in an annotated graph) are transparent, so NaiveValues of an
// annotated graph agrees with NaiveValues of the original graph on
// the original nodes.
func NaiveValues(g *ddg.Graph, iters int) [][]uint64 {
	n := g.NumNodes()
	vals := make([][]uint64, iters)
	for it := range vals {
		vals[it] = make([]uint64, n)
	}
	// state memoizes the current iteration's sweep (0 new, 1 visiting,
	// 2 done); earlier iterations are fully evaluated by the time a
	// loop-carried edge reaches back to them, so their values are read
	// straight out of vals.
	state := make([]uint8, n)
	cur := 0
	var eval func(v, it int) uint64
	eval = func(v, it int) uint64 {
		if it < 0 {
			return preloadValue(g, v, it)
		}
		if it < cur {
			return vals[it][v]
		}
		if state[v] == 2 {
			return vals[it][v]
		}
		if state[v] == 1 {
			// A zero-distance cycle would be an invalid graph
			// (ddg.Validate rejects them); defend anyway.
			return mixSeed(v, g.Nodes[v].Kind)
		}
		state[v] = 1
		var out uint64
		if !producesValue(g, v) {
			out = 0
		} else if g.Nodes[v].Kind == ddg.OpCopy {
			if src, dist, ok := copySource(g, v); ok {
				out = eval(src, it-dist)
			} else {
				out = mixSeed(v, ddg.OpCopy)
			}
		} else {
			var operands uint64
			leaf := true
			for _, e := range g.InEdges(v) {
				if !producesValue(g, e.From) {
					continue
				}
				leaf = false
				operands += eval(e.From, it-e.Distance)
			}
			out = nodeValue(v, g.Nodes[v].Kind, it, operands, leaf)
		}
		vals[it][v] = out
		state[v] = 2
		return out
	}
	for it := 0; it < iters; it++ {
		cur = it
		for i := range state {
			state[i] = 0
		}
		for v := 0; v < n; v++ {
			eval(v, it)
		}
	}
	return vals
}

// PipelinedValues executes iters overlapped iterations of the
// schedule under the register binding, computing every operation's
// value from the registers it actually reads at its issue cycle and
// writing results to the register files at completion, exactly like
// RunWithBinding but with values instead of tags. Copies move the
// value they read. The returned vals[it][node] compare against
// NaiveValues of the same graph: any difference on a producing node
// is a concrete semantic break of the pipelined execution.
func PipelinedValues(in sched.Input, s *sched.Schedule, iters int, binding Binding) ([][]uint64, error) {
	g := in.Graph
	lat := in.Machine.Latency

	clusterOf := func(n int) int {
		if in.ClusterOf == nil {
			return 0
		}
		return in.ClusterOf[n]
	}
	writeFiles := func(n int) []int {
		if g.Nodes[n].Kind == ddg.OpCopy && in.CopyTargets != nil {
			return in.CopyTargets[n]
		}
		return []int{clusterOf(n)}
	}

	type event struct {
		cycle int
		write bool
		node  int
		iter  int
	}
	var events []event
	for v := 0; v < g.NumNodes(); v++ {
		for it := 0; it < iters; it++ {
			issue := s.CycleOf[v] + it*s.II
			events = append(events, event{cycle: issue, node: v, iter: it})
			if producesValue(g, v) {
				events = append(events, event{cycle: issue + lat(g.Nodes[v].Kind), write: true, node: v, iter: it})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].cycle != events[j].cycle {
			return events[i].cycle < events[j].cycle
		}
		return events[i].write && !events[j].write
	})

	regs := map[regKey]uint64{}
	vals := make([][]uint64, iters)
	for it := range vals {
		vals[it] = make([]uint64, g.NumNodes())
	}

	for _, ev := range events {
		v, it := ev.node, ev.iter
		if ev.write {
			for _, cl := range writeFiles(v) {
				r, ok := binding(v, cl, it)
				if !ok {
					return nil, fmt.Errorf("sim: node %d has no register binding in cluster %d (iteration %d)", v, cl, it)
				}
				regs[regKey{cluster: cl, register: r}] = vals[it][v]
			}
			continue
		}
		if !producesValue(g, v) {
			continue
		}
		// Issue: read the operands from this cluster's file and compute.
		cl := clusterOf(v)
		var operands, copied uint64
		leaf := true
		for _, e := range g.InEdges(v) {
			u := e.From
			if !producesValue(g, u) {
				continue
			}
			leaf = false
			srcIter := it - e.Distance
			var val uint64
			if srcIter < 0 {
				val = preloadValue(g, u, srcIter)
			} else {
				r, ok := binding(u, cl, srcIter)
				if !ok {
					return nil, fmt.Errorf("sim: cycle %d: node %d (cluster %d) reads value %d, which has no register in that file",
						ev.cycle, v, cl, u)
				}
				val = regs[regKey{cluster: cl, register: r}]
			}
			operands += val
			copied = val
		}
		if g.Nodes[v].Kind == ddg.OpCopy {
			vals[it][v] = copied
		} else {
			vals[it][v] = nodeValue(v, g.Nodes[v].Kind, it, operands, leaf)
		}
	}
	return vals, nil
}
