package sim

import (
	"math/rand"
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/stagesched"
)

func schedule(t testing.TB, g *ddg.Graph, m *machine.Config) (sched.Input, *sched.Schedule) {
	t.Helper()
	base := mii.MII(g, m)
	for ii := base; ii < base+32; ii++ {
		res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if !ok {
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		if s, ok := sched.IMS(in, 0); ok {
			return in, s
		}
	}
	t.Fatal("unschedulable fixture")
	return sched.Input{}, nil
}

func TestSimulateDotProduct(t *testing.T) {
	g := ddg.NewGraph(4, 4)
	a := g.AddNode(ddg.OpLoad, "a")
	b := g.AddNode(ddg.OpLoad, "b")
	mul := g.AddNode(ddg.OpFMul, "")
	acc := g.AddNode(ddg.OpFAdd, "s")
	g.AddEdge(a, mul, 0)
	g.AddEdge(b, mul, 0)
	g.AddEdge(mul, acc, 0)
	g.AddEdge(acc, acc, 1)
	m := machine.NewBusedGP(2, 2, 1)
	in, s := schedule(t, g, m)
	alloc := regalloc.AllocateMVE(in, s)
	if err := Run(in, s, alloc, 12); err != nil {
		t.Fatalf("simulation: %v", err)
	}
}

// TestSimulateSuiteLoops is the end-to-end functional oracle over the
// suite and every machine family, including stage-scheduled kernels.
func TestSimulateSuiteLoops(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 120; i++ {
		g := loopgen.Loop(rng)
		m := machines[i%len(machines)]
		in, s := schedule(t, g, m)
		alloc := regalloc.AllocateMVE(in, s)
		if err := alloc.Validate(in, s); err != nil {
			t.Fatalf("loop %d on %s: allocation invalid: %v", i, m.Name, err)
		}
		if err := Run(in, s, alloc, 0); err != nil {
			t.Fatalf("loop %d on %s: %v", i, m.Name, err)
		}
		// Stage scheduling must preserve functional correctness with a
		// fresh allocation.
		stagesched.Optimize(in, s)
		alloc2 := regalloc.AllocateMVE(in, s)
		if err := Run(in, s, alloc2, 0); err != nil {
			t.Fatalf("loop %d on %s after stage scheduling: %v", i, m.Name, err)
		}
	}
}

// TestSimulateDetectsClobberedAllocation corrupts a register binding
// and requires the simulator to notice.
func TestSimulateDetectsClobberedAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := machine.NewBusedGP(2, 2, 1)
	detected := 0
	trials := 0
	for i := 0; i < 40 && trials < 12; i++ {
		g := loopgen.Loop(rng)
		in, s := schedule(t, g, m)
		alloc := regalloc.AllocateMVE(in, s)
		// Force two distinct bindings in the same cluster onto one
		// register; skip loops too small to have two.
		idx := -1
		for j := range alloc.Bindings {
			for k := j + 1; k < len(alloc.Bindings); k++ {
				a, b := alloc.Bindings[j], alloc.Bindings[k]
				if a.Cluster == b.Cluster && a.Register != b.Register &&
					a.Len > 1 && b.Len > 1 {
					alloc.Bindings[k].Register = a.Register
					idx = k
					break
				}
			}
			if idx >= 0 {
				break
			}
		}
		if idx < 0 {
			continue
		}
		trials++
		if err := Run(in, s, alloc, 0); err != nil {
			detected++
		}
	}
	if trials == 0 {
		t.Skip("no corruptible fixtures")
	}
	if detected < trials/2 {
		t.Errorf("simulator detected only %d/%d forced clobbers", detected, trials)
	}
}

func TestSimulateDetectsWrongRotation(t *testing.T) {
	// A value consumed two iterations later at II=1 needs MVE factor
	// >= 3; breaking the instance rotation must surface as a wrong tag.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 3}}
	alloc := regalloc.AllocateMVE(in, s)
	if err := Run(in, s, alloc, 9); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	// Collapse all instances of a onto one register: iterations now
	// clobber each other before the distance-2 use.
	for i := range alloc.Bindings {
		if alloc.Bindings[i].Value == a {
			alloc.Bindings[i].Register = 0
		}
	}
	if err := Run(in, s, alloc, 9); err == nil {
		t.Error("clobbered rotation not detected")
	} else if !strings.Contains(err.Error(), "reads") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSimulateMemoryOrderingEdges(t *testing.T) {
	// Edges out of stores (memory dependences) are ordering only; the
	// simulator must not demand a register for them.
	g := ddg.NewGraph(3, 2)
	st := g.AddNode(ddg.OpStore, "x[i]")
	ld := g.AddNode(ddg.OpLoad, "x[i-1]")
	use := g.AddNode(ddg.OpFAdd, "")
	g.AddEdge(st, ld, 1) // RAW through memory
	g.AddEdge(ld, use, 0)
	g.AddEdge(use, st, 0)
	m := machine.NewUnifiedGP(4)
	in, s := schedule(t, g, m)
	alloc := regalloc.AllocateMVE(in, s)
	if err := Run(in, s, alloc, 10); err != nil {
		t.Fatalf("memory ordering edge mishandled: %v", err)
	}
}

// TestSimulateRotatingAllocation cross-validates the rotating-register
// allocator with the functional simulator on suite loops: every
// operand read must see the right value under rotation semantics.
func TestSimulateRotatingAllocation(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 90; i++ {
		g := loopgen.Loop(rng)
		m := machines[i%len(machines)]
		in, s := schedule(t, g, m)
		rot := regalloc.AllocateRotating(in, s)
		if err := rot.Validate(in, s); err != nil {
			t.Fatalf("loop %d on %s: allocation invalid: %v", i, m.Name, err)
		}
		if err := RunRotating(in, s, rot, 0); err != nil {
			t.Fatalf("loop %d on %s: %v", i, m.Name, err)
		}
	}
}

// TestSimulateRotatingDetectsUndersizedFile shrinks a rotating file
// and requires the simulator to catch the resulting clobber.
func TestSimulateRotatingDetectsUndersizedFile(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	rot := regalloc.AllocateRotating(in, s)
	if err := RunRotating(in, s, rot, 12); err != nil {
		t.Fatalf("valid rotation rejected: %v", err)
	}
	rot.RegsPerCluster[0] = 2 // too small: instances wrap onto each other
	if err := RunRotating(in, s, rot, 12); err == nil {
		t.Error("undersized rotating file not detected")
	}
}
