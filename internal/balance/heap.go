package balance

import (
	"container/heap"
	"sync/atomic"

	"clustersched/internal/client"
)

// worker is the balancer's per-node handle: the stable identity (its
// base URL doubles as the ring node ID), a typed client for heartbeat
// probes, and the load signals placement scores against — the
// balancer's own in-flight count (authoritative, updated on every
// dispatch edge) and the queue depth the worker last reported on
// /fleetz (staler, but covers load from other frontends).
type worker struct {
	id string
	c  *client.Client

	inflight   atomic.Int64
	reported   atomic.Int64
	placements atomic.Int64

	heapIndex int // maintained by loadHeap, guarded by the balancer mutex
}

// score is the placement key: local in-flight requests dominate, the
// reported queue depth breaks ties between equally idle workers.
func (w *worker) score() int64 {
	return w.inflight.Load()<<20 | (w.reported.Load() & (1<<20 - 1))
}

// loadHeap is the idle/queue-depth min-heap behind power-of-k-choices
// placement: the root is the least-loaded worker, and pick pops the k
// cheapest candidates before re-scoring them against the live
// counters. All methods must run under the owning balancer's mutex.
type loadHeap []*worker

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	si, sj := h[i].score(), h[j].score()
	if si != sj {
		return si < sj
	}
	return h[i].id < h[j].id // deterministic tie-break
}
func (h loadHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *loadHeap) Push(x any) {
	w := x.(*worker)
	w.heapIndex = len(*h)
	*h = append(*h, w)
}
func (h *loadHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	w.heapIndex = -1
	return w
}

// fix restores heap order after w's score changed.
func (h *loadHeap) fix(w *worker) {
	if w.heapIndex >= 0 {
		heap.Fix(h, w.heapIndex)
	}
}

// pickK pops up to k workers satisfying eligible off the heap (the k
// cheapest by heap order), re-scores them against the live counters,
// and returns the best; everything popped is pushed back. Returns nil
// when no worker is eligible.
func (h *loadHeap) pickK(k int, eligible func(*worker) bool) *worker {
	if k < 1 {
		k = 1
	}
	var candidates, skipped []*worker
	for len(candidates) < k && h.Len() > 0 {
		w := heap.Pop(h).(*worker)
		if eligible(w) {
			candidates = append(candidates, w)
		} else {
			skipped = append(skipped, w)
		}
	}
	var best *worker
	for _, w := range candidates {
		if best == nil || w.score() < best.score() || (w.score() == best.score() && w.id < best.id) {
			best = w
		}
	}
	for _, w := range candidates {
		heap.Push(h, w)
	}
	for _, w := range skipped {
		heap.Push(h, w)
	}
	return best
}
