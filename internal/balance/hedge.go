package balance

import (
	"sort"
	"sync"
	"time"
)

// latencyDigest tracks recent schedule latencies in a fixed ring
// buffer so the balancer can derive its hedge delay from the observed
// p99: a duplicate dispatch fired any earlier burns worker time on
// requests that were about to answer anyway, any later stops helping
// the tail (the hedged-request rule of thumb from the tail-at-scale
// literature).
type latencyDigest struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	filled  int
}

const digestSize = 512

// minHedgeSamples gates the quantile: below it the digest reports
// nothing and the balancer falls back to its configured floor.
const minHedgeSamples = 16

func newLatencyDigest() *latencyDigest {
	return &latencyDigest{samples: make([]time.Duration, digestSize)}
}

func (d *latencyDigest) record(v time.Duration) {
	d.mu.Lock()
	d.samples[d.next] = v
	d.next = (d.next + 1) % len(d.samples)
	if d.filled < len(d.samples) {
		d.filled++
	}
	d.mu.Unlock()
}

// quantile returns the q-quantile (0 < q < 1) of the recorded window,
// or false with too few samples.
func (d *latencyDigest) quantile(q float64) (time.Duration, bool) {
	d.mu.Lock()
	if d.filled < minHedgeSamples {
		d.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, d.filled)
	copy(buf, d.samples[:d.filled])
	d.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(len(buf)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx], true
}

// hedgeBudget bounds duplicate dispatch to a fraction of real
// traffic, so a fleet-wide slowdown cannot double its own load: a
// hedge is admitted only while hedges so far stay under
// fraction x placements (plus a small burst allowance for startup).
type hedgeBudget struct {
	fraction float64
	burst    int64
}

func (b hedgeBudget) allow(hedges, placements int64) bool {
	if b.fraction <= 0 {
		return false
	}
	return float64(hedges) < b.fraction*float64(placements)+float64(b.burst)
}
