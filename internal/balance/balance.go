// Package balance implements clusterlb, the fleet front end: a
// stdlib-only HTTP balancer that fans clusterd's scheduling API out
// over N workers. Three mechanisms cooperate (docs/SERVICE.md has the
// operator view):
//
//   - Placement. Every dispatch picks a worker with power-of-k-choices
//     over an idle/queue-depth min-heap (heap.go): pop the k cheapest
//     candidates, re-score them against the live in-flight counters,
//     send to the best. Heartbeat polls of each worker's /fleetz feed
//     the reported-depth half of the score.
//
//   - Cache affinity. /v1/schedule requests are routed to the
//     consistent-hash owner of their content-addressed cache key
//     (server.KeyForRequest onto cachering), so repeated requests hit
//     the same worker's cache, and a worker failure only remaps the
//     keys it owned. The ring is rebuilt whenever the membership epoch
//     moves.
//
//   - Tail tolerance. A schedule request still unanswered after a
//     p99-derived delay is hedged: a budgeted duplicate goes to the
//     next-best worker, the first response wins, the loser's context
//     is canceled. Transport failures mark the worker suspect in the
//     membership table and fail over to another worker; scheduling is
//     pure and content-addressed, so retries and hedges always return
//     byte-identical bodies.
package balance

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"clustersched/internal/cachering"
	"clustersched/internal/client"
	"clustersched/internal/membership"
	"clustersched/internal/obs"
	"clustersched/internal/server"
)

// maxBodyBytes mirrors the worker-side request cap.
const maxBodyBytes = 16 << 20

// Config tunes a Balancer. Workers is required; everything else has
// a usable default.
type Config struct {
	// Workers is the clusterd base URLs the balancer fans out over.
	Workers []string
	// K is the power-of-k-choices width (default 2).
	K int
	// VirtualNodes is the consistent-hash points per worker
	// (cachering.DefaultVirtualNodes when <= 0).
	VirtualNodes int
	// HeartbeatEvery is the /fleetz poll interval (default 1s).
	HeartbeatEvery time.Duration
	// SuspectAfter and DeadAfter are the membership timeouts; they
	// default from HeartbeatEvery (3x and 9x).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// HedgeBudget is the fraction of schedule dispatches that may be
	// hedged (default 0.1; 0 disables hedging).
	HedgeBudget float64
	// HedgeAfterMin floors the hedge delay, and is the delay used
	// before enough latency samples exist (default 20ms).
	HedgeAfterMin time.Duration
	// RequestTimeout bounds one proxied request end to end, including
	// failover attempts (0 = bounded only by the client connection).
	RequestTimeout time.Duration
	// HTTPClient overrides the outbound client (nil = a pooled one).
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 2
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 9 * c.HeartbeatEvery
	}
	if c.HedgeBudget < 0 {
		c.HedgeBudget = 0
	}
	if c.HedgeAfterMin <= 0 {
		c.HedgeAfterMin = 20 * time.Millisecond
	}
	if c.HTTPClient == nil {
		tr := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 64, IdleConnTimeout: 90 * time.Second}
		c.HTTPClient = &http.Client{Transport: tr}
	}
	return c
}

// Balancer is clusterlb's http.Handler plus the heartbeat poller.
// Create one with New, serve it, and run Run in the background.
type Balancer struct {
	cfg      Config
	mux      *http.ServeMux
	members  *membership.Table
	workers  []*worker // configuration order
	byID     map[string]*worker
	start    time.Time
	counters obs.FleetCounters
	digest   *latencyDigest
	budget   hedgeBudget

	requests atomic.Int64

	mu   sync.Mutex // guards the heap (and worker heap indices)
	heap loadHeap

	ringMu sync.Mutex // serializes rebuilds; reads go through ring
	ring   atomic.Pointer[cachering.Ring]
}

// New builds a balancer over cfg.Workers. Every worker starts Alive
// (optimistically; the first failed dispatch or heartbeat demotes
// it), and the initial ring covers all of them.
func New(cfg Config) (*Balancer, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("balance: no workers configured")
	}
	b := &Balancer{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		members: membership.NewTable(membership.Config{SuspectAfter: cfg.SuspectAfter, DeadAfter: cfg.DeadAfter}),
		byID:    make(map[string]*worker, len(cfg.Workers)),
		start:   time.Now(),
		digest:  newLatencyDigest(),
		budget:  hedgeBudget{fraction: cfg.HedgeBudget, burst: 4},
	}
	now := time.Now()
	for _, url := range cfg.Workers {
		if _, dup := b.byID[url]; dup {
			return nil, fmt.Errorf("balance: duplicate worker %s", url)
		}
		w := &worker{id: url, c: client.New(url, cfg.HTTPClient), heapIndex: -1}
		b.workers = append(b.workers, w)
		b.byID[url] = w
		b.members.Register(url, now)
	}
	b.mu.Lock()
	for _, w := range b.workers {
		heap.Push(&b.heap, w)
	}
	b.mu.Unlock()
	b.rebuildRing()

	b.mux.HandleFunc("/v1/schedule", b.handleSchedule)
	b.mux.HandleFunc("/v1/batch", b.proxyByChoice("/v1/batch"))
	b.mux.HandleFunc("/v1/lint", b.proxyByChoice("/v1/lint"))
	b.mux.HandleFunc("/healthz", b.handleHealthz)
	b.mux.HandleFunc("/statsz", b.handleStatsz)
	return b, nil
}

// ServeHTTP dispatches to the balancer routes.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mux.ServeHTTP(w, r)
}

// Run polls every worker's /fleetz until ctx ends, feeding the
// membership table and rebuilding the ring on epoch changes. It
// probes once immediately, so a balancer in front of a dead worker
// reroutes within one heartbeat of starting.
func (b *Balancer) Run(ctx context.Context) {
	ticker := time.NewTicker(b.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		b.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// probeAll heartbeats every worker in parallel, then applies the
// timeout rules and refreshes the ring.
func (b *Balancer) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range b.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, b.cfg.HeartbeatEvery)
			defer cancel()
			b.counters.HeartbeatProbes.Add(1)
			fz, err := w.c.Fleetz(pctx)
			now := time.Now()
			if err != nil {
				b.counters.HeartbeatFailures.Add(1)
				b.members.ReportFailure(w.id, now)
				return
			}
			b.members.Heartbeat(w.id, fz.Inflight, now)
			w.reported.Store(int64(fz.Inflight))
			b.mu.Lock()
			b.heap.fix(w)
			b.mu.Unlock()
		}(w)
	}
	wg.Wait()
	b.members.Tick(time.Now())
	b.rebuildRing()
}

// rebuildRing swaps in a ring for the current membership epoch if one
// is not already installed. Rebuilds are cheap (a few thousand hashes)
// and happen only when the epoch moves.
func (b *Balancer) rebuildRing() {
	b.ringMu.Lock()
	defer b.ringMu.Unlock()
	epoch := b.members.Epoch()
	if cur := b.ring.Load(); cur != nil && cur.Epoch() == epoch {
		return
	}
	b.ring.Store(cachering.New(epoch, b.members.Eligible(), b.cfg.VirtualNodes))
	b.counters.RingRebalances.Add(1)
}

// alive reports whether w is currently placement-eligible.
func (b *Balancer) alive(w *worker) bool {
	st, ok := b.members.State(w.id)
	return ok && st == membership.Alive
}

// pick chooses a dispatch target by power-of-k-choices among the
// alive workers not in exclude; with no alive candidate it degrades
// to suspect workers (better a maybe-dead worker than a guaranteed
// error), and returns nil only when every worker is excluded.
func (b *Balancer) pick(exclude map[string]bool) *worker {
	b.mu.Lock()
	defer b.mu.Unlock()
	w := b.heap.pickK(b.cfg.K, func(w *worker) bool {
		return !exclude[w.id] && b.alive(w)
	})
	if w == nil {
		w = b.heap.pickK(b.cfg.K, func(w *worker) bool {
			st, ok := b.members.State(w.id)
			return !exclude[w.id] && ok && st != membership.Dead
		})
	}
	if w == nil {
		w = b.heap.pickK(b.cfg.K, func(w *worker) bool { return !exclude[w.id] })
	}
	return w
}

// owner resolves the ring owner of key to a live worker, or nil when
// the owner is not currently eligible (the caller falls back to
// k-choices until the next rebalance remaps the arc).
func (b *Balancer) owner(key string) *worker {
	ring := b.ring.Load()
	if ring == nil {
		return nil
	}
	id, ok := ring.Owner(key)
	if !ok {
		return nil
	}
	w := b.byID[id]
	if w == nil || !b.alive(w) {
		return nil
	}
	return w
}

// result is one forwarded reply: either a full HTTP response from a
// worker (authoritative, whatever the status) or a transport error.
type result struct {
	status      int
	contentType string
	xcache      string
	body        []byte
	worker      *worker
	err         error
}

// send forwards one request body to w and buffers the entire reply
// before reporting success, so a worker dying mid-response surfaces
// as a transport error and fails over instead of truncating the
// client's body.
func (b *Balancer) send(ctx context.Context, w *worker, path string, body []byte) result {
	w.inflight.Add(1)
	w.placements.Add(1)
	b.mu.Lock()
	b.heap.fix(w)
	b.mu.Unlock()
	defer func() {
		w.inflight.Add(-1)
		b.mu.Lock()
		b.heap.fix(w)
		b.mu.Unlock()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.id+path, bytes.NewReader(body))
	if err != nil {
		return result{worker: w, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.cfg.HTTPClient.Do(req)
	if err != nil {
		return result{worker: w, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return result{worker: w, err: err}
	}
	return result{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		xcache:      resp.Header.Get("X-Cache"),
		body:        data,
		worker:      w,
	}
}

// fail records a transport failure of w and refreshes the ring so
// subsequent keyed requests stop routing to it.
func (b *Balancer) fail(w *worker) {
	if b.members.ReportFailure(w.id, time.Now()) {
		b.rebuildRing()
	}
}

// dispatch forwards body to primary (or a k-choices pick when nil),
// failing over across workers on transport errors. hedged enables the
// duplicate-dispatch tail protection for the attempt on the primary.
func (b *Balancer) dispatch(ctx context.Context, path string, body []byte, primary *worker, hedged bool) result {
	exclude := make(map[string]bool, 2)
	cur := primary
	if cur == nil {
		cur = b.pick(exclude)
	}
	var last result
	for attempt := 0; cur != nil && attempt < 2*len(b.workers); attempt++ {
		if attempt > 0 {
			b.counters.Failovers.Add(1)
		}
		if hedged {
			last = b.sendHedged(ctx, cur, exclude, path, body)
		} else {
			last = b.send(ctx, cur, path, body)
			if last.err != nil {
				b.fail(cur)
			}
		}
		if last.err == nil || ctx.Err() != nil {
			return last
		}
		exclude[cur.id] = true
		if last.worker != nil {
			exclude[last.worker.id] = true
		}
		cur = b.pick(exclude)
	}
	if last.err == nil && last.status == 0 {
		last.err = errors.New("balance: no worker available")
	}
	return last
}

// sendHedged runs one attempt with tail hedging: the primary leg
// starts immediately; if it is still unanswered after the p99-derived
// delay and the budget allows, a duplicate goes to the next-best
// worker. The first non-error reply wins and cancels the other leg.
// An error is returned only when every started leg failed.
func (b *Balancer) sendHedged(ctx context.Context, primary *worker, exclude map[string]bool, path string, body []byte) result {
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan result, 2)
	legs := 1
	go func() { results <- b.send(lctx, primary, path, body) }()

	timer := time.NewTimer(b.hedgeDelay())
	defer timer.Stop()
	hedgeFired := false
	start := time.Now()

	var firstErr result
	for {
		select {
		case res := <-results:
			legs--
			if res.err == nil {
				if hedgeFired {
					if res.worker == primary {
						b.counters.HedgeWasted.Add(1)
					} else {
						b.counters.HedgeWins.Add(1)
					}
				}
				b.digest.record(time.Since(start))
				cancel() // the losing leg's context; its send drains into the buffered channel
				return res
			}
			// A leg failed: mark the worker, keep waiting on the other
			// leg if one is still out, otherwise report the failure.
			if res.worker != nil && ctx.Err() == nil {
				b.fail(res.worker)
			}
			if legs > 0 {
				firstErr = res
				continue
			}
			if firstErr.err != nil && res.worker == nil {
				return firstErr
			}
			return res
		case <-timer.C:
			if hedgeFired {
				continue
			}
			hedgeFired = true
			if !b.budget.allow(b.counters.Hedges.Load(), b.counters.Placements.Load()) {
				continue
			}
			ex := map[string]bool{primary.id: true}
			for id := range exclude {
				ex[id] = true
			}
			alt := b.pick(ex)
			if alt == nil || !b.alive(alt) {
				continue
			}
			b.counters.Hedges.Add(1)
			legs++
			go func() { results <- b.send(lctx, alt, path, body) }()
		case <-ctx.Done():
			return result{err: ctx.Err()}
		}
	}
}

// hedgeDelay derives the duplicate-dispatch delay from the observed
// latency p99, floored at the configured minimum.
func (b *Balancer) hedgeDelay() time.Duration {
	if p99, ok := b.digest.quantile(0.99); ok && p99 > b.cfg.HedgeAfterMin {
		return p99
	}
	return b.cfg.HedgeAfterMin
}

// readBody buffers the request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	return io.ReadAll(r.Body)
}

// reply writes a worker result through to the client, tagging which
// worker answered.
func reply(w http.ResponseWriter, res result) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.xcache != "" {
		w.Header().Set("X-Cache", res.xcache)
	}
	if res.worker != nil {
		w.Header().Set("X-Fleet-Worker", res.worker.id)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeBalancerError(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(server.ErrorResponse{Error: "clusterlb: " + err.Error()})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// requestCtx applies the configured end-to-end timeout.
func (b *Balancer) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if b.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), b.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// handleSchedule routes one schedule request: to the consistent-hash
// owner of its cache key when one is live (cache affinity), otherwise
// by power-of-k-choices; the dispatch is hedged either way.
func (b *Balancer) handleSchedule(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBalancerError(rw, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	b.requests.Add(1)
	body, err := readBody(rw, r)
	if err != nil {
		writeBalancerError(rw, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := b.requestCtx(r)
	defer cancel()

	// Routing is best-effort: a request the worker will reject still
	// gets forwarded (by load), so error bodies come from the worker
	// and match the single-node daemon byte for byte.
	var primary *worker
	var req server.ScheduleRequest
	if jsonErr := json.Unmarshal(body, &req); jsonErr == nil {
		if key, keyErr := server.KeyForRequest(req); keyErr == nil {
			primary = b.owner(key)
		}
	}
	b.counters.Placements.Add(1)
	if primary != nil {
		b.counters.RingRouted.Add(1)
	} else {
		b.counters.ChoiceRouted.Add(1)
	}
	res := b.dispatch(ctx, "/v1/schedule", body, primary, true)
	if res.err != nil {
		writeBalancerError(rw, http.StatusBadGateway, res.err)
		return
	}
	reply(rw, res)
}

// proxyByChoice forwards a whole request to one k-choices-picked
// worker with failover (batch and lint have no single cache key to
// pin them to a ring arc).
func (b *Balancer) proxyByChoice(path string) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeBalancerError(rw, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		b.requests.Add(1)
		body, err := readBody(rw, r)
		if err != nil {
			writeBalancerError(rw, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := b.requestCtx(r)
		defer cancel()
		b.counters.Placements.Add(1)
		b.counters.ChoiceRouted.Add(1)
		res := b.dispatch(ctx, path, body, nil, false)
		if res.err != nil {
			writeBalancerError(rw, http.StatusBadGateway, res.err)
			return
		}
		reply(rw, res)
	}
}

func (b *Balancer) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	for _, w := range b.workers {
		if b.alive(w) {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(rw, "ok")
			return
		}
	}
	writeBalancerError(rw, http.StatusServiceUnavailable, errors.New("no alive workers"))
}

func (b *Balancer) handleStatsz(rw http.ResponseWriter, r *http.Request) {
	snap := b.members.Snapshot()
	ring := b.ring.Load()
	resp := StatszResponse{
		UptimeSeconds:   time.Since(b.start).Seconds(),
		Requests:        b.requests.Load(),
		Fleet:           b.counters.Snapshot(),
		MembershipEpoch: snap.Epoch,
		Transitions:     snap.Transitions,
	}
	if ring != nil {
		resp.RingEpoch = ring.Epoch()
		resp.RingNodes = ring.Nodes()
	}
	for _, n := range snap.Nodes {
		ws := WorkerStatus{Node: n}
		if w := b.byID[n.ID]; w != nil {
			ws.Inflight = w.inflight.Load()
			ws.Placements = w.placements.Load()
		}
		resp.Workers = append(resp.Workers, ws)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeBalancerError(rw, http.StatusInternalServerError, err)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(body)
}

// Counters exposes the fleet counters (for tests and benchmarks).
func (b *Balancer) Counters() obs.FleetStats { return b.counters.Snapshot() }

// Members exposes the membership table snapshot.
func (b *Balancer) Members() membership.Snapshot { return b.members.Snapshot() }

// StatszResponse is clusterlb's /statsz body.
type StatszResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts front-end requests (each client request once).
	Requests int64 `json:"requests"`
	// Fleet is the placement/hedge/failover counter block.
	Fleet obs.FleetStats `json:"fleet"`
	// MembershipEpoch is the eligible-set version; RingEpoch is the
	// epoch the installed ring was built for (they match outside the
	// instant of a rebalance). Transitions counts all state changes.
	MembershipEpoch uint64   `json:"membership_epoch"`
	Transitions     uint64   `json:"transitions"`
	RingEpoch       uint64   `json:"ring_epoch"`
	RingNodes       []string `json:"ring_nodes"`
	// Workers is the per-worker view: membership state plus the
	// balancer's live in-flight and placement counters.
	Workers []WorkerStatus `json:"workers"`
}

// WorkerStatus is one worker's row in StatszResponse.
type WorkerStatus struct {
	membership.Node
	Inflight   int64 `json:"inflight"`
	Placements int64 `json:"placements"`
}
