// Tests for the balancer against real in-process clusterd workers
// (httptest + server.New) plus controlled stubs for failure and tail
// scenarios. Ring ownership is recomputed in the tests with cachering
// directly, so "a request owned by the dead worker" is constructed
// deterministically instead of hoping the hash falls right. The
// multi-process kill-a-worker oracle check lives in
// internal/fleettest.
package balance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"clustersched/internal/cachering"
	"clustersched/internal/membership"
	"clustersched/internal/server"
)

// nsRE matches the wall-clock timing stats embedded in a schedule
// reply. They are the only non-deterministic bytes in a response, so
// cross-worker comparisons zero them; everything else must match
// exactly.
var nsRE = regexp.MustCompile(`"(mii|assign|sched)_ns":\d+`)

func normalizeTimings(b []byte) []byte {
	return nsRE.ReplaceAll(b, []byte(`"${1}_ns":0`))
}

const dotDDG = `loop dotproduct
node 0 load a[i]
node 1 load b[i]
node 2 fmul
node 3 fadd s
edge 0 2 0
edge 1 2 0
edge 2 3 0
edge 3 3 1
end
`

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}))
	t.Cleanup(ts.Close)
	return ts
}

func newBalancer(t *testing.T, cfg Config) (*Balancer, *httptest.Server) {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := httptest.NewServer(b)
	t.Cleanup(lb.Close)
	return b, lb
}

// scheduleVia posts one schedule request through url and returns the
// raw reply plus the X-Cache and X-Fleet-Worker headers.
func scheduleVia(t *testing.T, url string, req server.ScheduleRequest) (int, []byte, string, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("schedule via %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Cache"), resp.Header.Get("X-Fleet-Worker")
}

// requestOwnedBy searches request names until one's cache key is
// owned by the wanted node on a ring over ids — ownership depends
// only on the membership set, so this mirrors the balancer's routing.
func requestOwnedBy(t *testing.T, ids []string, want string) server.ScheduleRequest {
	t.Helper()
	ring := cachering.New(0, ids, 0)
	for i := 0; i < 10000; i++ {
		req := server.ScheduleRequest{Name: fmt.Sprintf("probe-%d", i), DDG: dotDDG, Machine: "gp:2:2:1"}
		key, err := server.KeyForRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		if owner, ok := ring.Owner(key); ok && owner == want {
			return req
		}
	}
	t.Fatal("no request found owned by the wanted worker")
	return server.ScheduleRequest{}
}

func TestScheduleRoutesToRingOwnerAndCaches(t *testing.T) {
	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)
	b, lb := newBalancer(t, Config{Workers: []string{w1.URL, w2.URL, w3.URL}})

	req := server.ScheduleRequest{Name: "affinity", DDG: dotDDG, Machine: "gp:2:2:1"}
	status, cold, xcache, worker := scheduleVia(t, lb.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold status = %d: %s", status, cold)
	}
	if xcache != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", xcache)
	}
	for i := 0; i < 4; i++ {
		status, warm, xcache, again := scheduleVia(t, lb.URL, req)
		if status != http.StatusOK {
			t.Fatalf("warm status = %d", status)
		}
		if xcache != "hit" {
			t.Errorf("warm %d X-Cache = %q, want hit (routed to %s, cold went to %s)", i, xcache, again, worker)
		}
		if again != worker {
			t.Errorf("warm %d routed to %s, cold to %s: affinity broken", i, again, worker)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("warm reply differs from cold reply")
		}
	}
	stats := b.Counters()
	if stats.RingRouted != 5 || stats.ChoiceRouted != 0 {
		t.Errorf("ring/choice = %d/%d, want 5/0", stats.RingRouted, stats.ChoiceRouted)
	}
}

func TestFailoverWhenRingOwnerIsDead(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refuses connections from now on

	ids := []string{w1.URL, w2.URL, dead.URL}
	b, lb := newBalancer(t, Config{Workers: ids})

	req := requestOwnedBy(t, ids, dead.URL)
	status, body, _, worker := scheduleVia(t, lb.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if worker == dead.URL {
		t.Fatalf("reply attributed to the dead worker")
	}
	stats := b.Counters()
	if stats.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", stats.Failovers)
	}
	if st, ok := b.members.State(dead.URL); !ok || st == membership.Alive {
		t.Errorf("dead worker still Alive in membership (state %v)", st)
	}
	// The rebuilt ring has remapped the arc: the same request now
	// routes straight to a survivor with no further failovers.
	before := b.Counters().Failovers
	if status, _, _, _ := scheduleVia(t, lb.URL, req); status != http.StatusOK {
		t.Fatalf("post-rebalance status = %d", status)
	}
	if after := b.Counters().Failovers; after != before {
		t.Errorf("post-rebalance request still failed over (%d -> %d)", before, after)
	}
}

func TestHedgeRescuesStalledWorker(t *testing.T) {
	fast := newWorker(t)
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server arms client-disconnect
		// detection (which fires r.Context()) only once the request
		// body is consumed.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // never answers; released when the hedge wins and cancels us
	}))
	t.Cleanup(stalled.Close)

	ids := []string{fast.URL, stalled.URL}
	b, lb := newBalancer(t, Config{
		Workers:       ids,
		HedgeBudget:   1.0,
		HedgeAfterMin: 10 * time.Millisecond,
	})

	req := requestOwnedBy(t, ids, stalled.URL)
	start := time.Now()
	status, body, _, worker := scheduleVia(t, lb.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if worker != fast.URL {
		t.Errorf("reply came from %s, want the fast worker", worker)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged request took %v", elapsed)
	}
	stats := b.Counters()
	if stats.Hedges < 1 || stats.HedgeWins < 1 {
		t.Errorf("hedges/wins = %d/%d, want >= 1 each", stats.Hedges, stats.HedgeWins)
	}
}

func TestBatchAndLintProxy(t *testing.T) {
	w := newWorker(t)
	b, lb := newBalancer(t, Config{Workers: []string{w.URL}})

	batch, _ := json.Marshal(server.BatchRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
	resp, err := http.Post(lb.URL+"/v1/batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch status = %d", resp.StatusCode)
	}

	lint, _ := json.Marshal(server.LintRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
	resp, err = http.Post(lb.URL+"/v1/lint", "application/json", bytes.NewReader(lint))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lint status = %d", resp.StatusCode)
	}
	if stats := b.Counters(); stats.ChoiceRouted != 2 {
		t.Errorf("choice_routed = %d, want 2", stats.ChoiceRouted)
	}
}

func TestSchedulesMatchSingleNodeOracle(t *testing.T) {
	oracle := newWorker(t)
	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)
	_, lb := newBalancer(t, Config{Workers: []string{w1.URL, w2.URL, w3.URL}})

	for i := 0; i < 6; i++ {
		req := server.ScheduleRequest{Name: fmt.Sprintf("oracle-%d", i), DDG: dotDDG, Machine: "gp:4:2:2"}
		_, fleet, _, _ := scheduleVia(t, lb.URL, req)
		_, single, _, _ := scheduleVia(t, oracle.URL, req)
		if !bytes.Equal(normalizeTimings(fleet), normalizeTimings(single)) {
			t.Errorf("request %d: fleet reply differs from single-node oracle\nfleet:  %s\nsingle: %s", i, fleet, single)
		}
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	b, lb := newBalancer(t, Config{Workers: []string{w1.URL, w2.URL}, HeartbeatEvery: 50 * time.Millisecond})

	resp, err := http.Get(lb.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// One heartbeat round populates the reported depths.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.probeAll(ctx)

	resp, err = http.Get(lb.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Workers) != 2 || len(stats.RingNodes) != 2 {
		t.Fatalf("statsz workers/ring = %d/%d, want 2/2: %+v", len(stats.Workers), len(stats.RingNodes), stats)
	}
	if stats.Fleet.HeartbeatProbes < 2 {
		t.Errorf("heartbeat_probes = %d, want >= 2", stats.Fleet.HeartbeatProbes)
	}
	if stats.RingEpoch != stats.MembershipEpoch {
		t.Errorf("ring epoch %d != membership epoch %d", stats.RingEpoch, stats.MembershipEpoch)
	}

	// All workers down: the next probe demotes them and healthz trips.
	w1.Close()
	w2.Close()
	b.probeAll(ctx)
	resp, err = http.Get(lb.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with all workers down = %d, want 503", resp.StatusCode)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"http://a", "http://a"}}); err == nil {
		t.Error("New with duplicate workers succeeded")
	}
}
