package report

import (
	"bytes"
	"strings"
	"testing"

	"clustersched/internal/loopgen"
)

func TestMarkdownPaperSections(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 2, Count: 40})
	var buf bytes.Buffer
	if err := Markdown(&buf, loops, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report (40 loops)",
		"## Loop suite (Table 1)",
		"## fig12 —", "## fig13 —", "## fig14 —", "## fig15 —",
		"## fig16 —", "## fig17 —", "## fig18 —", "## fig19 —",
		"## table3 —", "## grid —",
		"| row | paper% | match% |",
		"Heuristic Iterative",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "## abl-incoming") {
		t.Error("extensions included without opting in")
	}
}

func TestMarkdownExtensions(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 3, Count: 25})
	var buf bytes.Buffer
	if err := Markdown(&buf, loops, Options{Extensions: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## abl-incoming", "## abl-order", "## ring", "## copylatency",
		"## Register pressure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
