// Package verify independently re-checks finished modulo schedules:
// every dependence distance, every resource reservation, and the
// cluster-locality rule that an operation may only read values present
// in its own register file. It is the test oracle the rest of the
// repository trusts, so it shares no bookkeeping with the schedulers —
// it rebuilds a fresh reservation table and replays the schedule.
package verify

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/sched"
)

// Schedule re-validates a modulo schedule against its input. It
// returns nil when the schedule is valid, or an error describing the
// first violation found. It is the compatibility wrapper over Audit,
// which enumerates every violation as structured diagnostics.
func Schedule(in sched.Input, s *sched.Schedule) error {
	diags := Audit(in, s)
	if len(diags) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %s", diags[0].Message)
}

func clusterOf(in sched.Input, n int) int {
	if in.ClusterOf == nil {
		return 0
	}
	return in.ClusterOf[n]
}

func copyTargets(in sched.Input, n int) []int {
	if in.CopyTargets == nil {
		return nil
	}
	return in.CopyTargets[n]
}

// MaxLive estimates the steady-state register pressure of a modulo
// schedule: for every produced value, the interval from availability
// (definition plus latency) to its last use is spread over the kernel
// slots modulo II; the maximum overlap across slots is the number of
// simultaneously live values the rotating register file must hold.
// Per-cluster pressure is attributed to the register file physically
// holding the value: the producer's cluster for ordinary operations,
// each target cluster for copies (a broadcast copy occupies a register
// in every file it writes).
func MaxLive(in sched.Input, s *sched.Schedule) (total int, perCluster []int) {
	g := in.Graph
	lat := in.Machine.Latency
	buckets := make([]int, in.II)
	clBuckets := make([][]int, in.Machine.NumClusters())
	for i := range clBuckets {
		clBuckets[i] = make([]int, in.II)
	}
	record := func(cl, start, end int) {
		if end <= start {
			end = start + 1 // a result occupies its register at least one cycle
		}
		for t := start; t < end; t++ {
			slot := ((t % in.II) + in.II) % in.II
			buckets[slot]++
			clBuckets[cl][slot]++
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Nodes[v].Kind == ddg.OpStore || g.Nodes[v].Kind == ddg.OpBranch {
			continue // no register result
		}
		start := s.CycleOf[v] + lat(g.Nodes[v].Kind)
		if g.Nodes[v].Kind == ddg.OpCopy && in.CopyTargets != nil {
			for _, target := range in.CopyTargets[v] {
				end := start
				for _, e := range g.OutEdges(v) {
					if clusterOf(in, e.To) != target {
						continue
					}
					if use := s.CycleOf[e.To] + in.II*e.Distance; use > end {
						end = use
					}
				}
				record(target, start, end)
			}
			continue
		}
		end := start
		for _, e := range g.OutEdges(v) {
			if use := s.CycleOf[e.To] + in.II*e.Distance; use > end {
				end = use
			}
		}
		record(clusterOf(in, v), start, end)
	}
	perCluster = make([]int, len(clBuckets))
	for _, b := range buckets {
		if b > total {
			total = b
		}
	}
	for i, cb := range clBuckets {
		for _, b := range cb {
			if b > perCluster[i] {
				perCluster[i] = b
			}
		}
	}
	return total, perCluster
}
