// Package verify independently re-checks finished modulo schedules:
// every dependence distance, every resource reservation, and the
// cluster-locality rule that an operation may only read values present
// in its own register file. It is the test oracle the rest of the
// repository trusts, so it shares no bookkeeping with the schedulers —
// it rebuilds a fresh reservation table and replays the schedule.
package verify

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/mrt"
	"clustersched/internal/sched"
)

// Schedule re-validates a modulo schedule against its input. It
// returns nil when the schedule is valid, or an error describing the
// first violation found.
func Schedule(in sched.Input, s *sched.Schedule) error {
	g := in.Graph
	if s.II != in.II {
		return fmt.Errorf("verify: schedule II %d differs from input II %d", s.II, in.II)
	}
	if len(s.CycleOf) != g.NumNodes() {
		return fmt.Errorf("verify: %d cycles for %d nodes", len(s.CycleOf), g.NumNodes())
	}
	lat := in.Machine.Latency

	// Dependences: for every edge, consumer at least latency cycles
	// after the producer, minus II per iteration of distance.
	for i, e := range g.Edges {
		need := s.CycleOf[e.From] + lat(g.Nodes[e.From].Kind) - in.II*e.Distance
		if s.CycleOf[e.To] < need {
			return fmt.Errorf("verify: edge %d (n%d@%d -> n%d@%d, dist %d) violated: need >= %d",
				i, e.From, s.CycleOf[e.From], e.To, s.CycleOf[e.To], e.Distance, need)
		}
	}

	// Cluster annotations and copy structure.
	for n := 0; n < g.NumNodes(); n++ {
		cl := clusterOf(in, n)
		if cl < 0 || cl >= in.Machine.NumClusters() {
			return fmt.Errorf("verify: node %d assigned to invalid cluster %d", n, cl)
		}
		if g.Nodes[n].Kind == ddg.OpCopy {
			targets := copyTargets(in, n)
			if len(targets) == 0 {
				return fmt.Errorf("verify: copy node %d has no targets", n)
			}
			for _, t := range targets {
				if t == cl {
					return fmt.Errorf("verify: copy node %d targets its own cluster %d", n, cl)
				}
				if t < 0 || t >= in.Machine.NumClusters() {
					return fmt.Errorf("verify: copy node %d targets invalid cluster %d", n, t)
				}
			}
		} else if in.Machine.Clusters[cl].FUCountFor(g.Nodes[n].Kind) == 0 {
			return fmt.Errorf("verify: node %d (%s) on cluster %d with no capable unit",
				n, g.Nodes[n].Kind, cl)
		}
	}

	// Cluster locality: every value an operation consumes must be
	// produced on (or copied to) the operation's own cluster.
	for i, e := range g.Edges {
		consCl := clusterOf(in, e.To)
		prodCl := clusterOf(in, e.From)
		ok := prodCl == consCl
		if !ok && g.Nodes[e.From].Kind == ddg.OpCopy {
			for _, t := range copyTargets(in, e.From) {
				if t == consCl {
					ok = true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("verify: edge %d: node %d on cluster %d reads value of node %d on cluster %d without a copy",
				i, e.To, consCl, e.From, prodCl)
		}
	}

	// Resources: replay every placement into a fresh table; any
	// collision or missing unit is a violation.
	table := mrt.NewCycle(in.Machine, in.II)
	for n := 0; n < g.NumNodes(); n++ {
		var ok bool
		if g.Nodes[n].Kind == ddg.OpCopy {
			ok = table.PlaceCopy(n, clusterOf(in, n), copyTargets(in, n), s.CycleOf[n])
		} else {
			ok = table.PlaceOp(n, clusterOf(in, n), g.Nodes[n].Kind, s.CycleOf[n])
		}
		if !ok {
			return fmt.Errorf("verify: node %d oversubscribes resources at cycle %d (slot %d)",
				n, s.CycleOf[n], s.CycleOf[n]%in.II)
		}
	}
	return nil
}

func clusterOf(in sched.Input, n int) int {
	if in.ClusterOf == nil {
		return 0
	}
	return in.ClusterOf[n]
}

func copyTargets(in sched.Input, n int) []int {
	if in.CopyTargets == nil {
		return nil
	}
	return in.CopyTargets[n]
}

// MaxLive estimates the steady-state register pressure of a modulo
// schedule: for every produced value, the interval from availability
// (definition plus latency) to its last use is spread over the kernel
// slots modulo II; the maximum overlap across slots is the number of
// simultaneously live values the rotating register file must hold.
// Per-cluster pressure is attributed to the register file physically
// holding the value: the producer's cluster for ordinary operations,
// each target cluster for copies (a broadcast copy occupies a register
// in every file it writes).
func MaxLive(in sched.Input, s *sched.Schedule) (total int, perCluster []int) {
	g := in.Graph
	lat := in.Machine.Latency
	buckets := make([]int, in.II)
	clBuckets := make([][]int, in.Machine.NumClusters())
	for i := range clBuckets {
		clBuckets[i] = make([]int, in.II)
	}
	record := func(cl, start, end int) {
		if end <= start {
			end = start + 1 // a result occupies its register at least one cycle
		}
		for t := start; t < end; t++ {
			slot := ((t % in.II) + in.II) % in.II
			buckets[slot]++
			clBuckets[cl][slot]++
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Nodes[v].Kind == ddg.OpStore || g.Nodes[v].Kind == ddg.OpBranch {
			continue // no register result
		}
		start := s.CycleOf[v] + lat(g.Nodes[v].Kind)
		if g.Nodes[v].Kind == ddg.OpCopy && in.CopyTargets != nil {
			for _, target := range in.CopyTargets[v] {
				end := start
				for _, e := range g.OutEdges(v) {
					if clusterOf(in, e.To) != target {
						continue
					}
					if use := s.CycleOf[e.To] + in.II*e.Distance; use > end {
						end = use
					}
				}
				record(target, start, end)
			}
			continue
		}
		end := start
		for _, e := range g.OutEdges(v) {
			if use := s.CycleOf[e.To] + in.II*e.Distance; use > end {
				end = use
			}
		}
		record(clusterOf(in, v), start, end)
	}
	perCluster = make([]int, len(clBuckets))
	for _, b := range buckets {
		if b > total {
			total = b
		}
	}
	for i, cb := range clBuckets {
		for _, b := range cb {
			if b > perCluster[i] {
				perCluster[i] = b
			}
		}
	}
	return total, perCluster
}
