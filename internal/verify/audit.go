package verify

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/mrt"
	"clustersched/internal/sched"
)

// Schedule-audit diagnostic codes.
const (
	CodeIIMismatch     = "SCHED001" // schedule II differs from the input II
	CodeLengthMismatch = "SCHED002" // cycle count differs from node count
	CodeDependence     = "SCHED003" // consumer scheduled before its producer's latency
	CodeBadCluster     = "SCHED004" // node annotated onto a nonexistent cluster
	CodeBadCopy        = "SCHED005" // copy with no, self, or invalid targets
	CodeIncapableUnit  = "SCHED006" // op on a cluster with no capable unit
	CodeLocality       = "SCHED007" // operand read across clusters without a copy
	CodeOversubscribed = "SCHED008" // resource reserved twice in one kernel slot
)

// Audit re-validates a modulo schedule against its input and
// enumerates every violation — every broken dependence, every bad
// cluster annotation, every locality break, every oversubscribed
// resource — as diagnostics, in deterministic order. A valid schedule
// yields an empty list. Schedule is the first-error wrapper.
//
// When the cycle table's length does not match the graph, only that
// violation is reported: nothing else can be audited meaningfully.
func Audit(in sched.Input, s *sched.Schedule) []diag.Diagnostic {
	var r diag.Reporter
	g := in.Graph
	if s.II != in.II {
		r.Errorf(CodeIIMismatch, "schedule", "schedule II %d differs from input II %d", s.II, in.II)
	}
	if len(s.CycleOf) != g.NumNodes() {
		r.Errorf(CodeLengthMismatch, "schedule", "%d cycles for %d nodes", len(s.CycleOf), g.NumNodes())
		return r.Diagnostics()
	}
	lat := in.Machine.Latency

	// Dependences: for every edge, consumer at least latency cycles
	// after the producer, minus II per iteration of distance.
	for i, e := range g.Edges {
		need := s.CycleOf[e.From] + lat(g.Nodes[e.From].Kind) - in.II*e.Distance
		if s.CycleOf[e.To] < need {
			r.Errorf(CodeDependence, fmt.Sprintf("edge %d", i),
				"edge %d (n%d@%d -> n%d@%d, dist %d) violated: need >= %d",
				i, e.From, s.CycleOf[e.From], e.To, s.CycleOf[e.To], e.Distance, need)
		}
	}

	// Cluster annotations and copy structure.
	badCluster := make([]bool, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		cl := clusterOf(in, n)
		subject := fmt.Sprintf("node %d", n)
		if cl < 0 || cl >= in.Machine.NumClusters() {
			r.Errorf(CodeBadCluster, subject, "node %d assigned to invalid cluster %d", n, cl)
			badCluster[n] = true
			continue
		}
		if g.Nodes[n].Kind == ddg.OpCopy {
			targets := copyTargets(in, n)
			if len(targets) == 0 {
				r.Errorf(CodeBadCopy, subject, "copy node %d has no targets", n)
			}
			for _, t := range targets {
				if t == cl {
					r.Errorf(CodeBadCopy, subject, "copy node %d targets its own cluster %d", n, cl)
				} else if t < 0 || t >= in.Machine.NumClusters() {
					r.Errorf(CodeBadCopy, subject, "copy node %d targets invalid cluster %d", n, t)
					badCluster[n] = true
				}
			}
		} else if in.Machine.Clusters[cl].FUCountFor(g.Nodes[n].Kind) == 0 {
			r.Errorf(CodeIncapableUnit, subject, "node %d (%s) on cluster %d with no capable unit",
				n, g.Nodes[n].Kind, cl)
		}
	}

	// Cluster locality: every value an operation consumes must be
	// produced on (or copied to) the operation's own cluster.
	for i, e := range g.Edges {
		if badCluster[e.From] || badCluster[e.To] {
			continue // already reported; locality is meaningless here
		}
		consCl := clusterOf(in, e.To)
		prodCl := clusterOf(in, e.From)
		ok := prodCl == consCl
		if !ok && g.Nodes[e.From].Kind == ddg.OpCopy {
			for _, t := range copyTargets(in, e.From) {
				if t == consCl {
					ok = true
					break
				}
			}
		}
		if !ok {
			r.Errorf(CodeLocality, fmt.Sprintf("edge %d", i),
				"edge %d: node %d on cluster %d reads value of node %d on cluster %d without a copy",
				i, e.To, consCl, e.From, prodCl)
		}
	}

	// Resources: replay every placement into a fresh table; any
	// collision or missing unit is a violation. Nodes on nonexistent
	// clusters were reported above and cannot be replayed.
	table := mrt.NewCycle(in.Machine, in.II)
	for n := 0; n < g.NumNodes(); n++ {
		if badCluster[n] {
			continue
		}
		var op mrt.Op
		if g.Nodes[n].Kind == ddg.OpCopy {
			op = mrt.CopyAt(n, clusterOf(in, n), copyTargets(in, n))
		} else {
			op = mrt.OpAt(n, clusterOf(in, n), g.Nodes[n].Kind)
		}
		ok := table.CommitOp(op, s.CycleOf[n])
		if !ok {
			r.Errorf(CodeOversubscribed, fmt.Sprintf("node %d", n),
				"node %d oversubscribes resources at cycle %d (slot %d)",
				n, s.CycleOf[n], s.CycleOf[n]%in.II)
		}
	}
	return r.Diagnostics()
}
