package verify

import (
	"math/rand"
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/sched"
)

// scheduledLoop assigns and schedules one suite loop on the machine,
// escalating II until both phases succeed.
func scheduledLoop(t *testing.T, seed int64, m *machine.Config) (sched.Input, *sched.Schedule) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := loopgen.Loop(rng)
	base := mii.MII(g, m)
	for ii := base; ii < base+32; ii++ {
		res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if !ok {
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		if s, ok := sched.IMS(in, 0); ok {
			return in, s
		}
	}
	t.Fatal("no schedule found for test fixture")
	return sched.Input{}, nil
}

func TestValidSchedulesPass(t *testing.T) {
	for _, m := range []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	} {
		for seed := int64(1); seed <= 25; seed++ {
			in, s := scheduledLoop(t, seed, m)
			if err := Schedule(in, s); err != nil {
				t.Errorf("%s seed %d: valid schedule rejected: %v", m.Name, seed, err)
			}
		}
	}
}

func TestDetectsDependenceViolation(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	in, s := scheduledLoop(t, 2, m)
	// Find an edge and break it by moving the consumer too early.
	for _, e := range in.Graph.Edges {
		if e.From == e.To {
			continue
		}
		bad := append([]int(nil), s.CycleOf...)
		bad[e.To] = s.CycleOf[e.From] + in.Machine.Latency(in.Graph.Nodes[e.From].Kind) - in.II*e.Distance - 1
		broken := &sched.Schedule{II: s.II, CycleOf: bad}
		if err := Schedule(in, broken); err == nil {
			t.Fatal("dependence violation not detected")
		} else if !strings.Contains(err.Error(), "violated") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
}

func TestDetectsResourceOversubscription(t *testing.T) {
	// Five ALU ops on a single 4-wide cluster all at cycle 0.
	g := ddg.NewGraph(5, 0)
	for i := 0; i < 5; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 0, 0, 0, 0}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "oversubscribes") {
		t.Errorf("oversubscription not detected: %v", err)
	}
	// Staggering the fifth op into another stage does not help at II=1
	// (modulo aliasing)...
	s2 := &sched.Schedule{II: 1, CycleOf: []int{0, 0, 0, 0, 7}}
	if err := Schedule(in, s2); err == nil {
		t.Error("modulo-aliased oversubscription not detected")
	}
	// ...but II=2 separates slots.
	in2 := sched.Input{Graph: g, Machine: m, II: 2}
	s3 := &sched.Schedule{II: 2, CycleOf: []int{0, 0, 0, 0, 1}}
	if err := Schedule(in2, s3); err != nil {
		t.Errorf("valid staggered schedule rejected: %v", err)
	}
}

func TestDetectsMissingCopy(t *testing.T) {
	// Producer on cluster 0, consumer on cluster 1, no copy node.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	m := machine.NewBusedGP(2, 2, 1)
	in := sched.Input{
		Graph:     g,
		Machine:   m,
		ClusterOf: []int{0, 1},
		II:        1,
	}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 1}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "without a copy") {
		t.Errorf("missing copy not detected: %v", err)
	}
}

func TestDetectsWrongII(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	in, s := scheduledLoop(t, 3, m)
	broken := &sched.Schedule{II: s.II + 1, CycleOf: s.CycleOf}
	if err := Schedule(in, broken); err == nil {
		t.Error("II mismatch not detected")
	}
}

func TestDetectsBadCopyTargets(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	k := g.AddNode(ddg.OpCopy, "")
	g.AddEdge(a, k, 0)
	m := machine.NewBusedGP(2, 2, 1)

	// Copy with no targets.
	in := sched.Input{Graph: g, Machine: m, ClusterOf: []int{0, 0}, CopyTargets: [][]int{nil, {}}, II: 2}
	s := &sched.Schedule{II: 2, CycleOf: []int{0, 1}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "no targets") {
		t.Errorf("empty copy targets not detected: %v", err)
	}
	// Copy targeting its own cluster.
	in.CopyTargets = [][]int{nil, {0}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "own cluster") {
		t.Errorf("self-target not detected: %v", err)
	}
}

func TestMaxLiveSimpleChain(t *testing.T) {
	// load(2) -> alu(1) -> store at II=1: the load's value is live from
	// cycle 2 to its use at 2 (clamped to 1 cycle); the alu result from
	// 3 to 3 (clamped). With II=1 every live cycle lands in slot 0.
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 2, 3}}
	total, perCluster := MaxLive(in, s)
	if total != 2 {
		t.Errorf("MaxLive = %d, want 2", total)
	}
	if len(perCluster) != 1 || perCluster[0] != 2 {
		t.Errorf("perCluster = %v, want [2]", perCluster)
	}
}

func TestMaxLiveLongLatency(t *testing.T) {
	// fdiv (9 cycles) feeding a consumer 9 cycles later at II=3: the
	// result is live 1 cycle; but a value held across iterations
	// (distance use) stretches the lifetime by II per iteration.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "") // stores produce no register value
	g.AddEdge(a, b, 2)              // consumed two iterations later
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 2}
	s := &sched.Schedule{II: 2, CycleOf: []int{0, 1}}
	// Value defined at 1, last use at 1 + 2*2 = 5: live 4 cycles over
	// II=2 -> two instances live at once in each slot.
	total, _ := MaxLive(in, s)
	if total != 2 {
		t.Errorf("MaxLive = %d, want 2 (overlapped lifetimes)", total)
	}
}

func TestMaxLiveSkipsStoresAndBranches(t *testing.T) {
	g := ddg.NewGraph(2, 0)
	g.AddNode(ddg.OpStore, "")
	g.AddNode(ddg.OpBranch, "")
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 0}}
	if total, _ := MaxLive(in, s); total != 0 {
		t.Errorf("MaxLive = %d, want 0 (no register results)", total)
	}
}

func TestDetectsBadClusterAnnotation(t *testing.T) {
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpALU, "")
	m := machine.NewBusedGP(2, 2, 1)
	in := sched.Input{Graph: g, Machine: m, ClusterOf: []int{7}, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "invalid cluster") {
		t.Errorf("bad cluster annotation not detected: %v", err)
	}
}

func TestDetectsCycleCountMismatch(t *testing.T) {
	g := ddg.NewGraph(2, 0)
	g.AddNode(ddg.OpALU, "")
	g.AddNode(ddg.OpALU, "")
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "cycles for") {
		t.Errorf("length mismatch not detected: %v", err)
	}
}

func TestDetectsOpOnIncapableCluster(t *testing.T) {
	// A load annotated onto a cluster with no memory/GP unit.
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpLoad, "")
	m := &machine.Config{
		Name:    "intonly",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			{FUs: []machine.FUClass{machine.FUInteger}, ReadPorts: 1, WritePorts: 1},
			machine.GPCluster(2, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
	in := sched.Input{Graph: g, Machine: m, ClusterOf: []int{0}, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "no capable unit") {
		t.Errorf("incapable cluster not detected: %v", err)
	}
}

func TestDetectsCopyToInvalidCluster(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	k := g.AddNode(ddg.OpCopy, "")
	g.AddEdge(a, k, 0)
	m := machine.NewBusedGP(2, 2, 1)
	in := sched.Input{
		Graph: g, Machine: m,
		ClusterOf:   []int{0, 0},
		CopyTargets: [][]int{nil, {9}},
		II:          2,
	}
	s := &sched.Schedule{II: 2, CycleOf: []int{0, 1}}
	if err := Schedule(in, s); err == nil || !strings.Contains(err.Error(), "invalid cluster") {
		t.Errorf("bad copy target not detected: %v", err)
	}
}
