package verify

import (
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/machine"
	"clustersched/internal/sched"
)

// doubleBroken builds a schedule with two independent defects: a
// violated dependence (consumer scheduled with its producer) and a
// resource conflict (six ALU ops in a four-wide modulo slot).
func doubleBroken() (sched.Input, *sched.Schedule) {
	g := ddg.NewGraph(6, 1)
	for i := 0; i < 6; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	g.AddEdge(0, 1, 0)
	in := sched.Input{Graph: g, Machine: machine.NewUnifiedGP(4), II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 0, 0, 0, 0, 0}}
	return in, s
}

func TestAuditEnumeratesAllViolations(t *testing.T) {
	in, s := doubleBroken()
	diags := Audit(in, s)
	if len(diags) < 2 {
		t.Fatalf("Audit found %d violations, want at least 2: %v", len(diags), diags)
	}
	distinct := map[string]bool{}
	for _, d := range diags {
		if d.Severity != diag.Error {
			t.Errorf("audit finding %s has severity %v, want error", d.Code, d.Severity)
		}
		distinct[d.Code] = true
	}
	if !distinct[CodeDependence] {
		t.Errorf("missing %s (dependence violation) in %v", CodeDependence, diags)
	}
	if !distinct[CodeOversubscribed] {
		t.Errorf("missing %s (resource conflict) in %v", CodeOversubscribed, diags)
	}
}

func TestAuditCountsEveryConflict(t *testing.T) {
	// Six ops into four slots leaves two that cannot be placed; the
	// audit reports each one, not just the first.
	in, s := doubleBroken()
	over := 0
	for _, d := range Audit(in, s) {
		if d.Code == CodeOversubscribed {
			over++
		}
	}
	if over != 2 {
		t.Errorf("Audit reported %d oversubscriptions, want 2", over)
	}
}

func TestAuditCleanScheduleIsEmpty(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	in, s := scheduledLoop(t, 7, m)
	if diags := Audit(in, s); len(diags) != 0 {
		t.Errorf("valid schedule audited dirty: %v", diags)
	}
}

func TestScheduleWrapsFirstAuditFinding(t *testing.T) {
	in, s := doubleBroken()
	err := Schedule(in, s)
	if err == nil {
		t.Fatal("Schedule accepted a broken schedule")
	}
	first := Audit(in, s)[0]
	if !strings.Contains(err.Error(), first.Message) {
		t.Errorf("Schedule error %q does not carry the first audit finding %q", err, first.Message)
	}
	if !strings.HasPrefix(err.Error(), "verify: ") {
		t.Errorf("Schedule error %q lost its package prefix", err)
	}
}

func TestAuditLengthMismatchShortCircuits(t *testing.T) {
	in, _ := doubleBroken()
	s := &sched.Schedule{II: 1, CycleOf: []int{0}}
	diags := Audit(in, s)
	if len(diags) != 1 || diags[0].Code != CodeLengthMismatch {
		t.Errorf("length mismatch audit = %v, want single %s", diags, CodeLengthMismatch)
	}
}
