// Package membership is the fleet's node liveness table: a
// deterministic state machine over worker registrations, heartbeats,
// dispatch failures, and timeout ticks. It never reads the clock
// itself — every transition takes the observation time as a
// parameter — so a given call sequence always produces the same
// states and the same epoch numbers, and the package stays inside
// schedvet's determinism contract (docs/ANALYSIS.md).
//
// Each node is Alive, Suspect, or Dead:
//
//	Alive    heartbeating; eligible for placement and ring ownership
//	Suspect  a dispatch failed or heartbeats went silent past
//	         SuspectAfter; excluded from the ring, revived by the next
//	         successful heartbeat
//	Dead     silent past DeadAfter; excluded until it heartbeats again
//
// The table's epoch increments exactly when the *eligible set* (the
// Alive nodes) changes. The balancer rebuilds its consistent-hash
// ring (package cachering) whenever the epoch moves, so "ring
// rebalances" and "membership epochs" are the same monotone counter.
package membership

import (
	"sort"
	"sync"
	"time"
)

// State is a node's liveness classification.
type State int

// Liveness states, ordered from healthy to gone.
const (
	Alive State = iota
	Suspect
	Dead
)

// String returns the lower-case state name (used in /statsz).
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Config sets the liveness timeouts. The zero value gets defaults.
type Config struct {
	// SuspectAfter is the heartbeat silence that demotes Alive to
	// Suspect (default 3s).
	SuspectAfter time.Duration
	// DeadAfter is the total silence that demotes Suspect to Dead
	// (default 10s). Measured from the last successful heartbeat.
	DeadAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter * 3
	}
	return c
}

// Node is one worker's snapshot.
type Node struct {
	// ID is the worker's stable identity (the balancer uses its URL).
	ID string `json:"id"`
	// State is the liveness classification at snapshot time.
	State State `json:"-"`
	// StateName is State rendered for JSON consumers.
	StateName string `json:"state"`
	// LastSeen is the time of the last successful heartbeat (zero if
	// the node never heartbeated).
	LastSeen time.Time `json:"last_seen"`
	// QueueDepth is the depth the node reported on its last heartbeat.
	QueueDepth int `json:"queue_depth"`
	// Failures counts dispatch failures reported against the node
	// since its last successful heartbeat.
	Failures int `json:"failures"`
}

// node is the mutable table entry behind a Node snapshot.
type node struct {
	id         string
	state      State
	lastSeen   time.Time
	queueDepth int
	failures   int
}

// Snapshot is a point-in-time copy of the whole table.
type Snapshot struct {
	// Epoch is the eligible-set version; it increments exactly when
	// the Alive set changes.
	Epoch uint64 `json:"epoch"`
	// Transitions counts every state change, including ones that do
	// not move the epoch (Suspect to Dead).
	Transitions uint64 `json:"transitions"`
	// Nodes lists every registered node in ID order.
	Nodes []Node `json:"nodes"`
}

// Table tracks the fleet. Create one with NewTable; methods are safe
// for concurrent use.
type Table struct {
	mu    sync.Mutex
	cfg   Config
	byID  map[string]*node
	nodes []*node // the same entries, sorted by ID

	epoch       uint64
	transitions uint64
}

// NewTable returns an empty table with the given timeouts.
func NewTable(cfg Config) *Table {
	return &Table{cfg: cfg.withDefaults(), byID: make(map[string]*node)}
}

// Register adds a node as Alive (or revives an existing entry). The
// epoch moves if the eligible set changed.
func (t *Table) Register(id string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byID[id]
	if !ok {
		n = &node{id: id, state: Dead}
		t.byID[id] = n
		t.nodes = append(t.nodes, n)
		sort.Slice(t.nodes, func(i, j int) bool { return t.nodes[i].id < t.nodes[j].id })
	}
	t.setStateLocked(n, Alive)
	n.lastSeen = now
	n.failures = 0
}

// Heartbeat records a successful probe of id: the node becomes Alive
// (reviving Suspect and Dead nodes), its queue depth is updated, and
// its failure streak resets. Unknown IDs are registered implicitly.
// It reports whether the eligible set changed.
func (t *Table) Heartbeat(id string, queueDepth int, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byID[id]
	if !ok {
		n = &node{id: id, state: Dead}
		t.byID[id] = n
		t.nodes = append(t.nodes, n)
		sort.Slice(t.nodes, func(i, j int) bool { return t.nodes[i].id < t.nodes[j].id })
	}
	before := t.epoch
	t.setStateLocked(n, Alive)
	n.lastSeen = now
	n.queueDepth = queueDepth
	n.failures = 0
	return t.epoch != before
}

// ReportFailure records a dispatch failure against id: an Alive node
// becomes Suspect immediately (fast failover does not wait for the
// heartbeat timeout). It reports whether the eligible set changed.
func (t *Table) ReportFailure(id string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byID[id]
	if !ok {
		return false
	}
	n.failures++
	if n.state != Alive {
		return false
	}
	before := t.epoch
	t.setStateLocked(n, Suspect)
	return t.epoch != before
}

// Tick applies the timeout rules at the observation time now: Alive
// nodes silent past SuspectAfter become Suspect, and nodes silent
// past DeadAfter become Dead. It reports whether the eligible set
// changed.
func (t *Table) Tick(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.epoch
	for _, n := range t.nodes {
		silence := now.Sub(n.lastSeen)
		switch n.state {
		case Alive:
			if silence > t.cfg.SuspectAfter {
				t.setStateLocked(n, Suspect)
			}
		case Suspect:
			if silence > t.cfg.DeadAfter {
				t.setStateLocked(n, Dead)
			}
		}
	}
	return t.epoch != before
}

// setStateLocked moves n to state, counting the transition and
// bumping the epoch when eligibility (Alive vs not) flips.
func (t *Table) setStateLocked(n *node, state State) {
	if n.state == state {
		return
	}
	wasEligible := n.state == Alive
	n.state = state
	t.transitions++
	if wasEligible != (state == Alive) {
		t.epoch++
	}
}

// Epoch returns the current eligible-set version.
func (t *Table) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Eligible returns the Alive node IDs in sorted order — the input to
// cachering.New, so ring contents are a pure function of the epoch.
func (t *Table) Eligible() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		if n.state == Alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

// Snapshot copies the whole table in ID order.
func (t *Table) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{Epoch: t.epoch, Transitions: t.transitions, Nodes: make([]Node, len(t.nodes))}
	for i, n := range t.nodes {
		s.Nodes[i] = Node{
			ID:         n.id,
			State:      n.state,
			StateName:  n.state.String(),
			LastSeen:   n.lastSeen,
			QueueDepth: n.queueDepth,
			Failures:   n.failures,
		}
	}
	return s
}

// State returns one node's current state (Dead, false if unknown).
func (t *Table) State(id string) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byID[id]
	if !ok {
		return Dead, false
	}
	return n.state, true
}
