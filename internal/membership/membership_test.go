package membership

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func newTestTable() *Table {
	return NewTable(Config{SuspectAfter: time.Second, DeadAfter: 3 * time.Second})
}

func TestLifecycleAndEpochs(t *testing.T) {
	tb := newTestTable()
	tb.Register("a", at(0))
	tb.Register("b", at(0))
	if got := tb.Epoch(); got != 2 {
		t.Fatalf("epoch after two registrations = %d, want 2", got)
	}
	if got := tb.Eligible(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("eligible = %v, want [a b]", got)
	}

	// Silence past SuspectAfter demotes; the epoch moves once.
	if !tb.Tick(at(1500 * time.Millisecond)) {
		t.Fatal("tick past SuspectAfter did not change the eligible set")
	}
	if got := tb.Epoch(); got != 4 {
		t.Fatalf("epoch after both suspect = %d, want 4", got)
	}
	if got := tb.Eligible(); len(got) != 0 {
		t.Fatalf("eligible after suspect = %v, want empty", got)
	}

	// A heartbeat revives; suspect-to-dead does not move the epoch
	// (the node was already ineligible).
	if !tb.Heartbeat("a", 3, at(3*time.Second)) {
		t.Fatal("reviving heartbeat did not change the eligible set")
	}
	if tb.Tick(at(3500 * time.Millisecond)) {
		t.Fatal("suspect-to-dead moved the epoch")
	}
	if st, ok := tb.State("b"); !ok || st != Dead {
		t.Fatalf("state(b) = %v %v, want Dead true", st, ok)
	}
	if st, ok := tb.State("a"); !ok || st != Alive {
		t.Fatalf("state(a) = %v %v, want Alive true", st, ok)
	}
}

func TestReportFailureIsImmediate(t *testing.T) {
	tb := newTestTable()
	tb.Register("a", at(0))
	tb.Register("b", at(0))
	if !tb.ReportFailure("a", at(100*time.Millisecond)) {
		t.Fatal("failure on an alive node did not change the eligible set")
	}
	if st, _ := tb.State("a"); st != Suspect {
		t.Fatalf("state after failure = %v, want Suspect", st)
	}
	// A second failure on the same (now suspect) node is a no-op for
	// the eligible set, as is a failure on an unknown node.
	if tb.ReportFailure("a", at(200*time.Millisecond)) {
		t.Fatal("repeat failure moved the epoch")
	}
	if tb.ReportFailure("nope", at(200*time.Millisecond)) {
		t.Fatal("failure on unknown node moved the epoch")
	}
	snap := tb.Snapshot()
	if snap.Nodes[0].Failures != 2 {
		t.Fatalf("failure streak = %d, want 2", snap.Nodes[0].Failures)
	}
}

func TestHeartbeatRegistersUnknown(t *testing.T) {
	tb := newTestTable()
	if !tb.Heartbeat("c", 7, at(0)) {
		t.Fatal("heartbeat of unknown node did not change the eligible set")
	}
	snap := tb.Snapshot()
	if len(snap.Nodes) != 1 || snap.Nodes[0].ID != "c" || snap.Nodes[0].QueueDepth != 7 {
		t.Fatalf("snapshot = %+v", snap.Nodes)
	}
}

// TestDeterminism pins the contract behind the epoch design: the same
// call sequence yields the same states, epochs, and snapshot order.
func TestDeterminism(t *testing.T) {
	run := func() Snapshot {
		tb := newTestTable()
		tb.Register("w2", at(0))
		tb.Register("w0", at(0))
		tb.Register("w1", at(0))
		tb.Heartbeat("w0", 1, at(500*time.Millisecond))
		tb.ReportFailure("w1", at(600*time.Millisecond))
		tb.Tick(at(2 * time.Second))
		tb.Heartbeat("w1", 0, at(2100*time.Millisecond))
		tb.Tick(at(4 * time.Second))
		return tb.Snapshot()
	}
	a, b := run(), run()
	if a.Epoch != b.Epoch || a.Transitions != b.Transitions || len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("snapshots differ: %+v vs %+v", a, b)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	want := []string{"w0", "w1", "w2"}
	for i, n := range a.Nodes {
		if n.ID != want[i] {
			t.Fatalf("snapshot order = %v, want sorted IDs", a.Nodes)
		}
	}
}
