package pipeline

import (
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// paperExampleGraph builds the introductory example of Figure 6:
// A -> B -> C -> D with a loop-carried edge D -> B (distance 1), plus
// D -> E -> F. C has latency 2 (a load), everything else latency 1.
// RecMII = (1+2+1)/1 = 4; on a 2-wide machine ResMII = 6/2 = 3.
func paperExampleGraph() *ddg.Graph {
	g := ddg.NewGraph(6, 6)
	a := g.AddNode(ddg.OpALU, "A")
	b := g.AddNode(ddg.OpALU, "B")
	c := g.AddNode(ddg.OpLoad, "C") // latency 2
	d := g.AddNode(ddg.OpALU, "D")
	e := g.AddNode(ddg.OpALU, "E")
	f := g.AddNode(ddg.OpALU, "F")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, b, 1) // recurrence
	g.AddEdge(d, e, 0)
	g.AddEdge(e, f, 0)
	return g
}

// exampleMachine is the hypothetical target of Section 3: two clusters
// of one GP unit each, two buses, one read and one write port per
// cluster.
func exampleMachine() *machine.Config {
	m := &machine.Config{
		Name:    "intro-2c",
		Network: machine.Broadcast,
		Buses:   2,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 1, 1),
			machine.GPCluster(1, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
	return m
}

func TestPaperExampleMII(t *testing.T) {
	g := paperExampleGraph()
	m := exampleMachine()
	if rec := mii.RecMII(g, m.Latency); rec != 4 {
		t.Errorf("RecMII = %d, want 4", rec)
	}
	if res := mii.ResMII(g, m); res != 3 {
		t.Errorf("ResMII = %d, want 3", res)
	}
	if got := mii.MII(g, m); got != 4 {
		t.Errorf("MII = %d, want 4", got)
	}
}

// TestPaperExampleHeuristicMatchesUnified reproduces the Section 3
// outcome: the full heuristic assignment schedules the loop on the
// clustered machine at the same II (4) a unified 2-wide machine gets.
func TestPaperExampleHeuristicMatchesUnified(t *testing.T) {
	g := paperExampleGraph()
	m := exampleMachine()

	unified, err := Run(g, m.Unified(), Options{})
	if err != nil {
		t.Fatalf("unified run: %v", err)
	}
	if unified.II != 4 {
		t.Fatalf("unified II = %d, want 4", unified.II)
	}

	clustered, err := Run(g, m, Options{
		Assign: assign.Options{Variant: assign.HeuristicIterative},
	})
	if err != nil {
		t.Fatalf("clustered run: %v", err)
	}
	if clustered.II != unified.II {
		t.Errorf("clustered II = %d, want %d (match unified)", clustered.II, unified.II)
	}
	// The SCC {B, C, D} must stay on one cluster: splitting it adds a
	// copy to the critical cycle and would force II >= 6.
	res := clustered.Assignment
	cb, cc, cd := res.ClusterOf[1], res.ClusterOf[2], res.ClusterOf[3]
	if cb != cc || cc != cd {
		t.Errorf("SCC split across clusters: B=%d C=%d D=%d", cb, cc, cd)
	}
}

// TestPaperExampleSMS checks the paper's actual phase-two scheduler
// reaches the same II.
func TestPaperExampleSMS(t *testing.T) {
	g := paperExampleGraph()
	m := exampleMachine()
	out, err := Run(g, m, Options{
		Assign:    assign.Options{Variant: assign.HeuristicIterative},
		Scheduler: SMS,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.II != 4 {
		t.Errorf("SMS clustered II = %d, want 4", out.II)
	}
}
