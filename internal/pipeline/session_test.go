package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
	"clustersched/internal/sched"
	"clustersched/internal/verify"
)

// searchMachines are deliberately narrow, so a good fraction of the
// synthetic loops fail at MII and the II search actually escalates —
// the regime where warm starts and speculation do something.
func searchMachines() []*machine.Config {
	return []*machine.Config{
		machine.NewBusedGP(2, 1, 1),
		machine.NewGrid4(2),
	}
}

// behavioralStats strips the fields excluded from the determinism
// contract (docs/OBSERVABILITY.md): wall-clock phase times, and the
// speculation accounting that exists only in parallel mode.
func behavioralStats(st obs.Stats) obs.Stats {
	st.IISpeculativeWins, st.IISpeculativeWasted = 0, 0
	st.MIITime, st.AssignTime, st.SchedTime = 0, 0, 0
	return st
}

// diffOutcomes reports the first difference between two outcomes that
// the determinism contract says must not exist.
func diffOutcomes(a, b *Outcome) error {
	switch {
	case a.II != b.II || a.MII != b.MII:
		return fmt.Errorf("II/MII %d/%d vs %d/%d", a.II, a.MII, b.II, b.MII)
	case a.AssignFailures != b.AssignFailures || a.SchedFailures != b.SchedFailures:
		return fmt.Errorf("failures %d/%d vs %d/%d",
			a.AssignFailures, a.SchedFailures, b.AssignFailures, b.SchedFailures)
	case !reflect.DeepEqual(a.Assignment.ClusterOf, b.Assignment.ClusterOf):
		return fmt.Errorf("ClusterOf %v vs %v", a.Assignment.ClusterOf, b.Assignment.ClusterOf)
	case !reflect.DeepEqual(a.Assignment.CopyTargets, b.Assignment.CopyTargets):
		return fmt.Errorf("CopyTargets %v vs %v", a.Assignment.CopyTargets, b.Assignment.CopyTargets)
	case a.Assignment.Copies != b.Assignment.Copies || a.Assignment.Evictions != b.Assignment.Evictions:
		return fmt.Errorf("copies/evictions %d/%d vs %d/%d",
			a.Assignment.Copies, a.Assignment.Evictions, b.Assignment.Copies, b.Assignment.Evictions)
	case !reflect.DeepEqual(a.Schedule.CycleOf, b.Schedule.CycleOf):
		return fmt.Errorf("CycleOf %v vs %v", a.Schedule.CycleOf, b.Schedule.CycleOf)
	case behavioralStats(a.Stats) != behavioralStats(b.Stats):
		return fmt.Errorf("stats {%s} vs {%s}", behavioralStats(a.Stats), behavioralStats(b.Stats))
	}
	return nil
}

// TestSpeculativeSearchDifferential is the determinism contract:
// evaluating probe windows on parallel workers must commit outcomes —
// II, assignment, schedule, copies, and every behavioral counter —
// byte-identical to the sequential walk, loop for loop.
func TestSpeculativeSearchDifferential(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 33, Count: 50})
	var agg obs.Stats
	for _, m := range searchMachines() {
		base := Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			CollectStats: true,
			MaxIISlack:   16,
		}
		spec := base
		spec.SpeculativeWorkers = 4
		seqS := NewSession(m, base)
		parS := NewSession(m, spec)
		for i, g := range loops {
			so, serr := seqS.Schedule(context.Background(), g)
			po, perr := parS.Schedule(context.Background(), g)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s loop %d: sequential err %v, speculative err %v", m.Name, i, serr, perr)
			}
			if serr != nil {
				if serr.Error() != perr.Error() {
					t.Errorf("%s loop %d: error mismatch: %q vs %q", m.Name, i, serr, perr)
				}
				continue
			}
			if err := diffOutcomes(so, po); err != nil {
				t.Errorf("%s loop %d: sequential vs speculative: %v", m.Name, i, err)
			}
			agg.Add(so.Stats)
		}
	}
	// The comparison is vacuous if nothing escalated; the narrow
	// machines must have forced warm-started probes somewhere.
	if agg.IIWarmStarts == 0 {
		t.Error("suite never warm-started; machines not narrow enough for this test")
	}
}

// TestWarmStartNeverRaisesII checks the warm-start soundness
// guarantee: a warm probe falls back to a scratch run at the same II,
// so warm search succeeds whenever scratch search does and never
// commits a higher II — and its schedules still verify independently.
func TestWarmStartNeverRaisesII(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 17, Count: 40})
	for _, m := range searchMachines() {
		warmOpts := Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			CollectStats: true,
			MaxIISlack:   16,
		}
		coldOpts := warmOpts
		coldOpts.DisableWarmStart = true
		warmS := NewSession(m, warmOpts)
		coldS := NewSession(m, coldOpts)
		var warmAgg, coldAgg obs.Stats
		for i, g := range loops {
			wo, werr := warmS.Schedule(context.Background(), g)
			co, cerr := coldS.Schedule(context.Background(), g)
			if cerr == nil && werr != nil {
				t.Fatalf("%s loop %d: scratch found II %d but warm search failed: %v", m.Name, i, co.II, werr)
			}
			if werr != nil {
				continue
			}
			warmAgg.Add(wo.Stats)
			if cerr == nil {
				coldAgg.Add(co.Stats)
				if wo.II > co.II {
					t.Errorf("%s loop %d: warm II %d above scratch II %d", m.Name, i, wo.II, co.II)
				}
			}
			in := sched.Input{
				Graph:       wo.Assignment.Graph,
				Machine:     m,
				ClusterOf:   wo.Assignment.ClusterOf,
				CopyTargets: wo.Assignment.CopyTargets,
				II:          wo.II,
			}
			if err := verify.Schedule(in, wo.Schedule); err != nil {
				t.Errorf("%s loop %d: warm schedule invalid: %v", m.Name, i, err)
			}
		}
		if warmAgg.IIWarmStarts == 0 {
			t.Errorf("%s: warm session never warm-started", m.Name)
		}
		if warmAgg.IIWarmFallbacks > warmAgg.IIWarmStarts {
			t.Errorf("%s: more fallbacks (%d) than warm starts (%d)",
				m.Name, warmAgg.IIWarmFallbacks, warmAgg.IIWarmStarts)
		}
		if coldAgg.IIWarmStarts != 0 || coldAgg.IIWarmFallbacks != 0 {
			t.Errorf("%s: DisableWarmStart still warm-started: %d/%d",
				m.Name, coldAgg.IIWarmStarts, coldAgg.IIWarmFallbacks)
		}
	}
}

// TestRunBatchMatchesPerLoop checks that sharding a loop set over
// per-worker sessions returns, in input order, exactly what one-shot
// RunContext returns per loop.
func TestRunBatchMatchesPerLoop(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 60})
	m := machine.NewBusedGP(2, 2, 1)
	opts := Options{
		Assign:       assign.Options{Variant: assign.HeuristicIterative},
		CollectStats: true,
	}
	batch := RunBatch(context.Background(), loops, m, opts, 4)
	if len(batch) != len(loops) {
		t.Fatalf("batch returned %d results for %d loops", len(batch), len(loops))
	}
	for i, g := range loops {
		ref, rerr := RunContext(context.Background(), g, m, opts)
		br := batch[i]
		if (rerr == nil) != (br.Err == nil) {
			t.Fatalf("loop %d: one-shot err %v, batch err %v", i, rerr, br.Err)
		}
		if rerr != nil {
			continue
		}
		if err := diffOutcomes(ref, br.Outcome); err != nil {
			t.Errorf("loop %d: one-shot vs batch: %v", i, err)
		}
	}
}

// TestRunBatchCanceled checks that a canceled batch reports an error
// on every unfinished entry instead of returning zero values.
func TestRunBatchCanceled(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 9, Count: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, br := range RunBatch(ctx, loops, machine.NewBusedGP(2, 2, 1), Options{}, 2) {
		if br.Outcome == nil && br.Err == nil {
			t.Fatal("canceled batch entry has neither outcome nor error")
		}
	}
}

// TestSessionReuseMatchesFreshSessions schedules the same loops twice
// through one Session; buffer reuse across loops must not leak state
// into later outcomes.
func TestSessionReuseMatchesFreshSessions(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 12, Count: 30})
	m := machine.NewGrid4(2)
	opts := Options{
		Assign:       assign.Options{Variant: assign.HeuristicIterative},
		CollectStats: true,
		MaxIISlack:   16,
	}
	s := NewSession(m, opts)
	for i, g := range loops {
		first, ferr := s.Schedule(context.Background(), g)
		ref, rerr := NewSession(m, opts).Schedule(context.Background(), g)
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("loop %d: reused err %v, fresh err %v", i, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if err := diffOutcomes(first, ref); err != nil {
			t.Errorf("loop %d: reused vs fresh session: %v", i, err)
		}
	}
}

// FuzzPipelineWarmStart feeds random loops and machines through the
// sequential warm search, the speculative search, and the scratch
// (warm-disabled) search: speculative must be byte-identical to
// sequential, warm must succeed whenever scratch does without raising
// the II, and every schedule must pass independent verification.
func FuzzPipelineWarmStart(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1))
	f.Add(int64(3), uint8(2), uint8(0))
	f.Add(int64(4), uint8(0), uint8(1))
	f.Add(int64(5), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, mSel, sSel uint8) {
		machines := []*machine.Config{
			machine.NewBusedGP(2, 1, 1),
			machine.NewGrid4(2),
			machine.NewBusedGP(2, 2, 1),
		}
		m := machines[int(mSel)%len(machines)]
		g := loopgen.Loop(rand.New(rand.NewSource(seed)))
		warmOpts := Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			Scheduler:    Scheduler(int(sSel) % 2),
			CollectStats: true,
			MaxIISlack:   16,
		}
		specOpts := warmOpts
		specOpts.SpeculativeWorkers = 3
		coldOpts := warmOpts
		coldOpts.DisableWarmStart = true

		wo, werr := NewSession(m, warmOpts).Schedule(context.Background(), g)
		po, perr := NewSession(m, specOpts).Schedule(context.Background(), g)
		co, cerr := NewSession(m, coldOpts).Schedule(context.Background(), g)

		if (werr == nil) != (perr == nil) {
			t.Fatalf("sequential err %v, speculative err %v", werr, perr)
		}
		if werr == nil {
			if err := diffOutcomes(wo, po); err != nil {
				t.Fatalf("sequential vs speculative: %v", err)
			}
		} else if werr.Error() != perr.Error() {
			t.Fatalf("error mismatch: %q vs %q", werr, perr)
		}
		if cerr == nil && werr != nil {
			t.Fatalf("scratch found II %d but warm search failed: %v", co.II, werr)
		}
		if werr != nil {
			return
		}
		if cerr == nil && wo.II > co.II {
			t.Fatalf("warm II %d above scratch II %d", wo.II, co.II)
		}
		in := sched.Input{
			Graph:       wo.Assignment.Graph,
			Machine:     m,
			ClusterOf:   wo.Assignment.ClusterOf,
			CopyTargets: wo.Assignment.CopyTargets,
			II:          wo.II,
		}
		if err := verify.Schedule(in, wo.Schedule); err != nil {
			t.Fatalf("warm schedule invalid: %v", err)
		}
	})
}

// BenchmarkRunBatch measures batch throughput over the synthetic suite
// at several worker counts; scripts/bench.sh smoke-runs it.
func BenchmarkRunBatch(b *testing.B) {
	loops := loopgen.Suite(loopgen.Options{Seed: 1, Count: 100})
	m := machine.NewBusedGP(2, 2, 1)
	opts := Options{Assign: assign.Options{Variant: assign.HeuristicIterative}}
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunBatch(context.Background(), loops, m, opts, w)
			}
		})
	}
}

// BenchmarkSessionSchedule isolates the single-worker session savings:
// the same suite through one reusable Session, warm starts on and off,
// against the per-loop one-shot path.
func BenchmarkSessionSchedule(b *testing.B) {
	loops := loopgen.Suite(loopgen.Options{Seed: 1, Count: 100})
	m := machine.NewBusedGP(2, 2, 1)
	opts := Options{Assign: assign.Options{Variant: assign.HeuristicIterative}}
	b.Run("session-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewSession(m, opts)
			for _, g := range loops {
				s.Schedule(context.Background(), g)
			}
		}
	})
	b.Run("session-scratch", func(b *testing.B) {
		cold := opts
		cold.DisableWarmStart = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewSession(m, cold)
			for _, g := range loops {
				s.Schedule(context.Background(), g)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range loops {
				Run(g, m, opts)
			}
		}
	})
}
