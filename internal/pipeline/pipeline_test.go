package pipeline

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/sched"
	"clustersched/internal/verify"
)

func TestRunRejectsInvalidGraph(t *testing.T) {
	g := ddg.NewGraph(2, 2)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0) // zero-distance cycle
	_, err := Run(g, machine.NewBusedGP(2, 2, 1), Options{})
	if err == nil || !strings.Contains(err.Error(), "invalid graph") {
		t.Errorf("invalid graph accepted: %v", err)
	}
}

func TestRunRejectsInvalidMachine(t *testing.T) {
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpALU, "")
	m := &machine.Config{Name: "empty"}
	if _, err := Run(g, m, Options{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestRunGivesUpWithinSlack(t *testing.T) {
	// A machine that can never schedule a split loop: no ports, tiny
	// cluster, too many ops for one cluster at any II up to the slack.
	g := ddg.NewGraph(6, 5)
	for i := 0; i < 6; i++ {
		g.AddNode(ddg.OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
	}
	g.AddEdge(5, 0, 1) // one big recurrence: must stay on one cluster
	m := &machine.Config{
		Name:    "starved",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 0, 0),
			machine.GPCluster(1, 0, 0),
		},
		Latencies: machine.DefaultLatencies(),
	}
	// The recurrence fits one cluster at II=6; so this SHOULD succeed.
	out, err := Run(g, m, Options{})
	if err != nil {
		t.Fatalf("recurrence should fit one cluster at II=6: %v", err)
	}
	if out.II != 6 {
		t.Errorf("II = %d, want 6", out.II)
	}
	// Two coupled 5-op recurrences: each fits a cluster alone at II=5,
	// but the edge between them needs a copy the portless machine can
	// never place, and a single cluster needs II=10 — beyond slack 2.
	g2 := ddg.NewGraph(10, 11)
	for i := 0; i < 10; i++ {
		g2.AddNode(ddg.OpALU, "")
	}
	for i := 1; i < 5; i++ {
		g2.AddEdge(i-1, i, 0)
		g2.AddEdge(i+4, i+5, 0)
	}
	g2.AddEdge(4, 0, 1)
	g2.AddEdge(9, 5, 1)
	g2.AddEdge(0, 5, 0) // couples the recurrences
	if _, err := Run(g2, m, Options{MaxIISlack: 2}); err == nil {
		t.Error("expected exhaustion error")
	}
	// With enough slack both recurrences fit one cluster at II=10.
	out2, err := Run(g2, m, Options{MaxIISlack: 8})
	if err != nil {
		t.Fatalf("II=10 single-cluster schedule should exist: %v", err)
	}
	if out2.II != 10 {
		t.Errorf("II = %d, want 10", out2.II)
	}
}

func TestOutcomeCountsFailures(t *testing.T) {
	// On the intro machine the example needs iterative work; check the
	// failure counters stay consistent (non-negative, and II >= MII).
	g := paperExampleGraph()
	m := exampleMachine()
	out, err := Run(g, m, Options{Assign: assign.Options{Variant: assign.Simple}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.II < out.MII {
		t.Errorf("II %d below MII %d", out.II, out.MII)
	}
	if out.AssignFailures < 0 || out.SchedFailures < 0 {
		t.Error("negative failure counts")
	}
}

// TestEveryScheduleValidates is the end-to-end oracle: anything the
// pipeline returns must pass independent verification, on every
// machine family and both schedulers.
func TestEveryScheduleValidates(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 21, Count: 60})
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
	for _, m := range machines {
		for _, schedChoice := range []Scheduler{IMS, SMS} {
			for i, g := range loops {
				out, err := Run(g, m, Options{
					Assign:    assign.Options{Variant: assign.HeuristicIterative},
					Scheduler: schedChoice,
				})
				if err != nil {
					t.Errorf("%s/%s loop %d: %v", m.Name, schedChoice, i, err)
					continue
				}
				in := sched.Input{
					Graph:       out.Assignment.Graph,
					Machine:     m,
					ClusterOf:   out.Assignment.ClusterOf,
					CopyTargets: out.Assignment.CopyTargets,
					II:          out.II,
				}
				if err := verify.Schedule(in, out.Schedule); err != nil {
					t.Errorf("%s/%s loop %d: schedule invalid: %v", m.Name, schedChoice, i, err)
				}
			}
		}
	}
}

func TestUnifiedRunNeedsNoCopies(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 8, Count: 40})
	u := machine.NewBusedGP(4, 4, 2).Unified()
	for i, g := range loops {
		out, err := Run(g, u, Options{})
		if err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		if out.Assignment.Copies != 0 {
			t.Errorf("loop %d: unified run has %d copies", i, out.Assignment.Copies)
		}
	}
}

func TestSchedulerString(t *testing.T) {
	if IMS.String() != "IMS" || SMS.String() != "SMS" {
		t.Error("scheduler names wrong")
	}
	if !strings.Contains(Scheduler(9).String(), "9") {
		t.Error("unknown scheduler should render its number")
	}
}

func TestNonPipelinedUnitsEndToEnd(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	m.NonPipelined[ddg.OpFDiv] = true
	m.NonPipelined[ddg.OpFSqrt] = true
	loops := loopgen.Suite(loopgen.Options{Seed: 27, Count: 40})
	for i, g := range loops {
		out, err := Run(g, m, Options{Assign: assign.Options{Variant: assign.HeuristicIterative}})
		if err != nil {
			t.Errorf("loop %d: %v", i, err)
			continue
		}
		in := sched.Input{
			Graph:       out.Assignment.Graph,
			Machine:     m,
			ClusterOf:   out.Assignment.ClusterOf,
			CopyTargets: out.Assignment.CopyTargets,
			II:          out.II,
		}
		if err := verify.Schedule(in, out.Schedule); err != nil {
			t.Errorf("loop %d: %v", i, err)
		}
		// A loop with any divide cannot beat the 9-cycle occupancy.
		counts := g.KindCounts()
		if counts[ddg.OpFDiv]+counts[ddg.OpFSqrt] > 0 && out.II < 9 {
			t.Errorf("loop %d: II %d below the divider occupancy", i, out.II)
		}
	}
}

func TestCopyLatencyFullyHiddenOffCriticalPaths(t *testing.T) {
	// An acyclic loop forced across clusters: raising copy latency must
	// not change the II, only the schedule depth.
	g := ddg.NewGraph(0, 0)
	p := g.AddNode(ddg.OpALU, "p")
	for i := 0; i < 11; i++ {
		c := g.AddNode(ddg.OpALU, "")
		g.AddEdge(p, c, 0)
	}
	var iis []int
	var stages []int
	for _, lat := range []int{1, 4} {
		m := machine.NewBusedGP(2, 2, 1)
		m.Latencies[ddg.OpCopy] = lat
		out, err := Run(g, m, Options{Assign: assign.Options{Variant: assign.HeuristicIterative}})
		if err != nil {
			t.Fatal(err)
		}
		iis = append(iis, out.II)
		stages = append(stages, out.Schedule.StageCount())
	}
	if iis[0] != iis[1] {
		t.Errorf("copy latency changed II: %v", iis)
	}
}
