package pipeline

import (
	"runtime"
	"sync"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/verify"
)

// TestSoakFullSuite drives the entire 1327-loop suite through every
// machine family and, for every schedule produced, runs the
// independent structural verifier, the MVE register allocator's
// validator, and the functional simulator. Skipped under -short.
func TestSoakFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	loops := loopgen.Suite(loopgen.Options{})
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	type job struct {
		loop    int
		machIdx int
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				g := loops[j.loop]
				m := machines[j.machIdx]
				out, err := Run(g, m, Options{
					Assign: assign.Options{Variant: assign.HeuristicIterative},
				})
				if err != nil {
					fail("loop %d on %s: %v", j.loop, m.Name, err)
					continue
				}
				in := sched.Input{
					Graph:       out.Assignment.Graph,
					Machine:     m,
					ClusterOf:   out.Assignment.ClusterOf,
					CopyTargets: out.Assignment.CopyTargets,
					II:          out.II,
				}
				if err := verify.Schedule(in, out.Schedule); err != nil {
					fail("loop %d on %s: verify: %v", j.loop, m.Name, err)
					continue
				}
				alloc := regalloc.AllocateMVE(in, out.Schedule)
				if err := alloc.Validate(in, out.Schedule); err != nil {
					fail("loop %d on %s: regalloc: %v", j.loop, m.Name, err)
					continue
				}
				if err := sim.Run(in, out.Schedule, alloc, 0); err != nil {
					fail("loop %d on %s: sim: %v", j.loop, m.Name, err)
				}
			}
		}()
	}
	for i := range loops {
		for mi := range machines {
			jobs <- job{loop: i, machIdx: mi}
		}
	}
	close(jobs)
	wg.Wait()
}
