// Package pipeline drives the paper's two-phase process (Figure 5):
// compute the unified-machine MII, run cluster assignment at a
// candidate II, hand the annotated graph to a traditional modulo
// scheduler, and escalate II — re-running assignment from scratch —
// until a valid schedule emerges.
//
// The search is observable and cancelable: RunContext threads a
// context.Context and an optional obs.Observer through the
// II-escalation loop, the assignment backtracking, and the scheduler
// inner loops. With no observer, no stats request, and an
// uncancelable context, the whole layer collapses to a nil *obs.Trace
// and every hook is a single nil check (see BenchmarkRunObservability).
package pipeline

import (
	"context"
	"fmt"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/sched"
)

// Scheduler selects the phase-two algorithm.
type Scheduler int

// Available phase-two schedulers.
const (
	// IMS is Rau's iterative modulo scheduler.
	IMS Scheduler = iota
	// SMS is the iterative swing modulo scheduler the paper uses.
	SMS
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case IMS:
		return "IMS"
	case SMS:
		return "SMS"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Options configures a pipeline run.
type Options struct {
	// Assign configures the cluster assignment phase.
	Assign assign.Options
	// Scheduler picks the phase-two algorithm (default IMS).
	Scheduler Scheduler
	// SchedBudgetRatio is the per-node displacement budget of the
	// scheduler; zero selects the scheduler's default.
	SchedBudgetRatio int
	// MaxIISlack bounds the search: the pipeline gives up when
	// II > MII + MaxIISlack. Zero selects DefaultMaxIISlack.
	MaxIISlack int
	// Observer receives structured trace events from every phase of
	// the search; nil disables eventing. A shared Observer must be
	// safe for concurrent use.
	Observer obs.Observer
	// CollectStats turns on the obs.Stats counters even without an
	// Observer; the totals land on Outcome.Stats. Implied by Observer.
	CollectStats bool
	// Timeout bounds the whole run's wall-clock time; zero means no
	// timeout. It composes with whatever deadline the caller's context
	// already carries (the earlier one wins).
	Timeout time.Duration
}

// DefaultMaxIISlack is the default II search headroom above MII.
const DefaultMaxIISlack = 96

// Outcome reports a finished pipeline run.
type Outcome struct {
	// II is the achieved initiation interval.
	II int
	// MII is max(ResMII, RecMII) of the original graph on the machine.
	MII int
	// Assignment is the cluster assignment used (single trivial cluster
	// for unified machines).
	Assignment *assign.Result
	// Schedule is the final modulo schedule of the annotated graph.
	Schedule *sched.Schedule
	// AssignFailures and SchedFailures count II values rejected by each
	// phase before success.
	AssignFailures int
	SchedFailures  int
	// Stats carries the search-effort counters when observability was
	// active (an Observer installed, CollectStats set, or a cancelable
	// context); zero otherwise.
	Stats obs.Stats
}

// Run schedules loop g on machine m with no cancellation: it is
// RunContext under context.Background().
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	return RunContext(context.Background(), g, m, opts)
}

// RunContext schedules loop g on machine m. Inputs are linted first: a
// graph or machine with Error-severity diagnostics is rejected before
// assignment runs, and the returned error wraps a *diag.List carrying
// every finding (recover it with errors.As). Otherwise RunContext
// errors only when ctx is canceled or its deadline passes — the error
// wraps ctx.Err(), checkable with errors.Is — or when the II search
// space is exhausted, which for well-formed inputs indicates a machine
// too narrow for the loop (or a pathological graph).
//
// Cancellation is honoured mid-search: between II candidates, between
// node placements inside assignment backtracking, and between
// placements inside the modulo schedulers.
func RunContext(ctx context.Context, g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if err := diag.AsError(lint.Graph(g)); err != nil {
		return nil, fmt.Errorf("pipeline: invalid graph: %w", err)
	}
	if err := diag.AsError(lint.Machine(m)); err != nil {
		return nil, fmt.Errorf("pipeline: invalid machine: %w", err)
	}
	slack := opts.MaxIISlack
	if slack <= 0 {
		slack = DefaultMaxIISlack
	}
	tr := obs.New(ctx, opts.Observer, opts.CollectStats)
	opts.Assign.Trace = tr

	tm := tr.BeginPhase(obs.PhaseMII, 0)
	out := &Outcome{MII: mii.MII(g, m)}
	tr.EndPhase(obs.PhaseMII, out.MII, tm, true)

	for ii := out.MII; ii <= out.MII+slack; ii++ {
		if err := tr.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: search canceled at II %d (MII %d): %w", ii, out.MII, err)
		}
		tr.IICandidate(ii)
		ta := tr.BeginPhase(obs.PhaseAssign, ii)
		res, ok := assign.Run(g, m, ii, opts.Assign)
		tr.EndPhase(obs.PhaseAssign, ii, ta, ok)
		if !ok {
			out.AssignFailures++
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
			Trace:       tr,
		}
		var (
			s  *sched.Schedule
			sk bool
		)
		ts := tr.BeginPhase(obs.PhaseSched, ii)
		switch opts.Scheduler {
		case SMS:
			s, sk = sched.SMS(in, opts.SchedBudgetRatio)
		default:
			s, sk = sched.IMS(in, opts.SchedBudgetRatio)
		}
		tr.EndPhase(obs.PhaseSched, ii, ts, sk)
		if !sk {
			out.SchedFailures++
			continue
		}
		out.II = ii
		out.Assignment = res
		out.Schedule = s
		if tr != nil {
			out.Stats = tr.Stats
		}
		return out, nil
	}
	if err := tr.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: search canceled (MII %d): %w", out.MII, err)
	}
	return nil, fmt.Errorf("pipeline: no schedule for %q within II <= %d (MII %d)",
		m.Name, out.MII+slack, out.MII)
}
