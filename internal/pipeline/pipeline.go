// Package pipeline drives the paper's two-phase process (Figure 5):
// compute the unified-machine MII, run cluster assignment at a
// candidate II, hand the annotated graph to a traditional modulo
// scheduler, and escalate II — re-running assignment from scratch —
// until a valid schedule emerges.
package pipeline

import (
	"fmt"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/sched"
)

// Scheduler selects the phase-two algorithm.
type Scheduler int

// Available phase-two schedulers.
const (
	// IMS is Rau's iterative modulo scheduler.
	IMS Scheduler = iota
	// SMS is the iterative swing modulo scheduler the paper uses.
	SMS
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case IMS:
		return "IMS"
	case SMS:
		return "SMS"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Options configures a pipeline run.
type Options struct {
	// Assign configures the cluster assignment phase.
	Assign assign.Options
	// Scheduler picks the phase-two algorithm (default IMS).
	Scheduler Scheduler
	// SchedBudgetRatio is the per-node displacement budget of the
	// scheduler; zero selects the scheduler's default.
	SchedBudgetRatio int
	// MaxIISlack bounds the search: the pipeline gives up when
	// II > MII + MaxIISlack. Zero selects DefaultMaxIISlack.
	MaxIISlack int
}

// DefaultMaxIISlack is the default II search headroom above MII.
const DefaultMaxIISlack = 96

// Outcome reports a finished pipeline run.
type Outcome struct {
	// II is the achieved initiation interval.
	II int
	// MII is max(ResMII, RecMII) of the original graph on the machine.
	MII int
	// Assignment is the cluster assignment used (single trivial cluster
	// for unified machines).
	Assignment *assign.Result
	// Schedule is the final modulo schedule of the annotated graph.
	Schedule *sched.Schedule
	// AssignFailures and SchedFailures count II values rejected by each
	// phase before success.
	AssignFailures int
	SchedFailures  int
}

// Run schedules loop g on machine m. Inputs are linted first: a graph
// or machine with Error-severity diagnostics is rejected before
// assignment runs, and the returned error wraps a *diag.List carrying
// every finding (recover it with errors.As). Otherwise Run errors only
// when the II search space is exhausted, which for well-formed inputs
// indicates a machine too narrow for the loop (or a pathological
// graph).
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	if err := diag.AsError(lint.Graph(g)); err != nil {
		return nil, fmt.Errorf("pipeline: invalid graph: %w", err)
	}
	if err := diag.AsError(lint.Machine(m)); err != nil {
		return nil, fmt.Errorf("pipeline: invalid machine: %w", err)
	}
	slack := opts.MaxIISlack
	if slack <= 0 {
		slack = DefaultMaxIISlack
	}
	out := &Outcome{MII: mii.MII(g, m)}
	for ii := out.MII; ii <= out.MII+slack; ii++ {
		res, ok := assign.Run(g, m, ii, opts.Assign)
		if !ok {
			out.AssignFailures++
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		var (
			s  *sched.Schedule
			sk bool
		)
		switch opts.Scheduler {
		case SMS:
			s, sk = sched.SMS(in, opts.SchedBudgetRatio)
		default:
			s, sk = sched.IMS(in, opts.SchedBudgetRatio)
		}
		if !sk {
			out.SchedFailures++
			continue
		}
		out.II = ii
		out.Assignment = res
		out.Schedule = s
		return out, nil
	}
	return nil, fmt.Errorf("pipeline: no schedule for %q within II <= %d (MII %d)",
		m.Name, out.MII+slack, out.MII)
}
