// Package pipeline drives the paper's two-phase process (Figure 5):
// compute the unified-machine MII, run cluster assignment at a
// candidate II, hand the annotated graph to a traditional modulo
// scheduler, and escalate II until a valid schedule emerges.
//
// Unlike the paper's formulation — which restarts assignment from
// scratch on every failure — the search here runs on a reusable
// Session: all II-invariant precomputation (SCC decomposition,
// adjacency and machine path tables, engine arenas, scheduler
// buffers, per-machine ResMII totals) is hoisted out of the per-II
// loop, and each escalated candidate is warm-started from the failed
// candidate's last consistent partial assignment, falling back to a
// scratch run at the same II when the warm attempt fails. After the
// first failure, candidate IIs are probed in windows that can be
// evaluated speculatively in parallel (Options.SpeculativeWorkers);
// the lowest feasible candidate is committed either way, so outcomes
// are byte-identical to the sequential search (see
// docs/OBSERVABILITY.md for the determinism contract). RunBatch
// shards whole loop sets over a worker pool with one Session per
// worker.
//
// The search is observable and cancelable: RunContext threads a
// context.Context and an optional obs.Observer through the
// II-escalation loop, the assignment backtracking, and the scheduler
// inner loops. With no observer, no stats request, and an
// uncancelable context, the whole layer collapses to a nil *obs.Trace
// and every hook is a single nil check (see BenchmarkRunObservability).
package pipeline

import (
	"context"
	"fmt"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
	"clustersched/internal/sched"
)

// Scheduler selects the phase-two algorithm.
type Scheduler int

// Available phase-two schedulers.
const (
	// IMS is Rau's iterative modulo scheduler.
	IMS Scheduler = iota
	// SMS is the iterative swing modulo scheduler the paper uses.
	SMS
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case IMS:
		return "IMS"
	case SMS:
		return "SMS"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Options configures a pipeline run.
type Options struct {
	// Assign configures the cluster assignment phase.
	Assign assign.Options
	// Scheduler picks the phase-two algorithm (default IMS).
	Scheduler Scheduler
	// SchedBudgetRatio is the per-node displacement budget of the
	// scheduler; zero selects the scheduler's default.
	SchedBudgetRatio int
	// MaxIISlack bounds the search: the pipeline gives up when
	// II > MII + MaxIISlack. Zero selects DefaultMaxIISlack.
	MaxIISlack int
	// Observer receives structured trace events from every phase of
	// the search; nil disables eventing. A shared Observer must be
	// safe for concurrent use.
	Observer obs.Observer
	// CollectStats turns on the obs.Stats counters even without an
	// Observer; the totals land on Outcome.Stats. Implied by Observer.
	CollectStats bool
	// Timeout bounds the whole run's wall-clock time; zero means no
	// timeout. It composes with whatever deadline the caller's context
	// already carries (the earlier one wins).
	Timeout time.Duration
	// DisableWarmStart makes every II probe run from scratch instead
	// of seeding from the previous failed candidate's partial
	// assignment. Exists for ablation; warm starts never raise the
	// achieved II (a failed warm attempt falls back to a scratch run
	// at the same II).
	DisableWarmStart bool
	// SpeculativeWindow is the number of candidate IIs grouped into
	// one probe round after the MII candidate fails; every probe in a
	// round shares the same warm seed, which is what lets the round
	// run speculatively without changing its outcome. Zero selects
	// DefaultSpeculativeWindow. The window shapes the search (seeds
	// advance per round, not per candidate) and must therefore be
	// identical when comparing sequential and speculative runs.
	SpeculativeWindow int
	// SpeculativeWorkers bounds the goroutines evaluating one probe
	// round concurrently. <= 1 (the default) evaluates rounds
	// sequentially with early exit; higher values overlap candidate
	// IIs and commit the lowest feasible one, byte-identical to the
	// sequential result. Batch callers normally leave this at 1 and
	// parallelize across loops instead (see RunBatch).
	SpeculativeWorkers int
}

// DefaultMaxIISlack is the default II search headroom above MII.
const DefaultMaxIISlack = 96

// Outcome reports a finished pipeline run.
type Outcome struct {
	// II is the achieved initiation interval.
	II int
	// MII is max(ResMII, RecMII) of the original graph on the machine.
	MII int
	// Assignment is the cluster assignment used (single trivial cluster
	// for unified machines).
	Assignment *assign.Result
	// Schedule is the final modulo schedule of the annotated graph.
	Schedule *sched.Schedule
	// AssignFailures and SchedFailures count II values rejected by each
	// phase before success.
	AssignFailures int
	SchedFailures  int
	// Stats carries the search-effort counters when observability was
	// active (an Observer installed, CollectStats set, or a cancelable
	// context); zero otherwise.
	Stats obs.Stats
}

// Run schedules loop g on machine m with no cancellation: it is
// RunContext under context.Background().
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	return RunContext(context.Background(), g, m, opts)
}

// RunContext schedules loop g on machine m. Inputs are linted first: a
// graph or machine with Error-severity diagnostics is rejected before
// assignment runs, and the returned error wraps a *diag.List carrying
// every finding (recover it with errors.As). Otherwise RunContext
// errors only when ctx is canceled or its deadline passes — the error
// wraps ctx.Err(), checkable with errors.Is — or when the II search
// space is exhausted, which for well-formed inputs indicates a machine
// too narrow for the loop (or a pathological graph).
//
// Cancellation is honoured mid-search: between II candidates, between
// node placements inside assignment backtracking, and between
// placements inside the modulo schedulers.
//
// RunContext is the one-shot form of Session.Schedule; callers
// scheduling many loops on one machine should build a Session (or use
// RunBatch) so the per-machine precomputation is paid once.
func RunContext(ctx context.Context, g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	return NewSession(m, opts).Schedule(ctx, g)
}
