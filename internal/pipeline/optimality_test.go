package pipeline

import (
	"math/rand"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/exact"
	"clustersched/internal/machine"
)

// tinyLoop generates a random loop of at most maxN nodes.
func tinyLoop(rng *rand.Rand, maxN int) *ddg.Graph {
	n := 2 + rng.Intn(maxN-1)
	g := ddg.NewGraph(n, n*2)
	kinds := []ddg.OpKind{ddg.OpALU, ddg.OpLoad, ddg.OpFAdd, ddg.OpStore}
	for i := 0; i < n; i++ {
		g.AddNode(kinds[rng.Intn(len(kinds))], "")
	}
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.8 {
			g.AddEdge(rng.Intn(i), i, 0)
		}
	}
	if rng.Float64() < 0.4 && n >= 2 {
		// A small recurrence.
		a := rng.Intn(n - 1)
		b := a + 1 + rng.Intn(n-a-1)
		g.AddEdge(a, b, 0)
		g.AddEdge(b, a, 1)
	}
	return g
}

// TestPipelineNearOptimalOnTinyLoops is the optimality oracle: on
// random loops of up to 5 operations and a 2-cluster machine of
// single-GP-unit clusters (tight enough that splits and copies are
// forced), the heuristic pipeline must never beat the exact optimum
// (soundness — its schedule would otherwise be invalid) and must stay
// within one cycle of it (quality).
func TestPipelineNearOptimalOnTinyLoops(t *testing.T) {
	m := &machine.Config{
		Name:    "tiny-2x1",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 1, 1),
			machine.GPCluster(1, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
	rng := rand.New(rand.NewSource(2026))
	const maxII = 12
	within, total := 0, 0
	for trial := 0; trial < 120; trial++ {
		g := tinyLoop(rng, 5)
		if g.Validate() != nil {
			continue
		}
		opt, err := exact.Optimal(g, m, maxII)
		if err != nil {
			t.Fatal(err)
		}
		if opt > maxII {
			continue // not schedulable in range; skip
		}
		out, err := Run(g, m, Options{Assign: assign.Options{Variant: assign.HeuristicIterative}})
		if err != nil {
			t.Errorf("trial %d: pipeline failed but exact II %d exists:\n%s", trial, opt, g)
			continue
		}
		total++
		if out.II < opt {
			t.Errorf("trial %d: pipeline II %d below exact optimum %d — model mismatch:\n%s",
				trial, out.II, opt, g)
		}
		if out.II <= opt+1 {
			within++
		}
		if out.II > opt+2 {
			t.Errorf("trial %d: pipeline II %d far above exact optimum %d:\n%s",
				trial, out.II, opt, g)
		}
	}
	if total == 0 {
		t.Fatal("no trials ran")
	}
	if pct := 100 * float64(within) / float64(total); pct < 90 {
		t.Errorf("only %.0f%% of tiny loops within one cycle of optimal", pct)
	}
}
