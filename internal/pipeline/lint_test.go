package pipeline

import (
	"errors"
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/machine"
)

// TestRunRejectsOrphanKindBeforeAssignment feeds a structurally sound
// machine that has no unit for loads or stores. The pipeline must
// refuse it up front with a coded diagnostic — before cluster
// assignment ever sees a graph whose memory ops can execute nowhere.
func TestRunRejectsOrphanKindBeforeAssignment(t *testing.T) {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "a[i]")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "x[i]")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)

	m := &machine.Config{
		Name:    "intonly",
		Network: machine.Broadcast, Buses: 1,
		Clusters: []machine.Cluster{
			{FUs: []machine.FUClass{machine.FUInteger}, ReadPorts: 1, WritePorts: 1},
			{FUs: []machine.FUClass{machine.FUInteger}, ReadPorts: 1, WritePorts: 1},
		},
		Latencies: machine.DefaultLatencies(),
	}

	out, err := Run(g, m, Options{})
	if err == nil {
		t.Fatal("machine with unexecutable op kinds accepted")
	}
	if out != nil {
		t.Errorf("got a schedule %+v alongside the rejection", out)
	}
	if !strings.Contains(err.Error(), "invalid machine") {
		t.Errorf("error %q does not identify the machine as invalid", err)
	}
	var list *diag.List
	if !errors.As(err, &list) {
		t.Fatalf("error %T does not unwrap to diagnostics", err)
	}
	found := false
	for _, d := range list.Diags {
		if d.Code == machine.CodeOrphanKind {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics %v missing %s (orphan op kind)", list.Diags, machine.CodeOrphanKind)
	}
}

// The graph-side twin: structural graph defects surface as coded
// diagnostics through the same errors.As path.
func TestRunGraphRejectionCarriesDiagnostics(t *testing.T) {
	g := ddg.NewGraph(2, 2)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	_, err := Run(g, machine.NewBusedGP(2, 2, 1), Options{})
	if err == nil {
		t.Fatal("zero-distance cycle accepted")
	}
	var list *diag.List
	if !errors.As(err, &list) {
		t.Fatalf("error %T does not unwrap to diagnostics", err)
	}
	if len(list.Diags) == 0 || list.Diags[0].Code != ddg.CodeZeroCycle {
		t.Errorf("diagnostics = %v, want leading %s", list.Diags, ddg.CodeZeroCycle)
	}
}
