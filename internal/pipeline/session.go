package pipeline

import (
	"context"
	"fmt"
	"runtime"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/pool"
	"clustersched/internal/sched"
)

// DefaultSpeculativeWindow is the number of candidate IIs evaluated
// per probe round once the search has left the MII (see
// Options.SpeculativeWindow).
const DefaultSpeculativeWindow = 4

// Session is a reusable scheduling context for one machine
// configuration: it hoists everything the II search would otherwise
// recompute per call — the machine lint verdict, the per-machine
// ResMII resource totals, and the schedulers' working buffers — and
// runs the warm-started, optionally speculative II search described in
// the package comment. Scheduling many loops on one Session is
// equivalent to (and byte-identical with) calling RunContext per loop;
// it is just faster.
//
// A Session may be used from one goroutine at a time. Probe workers
// spawned internally never outlive a Schedule call.
type Session struct {
	m    *machine.Config
	opts Options
	mc   *mii.Machine
	mErr error

	slack   int
	window  int
	workers int

	// scratches is the free list of scheduler buffer sets, shared
	// across loops and probe workers of this session.
	scratches chan *sched.Scratch

	// probs is the free list of assignment problems. Problems are
	// graph-specific but rebindable: a pooled problem taken for a new
	// loop is re-targeted with Bind, reusing its slabs, capacity
	// tables, and ordering scratch across every loop of the session.
	probs chan *assign.Problem

	// recSc backs the session's MII computations (mii.Machine itself
	// stays immutable and shareable).
	recSc mii.RecScratch
}

// NewSession builds a session for machine m. The machine is linted
// once, here; a machine with Error-severity diagnostics makes every
// Schedule call fail with the same wrapped *diag.List error RunContext
// reports.
func NewSession(m *machine.Config, opts Options) *Session {
	s := &Session{
		m:       m,
		opts:    opts,
		mc:      mii.NewMachine(m),
		slack:   opts.MaxIISlack,
		window:  opts.SpeculativeWindow,
		workers: opts.SpeculativeWorkers,
	}
	if err := diag.AsError(lint.Machine(m)); err != nil {
		s.mErr = fmt.Errorf("pipeline: invalid machine: %w", err)
	}
	if s.slack <= 0 {
		s.slack = DefaultMaxIISlack
	}
	if s.window <= 0 {
		s.window = DefaultSpeculativeWindow
	}
	if s.workers <= 0 {
		s.workers = 1
	}
	s.scratches = make(chan *sched.Scratch, s.workers)
	s.probs = make(chan *assign.Problem, s.workers)
	return s
}

// takeScratch and putScratch manage the scheduler-buffer free list.
func (s *Session) takeScratch() *sched.Scratch {
	select {
	case sc := <-s.scratches:
		return sc
	default:
		return new(sched.Scratch)
	}
}

//schedvet:alloc-free
func (s *Session) putScratch(sc *sched.Scratch) {
	select {
	case s.scratches <- sc:
	default:
	}
}

// Schedule runs the II search for loop g. It is the session form of
// RunContext: same contract, same errors, same Outcome.
func (s *Session) Schedule(ctx context.Context, g *ddg.Graph) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	if err := diag.AsError(lint.Graph(g)); err != nil {
		return nil, fmt.Errorf("pipeline: invalid graph: %w", err)
	}
	if s.mErr != nil {
		return nil, s.mErr
	}

	tr := obs.New(ctx, s.opts.Observer, s.opts.CollectStats)
	tm := tr.BeginPhase(obs.PhaseMII, 0)
	out := &Outcome{MII: s.mc.MIIWith(g, &s.recSc)}
	tr.EndPhase(obs.PhaseMII, out.MII, tm, true)

	sr := &search{
		s:       s,
		g:       g,
		ctx:     ctx,
		collect: tr != nil,
	}

	finish := func(po probeOut) (*Outcome, error) {
		out.II = po.ii
		out.Assignment = po.res
		out.Schedule = po.sch
		if tr != nil {
			out.Stats = tr.Stats
		}
		return out, nil
	}
	// consume folds a probe the sequential search would also have run
	// into the run totals; wasted speculative probes never get here.
	consume := func(po probeOut) {
		if po.collected && tr != nil {
			tr.Stats.Add(po.stats)
		}
		out.AssignFailures += po.assignFail
		out.SchedFailures += po.schedFail
	}

	// First candidate: the MII, probed alone and never warm (there is
	// no earlier failure to seed from).
	if err := tr.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: search canceled at II %d (MII %d): %w", out.MII, out.MII, err)
	}
	po := sr.probe(out.MII, nil)
	consume(po)
	if po.ok {
		return finish(po)
	}
	seed := po.partial

	// Escalation: probe windows of candidate IIs, every probe in a
	// window warm-started from the same seed — the partial assignment
	// left by the previous round's highest candidate. The sequential
	// and speculative executions of a window differ only in overlap:
	// probes are pure functions of (graph, II, seed), the sequential
	// walk stops at the first success, and the speculative walk runs
	// the whole window and commits the lowest success, so both commit
	// the identical probe.
	maxII := out.MII + s.slack
	for base := out.MII + 1; base <= maxII; base += s.window {
		if err := tr.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: search canceled at II %d (MII %d): %w", base, out.MII, err)
		}
		w := s.window
		if base+w-1 > maxII {
			w = maxII - base + 1
		}
		outs := make([]probeOut, 0, w)
		speculated := s.workers > 1 && w > 1
		if speculated {
			all := make([]probeOut, w)
			_ = pool.ForEach(sr.ctx, w, s.workers, func(i int) {
				all[i] = sr.probe(base+i, seed)
			})
			outs = all
		} else {
			for i := 0; i < w; i++ {
				po := sr.probe(base+i, seed)
				outs = append(outs, po)
				if po.ok {
					break
				}
			}
		}
		winner := -1
		for i := range outs {
			if outs[i].ok {
				winner = i
				break
			}
		}
		if winner >= 0 {
			for i := 0; i <= winner; i++ {
				consume(outs[i])
			}
			if speculated {
				if winner > 0 {
					tr.SpeculativeWin()
				}
				tr.SpeculativeWasted(len(outs) - winner - 1)
			}
			return finish(outs[winner])
		}
		for i := range outs {
			consume(outs[i])
		}
		seed = outs[len(outs)-1].partial
	}
	if err := tr.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: search canceled (MII %d): %w", out.MII, err)
	}
	return nil, fmt.Errorf("pipeline: no schedule for %q within II <= %d (MII %d)",
		s.m.Name, maxII, out.MII)
}

// search is the per-loop state of one Schedule call.
type search struct {
	s       *Session
	g       *ddg.Graph
	ctx     context.Context
	collect bool
}

// takeProb draws an assignment problem from the session pool,
// rebinding it at this search's graph, or builds a fresh one when the
// pool is empty. A rebound problem is behaviorally identical to a
// fresh one (assign.Problem.Bind's contract), so pooling changes only
// allocation counts, never outcomes.
func (sr *search) takeProb() *assign.Problem {
	select {
	case p := <-sr.s.probs:
		p.Bind(sr.g)
		return p
	default:
		return assign.NewProblem(sr.g, sr.s.m, sr.s.opts.Assign)
	}
}

//schedvet:alloc-free
func (sr *search) putProb(p *assign.Problem) {
	select {
	case sr.s.probs <- p:
	default:
	}
}

// probeOut is the result of one candidate-II probe.
type probeOut struct {
	ii  int
	ok  bool
	res *assign.Result
	sch *sched.Schedule
	// partial is the warm seed this failed probe leaves behind (an
	// owned copy; nil when the probe succeeded, was canceled, or ran
	// on a unified machine).
	partial []int
	// stats are the probe's counters when collection was on; wasted
	// speculative probes' stats are dropped by the caller so the
	// surviving totals match the sequential search exactly.
	stats      obs.Stats
	collected  bool
	assignFail int
	schedFail  int
}

// probe evaluates one candidate II: a warm-started attempt when a seed
// is available (and warm starts are enabled), falling back to a
// scratch attempt at the same II when the warm attempt fails, so a
// warm probe succeeds whenever a scratch probe would. Probes are pure
// functions of (graph, machine, options, ii, seed) — they share no
// mutable state — which is what makes speculative execution commit
// byte-identical outcomes to the sequential walk.
func (sr *search) probe(ii int, seed []int) (po probeOut) {
	po.ii = ii
	ptr := obs.New(sr.ctx, sr.s.opts.Observer, sr.collect)
	p := sr.takeProb()
	sc := sr.s.takeScratch()
	defer func() {
		sr.putProb(p)
		sr.s.putScratch(sc)
		if ptr != nil {
			po.stats = ptr.Stats
			po.collected = true
		}
	}()
	ptr.IICandidate(ii)

	if len(seed) > 0 && !sr.s.opts.DisableWarmStart {
		ptr.WarmStart()
		res, sch, _, ok := sr.attempt(p, sc, ii, seed, ptr)
		if ok {
			po.ok, po.res, po.sch = true, res, sch
			return po
		}
		if ptr.Canceled() {
			return po
		}
		ptr.WarmFallback()
	}
	res, sch, partial, ok := sr.attempt(p, sc, ii, nil, ptr)
	if ok {
		po.ok, po.res, po.sch = true, res, sch
		return po
	}
	po.assignFail, po.schedFail = boolInt(sch == nil && res == nil), boolInt(res != nil)
	if partial != nil && !ptr.Canceled() {
		po.partial = append([]int(nil), partial...)
	}
	return po
}

//schedvet:alloc-free
func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// attempt is one assignment+scheduling pass at ii. On failure it
// returns the warm seed the pass leaves behind: the assignment's
// consistent partial on an assignment failure, or the full committed
// assignment when the scheduler was the phase that rejected the II.
// The returned partial aliases p or res and must be copied before p
// is reused.
//
//schedvet:alloc-free
func (sr *search) attempt(p *assign.Problem, sc *sched.Scratch, ii int, seed []int, ptr *obs.Trace) (*assign.Result, *sched.Schedule, []int, bool) {
	ta := ptr.BeginPhase(obs.PhaseAssign, ii)
	res, aok := p.RunAt(ii, seed, ptr)
	ptr.EndPhase(obs.PhaseAssign, ii, ta, aok)
	if !aok {
		return nil, nil, p.Partial(), false
	}
	in := sched.Input{
		Graph:       res.Graph,
		Machine:     sr.s.m,
		ClusterOf:   res.ClusterOf,
		CopyTargets: res.CopyTargets,
		II:          ii,
		Trace:       ptr,
		Scratch:     sc,
	}
	var (
		sch *sched.Schedule
		sok bool
	)
	ts := ptr.BeginPhase(obs.PhaseSched, ii)
	switch sr.s.opts.Scheduler {
	case SMS:
		sch, sok = sched.SMS(in, sr.s.opts.SchedBudgetRatio)
	default:
		sch, sok = sched.IMS(in, sr.s.opts.SchedBudgetRatio)
	}
	ptr.EndPhase(obs.PhaseSched, ii, ts, sok)
	if !sok {
		return res, nil, res.ClusterOf[:res.NumOriginal], false
	}
	return res, sch, nil, true
}

// BatchResult is one loop's result within RunBatch, in input order.
type BatchResult struct {
	Outcome *Outcome
	Err     error
}

// RunBatch schedules every loop of loops on machine m, sharding the
// batch over a bounded worker pool with one reusable Session per
// worker. Results come back in input order and are byte-identical to
// calling RunContext(ctx, loop, m, opts) per loop — worker count
// changes only wall-clock time. workers <= 0 selects GOMAXPROCS.
//
// Speculative probing and batch sharding compose but multiply
// goroutines; batch callers normally leave Options.SpeculativeWorkers
// at 1 and let loop-level parallelism fill the machine.
func RunBatch(ctx context.Context, loops []*ddg.Graph, m *machine.Config, opts Options, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]BatchResult, len(loops))
	sessions := make(chan *Session, workers)
	err := pool.ForEach(ctx, len(loops), workers, func(i int) {
		var s *Session
		select {
		case s = <-sessions:
		default:
			s = NewSession(m, opts)
		}
		o, e := s.Schedule(ctx, loops[i])
		out[i] = BatchResult{Outcome: o, Err: e}
		select {
		case sessions <- s:
		default:
		}
	})
	if err != nil {
		for i := range out {
			if out[i].Outcome == nil && out[i].Err == nil {
				out[i].Err = fmt.Errorf("pipeline: batch canceled: %w", err)
			}
		}
	}
	return out
}
