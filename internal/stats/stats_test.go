package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeltaHistBuckets(t *testing.T) {
	var h DeltaHist
	h.Add(0)
	h.Add(0)
	h.Add(1)
	h.Add(3)
	h.Add(7)  // pools into >= 4
	h.Add(-2) // clamps to 0 (clustered beat unified)
	if h.Buckets[0] != 3 || h.Buckets[1] != 1 || h.Buckets[3] != 1 || h.Buckets[4] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if got := h.MatchPercent(); got != 50 {
		t.Errorf("MatchPercent = %v, want 50", got)
	}
}

func TestDeltaHistFailures(t *testing.T) {
	var h DeltaHist
	h.Add(0)
	h.AddFailure()
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (failures count)", h.Total())
	}
	if h.MatchPercent() != 50 {
		t.Errorf("MatchPercent = %v, want 50", h.MatchPercent())
	}
	if !strings.Contains(h.Row(), "unscheduled") {
		t.Error("Row() should mention unscheduled loops")
	}
}

func TestWithinPercent(t *testing.T) {
	var h DeltaHist
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(5)
	if got := h.WithinPercent(1); got != 75 {
		t.Errorf("WithinPercent(1) = %v, want 75", got)
	}
	if got := h.WithinPercent(10); got != 100 {
		t.Errorf("WithinPercent(10) = %v, want 100 (clamped)", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h DeltaHist
	if h.MatchPercent() != 0 || h.WithinPercent(2) != 0 || h.Percent(1) != 0 {
		t.Error("empty histogram should report zeros, not NaN")
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	f := func(deltas []uint8) bool {
		var h DeltaHist
		for _, d := range deltas {
			h.Add(int(d % 8))
		}
		if len(deltas) == 0 {
			return true
		}
		sum := 0.0
		for d := 0; d <= MaxDelta; d++ {
			sum += h.Percent(d)
		}
		return sum > 99.999 && sum < 100.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsMatch(t *testing.T) {
	var h DeltaHist
	h.Add(0)
	if s := h.String(); !strings.Contains(s, "match 100.0%") {
		t.Errorf("String = %q", s)
	}
}
