// Package stats holds the small statistical types the evaluation uses:
// the ΔII histogram of the paper's figures (how far each loop's
// clustered II deviates from the unified machine's) and its rendering.
package stats

import (
	"fmt"
	"strings"
)

// MaxDelta is the last explicit histogram bucket; deviations of
// MaxDelta cycles or more are pooled there, matching the figures'
// right-most bar.
const MaxDelta = 4

// DeltaHist is a ΔII histogram over a loop suite.
type DeltaHist struct {
	Buckets [MaxDelta + 1]int // Buckets[d] = loops with II_clustered - II_unified == d (last bucket: >=)
	Failed  int               // loops where either machine found no schedule
}

// Add records one loop's deviation.
func (h *DeltaHist) Add(delta int) {
	if delta < 0 {
		// The clustered machine beat the unified one (a scheduler
		// heuristic artifact); the paper's x axis starts at zero and
		// all communication was hidden, so it counts as a match.
		delta = 0
	}
	if delta > MaxDelta {
		delta = MaxDelta
	}
	h.Buckets[delta]++
}

// AddFailure records a loop that could not be scheduled at all.
func (h *DeltaHist) AddFailure() { h.Failed++ }

// Total returns the number of loops recorded, including failures.
func (h *DeltaHist) Total() int {
	t := h.Failed
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Percent returns bucket d as a percentage of all recorded loops.
func (h *DeltaHist) Percent(d int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(h.Buckets[d]) / float64(t)
}

// MatchPercent is the headline number of the paper: the percentage of
// loops whose clustered II equals the unified II (the x = 0 bar).
func (h *DeltaHist) MatchPercent() float64 { return h.Percent(0) }

// WithinPercent returns the percentage of loops within d cycles of the
// unified II (the paper quotes "98% of the loops deviated by no more
// than one cycle" for the grid machine).
func (h *DeltaHist) WithinPercent(d int) float64 {
	if d > MaxDelta {
		d = MaxDelta
	}
	t := h.Total()
	if t == 0 {
		return 0
	}
	n := 0
	for i := 0; i <= d; i++ {
		n += h.Buckets[i]
	}
	return 100 * float64(n) / float64(t)
}

// Row renders the histogram as one table row: percentages for x = 0,
// 1, 2, 3, >=4.
func (h *DeltaHist) Row() string {
	var b strings.Builder
	for d := 0; d <= MaxDelta; d++ {
		fmt.Fprintf(&b, "%7.2f%%", h.Percent(d))
	}
	if h.Failed > 0 {
		fmt.Fprintf(&b, "  (%d unscheduled)", h.Failed)
	}
	return b.String()
}

// String renders a compact summary.
func (h *DeltaHist) String() string {
	return fmt.Sprintf("match %.1f%% of %d loops [%s]", h.MatchPercent(), h.Total(), strings.TrimSpace(h.Row()))
}
