package frontend

import (
	"fmt"
	"strconv"
)

// AST --------------------------------------------------------------------

// exprKind enumerates expression node kinds.
type exprKind int

const (
	exprNumber exprKind = iota
	exprScalar
	exprArray
	exprBinary
	exprCall
)

// expr is an expression tree node.
type expr struct {
	kind exprKind
	line int

	value  float64 // exprNumber
	name   string  // exprScalar, exprArray, exprCall
	offset int     // exprArray: subscript i+offset
	op     byte    // exprBinary: one of + - * /
	args   []*expr // exprBinary (2), exprCall (1)
}

// lvalue is an assignment target.
type lvalue struct {
	name   string
	array  bool
	offset int
	line   int
}

// statement is "target = expr".
type statement struct {
	target lvalue
	rhs    *expr
	line   int
}

// loopAST is a parsed loop.
type loopAST struct {
	name string
	body []statement
	line int
}

// builtinArity lists the intrinsic functions: sqrt maps to the FSQRT
// unit; select(c, a, b) is the conditional move IF-conversion produces
// (an integer-ALU operation consuming all three values).
var builtinArity = map[string]int{
	"sqrt":   1,
	"select": 3,
}

// Parser -----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("frontend: line %d: expected %v, found %v %q",
			t.line, k, t.kind, stripTrailing(t.text))
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.at(tokNewline) {
		p.next()
	}
}

// parseProgram parses "loop name { body }"*.
func parseProgram(toks []token) ([]loopAST, error) {
	p := &parser{toks: toks}
	var loops []loopAST
	for {
		p.skipNewlines()
		if p.at(tokEOF) {
			return loops, nil
		}
		lt, err := p.expect(tokLoop)
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		l := loopAST{name: nameTok.text, line: lt.line}
		for {
			p.skipNewlines()
			if p.at(tokRBrace) {
				p.next()
				break
			}
			st, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			l.body = append(l.body, st)
		}
		if len(l.body) == 0 {
			return nil, fmt.Errorf("frontend: line %d: loop %q has an empty body", lt.line, l.name)
		}
		loops = append(loops, l)
	}
}

// parseStatement parses "target = expr".
func (p *parser) parseStatement() (statement, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return statement{}, err
	}
	lv := lvalue{name: nameTok.text, line: nameTok.line}
	if p.at(tokLBrack) {
		off, err := p.parseSubscript()
		if err != nil {
			return statement{}, err
		}
		lv.array = true
		lv.offset = off
	}
	if _, err := p.expect(tokAssign); err != nil {
		return statement{}, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return statement{}, err
	}
	if !p.at(tokEOF) && !p.at(tokRBrace) {
		if _, err := p.expect(tokNewline); err != nil {
			return statement{}, err
		}
	}
	return statement{target: lv, rhs: rhs, line: nameTok.line}, nil
}

// parseSubscript parses "[i]", "[i+k]", or "[i-k]".
func (p *parser) parseSubscript() (int, error) {
	if _, err := p.expect(tokLBrack); err != nil {
		return 0, err
	}
	idx, err := p.expect(tokIdent)
	if err != nil {
		return 0, err
	}
	if idx.text != "i" {
		return 0, fmt.Errorf("frontend: line %d: subscripts must use the loop index 'i', found %q", idx.line, idx.text)
	}
	offset := 0
	switch p.peek().kind {
	case tokPlus, tokMinus:
		sign := 1
		if p.next().kind == tokMinus {
			sign = -1
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return 0, err
		}
		k, err := strconv.Atoi(num.text)
		if err != nil {
			return 0, fmt.Errorf("frontend: line %d: subscript offset %q must be an integer", num.line, num.text)
		}
		offset = sign * k
	}
	if _, err := p.expect(tokRBrack); err != nil {
		return 0, err
	}
	return offset, nil
}

// parseExpr parses additive expressions.
func (p *parser) parseExpr() (*expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		opTok := p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &expr{kind: exprBinary, op: opTok.text[0], args: []*expr{left, right}, line: opTok.line}
	}
	return left, nil
}

// parseTerm parses multiplicative expressions.
func (p *parser) parseTerm() (*expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) {
		opTok := p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &expr{kind: exprBinary, op: opTok.text[0], args: []*expr{left, right}, line: opTok.line}
	}
	return left, nil
}

// parseFactor parses numbers, scalars, array reads, calls, negation,
// and parenthesized expressions.
func (p *parser) parseFactor() (*expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("frontend: line %d: bad number %q", t.line, t.text)
		}
		return &expr{kind: exprNumber, value: v, line: t.line}, nil
	case tokMinus:
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		// Negation folds into a subtract from zero.
		zero := &expr{kind: exprNumber, value: 0, line: t.line}
		return &expr{kind: exprBinary, op: '-', args: []*expr{zero, inner}, line: t.line}, nil
	case tokLParen:
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		switch {
		case p.at(tokLBrack):
			off, err := p.parseSubscript()
			if err != nil {
				return nil, err
			}
			return &expr{kind: exprArray, name: t.text, offset: off, line: t.line}, nil
		case p.at(tokLParen):
			arity, known := builtinArity[t.text]
			if !known {
				return nil, fmt.Errorf("frontend: line %d: unknown function %q (want sqrt or select)", t.line, t.text)
			}
			p.next() // (
			var args []*expr
			for i := 0; i < arity; i++ {
				if i > 0 {
					if _, err := p.expect(tokComma); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &expr{kind: exprCall, name: t.text, args: args, line: t.line}, nil
		default:
			return &expr{kind: exprScalar, name: t.text, line: t.line}, nil
		}
	default:
		return nil, fmt.Errorf("frontend: line %d: expected an expression, found %v %q",
			t.line, t.kind, stripTrailing(t.text))
	}
}
