package frontend

import (
	"fmt"

	"clustersched/internal/ddg"
)

// Loop pairs a compiled loop with its source name and the line its
// `loop` keyword appears on, so multi-loop drivers (clusterc -O, the
// clusterd compile endpoint) can point diagnostics back at the source.
type Loop struct {
	Name  string
	Graph *ddg.Graph
	Line  int
}

// Compile parses and compiles every loop in the source, producing a
// dependence graph per loop: operation nodes for loads, stores and
// arithmetic; register dataflow edges; loop-carried scalar recurrences
// (distance 1 back to the body's final definition); and memory
// dependences (RAW, WAR, WAW) between accesses to the same array,
// with distances derived from the subscript offsets. A loop-closing
// branch is appended to each body. Same-iteration store-to-load pairs
// at equal subscripts are forwarded (load-store elimination, as the
// paper's input suite had applied), and repeated loads of the same
// element reuse one load.
func Compile(src string) ([]Loop, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	asts, err := parseProgram(toks)
	if err != nil {
		return nil, err
	}
	if len(asts) == 0 {
		return nil, fmt.Errorf("frontend: no loops in source")
	}
	var out []Loop
	for _, ast := range asts {
		g, err := compileLoop(ast)
		if err != nil {
			return nil, err
		}
		out = append(out, Loop{Name: ast.name, Graph: g, Line: ast.line})
	}
	return out, nil
}

// access records one array access for memory-dependence analysis.
type access struct {
	node   int // load or store node
	store  bool
	offset int
	stmt   int // statement index, for same-iteration ordering
}

// carriedUse is a scalar read whose definition comes later in the
// body: it uses the previous iteration's value.
type carriedUse struct {
	consumer int
	name     string
}

type compiler struct {
	g            *ddg.Graph
	lastDef      map[string]int         // scalar -> defining node so far (-1: constant)
	definedIn    map[string]bool        // scalar assigned anywhere in the body
	loads        map[[2]interface{}]int // (array, offset) -> load node this iteration
	stored       map[[2]interface{}]int // (array, offset) -> value node stored this iteration
	arrays       map[string][]access
	carriedNames []string     // names behind negative value markers
	carried      []carriedUse // resolved loop-carried uses
	stmt         int
}

func compileLoop(ast loopAST) (*ddg.Graph, error) {
	c := &compiler{
		g:         ddg.NewGraph(len(ast.body)*4, len(ast.body)*6),
		lastDef:   map[string]int{},
		definedIn: map[string]bool{},
		loads:     map[[2]interface{}]int{},
		stored:    map[[2]interface{}]int{},
		arrays:    map[string][]access{},
	}
	for _, st := range ast.body {
		if !st.target.array {
			c.definedIn[st.target.name] = true
		}
	}
	for i, st := range ast.body {
		c.stmt = i
		value, err := c.emitExpr(st.rhs)
		if err != nil {
			return nil, err
		}
		if st.target.array {
			store := c.g.AddNode(ddg.OpStore, subscriptName(st.target.name, st.target.offset))
			c.attach(value, store)
			key := [2]interface{}{st.target.name, st.target.offset}
			c.stored[key] = value
			delete(c.loads, key) // a reload after the store sees the new value
			c.arrays[st.target.name] = append(c.arrays[st.target.name], access{
				node: store, store: true, offset: st.target.offset, stmt: i,
			})
		} else {
			c.lastDef[st.target.name] = value // -1 when constant: folds away
		}
	}
	// Loop-carried scalar uses: previous iteration's final definition.
	// Markers can chain through scalar aliases (t = s); resolve until a
	// real node or a constant appears.
	for _, u := range c.carried {
		def, ok := c.lastDef[u.name]
		for hops := 0; ok && def < -1 && hops <= len(c.carriedNames); hops++ {
			def, ok = c.lastDef[c.carriedNames[-2-def]]
		}
		if ok && def >= 0 {
			c.g.AddEdge(def, u.consumer, 1)
		}
	}
	c.memoryDependences()
	c.g.AddNode(ddg.OpBranch, "loop")
	if err := c.g.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: loop %q compiles to an unschedulable graph (%v); "+
			"a value would have to flow backwards within one iteration", ast.name, err)
	}
	return c.g, nil
}

// emitExpr generates nodes for an expression and returns the node
// producing its value, or -1 when the value is compile-time constant
// or loop-invariant (no in-loop producer).
func (c *compiler) emitExpr(e *expr) (int, error) {
	switch e.kind {
	case exprNumber:
		return -1, nil
	case exprScalar:
		if def, ok := c.lastDef[e.name]; ok {
			return def, nil
		}
		if c.definedIn[e.name] {
			// Defined later in the body: previous iteration's value.
			// The consumer edge is attached by the caller through a
			// pass-through marker; represent the value by a deferred
			// carried use bound when the consumer node exists. Since
			// expressions consume values at operation nodes, we return
			// a special marker resolved in emitBinary/emitCall/store.
			return c.carriedMarker(e), nil
		}
		return -1, nil // loop invariant, lives in a register
	case exprArray:
		key := [2]interface{}{e.name, e.offset}
		if v, ok := c.stored[key]; ok {
			return v, nil // store-to-load forwarding
		}
		if ld, ok := c.loads[key]; ok {
			return ld, nil // common-subexpression load
		}
		ld := c.g.AddNode(ddg.OpLoad, subscriptName(e.name, e.offset))
		c.loads[key] = ld
		c.arrays[e.name] = append(c.arrays[e.name], access{
			node: ld, offset: e.offset, stmt: c.stmt,
		})
		return ld, nil
	case exprBinary:
		left, err := c.emitExpr(e.args[0])
		if err != nil {
			return 0, err
		}
		right, err := c.emitExpr(e.args[1])
		if err != nil {
			return 0, err
		}
		var kind ddg.OpKind
		switch e.op {
		case '+', '-':
			kind = ddg.OpFAdd
		case '*':
			kind = ddg.OpFMul
		case '/':
			kind = ddg.OpFDiv
		default:
			return 0, fmt.Errorf("frontend: line %d: unknown operator %q", e.line, string(e.op))
		}
		op := c.g.AddNode(kind, "")
		c.attach(left, op)
		c.attach(right, op)
		return op, nil
	case exprCall:
		kind := ddg.OpFSqrt
		if e.name == "select" {
			// IF-converted conditional move: an integer-unit operation
			// consuming the predicate and both arms.
			kind = ddg.OpALU
		}
		op := c.g.AddNode(kind, e.name)
		for _, a := range e.args {
			v, err := c.emitExpr(a)
			if err != nil {
				return 0, err
			}
			c.attach(v, op)
		}
		return op, nil
	default:
		return 0, fmt.Errorf("frontend: line %d: unknown expression", e.line)
	}
}

// Carried scalar reads are encoded as negative markers below -1: the
// marker indexes c.carriedNames, and every attach of the marker
// records one loop-carried use resolved after the whole body is
// compiled (the definition is the body's final one for that scalar).
func (c *compiler) carriedMarker(e *expr) int {
	c.carriedNames = append(c.carriedNames, e.name)
	return -2 - (len(c.carriedNames) - 1)
}

// attach wires a produced value (node ID, constant -1, or carried
// marker) into the consumer node.
func (c *compiler) attach(value, consumer int) {
	switch {
	case value >= 0:
		c.g.AddEdge(value, consumer, 0)
	case value == -1:
		// constant or invariant: no dependence
	default:
		c.carried = append(c.carried, carriedUse{consumer: consumer, name: c.carriedNames[-2-value]})
	}
}

// memoryDependences adds RAW, WAR, and WAW edges between accesses to
// the same array. Access A at subscript i+oa and access B at i+ob
// touch the same element when B's iteration runs oa-ob iterations
// after A's; a dependence exists when that distance is positive, or
// zero with A preceding B in the body.
func (c *compiler) memoryDependences() {
	for _, accs := range c.arrays {
		for ai, a := range accs {
			for bi, b := range accs {
				if ai == bi || (!a.store && !b.store) {
					continue
				}
				d := a.offset - b.offset
				if d < 0 || (d == 0 && a.stmt >= b.stmt) {
					continue
				}
				if d == 0 && a.store && !b.store {
					// Same-iteration store->load at equal offsets was
					// forwarded; the load node only exists if it read a
					// different element, excluded by d == 0.
					continue
				}
				c.g.AddEdge(a.node, b.node, d)
			}
		}
	}
}

func subscriptName(array string, offset int) string {
	switch {
	case offset > 0:
		return fmt.Sprintf("%s[i+%d]", array, offset)
	case offset < 0:
		return fmt.Sprintf("%s[i%d]", array, offset)
	default:
		return array + "[i]"
	}
}
