package frontend

// The exported syntax view: a flattened, read-only projection of the
// parser's AST that the lint package (and other tools) can analyse
// without depending on parser internals. Expressions are flattened
// into the ordered list of name references they read; constants fold
// away here exactly as they do in compilation.

// Ref is one name reference in a loop body: a scalar or an array
// element access.
type Ref struct {
	Name   string
	Array  bool
	Offset int // subscript i+Offset, array references only
	Line   int
}

// Stmt is one statement "target = rhs" with the references the
// right-hand side reads, in evaluation order.
type Stmt struct {
	Line   int
	Target Ref
	Reads  []Ref
}

// LoopSyntax is the syntax view of one parsed loop.
type LoopSyntax struct {
	Name  string
	Line  int
	Stmts []Stmt
}

// ParseSyntax parses the source and returns the syntax view of every
// loop, without compiling to dependence graphs. Parse errors are the
// same the compiler reports.
func ParseSyntax(src string) ([]LoopSyntax, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	asts, err := parseProgram(toks)
	if err != nil {
		return nil, err
	}
	out := make([]LoopSyntax, 0, len(asts))
	for _, ast := range asts {
		l := LoopSyntax{Name: ast.name, Line: ast.line}
		for _, st := range ast.body {
			s := Stmt{
				Line: st.line,
				Target: Ref{
					Name:   st.target.name,
					Array:  st.target.array,
					Offset: st.target.offset,
					Line:   st.target.line,
				},
			}
			collectReads(st.rhs, &s.Reads)
			l.Stmts = append(l.Stmts, s)
		}
		out = append(out, l)
	}
	return out, nil
}

// collectReads appends every scalar and array reference of e in
// evaluation order.
func collectReads(e *expr, out *[]Ref) {
	if e == nil {
		return
	}
	switch e.kind {
	case exprScalar:
		*out = append(*out, Ref{Name: e.name, Line: e.line})
	case exprArray:
		*out = append(*out, Ref{Name: e.name, Array: true, Offset: e.offset, Line: e.line})
	}
	for _, a := range e.args {
		collectReads(a, out)
	}
}
