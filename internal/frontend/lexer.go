// Package frontend compiles a small loop language into dependence
// graphs, giving the scheduler a real input path besides the synthetic
// suite and the raw ddg text format:
//
//	# dot product with a reduction
//	loop dotprod {
//	    s = s + a[i] * b[i]
//	}
//
//	# three-point stencil carried through memory
//	loop smooth {
//	    x[i] = (x[i-1] + in[i] + in[i+1]) / 3.0
//	}
//
// One loop body describes one iteration over the index variable i.
// Array accesses name[i+k] become loads and stores; scalars assigned
// in the loop carry values between operations (reading a scalar whose
// definition comes later in the body, or reading the statement's own
// target, uses the previous iteration's value — a recurrence); scalars
// never assigned are loop invariants held in registers and constants
// fold away. Memory dependences between accesses to the same array
// (RAW, WAR, WAW) are derived from the subscript offsets.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokAssign  // =
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokLBrace  // {
	tokRBrace  // }
	tokLoop    // keyword "loop"
	tokNewline // statement separator (newline or ';')
	tokComma   // ,
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLoop:
		return "'loop'"
	case tokComma:
		return "','"
	case tokNewline:
		return "end of statement"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// lex tokenizes the whole source. '#' comments run to end of line;
// newlines and ';' are statement separators.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokenKind, text string) {
		toks = append(toks, token{kind: k, text: text, line: line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n")
			line++
			i++
		case c == ';':
			emit(tokNewline, ";")
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '=':
			emit(tokAssign, "=")
			i++
		case c == '+':
			emit(tokPlus, "+")
			i++
		case c == '-':
			emit(tokMinus, "-")
			i++
		case c == '*':
			emit(tokStar, "*")
			i++
		case c == '/':
			emit(tokSlash, "/")
			i++
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == '[':
			emit(tokLBrack, "[")
			i++
		case c == ']':
			emit(tokRBrack, "]")
			i++
		case c == '{':
			emit(tokLBrace, "{")
			i++
		case c == '}':
			emit(tokRBrace, "}")
			i++
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			emit(tokNumber, src[i:j])
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			if word == "loop" {
				emit(tokLoop, word)
			} else {
				emit(tokIdent, word)
			}
			i = j
		default:
			return nil, fmt.Errorf("frontend: line %d: unexpected character %q", line, string(c))
		}
	}
	emit(tokEOF, "")
	return toks, nil
}

// stripTrailing returns s without a trailing newline marker, for error
// messages.
func stripTrailing(s string) string { return strings.TrimSuffix(s, "\\n") }
