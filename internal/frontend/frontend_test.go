package frontend_test

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/frontend"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/pipeline"
)

func compileOne(t *testing.T, src string) *ddg.Graph {
	t.Helper()
	loops, err := frontend.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	if err := loops[0].Graph.Validate(); err != nil {
		t.Fatalf("compiled graph invalid: %v", err)
	}
	return loops[0].Graph
}

func kindCount(g *ddg.Graph, k ddg.OpKind) int {
	return g.KindCounts()[k]
}

func TestCompileDotProduct(t *testing.T) {
	g := compileOne(t, `
loop dotprod {
    s = s + a[i] * b[i]
}`)
	// 2 loads, 1 fmul, 1 fadd, 1 branch.
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", g.NumNodes(), g)
	}
	if kindCount(g, ddg.OpLoad) != 2 || kindCount(g, ddg.OpFMul) != 1 || kindCount(g, ddg.OpFAdd) != 1 {
		t.Errorf("wrong op mix:\n%s", g)
	}
	// The reduction is a self recurrence on the fadd.
	comps := g.NonTrivialSCCs()
	if len(comps) != 1 || len(comps[0].Nodes) != 1 || !comps[0].Self {
		t.Errorf("reduction recurrence missing: %+v\n%s", comps, g)
	}
	lat := machine.DefaultLatencies()
	if rec := mii.RecMII(g, func(k ddg.OpKind) int { return lat[k] }); rec != 1 {
		t.Errorf("RecMII = %d, want 1 (fadd latency)", rec)
	}
}

func TestCompileStencilMemoryRecurrence(t *testing.T) {
	g := compileOne(t, `
loop smooth {
    x[i] = (x[i-1] + in[i] + in[i+1]) / 3.0
}`)
	// The store x[i] feeds the load x[i-1] of the next iteration: a
	// recurrence THROUGH MEMORY with distance 1.
	found := false
	for _, e := range g.Edges {
		if g.Nodes[e.From].Kind == ddg.OpStore && g.Nodes[e.To].Kind == ddg.OpLoad && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing store->load RAW distance-1 edge:\n%s", g)
	}
	comps := g.NonTrivialSCCs()
	if len(comps) != 1 {
		t.Errorf("stencil should form one recurrence, got %d:\n%s", len(comps), g)
	}
}

func TestCompileWARDependence(t *testing.T) {
	g := compileOne(t, `
loop shift {
    t = x[i+1]
    x[i] = t * 2.0
}`)
	// Load x[i+1] (offset 1) then store x[i] (offset 0): iteration t+1
	// overwrites what iteration t read: WAR load->store distance 1.
	found := false
	for _, e := range g.Edges {
		if g.Nodes[e.From].Kind == ddg.OpLoad && g.Nodes[e.To].Kind == ddg.OpStore && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing load->store WAR distance-1 edge:\n%s", g)
	}
}

func TestCompileStoreToLoadForwarding(t *testing.T) {
	g := compileOne(t, `
loop fwd {
    x[i] = a[i] + 1.0
    y[i] = x[i] * 2.0
}`)
	// x[i] is read right after being written: the load is eliminated.
	if kindCount(g, ddg.OpLoad) != 1 {
		t.Errorf("load of x[i] should be forwarded; loads = %d\n%s", kindCount(g, ddg.OpLoad), g)
	}
	// The fmul must consume the fadd's value directly.
	found := false
	for _, e := range g.Edges {
		if g.Nodes[e.From].Kind == ddg.OpFAdd && g.Nodes[e.To].Kind == ddg.OpFMul && e.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("forwarded value edge missing:\n%s", g)
	}
}

func TestCompileCommonLoadElimination(t *testing.T) {
	g := compileOne(t, `
loop cse {
    s = a[i] * a[i] + a[i]
}`)
	if kindCount(g, ddg.OpLoad) != 1 {
		t.Errorf("a[i] should be loaded once, got %d loads:\n%s", kindCount(g, ddg.OpLoad), g)
	}
}

func TestCompileInvariantAndConstantFoldAway(t *testing.T) {
	g := compileOne(t, `
loop axpy {
    y[i] = alpha * x[i] + 3.0
}`)
	// alpha is loop-invariant and 3.0 constant: one load, fmul, fadd,
	// store, branch.
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5:\n%s", g.NumNodes(), g)
	}
	// The fmul has exactly one register input (x[i]'s load).
	for _, n := range g.Nodes {
		if n.Kind == ddg.OpFMul && len(g.Predecessors(n.ID)) != 1 {
			t.Errorf("fmul should have one in-loop input:\n%s", g)
		}
	}
}

func TestCompileScalarChainWithinIteration(t *testing.T) {
	g := compileOne(t, `
loop chain {
    t = a[i] + b[i]
    u = t * t
    c[i] = u
}`)
	// t and u are same-iteration scalars: distance-0 flow, no recurrence.
	if len(g.NonTrivialSCCs()) != 0 {
		t.Errorf("unexpected recurrence:\n%s", g)
	}
	if kindCount(g, ddg.OpFMul) != 1 || kindCount(g, ddg.OpFAdd) != 1 {
		t.Errorf("wrong op mix:\n%s", g)
	}
}

func TestCompileLinearRecurrence(t *testing.T) {
	g := compileOne(t, `
loop rec {
    v = v * c + d[i]
    out[i] = v
}`)
	comps := g.NonTrivialSCCs()
	if len(comps) != 1 {
		t.Fatalf("want one recurrence, got %d:\n%s", len(comps), g)
	}
	// v's cycle contains fmul and fadd: latency 4 over distance 1.
	lat := machine.DefaultLatencies()
	if rec := mii.RecMII(g, func(k ddg.OpKind) int { return lat[k] }); rec != 4 {
		t.Errorf("RecMII = %d, want 4 (fmul 3 + fadd 1):\n%s", rec, g)
	}
}

func TestCompileSqrt(t *testing.T) {
	g := compileOne(t, `
loop norm {
    r[i] = sqrt(x[i] * x[i] + y[i] * y[i])
}`)
	if kindCount(g, ddg.OpFSqrt) != 1 {
		t.Errorf("missing sqrt:\n%s", g)
	}
}

func TestCompileMultipleLoops(t *testing.T) {
	loops, err := frontend.Compile(`
loop one { a[i] = b[i] + 1.0 }
loop two { c[i] = d[i] * 2.0 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 || loops[0].Name != "one" || loops[1].Name != "two" {
		t.Fatalf("loops = %+v", loops)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty body", "loop x { }", "empty body"},
		{"bad subscript var", "loop x { a[j] = 1.0 }", "loop index"},
		{"unknown func", "loop x { a[i] = foo(1.0) }", "unknown function"},
		{"missing brace", "loop x { a[i] = 1.0", "expected"},
		{"garbage", "loop x { a[i] = + }", "expected an expression"},
		{"stray char", "loop x { a[i] = 1.0 @ }", "unexpected character"},
		{"no loops", "# nothing\n", "no loops"},
		{"missing assign", "loop x { a[i] 1.0 }", "'='"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := frontend.Compile(tc.src)
			if err == nil {
				t.Fatal("compile accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCompiledLoopsScheduleEndToEnd feeds compiled kernels through the
// full clustered pipeline.
func TestCompiledLoopsScheduleEndToEnd(t *testing.T) {
	src := `
loop dotprod { s = s + a[i] * b[i] }
loop saxpy   { y[i] = y[i] + alpha * x[i] }
loop smooth  { x[i] = (x[i-1] + in[i] + in[i+1]) / 3.0 }
loop norm    { r[i] = sqrt(x[i] * x[i] + y[i] * y[i]) }
`
	loops, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.NewBusedGP(2, 2, 1)
	for _, l := range loops {
		out, err := pipeline.Run(l.Graph, m, pipeline.Options{
			Assign: assign.Options{Variant: assign.HeuristicIterative},
		})
		if err != nil {
			t.Errorf("%s: %v", l.Name, err)
			continue
		}
		if out.II < out.MII {
			t.Errorf("%s: II %d below MII %d", l.Name, out.II, out.MII)
		}
	}
}

func TestCompileSelect(t *testing.T) {
	// IF-converted conditional: out[i] = a[i] > 0 ? b[i] : c — modeled
	// with an explicit predicate value and a select intrinsic.
	g := compileOne(t, `
loop cond {
    p = a[i] - threshold
    out[i] = select(p, b[i], fallback)
}`)
	if kindCount(g, ddg.OpALU) != 1 {
		t.Fatalf("select should compile to one integer conditional move:\n%s", g)
	}
	// The select consumes the predicate and b[i]'s load (fallback is
	// invariant).
	for _, n := range g.Nodes {
		if n.Kind == ddg.OpALU {
			if got := len(g.Predecessors(n.ID)); got != 2 {
				t.Errorf("select has %d in-loop inputs, want 2:\n%s", got, g)
			}
		}
	}
}

func TestCompileSelectArityError(t *testing.T) {
	_, err := frontend.Compile(`loop x { a[i] = select(b[i], c[i]) }`)
	if err == nil || !strings.Contains(err.Error(), "','") {
		t.Errorf("short select accepted: %v", err)
	}
	_, err = frontend.Compile(`loop x { a[i] = sqrt(b[i], c[i]) }`)
	if err == nil {
		t.Error("sqrt with two args accepted")
	}
}
