package frontend

import "testing"

const benchSrc = `
loop hydro   { x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]) }
loop dotprod { s = s + a[i] * b[i] }
loop smooth  { x[i] = (x[i-1] + x[i] + x[i+1]) / 3.0 }
loop linrec  { v = v * c + d[i]; out[i] = v }
`

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}
