package frontend

import (
	"testing"

	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// FuzzCompile feeds arbitrary source to the compiler: it must never
// panic, and anything it accepts must be a valid, MII-computable
// dependence graph.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"loop dp { s = s + a[i] * b[i] }",
		"loop st { x[i] = (x[i-1] + x[i+1]) / 2.0 }",
		"loop lin { v = v * c + d[i]\nout[i] = v }",
		"loop n { r[i] = sqrt(u[i]*u[i]) }",
		"loop e { a[i] = -b[i] + 3.5 }",
		"loop g { t = a[i]; u = t * t; c[i] = u }",
		"loop bad { a[j] = 1.0 }",
		"loop bad2 { a[i] = }",
		"loop { }",
		"###",
		"loop x { y = y }",
		"loop w { x[i] = x[i] }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m := machine.NewBusedGP(2, 2, 1)
	f.Fuzz(func(t *testing.T, src string) {
		loops, err := Compile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, l := range loops {
			if verr := l.Graph.Validate(); verr != nil {
				t.Fatalf("accepted invalid graph: %v\nsource: %q", verr, src)
			}
			if got := mii.MII(l.Graph, m); got < 1 {
				t.Fatalf("MII = %d\nsource: %q", got, src)
			}
		}
	})
}
