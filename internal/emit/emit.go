// Package emit renders finished modulo schedules as textual VLIW code:
// the steady-state kernel (II instruction rows, each naming the
// operations every cluster issues, with stage annotations), and the
// software-pipeline prologue and epilogue that ramp the overlapped
// iterations in and out.
package emit

import (
	"fmt"
	"sort"
	"strings"

	"clustersched/internal/ddg"
	"clustersched/internal/sched"
)

// opLabel names a node for code output.
func opLabel(g *ddg.Graph, n int) string {
	node := g.Nodes[n]
	if node.Name != "" {
		return fmt.Sprintf("%s:%s", node.Kind, node.Name)
	}
	return fmt.Sprintf("%s:n%d", node.Kind, n)
}

func clusterOf(in sched.Input, n int) int {
	if in.ClusterOf == nil {
		return 0
	}
	return in.ClusterOf[n]
}

// Kernel renders the steady-state kernel: one row per modulo slot,
// one column per cluster, each operation tagged with its stage (the
// iteration offset it executes for).
func Kernel(in sched.Input, s *sched.Schedule) string {
	g := in.Graph
	rows := make([][][]string, s.II) // [slot][cluster][]labels
	for i := range rows {
		rows[i] = make([][]string, in.Machine.NumClusters())
	}
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.CycleOf[order[a]] < s.CycleOf[order[b]] })
	for _, n := range order {
		slot := ((s.CycleOf[n] % s.II) + s.II) % s.II
		stage := s.CycleOf[n] / s.II
		cl := clusterOf(in, n)
		label := fmt.Sprintf("%s[s%d]", opLabel(g, n), stage)
		if g.Nodes[n].Kind == ddg.OpCopy && in.CopyTargets != nil {
			label += fmt.Sprintf("->%v", in.CopyTargets[n])
		}
		rows[slot][cl] = append(rows[slot][cl], label)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "kernel: II=%d, stages=%d\n", s.II, s.StageCount())
	for slot := 0; slot < s.II; slot++ {
		fmt.Fprintf(&b, "  %2d:", slot)
		for cl, ops := range rows[slot] {
			if len(ops) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  c%d{%s}", cl, strings.Join(ops, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pipelined renders prologue, kernel, and epilogue. The prologue rows
// are the absolute cycles before the kernel reaches steady state; the
// epilogue drains the final iterations. Rows are labelled with the
// iteration each operation belongs to.
func Pipelined(in sched.Input, s *sched.Schedule) string {
	g := in.Graph
	stages := s.StageCount()
	var b strings.Builder

	rowOf := func(iter, absCycle int) []string {
		var ops []string
		for n := 0; n < g.NumNodes(); n++ {
			if s.CycleOf[n]+iter*s.II == absCycle {
				ops = append(ops, fmt.Sprintf("c%d:%s(i%d)", clusterOf(in, n), opLabel(g, n), iter))
			}
		}
		return ops
	}

	fmt.Fprintf(&b, "software pipeline: II=%d, stages=%d\n", s.II, stages)
	b.WriteString("prologue:\n")
	for t := 0; t < (stages-1)*s.II; t++ {
		var ops []string
		for iter := 0; iter*s.II <= t; iter++ {
			ops = append(ops, rowOf(iter, t)...)
		}
		fmt.Fprintf(&b, "  %3d: %s\n", t, strings.Join(ops, " "))
	}
	b.WriteString(Kernel(in, s))
	b.WriteString("epilogue:\n")
	// The last stages-1 iterations finish after the kernel exits. Let
	// iteration 0 be the first of the final in-flight group; iteration
	// k (1..stages-1) entered the kernel k*II cycles later.
	base := (stages - 1) * s.II
	for t := base; t < base+(stages-1)*s.II; t++ {
		var ops []string
		for iter := 1; iter < stages; iter++ {
			for n := 0; n < g.NumNodes(); n++ {
				if s.CycleOf[n]+iter*s.II == t+s.II {
					ops = append(ops, fmt.Sprintf("c%d:%s(i+%d)", clusterOf(in, n), opLabel(g, n), iter))
				}
			}
		}
		fmt.Fprintf(&b, "  %3d: %s\n", t-base, strings.Join(ops, " "))
	}
	return b.String()
}

// Gantt renders an occupancy timeline of the kernel: one row per
// cluster, one column per modulo slot, each cell showing how many of
// the cluster's function units issue in that slot (and '+' when copies
// move values that cycle), with per-cluster utilization percentages —
// a quick visual answer to "how full did the machine get".
func Gantt(in sched.Input, s *sched.Schedule) string {
	g := in.Graph
	numClusters := in.Machine.NumClusters()
	ops := make([][]int, numClusters)    // [cluster][slot] issue count
	copies := make([][]int, numClusters) // [cluster][slot] copies sourced
	for i := range ops {
		ops[i] = make([]int, s.II)
		copies[i] = make([]int, s.II)
	}
	for n := 0; n < g.NumNodes(); n++ {
		slot := ((s.CycleOf[n] % s.II) + s.II) % s.II
		cl := clusterOf(in, n)
		if g.Nodes[n].Kind == ddg.OpCopy {
			copies[cl][slot]++
		} else {
			ops[cl][slot]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "kernel occupancy (II=%d):\n", s.II)
	for cl := 0; cl < numClusters; cl++ {
		width := in.Machine.Clusters[cl].Width()
		used := 0
		fmt.Fprintf(&b, "  c%-2d |", cl)
		for slot := 0; slot < s.II; slot++ {
			used += ops[cl][slot]
			cell := ' '
			switch {
			case ops[cl][slot] == 0:
				cell = '.'
			case ops[cl][slot] >= width:
				cell = '#'
			default:
				cell = rune('0' + ops[cl][slot])
			}
			b.WriteRune(cell)
			if copies[cl][slot] > 0 {
				b.WriteRune('+')
			} else {
				b.WriteRune(' ')
			}
		}
		util := 0.0
		if width > 0 && s.II > 0 {
			util = 100 * float64(used) / float64(width*s.II)
		}
		fmt.Fprintf(&b, "| %3.0f%% of %d units\n", util, width)
	}
	b.WriteString("  (digit = ops issued that slot, # = full row, + = copy sourced)\n")
	return b.String()
}
