package emit

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/sched"
)

// fixture builds a small clustered schedule with at least one copy.
func fixture(t *testing.T) (sched.Input, *sched.Schedule) {
	t.Helper()
	g := ddg.NewGraph(4, 3)
	a := g.AddNode(ddg.OpLoad, "a")
	b := g.AddNode(ddg.OpFMul, "b")
	c := g.AddNode(ddg.OpFAdd, "c")
	d := g.AddNode(ddg.OpStore, "d")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)

	// Two single-unit clusters force a split and a copy at II=2.
	m := &machine.Config{
		Name:    "2x2",
		Network: machine.Broadcast,
		Buses:   2,
		Clusters: []machine.Cluster{
			machine.GPCluster(2, 1, 1),
			machine.GPCluster(2, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
	for ii := 1; ii <= 8; ii++ {
		res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if !ok {
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		if s, ok := sched.IMS(in, 0); ok {
			return in, s
		}
	}
	t.Fatal("fixture unschedulable")
	return sched.Input{}, nil
}

func TestKernelMentionsEveryOperation(t *testing.T) {
	in, s := fixture(t)
	out := Kernel(in, s)
	for _, name := range []string{"load:a", "fmul:b", "fadd:c", "store:d"} {
		if !strings.Contains(out, name) {
			t.Errorf("kernel missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "kernel: II=") {
		t.Errorf("kernel missing header:\n%s", out)
	}
}

func TestKernelHasIIRows(t *testing.T) {
	in, s := fixture(t)
	out := Kernel(in, s)
	rows := strings.Count(out, "\n") - 1 // minus header
	if rows != s.II {
		t.Errorf("kernel has %d rows, want II=%d:\n%s", rows, s.II, out)
	}
}

func TestKernelShowsStages(t *testing.T) {
	in, s := fixture(t)
	out := Kernel(in, s)
	if !strings.Contains(out, "[s0]") {
		t.Errorf("kernel missing stage tags:\n%s", out)
	}
}

func TestPipelinedStructure(t *testing.T) {
	in, s := fixture(t)
	out := Pipelined(in, s)
	for _, section := range []string{"prologue:", "kernel:", "epilogue:"} {
		if !strings.Contains(out, section) {
			t.Errorf("pipelined output missing %s:\n%s", section, out)
		}
	}
	// Prologue + epilogue each span (stages-1)*II rows.
	wantRows := (s.StageCount() - 1) * s.II
	pro := strings.SplitN(out, "kernel:", 2)[0]
	proRows := strings.Count(pro, "\n") - 2 // header lines
	if proRows != wantRows {
		t.Errorf("prologue rows = %d, want %d:\n%s", proRows, wantRows, pro)
	}
}

func TestPipelinedMentionsIterations(t *testing.T) {
	in, s := fixture(t)
	out := Pipelined(in, s)
	if s.StageCount() > 1 && !strings.Contains(out, "(i0)") {
		t.Errorf("prologue missing iteration tags:\n%s", out)
	}
}

func TestKernelUnifiedMachineSingleColumn(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "x")
	b := g.AddNode(ddg.OpALU, "y")
	g.AddEdge(a, b, 0)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s, ok := sched.IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	out := Kernel(in, s)
	if strings.Contains(out, "c1{") {
		t.Errorf("unified machine shows a second cluster:\n%s", out)
	}
}

func TestCopyLabelsShowTargets(t *testing.T) {
	in, s := fixture(t)
	hasCopy := false
	for n := 0; n < in.Graph.NumNodes(); n++ {
		if in.Graph.Nodes[n].Kind == ddg.OpCopy {
			hasCopy = true
		}
	}
	if !hasCopy {
		t.Skip("fixture produced no copies this time")
	}
	out := Kernel(in, s)
	if !strings.Contains(out, "copy:") || !strings.Contains(out, "->[") {
		t.Errorf("copy targets not rendered:\n%s", out)
	}
}

func TestGanttShowsUtilization(t *testing.T) {
	in, s := fixture(t)
	out := Gantt(in, s)
	for _, want := range []string{"kernel occupancy", "c0", "c1", "% of", "(digit"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
	// Row length: every cluster line spans the II slots.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestGanttFullRowMarker(t *testing.T) {
	// A single-unit cluster issuing every slot shows '#'.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	m := &machine.Config{
		Name:      "1x1",
		Network:   machine.Broadcast,
		Clusters:  []machine.Cluster{machine.GPCluster(1, 0, 0)},
		Latencies: machine.DefaultLatencies(),
	}
	in := sched.Input{Graph: g, Machine: m, II: 2}
	s, ok := sched.IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	out := Gantt(in, s)
	if !strings.Contains(out, "#") || !strings.Contains(out, "100%") {
		t.Errorf("full utilization not marked:\n%s", out)
	}
}
