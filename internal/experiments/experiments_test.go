package experiments

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func TestAllExperimentsDefined(t *testing.T) {
	all := All()
	wantIDs := []string{"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "table3", "grid"}
	if len(all) != len(wantIDs) {
		t.Fatalf("got %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, id := range wantIDs {
		if all[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		if len(all[i].Rows) == 0 {
			t.Errorf("experiment %q has no rows", id)
		}
		for _, row := range all[i].Rows {
			if err := row.Machine.Validate(); err != nil {
				t.Errorf("%s row %q: invalid machine: %v", id, row.Label, err)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if cfg, ok := ByID("fig14"); !ok || cfg.ID != "fig14" {
		t.Error("ByID(fig14) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown ID")
	}
}

func TestHeuristicExperimentsCoverAllVariants(t *testing.T) {
	for _, id := range []string{"fig12", "fig13"} {
		cfg, _ := ByID(id)
		seen := map[assign.Variant]bool{}
		for _, row := range cfg.Rows {
			seen[row.Variant] = true
		}
		for _, v := range []assign.Variant{assign.Simple, assign.SimpleIterative, assign.Heuristic, assign.HeuristicIterative} {
			if !seen[v] {
				t.Errorf("%s missing variant %s", id, v)
			}
		}
	}
}

func TestRunSmallSuite(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 2, Count: 60})
	cfg := Config{
		ID:    "smoke",
		Title: "smoke test",
		Rows: []Row{{
			Label:      "2c",
			Machine:    machine.NewBusedGP(2, 2, 1),
			Variant:    assign.HeuristicIterative,
			PaperMatch: 99,
		}},
	}
	res := Run(cfg, loops, Options{})
	if res.Loops != 60 {
		t.Errorf("Loops = %d, want 60", res.Loops)
	}
	row := res.Rows[0]
	if row.Hist.Total() != 60 {
		t.Errorf("histogram total = %d, want 60", row.Hist.Total())
	}
	if row.Hist.MatchPercent() < 80 {
		t.Errorf("match = %.1f%%, implausibly low", row.Hist.MatchPercent())
	}
	if row.AvgII <= 0 {
		t.Errorf("AvgII = %v, want > 0", row.AvgII)
	}

	report := res.Report()
	for _, want := range []string{"smoke", "2c", "99.0", "avg II"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunIsDeterministicAcrossParallelism(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 6, Count: 40})
	cfg := Config{ID: "det", Rows: []Row{{
		Label:   "x",
		Machine: machine.NewBusedGP(2, 2, 1),
		Variant: assign.HeuristicIterative,
	}}}
	a := Run(cfg, loops, Options{Parallelism: 1})
	b := Run(cfg, loops, Options{Parallelism: 8})
	if a.Rows[0].Hist != b.Rows[0].Hist {
		t.Errorf("parallelism changed results: %v vs %v", a.Rows[0].Hist, b.Rows[0].Hist)
	}
}

func TestGridExperimentUsesPointToPoint(t *testing.T) {
	cfg, _ := ByID("grid")
	if cfg.Rows[0].Machine.Network != machine.PointToPoint {
		t.Error("grid experiment must use a point-to-point machine")
	}
}

func TestCSVOutput(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 12, Count: 30})
	cfg := Config{ID: "csvtest", Rows: []Row{{
		Label:      "a,b", // embedded comma must be quoted
		Machine:    machine.NewBusedGP(2, 2, 1),
		Variant:    assign.HeuristicIterative,
		PaperMatch: 98.5,
	}}}
	out := Run(cfg, loops, Options{}).CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "experiment,row,paper_match_pct,match_pct,delta0_pct") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"a,b"`) || !strings.Contains(lines[1], "98.5") {
		t.Errorf("bad row: %s", lines[1])
	}
	rep := RegisterStudy(loops[:10], Options{})
	if !strings.HasPrefix(rep.CSV(), "machine,avg_maxlive") {
		t.Errorf("bad register CSV:\n%s", rep.CSV())
	}
}
