package experiments

import (
	"strings"
	"testing"

	"clustersched/internal/livermore"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func TestExtensionsDefined(t *testing.T) {
	exts := Extensions()
	wantIDs := []string{"abl-incoming", "abl-evict", "abl-order", "abl-sched", "ring", "nonpipelined", "copylatency"}
	if len(exts) != len(wantIDs) {
		t.Fatalf("got %d extensions, want %d", len(exts), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exts[i].ID != id {
			t.Errorf("extension %d = %q, want %q", i, exts[i].ID, id)
		}
		for _, row := range exts[i].Rows {
			if err := row.Machine.Validate(); err != nil {
				t.Errorf("%s row %q: %v", id, row.Label, err)
			}
		}
	}
	if _, ok := ByID("abl-incoming"); !ok {
		t.Error("ByID does not find extension experiments")
	}
}

func TestIncomingPredictionAblationShowsGap(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 2, Count: 150})
	res := Run(AblationIncomingPrediction(), loops, Options{})
	with := res.Rows[0].Hist.MatchPercent()
	without := res.Rows[1].Hist.MatchPercent()
	if with <= without {
		t.Errorf("incoming prediction should help: with=%.1f%% without=%.1f%%", with, without)
	}
}

func TestOrderingAblationShufflesAndRuns(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 4, Count: 80})
	res := RunOrderingAblation(loops, Options{})
	if res.Loops != 80 {
		t.Fatalf("Loops = %d", res.Loops)
	}
	swing := res.Rows[0]
	naive := res.Rows[1]
	// The swing order's measurable benefit is fewer copies (the match
	// rates are close): Section 4.1's second goal.
	if swing.AvgCopies >= naive.AvgCopies {
		t.Errorf("swing order should insert fewer copies: swing=%.2f naive=%.2f",
			swing.AvgCopies, naive.AvgCopies)
	}
}

func TestRingScalingDegradesWithSize(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 120})
	res := Run(RingScaling(), loops, Options{})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	m4 := res.Rows[0].Hist.MatchPercent()
	m8 := res.Rows[2].Hist.MatchPercent()
	if m8 >= m4 {
		t.Errorf("8-ring (%.1f%%) should be harder than 4-ring (%.1f%%)", m8, m4)
	}
	if m8 < 70 {
		t.Errorf("8-ring match %.1f%% implausibly low", m8)
	}
}

func TestRegisterStudy(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 7, Count: 60})
	rep := RegisterStudy(loops, Options{})
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.ScheduledLoops < 55 {
			t.Errorf("%s: only %d loops scheduled", row.Label, row.ScheduledLoops)
		}
		if row.AvgRegsStaged > row.AvgRegs+0.001 {
			t.Errorf("%s: stage scheduling increased registers %.1f -> %.1f",
				row.Label, row.AvgRegs, row.AvgRegsStaged)
		}
		if row.AvgMaxLive <= 0 || row.AvgMVEFactor < 1 {
			t.Errorf("%s: implausible stats %+v", row.Label, row)
		}
	}
	// Clustering must cap the largest single register file: the
	// 4-cluster machine's biggest file is smaller than the 16-wide
	// unified machine's single file.
	unified16 := rep.Rows[2]
	clustered4 := rep.Rows[3]
	if clustered4.AvgMaxCluster >= unified16.AvgMaxCluster {
		t.Errorf("clustering should shrink the largest register file: %.1f vs %.1f",
			clustered4.AvgMaxCluster, unified16.AvgMaxCluster)
	}
	report := rep.Report()
	for _, want := range []string{"MaxLive", "regs+SS", "largest file", "unified 16-wide GP"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRowSchedulerOverride(t *testing.T) {
	cfg := AblationScheduler()
	loops := loopgen.Suite(loopgen.Options{Seed: 9, Count: 40})
	res := Run(cfg, loops, Options{})
	for _, row := range res.Rows {
		if row.Hist.Total() != 40 {
			t.Errorf("%s: total %d", row.Label, row.Hist.Total())
		}
	}
}

func TestRegisterStudyMachinesAreValid(t *testing.T) {
	// The study builds its own machines; sanity-check the equivalence
	// of widths between paired rows.
	if machine.NewBusedGP(2, 2, 1).TotalWidth() != machine.NewUnifiedGP(8).TotalWidth() {
		t.Error("2-cluster machine must pair with the 8-wide unified machine")
	}
	if machine.NewBusedGP(4, 4, 2).TotalWidth() != machine.NewUnifiedGP(16).TotalWidth() {
		t.Error("4-cluster machine must pair with the 16-wide unified machine")
	}
}

func TestLivermoreStudy(t *testing.T) {
	kernels, err := livermore.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LivermoreStudy(kernels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(kernels) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(kernels))
	}
	for _, row := range rep.Rows {
		if len(row.PerMachine) != len(rep.Machines) || len(row.OwnUnified) != len(rep.Machines) {
			t.Fatalf("%s: ragged row %+v", row.Name, row)
		}
		for i, ii := range row.PerMachine {
			if ii < row.OwnUnified[i] {
				t.Errorf("%s on %s: clustered II %d below its unified baseline %d",
					row.Name, rep.Machines[i].Name, ii, row.OwnUnified[i])
			}
		}
	}
	if !strings.Contains(rep.Report(), "lfk05_tridiag") {
		t.Error("report missing kernels")
	}
}
