// Package experiments defines and runs the paper's evaluation: one
// experiment per figure and table of Section 6, each comparing modulo
// schedules on a clustered machine against the equally wide unified
// machine over the loop suite, reported as ΔII histograms. The paper's
// published numbers (read off its figures and text) are carried along
// so reports can show paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
	"clustersched/internal/stats"
)

// Row is one line of an experiment: a machine and an assignment
// variant evaluated over the whole suite.
type Row struct {
	Label   string
	Machine *machine.Config
	Variant assign.Variant
	// PaperMatch is the paper's x=0 percentage for this row, as read
	// off the corresponding figure or table; negative when the paper
	// gives no number.
	PaperMatch float64
	// Assign, when non-nil, fully overrides the assignment options
	// (Variant is then ignored) — used by the ablation experiments.
	Assign *assign.Options
	// Scheduler, when non-nil, overrides Options.Scheduler for this
	// row — used by the scheduler-comparison ablation.
	Scheduler *pipeline.Scheduler
}

// assignOptions resolves the row's effective assignment options.
func (r Row) assignOptions() assign.Options {
	if r.Assign != nil {
		return *r.Assign
	}
	return assign.Options{Variant: r.Variant}
}

// Config is one experiment (one figure or table).
type Config struct {
	ID    string
	Title string
	Rows  []Row
}

// RowResult is a measured row.
type RowResult struct {
	Label      string
	PaperMatch float64
	Hist       stats.DeltaHist
	AvgCopies  float64
	AvgII      float64
	Elapsed    time.Duration
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	Loops int
	Rows  []RowResult
}

// Options tunes an experiment run.
type Options struct {
	// Scheduler for phase two (default IMS, the most robust engine;
	// SMS reproduces the paper's choice).
	Scheduler pipeline.Scheduler
	// Parallelism bounds worker goroutines (default: GOMAXPROCS).
	Parallelism int
}

// Run executes one experiment over the given loops.
func Run(cfg Config, loops []*ddg.Graph, opts Options) Result {
	res := Result{ID: cfg.ID, Title: cfg.Title, Loops: len(loops)}
	for _, row := range cfg.Rows {
		res.Rows = append(res.Rows, runRow(row, loops, opts))
	}
	return res
}

func runRow(row Row, loops []*ddg.Graph, opts Options) RowResult {
	start := time.Now()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	unified := row.Machine.Unified()

	type outcome struct {
		delta  int
		copies int
		ii     int
		failed bool
	}
	outcomes := make([]outcome, len(loops))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scheduler := opts.Scheduler
			if row.Scheduler != nil {
				scheduler = *row.Scheduler
			}
			for i := range work {
				g := loops[i]
				uo, uerr := pipeline.Run(g, unified, pipeline.Options{Scheduler: scheduler})
				co, cerr := pipeline.Run(g, row.Machine, pipeline.Options{
					Assign:    row.assignOptions(),
					Scheduler: scheduler,
				})
				if uerr != nil || cerr != nil {
					outcomes[i] = outcome{failed: true}
					continue
				}
				outcomes[i] = outcome{
					delta:  co.II - uo.II,
					copies: co.Assignment.Copies,
					ii:     co.II,
				}
			}
		}()
	}
	for i := range loops {
		work <- i
	}
	close(work)
	wg.Wait()

	r := RowResult{Label: row.Label, PaperMatch: row.PaperMatch}
	var copies, iis int
	for _, o := range outcomes {
		if o.failed {
			r.Hist.AddFailure()
			continue
		}
		r.Hist.Add(o.delta)
		copies += o.copies
		iis += o.ii
	}
	if n := r.Hist.Total() - r.Hist.Failed; n > 0 {
		r.AvgCopies = float64(copies) / float64(n)
		r.AvgII = float64(iis) / float64(n)
	}
	r.Elapsed = time.Since(start)
	return r
}

// Report renders a result as a paper-style table.
func (r Result) Report() string {
	s := fmt.Sprintf("%s — %s (%d loops)\n", r.ID, r.Title, r.Loops)
	s += fmt.Sprintf("  %-34s %8s %8s   %s\n", "row", "paper%", "match%", "ΔII histogram 0/1/2/3/≥4")
	for _, row := range r.Rows {
		paper := "   --"
		if row.PaperMatch >= 0 {
			paper = fmt.Sprintf("%5.1f", row.PaperMatch)
		}
		s += fmt.Sprintf("  %-34s %8s %7.1f%%   %s  (avg II %.2f, avg copies %.2f)\n",
			row.Label, paper, row.Hist.MatchPercent(), row.Hist.Row(), row.AvgII, row.AvgCopies)
	}
	return s
}
