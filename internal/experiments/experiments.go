// Package experiments defines and runs the paper's evaluation: one
// experiment per figure and table of Section 6, each comparing modulo
// schedules on a clustered machine against the equally wide unified
// machine over the loop suite, reported as ΔII histograms. The paper's
// published numbers (read off its figures and text) are carried along
// so reports can show paper-vs-measured side by side.
package experiments

import (
	"context"
	"fmt"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
	"clustersched/internal/stats"
)

// Row is one line of an experiment: a machine and an assignment
// variant evaluated over the whole suite.
type Row struct {
	Label   string
	Machine *machine.Config
	Variant assign.Variant
	// PaperMatch is the paper's x=0 percentage for this row, as read
	// off the corresponding figure or table; negative when the paper
	// gives no number.
	PaperMatch float64
	// Assign, when non-nil, fully overrides the assignment options
	// (Variant is then ignored) — used by the ablation experiments.
	Assign *assign.Options
	// Scheduler, when non-nil, overrides Options.Scheduler for this
	// row — used by the scheduler-comparison ablation.
	Scheduler *pipeline.Scheduler
}

// assignOptions resolves the row's effective assignment options.
func (r Row) assignOptions() assign.Options {
	if r.Assign != nil {
		return *r.Assign
	}
	return assign.Options{Variant: r.Variant}
}

// Config is one experiment (one figure or table).
type Config struct {
	ID    string
	Title string
	Rows  []Row
}

// RowResult is a measured row.
type RowResult struct {
	Label      string
	PaperMatch float64
	Hist       stats.DeltaHist
	AvgCopies  float64
	AvgII      float64
	Elapsed    time.Duration
	// Stats aggregates the search effort of the clustered runs of this
	// row (the unified baselines are excluded). Populated when
	// Options.CollectStats is set or an Observer is installed.
	Stats obs.Stats
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	Loops int
	Rows  []RowResult
}

// Options tunes an experiment run.
type Options struct {
	// Scheduler for phase two (default IMS, the most robust engine;
	// SMS reproduces the paper's choice).
	Scheduler pipeline.Scheduler
	// Parallelism bounds worker goroutines (default: GOMAXPROCS).
	Parallelism int
	// CollectStats threads the observability layer through every
	// clustered pipeline run and aggregates obs.Stats per row. Off by
	// default so benchmarks measure the bare pipeline.
	CollectStats bool
	// Observer receives trace events from every clustered pipeline run
	// (implies CollectStats). It is shared across worker goroutines and
	// must be safe for concurrent use.
	Observer obs.Observer
	// DisableWarmStart forces every candidate II of every clustered run
	// to assign from scratch (ablation; see pipeline.Options).
	DisableWarmStart bool
}

// pipelineOptions resolves the per-run pipeline options for one loop of
// a row.
func (o Options) pipelineOptions(row Row) pipeline.Options {
	scheduler := o.Scheduler
	if row.Scheduler != nil {
		scheduler = *row.Scheduler
	}
	return pipeline.Options{
		Assign:           row.assignOptions(),
		Scheduler:        scheduler,
		Observer:         o.Observer,
		CollectStats:     o.CollectStats || o.Observer != nil,
		DisableWarmStart: o.DisableWarmStart,
	}
}

// Run executes one experiment over the given loops; it is RunContext
// under context.Background().
func Run(cfg Config, loops []*ddg.Graph, opts Options) Result {
	res, _ := RunContext(context.Background(), cfg, loops, opts)
	return res
}

// RunContext executes one experiment over the given loops, stopping
// early — with partial rows and ctx.Err() — when ctx is canceled.
func RunContext(ctx context.Context, cfg Config, loops []*ddg.Graph, opts Options) (Result, error) {
	res := Result{ID: cfg.ID, Title: cfg.Title, Loops: len(loops)}
	for _, row := range cfg.Rows {
		rr, err := runRow(ctx, row, loops, opts)
		res.Rows = append(res.Rows, rr)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

func runRow(ctx context.Context, row Row, loops []*ddg.Graph, opts Options) (RowResult, error) {
	start := time.Now()
	unified := row.Machine.Unified()

	popts := opts.pipelineOptions(row)
	uopts := pipeline.Options{Scheduler: popts.Scheduler}
	// Two batches — the unified baseline and the clustered machine —
	// each sharded over per-worker reusable Sessions, so the per-machine
	// precomputation is paid once per worker instead of once per loop.
	uouts := pipeline.RunBatch(ctx, loops, unified, uopts, opts.Parallelism)
	couts := pipeline.RunBatch(ctx, loops, row.Machine, popts, opts.Parallelism)

	r := RowResult{Label: row.Label, PaperMatch: row.PaperMatch}
	if err := ctx.Err(); err != nil {
		// Canceled: the outcomes are a mix of completed and canceled
		// entries; report nothing rather than a misleading partial row.
		r.Elapsed = time.Since(start)
		return r, err
	}
	var copies, iis int
	for i := range loops {
		uo, co := uouts[i].Outcome, couts[i].Outcome
		if uo == nil || co == nil {
			r.Hist.AddFailure()
			continue
		}
		r.Hist.Add(co.II - uo.II)
		copies += co.Assignment.Copies
		iis += co.II
		r.Stats.Add(co.Stats)
	}
	if n := r.Hist.Total() - r.Hist.Failed; n > 0 {
		r.AvgCopies = float64(copies) / float64(n)
		r.AvgII = float64(iis) / float64(n)
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

// Report renders a result as a paper-style table.
func (r Result) Report() string {
	s := fmt.Sprintf("%s — %s (%d loops)\n", r.ID, r.Title, r.Loops)
	s += fmt.Sprintf("  %-34s %8s %8s   %s\n", "row", "paper%", "match%", "ΔII histogram 0/1/2/3/≥4")
	for _, row := range r.Rows {
		paper := "   --"
		if row.PaperMatch >= 0 {
			paper = fmt.Sprintf("%5.1f", row.PaperMatch)
		}
		s += fmt.Sprintf("  %-34s %8s %7.1f%%   %s  (avg II %.2f, avg copies %.2f)\n",
			row.Label, paper, row.Hist.MatchPercent(), row.Hist.Row(), row.AvgII, row.AvgCopies)
	}
	return s
}
