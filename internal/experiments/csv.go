package experiments

import (
	"fmt"
	"strings"

	"clustersched/internal/stats"
)

// CSV renders a result as comma-separated rows (one header plus one
// row per experiment row), for plotting the figures outside Go.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,row,paper_match_pct,match_pct")
	for d := 0; d <= stats.MaxDelta; d++ {
		fmt.Fprintf(&b, ",delta%d_pct", d)
	}
	b.WriteString(",avg_ii,avg_copies,loops,failed")
	b.WriteString(",ii_candidates,assign_commits,force_placements,evictions,pcr_rejections,sched_displacements\n")
	for _, row := range r.Rows {
		paper := ""
		if row.PaperMatch >= 0 {
			paper = fmt.Sprintf("%.1f", row.PaperMatch)
		}
		fmt.Fprintf(&b, "%s,%q,%s,%.2f", r.ID, row.Label, paper, row.Hist.MatchPercent())
		for d := 0; d <= stats.MaxDelta; d++ {
			fmt.Fprintf(&b, ",%.2f", row.Hist.Percent(d))
		}
		fmt.Fprintf(&b, ",%.2f,%.2f,%d,%d", row.AvgII, row.AvgCopies, row.Hist.Total(), row.Hist.Failed)
		s := row.Stats
		fmt.Fprintf(&b, ",%d,%d,%d,%d,%d,%d\n", s.IICandidates, s.AssignCommits,
			s.ForcePlacements, s.Evictions, s.PCRRejections, s.SchedDisplacements)
	}
	return b.String()
}

// CSV renders the register study as comma-separated rows.
func (r RegisterReport) CSV() string {
	var b strings.Builder
	b.WriteString("machine,avg_maxlive,avg_regs,avg_regs_staged,avg_regs_rotating,avg_largest_file,avg_mve_factor,scheduled_loops\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%q,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d\n",
			row.Label, row.AvgMaxLive, row.AvgRegs, row.AvgRegsStaged, row.AvgRegsRotating,
			row.AvgMaxCluster, row.AvgMVEFactor, row.ScheduledLoops)
	}
	return b.String()
}
