package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/frontend"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
	"clustersched/internal/pool"
	"clustersched/internal/postpart"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/stagesched"
	"clustersched/internal/verify"
)

// The experiments below go beyond the paper's evaluation: ablations of
// the design choices DESIGN.md calls out, the ring topology that
// generalizes the grid machine, and a register-pressure study backing
// the paper's "smaller register files" motivation. None has a paper
// reference number (PaperMatch -1).

// AblationIncomingPrediction isolates this implementation's one
// extension over the paper: mirroring the PCR/MRC copy prediction of
// Figure 10 line 6 onto the write-port (incoming) side.
func AblationIncomingPrediction() Config {
	full := assign.Options{Variant: assign.HeuristicIterative}
	noIncoming := assign.Options{Variant: assign.HeuristicIterative, DisableIncomingPrediction: true}
	return Config{
		ID:    "abl-incoming",
		Title: "Ablation: incoming-copy (write-port) prediction, 4 clusters x 4 GP, 4 buses, 2 ports",
		Rows: []Row{
			{Label: "with incoming prediction", Machine: machine.NewBusedGP(4, 4, 2), Assign: &full, PaperMatch: -1},
			{Label: "paper-literal (outgoing only)", Machine: machine.NewBusedGP(4, 4, 2), Assign: &noIncoming, PaperMatch: -1},
		},
	}
}

// AblationEviction compares the forced-placement victim policies of
// Section 4.3.1.
func AblationEviction() Config {
	newest := assign.Options{Variant: assign.HeuristicIterative}
	oldest := assign.Options{Variant: assign.HeuristicIterative, EvictOldest: true}
	return Config{
		ID:    "abl-evict",
		Title: "Ablation: eviction victim policy, 4 clusters x 4 GP, 4 buses, 2 ports",
		Rows: []Row{
			{Label: "evict newest assignment", Machine: machine.NewBusedGP(4, 4, 2), Assign: &newest, PaperMatch: -1},
			{Label: "evict oldest assignment", Machine: machine.NewBusedGP(4, 4, 2), Assign: &oldest, PaperMatch: -1},
		},
	}
}

// AblationOrdering quantifies Section 4.1: assigning critical SCCs
// first with the swing ordering versus plain node order. NOTE: run it
// through RunOrderingAblation, which shuffles node IDs first — the
// generator emits nodes in statement order, so unshuffled ID order is
// an artificially informed ordering.
func AblationOrdering() Config {
	swing := assign.Options{Variant: assign.HeuristicIterative}
	naive := assign.Options{Variant: assign.HeuristicIterative, NaiveOrdering: true}
	return Config{
		ID:    "abl-order",
		Title: "Ablation: SCC-first swing ordering vs naive order (shuffled IDs), 2 clusters x 4 GP, 2 buses, 1 port",
		Rows: []Row{
			{Label: "SCC-first swing order (paper)", Machine: machine.NewBusedGP(2, 2, 1), Assign: &swing, PaperMatch: -1},
			{Label: "naive node order", Machine: machine.NewBusedGP(2, 2, 1), Assign: &naive, PaperMatch: -1},
		},
	}
}

// RunOrderingAblation runs the node-ordering ablation on ID-shuffled
// copies of the loops, removing the statement-order information the
// generator bakes into node IDs.
func RunOrderingAblation(loops []*ddg.Graph, opts Options) Result {
	res, _ := RunOrderingAblationContext(context.Background(), loops, opts)
	return res
}

// RunOrderingAblationContext is RunOrderingAblation with cancellation.
func RunOrderingAblationContext(ctx context.Context, loops []*ddg.Graph, opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(99))
	shuffled := make([]*ddg.Graph, len(loops))
	for i, g := range loops {
		shuffled[i] = loopgen.ShuffleIDs(g, rng)
	}
	return RunContext(ctx, AblationOrdering(), shuffled, opts)
}

// AblationScheduler compares phase-two engines on the same assignment
// algorithm: Rau's IMS versus the iterative swing modulo scheduler.
func AblationScheduler() Config {
	ims := pipeline.IMS
	sms := pipeline.SMS
	return Config{
		ID:    "abl-sched",
		Title: "Ablation: phase-two scheduler, 2 clusters x 4 GP, 2 buses, 1 port",
		Rows: []Row{
			{Label: "iterative modulo scheduler", Machine: machine.NewBusedGP(2, 2, 1), Variant: assign.HeuristicIterative, Scheduler: &ims, PaperMatch: -1},
			{Label: "swing modulo scheduler", Machine: machine.NewBusedGP(2, 2, 1), Variant: assign.HeuristicIterative, Scheduler: &sms, PaperMatch: -1},
		},
	}
}

// RingScaling extends the grid result: rings of 4, 6, and 8 clusters,
// where the maximum forwarding distance grows with the ring.
func RingScaling() Config {
	cfg := Config{
		ID:    "ring",
		Title: "Ring topology scaling (3 FS units per cluster, 2 ports, point-to-point)",
	}
	for _, n := range []int{4, 6, 8} {
		paper := -1.0
		if n == 4 {
			paper = 92 // the 4-ring is the paper's grid topology
		}
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d-cluster ring", n),
			Machine:    machine.NewRing(n, 2),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper,
		})
	}
	return cfg
}

// Extensions returns the beyond-the-paper experiments.
func Extensions() []Config {
	return []Config{
		AblationIncomingPrediction(),
		AblationEviction(),
		AblationOrdering(),
		AblationScheduler(),
		RingScaling(),
		NonPipelinedStudy(),
		CopyLatencyStudy(),
	}
}

// RegisterRow is one machine's register statistics over the suite.
type RegisterRow struct {
	Label string
	// Averages over scheduled loops.
	AvgMaxLive      float64 // peak simultaneously-live values
	AvgRegs         float64 // registers allocated by MVE allocation
	AvgRegsStaged   float64 // same, after stage scheduling
	AvgRegsRotating float64 // rotating-file total, after stage scheduling
	AvgMaxCluster   float64 // largest single register file needed (staged)
	AvgMVEFactor    float64
	ScheduledLoops  int
	StageMovedTotal int
}

// RegisterReport is the register-pressure study.
type RegisterReport struct {
	Rows  []RegisterRow
	Loops int
}

// RegisterStudy measures why clustering helps register files: for each
// machine it schedules the suite, allocates kernels with modulo
// variable expansion, and reports the average register demand before
// and after stage scheduling — machine-wide and for the largest single
// register file (the port-limited component a hardware designer cares
// about).
func RegisterStudy(loops []*ddg.Graph, opts Options) RegisterReport {
	rep, _ := RegisterStudyContext(context.Background(), loops, opts)
	return rep
}

// RegisterStudyContext is RegisterStudy with cancellation: it stops
// early — with the completed rows and ctx.Err() — when ctx is
// canceled.
func RegisterStudyContext(ctx context.Context, loops []*ddg.Graph, opts Options) (RegisterReport, error) {
	machines := []struct {
		label string
		m     *machine.Config
	}{
		{"unified 8-wide GP", machine.NewUnifiedGP(8)},
		{"2 clusters x 4 GP, 2 buses, 1 port", machine.NewBusedGP(2, 2, 1)},
		{"unified 16-wide GP", machine.NewUnifiedGP(16)},
		{"4 clusters x 4 GP, 4 buses, 2 ports", machine.NewBusedGP(4, 4, 2)},
	}
	rep := RegisterReport{Loops: len(loops)}
	for _, mc := range machines {
		row, err := registerRow(ctx, mc.label, mc.m, loops, opts)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func registerRow(ctx context.Context, label string, m *machine.Config, loops []*ddg.Graph, opts Options) (RegisterRow, error) {
	type sample struct {
		ok       bool
		maxLive  int
		regs     int
		regsOpt  int
		rotating int
		maxFile  int
		factor   int
		moved    int
	}
	samples := make([]sample, len(loops))
	err := pool.ForEach(ctx, len(loops), opts.Parallelism, func(i int) {
		out, err := pipeline.RunContext(ctx, loops[i], m, pipeline.Options{
			Assign:    assign.Options{Variant: assign.HeuristicIterative},
			Scheduler: opts.Scheduler,
		})
		if err != nil {
			return
		}
		in := schedInput(m, out)
		live, _ := verify.MaxLive(in, out.Schedule)
		before := regalloc.AllocateMVE(in, out.Schedule)
		moved := stagesched.Optimize(in, out.Schedule)
		after := regalloc.AllocateMVE(in, out.Schedule)
		rotating := regalloc.AllocateRotating(in, out.Schedule)
		maxFile := 0
		for _, r := range after.RegsPerCluster {
			if r > maxFile {
				maxFile = r
			}
		}
		samples[i] = sample{
			ok:       true,
			maxLive:  live,
			regs:     before.TotalRegisters(),
			regsOpt:  after.TotalRegisters(),
			rotating: rotating.TotalRegisters(),
			maxFile:  maxFile,
			factor:   after.Factor,
			moved:    moved,
		}
	})
	if err != nil {
		return RegisterRow{Label: label}, err
	}

	row := RegisterRow{Label: label}
	var live, regs, regsOpt, rotating, maxFile, factor int
	for _, s := range samples {
		if !s.ok {
			continue
		}
		row.ScheduledLoops++
		live += s.maxLive
		regs += s.regs
		regsOpt += s.regsOpt
		rotating += s.rotating
		maxFile += s.maxFile
		factor += s.factor
		row.StageMovedTotal += s.moved
	}
	if row.ScheduledLoops > 0 {
		n := float64(row.ScheduledLoops)
		row.AvgMaxLive = float64(live) / n
		row.AvgRegs = float64(regs) / n
		row.AvgRegsStaged = float64(regsOpt) / n
		row.AvgRegsRotating = float64(rotating) / n
		row.AvgMaxCluster = float64(maxFile) / n
		row.AvgMVEFactor = float64(factor) / n
	}
	return row, nil
}

func schedInput(m *machine.Config, out *pipeline.Outcome) sched.Input {
	return sched.Input{
		Graph:       out.Assignment.Graph,
		Machine:     m,
		ClusterOf:   out.Assignment.ClusterOf,
		CopyTargets: out.Assignment.CopyTargets,
		II:          out.II,
	}
}

// Report renders the register study as a table.
func (r RegisterReport) Report() string {
	s := fmt.Sprintf("register-pressure study (%d loops): MVE allocation, before/after stage scheduling\n", r.Loops)
	s += fmt.Sprintf("  %-38s %9s %9s %9s %9s %12s %8s\n",
		"machine", "MaxLive", "regs", "regs+SS", "rotating", "largest file", "MVE")
	for _, row := range r.Rows {
		s += fmt.Sprintf("  %-38s %9.1f %9.1f %9.1f %9.1f %12.1f %8.2f\n",
			row.Label, row.AvgMaxLive, row.AvgRegs, row.AvgRegsStaged, row.AvgRegsRotating,
			row.AvgMaxCluster, row.AvgMVEFactor)
	}
	return s
}

// BaselineComparison pits the paper's pre-scheduling cluster
// assignment against the post-scheduling partitioning baseline of
// Capitanio et al. (the related-work approach the paper argues cannot
// respect recurrences). Both rows report match-vs-unified histograms
// on the same machine.
func BaselineComparison(loops []*ddg.Graph, opts Options) Result {
	res, _ := BaselineComparisonContext(context.Background(), loops, opts)
	return res
}

// BaselineComparisonContext is BaselineComparison with cancellation.
func BaselineComparisonContext(ctx context.Context, loops []*ddg.Graph, opts Options) (Result, error) {
	m := machine.NewBusedGP(2, 2, 1)
	res := Result{
		ID:    "baseline",
		Title: "Pre-scheduling assignment vs post-scheduling partitioning (Capitanio-style), 2 clusters x 4 GP, 2 buses, 1 port",
		Loops: len(loops),
	}
	unified := m.Unified()

	type outcome struct {
		preDelta, postDelta int
		preCopies           int
		postCopies          int
		preII, postII       int
		failed              bool
	}
	outcomes := make([]outcome, len(loops))
	err := pool.ForEach(ctx, len(loops), opts.Parallelism, func(i int) {
		g := loops[i]
		uo, uerr := pipeline.RunContext(ctx, g, unified, pipeline.Options{Scheduler: opts.Scheduler})
		pre, perr := pipeline.RunContext(ctx, g, m, pipeline.Options{
			Assign:    assign.Options{Variant: assign.HeuristicIterative},
			Scheduler: opts.Scheduler,
		})
		post, serr := postpart.Run(g, m, postpart.Options{})
		if uerr != nil || perr != nil || serr != nil {
			outcomes[i] = outcome{failed: true}
			return
		}
		outcomes[i] = outcome{
			preDelta:   pre.II - uo.II,
			postDelta:  post.II - uo.II,
			preCopies:  pre.Assignment.Copies,
			postCopies: post.Assignment.Copies,
			preII:      pre.II,
			postII:     post.II,
		}
	})
	if err != nil {
		return res, err
	}

	pre := RowResult{Label: "pre-scheduling assignment (paper)", PaperMatch: -1}
	post := RowResult{Label: "post-scheduling partitioning", PaperMatch: -1}
	var preCopies, postCopies, preII, postII, n int
	for _, o := range outcomes {
		if o.failed {
			pre.Hist.AddFailure()
			post.Hist.AddFailure()
			continue
		}
		n++
		pre.Hist.Add(o.preDelta)
		post.Hist.Add(o.postDelta)
		preCopies += o.preCopies
		postCopies += o.postCopies
		preII += o.preII
		postII += o.postII
	}
	if n > 0 {
		pre.AvgCopies = float64(preCopies) / float64(n)
		post.AvgCopies = float64(postCopies) / float64(n)
		pre.AvgII = float64(preII) / float64(n)
		post.AvgII = float64(postII) / float64(n)
	}
	res.Rows = []RowResult{pre, post}
	return res, nil
}

// NonPipelinedStudy compares fully pipelined function units against
// machines whose FP divide and square root hold their unit for the
// whole latency (as on most real VLIWs, including the Cydra 5 the
// suite was compiled for). Both rows compare against their own
// equally-constrained unified machine, isolating the clustering cost.
func NonPipelinedStudy() Config {
	pipelined := machine.NewBusedGP(2, 2, 1)
	nonPiped := machine.NewBusedGP(2, 2, 1)
	nonPiped.Name = "gp-2c-2b-1p-npdiv"
	nonPiped.NonPipelined[ddg.OpFDiv] = true
	nonPiped.NonPipelined[ddg.OpFSqrt] = true
	return Config{
		ID:    "nonpipelined",
		Title: "Non-pipelined FP divide/sqrt, 2 clusters x 4 GP, 2 buses, 1 port",
		Rows: []Row{
			{Label: "fully pipelined units", Machine: pipelined, Variant: assign.HeuristicIterative, PaperMatch: -1},
			{Label: "non-pipelined fdiv/fsqrt", Machine: nonPiped, Variant: assign.HeuristicIterative, PaperMatch: -1},
		},
	}
}

// CopyLatencyStudy varies the inter-cluster copy latency — the paper
// targets "explicit, non-zero latency communication" and hides one
// cycle; this measures how much headroom the hiding has as wires get
// slower.
func CopyLatencyStudy() Config {
	cfg := Config{
		ID:    "copylatency",
		Title: "Copy latency sweep, 4 clusters x 4 GP, 4 buses, 2 ports",
	}
	for _, lat := range []int{1, 2, 4} {
		m := machine.NewBusedGP(4, 4, 2)
		m.Name = fmt.Sprintf("gp-4c-4b-2p-cl%d", lat)
		m.Latencies[ddg.OpCopy] = lat
		paper := -1.0
		if lat == 1 {
			paper = 97.5 // the paper's Figure 13 point
		}
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("copy latency %d", lat),
			Machine:    m,
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper,
		})
	}
	return cfg
}

// LivermoreRow is one kernel's result in the Livermore study.
type LivermoreRow struct {
	Name       string
	Ops        int
	MII        int // on the 8-wide GP unified machine
	Unified    int
	PerMachine []int // clustered IIs, aligned with LivermoreMachines
	OwnUnified []int // each machine's equally wide unified II
}

// LivermoreReport is the per-kernel real-benchmark study.
type LivermoreReport struct {
	Machines []*machine.Config
	Rows     []LivermoreRow
}

// LivermoreMachines are the configurations the kernel study runs on.
func LivermoreMachines() []*machine.Config {
	return []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
}

// LivermoreStudy schedules the real Livermore kernels on the paper's
// machines and tabulates per-kernel initiation intervals against the
// 8-wide unified baseline.
func LivermoreStudy(loops []frontend.Loop, opts Options) (LivermoreReport, error) {
	return LivermoreStudyContext(context.Background(), loops, opts)
}

// LivermoreStudyContext is LivermoreStudy with cancellation. The study
// is sequential (a handful of kernels); cancellation takes effect
// between pipeline runs and mid-search inside each run.
func LivermoreStudyContext(ctx context.Context, loops []frontend.Loop, opts Options) (LivermoreReport, error) {
	rep := LivermoreReport{Machines: LivermoreMachines()}
	unified := machine.NewUnifiedGP(8)
	for _, l := range loops {
		row := LivermoreRow{Name: l.Name, Ops: l.Graph.NumNodes()}
		uo, err := pipeline.RunContext(ctx, l.Graph, unified, pipeline.Options{Scheduler: opts.Scheduler})
		if err != nil {
			return rep, fmt.Errorf("livermore %s unified: %w", l.Name, err)
		}
		row.MII = uo.MII
		row.Unified = uo.II
		for _, m := range rep.Machines {
			co, err := pipeline.RunContext(ctx, l.Graph, m, pipeline.Options{
				Assign:    assign.Options{Variant: assign.HeuristicIterative},
				Scheduler: opts.Scheduler,
			})
			if err != nil {
				return rep, fmt.Errorf("livermore %s on %s: %w", l.Name, m.Name, err)
			}
			ou, err := pipeline.RunContext(ctx, l.Graph, m.Unified(), pipeline.Options{Scheduler: opts.Scheduler})
			if err != nil {
				return rep, fmt.Errorf("livermore %s on unified %s: %w", l.Name, m.Name, err)
			}
			row.PerMachine = append(row.PerMachine, co.II)
			row.OwnUnified = append(row.OwnUnified, ou.II)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Report renders the kernel study.
func (r LivermoreReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Livermore kernels: initiation intervals (unified 8-wide baseline)\n")
	fmt.Fprintf(&b, "  %-18s %4s %4s %8s", "kernel", "ops", "MII", "unified")
	for _, m := range r.Machines {
		fmt.Fprintf(&b, " %14s", m.Name)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %4d %4d %8d", row.Name, row.Ops, row.MII, row.Unified)
		for i, ii := range row.PerMachine {
			marker := ""
			if ii > row.OwnUnified[i] {
				marker = "*"
			}
			fmt.Fprintf(&b, " %13d%1s", ii, marker)
		}
		b.WriteByte('\n')
	}
	b.WriteString("  (* = above the machine's own equally wide unified baseline)\n")
	return b.String()
}
