package experiments

import (
	"fmt"

	"clustersched/internal/assign"
	"clustersched/internal/machine"
)

// Variant sets compared in Figures 12 and 13.
var heuristicVariants = []assign.Variant{
	assign.Simple,
	assign.SimpleIterative,
	assign.Heuristic,
	assign.HeuristicIterative,
}

// Fig12 compares the four assignment variants on the two-cluster bused
// GP machine (2 buses, 1 port). Paper numbers are read off Figure 12:
// the full iterative heuristic nearly matches the unified machine;
// dropping iteration costs 2-11% and dropping the selection heuristic
// 1-9%.
func Fig12() Config {
	paper := map[assign.Variant]float64{
		assign.Simple:             88,
		assign.SimpleIterative:    94,
		assign.Heuristic:          97,
		assign.HeuristicIterative: 99,
	}
	cfg := Config{ID: "fig12", Title: "Heuristic comparison, 2 clusters x 4 GP, 2 buses, 1 port"}
	for _, v := range heuristicVariants {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      v.String(),
			Machine:    machine.NewBusedGP(2, 2, 1),
			Variant:    v,
			PaperMatch: paper[v],
		})
	}
	return cfg
}

// Fig13 compares the four variants on the four-cluster bused GP
// machine (4 buses, 2 ports).
func Fig13() Config {
	paper := map[assign.Variant]float64{
		assign.Simple:             84,
		assign.SimpleIterative:    90,
		assign.Heuristic:          94,
		assign.HeuristicIterative: 97.5,
	}
	cfg := Config{ID: "fig13", Title: "Heuristic comparison, 4 clusters x 4 GP, 4 buses, 2 ports"}
	for _, v := range heuristicVariants {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      v.String(),
			Machine:    machine.NewBusedGP(4, 4, 2),
			Variant:    v,
			PaperMatch: paper[v],
		})
	}
	return cfg
}

// Fig14 varies the bus count on the two-cluster GP machine. The paper:
// one bus impacts 4% of the loops; four buses add nothing over two.
func Fig14() Config {
	paper := map[int]float64{1: 95.7, 2: 99.7, 4: 99.7}
	cfg := Config{ID: "fig14", Title: "Bus sweep, 2 clusters x 4 GP, 1 port"}
	for _, b := range []int{1, 2, 4} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d bus(es)", b),
			Machine:    machine.NewBusedGP(2, b, 1),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[b],
		})
	}
	return cfg
}

// Fig15 varies the port count on the two-cluster GP machine. The
// paper: a second port improves only 0.1% of the loops.
func Fig15() Config {
	paper := map[int]float64{1: 99.7, 2: 99.8}
	cfg := Config{ID: "fig15", Title: "Port sweep, 2 clusters x 4 GP, 2 buses"}
	for _, p := range []int{1, 2} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d port(s)", p),
			Machine:    machine.NewBusedGP(2, 2, p),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[p],
		})
	}
	return cfg
}

// Fig16 varies the bus count on the four-cluster GP machine. The
// paper: two buses hurt over 10% of the loops; eight add ~3% over four.
func Fig16() Config {
	paper := map[int]float64{2: 87, 4: 97.5, 8: 99.5}
	cfg := Config{ID: "fig16", Title: "Bus sweep, 4 clusters x 4 GP, 2 ports"}
	for _, b := range []int{2, 4, 8} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d buses", b),
			Machine:    machine.NewBusedGP(4, b, 2),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[b],
		})
	}
	return cfg
}

// Fig17 varies the port count on the four-cluster GP machine. The
// paper: one port degrades 12% of the loops; four ports are of
// marginal value over two.
func Fig17() Config {
	paper := map[int]float64{1: 85.5, 2: 97.5, 4: 98}
	cfg := Config{ID: "fig17", Title: "Port sweep, 4 clusters x 4 GP, 4 buses"}
	for _, p := range []int{1, 2, 4} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d port(s)", p),
			Machine:    machine.NewBusedGP(4, 4, p),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[p],
		})
	}
	return cfg
}

// Fig18 varies the bus count on the two-cluster fully specialized
// machine. The paper: ~95% of loops match given 2 buses and 1 port.
func Fig18() Config {
	paper := map[int]float64{1: 92, 2: 95, 4: 95.5}
	cfg := Config{ID: "fig18", Title: "Bus sweep, 2 clusters x 4 FS, 1 port"}
	for _, b := range []int{1, 2, 4} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d bus(es)", b),
			Machine:    machine.NewBusedFS(2, b, 1),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[b],
		})
	}
	return cfg
}

// Fig19 varies the bus count on the four-cluster fully specialized
// machine. The paper: ~94% match given 4 buses and 2 ports.
func Fig19() Config {
	paper := map[int]float64{2: 84, 4: 94, 8: 95}
	cfg := Config{ID: "fig19", Title: "Bus sweep, 4 clusters x 4 FS, 2 ports"}
	for _, b := range []int{2, 4, 8} {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d buses", b),
			Machine:    machine.NewBusedFS(4, b, 2),
			Variant:    assign.HeuristicIterative,
			PaperMatch: paper[b],
		})
	}
	return cfg
}

// Table3 measures the bus/port sweet spots as the cluster count scales
// from two to eight (paper Table 3).
func Table3() Config {
	cfg := Config{ID: "table3", Title: "Bus/port resource comparison (Table 3)"}
	rows := []struct {
		clusters, buses, ports int
		paper                  float64
	}{
		{2, 2, 1, 99.7},
		{4, 4, 2, 97.5},
		{6, 6, 3, 96.5},
		{8, 7, 3, 99.5},
	}
	for _, r := range rows {
		cfg.Rows = append(cfg.Rows, Row{
			Label:      fmt.Sprintf("%d clusters, %d buses, %d ports", r.clusters, r.buses, r.ports),
			Machine:    machine.NewBusedGP(r.clusters, r.buses, r.ports),
			Variant:    assign.HeuristicIterative,
			PaperMatch: r.paper,
		})
	}
	return cfg
}

// Grid evaluates the four-cluster point-to-point grid machine of
// Section 2.1. The paper: 92% of loops match the unified machine and
// 98% deviate by at most one cycle.
func Grid() Config {
	return Config{
		ID:    "grid",
		Title: "4-cluster grid, 3 FS units per cluster, point-to-point links",
		Rows: []Row{{
			Label:      "grid, 2 ports",
			Machine:    machine.NewGrid4(2),
			Variant:    assign.HeuristicIterative,
			PaperMatch: 92,
		}},
	}
}

// All returns every experiment in presentation order.
func All() []Config {
	return []Config{
		Fig12(), Fig13(), Fig14(), Fig15(), Fig16(), Fig17(), Fig18(), Fig19(),
		Table3(), Grid(),
	}
}

// ByID returns the experiment with the given ID, searching the paper
// set first and then the extension experiments.
func ByID(id string) (Config, bool) {
	for _, c := range append(All(), Extensions()...) {
		if c.ID == id {
			return c, true
		}
	}
	return Config{}, false
}
