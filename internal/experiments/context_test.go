package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
)

// cancelAfterFirstEvent is a concurrency-safe observer that fires
// cancel on the first event it sees from any worker.
func cancelAfterFirstEvent(cancel context.CancelFunc) obs.Observer {
	var once sync.Once
	return obs.ObserverFunc(func(obs.Event) { once.Do(cancel) })
}

func smallConfig() Config {
	return Config{
		ID:    "ctx-test",
		Title: "cancellation test",
		Rows: []Row{
			{Label: "HI", Machine: machine.NewBusedGP(2, 2, 1), Variant: assign.HeuristicIterative, PaperMatch: -1},
		},
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loops := loopgen.Suite(loopgen.Options{Count: 10})
	res, err := RunContext(ctx, smallConfig(), loops, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want the 1 partial row", len(res.Rows))
	}
	if got := res.Rows[0].Hist.Total(); got != 0 {
		t.Errorf("canceled row histogram has %d entries, want 0", got)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	loops := loopgen.Suite(loopgen.Options{Count: 50})
	opts := Options{
		Parallelism: 2,
		Observer:    cancelAfterFirstEvent(cancel),
	}
	_, err := RunContext(ctx, smallConfig(), loops, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCollectsStats(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Count: 10})
	res, err := RunContext(context.Background(), smallConfig(), loops, Options{CollectStats: true})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	s := res.Rows[0].Stats
	if s.IICandidates == 0 || s.AssignCommits == 0 {
		t.Errorf("stats not aggregated: %s", s.String())
	}
	// Without CollectStats the counters must stay zero (nil trace).
	res, err = RunContext(context.Background(), smallConfig(), loops, Options{})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if s := res.Rows[0].Stats; s.IICandidates != 0 {
		t.Errorf("stats collected without CollectStats: %s", s.String())
	}
}
