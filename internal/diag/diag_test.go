package diag

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{Error: "error", Warning: "warning", Info: "info", Severity(9): "severity(9)"}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(sev), got, want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "DDG006", Severity: Error, Message: "cycle", File: "a.loop", Line: 3, Subject: "nodes [1 2]"}
	want := "a.loop:3: error DDG006: cycle [nodes [1 2]]"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d2 := Diagnostic{Code: "MACH001", Severity: Warning, Message: "m", Line: 7}
	if got := d2.String(); got != "line 7: warning MACH001: m" {
		t.Errorf("String() = %q", got)
	}
	d3 := Diagnostic{Code: "X001", Severity: Info, Message: "m"}
	if got := d3.String(); got != "info X001: m" {
		t.Errorf("String() = %q", got)
	}
}

func TestReporterCollects(t *testing.T) {
	var r Reporter
	r.Errorf("E001", "node 1", "bad node %d", 1)
	r.Warnf("W001", "", "suspicious")
	r.Infof("I001", "", "fyi")
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if !r.HasErrors() {
		t.Error("HasErrors = false, want true")
	}
	if got := CountErrors(r.Diagnostics()); got != 1 {
		t.Errorf("CountErrors = %d, want 1", got)
	}
	if got := len(Filter(r.Diagnostics(), Warning)); got != 1 {
		t.Errorf("Filter(Warning) = %d findings, want 1", got)
	}
}

func TestAsErrorNilWithoutErrors(t *testing.T) {
	if err := AsError(nil); err != nil {
		t.Errorf("AsError(nil) = %v, want nil", err)
	}
	warnOnly := []Diagnostic{{Code: "W001", Severity: Warning, Message: "w"}}
	if err := AsError(warnOnly); err != nil {
		t.Errorf("AsError(warnings) = %v, want nil", err)
	}
}

func TestAsErrorCarriesAllDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Code: "E001", Severity: Error, Message: "first"},
		{Code: "W001", Severity: Warning, Message: "side note"},
		{Code: "E002", Severity: Error, Message: "second"},
	}
	err := AsError(diags)
	if err == nil {
		t.Fatal("AsError = nil, want error")
	}
	var list *List
	if !errors.As(err, &list) {
		t.Fatalf("error %T does not unwrap to *List", err)
	}
	if len(list.Diags) != 3 {
		t.Errorf("List carries %d diagnostics, want 3", len(list.Diags))
	}
	msg := err.Error()
	if !strings.Contains(msg, "E001: first") || !strings.Contains(msg, "and 1 more") {
		t.Errorf("Error() = %q, want first error plus count", msg)
	}
}

func TestSortOrdersByLocationThenSeverity(t *testing.T) {
	diags := []Diagnostic{
		{Code: "B", Severity: Warning, File: "b.loop", Line: 1},
		{Code: "A", Severity: Warning, File: "a.loop", Line: 9},
		{Code: "C", Severity: Error, File: "a.loop", Line: 9},
	}
	Sort(diags)
	if diags[0].File != "a.loop" || diags[0].Code != "C" {
		t.Errorf("Sort order wrong: %+v", diags)
	}
	if diags[2].File != "b.loop" {
		t.Errorf("Sort order wrong: %+v", diags)
	}
}

func TestExitCode(t *testing.T) {
	errOnly := []Diagnostic{{Code: "E", Severity: Error}}
	warnOnly := []Diagnostic{{Code: "W", Severity: Warning}}
	infoOnly := []Diagnostic{{Code: "I", Severity: Info}}
	cases := []struct {
		name   string
		diags  []Diagnostic
		werror bool
		want   int
	}{
		{"clean", nil, false, 0},
		{"clean werror", nil, true, 0},
		{"errors", errOnly, false, 1},
		{"warnings lenient", warnOnly, false, 0},
		{"warnings strict", warnOnly, true, 1},
		{"info strict", infoOnly, true, 0},
		{"mixed", append(append([]Diagnostic{}, warnOnly...), errOnly...), false, 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.diags, tc.werror); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMultiPassAggregationOrdering models two analysis passes reporting
// into separate reporters whose findings are concatenated and sorted:
// the result must interleave by location, and findings with identical
// sort keys must keep their per-pass report order (Sort is stable).
func TestMultiPassAggregationOrdering(t *testing.T) {
	var passA, passB Reporter
	passA.Errorf("VET010", "f", "a first at ten")
	passA.Errorf("VET010", "f", "a second at ten")
	passB.Errorf("VET001", "f", "b at one")
	aDiags := passA.Diagnostics()
	bDiags := passB.Diagnostics()
	aDiags[0].File, aDiags[0].Line = "x.go", 10
	aDiags[1].File, aDiags[1].Line = "x.go", 10
	bDiags[0].File, bDiags[0].Line = "x.go", 4

	all := append(append([]Diagnostic{}, aDiags...), bDiags...)
	Sort(all)
	if all[0].Code != "VET001" {
		t.Errorf("aggregated order wrong, got %v first", all[0])
	}
	if all[1].Message != "a first at ten" || all[2].Message != "a second at ten" {
		t.Errorf("Sort not stable for equal keys: %v, %v", all[1], all[2])
	}

	// Aggregation is deterministic in the other concatenation order
	// too, except for genuinely identical sort keys.
	rev := append(append([]Diagnostic{}, bDiags...), aDiags...)
	Sort(rev)
	for i := range all {
		if all[i] != rev[i] {
			t.Errorf("aggregation order depends on pass order at %d: %v vs %v", i, all[i], rev[i])
		}
	}
}

func TestTextRendering(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{
		{Code: "DDG006", Severity: Error, Message: "cycle", File: "x.ddg", Line: 2, Fix: "break it"},
	}
	if err := Text(&buf, diags); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x.ddg:2: error DDG006: cycle") || !strings.Contains(out, "fix: break it") {
		t.Errorf("Text output = %q", out)
	}
}

func TestJSONRendering(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{Code: "MACH003", Severity: Error, Message: "orphan kind", Subject: "kind load"}}
	if err := JSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0].Code != "MACH003" || back[0].Severity != Error {
		t.Errorf("round trip = %+v", back)
	}
	if !strings.Contains(buf.String(), `"severity": "error"`) {
		t.Errorf("severity not rendered as string: %s", buf.String())
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("JSON(nil) = %q, want []", got)
	}
}
