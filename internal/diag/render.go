package diag

import (
	"encoding/json"
	"fmt"
	"io"
)

// Text renders the findings one per line in file:line: severity CODE:
// message form, with suggested fixes indented beneath.
func Text(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
		if d.Fix != "" {
			if _, err := fmt.Fprintf(w, "\tfix: %s\n", d.Fix); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSON renders the findings as an indented JSON array (an empty array
// for no findings, never null), one stable object per diagnostic.
func JSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
