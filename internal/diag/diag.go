// Package diag defines the structured diagnostics the static-analysis
// passes (package lint, ddg.Graph.Lint, machine.Config.Lint,
// verify.Audit) report: a severity, a stable machine-readable code, a
// human message, optional location information, and an optional
// suggested fix. A Reporter collects diagnostics; Text and JSON render
// them; AsError bridges a diagnostic list back into the error-based
// APIs the rest of the repository uses.
//
// Codes are grouped by subsystem and are stable across releases:
//
//	DDGnnn    data-dependence-graph well-formedness
//	MACHnnn   machine-configuration validation
//	LOOPnnn   loop-language (frontend AST) lint
//	SCHEDnnn  schedule audit (package verify)
//	VETnnn    static determinism/allocation checks (package schedvet)
//	CLInnn    command-line usage (flag-combination conflicts)
//
// docs/DIAGNOSTICS.md catalogues every code.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies how serious a diagnostic is.
type Severity int

// Severity levels. Error marks input that must be rejected; Warning
// marks suspicious-but-legal input; Info is advisory.
const (
	Error Severity = iota
	Warning
	Info
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("diag: unknown severity %s", b)
	}
	return nil
}

// Diagnostic is one finding of an analysis pass.
type Diagnostic struct {
	// Code is the stable machine-readable identifier, e.g. "DDG006".
	Code string `json:"code"`
	// Severity classifies the finding.
	Severity Severity `json:"severity"`
	// Message describes the finding in one sentence.
	Message string `json:"message"`
	// File is the source file the finding refers to, when known.
	File string `json:"file,omitempty"`
	// Line is the 1-based source line, when known.
	Line int `json:"line,omitempty"`
	// Subject names the construct the finding is about: "node 3",
	// "edge 7", "cluster 1", "loop dotprod", "scalar s".
	Subject string `json:"subject,omitempty"`
	// Fix suggests how to resolve the finding, when one is known.
	Fix string `json:"fix,omitempty"`
}

// String renders the diagnostic in the conventional
// file:line: severity CODE: message form.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		if d.Line > 0 {
			fmt.Fprintf(&b, ":%d", d.Line)
		}
		b.WriteString(": ")
	} else if d.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", d.Line)
	}
	fmt.Fprintf(&b, "%s %s: %s", d.Severity, d.Code, d.Message)
	if d.Subject != "" {
		fmt.Fprintf(&b, " [%s]", d.Subject)
	}
	return b.String()
}

// Reporter accumulates diagnostics. The zero value is ready for use.
type Reporter struct {
	diags []Diagnostic
}

// Report appends one diagnostic.
func (r *Reporter) Report(d Diagnostic) { r.diags = append(r.diags, d) }

// Errorf reports an Error-severity diagnostic about subject.
func (r *Reporter) Errorf(code, subject, format string, args ...interface{}) {
	r.Report(Diagnostic{Code: code, Severity: Error, Subject: subject, Message: fmt.Sprintf(format, args...)})
}

// Warnf reports a Warning-severity diagnostic about subject.
func (r *Reporter) Warnf(code, subject, format string, args ...interface{}) {
	r.Report(Diagnostic{Code: code, Severity: Warning, Subject: subject, Message: fmt.Sprintf(format, args...)})
}

// Infof reports an Info-severity diagnostic about subject.
func (r *Reporter) Infof(code, subject, format string, args ...interface{}) {
	r.Report(Diagnostic{Code: code, Severity: Info, Subject: subject, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the collected findings in report order.
func (r *Reporter) Diagnostics() []Diagnostic { return r.diags }

// HasErrors reports whether any collected finding is Error severity.
func (r *Reporter) HasErrors() bool { return CountErrors(r.diags) > 0 }

// Len returns the number of collected findings.
func (r *Reporter) Len() int { return len(r.diags) }

// CountErrors counts the Error-severity findings in the list.
func CountErrors(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Filter returns the findings at exactly the given severity.
func Filter(diags []Diagnostic, sev Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// Sort orders findings by file, line, severity (errors first), then
// code, stably, for deterministic output.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Code < b.Code
	})
}

// ExitCode maps a finding list to the conventional linter exit
// status shared by clusterlint and schedvet: 1 when any
// Error-severity finding was reported (or any Warning when werror is
// set), 0 otherwise. Usage and I/O failures (exit 2) are the caller's
// to report; they are not diagnostics.
func ExitCode(diags []Diagnostic, werror bool) int {
	if CountErrors(diags) > 0 {
		return 1
	}
	if werror && len(Filter(diags, Warning)) > 0 {
		return 1
	}
	return 0
}

// List is an error holding every diagnostic of a failed analysis, so
// callers of error-based APIs can recover the full structured report
// with errors.As.
type List struct {
	Diags []Diagnostic
}

// Error summarizes the list: the first Error-severity message plus a
// count of the rest.
func (l *List) Error() string {
	errs := Filter(l.Diags, Error)
	if len(errs) == 0 {
		if len(l.Diags) == 0 {
			return "no diagnostics"
		}
		errs = l.Diags
	}
	msg := errs[0].Code + ": " + errs[0].Message
	if n := len(errs) - 1; n > 0 {
		msg += fmt.Sprintf(" (and %d more)", n)
	}
	return msg
}

// AsError converts a diagnostic list into an error: nil when the list
// holds no Error-severity findings, a *List carrying every finding
// otherwise.
func AsError(diags []Diagnostic) error {
	if CountErrors(diags) == 0 {
		return nil
	}
	return &List{Diags: diags}
}
