package mii

import (
	"testing"

	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func BenchmarkRecMII(b *testing.B) {
	loops := loopgen.Suite(loopgen.Options{Seed: 4, Count: 128})
	m := machine.NewBusedGP(2, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RecMII(loops[i%len(loops)], m.Latency)
	}
}

func BenchmarkResMII(b *testing.B) {
	loops := loopgen.Suite(loopgen.Options{Seed: 4, Count: 128})
	m := machine.NewBusedFS(4, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResMII(loops[i%len(loops)], m)
	}
}
