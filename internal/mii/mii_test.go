package mii

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func lat(k ddg.OpKind) int { return machine.DefaultLatencies()[k] }

func TestResMIIGeneralPurpose(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1) // 8 GP units
	g := ddg.NewGraph(9, 0)
	for i := 0; i < 9; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	if got := ResMII(g, m); got != 2 {
		t.Errorf("ResMII = %d, want ceil(9/8)=2", got)
	}
}

func TestResMIIPerClassBinding(t *testing.T) {
	m := machine.NewBusedFS(2, 2, 1) // 2 mem, 4 int, 2 fp
	g := ddg.NewGraph(8, 0)
	for i := 0; i < 5; i++ {
		g.AddNode(ddg.OpLoad, "") // 5 memory ops on 2 memory units
	}
	g.AddNode(ddg.OpALU, "")
	g.AddNode(ddg.OpFAdd, "")
	if got := ResMII(g, m); got != 3 {
		t.Errorf("ResMII = %d, want ceil(5/2)=3 (memory units bind)", got)
	}
}

func TestResMIIIgnoresCopies(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	g := ddg.NewGraph(5, 0)
	for i := 0; i < 4; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	g.AddNode(ddg.OpCopy, "")
	if got := ResMII(g, m); got != 1 {
		t.Errorf("ResMII = %d, want 1 (copies use no FU)", got)
	}
}

func TestRecMIIPaperExample(t *testing.T) {
	// Figure 6: B -> C -> D -> B with latencies 1 + 2 + 1 over distance 1.
	g := ddg.NewGraph(3, 3)
	b := g.AddNode(ddg.OpALU, "B")
	c := g.AddNode(ddg.OpLoad, "C")
	d := g.AddNode(ddg.OpALU, "D")
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, b, 1)
	if got := RecMII(g, lat); got != 4 {
		t.Errorf("RecMII = %d, want 4 (paper Section 3)", got)
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpFDiv, "")
	b := g.AddNode(ddg.OpFDiv, "")
	g.AddEdge(a, b, 0)
	if got := RecMII(g, lat); got != 1 {
		t.Errorf("RecMII = %d, want 1 for acyclic graphs", got)
	}
}

func TestRecMIIDistanceTwo(t *testing.T) {
	// Cycle latency 6 over distance 2: RecMII = 3.
	g := ddg.NewGraph(2, 2)
	a := g.AddNode(ddg.OpFMul, "") // 3
	b := g.AddNode(ddg.OpFMul, "") // 3
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 2)
	if got := RecMII(g, lat); got != 3 {
		t.Errorf("RecMII = %d, want ceil(6/2)=3", got)
	}
}

func TestRecMIISelfLoop(t *testing.T) {
	g := ddg.NewGraph(1, 1)
	a := g.AddNode(ddg.OpFDiv, "") // latency 9
	g.AddEdge(a, a, 1)
	if got := RecMII(g, lat); got != 9 {
		t.Errorf("RecMII = %d, want 9", got)
	}
}

func TestRecMIITakesWorstCycle(t *testing.T) {
	g := ddg.NewGraph(4, 4)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpFDiv, "")
	d := g.AddNode(ddg.OpFDiv, "")
	// Cycle 1: a<->b, latency 2/1.
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	// Cycle 2: c<->d, latency 18 over distance 3: 6.
	g.AddEdge(c, d, 0)
	g.AddEdge(d, c, 3)
	if got := RecMII(g, lat); got != 6 {
		t.Errorf("RecMII = %d, want 6", got)
	}
}

// bruteRecMII enumerates all simple cycles by DFS (fine for tiny
// graphs) and returns max ceil(lat/dist).
func bruteRecMII(g *ddg.Graph, lat ddg.LatencyFunc) int {
	best := 1
	n := g.NumNodes()
	var dfs func(start, v, latSum, distSum int, visited []bool)
	dfs = func(start, v, latSum, distSum int, visited []bool) {
		for _, e := range g.OutEdges(v) {
			nl := latSum + lat(g.Nodes[v].Kind)
			nd := distSum + e.Distance
			if e.To == start {
				if nd > 0 {
					if ii := (nl + nd - 1) / nd; ii > best {
						best = ii
					}
				}
				continue
			}
			if e.To > start && !visited[e.To] {
				visited[e.To] = true
				dfs(start, e.To, nl, nd, visited)
				visited[e.To] = false
			}
		}
	}
	for s := 0; s < n; s++ {
		visited := make([]bool, n)
		visited[s] = true
		dfs(s, s, 0, 0, visited)
	}
	return best
}

// TestRecMIIMatchesBruteForce cross-checks the binary-search RecMII
// against explicit cycle enumeration on random small graphs that have
// no zero-distance cycles.
func TestRecMIIMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := ddg.NewGraph(n, n*2)
		kinds := []ddg.OpKind{ddg.OpALU, ddg.OpLoad, ddg.OpFMul, ddg.OpFDiv}
		for i := 0; i < n; i++ {
			g.AddNode(kinds[rng.Intn(len(kinds))], "")
		}
		for e := 0; e < n+rng.Intn(n); e++ {
			from, to := rng.Intn(n), rng.Intn(n)
			dist := 0
			if to <= from {
				dist = 1 + rng.Intn(2) // keep zero-distance subgraph acyclic
			}
			g.AddEdge(from, to, dist)
		}
		got := RecMII(g, lat)
		want := bruteRecMII(g, lat)
		if got != want {
			t.Logf("seed %d: RecMII=%d brute=%d\n%s", seed, got, want, g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMIIIsMaxOfBounds(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0 // single cluster, width 4
	g := ddg.NewGraph(6, 3)
	for i := 0; i < 6; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 1) // RecMII 2
	// ResMII = ceil(6/4) = 2; equal here. Add more nodes to tip ResMII.
	if got := MII(g, m); got != 2 {
		t.Errorf("MII = %d, want 2", got)
	}
	for i := 0; i < 6; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	if got := MII(g, m); got != 3 {
		t.Errorf("MII = %d, want 3 (ResMII now binds)", got)
	}
}

func TestSCCRecMII(t *testing.T) {
	g := ddg.NewGraph(5, 6)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpLoad, "")
	c := g.AddNode(ddg.OpFDiv, "")
	d := g.AddNode(ddg.OpFDiv, "")
	e := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1) // SCC 1: lat 3
	g.AddEdge(c, d, 0)
	g.AddEdge(d, c, 1) // SCC 2: lat 18
	g.AddEdge(b, c, 0)
	g.AddEdge(d, e, 0)

	comps := g.NonTrivialSCCs()
	if len(comps) != 2 {
		t.Fatalf("want 2 SCCs, got %d", len(comps))
	}
	recs := map[int]bool{}
	for _, comp := range comps {
		recs[SCCRecMII(g, comp, lat)] = true
	}
	if !recs[3] || !recs[18] {
		t.Errorf("SCC RecMIIs = %v, want {3, 18}", recs)
	}
}

func TestResMIINonPipelined(t *testing.T) {
	m := machine.NewUnifiedGP(4)
	m.NonPipelined[ddg.OpFDiv] = true
	g := ddg.NewGraph(3, 0)
	g.AddNode(ddg.OpFDiv, "")
	g.AddNode(ddg.OpALU, "")
	g.AddNode(ddg.OpALU, "")
	// Demand: 9 (divide) + 2 = 11 slot-cycles on 4 units -> ceil = 3,
	// but the single non-pipelined divide alone forces II >= 9.
	if got := ResMII(g, m); got != 9 {
		t.Errorf("ResMII = %d, want 9 (non-pipelined divide)", got)
	}
	// Two divides on 4 units: demand 18+? -> per-unit one divide each;
	// the bound stays the occupancy (units are parallel).
	g.AddNode(ddg.OpFDiv, "")
	if got := ResMII(g, m); got != 9 {
		t.Errorf("ResMII = %d, want 9", got)
	}
	// Five divides on 4 units: ceil(45+2 / 4) = 12.
	for i := 0; i < 3; i++ {
		g.AddNode(ddg.OpFDiv, "")
	}
	if got := ResMII(g, m); got != 12 {
		t.Errorf("ResMII = %d, want 12", got)
	}
}
