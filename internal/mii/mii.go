// Package mii computes the minimum initiation interval bounds of a
// loop: ResMII from resource capacity and RecMII from the critical
// recurrence cycle, as defined in Section 3 of the paper.
package mii

import (
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// ResMII returns the resource-constrained lower bound: the tightest
// ratio of operation slot-cycle demand to function-unit count over all
// resource classes of the whole machine (an operation demands one
// slot-cycle on pipelined units, its full latency on non-pipelined
// ones, and a non-pipelined operation alone bounds II by its
// occupancy). Operations are charged to their specialized class when
// the machine has such units, otherwise to the general-purpose pool;
// copies use no function unit and are excluded.
func ResMII(g *ddg.Graph, m *machine.Config) int {
	counts := g.KindCounts()
	charged := make([]int, machine.NumFUClasses)
	unitTotals := make([]int, machine.NumFUClasses)
	for i := range m.Clusters {
		for _, fu := range m.Clusters[i].FUs {
			unitTotals[fu]++
		}
	}
	res := 1
	for k := 0; k < ddg.NumOpKinds; k++ {
		kind := ddg.OpKind(k)
		if kind == ddg.OpCopy || counts[k] == 0 {
			continue
		}
		cls := machine.RequiredClass(kind)
		if unitTotals[cls] == 0 {
			cls = machine.FUGeneral
		}
		occ := m.Occupancy(kind)
		charged[cls] += counts[k] * occ
		// A non-pipelined unit repeats its busy window every iteration:
		// one such operation alone forces II >= its occupancy.
		if occ > res {
			res = occ
		}
	}
	for cls := 0; cls < machine.NumFUClasses; cls++ {
		if charged[cls] == 0 {
			continue
		}
		if unitTotals[cls] == 0 {
			// Validate guarantees this cannot happen for executable
			// graphs; treat as unbounded pressure.
			return 1 << 20
		}
		if ii := ceilDiv(charged[cls], unitTotals[cls]); ii > res {
			res = ii
		}
	}
	return res
}

// RecMII returns the recurrence-constrained lower bound: the maximum
// over all dependence cycles of ceil(total latency / total distance).
// It is computed by binary search on II, testing each candidate with a
// Bellman-Ford positive-cycle check (a cycle is violated at II exactly
// when its edges, weighted latency - II*distance, sum positive).
// A graph without recurrences yields 1.
func RecMII(g *ddg.Graph, lat ddg.LatencyFunc) int {
	hi := 1
	for _, n := range g.Nodes {
		hi += lat(n.Kind)
	}
	lo := 1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, ok := g.EarliestStart(lat, mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MII returns max(ResMII, RecMII), the schedule lower bound used to
// seed the assignment/scheduling loop.
func MII(g *ddg.Graph, m *machine.Config) int {
	res := ResMII(g, m)
	rec := RecMII(g, m.Latency)
	if rec > res {
		return rec
	}
	return res
}

// SCCRecMII returns the RecMII contributed by one strongly connected
// component alone, used to rank SCCs by criticality for assignment
// ordering. The subgraph induced by the component keeps only edges with
// both endpoints inside it.
func SCCRecMII(g *ddg.Graph, comp *ddg.SCC, lat ddg.LatencyFunc) int {
	in := make(map[int]int, len(comp.Nodes))
	for i, n := range comp.Nodes {
		in[n] = i
	}
	sub := ddg.NewGraph(len(comp.Nodes), len(comp.Nodes)*2)
	for _, n := range comp.Nodes {
		sub.AddNode(g.Nodes[n].Kind, g.Nodes[n].Name)
	}
	for _, e := range g.Edges {
		fi, okF := in[e.From]
		ti, okT := in[e.To]
		if okF && okT {
			sub.AddEdge(fi, ti, e.Distance)
		}
	}
	return RecMII(sub, lat)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
