// Package mii computes the minimum initiation interval bounds of a
// loop: ResMII from resource capacity and RecMII from the critical
// recurrence cycle, as defined in Section 3 of the paper.
package mii

import (
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// ResMII returns the resource-constrained lower bound: the tightest
// ratio of operation slot-cycle demand to function-unit count over all
// resource classes of the whole machine (an operation demands one
// slot-cycle on pipelined units, its full latency on non-pipelined
// ones, and a non-pipelined operation alone bounds II by its
// occupancy). Operations are charged to their specialized class when
// the machine has such units, otherwise to the general-purpose pool;
// copies use no function unit and are excluded.
func ResMII(g *ddg.Graph, m *machine.Config) int {
	return resMII(g, m, unitTotalsOf(m))
}

// unitTotalsOf counts the machine's function units per class, the only
// machine-dependent input of ResMII.
func unitTotalsOf(m *machine.Config) []int {
	unitTotals := make([]int, machine.NumFUClasses)
	for i := range m.Clusters {
		for _, fu := range m.Clusters[i].FUs {
			unitTotals[fu]++
		}
	}
	return unitTotals
}

func resMII(g *ddg.Graph, m *machine.Config, unitTotals []int) int {
	return resMIIWith(g, m, unitTotals, make([]int, machine.NumFUClasses))
}

// resMIIWith is resMII with a caller-supplied per-class charge buffer
// (length machine.NumFUClasses), which it zeroes and overwrites.
//
//schedvet:alloc-free
func resMIIWith(g *ddg.Graph, m *machine.Config, unitTotals, charged []int) int {
	counts := g.KindCounts()
	for i := range charged {
		charged[i] = 0
	}
	res := 1
	for k := 0; k < ddg.NumOpKinds; k++ {
		kind := ddg.OpKind(k)
		if kind == ddg.OpCopy || counts[k] == 0 {
			continue
		}
		cls := machine.RequiredClass(kind)
		if unitTotals[cls] == 0 {
			cls = machine.FUGeneral
		}
		occ := m.Occupancy(kind)
		charged[cls] += counts[k] * occ
		// A non-pipelined unit repeats its busy window every iteration:
		// one such operation alone forces II >= its occupancy.
		if occ > res {
			res = occ
		}
	}
	for cls := 0; cls < machine.NumFUClasses; cls++ {
		if charged[cls] == 0 {
			continue
		}
		if unitTotals[cls] == 0 {
			// Validate guarantees this cannot happen for executable
			// graphs; treat as unbounded pressure.
			return 1 << 20
		}
		if ii := ceilDiv(charged[cls], unitTotals[cls]); ii > res {
			res = ii
		}
	}
	return res
}

// RecMII returns the recurrence-constrained lower bound: the maximum
// over all dependence cycles of ceil(total latency / total distance).
// Every dependence cycle lies wholly inside one strongly connected
// component, so the bound is the maximum over the non-trivial SCCs of
// a per-component binary search on II, each candidate tested with a
// Bellman-Ford positive-cycle check restricted to the component's
// edges (a cycle is violated at II exactly when its edges, weighted
// latency - II*distance, sum positive). A graph without recurrences
// yields 1.
func RecMII(g *ddg.Graph, lat ddg.LatencyFunc) int {
	rec := 1
	comps := g.NonTrivialSCCs()
	if len(comps) == 0 {
		return rec
	}
	var sc recScratch
	sc.est = make([]int, g.NumNodes())
	for _, comp := range comps {
		rec = sccRecMII(g, comp, lat, rec, &sc)
	}
	return rec
}

// SCCRecMIIs returns SCCRecMII for every component, sharing the
// Bellman-Ford scratch buffers across them.
func SCCRecMIIs(g *ddg.Graph, comps []*ddg.SCC, lat ddg.LatencyFunc) []int {
	var rs RecScratch
	return rs.SCCRecMIIs(g, comps, lat)
}

// RecScratch holds the reusable buffers of the recurrence-bound
// computations — the per-component RecMII vector, the Bellman-Ford
// estart and flattened-edge arrays, and ResMII's per-class charge
// counters — so a session computing bounds for many loops stops
// allocating per loop. The zero value is ready to use; results
// returned from its methods alias the scratch and stay valid until the
// next call. A RecScratch is single-threaded.
type RecScratch struct {
	out     []int
	sc      recScratch
	charged []int
}

// SCCRecMIIs is the package-level SCCRecMIIs into the scratch's
// buffers. The returned slice is overwritten by the next call.
func (rs *RecScratch) SCCRecMIIs(g *ddg.Graph, comps []*ddg.SCC, lat ddg.LatencyFunc) []int {
	rs.out = growInts(rs.out, len(comps))
	rs.sc.est = growInts(rs.sc.est, g.NumNodes())
	for i, comp := range comps {
		rs.out[i] = sccRecMII(g, comp, lat, 1, &rs.sc)
	}
	return rs.out
}

// growInts returns buf resized to n, reallocating only on growth.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// recScratch holds the working buffers of sccRecMII: the estart vector
// (indexed by parent-graph node ID) and the flattened component-local
// edge arrays.
type recScratch struct {
	est                []int
	from, to, w0, dist []int
}

// sccRecMII returns max(floor, the smallest II at which comp carries no
// positive cycle). Only the component's slots of sc.est are read or
// written; the edge buffers are overwritten.
func sccRecMII(g *ddg.Graph, comp *ddg.SCC, lat ddg.LatencyFunc, floor int, sc *recScratch) int {
	// Flatten the component-local edges once; edges leaving the
	// component cannot belong to a cycle and are skipped.
	est := sc.est
	from, to, w0, dist := sc.from[:0], sc.to[:0], sc.w0[:0], sc.dist[:0]
	hi := 1
	for _, n := range comp.Nodes {
		hi += lat(g.Nodes[n].Kind)
		for _, e := range g.OutEdges(n) {
			i := sort.SearchInts(comp.Nodes, e.To)
			if i < len(comp.Nodes) && comp.Nodes[i] == e.To {
				from = append(from, e.From)
				to = append(to, e.To)
				w0 = append(w0, lat(g.Nodes[e.From].Kind))
				dist = append(dist, e.Distance)
			}
		}
	}
	sc.from, sc.to, sc.w0, sc.dist = from, to, w0, dist
	feasible := func(ii int) bool {
		for _, n := range comp.Nodes {
			est[n] = 0
		}
		// At most len(comp.Nodes) rounds are needed when no positive
		// cycle exists; one extra round detects non-convergence.
		for round := 0; round <= len(comp.Nodes); round++ {
			changed := false
			for i, f := range from {
				if t := est[f] + w0[i] - ii*dist[i]; t > est[to[i]] {
					est[to[i]] = t
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		return false
	}
	lo := floor
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MII returns max(ResMII, RecMII), the schedule lower bound used to
// seed the assignment/scheduling loop.
func MII(g *ddg.Graph, m *machine.Config) int {
	return NewMachine(m).MII(g)
}

// Machine caches the per-machine inputs of the bound computations —
// today the per-class function-unit totals ResMII divides by — so a
// session scheduling many loops against one machine configuration
// derives them once instead of per loop. Immutable after construction
// and therefore safe for concurrent use.
type Machine struct {
	m          *machine.Config
	unitTotals []int
}

// NewMachine builds the cached resource view of m.
func NewMachine(m *machine.Config) *Machine {
	return &Machine{m: m, unitTotals: unitTotalsOf(m)}
}

// Config returns the machine configuration the cache was built from.
func (mc *Machine) Config() *machine.Config { return mc.m }

// ResMII is the package-level ResMII against the cached unit totals.
func (mc *Machine) ResMII(g *ddg.Graph) int { return resMII(g, mc.m, mc.unitTotals) }

// MII returns max(ResMII, RecMII) for g on the cached machine.
func (mc *Machine) MII(g *ddg.Graph) int {
	var rs RecScratch
	return mc.MIIWith(g, &rs)
}

// MIIWith is MII with caller-supplied scratch buffers, for a session
// computing the bound for many loops on one machine. The Machine stays
// immutable and concurrency-safe; the scratch carries all mutable
// state and is single-threaded.
func (mc *Machine) MIIWith(g *ddg.Graph, rs *RecScratch) int {
	rs.charged = growInts(rs.charged, int(machine.NumFUClasses))
	res := resMIIWith(g, mc.m, mc.unitTotals, rs.charged)
	rec := 1
	if comps := g.NonTrivialSCCs(); len(comps) > 0 {
		rs.sc.est = growInts(rs.sc.est, g.NumNodes())
		for _, comp := range comps {
			rec = sccRecMII(g, comp, mc.m.Latency, rec, &rs.sc)
		}
	}
	if rec > res {
		return rec
	}
	return res
}

// SCCRecMII returns the RecMII contributed by one strongly connected
// component alone, used to rank SCCs by criticality for assignment
// ordering. The subgraph induced by the component keeps only edges with
// both endpoints inside it.
func SCCRecMII(g *ddg.Graph, comp *ddg.SCC, lat ddg.LatencyFunc) int {
	return sccRecMII(g, comp, lat, 1, &recScratch{est: make([]int, g.NumNodes())})
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
