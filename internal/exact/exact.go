// Package exact computes provably optimal clustered initiation
// intervals for small loops by exhaustive search: every cluster
// assignment, every modulo-slot placement (pruned through the
// cycle-exact reservation table), with timing feasibility decided as a
// difference-constraint system. It exists to measure the heuristic
// pipeline's optimality gap — exponential in loop size, it is only
// meant for loops of roughly a dozen operations on small machines.
package exact

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mrt"
)

// MaxNodes bounds the input size; beyond it the search space is
// hopeless and Optimal returns an error rather than spinning.
const MaxNodes = 12

// Optimal returns the smallest II at which some cluster assignment and
// modulo schedule exists for g on broadcast machine m, searching II
// from 1 to maxII. It returns maxII+1 when no II in range works.
func Optimal(g *ddg.Graph, m *machine.Config, maxII int) (int, error) {
	if g.NumNodes() > MaxNodes {
		return 0, fmt.Errorf("exact: %d nodes exceed the %d-node search bound", g.NumNodes(), MaxNodes)
	}
	if m.Network != machine.Broadcast {
		return 0, fmt.Errorf("exact: only broadcast machines are supported")
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	n := g.NumNodes()
	k := m.NumClusters()
	for ii := 1; ii <= maxII; ii++ {
		clusterOf := make([]int, n)
		var enum func(v int) bool
		enum = func(v int) bool {
			if v == n {
				ann, full, targets := annotate(g, clusterOf)
				return schedulableAt(ann, m, full, targets, ii)
			}
			for c := 0; c < k; c++ {
				clusterOf[v] = c
				if enum(v + 1) {
					return true
				}
			}
			return false
		}
		if enum(0) {
			return ii, nil
		}
	}
	return maxII + 1, nil
}

// annotate builds the annotated graph for one cluster vector on a
// broadcast machine: one copy per producer with remote consumers (a
// value is broadcast at most once), consumer edges rerouted — the same
// model the assignment pass materializes.
func annotate(g *ddg.Graph, clusterOf []int) (*ddg.Graph, []int, [][]int) {
	n := g.NumNodes()
	out := g.Clone()
	fullCluster := append([]int(nil), clusterOf...)
	targetsOf := make([][]int, n)
	copyOf := make([]int, n)
	for i := range copyOf {
		copyOf[i] = -1
	}
	for p := 0; p < n; p++ {
		seen := map[int]bool{}
		for _, s := range g.Successors(p) {
			if clusterOf[s] != clusterOf[p] && !seen[clusterOf[s]] {
				seen[clusterOf[s]] = true
				targetsOf[p] = append(targetsOf[p], clusterOf[s])
			}
		}
		if len(targetsOf[p]) > 0 {
			kn := out.AddNode(ddg.OpCopy, "")
			copyOf[p] = kn
			fullCluster = append(fullCluster, clusterOf[p])
			out.AddEdge(p, kn, 0)
		}
	}
	copyTargets := make([][]int, out.NumNodes())
	for p, kn := range copyOf {
		if kn >= 0 {
			copyTargets[kn] = targetsOf[p]
		}
	}
	rerouted := ddg.NewGraph(out.NumNodes(), out.NumEdges())
	for _, node := range out.Nodes {
		rerouted.AddNode(node.Kind, node.Name)
	}
	for _, e := range out.Edges {
		if e.From < n && fullCluster[e.From] != fullCluster[e.To] && out.Nodes[e.To].Kind != ddg.OpCopy {
			rerouted.AddEdge(copyOf[e.From], e.To, e.Distance)
			continue
		}
		rerouted.AddEdge(e.From, e.To, e.Distance)
	}
	return rerouted, fullCluster, copyTargets
}

// schedulableAt exhaustively searches modulo-slot placements with
// resource pruning; a complete slot vector is feasible when the
// residual difference-constraint system has a solution.
func schedulableAt(g *ddg.Graph, m *machine.Config, clusterOf []int, copyTargets [][]int, ii int) bool {
	n := g.NumNodes()
	table := mrt.NewCycle(m, ii)
	slots := make([]int, n)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		if v == n {
			return slotsFeasible(g, m, ii, slots)
		}
		var op mrt.Op
		if g.Nodes[v].Kind == ddg.OpCopy {
			op = mrt.CopyAt(v, clusterOf[v], copyTargets[v])
		} else {
			op = mrt.OpAt(v, clusterOf[v], g.Nodes[v].Kind)
		}
		for s := 0; s < ii; s++ {
			if !table.CommitOp(op, s) {
				continue
			}
			slots[v] = s
			if dfs(v + 1) {
				return true
			}
			table.ReleaseOp(op)
		}
		return false
	}
	return dfs(0)
}

// slotsFeasible substitutes x_v = slot_v + ii*y_v: every dependence
// becomes a pure difference constraint on y, solvable iff Bellman-Ford
// converges (no positive cycle).
func slotsFeasible(g *ddg.Graph, m *machine.Config, ii int, slots []int) bool {
	n := g.NumNodes()
	y := make([]int, n)
	for round := 0; round <= n; round++ {
		changed := false
		for _, e := range g.Edges {
			c := m.Latency(g.Nodes[e.From].Kind) - ii*e.Distance - slots[e.To] + slots[e.From]
			need := y[e.From] + ceilDiv(c, ii)
			if need > y[e.To] {
				y[e.To] = need
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

func ceilDiv(a, b int) int {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}
