package exact

import (
	"math/rand"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/pipeline"
)

func tiny2x1() *machine.Config {
	return &machine.Config{
		Name:    "tiny-2x1",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 1, 1),
			machine.GPCluster(1, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
}

func TestOptimalMatchesMIIWhenUnconstrained(t *testing.T) {
	// Two independent ops on two clusters: II = 1.
	g := ddg.NewGraph(2, 0)
	g.AddNode(ddg.OpALU, "")
	g.AddNode(ddg.OpALU, "")
	got, err := Optimal(g, tiny2x1(), 8)
	if err != nil || got != 1 {
		t.Fatalf("Optimal = %d, %v; want 1", got, err)
	}
}

func TestOptimalSeesCopyCost(t *testing.T) {
	// Three chained ops on two 1-wide clusters: capacity forces a split
	// at II=2 and one copy; the copy fits, so the optimum is 2.
	g := ddg.NewGraph(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode(ddg.OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
	}
	got, err := Optimal(g, tiny2x1(), 8)
	if err != nil || got != 2 {
		t.Fatalf("Optimal = %d, %v; want 2", got, err)
	}
}

func TestOptimalRecurrenceBound(t *testing.T) {
	// A 4-latency recurrence: nothing can beat RecMII = 4.
	g := ddg.NewGraph(2, 2)
	a := g.AddNode(ddg.OpFMul, "")
	b := g.AddNode(ddg.OpFAdd, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	got, err := Optimal(g, tiny2x1(), 8)
	if err != nil || got != 4 {
		t.Fatalf("Optimal = %d, %v; want 4", got, err)
	}
}

func TestOptimalRejectsBigLoops(t *testing.T) {
	g := ddg.NewGraph(MaxNodes+1, 0)
	for i := 0; i <= MaxNodes; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	if _, err := Optimal(g, tiny2x1(), 4); err == nil {
		t.Error("oversized loop accepted")
	}
}

func TestOptimalRejectsPointToPoint(t *testing.T) {
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpALU, "")
	if _, err := Optimal(g, machine.NewGrid4(1), 4); err == nil {
		t.Error("point-to-point machine accepted")
	}
}

// TestOptimalNeverBelowMII: the exact optimum respects the analytic
// lower bound on random tiny loops.
func TestOptimalNeverBelowMII(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := tiny2x1()
	for trial := 0; trial < 40; trial++ {
		g := tinyLoop(rng)
		bound := mii.MII(g, m)
		got, err := Optimal(g, m, bound+6)
		if err != nil {
			t.Fatal(err)
		}
		if got < bound && got <= bound+6 {
			t.Fatalf("exact II %d below MII %d:\n%s", got, bound, g)
		}
	}
}

// TestHeuristicGap quantifies the pipeline's optimality gap on random
// tiny loops: never below the optimum (soundness), within one cycle
// almost always.
func TestHeuristicGap(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := tiny2x1()
	within, total := 0, 0
	for trial := 0; trial < 60; trial++ {
		g := tinyLoop(rng)
		opt, err := Optimal(g, m, 14)
		if err != nil || opt > 14 {
			continue
		}
		out, err := pipeline.Run(g, m, pipeline.Options{
			Assign: assign.Options{Variant: assign.HeuristicIterative},
		})
		if err != nil {
			t.Errorf("trial %d: pipeline failed though optimum %d exists", trial, opt)
			continue
		}
		total++
		if out.II < opt {
			t.Errorf("trial %d: heuristic II %d below exact optimum %d", trial, out.II, opt)
		}
		if out.II <= opt+1 {
			within++
		}
	}
	if total < 40 {
		t.Fatalf("only %d usable trials", total)
	}
	if pct := 100 * float64(within) / float64(total); pct < 90 {
		t.Errorf("only %.0f%% within one cycle of optimal", pct)
	}
}

func tinyLoop(rng *rand.Rand) *ddg.Graph {
	n := 2 + rng.Intn(4)
	g := ddg.NewGraph(n, n*2)
	kinds := []ddg.OpKind{ddg.OpALU, ddg.OpLoad, ddg.OpFAdd, ddg.OpStore}
	for i := 0; i < n; i++ {
		g.AddNode(kinds[rng.Intn(len(kinds))], "")
	}
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.8 {
			g.AddEdge(rng.Intn(i), i, 0)
		}
	}
	if rng.Float64() < 0.4 && n >= 2 {
		a := rng.Intn(n - 1)
		b := a + 1 + rng.Intn(n-a-1)
		g.AddEdge(a, b, 0)
		g.AddEdge(b, a, 1)
	}
	return g
}
