// Package fleettest is the multi-process end-to-end harness for the
// fleet: it builds the real clusterd and clusterlb binaries, boots a
// balancer over three workers plus a separate single-node oracle,
// drives a replay through the balancer while SIGKILLing one worker
// mid-load, and requires every reply to complete and match the oracle
// byte for byte (modulo the embedded wall-clock timing stats). A
// second replay after the kill must still be mostly cache hits: the
// consistent-hash ring only remaps the dead worker's arc, so the
// survivors' caches stay warm.
//
// scripts/check.sh runs this as its kill-a-worker smoke.
package fleettest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

const dotDDG = `loop dotproduct
node 0 load a[i]
node 1 load b[i]
node 2 fmul
node 3 fadd s
edge 0 2 0
edge 1 2 0
edge 2 3 0
edge 3 3 1
end
`

// nsRE strips the wall-clock timing stats, the only bytes of a reply
// that legitimately differ between workers.
var nsRE = regexp.MustCompile(`"(mii|assign|sched)_ns":\d+`)

func normalize(b []byte) []byte {
	return nsRE.ReplaceAll(b, []byte(`"${1}_ns":0`))
}

// buildBinaries compiles clusterd and clusterlb into dir.
func buildBinaries(t *testing.T, dir string) (clusterd, clusterlb string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	clusterd = filepath.Join(dir, "clusterd")
	clusterlb = filepath.Join(dir, "clusterlb")
	for bin, pkg := range map[string]string{clusterd: "./cmd/clusterd", clusterlb: "./cmd/clusterlb"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return clusterd, clusterlb
}

// proc is one spawned daemon: its base URL (parsed from the
// "listening on http://..." line) and the process handle.
type proc struct {
	url string
	cmd *exec.Cmd
}

// startProc launches bin and waits for its listening line.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	lines := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	found := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if _, after, ok := strings.Cut(lines.Text(), "listening on "); ok {
				found <- strings.TrimSpace(after)
				break
			}
		}
		close(found)
		// Keep draining so the child never blocks on a full pipe.
		for lines.Scan() {
		}
	}()
	select {
	case url, ok := <-found:
		if !ok || url == "" {
			t.Fatalf("%s exited without a listening line", bin)
		}
		p.url = url
	case <-deadline:
		t.Fatalf("%s did not print a listening line in time", bin)
	}
	return p
}

// kill SIGKILLs the process — no drain, the hard-failure case.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill %s: %v", p.url, err)
	}
	p.cmd.Wait()
}

// schedule posts one request and returns status, body, and X-Cache.
func schedule(t *testing.T, client *http.Client, base, name string) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(map[string]string{"name": name, "ddg": dotDDG, "machine": "gp:2:2:1"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("schedule %s via %s: %v", name, base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Cache")
}

func TestFleetKillWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short mode")
	}
	clusterd, clusterlb := buildBinaries(t, t.TempDir())

	w1 := startProc(t, clusterd, "-addr", "127.0.0.1:0")
	w2 := startProc(t, clusterd, "-addr", "127.0.0.1:0")
	w3 := startProc(t, clusterd, "-addr", "127.0.0.1:0")
	oracle := startProc(t, clusterd, "-addr", "127.0.0.1:0")
	lb := startProc(t, clusterlb,
		"-addr", "127.0.0.1:0",
		"-workers", w1.url+","+w2.url+","+w3.url,
		"-heartbeat", "250ms",
		"-hedge-min", "100ms",
	)

	client := &http.Client{Timeout: 30 * time.Second}

	// Replay: 30 distinct requests through the balancer, killing one
	// worker a third of the way in. Every request must complete and
	// match the single-node oracle.
	const total = 30
	const killAt = 10
	names := make([]string, total)
	for i := range names {
		names[i] = fmt.Sprintf("e2e-%d", i)
	}
	for i, name := range names {
		if i == killAt {
			w1.kill(t)
		}
		status, fleetBody, _ := schedule(t, client, lb.url, name)
		if status != http.StatusOK {
			t.Fatalf("request %d (%s) after kill=%v: status %d: %s",
				i, name, i >= killAt, status, fleetBody)
		}
		oStatus, oracleBody, _ := schedule(t, client, oracle.url, name)
		if oStatus != http.StatusOK {
			t.Fatalf("oracle request %d: status %d", i, oStatus)
		}
		if !bytes.Equal(normalize(fleetBody), normalize(oracleBody)) {
			t.Errorf("request %d (%s): fleet reply differs from single-node oracle\nfleet:  %s\noracle: %s",
				i, name, fleetBody, oracleBody)
		}
	}

	// Re-replay the full suite: the ring kept the survivors' arcs
	// stable across the kill, so well over half the requests must be
	// cache hits (2/3 of the keys never moved, and the post-kill
	// requests were computed on survivors).
	hits := 0
	for i, name := range names {
		status, body, xcache := schedule(t, client, lb.url, name)
		if status != http.StatusOK {
			t.Fatalf("re-replay %d: status %d: %s", i, status, body)
		}
		if xcache == "hit" || xcache == "coalesced" {
			hits++
		}
	}
	if hits*2 <= total {
		t.Errorf("post-kill re-replay hit rate %d/%d, want > 50%%", hits, total)
	}
	t.Logf("post-kill re-replay: %d/%d cache hits", hits, total)

	// The balancer noticed the death: statsz shows a rebalance and a
	// non-alive worker.
	resp, err := client.Get(lb.url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Fleet struct {
			Failovers      int64 `json:"failovers"`
			RingRebalances int64 `json:"ring_rebalances"`
		} `json:"fleet"`
		Workers []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Fleet.RingRebalances < 2 {
		t.Errorf("ring_rebalances = %d, want >= 2 (initial build + post-kill)", stats.Fleet.RingRebalances)
	}
	deadSeen := false
	for _, w := range stats.Workers {
		if w.ID == w1.url && w.State != "alive" {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Errorf("killed worker %s still reported alive: %+v", w1.url, stats.Workers)
	}
}
