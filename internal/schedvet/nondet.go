package schedvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clustersched/internal/diag"
)

// nondet enforces the determinism contract on result paths. Two rules:
//
// VET002 — calls that read ambient nondeterministic state (wall clock,
// process environment, the globally-seeded math/rand source) are
// forbidden lexically inside determinism-critical packages AND inside
// any module function reachable from a critical package's exported
// API. Explicitly-seeded generators (rand.New(rand.NewSource(seed)))
// and *rand.Rand methods are fine: they are deterministic by
// construction. The traversal never enters packages on the NoFollow
// list (obs legitimately timestamps trace events) and never descends
// into the standard library (loaded declarations-only).
//
// VET003 — goroutine-ordering-sensitive constructs in critical
// packages: a select with two or more communication clauses resolves
// races by runtime choice, and a go statement introduces scheduling
// nondeterminism. Single-case selects with a default (the non-blocking
// pool idiom) are fine.
type funcFacts struct {
	fd        funcDecl
	forbidden []forbiddenSite
	callees   []*types.Func
}

type forbiddenSite struct {
	pos  token.Pos
	what string // e.g. "time.Now"
}

func (c *checker) nondet() {
	facts := make(map[*types.Func]*funcFacts)
	var order []*types.Func // deterministic iteration
	for _, pkg := range c.pkgs {
		for _, fd := range funcsOf(pkg) {
			if fd.obj == nil || fd.decl.Body == nil {
				continue
			}
			facts[fd.obj] = gatherFacts(fd)
			order = append(order, fd.obj)
		}
	}

	reported := make(map[token.Pos]bool)

	// Lexical rule: forbidden calls directly inside critical packages.
	for _, fn := range order {
		ff := facts[fn]
		if !c.cfg.critical(ff.fd.pkg.Path) {
			continue
		}
		for _, site := range ff.forbidden {
			if reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			c.report("nondet", site.pos, diag.Diagnostic{
				Code:     "VET002",
				Severity: diag.Error,
				Message:  "call to " + site.what + " in a determinism-critical package",
				Subject:  funcDisplayName(ff.fd),
				Fix:      "thread the value in as a parameter or use an explicitly seeded source",
			})
		}
	}

	// Reachability rule: BFS from the exported API of the critical
	// packages through module-local calls.
	rootOf := make(map[*types.Func]string)
	var queue []*types.Func
	for _, fn := range order {
		ff := facts[fn]
		if c.cfg.critical(ff.fd.pkg.Path) && ff.fd.decl.Name.IsExported() {
			rootOf[fn] = funcDisplayName(ff.fd)
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ff := facts[fn]
		if ff == nil || c.cfg.noFollow(ff.fd.pkg.Path) {
			continue
		}
		for _, site := range ff.forbidden {
			if reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			c.report("nondet", site.pos, diag.Diagnostic{
				Code:     "VET002",
				Severity: diag.Error,
				Message:  "call to " + site.what + " on a result path reachable from " + rootOf[fn],
				Subject:  funcDisplayName(ff.fd),
				Fix:      "thread the value in as a parameter or use an explicitly seeded source",
			})
		}
		for _, callee := range ff.callees {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			if facts[callee] == nil {
				continue
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
		}
	}

	// Ordering-sensitivity rule, lexical in critical packages.
	for _, pkg := range c.pkgs {
		if !c.cfg.critical(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.SelectStmt:
					comm := 0
					for _, cl := range st.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
							comm++
						}
					}
					if comm >= 2 {
						c.report("nondet", st.Select, diag.Diagnostic{
							Code:     "VET003",
							Severity: diag.Error,
							Message:  "select with multiple communication clauses resolves races by runtime choice",
							Fix:      "restructure so the outcome is order-independent, or annotate //schedvet:allow nondet with a reason",
						})
					}
				case *ast.GoStmt:
					c.report("nondet", st.Go, diag.Diagnostic{
						Code:     "VET003",
						Severity: diag.Error,
						Message:  "go statement in a determinism-critical package introduces scheduling nondeterminism",
						Fix:      "move concurrency to the orchestration layer, or annotate //schedvet:allow nondet with a reason",
					})
				}
				return true
			})
		}
	}
}

// gatherFacts records a function's forbidden-call sites and its
// module-local callees, in source order.
func gatherFacts(fd funcDecl) *funcFacts {
	ff := &funcFacts{fd: fd}
	info := fd.pkg.Info
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		if what := forbiddenCall(callee); what != "" {
			ff.forbidden = append(ff.forbidden, forbiddenSite{pos: call.Pos(), what: what})
			return true
		}
		ff.callees = append(ff.callees, callee)
		return true
	})
	return ff
}

// forbiddenCall classifies a callee as an ambient-nondeterminism read,
// returning its display name, or "" when the call is fine.
func forbiddenCall(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods (time.Time, *rand.Rand, ...) are fine
	}
	name := f.Name()
	switch pkg.Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + name
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // explicit construction is deterministic
		}
		return "the global " + pkg.Name() + "." + name
	}
	return ""
}

// funcDisplayName renders "pkg.Func" or "pkg.(*Recv).Method" for
// diagnostics.
func funcDisplayName(fd funcDecl) string {
	seg := pathSegment(fd.pkg.Path)
	if fd.decl.Recv != nil && len(fd.decl.Recv.List) > 0 {
		recv := types.ExprString(fd.decl.Recv.List[0].Type)
		if strings.HasPrefix(recv, "*") {
			recv = "(" + recv + ")"
		}
		return seg + "." + recv + "." + fd.decl.Name.Name
	}
	return seg + "." + fd.decl.Name.Name
}
