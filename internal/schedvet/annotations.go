package schedvet

import (
	"go/ast"
	"strings"
)

// The annotation grammar (documented in docs/ANALYSIS.md):
//
//	//schedvet:alloc-free
//	    On a function's doc comment: the function body must be free of
//	    heap allocation (the allocfree pass enforces it).
//
//	//schedvet:alloc-free callees
//	    As above, and additionally every function the body directly
//	    calls must not contain make or new (one level; VET015). For
//	    reset paths whose zero-allocation contract spans helpers.
//
//	//schedvet:allow <pass> [reason]
//	    On or immediately above a flagged line: suppress findings of
//	    the named pass (mapiter, nondet, allocfree, lockdiscipline) at
//	    that line. A reason is strongly encouraged.

const (
	allocFreeMarker        = "//schedvet:alloc-free"
	allocFreeCalleesMarker = "//schedvet:alloc-free callees"
	allowMarker            = "//schedvet:allow"
)

// isAllocFree reports whether the function declaration carries the
// //schedvet:alloc-free annotation (either variant) in its doc
// comment.
func isAllocFree(decl *ast.FuncDecl) bool {
	return hasMarker(decl, allocFreeMarker) || hasMarker(decl, allocFreeCalleesMarker)
}

// isAllocFreeCallees reports whether the declaration carries the
// callees variant, extending the alloc-free contract one call level
// down.
func isAllocFreeCallees(decl *ast.FuncDecl) bool {
	return hasMarker(decl, allocFreeCalleesMarker)
}

func hasMarker(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// allowSet records, per file and line, which passes are suppressed by
// //schedvet:allow comments. A comment suppresses its own line and the
// line immediately following it, so both trailing and preceding-line
// placement work.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans every comment of the packages' files for allow
// annotations.
func collectAllows(m *Module, pkgs []*Package) allowSet {
	set := make(allowSet)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pass, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					file, line := m.position(c.Pos())
					set.add(file, line, pass)
					set.add(file, line+1, pass)
				}
			}
		}
	}
	return set
}

func parseAllow(text string) (pass string, ok bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), allowMarker)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

func (s allowSet) add(file string, line int, pass string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	passes := byLine[line]
	if passes == nil {
		passes = make(map[string]bool)
		byLine[line] = passes
	}
	passes[pass] = true
}

// allowed reports whether findings of the named pass are suppressed at
// the given position.
func (s allowSet) allowed(pass string, file string, line int) bool {
	return s[file][line][pass]
}
