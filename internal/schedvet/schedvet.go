// Package schedvet is the project's static-analysis complement to the
// runtime differential oracles: it loads and type-checks the whole
// module with a stdlib-only source importer and enforces the
// determinism and zero-allocation contracts at compile time.
//
// Four passes run over the loaded packages:
//
//	mapiter         unordered range over a map in a determinism-critical
//	                package (VET001) unless the sorted-keys idiom is used
//	nondet          wall-clock / global-rand / environment reads lexically
//	                in, or reachable from the exported API of, a critical
//	                package (VET002), and goroutine-ordering-sensitive
//	                constructs — multi-way selects, go statements — in
//	                critical packages (VET003)
//	allocfree       functions annotated //schedvet:alloc-free must not
//	                allocate (VET010-VET014); the callees variant also
//	                rejects make/new in direct callees (VET015)
//	lockdiscipline  mutexes in internal/cache and internal/server must
//	                not be held across channel operations (VET020) or
//	                handler I/O (VET021)
//
// Findings flow through internal/diag, so schedvet and clusterlint
// present one diagnostic surface. docs/ANALYSIS.md describes the passes
// and the annotation grammar; docs/DIAGNOSTICS.md catalogues the codes.
package schedvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"clustersched/internal/diag"
)

// Config selects which packages each pass applies to. Packages are
// matched by the final segment of their import path, so fixture
// packages under testdata/src/<name> receive the same treatment as the
// real package of that name.
type Config struct {
	// Critical lists the final path segments of determinism-critical
	// packages: mapiter and the lexical nondet checks apply inside
	// them, and their exported functions are the nondet roots.
	Critical []string
	// Locks lists the final path segments of packages under the lock
	// discipline (no channel ops or I/O while a mutex is held).
	Locks []string
	// NoFollow lists final path segments the nondet reachability
	// traversal does not enter; the observability layer legitimately
	// reads wall-clock time for trace timestamps.
	NoFollow []string
}

// DefaultConfig returns the project policy: the scheduling pipeline and
// its key-construction packages are determinism-critical, the daemon
// cache and server are lock-disciplined, and obs is the timestamp
// allowlist. The fleet control plane splits along the same line:
// membership and cachering are deterministic state machines (time is
// threaded in as parameters) and so are fully critical, while balance
// legitimately owns timers, goroutines, and selects for hedging and
// heartbeats and is held only to the lock discipline. The streaming
// compile executor is under both: its output must be byte-identical
// across worker counts (critical — goroutines live in internal/pool,
// timing goes through obs), and it must stay mutex-free (locks).
func DefaultConfig() Config {
	return Config{
		Critical: []string{"clustersched", "assign", "sched", "mrt", "mii", "order", "ddg", "pipeline", "cache", "membership", "cachering", "compile"},
		Locks:    []string{"cache", "server", "balance", "membership", "cachering", "compile"},
		NoFollow: []string{"obs"},
	}
}

// pathSegment returns the final segment of an import path.
func pathSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func (c Config) critical(path string) bool { return contains(c.Critical, pathSegment(path)) }
func (c Config) locked(path string) bool   { return contains(c.Locks, pathSegment(path)) }
func (c Config) noFollow(path string) bool { return contains(c.NoFollow, pathSegment(path)) }

// checker carries the shared state of one analysis run.
type checker struct {
	mod    *Module
	cfg    Config
	pkgs   []*Package
	allows allowSet
	rep    diag.Reporter
}

// Check runs every pass over the given packages of the module and
// returns the findings sorted into the canonical diagnostic order.
func Check(m *Module, pkgs []*Package, cfg Config) []diag.Diagnostic {
	c := &checker{mod: m, cfg: cfg, pkgs: pkgs, allows: collectAllows(m, pkgs)}
	c.mapiter()
	c.nondet()
	c.allocfree()
	c.lockdiscipline()
	diags := c.rep.Diagnostics()
	diag.Sort(diags)
	return diags
}

// report files one finding unless an //schedvet:allow comment for the
// pass covers its line.
func (c *checker) report(pass string, pos token.Pos, d diag.Diagnostic) {
	file, line := c.mod.position(pos)
	if c.allows.allowed(pass, file, line) {
		return
	}
	d.File, d.Line = file, line
	c.rep.Report(d)
}

// calleeOf resolves the static callee of a call expression, when it is
// a declared function or method (not a func-valued variable or a type
// conversion).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcsOf yields every function and method declaration of the package
// together with its types object, in source order.
func funcsOf(pkg *Package) []funcDecl {
	var out []funcDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
			out = append(out, funcDecl{pkg: pkg, file: f, decl: fn, obj: obj})
		}
	}
	return out
}

type funcDecl struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
	obj  *types.Func
}
