package schedvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustersched/internal/diag"
)

// lockdiscipline enforces the shard/LRU mutex rules of internal/cache
// and internal/server: a sync.Mutex or sync.RWMutex must never be held
// across a channel operation (VET020) — sends, receives, selects, and
// ranges over channels can block indefinitely while every other
// goroutine contends on the lock — or across handler I/O (VET021).
//
// The analysis is a per-function, statement-ordered dataflow over the
// set of held locks, keyed by the receiver expression (s.mu). Branches
// that terminate (return, break, continue, panic, or a select whose
// every case terminates) restore the pre-branch state; branches that
// merge intersect their held sets, so only locks provably held on
// every path are tracked — the false-positive-avoiding direction.
// defer mu.Unlock() keeps the lock held to the end of the function,
// which is exactly the window the rules constrain.
func (c *checker) lockdiscipline() {
	for _, pkg := range c.pkgs {
		if !c.cfg.locked(pkg.Path) {
			continue
		}
		for _, fd := range funcsOf(pkg) {
			if fd.decl.Body == nil {
				continue
			}
			la := &lockAnalysis{c: c, fd: fd, info: fd.pkg.Info}
			la.block(fd.decl.Body.List, map[string]bool{})
		}
	}
}

type lockAnalysis struct {
	c    *checker
	fd   funcDecl
	info *types.Info
}

// lockCall classifies a call as Lock (+1), Unlock (-1), or neither (0)
// on a sync mutex, returning the receiver expression as the lock key.
func (la *lockAnalysis) lockCall(call *ast.CallExpr) (key string, op int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	callee := calleeOf(la.info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", 0
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), 1
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), -1
	}
	return "", 0
}

func (la *lockAnalysis) flag(pos token.Pos, code, msg string, held map[string]bool) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	la.c.report("lockdiscipline", pos, diag.Diagnostic{
		Code:     code,
		Severity: diag.Error,
		Message:  msg + " while " + strings.Join(keys, ", ") + " is held",
		Subject:  funcDisplayName(la.fd),
		Fix:      "release the lock before blocking, or snapshot under the lock and operate on the copy",
	})
}

// ioCall reports whether the callee performs handler I/O.
func ioCall(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "io", "bufio", "net", "net/http", "encoding/json":
		return true
	case "fmt":
		return strings.HasPrefix(callee.Name(), "Fprint")
	}
	return false
}

// scan inspects the expressions of one non-structural statement for
// violations under the current held set.
func (la *lockAnalysis) scan(n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				la.flag(e.Pos(), "VET020", "channel receive", held)
			}
		case *ast.CallExpr:
			if callee := calleeOf(la.info, e); ioCall(callee) {
				la.flag(e.Pos(), "VET021", "I/O call to "+callee.Pkg().Name()+"."+callee.Name(), held)
			}
		case *ast.FuncLit:
			return false // runs later; lock state unknown there
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// block runs the dataflow over a statement list, returning the held
// set at its end.
func (la *lockAnalysis) block(stmts []ast.Stmt, held map[string]bool) map[string]bool {
	for _, st := range stmts {
		held = la.stmt(st, held)
	}
	return held
}

func (la *lockAnalysis) stmt(st ast.Stmt, held map[string]bool) map[string]bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := la.lockCall(call); op != 0 {
				if op > 0 {
					held = copyHeld(held)
					held[key] = true
				} else {
					held = copyHeld(held)
					delete(held, key)
				}
				return held
			}
		}
		la.scan(s.X, held)
	case *ast.DeferStmt:
		if _, op := la.lockCall(s.Call); op != 0 {
			return held // deferred unlock: held to function end by design
		}
		// Other deferred work runs at return; skip.
	case *ast.SendStmt:
		if len(held) > 0 {
			la.flag(s.Pos(), "VET020", "channel send", held)
		}
		la.scan(s.Chan, held)
		la.scan(s.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			la.flag(s.Pos(), "VET020", "select", held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				la.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = la.stmt(s.Init, held)
		}
		la.scan(s.Cond, held)
		bodyOut := la.block(s.Body.List, copyHeld(held))
		bodyTerm := blockTerminates(s.Body.List)
		if s.Else == nil {
			if bodyTerm {
				return held
			}
			return intersect(bodyOut, held)
		}
		elseOut := la.stmt(s.Else, copyHeld(held))
		elseTerm := stmtTerminates(s.Else)
		switch {
		case bodyTerm && elseTerm:
			return held // successors unreachable; keep entry state
		case bodyTerm:
			return elseOut
		case elseTerm:
			return bodyOut
		default:
			return intersect(bodyOut, elseOut)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = la.stmt(s.Init, held)
		}
		la.scan(s.Cond, held)
		la.block(s.Body.List, copyHeld(held))
		la.scan(s.Post, held)
	case *ast.RangeStmt:
		if t := la.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(held) > 0 {
				la.flag(s.Pos(), "VET020", "range over channel", held)
			}
		}
		la.scan(s.X, held)
		la.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = la.stmt(s.Init, held)
		}
		la.scan(s.Tag, held)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				la.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = la.stmt(s.Init, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				la.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		return la.block(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		return la.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held set.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			la.scan(r, held)
		}
	default:
		la.scan(st, held)
	}
	return held
}

// stmtTerminates reports whether control cannot flow past the
// statement (a conservative subset of the spec's terminating
// statements).
func stmtTerminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return blockTerminates(s.List)
	case *ast.IfStmt:
		return s.Else != nil && blockTerminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || !blockTerminates(cc.Body) {
				return false
			}
		}
		return len(s.Body.List) > 0
	}
	return false
}

func blockTerminates(stmts []ast.Stmt) bool {
	return len(stmts) > 0 && stmtTerminates(stmts[len(stmts)-1])
}
