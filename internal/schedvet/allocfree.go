package schedvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"clustersched/internal/diag"
)

// allocfree is the static complement to the testing.AllocsPerRun gates:
// a function annotated //schedvet:alloc-free must not contain any
// construct that can allocate on the happy path.
//
//	VET010  make, new, &composite, or a map/slice literal
//	VET011  append whose result is not assigned back to its first
//	        argument (growth into a fresh backing array); the
//	        x = append(x, ...) idiom is allowed because the dynamic
//	        gates bound its amortized growth
//	VET012  func literal (closures capture variables on the heap)
//	VET013  concrete-to-interface conversion (boxing)
//	VET014  non-constant string concatenation
//	VET015  a direct callee of an //schedvet:alloc-free callees
//	        function contains make or new (one-level reachability)
//
// Escape hatches: expressions inside a panic(...) argument are exempt
// (the failure path may allocate), and the body check is intentionally
// not transitive — calling another function is fine; annotate the
// callee too if it is also on the hot path. Reset paths whose contract
// genuinely spans helpers opt into the one-level callee check with the
// //schedvet:alloc-free callees variant.
func (c *checker) allocfree() {
	var decls map[*types.Func]funcDecl
	for _, pkg := range c.pkgs {
		for _, fd := range funcsOf(pkg) {
			if fd.decl.Body == nil || !isAllocFree(fd.decl) {
				continue
			}
			c.checkAllocFree(fd)
			if isAllocFreeCallees(fd.decl) {
				if decls == nil {
					decls = declIndex(c.pkgs)
				}
				c.checkCallees(fd, decls)
			}
		}
	}
}

// declIndex maps every declared function and method of the loaded
// packages to its declaration, for resolving callees across packages.
func declIndex(pkgs []*Package) map[*types.Func]funcDecl {
	idx := make(map[*types.Func]funcDecl)
	for _, pkg := range pkgs {
		for _, fd := range funcsOf(pkg) {
			if fd.obj != nil {
				idx[fd.obj] = fd
			}
		}
	}
	return idx
}

// checkCallees enforces the callees variant: every function the body
// directly calls must itself be free of make/new, unless it carries
// its own alloc-free annotation (in which case the full body check
// already covers it). One level only — a callee's callees are out of
// scope, mirroring how far a reset path's contract actually reaches.
func (c *checker) checkCallees(fd funcDecl, decls map[*types.Func]funcDecl) {
	info := fd.pkg.Info
	subject := funcDisplayName(fd)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(info, call, "panic") {
			return false // the failure path may allocate
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		cd, ok := decls[callee]
		if !ok || cd.decl.Body == nil || isAllocFree(cd.decl) {
			return true
		}
		if builtin, found := bodyMakesOrNews(cd); found {
			c.report("allocfree", call.Pos(), diag.Diagnostic{
				Code:     "VET015",
				Severity: diag.Error,
				Message:  "callee " + funcDisplayName(cd) + " contains " + builtin + ", reachable from an alloc-free (callees) function",
				Subject:  subject,
				Fix:      "annotate the callee //schedvet:alloc-free and hoist its allocation, or narrow this function to //schedvet:alloc-free",
			})
		}
		return true
	})
}

// bodyMakesOrNews reports the first make or new call in the function
// body, with the same panic-argument exemption as the body check.
func bodyMakesOrNews(fd funcDecl) (builtin string, found bool) {
	info := fd.pkg.Info
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(info, call, "panic") {
			return false
		}
		if isBuiltin(info, call, "make") || isBuiltin(info, call, "new") {
			builtin, found = ast.Unparen(call.Fun).(*ast.Ident).Name, true
			return false
		}
		return true
	})
	return builtin, found
}

func (c *checker) checkAllocFree(fd funcDecl) {
	info := fd.pkg.Info
	subject := funcDisplayName(fd)

	flag := func(pos token.Pos, code, msg, fix string) {
		c.report("allocfree", pos, diag.Diagnostic{
			Code:     code,
			Severity: diag.Error,
			Message:  msg,
			Subject:  subject,
			Fix:      fix,
		})
	}

	// The self-append idiom x = append(x, ...) is sanctioned.
	sanctioned := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			sanctioned[call] = true
		}
		return true
	})

	var results *types.Tuple
	if fd.obj != nil {
		results = fd.obj.Type().(*types.Signature).Results()
	}

	// boxes reports a concrete-to-interface conversion of src into dst.
	boxes := func(dst types.Type, src ast.Expr) bool {
		srcT := info.TypeOf(src)
		if dst == nil || srcT == nil || !types.IsInterface(dst) || types.IsInterface(srcT) {
			return false
		}
		if b, ok := srcT.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return true
	}
	convFix := "keep the value concrete on the hot path, or move the interface boundary off it"

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, e, "panic"):
				return false // the failure path may allocate
			case isBuiltin(info, e, "make") || isBuiltin(info, e, "new"):
				flag(e.Pos(), "VET010", "call to "+ast.Unparen(e.Fun).(*ast.Ident).Name+" in an alloc-free function", "hoist the allocation into a reusable scratch structure")
			case isBuiltin(info, e, "append"):
				if !sanctioned[e] {
					flag(e.Pos(), "VET011", "append result is not assigned back to its first argument", "use the x = append(x, ...) idiom over a reused buffer")
				}
			default:
				if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
					// Explicit conversion T(x).
					if len(e.Args) == 1 && boxes(tv.Type, e.Args[0]) {
						flag(e.Pos(), "VET013", "conversion to interface type "+types.TypeString(tv.Type, nil)+" boxes its operand", convFix)
					}
				} else if sig, ok := info.TypeOf(e.Fun).(*types.Signature); ok && sig != nil {
					params := sig.Params()
					for i, arg := range e.Args {
						var pt types.Type
						switch {
						case sig.Variadic() && i >= params.Len()-1:
							if e.Ellipsis.IsValid() {
								continue // slice passed through, no boxing
							}
							pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
						case i < params.Len():
							pt = params.At(i).Type()
						}
						if boxes(pt, arg) {
							flag(arg.Pos(), "VET013", "passing a concrete value as interface parameter boxes it", convFix)
						}
					}
				}
			}
		case *ast.FuncLit:
			flag(e.Pos(), "VET012", "func literal in an alloc-free function captures variables on the heap", "hoist the closure to a named function or method")
			return false
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					flag(e.Pos(), "VET010", "address of composite literal escapes to the heap", "hoist the allocation into a reusable scratch structure")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					flag(e.Pos(), "VET010", "map or slice literal allocates", "hoist the allocation into a reusable scratch structure")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(e.Pos(), "VET014", "non-constant string concatenation allocates", "build strings off the hot path")
					}
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.ASSIGN && len(e.Lhs) == len(e.Rhs) {
				for i, lhs := range e.Lhs {
					if boxes(info.TypeOf(lhs), e.Rhs[i]) {
						flag(e.Rhs[i].Pos(), "VET013", "assigning a concrete value to an interface boxes it", convFix)
					}
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(e.Results) == results.Len() {
				for i, res := range e.Results {
					if boxes(results.At(i).Type(), res) {
						flag(res.Pos(), "VET013", "returning a concrete value as interface boxes it", convFix)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.decl.Body, walk)
}
