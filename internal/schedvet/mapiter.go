package schedvet

import (
	"go/ast"
	"go/types"

	"clustersched/internal/diag"
)

// mapiter flags `for ... range m` over map-typed operands inside
// determinism-critical packages (VET001). Go randomizes map iteration
// order, so any such range whose body does more than collect keys or
// values for sorting can leak nondeterminism into schedules, cache
// keys, or diagnostics.
//
// The sanctioned sorted-keys idiom is recognized and not flagged: a
// range body whose every statement appends to slices (collect now,
// sort outside the loop), e.g.
//
//	keys := make([]int, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Ints(keys)
func (c *checker) mapiter() {
	for _, pkg := range c.pkgs {
		if !c.cfg.critical(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectOnlyBody(rng.Body) {
					return true
				}
				c.report("mapiter", rng.For, diag.Diagnostic{
					Code:     "VET001",
					Severity: diag.Error,
					Message:  "unordered range over a map in a determinism-critical package",
					Subject:  "range over " + types.ExprString(rng.X),
					Fix:      "collect the keys into a slice, sort it, and range over the slice",
				})
				return true
			})
		}
	}
}

// isCollectOnlyBody reports whether every statement of a range body is
// a plain append-assignment (the collect phase of the sorted-keys
// idiom). Sorting inside the body would still observe map order, so
// only appends qualify.
func isCollectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
	}
	return true
}
