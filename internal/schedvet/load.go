package schedvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string      // import path, e.g. "clustersched/internal/assign"
	Dir   string      // absolute directory
	Files []*ast.File // non-test sources in file-name order
	Types *types.Package
	Info  *types.Info
	Errs  []error // type errors (module packages only)
}

// Module loads and type-checks packages of a single Go module using
// only the standard library: build-tag-aware file selection via
// go/build, parsing via go/parser, and a source importer that resolves
// module-local import paths against the repository and everything else
// against GOROOT/src. Non-module packages are checked declarations-only
// (IgnoreFuncBodies), which both keeps loading fast and guarantees the
// nondet call graph never descends into the standard library.
type Module struct {
	Root string // absolute module root (directory containing go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet

	ctxt    build.Context
	pkgs    map[string]*Package       // module packages, by import path
	imports map[string]*types.Package // decl-only packages, by import path
	loading map[string]bool           // cycle detection
}

// NewModule prepares a loader rooted at the directory containing
// go.mod. The root may be given as any directory inside the module;
// the loader searches upward for go.mod.
func NewModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("schedvet: no go.mod found in or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("schedvet: no module directive in %s/go.mod", root)
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go file selection, no preprocessing
	return &Module{
		Root:    root,
		Path:    modPath,
		Fset:    token.NewFileSet(),
		ctxt:    ctxt,
		pkgs:    make(map[string]*Package),
		imports: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// localDir maps a module-local import path to its directory, reporting
// whether the path belongs to this module.
func (m *Module) localDir(path string) (string, bool) {
	if path == m.Path {
		return m.Root, true
	}
	if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		return filepath.Join(m.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer.
func (m *Module) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (m *Module) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := m.localDir(path); ok {
		pkg, err := m.loadLocal(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.loadDecls(path)
}

// loadLocal parses and fully type-checks one module package, caching
// the result. Type errors are collected on the package, not returned:
// the go build gate owns compile failures; schedvet surfaces them but
// keeps whatever information the checker recovered.
func (m *Module) loadLocal(path, dir string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("schedvet: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	files, err := m.parseDir(dir, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer:    m,
		FakeImportC: true,
		Error: func(err error) {
			if len(pkg.Errs) < 20 {
				pkg.Errs = append(pkg.Errs, err)
			}
		},
	}
	pkg.Types, _ = conf.Check(path, m.Fset, files, pkg.Info)
	pkg.Files = files
	m.pkgs[path] = pkg
	return pkg, nil
}

// loadDecls type-checks a non-module package (standard library or its
// vendored dependencies) declarations-only.
func (m *Module) loadDecls(path string) (*types.Package, error) {
	if pkg, ok := m.imports[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("schedvet: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := ""
	for _, cand := range []string{
		filepath.Join(m.ctxt.GOROOT, "src", filepath.FromSlash(path)),
		filepath.Join(m.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(cand); err == nil && fi.IsDir() {
			dir = cand
			break
		}
	}
	if dir == "" {
		return nil, fmt.Errorf("schedvet: cannot find package %q in GOROOT", path)
	}
	files, err := m.parseDir(dir, 0)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         m,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // tolerate; declarations suffice
	}
	pkg, _ := conf.Check(path, m.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("schedvet: cannot type-check package %q", path)
	}
	m.imports[path] = pkg
	return pkg, nil
}

// parseDir selects the buildable non-test files of dir under the
// loader's build context and parses them.
func (m *Module) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := m.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the module package in the given directory (absolute or
// relative to the module root).
func (m *Module) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(m.Root, dir)
	}
	dir = filepath.Clean(dir)
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("schedvet: %s is outside the module", dir)
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return m.loadLocal(path, dir)
}

// LoadAll loads every buildable package of the module, skipping
// testdata and hidden directories. Packages are returned in import-path
// order.
func (m *Module) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := m.LoadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // only test files or excluded files
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// position maps a token.Pos to a module-root-relative file name and
// line for diagnostics.
func (m *Module) position(pos token.Pos) (string, int) {
	p := m.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file, p.Line
}
