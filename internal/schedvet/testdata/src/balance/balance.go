// Package balance is a schedvet fixture: its import path ends in a
// segment the default config holds to the lock discipline (but not
// the nondet contract — the real balancer legitimately owns timers
// and goroutines). One function seeds a channel send under the
// placement mutex; the others are the sanctioned shapes.
package balance

import "sync"

// Pool is a miniature of the real balancer's placement state: a mutex
// guarding worker scores and a dispatch channel.
type Pool struct {
	mu       sync.Mutex
	scores   map[string]int
	dispatch chan string
}

// Place holds the placement lock across the dispatch send: the VET020
// seed (a full dispatch queue would stall every placement).
func (p *Pool) Place(id string) {
	p.mu.Lock()
	p.scores[id]++
	p.dispatch <- id
	p.mu.Unlock()
}

// PlaceOutside picks under the lock and dispatches after releasing
// it: clean, the real balancer's idiom.
func (p *Pool) PlaceOutside(id string) {
	p.mu.Lock()
	p.scores[id]++
	p.mu.Unlock()
	p.dispatch <- id
}

// Rescore mutates only guarded state under the lock: clean.
func (p *Pool) Rescore(id string, score int) {
	p.mu.Lock()
	p.scores[id] = score
	p.mu.Unlock()
}
