// Package allocbad is a schedvet fixture: each annotated function
// seeds exactly one allocfree violation, and the final two prove the
// self-append and panic-path escapes stay clean.
package allocbad

import "fmt"

//schedvet:alloc-free
func Grow(n int) []int {
	buf := make([]int, n) // VET010
	return buf
}

//schedvet:alloc-free
func Collect(dst, src []int) []int {
	out := append(dst[:0], src...) // VET011: result does not flow back to dst[:0]
	return out
}

//schedvet:alloc-free
func Deferred(x int) func() int {
	return func() int { return x } // VET012
}

//schedvet:alloc-free
func Box(n int) any {
	return n // VET013
}

//schedvet:alloc-free
func Label(a, b string) string {
	return a + b // VET014
}

//schedvet:alloc-free
func SelfAppend(xs []int, v int) []int {
	xs = append(xs, v) // clean: the sanctioned reuse idiom
	return xs
}

//schedvet:alloc-free
func Checked(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("allocbad: negative %d", n)) // clean: failure path
	}
	return n * n
}

// Unannotated may allocate freely; the pass is opt-in.
func Unannotated(n int) []int {
	return make([]int, n)
}

// checkedHelper's only make sits inside a panic argument, which the
// one-level callee check exempts just like the body check does.
func checkedHelper(n int) int {
	if n < 0 {
		panic(string(make([]byte, 8)))
	}
	return n + 1
}

//schedvet:alloc-free callees
func ResetAll(xs []int, n int) []int {
	buf := Unannotated(n)             // VET015: un-annotated callee contains make
	xs = append(xs, buf[0])           // clean: self-append
	xs = SelfAppend(xs, n)            // clean: callee carries its own annotation
	xs[0] = Checked(checkedHelper(n)) // clean: panic-only make in the helper
	return xs
}
