// Package cachering is a schedvet fixture: its import path ends in a
// segment the default config lists as determinism-critical, proving
// the consistent-hash ring is held to the mapiter contract. One
// function seeds the unordered-map-range violation the real ring
// avoids by working over sorted slices; the rest are the sanctioned
// shapes.
package cachering

import "sort"

// Fingerprint folds map entries in iteration order: the VET001 seed
// (the fold is order-dependent, so map order leaks into the ring
// identity; note a collect-only append body would be sanctioned).
func Fingerprint(nodes map[string]int) int {
	h := 0
	for _, weight := range nodes {
		h = h*31 + weight
	}
	return h
}

// SortedNodes collects then sorts: clean, the real ring's idiom.
func SortedNodes(nodes map[string]int) []string {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
