// Package bitset is a schedvet fixture mirroring the shapes of the
// packed reservation tables: word-parallel probes, owner attribution,
// and journal event recording. The seeded-dirty functions prove the
// allocfree pass sees through these shapes; the clean ones pin the
// sanctioned idioms the real tables rely on.
package bitset

import "math/bits"

type event struct{ node, cycle int32 }

type table struct {
	busy   []uint64
	owner  []int32
	events []event
	slab   []int32
}

// Probe is clean: a pure word loop over packed occupancy.
//
//schedvet:alloc-free
func (t *table) Probe(mask uint64, s, n int) bool {
	avail := mask
	for d := 0; d < n && avail != 0; d++ {
		avail &^= t.busy[s+d]
	}
	return avail != 0
}

// Commit is clean: bit twiddling, an owner-slab write, and a struct
// VALUE appended back to its own slice.
//
//schedvet:alloc-free
func (t *table) Commit(mask uint64, s int, node int32) int {
	u := bits.TrailingZeros64(mask &^ t.busy[s])
	t.busy[s] |= 1 << uint(u)
	t.owner[s] = node
	t.events = append(t.events, event{node: node, cycle: int32(s)})
	return u
}

// Snapshot is clean: the sanctioned two-statement reset-then-self-
// append idiom over a reused slab.
//
//schedvet:alloc-free
func (t *table) Snapshot(span []int32) {
	t.slab = t.slab[:0]
	for _, v := range span {
		t.slab = append(t.slab, v)
	}
}

//schedvet:alloc-free
func (t *table) Resize(ii int) {
	t.busy = make([]uint64, ii) // VET010: growth belongs outside the hot path
}

//schedvet:alloc-free
func (t *table) SnapshotCompact(span []int32) {
	t.slab = append(t.slab[:0], span...) // VET011: reslice-in-append is not the sanctioned idiom
}

//schedvet:alloc-free
func (t *table) OwnerOf(s int) any {
	return t.owner[s] // VET013: boxes the int32
}
