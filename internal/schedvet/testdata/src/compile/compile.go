// Package compile is a schedvet fixture: its import path ends in a
// segment the default config lists as determinism-critical, proving
// the streaming compile executor is held to the nondet contract. One
// function seeds the wall-clock violation the real package avoids by
// timing through obs.Now; the rest are the sanctioned shapes — atomic
// stage counters and single-communication channel operations.
package compile

import (
	"sync/atomic"
	"time"
)

// Stage is a miniature of the real per-stage accumulator.
type Stage struct {
	NS    atomic.Int64
	Loops atomic.Int64
}

// Record stamps the stage with the wall clock read lexically inside a
// critical package: the VET002 seed (the real executor goes through
// the obs clock, which the config does not follow).
func Record(s *Stage) {
	s.NS.Store(time.Now().UnixNano())
	s.Loops.Add(1)
}

// Account threads the elapsed duration in as a parameter: clean, the
// real idiom for callers that already hold a measurement.
func Account(s *Stage, elapsed time.Duration) {
	s.NS.Add(elapsed.Nanoseconds())
	s.Loops.Add(1)
}

// Acquire takes a pooled session index off the free list with a
// single-communication receive: clean (no multi-way select, so
// goroutine wakeup order cannot reorder results).
func Acquire(free chan int) int {
	return <-free
}

// Release returns a session index with a single-communication send:
// clean for the same reason.
func Release(free chan int, idx int) {
	free <- idx
}
