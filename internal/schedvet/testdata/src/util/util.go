// Package util is a schedvet fixture: a non-critical helper package
// whose nondeterminism is only a finding when a critical package
// reaches it (the cross-package leg of the nondet reachability seed).
package util

import "time"

// Wallclock reads the wall clock. Harmless here; a VET002 once
// assign.Schedule calls it.
func Wallclock() int64 {
	return time.Now().UnixNano()
}

// Double is deterministic; calling it from a critical package is fine.
func Double(n int) int { return 2 * n }
