// Package clean is a schedvet fixture proving the passes are scoped:
// it is neither determinism-critical nor lock-disciplined, so the map
// range, the wall-clock read, and the goroutine below are all fine,
// and its one annotated function is genuinely allocation-free.
package clean

import "time"

// Tally may range unordered: clean is not a critical package.
func Tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Uptime may read the clock: nothing critical reaches it.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Spawn may start goroutines.
func Spawn(f func()) {
	go f()
}

//schedvet:alloc-free
func Dot(a, b []int) int {
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
