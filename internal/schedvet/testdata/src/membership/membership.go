// Package membership is a schedvet fixture: its import path ends in a
// segment the default config lists as determinism-critical, proving
// the fleet liveness table is held to the nondet contract. One
// function seeds the wall-clock violation the real package avoids by
// threading time in as a parameter; the rest are the sanctioned
// shapes.
package membership

import "time"

// Node is a miniature of the real table entry.
type Node struct {
	ID       string
	LastSeen time.Time
}

// Touch reads the wall clock inside a critical package: the VET002
// seed (the real table takes now as a parameter instead).
func Touch(n *Node) {
	n.LastSeen = time.Now()
}

// Observe threads time in as a parameter: clean, the real idiom.
func Observe(n *Node, now time.Time) {
	n.LastSeen = now
}

// Expired is pure given its inputs: clean.
func Expired(n Node, now time.Time, after time.Duration) bool {
	return now.Sub(n.LastSeen) > after
}
