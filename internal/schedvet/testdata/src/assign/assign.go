// Package assign is a schedvet fixture: its import path ends in a
// determinism-critical segment, and each function seeds exactly one
// violation (or exercises one sanctioned idiom) of the mapiter and
// nondet passes.
package assign

import (
	"math/rand"
	"sort"
	"time"

	"clustersched/internal/schedvet/testdata/src/util"
)

// Sum ranges over a map unordered: the mapiter seed (VET001).
func Sum(weights map[int]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}

// SortedKeys uses the sanctioned collect-then-sort idiom: clean.
func SortedKeys(weights map[int]int) []int {
	keys := make([]int, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Stamp calls time.Now lexically inside a critical package: the direct
// nondet seed (VET002).
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Schedule reaches time.Now through the non-critical util package: the
// reachability nondet seed (VET002 reported at util's call site).
func Schedule(n int) int64 {
	return helperDelay(n)
}

func helperDelay(n int) int64 {
	return util.Wallclock() + int64(util.Double(n))
}

// Jitter draws from the globally seeded math/rand source (VET002).
func Jitter() int {
	return rand.Intn(8)
}

// Deterministic constructs an explicitly seeded generator: clean.
func Deterministic(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Race resolves two channels by runtime choice: the VET003 seed.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Cancelable carries the same shape as Race but is suppressed by an
// allow annotation; the test asserts it produces no finding.
func Cancelable(done, work chan int) int {
	//schedvet:allow nondet cancellation race is benign; both outcomes agree
	select {
	case v := <-work:
		return v
	case <-done:
		return 0
	}
}
