// Package cache is a schedvet fixture: a lock-disciplined (and
// determinism-critical) package seeding one violation per
// lockdiscipline rule, plus clean shapes the dataflow must not flag.
package cache

import (
	"io"
	"sort"
	"sync"
)

// Store is a miniature of the real shard: one mutex guarding a map and
// an update channel.
type Store struct {
	mu      sync.Mutex
	items   map[string]int
	order   []string
	updates chan string
}

// Put holds the shard lock across a channel send: the VET020 seed.
func (s *Store) Put(key string, val int) {
	s.mu.Lock()
	s.items[key] = val
	s.updates <- key
	s.mu.Unlock()
}

// Dump holds the lock (via defer) across handler I/O: the VET021 seed.
func (s *Store) Dump(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.order {
		io.WriteString(w, k)
	}
}

// Notify releases the lock before the send: clean.
func (s *Store) Notify(key string, val int) {
	s.mu.Lock()
	s.items[key] = val
	s.mu.Unlock()
	s.updates <- key
}

// Keys snapshots under the lock with the sorted idiom: clean for both
// lockdiscipline and mapiter.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Get returns early on a hit; the terminating branch must not leak
// "held" into the send below (clean).
func (s *Store) Get(key string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.items[key]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	s.updates <- key
	return 0, false
}
