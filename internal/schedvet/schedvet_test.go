package schedvet

import (
	"sort"
	"strings"
	"testing"

	"clustersched/internal/diag"
)

var fixtureDirs = []string{
	"internal/schedvet/testdata/src/allocbad",
	"internal/schedvet/testdata/src/assign",
	"internal/schedvet/testdata/src/balance",
	"internal/schedvet/testdata/src/bitset",
	"internal/schedvet/testdata/src/cache",
	"internal/schedvet/testdata/src/cachering",
	"internal/schedvet/testdata/src/clean",
	"internal/schedvet/testdata/src/compile",
	"internal/schedvet/testdata/src/membership",
	"internal/schedvet/testdata/src/util",
}

func fixtureDiags(t *testing.T) []diag.Diagnostic {
	t.Helper()
	m, err := NewModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range fixtureDirs {
		pkg, err := m.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if len(pkg.Errs) > 0 {
			t.Fatalf("type errors in %s: %v", dir, pkg.Errs)
		}
		pkgs = append(pkgs, pkg)
	}
	return Check(m, pkgs, DefaultConfig())
}

// TestFixtureFindings proves every pass live: the seeded fixture
// packages produce exactly the expected findings — one per seeded
// violation, none for the sanctioned idioms, the allow annotation, or
// the out-of-scope clean package.
func TestFixtureFindings(t *testing.T) {
	diags := fixtureDiags(t)
	var got []string
	for _, d := range diags {
		file := d.File[strings.LastIndex(d.File, "/")+1:]
		got = append(got, d.Code+" "+file)
	}
	want := []string{
		"VET010 allocbad.go",   // make in Grow
		"VET011 allocbad.go",   // non-self append in Collect
		"VET012 allocbad.go",   // closure in Deferred
		"VET013 allocbad.go",   // boxing in Box
		"VET014 allocbad.go",   // concat in Label
		"VET015 allocbad.go",   // allocating callee of ResetAll
		"VET010 bitset.go",     // make in Resize
		"VET011 bitset.go",     // reslice-in-append in SnapshotCompact
		"VET013 bitset.go",     // boxing return in OwnerOf
		"VET001 assign.go",     // unordered map range in Sum
		"VET002 assign.go",     // time.Now in Stamp
		"VET002 assign.go",     // global rand in Jitter
		"VET003 assign.go",     // two-way select in Race
		"VET020 cache.go",      // send under lock in Put
		"VET021 cache.go",      // io under defer-held lock in Dump
		"VET002 util.go",       // time.Now reachable from assign.Schedule
		"VET020 balance.go",    // dispatch send under placement lock in Place
		"VET001 cachering.go",  // unordered map range in Points
		"VET002 membership.go", // time.Now in Touch
		"VET002 compile.go",    // time.Now in Record
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings mismatch\ngot:\n  %s\nwant:\n  %s\nfull:\n%s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "), renderAll(diags))
	}
}

func renderAll(diags []diag.Diagnostic) string {
	var b strings.Builder
	diag.Text(&b, diags)
	return b.String()
}

// TestReachabilityAttribution pins the cross-package leg of nondet:
// the finding in util names the critical root that reaches it.
func TestReachabilityAttribution(t *testing.T) {
	for _, d := range fixtureDiags(t) {
		if strings.HasSuffix(d.File, "util.go") {
			if !strings.Contains(d.Message, "reachable from assign.Schedule") {
				t.Errorf("util finding lacks root attribution: %q", d.Message)
			}
			return
		}
	}
	t.Fatal("no finding in util.go")
}

// TestFindingsSorted asserts Check returns findings in the canonical
// diag order, so CLI output is deterministic without further work.
func TestFindingsSorted(t *testing.T) {
	diags := fixtureDiags(t)
	resorted := append([]diag.Diagnostic(nil), diags...)
	diag.Sort(resorted)
	for i := range diags {
		if diags[i] != resorted[i] {
			t.Fatalf("findings not sorted at index %d: %v", i, diags[i])
		}
	}
}

// TestAllowSuppression: the select in Cancelable is identical in shape
// to the flagged one in Race, and only the annotation separates them.
func TestAllowSuppression(t *testing.T) {
	m, err := NewModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.LoadDir("internal/schedvet/testdata/src/assign")
	if err != nil {
		t.Fatal(err)
	}
	selects := 0
	for _, d := range Check(m, []*Package{pkg}, DefaultConfig()) {
		if d.Code == "VET003" {
			selects++
		}
	}
	if selects != 1 {
		t.Errorf("got %d VET003 findings, want exactly 1 (Race flagged, Cancelable allowed)", selects)
	}
}

// TestRealTreeClean is the enforcement test behind scripts/check.sh:
// the repository's own packages must produce zero findings, so any
// alloc-free regression or new unordered map range fails the suite.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := NewModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := m.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			t.Errorf("type error in %s: %v", pkg.Path, e)
		}
	}
	if diags := Check(m, pkgs, DefaultConfig()); len(diags) > 0 {
		t.Errorf("schedvet findings in the real tree:\n%s", renderAll(diags))
	}
}

// TestLoadAll sanity-checks the module loader: the core packages are
// present, testdata is skipped, and positions map back into the repo.
func TestLoadAll(t *testing.T) {
	m, err := NewModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := m.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("LoadAll included testdata package %s", p.Path)
		}
	}
	for _, want := range []string{
		"clustersched",
		"clustersched/internal/assign",
		"clustersched/internal/sched",
		"clustersched/internal/mrt",
		"clustersched/internal/pipeline",
		"clustersched/internal/cache",
		"clustersched/internal/schedvet",
	} {
		if byPath[want] == nil {
			t.Errorf("LoadAll missing %s", want)
		}
	}
	if p := byPath["clustersched/internal/assign"]; p != nil && len(p.Files) == 0 {
		t.Error("assign loaded with no files")
	}
}
