// Package mrt implements modulo reservation tables for a clustered
// machine at two fidelities:
//
//   - Capacity: slot-cycle counting per resource class, used by the
//     cluster-assignment phase, which knows which cluster an operation
//     lands on but not yet in which cycle (the paper's Figure 7/8
//     bookkeeping, including room for copies).
//   - Cycle: exact per-instance, per-cycle occupancy, used by the
//     modulo schedulers in phase two.
//
// Both fidelities speak the same probe API — ProbeOp/CommitOp/ReleaseOp
// over an Op description, plus the shared Journal — so the assignment
// engine and the schedulers are written against one surface (see Table).
package mrt

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// numFU is machine.NumFUClasses, shortened for index arithmetic.
const numFU = int(machine.NumFUClasses)

// Capacity tracks, for one candidate II, how many of each resource's
// II slot-cycles are already spoken for on every cluster. Local
// resources are function units (per class) and bus read/write ports;
// global resources are broadcast buses and point-to-point links.
//
// Every probe is a precomputed table lookup: the charge plan
// (classOf/occOf/linkTab) resolves an Op to the counters it charges
// without re-deriving unit compatibility, occupancy, or link topology
// per call, and per-cluster aggregates (freeFU, linkFreeAt) answer
// FreeSlots and MaxReservableCopies in O(1).
type Capacity struct {
	m  *machine.Config
	ii int
	nc int

	// Charge plan, structural (II-invariant), shared read-only with
	// every table of the same machine (see planOf).
	classOf []int8  // [cl*NumOpKinds+k] -> FU class charged, or -1
	occOf   []int   // [k] -> function-unit occupancy (slot-cycles)
	fuCnt   []int   // [cl*numFU+class] -> unit count
	linkTab []int   // [src*nc+dst] -> link index, or -1
	linksAt [][]int // [cl] -> incident link indices

	// Usage counters and per-II capacities, all carved from one slab.
	fuUsed    []int // [cl*numFU+class] slot-cycles consumed
	fuCap     []int // [cl*numFU+class] total slot-cycles (= count * II)
	freeFU    []int // [cl] aggregate free FU slot-cycles (all classes)
	readUsed  []int // [cl]
	readCap   []int // [cl]
	writeUsed []int // [cl]
	writeCap  []int // [cl]
	linkUsed  []int // [link]
	linkFree  []int // [cl] aggregate free slot-cycles of incident links
	busUsed   int
	busCap    int

	rbBuf []int // rollback scratch for event targets

	Journal
}

// NewCapacity returns an empty capacity table for machine m at the
// given II.
func NewCapacity(m *machine.Config, ii int) *Capacity {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	nc := m.NumClusters()
	nl := len(m.Links)
	c := &Capacity{m: m, nc: nc}

	// Charge plan: shared across every table of the same machine.
	p := planOf(m)
	c.classOf = p.classOf
	c.occOf = p.occOf
	c.fuCnt = p.fuCnt
	c.linkTab = p.linkTab
	c.linksAt = p.linksAt

	// All counters live in one slab.
	slab := make([]int, 2*nc*numFU+7*nc+2*nl)
	carve := func(n int) []int {
		s := slab[:n:n]
		slab = slab[n:]
		return s
	}
	c.fuUsed = carve(nc * numFU)
	c.fuCap = carve(nc * numFU)
	c.freeFU = carve(nc)
	c.readUsed = carve(nc)
	c.readCap = carve(nc)
	c.writeUsed = carve(nc)
	c.writeCap = carve(nc)
	c.linkUsed = carve(nl)
	c.linkFree = carve(nc)
	_ = carve(nl) // reserved

	c.ResetII(ii)
	return c
}

// II returns the initiation interval the table was sized for.
//
//schedvet:alloc-free
func (c *Capacity) II() int { return c.ii }

// Machine returns the machine description backing the table.
//
//schedvet:alloc-free
func (c *Capacity) Machine() *machine.Config { return c.m }

// ChargeClass returns the FU class an operation of kind k is counted
// against on cluster cl: the specialized class when the cluster has
// such units, otherwise the general-purpose pool; -1 when the cluster
// cannot execute the kind at all. Callers use it to group operations
// competing for the same pool. A precomputed lookup of the charge plan.
//
//schedvet:alloc-free
func (c *Capacity) ChargeClass(cl int, k ddg.OpKind) machine.FUClass {
	return machine.FUClass(c.classOf[cl*ddg.NumOpKinds+int(k)])
}

// Reset clears all usage counters (capacities are untouched) and
// discards the journal, returning the table to its freshly constructed
// state without reallocating.
//
//schedvet:alloc-free
func (c *Capacity) Reset() {
	for i := range c.fuUsed {
		c.fuUsed[i] = 0
	}
	for cl := 0; cl < c.nc; cl++ {
		free := 0
		for cls := 0; cls < numFU; cls++ {
			free += c.fuCap[cl*numFU+cls]
		}
		c.freeFU[cl] = free
		c.readUsed[cl] = 0
		c.writeUsed[cl] = 0
		c.linkFree[cl] = len(c.linksAt[cl]) * c.ii
	}
	c.busUsed = 0
	for i := range c.linkUsed {
		c.linkUsed[i] = 0
	}
	c.JournalReset()
}

// ResetII clears the table like Reset and re-sizes every capacity for
// a new initiation interval, so II-escalation loops can reuse one
// table instead of allocating per candidate. Journaling state is
// preserved (the journal itself is discarded).
//
//schedvet:alloc-free
func (c *Capacity) ResetII(ii int) {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	c.ii = ii
	for i := range c.fuCap {
		c.fuCap[i] = c.fuCnt[i] * ii
	}
	for cl := 0; cl < c.nc; cl++ {
		c.readCap[cl] = c.m.Clusters[cl].ReadPorts * ii
		c.writeCap[cl] = c.m.Clusters[cl].WritePorts * ii
	}
	c.busCap = c.m.Buses * ii
	c.Reset()
}

// Probe API -----------------------------------------------------------------

// ProbeOp reports whether op still fits: free function-unit slot-cycles
// of the charged class for ordinary operations (one per cycle of the
// kind's occupancy, and no single operation may outlast the II on one
// unit), or a read-port, fabric, and write-port slot-cycle for copies.
// The cycle argument is ignored: this fidelity counts slot-cycles
// without committing to cycles.
//
//schedvet:alloc-free
func (c *Capacity) ProbeOp(op Op, cycle int) bool {
	if op.Kind == ddg.OpCopy {
		return c.probeCopy(op)
	}
	cls := c.classOf[op.Cluster*ddg.NumOpKinds+int(op.Kind)]
	if cls < 0 {
		return false
	}
	occ := c.occOf[op.Kind]
	idx := op.Cluster*numFU + int(cls)
	return occ <= c.ii && c.fuUsed[idx]+occ <= c.fuCap[idx]
}

// probeCopy checks a copy sourced on op.Cluster: a read-port slot-cycle
// there, a fabric slot-cycle (a bus, or the link to the single adjacent
// target on point-to-point machines), and a write-port slot-cycle on
// every target.
//
//schedvet:alloc-free
func (c *Capacity) probeCopy(op Op) bool {
	src := op.Cluster
	if c.readUsed[src] >= c.readCap[src] {
		return false
	}
	if c.m.Network == machine.Broadcast {
		if c.busUsed >= c.busCap {
			return false
		}
	} else {
		if len(op.Targets) != 1 {
			return false
		}
		li := c.linkTab[src*c.nc+op.Targets[0]]
		if li < 0 || c.linkUsed[li] >= c.ii {
			return false
		}
	}
	for _, t := range op.Targets {
		if c.writeUsed[t] >= c.writeCap[t] {
			return false
		}
	}
	return true
}

// CommitOp reserves op's resources. It reports false (and changes
// nothing) when they no longer fit. The cycle argument is ignored.
//
//schedvet:alloc-free
func (c *Capacity) CommitOp(op Op, cycle int) bool {
	if !c.ProbeOp(op, cycle) {
		return false
	}
	c.applyCharges(op, 1)
	if c.journaling {
		c.record(op, 0, false, op.Targets)
	}
	return true
}

// ReleaseOp releases the resources previously reserved by CommitOp for
// an identically described op. It panics on underflow — releasing
// something that was never committed — and always reports true.
//
//schedvet:alloc-free
func (c *Capacity) ReleaseOp(op Op) bool {
	if op.Kind == ddg.OpCopy {
		src := op.Cluster
		if c.readUsed[src] <= 0 {
			panic("mrt: ReleaseOp copy read-port underflow")
		}
		if c.m.Network == machine.Broadcast {
			if c.busUsed <= 0 {
				panic("mrt: ReleaseOp copy bus underflow")
			}
		} else if len(op.Targets) != 1 || c.linkTab[src*c.nc+op.Targets[0]] < 0 ||
			c.linkUsed[c.linkTab[src*c.nc+op.Targets[0]]] <= 0 {
			panic("mrt: ReleaseOp copy link underflow")
		}
		for _, t := range op.Targets {
			if c.writeUsed[t] <= 0 {
				panic("mrt: ReleaseOp copy write-port underflow")
			}
		}
	} else {
		cls := c.classOf[op.Cluster*ddg.NumOpKinds+int(op.Kind)]
		if cls < 0 || c.fuUsed[op.Cluster*numFU+int(cls)] < c.occOf[op.Kind] {
			panic(fmt.Sprintf("mrt: ReleaseOp(%d, %s) underflow", op.Cluster, op.Kind))
		}
	}
	c.applyCharges(op, -1)
	if c.journaling {
		c.record(op, 0, true, op.Targets)
	}
	return true
}

// applyCharges moves op's counters by dir (+1 commit, -1 release),
// maintaining the O(1) aggregates. It performs no validity checks: the
// callers (CommitOp after a probe, ReleaseOp after its underflow guard,
// and rollback restoring known-good state) have already established
// them.
//
//schedvet:alloc-free
func (c *Capacity) applyCharges(op Op, dir int) {
	if op.Kind != ddg.OpCopy {
		cls := c.classOf[op.Cluster*ddg.NumOpKinds+int(op.Kind)]
		occ := c.occOf[op.Kind] * dir
		c.fuUsed[op.Cluster*numFU+int(cls)] += occ
		c.freeFU[op.Cluster] -= occ
		return
	}
	c.readUsed[op.Cluster] += dir
	if c.m.Network == machine.Broadcast {
		c.busUsed += dir
	} else {
		li := c.linkTab[op.Cluster*c.nc+op.Targets[0]]
		c.linkUsed[li] += dir
		l := c.m.Links[li]
		c.linkFree[l.A] -= dir
		c.linkFree[l.B] -= dir
	}
	for _, t := range op.Targets {
		c.writeUsed[t] += dir
	}
}

// JournalRollback undoes, in reverse order, every commit and release
// recorded after mark, restoring the table to its state at JournalMark
// time.
//
//schedvet:alloc-free
func (c *Capacity) JournalRollback(mark int) {
	for i := len(c.events) - 1; i >= mark; i-- {
		ev := &c.events[i]
		op, buf := c.eventOp(ev, c.rbBuf)
		c.rbBuf = buf
		if ev.release {
			c.applyCharges(op, 1)
		} else {
			c.applyCharges(op, -1)
		}
	}
	c.truncate(mark)
}

// Queries -------------------------------------------------------------------

// FreeOpSlots returns the remaining FU slot-cycles usable by kind k on
// cluster cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeOpSlots(cl int, k ddg.OpKind) int {
	cls := c.classOf[cl*ddg.NumOpKinds+int(k)]
	if cls < 0 {
		return 0
	}
	idx := cl*numFU + int(cls)
	return c.fuCap[idx] - c.fuUsed[idx]
}

// FreeSlots returns the total free FU slot-cycles on cluster cl across
// all classes, the tie-breaker of selection line 8 ("maximize free
// resources on the cluster"). O(1): the aggregate is maintained on
// every charge.
//
//schedvet:alloc-free
func (c *Capacity) FreeSlots(cl int) int { return c.freeFU[cl] }

// MaxReservableCopies returns MRC_C of the paper: an upper bound on how
// many more copies sourced from cluster cl still have room, limited by
// the cluster's free read-port slot-cycles and by the free slot-cycles
// of the shared fabric (buses, or the links incident to cl). O(1): the
// incident-link aggregate is maintained on every charge.
//
//schedvet:alloc-free
func (c *Capacity) MaxReservableCopies(cl int) int {
	freeRead := c.readCap[cl] - c.readUsed[cl]
	if freeRead < 0 {
		freeRead = 0
	}
	var freeFabric int
	if c.m.Network == machine.Broadcast {
		freeFabric = c.busCap - c.busUsed
	} else {
		freeFabric = c.linkFree[cl]
	}
	if freeFabric < 0 {
		freeFabric = 0
	}
	if freeRead < freeFabric {
		return freeRead
	}
	return freeFabric
}

// MaxReservableIncoming is the incoming mirror of MaxReservableCopies:
// the headroom for copies arriving at cluster cl, limited by its free
// write-port slot-cycles and the free slot-cycles of the shared fabric
// each arriving copy also consumes.
//
//schedvet:alloc-free
func (c *Capacity) MaxReservableIncoming(cl int) int {
	free := c.writeCap[cl] - c.writeUsed[cl]
	var fabric int
	if c.m.Network == machine.Broadcast {
		fabric = c.busCap - c.busUsed
	} else {
		fabric = c.linkFree[cl]
	}
	if fabric < free {
		free = fabric
	}
	if free < 0 {
		free = 0
	}
	return free
}

// FreeReadPortSlots returns the remaining read-port slot-cycles on cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeReadPortSlots(cl int) int { return c.readCap[cl] - c.readUsed[cl] }

// FreeWritePortSlots returns the remaining write-port slot-cycles on cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeWritePortSlots(cl int) int { return c.writeCap[cl] - c.writeUsed[cl] }

// FreeBusSlots returns the remaining broadcast-bus slot-cycles.
//
//schedvet:alloc-free
func (c *Capacity) FreeBusSlots() int { return c.busCap - c.busUsed }

// FreeLinkSlots returns the remaining slot-cycles of link li.
//
//schedvet:alloc-free
func (c *Capacity) FreeLinkSlots(li int) int { return c.ii - c.linkUsed[li] }

// Copy / restore ------------------------------------------------------------

// CopyFrom overwrites the receiver's counters with src's, a
// slab-reusing restore for tables of the same machine (it panics
// otherwise). The receiver's journal is discarded — the recorded
// history no longer matches — but its journaling mode is kept. Use it
// where Clone would allocate per restore; keep Clone for cold paths.
//
//schedvet:alloc-free
func (c *Capacity) CopyFrom(src *Capacity) {
	if c.m != src.m {
		panic("mrt: Capacity.CopyFrom across machines")
	}
	c.ii = src.ii
	copy(c.fuUsed, src.fuUsed)
	copy(c.fuCap, src.fuCap)
	copy(c.freeFU, src.freeFU)
	copy(c.readUsed, src.readUsed)
	copy(c.readCap, src.readCap)
	copy(c.writeUsed, src.writeUsed)
	copy(c.writeCap, src.writeCap)
	copy(c.linkUsed, src.linkUsed)
	copy(c.linkFree, src.linkFree)
	c.busUsed = src.busUsed
	c.busCap = src.busCap
	c.JournalReset()
}

// Clone returns an independent deep copy, used for tentative
// assignments that may be discarded. The clone's journal starts empty
// and disabled regardless of the receiver's journaling state.
func (c *Capacity) Clone() *Capacity {
	n := NewCapacity(c.m, c.ii)
	n.CopyFrom(c)
	return n
}
