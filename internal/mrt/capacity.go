// Package mrt implements modulo reservation tables for a clustered
// machine at two fidelities:
//
//   - Capacity: slot-cycle counting per resource class, used by the
//     cluster-assignment phase, which knows which cluster an operation
//     lands on but not yet in which cycle (the paper's Figure 7/8
//     bookkeeping, including room for copies).
//   - Cycle: exact per-instance, per-cycle occupancy, used by the
//     modulo schedulers in phase two.
package mrt

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// Capacity tracks, for one candidate II, how many of each resource's
// II slot-cycles are already spoken for on every cluster. Local
// resources are function units (per class) and bus read/write ports;
// global resources are broadcast buses and point-to-point links.
type Capacity struct {
	m  *machine.Config
	ii int

	fuUsed    [][]int // [cluster][fuclass] slot-cycles consumed
	fuCap     [][]int // [cluster][fuclass] total slot-cycles (= count * II)
	readUsed  []int   // [cluster]
	writeUsed []int   // [cluster]
	busUsed   int
	linkUsed  []int // [link]

	journaling bool
	journal    []capDelta
}

// capDelta is one journaled counter mutation. The pointer targets a
// fixed-size backing array (or the busUsed field), so entries stay
// valid for the table's lifetime.
type capDelta struct {
	counter *int
	delta   int
}

// EnableJournal turns on mutation journaling: every subsequent counter
// change is recorded so a span of tentative placements can be undone
// with JournalRollback. Journaling is off by default; tables that
// never enable it pay one predictable branch per mutation.
func (c *Capacity) EnableJournal() {
	c.journaling = true
	c.journal = c.journal[:0]
}

// JournalMark returns the current journal position, to be passed to
// JournalRollback to undo everything recorded after this point.
//
//schedvet:alloc-free
func (c *Capacity) JournalMark() int { return len(c.journal) }

// JournalRollback undoes, in reverse order, every mutation recorded
// after mark, restoring the table to its state at JournalMark time.
//
//schedvet:alloc-free
func (c *Capacity) JournalRollback(mark int) {
	for i := len(c.journal) - 1; i >= mark; i-- {
		e := c.journal[i]
		*e.counter -= e.delta
	}
	c.journal = c.journal[:mark]
}

// JournalReset discards the journal without undoing anything, making
// all mutations recorded so far permanent. The backing array is kept,
// so a reset-mutate-rollback cycle settles into zero allocations.
//
//schedvet:alloc-free
func (c *Capacity) JournalReset() {
	c.journal = c.journal[:0]
}

// bump applies a counter mutation, journaling it when enabled. Every
// mutator below routes its writes through bump so rollback sees a
// complete record.
//
//schedvet:alloc-free
func (c *Capacity) bump(counter *int, delta int) {
	*counter += delta
	if c.journaling {
		c.journal = append(c.journal, capDelta{counter, delta})
	}
}

// Reset clears all usage counters (capacities are untouched) and
// discards the journal, returning the table to its freshly constructed
// state without reallocating.
//
//schedvet:alloc-free
func (c *Capacity) Reset() {
	for i := range c.fuUsed {
		for j := range c.fuUsed[i] {
			c.fuUsed[i][j] = 0
		}
	}
	for i := range c.readUsed {
		c.readUsed[i] = 0
	}
	for i := range c.writeUsed {
		c.writeUsed[i] = 0
	}
	c.busUsed = 0
	for i := range c.linkUsed {
		c.linkUsed[i] = 0
	}
	c.journal = c.journal[:0]
}

// ResetII clears the table like Reset and re-sizes every capacity for
// a new initiation interval, so II-escalation loops can reuse one
// table instead of allocating per candidate. It must not be called on
// a table with live Clones: clones share the capacity array this
// rewrites. Journaling state is preserved.
//
//schedvet:alloc-free
func (c *Capacity) ResetII(ii int) {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	c.ii = ii
	for i := range c.m.Clusters {
		for cls := range c.fuCap[i] {
			c.fuCap[i][cls] = 0
		}
		for _, fu := range c.m.Clusters[i].FUs {
			c.fuCap[i][fu] += ii
		}
	}
	c.Reset()
}

// NewCapacity returns an empty capacity table for machine m at the
// given II.
func NewCapacity(m *machine.Config, ii int) *Capacity {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	// All counters live in one slab; capDelta pointers into it stay
	// valid for the table's lifetime.
	nc := m.NumClusters()
	k := int(machine.NumFUClasses)
	slab := make([]int, 2*nc*k+2*nc+len(m.Links))
	carve := func(n int) []int {
		s := slab[:n:n]
		slab = slab[n:]
		return s
	}
	c := &Capacity{
		m:      m,
		ii:     ii,
		fuUsed: make([][]int, nc),
		fuCap:  make([][]int, nc),
	}
	for i := range m.Clusters {
		c.fuUsed[i] = carve(k)
		c.fuCap[i] = carve(k)
		for _, fu := range m.Clusters[i].FUs {
			c.fuCap[i][fu] += ii
		}
	}
	c.readUsed = carve(nc)
	c.writeUsed = carve(nc)
	c.linkUsed = carve(len(m.Links))
	return c
}

// II returns the initiation interval the table was sized for.
//
//schedvet:alloc-free
func (c *Capacity) II() int { return c.ii }

// Machine returns the machine description backing the table.
//
//schedvet:alloc-free
func (c *Capacity) Machine() *machine.Config { return c.m }

// ChargeClass returns the FU class an operation of kind k is counted
// against on cluster cl: the specialized class when the cluster has
// such units, otherwise the general-purpose pool; -1 when the cluster
// cannot execute the kind at all. Callers use it to group operations
// competing for the same pool.
//
//schedvet:alloc-free
func (c *Capacity) ChargeClass(cl int, k ddg.OpKind) machine.FUClass {
	return c.chargeClass(cl, k)
}

//schedvet:alloc-free
func (c *Capacity) chargeClass(cl int, k ddg.OpKind) machine.FUClass {
	want := machine.RequiredClass(k)
	if c.fuCap[cl][want] > 0 {
		return want
	}
	if c.fuCap[cl][machine.FUGeneral] > 0 && machine.FUGeneral.CanExecute(k) {
		return machine.FUGeneral
	}
	return -1
}

// CanPlaceOp reports whether cluster cl still has free function-unit
// slot-cycles for an operation of kind k (one per cycle of the kind's
// occupancy: non-pipelined units hold their unit for the full latency,
// and no single operation may outlast the II on one unit).
//
//schedvet:alloc-free
func (c *Capacity) CanPlaceOp(cl int, k ddg.OpKind) bool {
	cls := c.chargeClass(cl, k)
	occ := c.m.Occupancy(k)
	return cls >= 0 && occ <= c.ii && c.fuUsed[cl][cls]+occ <= c.fuCap[cl][cls]
}

// PlaceOp consumes the FU slot-cycles of the proper class on cluster
// cl. It reports false (and changes nothing) when capacity is short.
//
//schedvet:alloc-free
func (c *Capacity) PlaceOp(cl int, k ddg.OpKind) bool {
	if !c.CanPlaceOp(cl, k) {
		return false
	}
	c.bump(&c.fuUsed[cl][c.chargeClass(cl, k)], c.m.Occupancy(k))
	return true
}

// RemoveOp releases the slot-cycles previously taken by PlaceOp.
//
//schedvet:alloc-free
func (c *Capacity) RemoveOp(cl int, k ddg.OpKind) {
	cls := c.chargeClass(cl, k)
	occ := c.m.Occupancy(k)
	if cls < 0 || c.fuUsed[cl][cls] < occ {
		panic(fmt.Sprintf("mrt: RemoveOp(%d, %s) underflow", cl, k))
	}
	c.bump(&c.fuUsed[cl][cls], -occ)
}

// FreeOpSlots returns the remaining FU slot-cycles usable by kind k on
// cluster cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeOpSlots(cl int, k ddg.OpKind) int {
	cls := c.chargeClass(cl, k)
	if cls < 0 {
		return 0
	}
	return c.fuCap[cl][cls] - c.fuUsed[cl][cls]
}

// FreeSlots returns the total free FU slot-cycles on cluster cl across
// all classes, the tie-breaker of selection line 8 ("maximize free
// resources on the cluster").
//
//schedvet:alloc-free
func (c *Capacity) FreeSlots(cl int) int {
	free := 0
	for cls := 0; cls < machine.NumFUClasses; cls++ {
		free += c.fuCap[cl][cls] - c.fuUsed[cl][cls]
	}
	return free
}

// Broadcast copy accounting ------------------------------------------------

// CanPlaceBroadcastCopy reports whether a new copy sourced on cluster
// src with the given additional target clusters fits: a read-port
// slot-cycle on src, a bus slot-cycle, and a write-port slot-cycle on
// every target.
//
//schedvet:alloc-free
func (c *Capacity) CanPlaceBroadcastCopy(src int, targets []int) bool {
	if c.readUsed[src] >= c.m.Clusters[src].ReadPorts*c.ii {
		return false
	}
	if c.busUsed >= c.m.Buses*c.ii {
		return false
	}
	return c.canAddTargets(targets)
}

// canAddTargets checks write-port room on each target cluster.
//
//schedvet:alloc-free
func (c *Capacity) canAddTargets(targets []int) bool {
	for _, t := range targets {
		if c.writeUsed[t] >= c.m.Clusters[t].WritePorts*c.ii {
			return false
		}
	}
	return true
}

// PlaceBroadcastCopy reserves the resources checked by
// CanPlaceBroadcastCopy. It reports false without changes when they no
// longer fit.
//
//schedvet:alloc-free
func (c *Capacity) PlaceBroadcastCopy(src int, targets []int) bool {
	if !c.CanPlaceBroadcastCopy(src, targets) {
		return false
	}
	c.bump(&c.readUsed[src], 1)
	c.bump(&c.busUsed, 1)
	for _, t := range targets {
		c.bump(&c.writeUsed[t], 1)
	}
	return true
}

// CanAddCopyTarget reports whether an existing broadcast copy can gain
// one more destination cluster (one extra write-port slot-cycle there).
//
//schedvet:alloc-free
func (c *Capacity) CanAddCopyTarget(target int) bool {
	return c.writeUsed[target] < c.m.Clusters[target].WritePorts*c.ii
}

// AddCopyTarget reserves a write-port slot-cycle on the target cluster
// for an already placed broadcast copy.
//
//schedvet:alloc-free
func (c *Capacity) AddCopyTarget(target int) bool {
	if !c.CanAddCopyTarget(target) {
		return false
	}
	c.bump(&c.writeUsed[target], 1)
	return true
}

// RemoveBroadcastCopy releases a broadcast copy and all its targets.
//
//schedvet:alloc-free
func (c *Capacity) RemoveBroadcastCopy(src int, targets []int) {
	if c.readUsed[src] <= 0 || c.busUsed <= 0 {
		panic("mrt: RemoveBroadcastCopy underflow")
	}
	c.bump(&c.readUsed[src], -1)
	c.bump(&c.busUsed, -1)
	for _, t := range targets {
		if c.writeUsed[t] <= 0 {
			panic("mrt: RemoveBroadcastCopy target underflow")
		}
		c.bump(&c.writeUsed[t], -1)
	}
}

// RemoveCopyTarget releases one destination of a broadcast copy that
// itself stays in place.
//
//schedvet:alloc-free
func (c *Capacity) RemoveCopyTarget(target int) {
	if c.writeUsed[target] <= 0 {
		panic("mrt: RemoveCopyTarget underflow")
	}
	c.bump(&c.writeUsed[target], -1)
}

// Point-to-point copy accounting -------------------------------------------

// CanPlaceLinkCopy reports whether a copy across link li (from cluster
// src to cluster dst) fits: read port on src, the link itself, and a
// write port on dst.
//
//schedvet:alloc-free
func (c *Capacity) CanPlaceLinkCopy(src, dst, li int) bool {
	if c.readUsed[src] >= c.m.Clusters[src].ReadPorts*c.ii {
		return false
	}
	if c.linkUsed[li] >= c.ii {
		return false
	}
	return c.writeUsed[dst] < c.m.Clusters[dst].WritePorts*c.ii
}

// PlaceLinkCopy reserves a point-to-point copy's resources.
//
//schedvet:alloc-free
func (c *Capacity) PlaceLinkCopy(src, dst, li int) bool {
	if !c.CanPlaceLinkCopy(src, dst, li) {
		return false
	}
	c.bump(&c.readUsed[src], 1)
	c.bump(&c.linkUsed[li], 1)
	c.bump(&c.writeUsed[dst], 1)
	return true
}

// RemoveLinkCopy releases a point-to-point copy's resources.
//
//schedvet:alloc-free
func (c *Capacity) RemoveLinkCopy(src, dst, li int) {
	if c.readUsed[src] <= 0 || c.linkUsed[li] <= 0 || c.writeUsed[dst] <= 0 {
		panic("mrt: RemoveLinkCopy underflow")
	}
	c.bump(&c.readUsed[src], -1)
	c.bump(&c.linkUsed[li], -1)
	c.bump(&c.writeUsed[dst], -1)
}

// Copy headroom -------------------------------------------------------------

// MaxReservableCopies returns MRC_C of the paper: an upper bound on how
// many more copies sourced from cluster cl still have room, limited by
// the cluster's free read-port slot-cycles and by the free slot-cycles
// of the shared fabric (buses, or the links incident to cl).
func (c *Capacity) MaxReservableCopies(cl int) int {
	freeRead := c.m.Clusters[cl].ReadPorts*c.ii - c.readUsed[cl]
	if freeRead < 0 {
		freeRead = 0
	}
	var freeFabric int
	if c.m.Network == machine.Broadcast {
		freeFabric = c.m.Buses*c.ii - c.busUsed
	} else {
		for _, li := range c.m.LinksAt(cl) {
			freeFabric += c.ii - c.linkUsed[li]
		}
	}
	if freeFabric < 0 {
		freeFabric = 0
	}
	if freeRead < freeFabric {
		return freeRead
	}
	return freeFabric
}

// FreeReadPortSlots returns the remaining read-port slot-cycles on cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeReadPortSlots(cl int) int {
	return c.m.Clusters[cl].ReadPorts*c.ii - c.readUsed[cl]
}

// FreeWritePortSlots returns the remaining write-port slot-cycles on cl.
//
//schedvet:alloc-free
func (c *Capacity) FreeWritePortSlots(cl int) int {
	return c.m.Clusters[cl].WritePorts*c.ii - c.writeUsed[cl]
}

// FreeBusSlots returns the remaining broadcast-bus slot-cycles.
//
//schedvet:alloc-free
func (c *Capacity) FreeBusSlots() int { return c.m.Buses*c.ii - c.busUsed }

// Clone returns an independent deep copy, used for tentative
// assignments that may be discarded. The clone's journal starts empty
// and disabled regardless of the receiver's journaling state.
func (c *Capacity) Clone() *Capacity {
	n := &Capacity{
		m:         c.m,
		ii:        c.ii,
		fuUsed:    make([][]int, len(c.fuUsed)),
		fuCap:     c.fuCap, // immutable after construction; share
		readUsed:  append([]int(nil), c.readUsed...),
		writeUsed: append([]int(nil), c.writeUsed...),
		busUsed:   c.busUsed,
		linkUsed:  append([]int(nil), c.linkUsed...),
	}
	for i := range c.fuUsed {
		n.fuUsed[i] = append([]int(nil), c.fuUsed[i]...)
	}
	return n
}

// FreeLinkSlots returns the remaining slot-cycles of link li.
//
//schedvet:alloc-free
func (c *Capacity) FreeLinkSlots(li int) int { return c.ii - c.linkUsed[li] }
