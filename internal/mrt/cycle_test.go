package mrt

import (
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func TestCyclePlaceOpModuloWrap(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 3)

	// Cycle 7 occupies slot 1; so do cycles 1, 4, 10...
	for i := 0; i < 4; i++ {
		if !c.CommitOp(OpAt(i, 0, ddg.OpALU), 7) {
			t.Fatalf("op %d should fit (4 units)", i)
		}
	}
	if c.ProbeOp(OpAt(9, 0, ddg.OpALU), 1) {
		t.Error("slot 1 should be full (modulo aliasing of cycle 7)")
	}
	if !c.ProbeOp(OpAt(9, 0, ddg.OpALU), 2) {
		t.Error("slot 2 should be free")
	}
	if !c.ReleaseOp(Op{Node: 2}) {
		t.Error("ReleaseOp failed")
	}
	if !c.ProbeOp(OpAt(9, 0, ddg.OpALU), 10) {
		t.Error("released slot should accept a new op at an aliasing cycle")
	}
	if c.ReleaseOp(Op{Node: 2}) {
		t.Error("double ReleaseOp should report false")
	}
}

func TestCycleFSUnitSelection(t *testing.T) {
	m := machine.NewBusedFS(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 1)
	if !c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) || !c.CommitOp(OpAt(1, 0, ddg.OpShift), 0) {
		t.Fatal("two integer units should take two integer ops")
	}
	if c.ProbeOp(OpAt(2, 0, ddg.OpBranch), 0) {
		t.Error("third integer op must not fit")
	}
	if !c.ProbeOp(OpAt(2, 0, ddg.OpFMul), 0) {
		t.Error("float unit should still be free")
	}
	if !c.CommitOp(OpAt(2, 0, ddg.OpFMul), 1) {
		t.Error("cycle 1 aliases slot 0 at II=1 and the float unit is free there")
	}
}

func TestCycleCommitOpDuplicatePanics(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 2)
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	defer func() {
		if recover() == nil {
			t.Error("placing the same node twice should panic")
		}
	}()
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 1)
}

func TestCycleBroadcastCopy(t *testing.T) {
	m := machine.NewBusedGP(3, 1, 1)
	c := NewCycle(m, 2)

	if !c.CommitOp(CopyAt(10, 0, []int{1, 2}), 0) {
		t.Fatal("copy should fit")
	}
	// Bus is single: another copy at the same slot must fail, even from
	// another cluster.
	if c.ProbeOp(CopyAt(11, 1, []int{2}), 2) {
		t.Error("bus slot 0 should be taken (cycle 2 aliases it)")
	}
	if !c.ProbeOp(CopyAt(11, 1, []int{2}), 1) {
		t.Error("bus slot 1 should be free")
	}
	// Write port of cluster 1 at slot 0 is taken.
	if c.ProbeOp(CopyAt(11, 2, []int{1}), 0) {
		t.Error("write port on cluster 1 at slot 0 should be taken")
	}
	c.ReleaseOp(Op{Node: 10})
	if !c.ProbeOp(CopyAt(11, 2, []int{1}), 0) {
		t.Error("release should free bus, read and write ports")
	}
}

func TestCycleCopyMultipleTargetsNeedDistinctWritePorts(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCycle(m, 1)
	// Two targets on the same cluster pool need two write ports; only 1.
	if c.ProbeOp(CopyAt(0, 0, []int{1, 1}), 0) {
		t.Error("two writes into one single-ported cluster at one cycle")
	}
}

func TestCycleDuplicateTargetsTakeDistinctWritePorts(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 2)
	c := NewCycle(m, 1)
	if !c.CommitOp(CopyAt(0, 0, []int{1, 1}), 0) {
		t.Fatal("duplicate-target copy should fit with 2 write ports")
	}
	p := c.PlacementOf(0)
	if p == nil || len(p.writeSlots) != 2 || p.writeSlots[0].port == p.writeSlots[1].port {
		t.Errorf("duplicate targets must occupy distinct write ports: %+v", p)
	}
	if c.ProbeOp(CopyAt(1, 1, []int{1}), 0) {
		t.Error("write ports on cluster 1 exhausted; probe should fail")
	}
}

func TestCycleLinkCopy(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCycle(m, 2)
	if !c.CommitOp(CopyAt(5, 0, []int{1}), 0) {
		t.Fatal("link copy should fit")
	}
	if c.ProbeOp(CopyAt(6, 1, []int{0}), 0) {
		t.Error("link 0-1 at slot 0 should be busy (both directions share it)")
	}
	if !c.ProbeOp(CopyAt(6, 1, []int{0}), 1) {
		t.Error("link 0-1 at slot 1 should be free")
	}
	if c.ProbeOp(CopyAt(6, 0, []int{3}), 1) {
		t.Error("copy to a non-adjacent cluster must be rejected")
	}
	if c.ProbeOp(CopyAt(6, 0, []int{1, 2}), 1) {
		t.Error("point-to-point copies must have exactly one target")
	}
}

func TestCycleConflictsOf(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 1)
	for i := 0; i < 4; i++ {
		c.CommitOp(OpAt(i, 0, ddg.OpALU), 0)
	}
	conflicts := c.ConflictsOf(OpAt(9, 0, ddg.OpFAdd), 3, nil)
	if len(conflicts) != 4 {
		t.Errorf("ConflictsOf = %v, want all four occupants", conflicts)
	}
	// The result reuses the caller's buffer.
	buf := make([]int, 0, 8)
	conflicts = c.ConflictsOf(OpAt(9, 0, ddg.OpFAdd), 0, buf)
	if len(conflicts) != 4 || &conflicts[0] != &buf[:1][0] {
		t.Error("ConflictsOf must append into the passed buffer")
	}
}

func TestCycleCopyConflictsOf(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCycle(m, 1)
	c.CommitOp(CopyAt(7, 0, []int{1}), 0)
	conflicts := c.ConflictsOf(CopyAt(9, 0, []int{1}), 0, nil)
	if len(conflicts) != 1 || conflicts[0] != 7 {
		t.Errorf("copy ConflictsOf = %v, want [7]", conflicts)
	}
}

func TestCyclePlacementOf(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 4)
	c.CommitOp(OpAt(3, 0, ddg.OpLoad), 9)
	p := c.PlacementOf(3)
	if p == nil || p.Cycle != 9 || p.Cluster != 0 {
		t.Errorf("PlacementOf = %+v", p)
	}
	if c.PlacementOf(99) != nil || c.PlacementOf(-1) != nil {
		t.Error("PlacementOf unknown node should be nil")
	}
	c.ReleaseOp(Op{Node: 3})
	if c.PlacementOf(3) != nil {
		t.Error("released node should have nil placement")
	}
}

func TestCycleStringShowsOccupancy(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	c := NewCycle(m, 2)
	c.CommitOp(OpAt(42, 0, ddg.OpALU), 1)
	s := c.String()
	if !strings.Contains(s, "42") || !strings.Contains(s, "c0.gp") {
		t.Errorf("String() missing occupant:\n%s", s)
	}
}

func TestCycleNegativeCycles(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 3)
	// Cycle -1 occupies slot 2 (SMS places against successors and may
	// go negative before normalization).
	if !c.CommitOp(OpAt(0, 0, ddg.OpALU), -1) {
		t.Fatal("negative cycle placement failed")
	}
	for i := 1; i < 4; i++ {
		c.CommitOp(OpAt(i, 0, ddg.OpALU), 2)
	}
	if c.ProbeOp(OpAt(9, 0, ddg.OpALU), -4) {
		t.Error("slot 2 should be full; -4 aliases it")
	}
}

func TestCycleResetIIReusesSlabs(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCycle(m, 4)
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 3)
	c.CommitOp(CopyAt(1, 0, []int{1}), 2)

	c.ResetII(2)
	if c.II() != 2 {
		t.Errorf("II after ResetII = %d, want 2", c.II())
	}
	if c.PlacementOf(0) != nil || c.PlacementOf(1) != nil {
		t.Error("ResetII should clear placements")
	}
	for s := 0; s < 2; s++ {
		if !c.ProbeOp(OpAt(2, 0, ddg.OpALU), s) || !c.ProbeOp(CopyAt(3, 0, []int{1}), s) {
			t.Errorf("slot %d not empty after ResetII", s)
		}
	}
}

func TestCycleCopyFromRestores(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	src := NewCycle(m, 2)
	src.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	src.CommitOp(CopyAt(1, 0, []int{1}), 1)

	dst := NewCycle(m, 5)
	dst.CommitOp(OpAt(9, 1, ddg.OpALU), 4)
	dst.CopyFrom(src)

	if dst.II() != 2 {
		t.Errorf("II after CopyFrom = %d, want 2", dst.II())
	}
	if dst.String() != src.String() {
		t.Errorf("CopyFrom mismatch:\n%s\nvs\n%s", dst.String(), src.String())
	}
	if dst.PlacementOf(9) != nil {
		t.Error("CopyFrom should drop the receiver's old placements")
	}
	// Deep copy: releasing in dst leaves src intact.
	dst.ReleaseOp(Op{Node: 1})
	if src.PlacementOf(1) == nil || src.String() == dst.String() {
		t.Error("CopyFrom aliases the source")
	}
	// The restored placement released the exact slots it held.
	if !dst.ProbeOp(CopyAt(2, 0, []int{1}), 1) {
		t.Error("releasing a restored copy should free its slots")
	}
}

func TestCycleClonePanicsAcrossMachines(t *testing.T) {
	c := NewCycle(machine.NewBusedGP(2, 1, 1), 2)
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom across machines should panic")
		}
	}()
	c.CopyFrom(NewCycle(machine.NewGrid4(1), 2))
}

// TestCycleJournalRollbackExactRows pins the exact-row restore
// contract: undoing a release must re-occupy the same resource
// instances the node originally held, not whatever a fresh first-free
// scan would pick.
func TestCycleJournalRollbackExactRows(t *testing.T) {
	m := machine.NewBusedFS(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 1)
	c.EnableJournal()

	// The two integer units: node 0 on the first, node 1 on the second.
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	c.CommitOp(OpAt(1, 0, ddg.OpShift), 0)
	c.JournalReset()
	before := c.String()

	mark := c.JournalMark()
	// Release both, commit a decoy (takes the first free unit), release
	// it: a rollback that re-placed via first-free would now permute the
	// unit assignment of nodes 0 and 1.
	c.ReleaseOp(Op{Node: 0})
	c.ReleaseOp(Op{Node: 1})
	c.CommitOp(OpAt(7, 0, ddg.OpBranch), 0)
	c.ReleaseOp(Op{Node: 7})
	c.JournalRollback(mark)

	if got := c.String(); got != before {
		t.Errorf("rollback state:\n%s\nwant:\n%s", got, before)
	}
	if c.PlacementOf(7) != nil {
		t.Error("decoy should be gone after rollback")
	}
	if p := c.PlacementOf(0); p == nil || c.PlacementOf(1) == nil {
		t.Fatal("rolled-back releases should be placed again")
	}
}

func TestCycleJournalRollbackCopies(t *testing.T) {
	m := machine.NewGrid4(2)
	c := NewCycle(m, 2)
	c.EnableJournal()
	c.CommitOp(CopyAt(0, 0, []int{1}), 0)
	c.JournalReset()
	before := c.String()

	mark := c.JournalMark()
	c.CommitOp(CopyAt(1, 1, []int{3}), 0)
	c.ReleaseOp(Op{Node: 0})
	c.CommitOp(CopyAt(2, 0, []int{2}), 0)
	c.JournalRollback(mark)

	if got := c.String(); got != before {
		t.Errorf("rollback state:\n%s\nwant:\n%s", got, before)
	}
	if c.PlacementOf(1) != nil || c.PlacementOf(2) != nil {
		t.Error("rolled-back commits should be unplaced")
	}
}

// TestCycleResetIIShrinks checks the slab retention policy: a table
// retargeted from a huge II to a small one drops its oversized backing
// arrays instead of pinning them, while small-II churn (the normal
// escalation pattern) keeps the backing stable.
func TestCycleResetIIShrinks(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCycle(m, 6000)
	grown := cap(c.owner)
	c.ResetII(2)
	if shrunk := cap(c.owner); shrunk >= grown {
		t.Fatalf("owner slab not shrunk: cap %d at II 6000, %d at II 2", grown, shrunk)
	}
	if !c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) {
		t.Fatalf("commit failed after shrink")
	}

	c2 := NewCycle(m, 8)
	stable := cap(c2.fuBusy)
	c2.ResetII(4)
	c2.ResetII(8)
	if got := cap(c2.fuBusy); got != stable {
		t.Fatalf("small table churned: cap %d -> %d across II 8->4->8", stable, got)
	}
}
