package mrt

import (
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func TestCyclePlaceOpModuloWrap(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 3)

	// Cycle 7 occupies slot 1; so do cycles 1, 4, 10...
	for i := 0; i < 4; i++ {
		if !c.PlaceOp(i, 0, ddg.OpALU, 7) {
			t.Fatalf("op %d should fit (4 units)", i)
		}
	}
	if c.CanPlaceOp(0, ddg.OpALU, 1) {
		t.Error("slot 1 should be full (modulo aliasing of cycle 7)")
	}
	if !c.CanPlaceOp(0, ddg.OpALU, 2) {
		t.Error("slot 2 should be free")
	}
	if !c.Unplace(2) {
		t.Error("Unplace failed")
	}
	if !c.CanPlaceOp(0, ddg.OpALU, 10) {
		t.Error("released slot should accept a new op at an aliasing cycle")
	}
	if c.Unplace(2) {
		t.Error("double Unplace should report false")
	}
}

func TestCycleFSUnitSelection(t *testing.T) {
	m := machine.NewBusedFS(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 1)
	if !c.PlaceOp(0, 0, ddg.OpALU, 0) || !c.PlaceOp(1, 0, ddg.OpShift, 0) {
		t.Fatal("two integer units should take two integer ops")
	}
	if c.CanPlaceOp(0, ddg.OpBranch, 0) {
		t.Error("third integer op must not fit")
	}
	if !c.CanPlaceOp(0, ddg.OpFMul, 0) {
		t.Error("float unit should still be free")
	}
	if !c.PlaceOp(2, 0, ddg.OpFMul, 1) {
		t.Error("cycle 1 aliases slot 0 at II=1 and the float unit is free there")
	}
}

func TestCyclePlaceOpDuplicatePanics(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 2)
	c.PlaceOp(0, 0, ddg.OpALU, 0)
	defer func() {
		if recover() == nil {
			t.Error("placing the same node twice should panic")
		}
	}()
	c.PlaceOp(0, 0, ddg.OpALU, 1)
}

func TestCycleBroadcastCopy(t *testing.T) {
	m := machine.NewBusedGP(3, 1, 1)
	c := NewCycle(m, 2)

	if !c.PlaceCopy(10, 0, []int{1, 2}, 0) {
		t.Fatal("copy should fit")
	}
	// Bus is single: another copy at the same slot must fail, even from
	// another cluster.
	if c.CanPlaceCopy(1, []int{2}, 2) {
		t.Error("bus slot 0 should be taken (cycle 2 aliases it)")
	}
	if !c.CanPlaceCopy(1, []int{2}, 1) {
		t.Error("bus slot 1 should be free")
	}
	// Write port of cluster 1 at slot 0 is taken.
	if c.CanPlaceCopy(2, []int{1}, 0) {
		t.Error("write port on cluster 1 at slot 0 should be taken")
	}
	c.Unplace(10)
	if !c.CanPlaceCopy(2, []int{1}, 0) {
		t.Error("unplace should release bus, read and write ports")
	}
}

func TestCycleCopyMultipleTargetsNeedDistinctWritePorts(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCycle(m, 1)
	// Two targets on the same cluster pool need two write ports; only 1.
	if c.CanPlaceCopy(0, []int{1, 1}, 0) {
		t.Error("two writes into one single-ported cluster at one cycle")
	}
}

func TestCycleLinkCopy(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCycle(m, 2)
	if !c.PlaceCopy(5, 0, []int{1}, 0) {
		t.Fatal("link copy should fit")
	}
	if c.CanPlaceCopy(1, []int{0}, 0) {
		t.Error("link 0-1 at slot 0 should be busy (both directions share it)")
	}
	if !c.CanPlaceCopy(1, []int{0}, 1) {
		t.Error("link 0-1 at slot 1 should be free")
	}
	if c.CanPlaceCopy(0, []int{3}, 1) {
		t.Error("copy to a non-adjacent cluster must be rejected")
	}
	if c.CanPlaceCopy(0, []int{1, 2}, 1) {
		t.Error("point-to-point copies must have exactly one target")
	}
}

func TestCycleConflictsAt(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 1)
	for i := 0; i < 4; i++ {
		c.PlaceOp(i, 0, ddg.OpALU, 0)
	}
	conflicts := c.ConflictsAt(0, ddg.OpFAdd, 3)
	if len(conflicts) != 4 {
		t.Errorf("ConflictsAt = %v, want all four occupants", conflicts)
	}
}

func TestCycleCopyConflictsAt(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCycle(m, 1)
	c.PlaceCopy(7, 0, []int{1}, 0)
	conflicts := c.CopyConflictsAt(0, []int{1}, 0)
	if len(conflicts) != 1 || conflicts[0] != 7 {
		t.Errorf("CopyConflictsAt = %v, want [7]", conflicts)
	}
}

func TestCyclePlacementOf(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 4)
	c.PlaceOp(3, 0, ddg.OpLoad, 9)
	p := c.PlacementOf(3)
	if p == nil || p.Cycle != 9 || p.Cluster != 0 {
		t.Errorf("PlacementOf = %+v", p)
	}
	if c.PlacementOf(99) != nil {
		t.Error("PlacementOf unknown node should be nil")
	}
}

func TestCycleStringShowsOccupancy(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	c := NewCycle(m, 2)
	c.PlaceOp(42, 0, ddg.OpALU, 1)
	s := c.String()
	if !strings.Contains(s, "42") || !strings.Contains(s, "c0.gp") {
		t.Errorf("String() missing occupant:\n%s", s)
	}
}

func TestCycleNegativeCycles(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCycle(m, 3)
	// Cycle -1 occupies slot 2 (SMS places against successors and may
	// go negative before normalization).
	if !c.PlaceOp(0, 0, ddg.OpALU, -1) {
		t.Fatal("negative cycle placement failed")
	}
	for i := 1; i < 4; i++ {
		c.PlaceOp(i, 0, ddg.OpALU, 2)
	}
	if c.CanPlaceOp(0, ddg.OpALU, -4) {
		t.Error("slot 2 should be full; -4 aliases it")
	}
}
