package mrt

import (
	"clustersched/internal/ddg"
)

// Op describes one schedulable operation to the unified resource-probe
// API. Both table fidelities consume the same description: the
// cluster-assignment phase probes a Capacity table (ignoring cycles),
// the modulo schedulers probe a Cycle table at concrete cycles.
//
// For ordinary operations Kind is the operation kind and Cluster the
// executing cluster; Targets must be nil. For copies Kind is
// ddg.OpCopy, Cluster the source cluster (whose read port the copy
// consumes), and Targets the destination clusters — exactly one,
// adjacent to Cluster, on point-to-point machines.
//
// Targets may alias a caller-owned buffer: the tables snapshot what
// they need (journals copy targets into their own slab), so the caller
// is free to reuse the buffer after the call returns.
type Op struct {
	Node    int
	Kind    ddg.OpKind
	Cluster int
	Targets []int
}

// OpAt builds the Op describing an ordinary (non-copy) operation.
//
//schedvet:alloc-free
func OpAt(node, cluster int, kind ddg.OpKind) Op {
	return Op{Node: node, Kind: kind, Cluster: cluster}
}

// CopyAt builds the Op describing a copy sourced on cluster src.
//
//schedvet:alloc-free
func CopyAt(node, src int, targets []int) Op {
	return Op{Node: node, Kind: ddg.OpCopy, Cluster: src, Targets: targets}
}

// Table is the probe surface shared by both fidelities. Probes are
// side-effect free; commits reserve resources and report false without
// changes when they do not fit; releases undo a commit. The cycle
// argument selects the modulo slot on a Cycle table and is ignored by
// Capacity, which counts slot-cycles without knowing cycles yet.
type Table interface {
	II() int
	ProbeOp(op Op, cycle int) bool
	CommitOp(op Op, cycle int) bool
	ReleaseOp(op Op) bool

	EnableJournal()
	JournalMark() int
	JournalRollback(mark int)
	JournalReset()
}

// Compile-time checks that both fidelities implement the probe surface.
var (
	_ Table = (*Capacity)(nil)
	_ Table = (*Cycle)(nil)
)
