package mrt

import (
	"sync"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// plan holds the structural, II-invariant tables both fidelities derive
// from a machine description: the Capacity charge plan (classOf/occOf
// plus link topology) and the Cycle bitset geometry (compatibility
// masks, instance masks, owner-row bases). Deriving them walks every
// cluster's unit list per operation kind and the link list per cluster
// pair — work that is identical for every table of the same machine —
// so plans are built once per Config and shared. All slices are
// read-only after construction.
type plan struct {
	nc int

	// Capacity charge plan.
	classOf []int8  // [cl*NumOpKinds+k] -> FU class charged, or -1
	occOf   []int   // [k] -> function-unit occupancy (slot-cycles)
	fuCnt   []int   // [cl*numFU+class] -> unit count
	linkTab []int   // [src*nc+dst] -> link index, or -1
	linksAt [][]int // [cl] -> incident link indices

	// Cycle bitset geometry.
	compat    []uint64 // [cl*NumOpKinds+k] -> mask of units that can run k
	linkTab32 []int32  // [src*nc+dst] -> link index, or -1
	fuAll     []uint64 // [cl] -> mask of all units
	readAll   []uint64 // [cl] -> mask of all read ports
	writeAll  []uint64 // [cl] -> mask of all write ports
	busAll    uint64
	linkAll   uint64
	fuBase    []int32 // [cl] -> global owner-row base of the cluster's units
	rdBase    []int32
	wrBase    []int32
	busBase   int32
	linkBase  int32
	rows      int // total owner rows
}

// planCache memoizes planOf per Config. Bounded like the machine
// topology cache: when full it is dropped wholesale, so sweeps over
// generated configurations cannot pin memory forever.
var planCache struct {
	sync.Mutex
	m map[*machine.Config]*plan
}

const planCacheLimit = 128

// planOf returns the structural plan of m, derived on first use and
// cached by configuration identity. The configuration must not be
// mutated after the first table is built on it.
func planOf(m *machine.Config) *plan {
	planCache.Lock()
	if p, ok := planCache.m[m]; ok {
		planCache.Unlock()
		return p
	}
	planCache.Unlock()

	p := buildPlan(m)

	planCache.Lock()
	if len(planCache.m) >= planCacheLimit {
		planCache.m = nil
	}
	if planCache.m == nil {
		planCache.m = make(map[*machine.Config]*plan, planCacheLimit)
	}
	planCache.m[m] = p
	planCache.Unlock()
	return p
}

func buildPlan(m *machine.Config) *plan {
	nc := m.NumClusters()
	p := &plan{nc: nc}

	p.occOf = make([]int, ddg.NumOpKinds)
	for k := 0; k < ddg.NumOpKinds; k++ {
		p.occOf[k] = m.Occupancy(ddg.OpKind(k))
	}

	// Charge plan: resolve (cluster, kind) to the charged FU class once.
	// The specialized class wins when the cluster has such units,
	// otherwise the general-purpose pool when it can execute the kind.
	p.classOf = make([]int8, nc*ddg.NumOpKinds)
	p.fuCnt = make([]int, nc*numFU)
	p.compat = make([]uint64, nc*ddg.NumOpKinds)
	p.fuAll = make([]uint64, nc)
	p.readAll = make([]uint64, nc)
	p.writeAll = make([]uint64, nc)
	p.fuBase = make([]int32, nc)
	p.rdBase = make([]int32, nc)
	p.wrBase = make([]int32, nc)
	var count [numFU]int
	rows := 0
	for cl := 0; cl < nc; cl++ {
		cfg := &m.Clusters[cl]
		for i := range count {
			count[i] = 0
		}
		for u, fu := range cfg.FUs {
			count[fu]++
			for k := 0; k < ddg.NumOpKinds; k++ {
				if fu.CanExecute(ddg.OpKind(k)) {
					p.compat[cl*ddg.NumOpKinds+k] |= 1 << uint(u)
				}
			}
		}
		copy(p.fuCnt[cl*numFU:(cl+1)*numFU], count[:])
		for k := 0; k < ddg.NumOpKinds; k++ {
			kind := ddg.OpKind(k)
			cls := int8(-1)
			if want := machine.RequiredClass(kind); count[want] > 0 {
				cls = int8(want)
			} else if count[machine.FUGeneral] > 0 && machine.FUGeneral.CanExecute(kind) {
				cls = int8(machine.FUGeneral)
			}
			p.classOf[cl*ddg.NumOpKinds+k] = cls
		}
		p.fuAll[cl] = allMask(len(cfg.FUs))
		p.readAll[cl] = allMask(cfg.ReadPorts)
		p.writeAll[cl] = allMask(cfg.WritePorts)
		p.fuBase[cl] = int32(rows)
		rows += len(cfg.FUs)
		p.rdBase[cl] = int32(rows)
		rows += cfg.ReadPorts
		p.wrBase[cl] = int32(rows)
		rows += cfg.WritePorts
	}
	p.busAll = allMask(m.Buses)
	p.linkAll = allMask(len(m.Links))
	p.busBase = int32(rows)
	rows += m.Buses
	p.linkBase = int32(rows)
	rows += len(m.Links)
	p.rows = rows

	p.linkTab = make([]int, nc*nc)
	p.linkTab32 = make([]int32, nc*nc)
	p.linksAt = make([][]int, nc)
	for i := 0; i < nc; i++ {
		p.linksAt[i] = m.LinksAt(i)
		for j := 0; j < nc; j++ {
			li := m.LinkBetween(i, j)
			p.linkTab[i*nc+j] = li
			p.linkTab32[i*nc+j] = int32(li)
		}
	}
	return p
}
