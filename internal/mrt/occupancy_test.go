package mrt

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// nonPipelinedMachine marks FP divide and sqrt as holding their unit
// for the whole 9-cycle latency.
func nonPipelinedMachine() *machine.Config {
	m := machine.NewUnifiedGP(4)
	m.NonPipelined[ddg.OpFDiv] = true
	m.NonPipelined[ddg.OpFSqrt] = true
	return m
}

func TestCapacityNonPipelinedOccupancy(t *testing.T) {
	m := nonPipelinedMachine()
	c := NewCapacity(m, 9) // 4 units x 9 slots = 36 slot-cycles

	if !c.CommitOp(OpAt(0, 0, ddg.OpFDiv), 0) {
		t.Fatal("first divide should fit")
	}
	if got := c.FreeSlots(0); got != 27 {
		t.Errorf("FreeSlots = %d, want 27 (divide holds 9 slot-cycles)", got)
	}
	for i := 0; i < 3; i++ {
		if !c.CommitOp(OpAt(i+1, 0, ddg.OpFDiv), 0) {
			t.Fatalf("divide %d should fit (one per unit)", i+2)
		}
	}
	if c.CommitOp(OpAt(5, 0, ddg.OpFDiv), 0) {
		t.Error("fifth divide placed with four units fully held")
	}
	c.ReleaseOp(OpAt(0, 0, ddg.OpFDiv))
	if !c.ProbeOp(OpAt(5, 0, ddg.OpFDiv), 0) {
		t.Error("released occupancy not reusable")
	}
}

func TestCapacityRejectsOccupancyBeyondII(t *testing.T) {
	m := nonPipelinedMachine()
	c := NewCapacity(m, 4) // divide occupancy 9 > II 4
	if c.ProbeOp(OpAt(0, 0, ddg.OpFDiv), 0) {
		t.Error("an op cannot hold a unit longer than the II")
	}
	if !c.ProbeOp(OpAt(0, 0, ddg.OpFMul), 0) {
		t.Error("pipelined ops unaffected")
	}
}

func TestCycleNonPipelinedBlocksWindow(t *testing.T) {
	m := nonPipelinedMachine()
	// Shrink to one unit to make the window visible.
	m.Clusters[0].FUs = m.Clusters[0].FUs[:1]
	c := NewCycle(m, 12)

	if !c.CommitOp(OpAt(0, 0, ddg.OpFDiv), 2) {
		t.Fatal("divide should place at cycle 2")
	}
	// The unit is busy slots 2..10.
	for _, cyc := range []int{2, 5, 10} {
		if c.ProbeOp(OpAt(9, 0, ddg.OpALU), cyc) {
			t.Errorf("slot %d should be held by the divide", cyc)
		}
	}
	for _, cyc := range []int{0, 1, 11} {
		if !c.ProbeOp(OpAt(9, 0, ddg.OpALU), cyc) {
			t.Errorf("slot %d should be free", cyc)
		}
	}
	// Wrap-around: a divide at cycle 8 of II=12 holds slots 8..11,0..4.
	c.ReleaseOp(Op{Node: 0})
	if !c.CommitOp(OpAt(1, 0, ddg.OpFDiv), 8) {
		t.Fatal("divide should place at cycle 8")
	}
	if c.ProbeOp(OpAt(9, 0, ddg.OpALU), 1) {
		t.Error("wrap-around slot 1 should be held")
	}
	if !c.ProbeOp(OpAt(9, 0, ddg.OpALU), 6) {
		t.Error("slot 6 should be free")
	}
	// Release frees the whole window.
	c.ReleaseOp(Op{Node: 1})
	for s := 0; s < 12; s++ {
		if !c.ProbeOp(OpAt(9, 0, ddg.OpALU), s) {
			t.Errorf("slot %d not released", s)
		}
	}
}

func TestCycleConflictsOfCoverWindow(t *testing.T) {
	m := nonPipelinedMachine()
	m.Clusters[0].FUs = m.Clusters[0].FUs[:1]
	c := NewCycle(m, 10)
	c.CommitOp(OpAt(7, 0, ddg.OpALU), 3)
	// A divide at cycle 0 would span slots 0..8, conflicting with the
	// ALU at slot 3.
	conflicts := c.ConflictsOf(OpAt(0, 0, ddg.OpFDiv), 0, nil)
	if len(conflicts) != 1 || conflicts[0] != 7 {
		t.Errorf("ConflictsOf = %v, want [7]", conflicts)
	}
}
