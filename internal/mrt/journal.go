package mrt

import "clustersched/internal/ddg"

// Journal records probe-API mutations (CommitOp/ReleaseOp) so a span of
// tentative placements can be undone with JournalRollback. It is the
// single journaling mechanism shared by both fidelities: each table
// embeds a Journal and replays its own events in reverse through
// internal, unjournaled mutators. Journaling is off by default; tables
// that never enable it pay one predictable branch per mutation.
//
// Events snapshot everything a rollback needs into journal-owned
// storage (the target slab), so callers may freely reuse Op.Targets
// buffers after a commit or release returns.
type Journal struct {
	journaling bool
	events     []journalEvent
	slab       []int32 // snapshot storage referenced by tOff/tLen spans
}

// journalEvent is one journaled mutation. Capacity events carry the op
// description (node, kind, cluster, targets) needed to invert the
// counter charges. Cycle release events additionally record the exact
// resource rows the placement held, so undoing the release restores the
// identical table state — not merely an equivalent occupancy count.
type journalEvent struct {
	release bool // true: a ReleaseOp (undo = re-commit)
	node    int32
	kind    int32 // ddg.OpKind
	cluster int32
	cycle   int32

	// Cycle-only exact-restore attribution (zero for Capacity events).
	fuUnit    int32
	readPort  int32
	busIndex  int32
	linkIndex int32
	occupancy int32

	// Span of Journal.slab: target clusters (Capacity) or interleaved
	// (cluster, port) write-slot pairs (Cycle release events).
	tOff, tLen int32
}

// EnableJournal turns on mutation journaling: every subsequent commit
// or release is recorded so a span of tentative placements can be
// undone with JournalRollback.
func (j *Journal) EnableJournal() {
	j.journaling = true
	j.events = j.events[:0]
	j.slab = j.slab[:0]
}

// JournalMark returns the current journal position, to be passed to
// JournalRollback to undo everything recorded after this point.
//
//schedvet:alloc-free
func (j *Journal) JournalMark() int { return len(j.events) }

// JournalReset discards the journal without undoing anything, making
// all mutations recorded so far permanent. The backing arrays are
// kept, so a reset-mutate-rollback cycle settles into zero allocations.
//
//schedvet:alloc-free
func (j *Journal) JournalReset() {
	j.events = j.events[:0]
	j.slab = j.slab[:0]
}

// record appends one event, snapshotting span into the journal's slab.
// It returns a pointer into the events array, valid until the next
// append, so callers can fill in fidelity-specific attribution.
//
//schedvet:alloc-free
func (j *Journal) record(op Op, cycle int, release bool, span []int) *journalEvent {
	off := int32(len(j.slab))
	for _, t := range span {
		j.slab = append(j.slab, int32(t))
	}
	j.events = append(j.events, journalEvent{
		release: release,
		node:    int32(op.Node),
		kind:    int32(op.Kind),
		cluster: int32(op.Cluster),
		cycle:   int32(cycle),
		tOff:    off,
		tLen:    int32(len(j.slab)) - off,
	})
	return &j.events[len(j.events)-1]
}

// span returns the slab snapshot of event ev.
//
//schedvet:alloc-free
func (j *Journal) span(ev *journalEvent) []int32 {
	return j.slab[ev.tOff : ev.tOff+ev.tLen]
}

// truncate drops every event at or after mark, together with its slab
// storage. Rollback loops call it after replaying the events.
//
//schedvet:alloc-free
func (j *Journal) truncate(mark int) {
	if mark < len(j.events) {
		j.slab = j.slab[:j.events[mark].tOff]
	}
	j.events = j.events[:mark]
}

// eventOp rebuilds the Op described by event ev, with Targets aliasing
// the scratch buffer buf (filled from the slab snapshot).
//
//schedvet:alloc-free
func (j *Journal) eventOp(ev *journalEvent, buf []int) (Op, []int) {
	buf = buf[:0]
	for _, t := range j.span(ev) {
		buf = append(buf, int(t))
	}
	op := Op{
		Node:    int(ev.node),
		Kind:    ddg.OpKind(ev.kind),
		Cluster: int(ev.cluster),
	}
	if op.Kind == ddg.OpCopy {
		op.Targets = buf
	}
	return op, buf
}
