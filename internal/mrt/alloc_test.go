package mrt

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// Steady-state allocation gates for the probe API: after a warm-up
// pass that sizes the journal, placement arena, and scratch buffers,
// probe/commit/release/rollback must not allocate on either fidelity.

func TestCapacityHotPathAllocFree(t *testing.T) {
	m := machine.NewBusedGP(3, 2, 2)
	c := NewCapacity(m, 4)
	c.EnableJournal()
	op := OpAt(0, 0, ddg.OpALU)
	cp := CopyAt(1, 0, []int{1, 2})

	work := func() {
		mark := c.JournalMark()
		c.CommitOp(op, 0)
		c.CommitOp(cp, 0)
		c.ReleaseOp(cp)
		c.JournalRollback(mark)
	}
	work() // warm the journal slabs

	if n := testing.AllocsPerRun(200, func() {
		if !c.ProbeOp(op, 0) || !c.ProbeOp(cp, 0) {
			t.Fatal("probes should succeed on an empty table")
		}
	}); n != 0 {
		t.Errorf("Capacity.ProbeOp allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, work); n != 0 {
		t.Errorf("Capacity commit/release/rollback allocates %.1f/op, want 0", n)
	}
}

func TestCycleHotPathAllocFree(t *testing.T) {
	m := machine.NewBusedGP(3, 2, 2)
	c := NewCycle(m, 4)
	c.EnableJournal()
	op := OpAt(0, 0, ddg.OpALU)
	cp := CopyAt(1, 0, []int{1, 2})
	buf := make([]int, 0, 16)

	work := func() {
		mark := c.JournalMark()
		c.CommitOp(op, 1)
		c.CommitOp(cp, 2)
		c.ReleaseOp(Op{Node: 1})
		c.JournalRollback(mark)
	}
	work() // warm placements, arena, journal slabs

	if n := testing.AllocsPerRun(200, func() {
		if !c.ProbeOp(op, 1) || !c.ProbeOp(cp, 2) {
			t.Fatal("probes should succeed on an empty table")
		}
	}); n != 0 {
		t.Errorf("Cycle.ProbeOp allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, work); n != 0 {
		t.Errorf("Cycle commit/release/rollback allocates %.1f/op, want 0", n)
	}
	c.CommitOp(op, 1)
	if n := testing.AllocsPerRun(200, func() {
		buf = c.ConflictsOf(op, 1, buf)
	}); n != 0 {
		t.Errorf("Cycle.ConflictsOf allocates %.1f/op, want 0", n)
	}
}
