package mrt

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func TestCapacityFUCounting(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1) // 4 GP per cluster
	c := NewCapacity(m, 2)           // 8 slot-cycles per cluster

	for i := 0; i < 8; i++ {
		if !c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) {
			t.Fatalf("placement %d should fit (capacity 8)", i)
		}
	}
	if c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) {
		t.Error("ninth op placed beyond capacity")
	}
	if c.ProbeOp(OpAt(0, 0, ddg.OpLoad), 0) {
		t.Error("full cluster reported free")
	}
	if !c.ProbeOp(OpAt(0, 1, ddg.OpLoad), 0) {
		t.Error("other cluster should be free")
	}
	c.ReleaseOp(OpAt(0, 0, ddg.OpALU))
	if !c.ProbeOp(OpAt(0, 0, ddg.OpFAdd), 0) {
		t.Error("freed slot not reusable")
	}
	if got := c.FreeSlots(1); got != 8 {
		t.Errorf("FreeSlots(1) = %d, want 8", got)
	}
}

func TestCapacityFSChargesSpecializedClass(t *testing.T) {
	m := machine.NewBusedFS(1, 1, 1) // mem, int, int, fp
	m.Buses = 0                      // single cluster needs no bus
	c := NewCapacity(m, 1)

	if !c.CommitOp(OpAt(0, 0, ddg.OpLoad), 0) {
		t.Fatal("load should fit the memory unit")
	}
	if c.CommitOp(OpAt(0, 0, ddg.OpStore), 0) {
		t.Error("second memory op placed with one memory unit at II=1")
	}
	// Integer pool is independent: two units.
	if !c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) || !c.CommitOp(OpAt(0, 0, ddg.OpShift), 0) {
		t.Error("two integer ops should fit")
	}
	if c.CommitOp(OpAt(0, 0, ddg.OpBranch), 0) {
		t.Error("third integer op placed with two integer units at II=1")
	}
	if c.ChargeClass(0, ddg.OpFMul) != machine.FUFloat {
		t.Error("FP op should charge the float class on FS clusters")
	}
}

func TestCapacityGPChargesGeneralPool(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCapacity(m, 1)
	if c.ChargeClass(0, ddg.OpLoad) != machine.FUGeneral {
		t.Error("loads on a GP cluster charge the general pool")
	}
}

func TestBroadcastCopyAccounting(t *testing.T) {
	m := machine.NewBusedGP(3, 2, 1)
	c := NewCapacity(m, 1) // 1 read, 1 write slot per cluster, 2 bus slots

	if !c.CommitOp(CopyAt(0, 0, []int{1, 2}), 0) {
		t.Fatal("first copy should fit")
	}
	if c.FreeReadPortSlots(0) != 0 || c.FreeWritePortSlots(1) != 0 || c.FreeWritePortSlots(2) != 0 {
		t.Error("copy did not consume the expected ports")
	}
	if c.FreeBusSlots() != 1 {
		t.Errorf("FreeBusSlots = %d, want 1", c.FreeBusSlots())
	}
	// Second copy from cluster 0 fails: read port exhausted.
	if c.CommitOp(CopyAt(0, 0, nil), 0) {
		t.Error("copy placed without read port")
	}
	// From cluster 1, targeting cluster 2 fails on 2's write port.
	if c.CommitOp(CopyAt(0, 1, []int{2}), 0) {
		t.Error("copy placed without target write port")
	}
	// From cluster 1 with no extra target: fits (bus + read port left).
	if !c.CommitOp(CopyAt(0, 1, nil), 0) {
		t.Error("bus copy without targets should fit")
	}
	// Bus pool now empty.
	if c.CommitOp(CopyAt(0, 2, nil), 0) {
		t.Error("copy placed without bus")
	}
	c.ReleaseOp(CopyAt(0, 0, []int{1, 2}))
	if c.FreeReadPortSlots(0) != 1 || c.FreeBusSlots() != 1 {
		t.Error("removal did not release resources")
	}
}

func TestCopyWritePortBudget(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCapacity(m, 2)
	// Cluster 1 has 1 write port x II=2 slot-cycles.
	if !c.CommitOp(CopyAt(0, 0, []int{1}), 0) {
		t.Fatal("copy should fit")
	}
	if !c.CommitOp(CopyAt(1, 0, []int{1}), 0) {
		t.Fatal("second write slot on cluster 1 should exist at II=2")
	}
	if c.CommitOp(CopyAt(2, 0, []int{1}), 0) {
		t.Error("third write beyond capacity")
	}
	c.ReleaseOp(CopyAt(1, 0, []int{1}))
	if c.FreeWritePortSlots(1) != 1 {
		t.Error("released write slot not reusable")
	}
}

func TestLinkCopyAccounting(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCapacity(m, 1)
	li := m.LinkBetween(0, 1)

	if !c.CommitOp(CopyAt(0, 0, []int{1}), 0) {
		t.Fatal("link copy should fit")
	}
	if c.FreeLinkSlots(li) != 0 {
		t.Error("link slot not consumed")
	}
	if c.CommitOp(CopyAt(0, 1, []int{0}), 0) {
		t.Error("link reused within the same II slot budget")
	}
	// The other link at cluster 0 is free, but 0's read port is gone.
	if c.CommitOp(CopyAt(0, 0, []int{2}), 0) {
		t.Error("copy placed without read port")
	}
	c.ReleaseOp(CopyAt(0, 0, []int{1}))
	if !c.CommitOp(CopyAt(0, 0, []int{2}), 0) {
		t.Error("released resources not reusable")
	}
}

func TestMaxReservableCopies(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 3) // read 3/cluster, bus 6
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3 (read ports bind)", got)
	}
	// Consume bus slots from the other cluster until the bus binds.
	for i := 0; i < 3; i++ {
		if !c.CommitOp(CopyAt(0, 1, nil), 0) {
			t.Fatal("bus copy should fit")
		}
	}
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3 (buses: 6-3=3)", got)
	}
	c.CommitOp(CopyAt(0, 0, nil), 0)
	if got := c.MaxReservableCopies(0); got != 2 {
		t.Errorf("MRC = %d, want 2", got)
	}
}

func TestMaxReservableCopiesGrid(t *testing.T) {
	m := machine.NewGrid4(2)
	c := NewCapacity(m, 2)
	// Read ports: 2*2=4; incident links: 2 links * 2 slots = 4.
	if got := c.MaxReservableCopies(0); got != 4 {
		t.Errorf("MRC = %d, want 4", got)
	}
	c.CommitOp(CopyAt(0, 0, []int{1}), 0)
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3", got)
	}
}

func TestCapacityCloneIsIndependent(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 2)
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	c.CommitOp(CopyAt(0, 0, []int{1}), 0)

	d := c.Clone()
	d.CommitOp(OpAt(1, 0, ddg.OpALU), 0)
	d.CommitOp(CopyAt(1, 1, []int{0}), 0)

	if c.FreeOpSlots(0, ddg.OpALU) != 7 {
		t.Error("clone mutated original FU counters")
	}
	if c.FreeReadPortSlots(1) != 2 {
		t.Error("clone mutated original port counters")
	}
}

func TestCapacityCopyFromRestores(t *testing.T) {
	m := machine.NewGrid4(1)
	base := NewCapacity(m, 2)
	base.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	base.CommitOp(CopyAt(1, 0, []int{1}), 0)
	want := snapshot(base, m)

	c := NewCapacity(m, 5) // different II: CopyFrom re-sizes
	c.CommitOp(OpAt(7, 3, ddg.OpFMul), 0)
	c.CopyFrom(base)
	if c.II() != 2 {
		t.Errorf("II after CopyFrom = %d, want 2", c.II())
	}
	if got := snapshot(c, m); !equalInts(got, want) {
		t.Errorf("CopyFrom state %v, want %v", got, want)
	}
	// The restored table keeps working independently.
	c.ReleaseOp(CopyAt(1, 0, []int{1}))
	if equalInts(snapshot(base, m), snapshot(c, m)) {
		t.Error("CopyFrom aliases the source's counters")
	}
}

func TestCapacityPanicsOnUnderflow(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 1)
	defer func() {
		if recover() == nil {
			t.Error("ReleaseOp on empty table should panic")
		}
	}()
	c.ReleaseOp(OpAt(0, 0, ddg.OpALU))
}

func TestNewCapacityPanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on II=0")
		}
	}()
	NewCapacity(machine.NewBusedGP(2, 2, 1), 0)
}

// snapshot captures every externally visible counter of a table, for
// comparing states across journal rollbacks.
func snapshot(c *Capacity, m *machine.Config) []int {
	var s []int
	for cl := 0; cl < m.NumClusters(); cl++ {
		s = append(s, c.FreeSlots(cl), c.FreeReadPortSlots(cl), c.FreeWritePortSlots(cl),
			c.MaxReservableCopies(cl), c.MaxReservableIncoming(cl))
	}
	s = append(s, c.FreeBusSlots())
	for li := range m.Links {
		s = append(s, c.FreeLinkSlots(li))
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJournalRollbackRestoresState(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 2)
	c.EnableJournal()

	if !c.CommitOp(OpAt(0, 0, ddg.OpALU), 0) || !c.CommitOp(CopyAt(1, 0, []int{1}), 0) {
		t.Fatal("committed placements should fit")
	}
	c.JournalReset() // make them permanent
	base := snapshot(c, m)

	mark := c.JournalMark()
	if !c.CommitOp(OpAt(2, 1, ddg.OpFMul), 0) {
		t.Fatal("tentative op should fit")
	}
	if !c.CommitOp(CopyAt(3, 1, []int{0}), 0) {
		t.Fatal("tentative copy should fit")
	}
	c.ReleaseOp(CopyAt(1, 0, []int{1})) // mixed direction: removal is journaled too
	if equalInts(snapshot(c, m), base) {
		t.Fatal("tentative mutations should have changed the counters")
	}
	c.JournalRollback(mark)
	if got := snapshot(c, m); !equalInts(got, base) {
		t.Errorf("rollback state %v, want %v", got, base)
	}
}

func TestJournalNestedMarks(t *testing.T) {
	m := machine.NewGrid4(2)
	c := NewCapacity(m, 3)
	c.EnableJournal()

	s0 := snapshot(c, m)
	m1 := c.JournalMark()
	c.CommitOp(CopyAt(0, 0, []int{1}), 0)
	s1 := snapshot(c, m)
	m2 := c.JournalMark()
	c.CommitOp(CopyAt(1, 1, []int{3}), 0)
	c.CommitOp(OpAt(2, 3, ddg.OpALU), 0)

	c.JournalRollback(m2)
	if got := snapshot(c, m); !equalInts(got, s1) {
		t.Errorf("inner rollback state %v, want %v", got, s1)
	}
	c.JournalRollback(m1)
	if got := snapshot(c, m); !equalInts(got, s0) {
		t.Errorf("outer rollback state %v, want %v", got, s0)
	}
}

func TestResetClearsUsageAndJournal(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCapacity(m, 2)
	c.EnableJournal()
	fresh := snapshot(c, m)

	c.CommitOp(OpAt(0, 0, ddg.OpALU), 0)
	c.CommitOp(CopyAt(1, 0, []int{1}), 0)
	c.Reset()
	if got := snapshot(c, m); !equalInts(got, fresh) {
		t.Errorf("post-Reset state %v, want fresh %v", got, fresh)
	}
	if c.JournalMark() != 0 {
		t.Errorf("JournalMark after Reset = %d, want 0", c.JournalMark())
	}
}

func TestCloneDoesNotInheritJournal(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCapacity(m, 1)
	c.EnableJournal()
	c.CommitOp(OpAt(0, 0, ddg.OpALU), 0)

	n := c.Clone()
	if n.JournalMark() != 0 {
		t.Errorf("clone journal mark = %d, want 0 (fresh journal)", n.JournalMark())
	}
	// Mutating the clone must not journal into (or disturb) the parent.
	n.CommitOp(OpAt(1, 1, ddg.OpALU), 0)
	c.JournalRollback(0)
	if !n.ProbeOp(OpAt(2, 0, ddg.OpALU), 0) {
		t.Error("parent rollback leaked into the clone")
	}
}

// TestJournalSnapshotsTargets pins the aliasing contract: the journal
// must snapshot Op.Targets, so rollback is correct even when the caller
// rewrites the target buffer after the commit or release returns.
func TestJournalSnapshotsTargets(t *testing.T) {
	m := machine.NewBusedGP(3, 2, 1)
	c := NewCapacity(m, 2)
	c.EnableJournal()
	base := snapshot(c, m)

	tgts := []int{1, 2}
	c.CommitOp(CopyAt(0, 0, tgts), 0)
	tgts[0], tgts[1] = 2, 2 // caller reuses the buffer
	c.JournalRollback(0)
	if got := snapshot(c, m); !equalInts(got, base) {
		t.Errorf("rollback after buffer reuse %v, want %v", got, base)
	}
}
