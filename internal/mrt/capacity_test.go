package mrt

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

func TestCapacityFUCounting(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1) // 4 GP per cluster
	c := NewCapacity(m, 2)           // 8 slot-cycles per cluster

	for i := 0; i < 8; i++ {
		if !c.PlaceOp(0, ddg.OpALU) {
			t.Fatalf("placement %d should fit (capacity 8)", i)
		}
	}
	if c.PlaceOp(0, ddg.OpALU) {
		t.Error("ninth op placed beyond capacity")
	}
	if c.CanPlaceOp(0, ddg.OpLoad) {
		t.Error("full cluster reported free")
	}
	if !c.CanPlaceOp(1, ddg.OpLoad) {
		t.Error("other cluster should be free")
	}
	c.RemoveOp(0, ddg.OpALU)
	if !c.CanPlaceOp(0, ddg.OpFAdd) {
		t.Error("freed slot not reusable")
	}
	if got := c.FreeSlots(1); got != 8 {
		t.Errorf("FreeSlots(1) = %d, want 8", got)
	}
}

func TestCapacityFSChargesSpecializedClass(t *testing.T) {
	m := machine.NewBusedFS(1, 1, 1) // mem, int, int, fp
	m.Buses = 0                      // single cluster needs no bus
	c := NewCapacity(m, 1)

	if !c.PlaceOp(0, ddg.OpLoad) {
		t.Fatal("load should fit the memory unit")
	}
	if c.PlaceOp(0, ddg.OpStore) {
		t.Error("second memory op placed with one memory unit at II=1")
	}
	// Integer pool is independent: two units.
	if !c.PlaceOp(0, ddg.OpALU) || !c.PlaceOp(0, ddg.OpShift) {
		t.Error("two integer ops should fit")
	}
	if c.PlaceOp(0, ddg.OpBranch) {
		t.Error("third integer op placed with two integer units at II=1")
	}
	if c.ChargeClass(0, ddg.OpFMul) != machine.FUFloat {
		t.Error("FP op should charge the float class on FS clusters")
	}
}

func TestCapacityGPChargesGeneralPool(t *testing.T) {
	m := machine.NewBusedGP(1, 1, 1)
	m.Buses = 0
	c := NewCapacity(m, 1)
	if c.ChargeClass(0, ddg.OpLoad) != machine.FUGeneral {
		t.Error("loads on a GP cluster charge the general pool")
	}
}

func TestBroadcastCopyAccounting(t *testing.T) {
	m := machine.NewBusedGP(3, 2, 1)
	c := NewCapacity(m, 1) // 1 read, 1 write slot per cluster, 2 bus slots

	if !c.PlaceBroadcastCopy(0, []int{1, 2}) {
		t.Fatal("first copy should fit")
	}
	if c.FreeReadPortSlots(0) != 0 || c.FreeWritePortSlots(1) != 0 || c.FreeWritePortSlots(2) != 0 {
		t.Error("copy did not consume the expected ports")
	}
	if c.FreeBusSlots() != 1 {
		t.Errorf("FreeBusSlots = %d, want 1", c.FreeBusSlots())
	}
	// Second copy from cluster 0 fails: read port exhausted.
	if c.PlaceBroadcastCopy(0, nil) {
		t.Error("copy placed without read port")
	}
	// From cluster 1, targeting cluster 2 fails on 2's write port.
	if c.PlaceBroadcastCopy(1, []int{2}) {
		t.Error("copy placed without target write port")
	}
	// From cluster 1 with no extra target: fits (bus + read port left).
	if !c.PlaceBroadcastCopy(1, nil) {
		t.Error("bus copy without targets should fit")
	}
	// Bus pool now empty.
	if c.PlaceBroadcastCopy(2, nil) {
		t.Error("copy placed without bus")
	}
	c.RemoveBroadcastCopy(0, []int{1, 2})
	if c.FreeReadPortSlots(0) != 1 || c.FreeBusSlots() != 1 {
		t.Error("removal did not release resources")
	}
}

func TestAddCopyTarget(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCapacity(m, 2)
	if !c.PlaceBroadcastCopy(0, []int{1}) {
		t.Fatal("copy should fit")
	}
	if !c.AddCopyTarget(1) {
		t.Fatal("second write slot on cluster 1 should exist at II=2")
	}
	if c.AddCopyTarget(1) {
		t.Error("third write beyond capacity")
	}
	c.RemoveCopyTarget(1)
	if !c.CanAddCopyTarget(1) {
		t.Error("released write slot not reusable")
	}
}

func TestLinkCopyAccounting(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCapacity(m, 1)
	li := m.LinkBetween(0, 1)

	if !c.PlaceLinkCopy(0, 1, li) {
		t.Fatal("link copy should fit")
	}
	if c.FreeLinkSlots(li) != 0 {
		t.Error("link slot not consumed")
	}
	if c.PlaceLinkCopy(1, 0, li) {
		t.Error("link reused within the same II slot budget")
	}
	// The other link at cluster 0 is free, but 0's read port is gone.
	li02 := m.LinkBetween(0, 2)
	if c.PlaceLinkCopy(0, 2, li02) {
		t.Error("copy placed without read port")
	}
	c.RemoveLinkCopy(0, 1, li)
	if !c.PlaceLinkCopy(0, 2, li02) {
		t.Error("released resources not reusable")
	}
}

func TestMaxReservableCopies(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 3) // read 3/cluster, bus 6
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3 (read ports bind)", got)
	}
	// Consume bus slots from the other cluster until the bus binds.
	for i := 0; i < 3; i++ {
		if !c.PlaceBroadcastCopy(1, nil) {
			t.Fatal("bus copy should fit")
		}
	}
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3 (buses: 6-3=3)", got)
	}
	c.PlaceBroadcastCopy(0, nil)
	if got := c.MaxReservableCopies(0); got != 2 {
		t.Errorf("MRC = %d, want 2", got)
	}
}

func TestMaxReservableCopiesGrid(t *testing.T) {
	m := machine.NewGrid4(2)
	c := NewCapacity(m, 2)
	// Read ports: 2*2=4; incident links: 2 links * 2 slots = 4.
	if got := c.MaxReservableCopies(0); got != 4 {
		t.Errorf("MRC = %d, want 4", got)
	}
	li := m.LinkBetween(0, 1)
	c.PlaceLinkCopy(0, 1, li)
	if got := c.MaxReservableCopies(0); got != 3 {
		t.Errorf("MRC = %d, want 3", got)
	}
}

func TestCapacityCloneIsIndependent(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 2)
	c.PlaceOp(0, ddg.OpALU)
	c.PlaceBroadcastCopy(0, []int{1})

	d := c.Clone()
	d.PlaceOp(0, ddg.OpALU)
	d.PlaceBroadcastCopy(1, []int{0})

	if c.FreeOpSlots(0, ddg.OpALU) != 7 {
		t.Error("clone mutated original FU counters")
	}
	if c.FreeReadPortSlots(1) != 2 {
		t.Error("clone mutated original port counters")
	}
}

func TestCapacityPanicsOnUnderflow(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 1)
	defer func() {
		if recover() == nil {
			t.Error("RemoveOp on empty table should panic")
		}
	}()
	c.RemoveOp(0, ddg.OpALU)
}

func TestNewCapacityPanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on II=0")
		}
	}()
	NewCapacity(machine.NewBusedGP(2, 2, 1), 0)
}

// snapshot captures every externally visible counter of a table, for
// comparing states across journal rollbacks.
func snapshot(c *Capacity, m *machine.Config) []int {
	var s []int
	for cl := 0; cl < m.NumClusters(); cl++ {
		s = append(s, c.FreeSlots(cl), c.FreeReadPortSlots(cl), c.FreeWritePortSlots(cl))
	}
	s = append(s, c.FreeBusSlots())
	for li := range m.Links {
		s = append(s, c.FreeLinkSlots(li))
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJournalRollbackRestoresState(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	c := NewCapacity(m, 2)
	c.EnableJournal()

	if !c.PlaceOp(0, ddg.OpALU) || !c.PlaceBroadcastCopy(0, []int{1}) {
		t.Fatal("committed placements should fit")
	}
	c.JournalReset() // make them permanent
	base := snapshot(c, m)

	mark := c.JournalMark()
	if !c.PlaceOp(1, ddg.OpFMul) {
		t.Fatal("tentative op should fit")
	}
	if !c.PlaceBroadcastCopy(1, []int{0}) {
		t.Fatal("tentative copy should fit")
	}
	c.RemoveBroadcastCopy(0, []int{1}) // mixed direction: removal is journaled too
	if equalInts(snapshot(c, m), base) {
		t.Fatal("tentative mutations should have changed the counters")
	}
	c.JournalRollback(mark)
	if got := snapshot(c, m); !equalInts(got, base) {
		t.Errorf("rollback state %v, want %v", got, base)
	}
}

func TestJournalNestedMarks(t *testing.T) {
	m := machine.NewGrid4(2)
	c := NewCapacity(m, 3)
	c.EnableJournal()

	s0 := snapshot(c, m)
	m1 := c.JournalMark()
	c.PlaceLinkCopy(0, 1, m.LinkBetween(0, 1))
	s1 := snapshot(c, m)
	m2 := c.JournalMark()
	c.PlaceLinkCopy(1, 3, m.LinkBetween(1, 3))
	c.PlaceOp(3, ddg.OpALU)

	c.JournalRollback(m2)
	if got := snapshot(c, m); !equalInts(got, s1) {
		t.Errorf("inner rollback state %v, want %v", got, s1)
	}
	c.JournalRollback(m1)
	if got := snapshot(c, m); !equalInts(got, s0) {
		t.Errorf("outer rollback state %v, want %v", got, s0)
	}
}

func TestResetClearsUsageAndJournal(t *testing.T) {
	m := machine.NewGrid4(1)
	c := NewCapacity(m, 2)
	c.EnableJournal()
	fresh := snapshot(c, m)

	c.PlaceOp(0, ddg.OpALU)
	c.PlaceLinkCopy(0, 1, m.LinkBetween(0, 1))
	c.Reset()
	if got := snapshot(c, m); !equalInts(got, fresh) {
		t.Errorf("post-Reset state %v, want fresh %v", got, fresh)
	}
	if c.JournalMark() != 0 {
		t.Errorf("JournalMark after Reset = %d, want 0", c.JournalMark())
	}
}

func TestCloneDoesNotInheritJournal(t *testing.T) {
	m := machine.NewBusedGP(2, 1, 1)
	c := NewCapacity(m, 1)
	c.EnableJournal()
	c.PlaceOp(0, ddg.OpALU)

	n := c.Clone()
	if n.JournalMark() != 0 {
		t.Errorf("clone journal mark = %d, want 0 (fresh journal)", n.JournalMark())
	}
	// Mutating the clone must not journal into (or disturb) the parent.
	n.PlaceOp(1, ddg.OpALU)
	c.JournalRollback(0)
	if !n.CanPlaceOp(0, ddg.OpALU) {
		t.Error("parent rollback leaked into the clone")
	}
}
