package mrt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// This file model-checks the cycle-exact reservation table against a
// trivially correct reference implementation: a multiset of
// (resource instance class, slot) tokens with plain counting. Any
// divergence between the optimized table and the counting model over a
// random operation sequence is a bug in the table.

// refModel counts occupancy per (kind of resource, index, slot).
type refModel struct {
	m     *machine.Config
	ii    int
	fu    map[[2]int]int // (cluster, slot) -> ops issued (capacity: compatible units)
	read  map[[2]int]int
	write map[[2]int]int
	bus   map[int]int
	link  map[[2]int]int // (link, slot)
	byOp  map[int]refPlacement
}

type refPlacement struct {
	isCopy  bool
	cluster int
	slot    int
	kind    ddg.OpKind
	targets []int
}

func newRefModel(m *machine.Config, ii int) *refModel {
	return &refModel{
		m: m, ii: ii,
		fu:    map[[2]int]int{},
		read:  map[[2]int]int{},
		write: map[[2]int]int{},
		bus:   map[int]int{},
		link:  map[[2]int]int{},
		byOp:  map[int]refPlacement{},
	}
}

// canOp uses plain counting. On homogeneous clusters (all-GP or the
// FS mix with disjoint classes) counting per compatible-unit pool is
// exact.
func (r *refModel) canOp(cl int, k ddg.OpKind, slot int) bool {
	used := 0
	for _, p := range r.byOp {
		if !p.isCopy && p.cluster == cl && p.slot == slot && sameFUPool(r.m, cl, p.kind, k) {
			used++
		}
	}
	return used < r.m.Clusters[cl].FUCountFor(k)
}

// sameFUPool reports whether two kinds compete for the same units on
// the cluster (true for all-GP clusters; class equality for FS).
func sameFUPool(m *machine.Config, cl int, a, b ddg.OpKind) bool {
	// Two kinds share a pool when the unit sets capable of each are
	// identical; with GP/FS clusters the sets are either equal or
	// disjoint.
	for _, fu := range m.Clusters[cl].FUs {
		if fu.CanExecute(a) != fu.CanExecute(b) {
			return false
		}
	}
	return true
}

func (r *refModel) canCopy(src int, targets []int, slot int) bool {
	if r.read[[2]int{src, slot}] >= r.m.Clusters[src].ReadPorts {
		return false
	}
	if r.m.Network == machine.Broadcast {
		if r.bus[slot] >= r.m.Buses {
			return false
		}
	} else {
		if len(targets) != 1 {
			return false
		}
		li := r.m.LinkBetween(src, targets[0])
		if li < 0 || r.link[[2]int{li, slot}] >= 1 {
			return false
		}
	}
	need := map[int]int{}
	for _, t := range targets {
		need[t]++
	}
	for t, n := range need {
		if r.write[[2]int{t, slot}]+n > r.m.Clusters[t].WritePorts {
			return false
		}
	}
	return true
}

func (r *refModel) place(op int, p refPlacement) {
	r.byOp[op] = p
	if p.isCopy {
		r.read[[2]int{p.cluster, p.slot}]++
		if r.m.Network == machine.Broadcast {
			r.bus[p.slot]++
		} else {
			li := r.m.LinkBetween(p.cluster, p.targets[0])
			r.link[[2]int{li, p.slot}]++
		}
		for _, t := range p.targets {
			r.write[[2]int{t, p.slot}]++
		}
	}
}

func (r *refModel) unplace(op int) bool {
	p, ok := r.byOp[op]
	if !ok {
		return false
	}
	delete(r.byOp, op)
	if p.isCopy {
		r.read[[2]int{p.cluster, p.slot}]--
		if r.m.Network == machine.Broadcast {
			r.bus[p.slot]--
		} else {
			li := r.m.LinkBetween(p.cluster, p.targets[0])
			r.link[[2]int{li, p.slot}]--
		}
		for _, t := range p.targets {
			r.write[[2]int{t, p.slot}]--
		}
	}
	return true
}

// TestCycleMatchesCountingModel drives random operation sequences
// through both implementations and requires identical accept/reject
// behaviour throughout.
func TestCycleMatchesCountingModel(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(2, 1, 1),
		machine.NewBusedGP(3, 2, 2),
		machine.NewGrid4(1),
	}
	kinds := []ddg.OpKind{ddg.OpALU, ddg.OpLoad, ddg.OpFMul, ddg.OpStore, ddg.OpBranch}

	f := func(seed int64, mIdx, iiRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machines[int(mIdx)%len(machines)]
		ii := 1 + int(iiRaw)%4
		table := NewCycle(m, ii)
		ref := newRefModel(m, ii)
		nextOp := 0
		var placed []int

		for step := 0; step < 120; step++ {
			switch {
			case len(placed) > 0 && rng.Float64() < 0.3:
				// Unplace a random op.
				i := rng.Intn(len(placed))
				op := placed[i]
				got := table.ReleaseOp(Op{Node: op})
				want := ref.unplace(op)
				if got != want {
					t.Logf("step %d: ReleaseOp(%d) = %v, model %v", step, op, got, want)
					return false
				}
				placed = append(placed[:i], placed[i+1:]...)
			case rng.Float64() < 0.55:
				// Place an ordinary op.
				cl := rng.Intn(m.NumClusters())
				k := kinds[rng.Intn(len(kinds))]
				slot := rng.Intn(ii)
				want := ref.canOp(cl, k, slot)
				got := table.ProbeOp(OpAt(nextOp, cl, k), slot)
				if got != want {
					t.Logf("step %d: ProbeOp(%d,%s,%d) = %v, model %v", step, cl, k, slot, got, want)
					return false
				}
				if got {
					if !table.CommitOp(OpAt(nextOp, cl, k), slot) {
						t.Logf("step %d: CommitOp failed after ProbeOp", step)
						return false
					}
					ref.place(nextOp, refPlacement{cluster: cl, slot: slot, kind: k})
					placed = append(placed, nextOp)
					nextOp++
				}
			default:
				// Place a copy.
				src := rng.Intn(m.NumClusters())
				var targets []int
				if m.Network == machine.Broadcast {
					for c := 0; c < m.NumClusters(); c++ {
						if c != src && rng.Float64() < 0.5 {
							targets = append(targets, c)
						}
					}
					if len(targets) == 0 {
						targets = []int{(src + 1) % m.NumClusters()}
					}
				} else {
					links := m.LinksAt(src)
					l := m.Links[links[rng.Intn(len(links))]]
					dst := l.A
					if dst == src {
						dst = l.B
					}
					targets = []int{dst}
				}
				slot := rng.Intn(ii)
				want := ref.canCopy(src, targets, slot)
				got := table.ProbeOp(CopyAt(nextOp, src, targets), slot)
				if got != want {
					t.Logf("step %d: ProbeOp(copy %d,%v,%d) = %v, model %v", step, src, targets, slot, got, want)
					return false
				}
				if got {
					if !table.CommitOp(CopyAt(nextOp, src, targets), slot) {
						t.Logf("step %d: CommitOp(copy) failed after ProbeOp", step)
						return false
					}
					ref.place(nextOp, refPlacement{isCopy: true, cluster: src, slot: slot, targets: targets})
					placed = append(placed, nextOp)
					nextOp++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
