package mrt

import (
	"fmt"
	"math/bits"
	"strings"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// Cycle is the cycle-exact modulo reservation table used by the
// schedulers in phase two. Every resource instance (a specific function
// unit, port, bus, or link) has II slots; placing an operation at cycle
// t occupies slot t mod II of each resource it needs.
//
// Occupancy is packed into per-(cluster, slot) uint64 lane masks — bit
// u of fuBusy[cl*ii+s] says unit u of cluster cl is busy at slot s — so
// a probe is a handful of AND-NOT words against a precomputed
// compatibility mask instead of a per-unit, per-slot loop: the first
// free compatible unit is one TrailingZeros64, and free write-port
// counts are one OnesCount64. Attribution (who occupies what, for
// eviction) lives in a parallel owner slab that is only read on actual
// conflicts; owner entries behind cleared busy bits are stale and never
// consulted, so Unplace does not touch them. The packing caps every
// resource family at 64 instances per cluster (and 64 buses/links per
// machine), which NewCycle enforces.
type Cycle struct {
	m  *machine.Config
	ii int
	nc int

	// Structural tables, II-invariant, shared read-only with every
	// table of the same machine (see planOf).
	compat   []uint64 // [cl*NumOpKinds+k] -> mask of units that can run k
	occOf    []int    // [k] -> unit occupancy in slots
	linkTab  []int32  // [src*nc+dst] -> link index, or -1
	fuAll    []uint64 // [cl] -> mask of all units
	readAll  []uint64 // [cl] -> mask of all read ports
	writeAll []uint64 // [cl] -> mask of all write ports
	busAll   uint64
	linkAll  uint64
	fuBase   []int32 // [cl] -> global owner-row base of the cluster's units
	rdBase   []int32
	wrBase   []int32
	busBase  int32
	linkBase int32
	rows     int // total owner rows

	// Per-II occupancy state.
	fuBusy    []uint64 // [cl*ii+s]
	readBusy  []uint64 // [cl*ii+s]
	writeBusy []uint64 // [cl*ii+s]
	busBusy   []uint64 // [s]
	linkBusy  []uint64 // [s]
	owner     []int32  // [row*ii+s] -> node; valid only under a set busy bit

	placed []*Placement // [node] -> placement, nil when unplaced
	freePl []*Placement // recycled placement records
	arena  []Placement  // chunked backing store, pointer-stable

	rbBuf []int // scratch for release-event write-slot spans

	Journal
}

// Placement records exactly which slots a scheduled node occupies, so
// releases can return them and callers can inspect decisions. The
// pointer stays valid while the node remains placed; the record is
// recycled once the node is released.
type Placement struct {
	Node    int
	Cycle   int
	Cluster int // executing cluster (source cluster for copies)

	fuUnit     int // occupied FU index, -1 for copies
	occupancy  int // consecutive slots held on the unit (1 if pipelined)
	readPort   int // occupied read port on Cluster, -1 for non-copies
	busIndex   int // occupied bus, -1 when unused
	linkIndex  int // occupied link, -1 when unused
	writeSlots []wSlot
}

type wSlot struct {
	cluster int
	port    int
}

// NewCycle returns an empty cycle-exact table for machine m at the
// given II.
func NewCycle(m *machine.Config, ii int) *Cycle {
	nc := m.NumClusters()
	c := &Cycle{m: m, nc: nc}

	if m.Buses > 64 || len(m.Links) > 64 {
		panic("mrt: more than 64 buses or links unsupported by the bitset layout")
	}
	for cl := 0; cl < nc; cl++ {
		cfg := &m.Clusters[cl]
		if len(cfg.FUs) > 64 || cfg.ReadPorts > 64 || cfg.WritePorts > 64 {
			panic("mrt: more than 64 resource instances per cluster unsupported by the bitset layout")
		}
	}
	p := planOf(m)
	c.compat = p.compat
	c.occOf = p.occOf
	c.linkTab = p.linkTab32
	c.fuAll = p.fuAll
	c.readAll = p.readAll
	c.writeAll = p.writeAll
	c.busAll = p.busAll
	c.linkAll = p.linkAll
	c.fuBase = p.fuBase
	c.rdBase = p.rdBase
	c.wrBase = p.wrBase
	c.busBase = p.busBase
	c.linkBase = p.linkBase
	c.rows = p.rows

	c.ResetII(ii)
	return c
}

// allMask returns a mask with the low n bits set.
func allMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// II returns the initiation interval of the table.
//
//schedvet:alloc-free
func (c *Cycle) II() int { return c.ii }

// Machine returns the machine description backing the table.
//
//schedvet:alloc-free
func (c *Cycle) Machine() *machine.Config { return c.m }

// ResetII clears the table and re-sizes it for a new initiation
// interval, so II-escalation loops reuse one table's slabs instead of
// allocating per candidate. Journaling mode is preserved (the journal
// itself is discarded).
func (c *Cycle) ResetII(ii int) {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	c.ii = ii
	c.fuBusy = growU64(c.fuBusy, c.nc*ii)
	c.readBusy = growU64(c.readBusy, c.nc*ii)
	c.writeBusy = growU64(c.writeBusy, c.nc*ii)
	c.busBusy = growU64(c.busBusy, ii)
	c.linkBusy = growU64(c.linkBusy, ii)
	c.owner = growI32(c.owner, c.rows*ii)
	for i := range c.placed {
		if p := c.placed[i]; p != nil {
			c.freePl = append(c.freePl, p)
			c.placed[i] = nil
		}
	}
	c.JournalReset()
}

// growU64 resizes s to n entries, zeroed, reusing its backing array
// when it is large enough — unless it is grossly oversized for this
// request, in which case it is dropped for a right-sized one so a
// table retargeted from a huge II (or a huge machine's row count)
// does not pin that memory for the rest of a session.
func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n || tableOversized(cap(s), n) {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growI32 resizes s to n entries, reusing its backing array under the
// same retention policy as growU64. Contents are not cleared: owner
// entries are only read under set busy bits, which ResetII has just
// cleared.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n || tableOversized(cap(s), n) {
		return make([]int32, n)
	}
	return s[:n]
}

// tableOversized reports whether a retained backing array of capacity
// c is wasteful for a need of n entries; the floor keeps small tables
// stable across II churn.
//
//schedvet:alloc-free
func tableOversized(c, n int) bool {
	const shrinkFloor = 4096
	return c > shrinkFloor && c > 4*n
}

// slot maps an absolute cycle to its modulo slot.
//
//schedvet:alloc-free
func (c *Cycle) slot(cycle int) int {
	s := cycle % c.ii
	if s < 0 {
		s += c.ii
	}
	return s
}

// Probe API -----------------------------------------------------------------

// ProbeOp reports whether op fits at the given cycle: a compatible free
// function unit for ordinary operations (non-pipelined kinds hold the
// unit for their whole latency), or — for copies — a read port on the
// source, a bus (or the link to the single adjacent target on
// point-to-point machines), and a write port on each target.
//
//schedvet:alloc-free
func (c *Cycle) ProbeOp(op Op, cycle int) bool {
	if op.Kind == ddg.OpCopy {
		return c.probeCopy(op, c.slot(cycle))
	}
	return c.availFU(op.Cluster, op.Kind, c.slot(cycle)) != 0
}

// availFU returns the mask of compatible units of cluster cl that are
// free for kind k's whole occupancy window starting at slot s. The
// lowest set bit is the unit a commit would take.
//
//schedvet:alloc-free
func (c *Cycle) availFU(cl int, k ddg.OpKind, s int) uint64 {
	occ := c.occOf[k]
	if occ > c.ii {
		return 0 // the unit would overlap itself across iterations
	}
	avail := c.compat[cl*ddg.NumOpKinds+int(k)]
	base := cl * c.ii
	for d := 0; d < occ && avail != 0; d++ {
		avail &^= c.fuBusy[base+(s+d)%c.ii]
	}
	return avail
}

// probeCopy checks a copy sourced on op.Cluster at modulo slot s.
// Multiple targets may not collapse onto one write-port pool unless the
// pool has room for all of them; targets number at most one per
// cluster, so counting duplicates by scanning beats a map.
//
//schedvet:alloc-free
func (c *Cycle) probeCopy(op Op, s int) bool {
	src := op.Cluster
	if c.readAll[src]&^c.readBusy[src*c.ii+s] == 0 {
		return false
	}
	if c.m.Network == machine.Broadcast {
		if c.busAll&^c.busBusy[s] == 0 {
			return false
		}
	} else {
		if len(op.Targets) != 1 {
			return false
		}
		li := c.linkTab[src*c.nc+op.Targets[0]]
		if li < 0 || c.linkBusy[s]&(1<<uint(li)) != 0 {
			return false
		}
	}
	for i, t := range op.Targets {
		need := 1
		dup := false
		for _, u := range op.Targets[:i] {
			if u == t {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, u := range op.Targets[i+1:] {
			if u == t {
				need++
			}
		}
		if bits.OnesCount64(c.writeAll[t]&^c.writeBusy[t*c.ii+s]) < need {
			return false
		}
	}
	return true
}

// CommitOp places op at the given cycle, reserving a concrete resource
// instance per requirement (the lowest-indexed free one, matching the
// first-free scan of the slot-loop layout). It reports false without
// changes when the resources are not all free, and panics when node is
// already placed.
//
//schedvet:alloc-free
func (c *Cycle) CommitOp(op Op, cycle int) bool {
	for len(c.placed) <= op.Node {
		c.placed = append(c.placed, nil)
	}
	if c.placed[op.Node] != nil {
		panic(fmt.Sprintf("mrt: node %d placed twice", op.Node))
	}
	s := c.slot(cycle)
	if op.Kind == ddg.OpCopy {
		if !c.probeCopy(op, s) {
			return false
		}
		p := c.newPlacement()
		p.Node, p.Cycle, p.Cluster = op.Node, cycle, op.Cluster
		p.fuUnit, p.occupancy, p.busIndex, p.linkIndex = -1, 0, -1, -1
		p.readPort = bits.TrailingZeros64(c.readAll[op.Cluster] &^ c.readBusy[op.Cluster*c.ii+s])
		c.setRead(op.Cluster, p.readPort, s, int32(op.Node))
		if c.m.Network == machine.Broadcast {
			p.busIndex = bits.TrailingZeros64(c.busAll &^ c.busBusy[s])
			c.setBus(p.busIndex, s, int32(op.Node))
		} else {
			p.linkIndex = int(c.linkTab[op.Cluster*c.nc+op.Targets[0]])
			c.setLink(p.linkIndex, s, int32(op.Node))
		}
		for _, t := range op.Targets {
			w := bits.TrailingZeros64(c.writeAll[t] &^ c.writeBusy[t*c.ii+s])
			c.setWrite(t, w, s, int32(op.Node))
			p.writeSlots = append(p.writeSlots, wSlot{cluster: t, port: w})
		}
		c.placed[op.Node] = p
	} else {
		avail := c.availFU(op.Cluster, op.Kind, s)
		if avail == 0 {
			return false
		}
		u := bits.TrailingZeros64(avail)
		occ := c.occOf[op.Kind]
		for d := 0; d < occ; d++ {
			c.setFU(op.Cluster, u, (s+d)%c.ii, int32(op.Node))
		}
		p := c.newPlacement()
		p.Node, p.Cycle, p.Cluster = op.Node, cycle, op.Cluster
		p.fuUnit, p.occupancy = u, occ
		p.readPort, p.busIndex, p.linkIndex = -1, -1, -1
		c.placed[op.Node] = p
	}
	if c.journaling {
		c.record(op, cycle, false, nil)
	}
	return true
}

// ReleaseOp releases every slot held by op.Node (only the node matters;
// the other fields are ignored). It reports whether the node was
// placed.
//
//schedvet:alloc-free
func (c *Cycle) ReleaseOp(op Op) bool {
	if op.Node >= len(c.placed) || c.placed[op.Node] == nil {
		return false
	}
	if c.journaling {
		// Snapshot the exact resource rows so rollback restores the
		// identical table state: re-placing through first-free scans
		// could pick different instances than the original commit.
		p := c.placed[op.Node]
		c.rbBuf = c.rbBuf[:0]
		for _, w := range p.writeSlots {
			c.rbBuf = append(c.rbBuf, w.cluster)
			c.rbBuf = append(c.rbBuf, w.port)
		}
		ev := c.record(Op{Node: op.Node, Kind: op.Kind, Cluster: p.Cluster}, p.Cycle, true, c.rbBuf)
		ev.fuUnit = int32(p.fuUnit)
		ev.readPort = int32(p.readPort)
		ev.busIndex = int32(p.busIndex)
		ev.linkIndex = int32(p.linkIndex)
		ev.occupancy = int32(p.occupancy)
	}
	c.unplace(op.Node)
	return true
}

// unplace clears node's busy bits and recycles its placement record.
// Owner entries are left stale; they are never read behind cleared
// bits.
//
//schedvet:alloc-free
func (c *Cycle) unplace(node int) {
	p := c.placed[node]
	s := c.slot(p.Cycle)
	if p.fuUnit >= 0 {
		for d := 0; d < p.occupancy; d++ {
			c.fuBusy[p.Cluster*c.ii+(s+d)%c.ii] &^= 1 << uint(p.fuUnit)
		}
	}
	if p.readPort >= 0 {
		c.readBusy[p.Cluster*c.ii+s] &^= 1 << uint(p.readPort)
	}
	if p.busIndex >= 0 {
		c.busBusy[s] &^= 1 << uint(p.busIndex)
	}
	if p.linkIndex >= 0 {
		c.linkBusy[s] &^= 1 << uint(p.linkIndex)
	}
	for _, w := range p.writeSlots {
		c.writeBusy[w.cluster*c.ii+s] &^= 1 << uint(w.port)
	}
	c.placed[node] = nil
	c.freePl = append(c.freePl, p)
}

// JournalRollback undoes, in reverse order, every commit and release
// recorded after mark: commits are unplaced, releases are re-placed on
// the exact resource rows they held.
//
//schedvet:alloc-free
func (c *Cycle) JournalRollback(mark int) {
	for i := len(c.events) - 1; i >= mark; i-- {
		ev := &c.events[i]
		if ev.release {
			c.restore(ev)
		} else {
			c.unplace(int(ev.node))
		}
	}
	c.truncate(mark)
}

// restore re-places the node described by release event ev on the exact
// rows recorded at release time.
//
//schedvet:alloc-free
func (c *Cycle) restore(ev *journalEvent) {
	node := int(ev.node)
	s := c.slot(int(ev.cycle))
	p := c.newPlacement()
	p.Node, p.Cycle, p.Cluster = node, int(ev.cycle), int(ev.cluster)
	p.fuUnit, p.occupancy = int(ev.fuUnit), int(ev.occupancy)
	p.readPort, p.busIndex, p.linkIndex = int(ev.readPort), int(ev.busIndex), int(ev.linkIndex)
	if p.fuUnit >= 0 {
		for d := 0; d < p.occupancy; d++ {
			c.setFU(p.Cluster, p.fuUnit, (s+d)%c.ii, ev.node)
		}
	}
	if p.readPort >= 0 {
		c.setRead(p.Cluster, p.readPort, s, ev.node)
	}
	if p.busIndex >= 0 {
		c.setBus(p.busIndex, s, ev.node)
	}
	if p.linkIndex >= 0 {
		c.setLink(p.linkIndex, s, ev.node)
	}
	span := c.span(ev)
	for i := 0; i+1 < len(span); i += 2 {
		t, w := int(span[i]), int(span[i+1])
		c.setWrite(t, w, s, ev.node)
		p.writeSlots = append(p.writeSlots, wSlot{cluster: t, port: w})
	}
	c.placed[node] = p
}

// Bit + owner setters -------------------------------------------------------

//schedvet:alloc-free
func (c *Cycle) setFU(cl, u, s int, node int32) {
	c.fuBusy[cl*c.ii+s] |= 1 << uint(u)
	c.owner[(int(c.fuBase[cl])+u)*c.ii+s] = node
}

//schedvet:alloc-free
func (c *Cycle) setRead(cl, port, s int, node int32) {
	c.readBusy[cl*c.ii+s] |= 1 << uint(port)
	c.owner[(int(c.rdBase[cl])+port)*c.ii+s] = node
}

//schedvet:alloc-free
func (c *Cycle) setWrite(cl, port, s int, node int32) {
	c.writeBusy[cl*c.ii+s] |= 1 << uint(port)
	c.owner[(int(c.wrBase[cl])+port)*c.ii+s] = node
}

//schedvet:alloc-free
func (c *Cycle) setBus(b, s int, node int32) {
	c.busBusy[s] |= 1 << uint(b)
	c.owner[(int(c.busBase)+b)*c.ii+s] = node
}

//schedvet:alloc-free
func (c *Cycle) setLink(li, s int, node int32) {
	c.linkBusy[s] |= 1 << uint(li)
	c.owner[(int(c.linkBase)+li)*c.ii+s] = node
}

// newPlacement returns a zeroed placement record, recycling a released
// one (and its writeSlots capacity) when available.
func (c *Cycle) newPlacement() *Placement {
	if n := len(c.freePl); n > 0 {
		p := c.freePl[n-1]
		c.freePl = c.freePl[:n-1]
		p.writeSlots = p.writeSlots[:0]
		return p
	}
	if len(c.arena) == cap(c.arena) {
		c.arena = make([]Placement, 0, 32)
	}
	c.arena = append(c.arena, Placement{})
	return &c.arena[len(c.arena)-1]
}

// Queries -------------------------------------------------------------------

// PlacementOf returns the recorded placement of node, or nil. The
// pointer is valid while the node stays placed.
//
//schedvet:alloc-free
func (c *Cycle) PlacementOf(node int) *Placement {
	if node < 0 || node >= len(c.placed) {
		return nil
	}
	return c.placed[node]
}

// ConflictsOf appends to buf[:0] the distinct nodes occupying resources
// op would need at the given cycle, in resource order (units, then for
// copies read ports, fabric, write ports per target), and returns the
// extended buffer. Callers pass a reusable buffer to keep eviction
// scans allocation-free. An empty result with ProbeOp false cannot
// happen: some occupant always exists.
//
//schedvet:alloc-free
func (c *Cycle) ConflictsOf(op Op, cycle int, buf []int) []int {
	buf = buf[:0]
	s := c.slot(cycle)
	if op.Kind != ddg.OpCopy {
		occ := c.occOf[op.Kind]
		if occ > c.ii {
			occ = c.ii
		}
		base := op.Cluster * c.ii
		fuBase := int(c.fuBase[op.Cluster])
		for m := c.compat[op.Cluster*ddg.NumOpKinds+int(op.Kind)]; m != 0; m &= m - 1 {
			u := bits.TrailingZeros64(m)
			for d := 0; d < occ; d++ {
				sl := (s + d) % c.ii
				if c.fuBusy[base+sl]&(1<<uint(u)) != 0 {
					if n := int(c.owner[(fuBase+u)*c.ii+sl]); !containsInt(buf, n) {
						buf = append(buf, n)
					}
				}
			}
		}
		return buf
	}
	src := op.Cluster
	rdBase := int(c.rdBase[src])
	for m := c.readBusy[src*c.ii+s] & c.readAll[src]; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		if n := int(c.owner[(rdBase+p)*c.ii+s]); !containsInt(buf, n) {
			buf = append(buf, n)
		}
	}
	if c.m.Network == machine.Broadcast {
		for m := c.busBusy[s] & c.busAll; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if n := int(c.owner[(int(c.busBase)+b)*c.ii+s]); !containsInt(buf, n) {
				buf = append(buf, n)
			}
		}
	} else if len(op.Targets) == 1 {
		if li := c.linkTab[src*c.nc+op.Targets[0]]; li >= 0 && c.linkBusy[s]&(1<<uint(li)) != 0 {
			if n := int(c.owner[(int(c.linkBase)+int(li))*c.ii+s]); !containsInt(buf, n) {
				buf = append(buf, n)
			}
		}
	}
	for _, t := range op.Targets {
		wrBase := int(c.wrBase[t])
		for m := c.writeBusy[t*c.ii+s] & c.writeAll[t]; m != 0; m &= m - 1 {
			p := bits.TrailingZeros64(m)
			if n := int(c.owner[(wrBase+p)*c.ii+s]); !containsInt(buf, n) {
				buf = append(buf, n)
			}
		}
	}
	return buf
}

// containsInt reports whether xs contains v; the conflict lists it
// dedups are at most a handful of entries.
//
//schedvet:alloc-free
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Copy / restore ------------------------------------------------------------

// CopyFrom overwrites the receiver with src's occupancy and placements,
// a slab-reusing restore for tables of the same machine (it panics
// otherwise). The receiver's journal is discarded; its journaling mode
// is kept.
func (c *Cycle) CopyFrom(src *Cycle) {
	if c.m != src.m {
		panic("mrt: Cycle.CopyFrom across machines")
	}
	c.ResetII(src.ii)
	copy(c.fuBusy, src.fuBusy)
	copy(c.readBusy, src.readBusy)
	copy(c.writeBusy, src.writeBusy)
	copy(c.busBusy, src.busBusy)
	copy(c.linkBusy, src.linkBusy)
	copy(c.owner, src.owner)
	for len(c.placed) < len(src.placed) {
		c.placed = append(c.placed, nil)
	}
	for node, sp := range src.placed {
		if sp == nil {
			continue
		}
		p := c.newPlacement()
		p.Node, p.Cycle, p.Cluster = sp.Node, sp.Cycle, sp.Cluster
		p.fuUnit, p.occupancy = sp.fuUnit, sp.occupancy
		p.readPort, p.busIndex, p.linkIndex = sp.readPort, sp.busIndex, sp.linkIndex
		for _, w := range sp.writeSlots {
			p.writeSlots = append(p.writeSlots, w)
		}
		c.placed[node] = p
	}
}

// Clone returns an independent deep copy. The clone's journal starts
// empty and disabled.
func (c *Cycle) Clone() *Cycle {
	n := NewCycle(c.m, c.ii)
	n.CopyFrom(c)
	return n
}

// String renders the table, one line per resource instance, with "."
// for free slots, for debugging and the schedview tool.
func (c *Cycle) String() string {
	var b strings.Builder
	row := func(label string, busyAt func(s int) bool, ownerRow int) {
		fmt.Fprintf(&b, "%-14s", label)
		for s := 0; s < c.ii; s++ {
			if busyAt(s) {
				fmt.Fprintf(&b, "%4d", c.owner[ownerRow*c.ii+s])
			} else {
				b.WriteString("   .")
			}
		}
		b.WriteByte('\n')
	}
	for cl := 0; cl < c.nc; cl++ {
		cfg := &c.m.Clusters[cl]
		for u := range cfg.FUs {
			u := u
			row(fmt.Sprintf("c%d.%s%d", cl, cfg.FUs[u], u),
				func(s int) bool { return c.fuBusy[cl*c.ii+s]&(1<<uint(u)) != 0 },
				int(c.fuBase[cl])+u)
		}
		for p := 0; p < cfg.ReadPorts; p++ {
			p := p
			row(fmt.Sprintf("c%d.rd%d", cl, p),
				func(s int) bool { return c.readBusy[cl*c.ii+s]&(1<<uint(p)) != 0 },
				int(c.rdBase[cl])+p)
		}
		for p := 0; p < cfg.WritePorts; p++ {
			p := p
			row(fmt.Sprintf("c%d.wr%d", cl, p),
				func(s int) bool { return c.writeBusy[cl*c.ii+s]&(1<<uint(p)) != 0 },
				int(c.wrBase[cl])+p)
		}
	}
	for i := 0; i < c.m.Buses; i++ {
		i := i
		row(fmt.Sprintf("bus%d", i),
			func(s int) bool { return c.busBusy[s]&(1<<uint(i)) != 0 },
			int(c.busBase)+i)
	}
	for i := range c.m.Links {
		i := i
		l := c.m.Links[i]
		row(fmt.Sprintf("link%d-%d", l.A, l.B),
			func(s int) bool { return c.linkBusy[s]&(1<<uint(i)) != 0 },
			int(c.linkBase)+i)
	}
	return b.String()
}
