package mrt

import (
	"fmt"
	"strings"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

const empty = -1

// Cycle is the cycle-exact modulo reservation table used by the
// schedulers in phase two. Every resource instance (a specific function
// unit, port, bus, or link) has II slots; placing an operation at cycle
// t occupies slot t mod II of each resource it needs. The table records
// who occupies what, so operations can be evicted (iterative modulo
// scheduling) and conflicts can be attributed.
type Cycle struct {
	m  *machine.Config
	ii int

	fu    [][][]int // [cluster][unit][slot] -> occupying node or -1
	read  [][][]int // [cluster][port][slot]
	write [][][]int // [cluster][port][slot]
	bus   [][]int   // [bus][slot]
	link  [][]int   // [link][slot]

	placed map[int]*Placement
	arena  []Placement // chunked backing store for placements
}

// Placement records exactly which slots a scheduled node occupies, so
// that Unplace can release them and callers can inspect decisions.
type Placement struct {
	Node    int
	Cycle   int
	Cluster int // executing cluster (source cluster for copies)

	fuUnit     int // occupied FU index, -1 for copies
	occupancy  int // consecutive slots held on the unit (1 if pipelined)
	readPort   int // occupied read port on Cluster, -1 for non-copies
	busIndex   int // occupied bus, -1 when unused
	linkIndex  int // occupied link, -1 when unused
	writeSlots []wSlot
}

type wSlot struct {
	cluster int
	port    int
}

// NewCycle returns an empty cycle-exact table for machine m at the
// given II.
func NewCycle(m *machine.Config, ii int) *Cycle {
	if ii <= 0 {
		panic(fmt.Sprintf("mrt: non-positive II %d", ii))
	}
	c := &Cycle{m: m, ii: ii, placed: make(map[int]*Placement)}
	// All resource rows live in one slab and one shared header array, so
	// building the table costs a handful of allocations instead of one
	// per row.
	rows := m.Buses + len(m.Links)
	for i := range m.Clusters {
		cl := &m.Clusters[i]
		rows += len(cl.FUs) + cl.ReadPorts + cl.WritePorts
	}
	slab := make([]int, rows*ii)
	for i := range slab {
		slab[i] = empty
	}
	hdr := make([][]int, rows)
	for i := range hdr {
		hdr[i] = slab[i*ii : (i+1)*ii : (i+1)*ii]
	}
	take := func(n int) [][]int {
		h := hdr[:n:n]
		hdr = hdr[n:]
		return h
	}
	c.fu = make([][][]int, len(m.Clusters))
	c.read = make([][][]int, len(m.Clusters))
	c.write = make([][][]int, len(m.Clusters))
	for i := range m.Clusters {
		cl := &m.Clusters[i]
		c.fu[i] = take(len(cl.FUs))
		c.read[i] = take(cl.ReadPorts)
		c.write[i] = take(cl.WritePorts)
	}
	c.bus = take(m.Buses)
	c.link = take(len(m.Links))
	return c
}

// newPlacement stores p in the arena and returns its address. Entries
// are never reused, so placement pointers handed out stay valid after
// later placements or Unplace.
func (c *Cycle) newPlacement(p Placement) *Placement {
	if len(c.arena) == cap(c.arena) {
		c.arena = make([]Placement, 0, 16)
	}
	c.arena = append(c.arena, p)
	return &c.arena[len(c.arena)-1]
}

// II returns the initiation interval of the table.
//
//schedvet:alloc-free
func (c *Cycle) II() int { return c.ii }

// slot maps an absolute cycle to its modulo slot.
//
//schedvet:alloc-free
func (c *Cycle) slot(cycle int) int {
	s := cycle % c.ii
	if s < 0 {
		s += c.ii
	}
	return s
}

// freeIn returns the first free row index of rows at the given slot,
// or -1 when all are taken.
//
//schedvet:alloc-free
func freeIn(rows [][]int, slot int) int {
	for i, row := range rows {
		if row[slot] == empty {
			return i
		}
	}
	return -1
}

// CanPlaceOp reports whether a non-copy operation of kind k fits on
// some compatible function unit of cluster cl at the given cycle
// (non-pipelined kinds hold the unit for their whole latency).
//
//schedvet:alloc-free
func (c *Cycle) CanPlaceOp(cl int, k ddg.OpKind, cycle int) bool {
	return c.findFU(cl, k, c.slot(cycle)) >= 0
}

//schedvet:alloc-free
func (c *Cycle) findFU(cl int, k ddg.OpKind, slot int) int {
	occ := c.m.Occupancy(k)
	if occ > c.ii {
		return -1 // the unit would overlap itself across iterations
	}
	for i, fu := range c.m.Clusters[cl].FUs {
		if !fu.CanExecute(k) {
			continue
		}
		free := true
		for d := 0; d < occ && free; d++ {
			if c.fu[cl][i][(slot+d)%c.ii] != empty {
				free = false
			}
		}
		if free {
			return i
		}
	}
	return -1
}

// PlaceOp schedules node on a compatible function unit of cluster cl at
// the given cycle. It reports false without changes when no unit is
// free there.
func (c *Cycle) PlaceOp(node, cl int, k ddg.OpKind, cycle int) bool {
	if _, dup := c.placed[node]; dup {
		panic(fmt.Sprintf("mrt: node %d placed twice", node))
	}
	s := c.slot(cycle)
	u := c.findFU(cl, k, s)
	if u < 0 {
		return false
	}
	occ := c.m.Occupancy(k)
	for d := 0; d < occ; d++ {
		c.fu[cl][u][(s+d)%c.ii] = node
	}
	c.placed[node] = c.newPlacement(Placement{
		Node: node, Cycle: cycle, Cluster: cl,
		fuUnit: u, occupancy: occ, readPort: -1, busIndex: -1, linkIndex: -1,
	})
	return true
}

// CanPlaceCopy reports whether a copy from cluster src to the target
// clusters fits at the given cycle: a read port on src, a bus (or, for
// point-to-point machines, the link src-target), and a write port on
// each target. Point-to-point copies must have exactly one target,
// adjacent to src.
//
//schedvet:alloc-free
func (c *Cycle) CanPlaceCopy(src int, targets []int, cycle int) bool {
	s := c.slot(cycle)
	if freeIn(c.read[src], s) < 0 {
		return false
	}
	switch c.m.Network {
	case machine.Broadcast:
		if freeIn(c.bus, s) < 0 {
			return false
		}
	case machine.PointToPoint:
		if len(targets) != 1 {
			return false
		}
		li := c.m.LinkBetween(src, targets[0])
		if li < 0 || c.link[li][s] != empty {
			return false
		}
	}
	// Multiple targets may not collapse onto one write-port pool unless
	// the pool has room for all of them. Targets number at most one per
	// cluster, so counting duplicates by scanning beats a map.
	for i, t := range targets {
		need := 1
		dup := false
		for _, u := range targets[:i] {
			if u == t {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, u := range targets[i+1:] {
			if u == t {
				need++
			}
		}
		free := 0
		for _, row := range c.write[t] {
			if row[s] == empty {
				free++
			}
		}
		if free < need {
			return false
		}
	}
	return true
}

// PlaceCopy schedules a copy node at the given cycle. It reports false
// without changes when the resources are not all free.
func (c *Cycle) PlaceCopy(node, src int, targets []int, cycle int) bool {
	if _, dup := c.placed[node]; dup {
		panic(fmt.Sprintf("mrt: node %d placed twice", node))
	}
	if !c.CanPlaceCopy(src, targets, cycle) {
		return false
	}
	s := c.slot(cycle)
	p := c.newPlacement(Placement{
		Node: node, Cycle: cycle, Cluster: src,
		fuUnit: -1, busIndex: -1, linkIndex: -1,
	})
	p.readPort = freeIn(c.read[src], s)
	c.read[src][p.readPort][s] = node
	switch c.m.Network {
	case machine.Broadcast:
		p.busIndex = freeIn(c.bus, s)
		c.bus[p.busIndex][s] = node
	case machine.PointToPoint:
		p.linkIndex = c.m.LinkBetween(src, targets[0])
		c.link[p.linkIndex][s] = node
	}
	for _, t := range targets {
		w := freeIn(c.write[t], s)
		c.write[t][w][s] = node
		p.writeSlots = append(p.writeSlots, wSlot{cluster: t, port: w})
	}
	c.placed[node] = p
	return true
}

// Unplace releases every slot held by node. It reports whether the node
// was placed.
//
//schedvet:alloc-free
func (c *Cycle) Unplace(node int) bool {
	p, ok := c.placed[node]
	if !ok {
		return false
	}
	s := c.slot(p.Cycle)
	if p.fuUnit >= 0 {
		for d := 0; d < p.occupancy; d++ {
			c.fu[p.Cluster][p.fuUnit][(s+d)%c.ii] = empty
		}
	}
	if p.readPort >= 0 {
		c.read[p.Cluster][p.readPort][s] = empty
	}
	if p.busIndex >= 0 {
		c.bus[p.busIndex][s] = empty
	}
	if p.linkIndex >= 0 {
		c.link[p.linkIndex][s] = empty
	}
	for _, w := range p.writeSlots {
		c.write[w.cluster][w.port][s] = empty
	}
	delete(c.placed, node)
	return true
}

// PlacementOf returns the recorded placement of node, or nil.
//
//schedvet:alloc-free
func (c *Cycle) PlacementOf(node int) *Placement {
	return c.placed[node]
}

// ConflictsAt returns the distinct node IDs occupying resources that an
// operation of kind k on cluster cl would need at the given cycle
// (non-copy operations only; used by eviction). An empty result with
// CanPlaceOp false cannot happen: some occupant always exists.
func (c *Cycle) ConflictsAt(cl int, k ddg.OpKind, cycle int) []int {
	s := c.slot(cycle)
	occ := c.m.Occupancy(k)
	if occ > c.ii {
		occ = c.ii
	}
	var out []int
	for i, fu := range c.m.Clusters[cl].FUs {
		if !fu.CanExecute(k) {
			continue
		}
		for d := 0; d < occ; d++ {
			if n := c.fu[cl][i][(s+d)%c.ii]; n != empty && !containsInt(out, n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// containsInt reports whether xs contains v; the conflict lists it
// dedups are at most a handful of entries.
//
//schedvet:alloc-free
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// CopyConflictsAt returns the nodes occupying resources a copy from src
// to targets would need at the given cycle.
func (c *Cycle) CopyConflictsAt(src int, targets []int, cycle int) []int {
	s := c.slot(cycle)
	var out []int
	add := func(rows [][]int) {
		for _, row := range rows {
			if n := row[s]; n != empty && !containsInt(out, n) {
				out = append(out, n)
			}
		}
	}
	add(c.read[src])
	switch c.m.Network {
	case machine.Broadcast:
		add(c.bus)
	case machine.PointToPoint:
		if len(targets) == 1 {
			if li := c.m.LinkBetween(src, targets[0]); li >= 0 {
				if n := c.link[li][s]; n != empty && !containsInt(out, n) {
					out = append(out, n)
				}
			}
		}
	}
	for _, t := range targets {
		add(c.write[t])
	}
	return out
}

// String renders the table, one line per resource instance, with "."
// for free slots, for debugging and the schedview tool.
func (c *Cycle) String() string {
	var b strings.Builder
	row := func(label string, slots []int) {
		fmt.Fprintf(&b, "%-14s", label)
		for _, n := range slots {
			if n == empty {
				b.WriteString("   .")
			} else {
				fmt.Fprintf(&b, "%4d", n)
			}
		}
		b.WriteByte('\n')
	}
	for cl := range c.m.Clusters {
		for u := range c.fu[cl] {
			row(fmt.Sprintf("c%d.%s%d", cl, c.m.Clusters[cl].FUs[u], u), c.fu[cl][u])
		}
		for p := range c.read[cl] {
			row(fmt.Sprintf("c%d.rd%d", cl, p), c.read[cl][p])
		}
		for p := range c.write[cl] {
			row(fmt.Sprintf("c%d.wr%d", cl, p), c.write[cl][p])
		}
	}
	for i := range c.bus {
		row(fmt.Sprintf("bus%d", i), c.bus[i])
	}
	for i := range c.link {
		l := c.m.Links[i]
		row(fmt.Sprintf("link%d-%d", l.A, l.B), c.link[i])
	}
	return b.String()
}
