package mrt

import (
	"math/rand"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
)

// This file differentially tests the bitset Cycle against slotRef, a
// retained reference implementation using the pre-bitset layout: one
// ragged per-instance slot array per resource, scanned first-free in
// ascending index order. Beyond accept/reject equivalence (which the
// counting model in model_test.go already covers), it checks that the
// bitset table picks the SAME resource instances and reports the SAME
// conflict lists in the SAME order — the properties that make the
// schedulers' output byte-identical across the layout change.

type slotRef struct {
	m    *machine.Config
	ii   int
	fu   [][][]int // [cl][unit][slot] -> node, -1 free
	rd   [][][]int
	wr   [][][]int
	bus  [][]int // [bus][slot]
	link [][]int // [link][slot]
	occ  map[int]*slotRefPl
}

type slotRefPl struct {
	cluster, cycle     int
	unit, occupancy    int
	rdPort, busIdx, li int
	writes             [][2]int // (cluster, port)
}

func newSlotRef(m *machine.Config, ii int) *slotRef {
	r := &slotRef{m: m, ii: ii, occ: map[int]*slotRefPl{}}
	grid := func(n int) [][]int {
		g := make([][]int, n)
		for i := range g {
			g[i] = make([]int, ii)
			for s := range g[i] {
				g[i][s] = -1
			}
		}
		return g
	}
	for cl := range m.Clusters {
		cfg := &m.Clusters[cl]
		r.fu = append(r.fu, grid(len(cfg.FUs)))
		r.rd = append(r.rd, grid(cfg.ReadPorts))
		r.wr = append(r.wr, grid(cfg.WritePorts))
	}
	r.bus = grid(m.Buses)
	r.link = grid(len(m.Links))
	return r
}

func (r *slotRef) slot(cycle int) int {
	s := cycle % r.ii
	if s < 0 {
		s += r.ii
	}
	return s
}

// freeFU returns the first compatible unit free for kind k's occupancy
// window starting at slot s, or -1.
func (r *slotRef) freeFU(cl int, k ddg.OpKind, s int) int {
	occ := r.m.Occupancy(k)
	if occ > r.ii {
		return -1
	}
	for u, fu := range r.m.Clusters[cl].FUs {
		if !fu.CanExecute(k) {
			continue
		}
		ok := true
		for d := 0; d < occ; d++ {
			if r.fu[cl][u][(s+d)%r.ii] >= 0 {
				ok = false
				break
			}
		}
		if ok {
			return u
		}
	}
	return -1
}

func firstFree(rows [][]int, s int) int {
	for i := range rows {
		if rows[i][s] < 0 {
			return i
		}
	}
	return -1
}

func (r *slotRef) canCopy(src int, targets []int, s int) bool {
	if firstFree(r.rd[src], s) < 0 {
		return false
	}
	if r.m.Network == machine.Broadcast {
		if firstFree(r.bus, s) < 0 {
			return false
		}
	} else {
		if len(targets) != 1 {
			return false
		}
		li := r.m.LinkBetween(src, targets[0])
		if li < 0 || r.link[li][s] >= 0 {
			return false
		}
	}
	need := map[int]int{}
	for _, t := range targets {
		need[t]++
	}
	for t, n := range need {
		free := 0
		for _, row := range r.wr[t] {
			if row[s] < 0 {
				free++
			}
		}
		if free < n {
			return false
		}
	}
	return true
}

func (r *slotRef) place(node int, op Op, cycle int) bool {
	s := r.slot(cycle)
	if op.Kind == ddg.OpCopy {
		if !r.canCopy(op.Cluster, op.Targets, s) {
			return false
		}
		p := &slotRefPl{cluster: op.Cluster, cycle: cycle, unit: -1, busIdx: -1, li: -1}
		p.rdPort = firstFree(r.rd[op.Cluster], s)
		r.rd[op.Cluster][p.rdPort][s] = node
		if r.m.Network == machine.Broadcast {
			p.busIdx = firstFree(r.bus, s)
			r.bus[p.busIdx][s] = node
		} else {
			p.li = r.m.LinkBetween(op.Cluster, op.Targets[0])
			r.link[p.li][s] = node
		}
		for _, t := range op.Targets {
			w := firstFree(r.wr[t], s)
			r.wr[t][w][s] = node
			p.writes = append(p.writes, [2]int{t, w})
		}
		r.occ[node] = p
		return true
	}
	u := r.freeFU(op.Cluster, op.Kind, s)
	if u < 0 {
		return false
	}
	occ := r.m.Occupancy(op.Kind)
	for d := 0; d < occ; d++ {
		r.fu[op.Cluster][u][(s+d)%r.ii] = node
	}
	r.occ[node] = &slotRefPl{cluster: op.Cluster, cycle: cycle, unit: u, occupancy: occ, rdPort: -1, busIdx: -1, li: -1}
	return true
}

func (r *slotRef) unplace(node int) bool {
	p, ok := r.occ[node]
	if !ok {
		return false
	}
	delete(r.occ, node)
	s := r.slot(p.cycle)
	if p.unit >= 0 {
		for d := 0; d < p.occupancy; d++ {
			r.fu[p.cluster][p.unit][(s+d)%r.ii] = -1
		}
	}
	if p.rdPort >= 0 {
		r.rd[p.cluster][p.rdPort][s] = -1
	}
	if p.busIdx >= 0 {
		r.bus[p.busIdx][s] = -1
	}
	if p.li >= 0 {
		r.link[p.li][s] = -1
	}
	for _, w := range p.writes {
		r.wr[w[0]][w[1]][s] = -1
	}
	return true
}

// conflicts reproduces the documented ConflictsOf enumeration order:
// compatible units ascending (window slots inner), then for copies read
// ports, fabric, write ports per target — deduplicated.
func (r *slotRef) conflicts(op Op, cycle int) []int {
	var out []int
	add := func(n int) {
		if n >= 0 && !containsInt(out, n) {
			out = append(out, n)
		}
	}
	s := r.slot(cycle)
	if op.Kind != ddg.OpCopy {
		occ := r.m.Occupancy(op.Kind)
		if occ > r.ii {
			occ = r.ii
		}
		for u, fu := range r.m.Clusters[op.Cluster].FUs {
			if !fu.CanExecute(op.Kind) {
				continue
			}
			for d := 0; d < occ; d++ {
				add(r.fu[op.Cluster][u][(s+d)%r.ii])
			}
		}
		return out
	}
	for _, row := range r.rd[op.Cluster] {
		add(row[s])
	}
	if r.m.Network == machine.Broadcast {
		for _, row := range r.bus {
			add(row[s])
		}
	} else if len(op.Targets) == 1 {
		if li := r.m.LinkBetween(op.Cluster, op.Targets[0]); li >= 0 {
			add(r.link[li][s])
		}
	}
	for _, t := range op.Targets {
		for _, row := range r.wr[t] {
			add(row[s])
		}
	}
	return out
}

// checkAgainst compares the bitset table's full occupancy and row
// attribution against the reference.
func (r *slotRef) checkAgainst(t *testing.T, c *Cycle) {
	t.Helper()
	for cl := range r.m.Clusters {
		for u := range r.fu[cl] {
			for s := 0; s < r.ii; s++ {
				want := r.fu[cl][u][s]
				busy := c.fuBusy[cl*c.ii+s]&(1<<uint(u)) != 0
				if busy != (want >= 0) {
					t.Fatalf("fu[%d][%d][%d] busy=%v, ref owner %d", cl, u, s, busy, want)
				}
				if busy && int(c.owner[(int(c.fuBase[cl])+u)*c.ii+s]) != want {
					t.Fatalf("fu[%d][%d][%d] owner mismatch", cl, u, s)
				}
			}
		}
	}
	for node, p := range r.occ {
		cp := c.PlacementOf(node)
		if cp == nil {
			t.Fatalf("node %d placed in ref, missing in bitset table", node)
		}
		if cp.fuUnit != p.unit || cp.readPort != p.rdPort || cp.busIndex != p.busIdx || cp.linkIndex != p.li {
			t.Fatalf("node %d rows: bitset {fu %d rd %d bus %d link %d}, ref {%d %d %d %d}",
				node, cp.fuUnit, cp.readPort, cp.busIndex, cp.linkIndex, p.unit, p.rdPort, p.busIdx, p.li)
		}
		for i, w := range p.writes {
			if c := cp.writeSlots[i]; c.cluster != w[0] || c.port != w[1] {
				t.Fatalf("node %d write slot %d mismatch", node, i)
			}
		}
	}
}

func TestCycleMatchesSlotLoopReference(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(2, 1, 2),
		machine.NewGrid4(1),
		func() *machine.Config {
			m := machine.NewBusedFS(3, 2, 2)
			m.NonPipelined[ddg.OpFDiv] = true
			return m
		}(),
	}
	kinds := []ddg.OpKind{ddg.OpALU, ddg.OpLoad, ddg.OpFMul, ddg.OpStore, ddg.OpBranch, ddg.OpFDiv}

	for mi, m := range machines {
		for _, ii := range []int{1, 2, 5, 9} {
			rng := rand.New(rand.NewSource(int64(mi*100 + ii)))
			table := NewCycle(m, ii)
			ref := newSlotRef(m, ii)
			next := 0
			var placed []int

			for step := 0; step < 400; step++ {
				roll := rng.Float64()
				switch {
				case len(placed) > 0 && roll < 0.3:
					i := rng.Intn(len(placed))
					n := placed[i]
					if got, want := table.ReleaseOp(Op{Node: n}), ref.unplace(n); got != want {
						t.Fatalf("m%d ii%d step %d: ReleaseOp(%d)=%v ref %v", mi, ii, step, n, got, want)
					}
					placed = append(placed[:i], placed[i+1:]...)
				default:
					var op Op
					if roll < 0.65 {
						op = OpAt(next, rng.Intn(m.NumClusters()), kinds[rng.Intn(len(kinds))])
					} else {
						src := rng.Intn(m.NumClusters())
						var targets []int
						if m.Network == machine.Broadcast {
							for cl := 0; cl < m.NumClusters(); cl++ {
								if cl != src && rng.Float64() < 0.5 {
									targets = append(targets, cl)
								}
							}
							if len(targets) == 0 {
								targets = []int{(src + 1) % m.NumClusters()}
							}
						} else {
							targets = []int{rng.Intn(m.NumClusters())} // may be non-adjacent: both must reject
						}
						op = CopyAt(next, src, targets)
					}
					cycle := rng.Intn(3*ii) - ii
					if got, want := table.ProbeOp(op, cycle), ref.place(-2, op, cycle); got != want {
						t.Fatalf("m%d ii%d step %d: ProbeOp(%+v,%d)=%v ref %v", mi, ii, step, op, cycle, got, want)
					} else if want {
						ref.unplace(-2) // probe only
					}
					gotC := table.ConflictsOf(op, cycle, nil)
					wantC := ref.conflicts(op, cycle)
					if len(gotC) != len(wantC) {
						t.Fatalf("m%d ii%d step %d: conflicts %v, ref %v", mi, ii, step, gotC, wantC)
					}
					for i := range gotC {
						if gotC[i] != wantC[i] {
							t.Fatalf("m%d ii%d step %d: conflict order %v, ref %v", mi, ii, step, gotC, wantC)
						}
					}
					if table.ProbeOp(op, cycle) {
						if !table.CommitOp(op, cycle) || !ref.place(next, op, cycle) {
							t.Fatalf("m%d ii%d step %d: commit diverged after probe true", mi, ii, step)
						}
						placed = append(placed, next)
						next++
					}
				}
				if step%40 == 0 {
					ref.checkAgainst(t, table)
				}
			}
			ref.checkAgainst(t, table)
		}
	}
}
