// Package order computes the node order used by cluster assignment
// (paper Section 4.1): nodes of the most constraining strongly
// connected component first, then successively less critical SCCs,
// then all remaining nodes; within each set the Swing Modulo Scheduler
// ordering heuristic lists a node, when possible, only after all of its
// successors or all of its predecessors, so assignment rarely sees a
// node whose neighbours have already been scattered across clusters.
package order

import (
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/mii"
)

// Sets partitions the nodes into priority sets: one set per non-trivial
// SCC, sorted by decreasing recurrence criticality (SCC RecMII, ties by
// larger size then smaller minimum node ID), followed by one final set
// with every node outside any recurrence.
func Sets(g *ddg.Graph, lat ddg.LatencyFunc) [][]int {
	comps := g.NonTrivialSCCs()
	return rankedSets(g, comps, mii.SCCRecMIIs(g, comps, lat))
}

// rankedSets is Sets with the SCCs and their RecMIIs already computed,
// so Compute shares one SCCRecMIIs pass between the recurrence bound
// and the set ranking.
func rankedSets(g *ddg.Graph, comps []*ddg.SCC, recs []int) [][]int {
	type ranked struct {
		nodes []int
		rec   int
	}
	rankedComps := make([]ranked, len(comps))
	for i, c := range comps {
		rankedComps[i] = ranked{nodes: c.Nodes, rec: recs[i]}
	}
	sort.SliceStable(rankedComps, func(i, j int) bool {
		a, b := rankedComps[i], rankedComps[j]
		if a.rec != b.rec {
			return a.rec > b.rec
		}
		if len(a.nodes) != len(b.nodes) {
			return len(a.nodes) > len(b.nodes)
		}
		return a.nodes[0] < b.nodes[0]
	})
	inSCC := make([]bool, g.NumNodes())
	var sets [][]int
	for _, rc := range rankedComps {
		sets = append(sets, rc.nodes)
		for _, n := range rc.nodes {
			inSCC[n] = true
		}
	}
	var rest []int
	for i := 0; i < g.NumNodes(); i++ {
		if !inSCC[i] {
			rest = append(rest, i)
		}
	}
	if len(rest) > 0 {
		sets = append(sets, rest)
	}
	return sets
}

// Compute returns all node IDs in assignment priority order.
func Compute(g *ddg.Graph, lat ddg.LatencyFunc) []int {
	if g.NumNodes() == 0 {
		return nil
	}
	// One SCCRecMIIs pass serves both the recurrence bound (RecMII is
	// its maximum) and the criticality ranking of the priority sets.
	comps := g.NonTrivialSCCs()
	recs := mii.SCCRecMIIs(g, comps, lat)
	ii := 1
	for _, r := range recs {
		if r > ii {
			ii = r
		}
	}
	estart, ok := g.EarliestStart(lat, ii)
	if !ok {
		// RecMII guarantees convergence; fall back defensively.
		estart = make([]int, g.NumNodes())
	}
	lstart, ok := g.LatestStart(lat, ii)
	if !ok {
		lstart = make([]int, g.NumNodes())
	}
	maxL := 0
	for _, t := range lstart {
		if t > maxL {
			maxL = t
		}
	}
	depth := estart
	height := make([]int, len(lstart))
	for i, t := range lstart {
		height[i] = maxL - t
	}

	ordered := make([]int, 0, g.NumNodes())
	placed := make([]bool, g.NumNodes())

	// Set membership by stamp and the candidate frontier as a flagged
	// slice: the sweep is allocation-free after these buffers.
	inSet := make([]int, g.NumNodes())
	inR := make([]bool, g.NumNodes())
	rbuf := make([]int, 0, g.NumNodes())

	// fr accumulates, across all sets, the direction-wise neighbours of
	// every ordered node, so a swing refill scans one deduplicated list
	// instead of re-walking the adjacency of everything ordered so far
	// (which made the sweep quadratic on long dependence chains).
	var fr frontiers
	fr.succ = make([]int, 0, g.NumNodes())
	fr.pred = make([]int, 0, g.NumNodes())
	fr.inSucc = make([]bool, g.NumNodes())
	fr.inPred = make([]bool, g.NumNodes())

	for si, set := range rankedSets(g, comps, recs) {
		for _, n := range set {
			inSet[n] = si + 1
		}
		orderSet(g, set, inSet, si+1, depth, height, &ordered, placed, &rbuf, inR, &fr)
	}
	return ordered
}

// frontiers is the incremental candidate pool of the swing sweep: for
// each direction, the deduplicated neighbours of every node ordered so
// far. Membership in a refill is a pure function of which nodes are
// placed, so maintaining the pool at placement time yields exactly the
// candidate set the original ordered-rescan produced.
type frontiers struct {
	succ, pred     []int
	inSucc, inPred []bool
}

// extend records the neighbours of a just-placed node v.
func (f *frontiers) extend(g *ddg.Graph, v int) {
	for _, n := range g.Successors(v) {
		if !f.inSucc[n] {
			f.inSucc[n] = true
			f.succ = append(f.succ, n)
		}
	}
	for _, n := range g.Predecessors(v) {
		if !f.inPred[n] {
			f.inPred[n] = true
			f.pred = append(f.pred, n)
		}
	}
}

// orderSet runs the swing alternating sweep over one priority set.
// inSet[n] == setID marks membership; rbuf and inR are the reusable
// candidate frontier (inR must be all-false on entry and is all-false
// on return, since the sweep always drains the frontier).
func orderSet(g *ddg.Graph, set []int, inSet []int, setID int, depth, height []int, ordered *[]int, placed []bool, rbuf *[]int, inR []bool, fr *frontiers) {
	const (
		topDown  = 0
		bottomUp = 1
	)

	remaining := 0
	for _, n := range set {
		if !placed[n] {
			remaining++
		}
	}

	r := (*rbuf)[:0]
	defer func() { *rbuf = r }()
	add := func(n int) {
		if inSet[n] == setID && !placed[n] && !inR[n] {
			inR[n] = true
			r = append(r, n)
		}
	}

	// candidates refills r with the unplaced members of the set adjacent
	// to the already ordered nodes, in the given direction. The frontier
	// pool holds exactly those neighbours; the selection below is order-
	// insensitive (pick breaks every tie by node ID), so scanning the
	// pool instead of the ordered list reproduces the original order.
	candidates := func(dir int) {
		var pool []int
		if dir == topDown {
			pool = fr.succ
		} else {
			pool = fr.pred
		}
		for _, n := range pool {
			add(n)
		}
	}

	for remaining > 0 {
		dir := topDown
		candidates(topDown)
		if len(r) == 0 {
			candidates(bottomUp)
			if len(r) > 0 {
				dir = bottomUp
			}
		}
		if len(r) == 0 {
			// Fresh component: seed with the most critical node (least
			// slack, i.e. greatest depth+height), descend top-down.
			best := -1
			for _, n := range set {
				if placed[n] {
					continue
				}
				if best == -1 || moreCritical(n, best, depth, height) {
					best = n
				}
			}
			inR[best] = true
			r = append(r, best)
		}

		for len(r) > 0 {
			// Drain r in the current direction, expanding within the set.
			for len(r) > 0 {
				i := pick(r, dir, depth, height)
				v := r[i]
				r[i] = r[len(r)-1]
				r = r[:len(r)-1]
				inR[v] = false
				if placed[v] {
					continue
				}
				placed[v] = true
				remaining--
				*ordered = append(*ordered, v)
				fr.extend(g, v)
				var neigh []int
				if dir == topDown {
					neigh = g.Successors(v)
				} else {
					neigh = g.Predecessors(v)
				}
				for _, n := range neigh {
					add(n)
				}
			}
			// Swing: continue from the other side of the ordered nodes.
			if dir == topDown {
				dir = bottomUp
			} else {
				dir = topDown
			}
			candidates(dir)
		}
	}
}

// pick selects the index in r of the next node: top-down prefers the
// deepest node (longest path from a source), bottom-up the highest
// (longest path to a sink); ties fall to the other metric, then to the
// smaller ID for determinism.
func pick(r []int, dir int, depth, height []int) int {
	bi := 0
	for i := 1; i < len(r); i++ {
		n, best := r[i], r[bi]
		var p1, p2, b1, b2 int
		if dir == 0 {
			p1, p2 = depth[n], height[n]
			b1, b2 = depth[best], height[best]
		} else {
			p1, p2 = height[n], depth[n]
			b1, b2 = height[best], depth[best]
		}
		switch {
		case p1 > b1:
			bi = i
		case p1 == b1 && p2 > b2:
			bi = i
		case p1 == b1 && p2 == b2 && n < best:
			bi = i
		}
	}
	return bi
}

// moreCritical ranks seed candidates: smaller slack first (depth+height
// is larger on critical paths), then smaller ID.
func moreCritical(a, b int, depth, height []int) bool {
	ca, cb := depth[a]+height[a], depth[b]+height[b]
	if ca != cb {
		return ca > cb
	}
	return a < b
}
