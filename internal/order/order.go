// Package order computes the node order used by cluster assignment
// (paper Section 4.1): nodes of the most constraining strongly
// connected component first, then successively less critical SCCs,
// then all remaining nodes; within each set the Swing Modulo Scheduler
// ordering heuristic lists a node, when possible, only after all of its
// successors or all of its predecessors, so assignment rarely sees a
// node whose neighbours have already been scattered across clusters.
package order

import (
	"clustersched/internal/ddg"
	"clustersched/internal/mii"
)

// Sets partitions the nodes into priority sets: one set per non-trivial
// SCC, sorted by decreasing recurrence criticality (SCC RecMII, ties by
// larger size then smaller minimum node ID), followed by one final set
// with every node outside any recurrence.
func Sets(g *ddg.Graph, lat ddg.LatencyFunc) [][]int {
	var s Scratch
	comps := g.NonTrivialSCCs()
	return s.rankedSets(g, comps, s.rec.SCCRecMIIs(g, comps, lat))
}

// Scratch holds every working buffer of Compute so repeated calls — one
// per candidate II in the swing scheduler, one per loop in problem
// construction — allocate nothing once the buffers have grown to the
// largest graph seen. The zero value is ready to use. The slice Compute
// returns aliases the scratch and is overwritten by the next call on
// it; callers that keep the order across calls must copy it or own the
// scratch. A Scratch is single-threaded.
//
// Set-membership stamps survive across calls by way of a monotonic
// epoch (the same idiom as the assignment engine's mark buffers), so
// the per-node stamp vector is never cleared; the boolean frontier
// flags are cleared per call, which costs a memclr but no allocation.
type Scratch struct {
	start  ddg.StartScratch
	rec    mii.RecScratch
	depth  []int
	height []int

	ordered []int
	placed  []bool
	inSet   []int
	epoch   int
	inR     []bool
	rbuf    []int
	fr      frontiers

	// rankedSets buffers: the criticality-ranked components, the
	// SCC-membership flags, and the set list with its trailing
	// "everything else" set.
	rcomps []rankedComp
	inSCC  []bool
	sets   [][]int
	rest   []int
}

// rankedComp pairs one SCC's member list with its recurrence bound for
// the criticality sort.
type rankedComp struct {
	nodes []int
	rec   int
}

// rankedSets is Sets with the SCCs and their RecMIIs already computed,
// so Compute shares one SCCRecMIIs pass between the recurrence bound
// and the set ranking. The returned sets alias the scratch (and the
// graph's SCC cache) and are overwritten by the next call.
func (s *Scratch) rankedSets(g *ddg.Graph, comps []*ddg.SCC, recs []int) [][]int {
	if cap(s.rcomps) < len(comps) {
		s.rcomps = make([]rankedComp, len(comps))
	}
	s.rcomps = s.rcomps[:len(comps)]
	for i, c := range comps {
		s.rcomps[i] = rankedComp{nodes: c.Nodes, rec: recs[i]}
	}
	// Stable insertion sort: components are few, and a hand-rolled sort
	// keeps the warm path free of the closure sort.SliceStable allocates.
	rc := s.rcomps
	for i := 1; i < len(rc); i++ {
		for j := i; j > 0 && moreCriticalSet(rc[j], rc[j-1]); j-- {
			rc[j], rc[j-1] = rc[j-1], rc[j]
		}
	}

	s.inSCC = growBools(s.inSCC, g.NumNodes())
	s.sets = s.sets[:0]
	for _, c := range rc {
		s.sets = append(s.sets, c.nodes)
		for _, n := range c.nodes {
			s.inSCC[n] = true
		}
	}
	s.rest = growCap(s.rest, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if !s.inSCC[i] {
			s.rest = append(s.rest, i)
		}
	}
	if len(s.rest) > 0 {
		s.sets = append(s.sets, s.rest)
	}
	return s.sets
}

// moreCriticalSet is the strict criticality order of the priority sets:
// larger RecMII first, ties by larger size then smaller minimum node
// ID. Strictness (false on equal keys) is what keeps the insertion
// sort stable.
//
//schedvet:alloc-free
func moreCriticalSet(a, b rankedComp) bool {
	if a.rec != b.rec {
		return a.rec > b.rec
	}
	if len(a.nodes) != len(b.nodes) {
		return len(a.nodes) > len(b.nodes)
	}
	return a.nodes[0] < b.nodes[0]
}

// Compute returns all node IDs in assignment priority order.
func Compute(g *ddg.Graph, lat ddg.LatencyFunc) []int {
	var s Scratch
	return s.Compute(g, lat)
}

// Compute is the package-level Compute into the scratch's buffers,
// element-identical to a fresh-allocation run. The returned slice is
// overwritten by the next call on the same scratch.
func (s *Scratch) Compute(g *ddg.Graph, lat ddg.LatencyFunc) []int {
	if g.NumNodes() == 0 {
		return nil
	}
	n := g.NumNodes()
	// One SCCRecMIIs pass serves both the recurrence bound (RecMII is
	// its maximum) and the criticality ranking of the priority sets.
	comps := g.NonTrivialSCCs()
	recs := s.rec.SCCRecMIIs(g, comps, lat)
	ii := 1
	for _, r := range recs {
		if r > ii {
			ii = r
		}
	}
	// depth is copied out of the start scratch before LatestStartInto
	// overwrites the earliest-start vector; RecMII guarantees both
	// relaxations converge, with an all-zero defensive fallback.
	estart, ok := g.EarliestStartInto(&s.start, lat, ii)
	s.depth = growInts(s.depth, n)
	if ok {
		copy(s.depth, estart)
	} else {
		zeroInts(s.depth)
	}
	depth := s.depth
	lstart, ok := g.LatestStartInto(&s.start, lat, ii)
	s.height = growInts(s.height, n)
	height := s.height
	if ok {
		maxL := 0
		for _, t := range lstart {
			if t > maxL {
				maxL = t
			}
		}
		for i, t := range lstart {
			height[i] = maxL - t
		}
	} else {
		zeroInts(height)
	}

	s.ordered = growCap(s.ordered, n)
	s.placed = growBools(s.placed, n)

	// Set membership by stamp and the candidate frontier as a flagged
	// slice: the sweep is allocation-free after these buffers. inSet
	// stamps are compared against this call's epoch-offset set IDs, so
	// stale stamps from earlier graphs never collide.
	s.inSet = growInts(s.inSet, n)
	s.inR = growBools(s.inR, n)
	s.rbuf = growCap(s.rbuf, n)

	// fr accumulates, across all sets, the direction-wise neighbours of
	// every ordered node, so a swing refill scans one deduplicated list
	// instead of re-walking the adjacency of everything ordered so far
	// (which made the sweep quadratic on long dependence chains).
	s.fr.succ = growCap(s.fr.succ, n)
	s.fr.pred = growCap(s.fr.pred, n)
	s.fr.inSucc = growBools(s.fr.inSucc, n)
	s.fr.inPred = growBools(s.fr.inPred, n)

	sets := s.rankedSets(g, comps, recs)
	base := s.epoch
	s.epoch += len(sets)
	for si, set := range sets {
		for _, n := range set {
			s.inSet[n] = base + si + 1
		}
		orderSet(g, set, s.inSet, base+si+1, depth, height, &s.ordered, s.placed, &s.rbuf, s.inR, &s.fr)
	}
	return s.ordered
}

// growCap returns buf emptied with capacity at least n, reallocating
// only on growth.
func growCap(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, 0, n)
	}
	return buf[:0]
}

// growInts returns buf resized to n (contents unspecified),
// reallocating only on growth.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growBools returns buf resized to n with every flag false,
// reallocating only on growth.
func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

//schedvet:alloc-free
func zeroInts(buf []int) {
	for i := range buf {
		buf[i] = 0
	}
}

// frontiers is the incremental candidate pool of the swing sweep: for
// each direction, the deduplicated neighbours of every node ordered so
// far. Membership in a refill is a pure function of which nodes are
// placed, so maintaining the pool at placement time yields exactly the
// candidate set the original ordered-rescan produced.
type frontiers struct {
	succ, pred     []int
	inSucc, inPred []bool
}

// extend records the neighbours of a just-placed node v.
func (f *frontiers) extend(g *ddg.Graph, v int) {
	for _, n := range g.Successors(v) {
		if !f.inSucc[n] {
			f.inSucc[n] = true
			f.succ = append(f.succ, n)
		}
	}
	for _, n := range g.Predecessors(v) {
		if !f.inPred[n] {
			f.inPred[n] = true
			f.pred = append(f.pred, n)
		}
	}
}

// orderSet runs the swing alternating sweep over one priority set.
// inSet[n] == setID marks membership; rbuf and inR are the reusable
// candidate frontier (inR must be all-false on entry and is all-false
// on return, since the sweep always drains the frontier).
func orderSet(g *ddg.Graph, set []int, inSet []int, setID int, depth, height []int, ordered *[]int, placed []bool, rbuf *[]int, inR []bool, fr *frontiers) {
	const (
		topDown  = 0
		bottomUp = 1
	)

	remaining := 0
	for _, n := range set {
		if !placed[n] {
			remaining++
		}
	}

	r := (*rbuf)[:0]
	defer func() { *rbuf = r }()
	add := func(n int) {
		if inSet[n] == setID && !placed[n] && !inR[n] {
			inR[n] = true
			r = append(r, n)
		}
	}

	// candidates refills r with the unplaced members of the set adjacent
	// to the already ordered nodes, in the given direction. The frontier
	// pool holds exactly those neighbours; the selection below is order-
	// insensitive (pick breaks every tie by node ID), so scanning the
	// pool instead of the ordered list reproduces the original order.
	candidates := func(dir int) {
		var pool []int
		if dir == topDown {
			pool = fr.succ
		} else {
			pool = fr.pred
		}
		for _, n := range pool {
			add(n)
		}
	}

	for remaining > 0 {
		dir := topDown
		candidates(topDown)
		if len(r) == 0 {
			candidates(bottomUp)
			if len(r) > 0 {
				dir = bottomUp
			}
		}
		if len(r) == 0 {
			// Fresh component: seed with the most critical node (least
			// slack, i.e. greatest depth+height), descend top-down.
			best := -1
			for _, n := range set {
				if placed[n] {
					continue
				}
				if best == -1 || moreCritical(n, best, depth, height) {
					best = n
				}
			}
			inR[best] = true
			r = append(r, best)
		}

		for len(r) > 0 {
			// Drain r in the current direction, expanding within the set.
			for len(r) > 0 {
				i := pick(r, dir, depth, height)
				v := r[i]
				r[i] = r[len(r)-1]
				r = r[:len(r)-1]
				inR[v] = false
				if placed[v] {
					continue
				}
				placed[v] = true
				remaining--
				*ordered = append(*ordered, v)
				fr.extend(g, v)
				var neigh []int
				if dir == topDown {
					neigh = g.Successors(v)
				} else {
					neigh = g.Predecessors(v)
				}
				for _, n := range neigh {
					add(n)
				}
			}
			// Swing: continue from the other side of the ordered nodes.
			if dir == topDown {
				dir = bottomUp
			} else {
				dir = topDown
			}
			candidates(dir)
		}
	}
}

// pick selects the index in r of the next node: top-down prefers the
// deepest node (longest path from a source), bottom-up the highest
// (longest path to a sink); ties fall to the other metric, then to the
// smaller ID for determinism.
func pick(r []int, dir int, depth, height []int) int {
	bi := 0
	for i := 1; i < len(r); i++ {
		n, best := r[i], r[bi]
		var p1, p2, b1, b2 int
		if dir == 0 {
			p1, p2 = depth[n], height[n]
			b1, b2 = depth[best], height[best]
		} else {
			p1, p2 = height[n], depth[n]
			b1, b2 = height[best], depth[best]
		}
		switch {
		case p1 > b1:
			bi = i
		case p1 == b1 && p2 > b2:
			bi = i
		case p1 == b1 && p2 == b2 && n < best:
			bi = i
		}
	}
	return bi
}

// moreCritical ranks seed candidates: smaller slack first (depth+height
// is larger on critical paths), then smaller ID.
func moreCritical(a, b int, depth, height []int) bool {
	ca, cb := depth[a]+height[a], depth[b]+height[b]
	if ca != cb {
		return ca > cb
	}
	return a < b
}
