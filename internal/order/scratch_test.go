package order

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
)

// TestScratchComputeMatchesFresh pins the scratch contract across the
// corpus shapes the fuzz layer generates: a warm, arena-backed Compute
// is element-identical to a fresh-allocation run, for both the order
// and the ranked sets, no matter what graph it last ran on.
func TestScratchComputeMatchesFresh(t *testing.T) {
	var s Scratch
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		g := loopgen.Loop(rng)
		warm := s.Compute(g, lat)
		fresh := Compute(g, lat)
		if !reflect.DeepEqual(warm, fresh) {
			t.Fatalf("loop %d: scratch order %v != fresh %v", i, warm, fresh)
		}
	}
}

// sizedChain builds a dependence chain of n ALU operations with a
// closing recurrence, for exercising one scratch across graphs of
// wildly different sizes.
func sizedChain(n int) *ddg.Graph {
	g := ddg.NewGraph(n, n)
	for i := 0; i < n; i++ {
		g.AddNode(ddg.OpALU, fmt.Sprintf("n%d", i))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 0)
	}
	g.AddEdge(n-1, 0, 1)
	return g
}

// TestScratchComputeAcrossSizes rebinds one scratch across graphs of
// wildly different sizes, the pattern a session-owned scratch sees.
func TestScratchComputeAcrossSizes(t *testing.T) {
	var s Scratch
	graphs := []*ddg.Graph{
		sizedChain(2), sizedChain(300), sizedChain(5),
		loopgen.Loop(rand.New(rand.NewSource(4))), sizedChain(60), sizedChain(3),
	}
	for round := 0; round < 3; round++ {
		for gi, g := range graphs {
			warm := s.Compute(g, lat)
			fresh := Compute(g, lat)
			if !reflect.DeepEqual(warm, fresh) {
				t.Fatalf("graph %d round %d: scratch order diverges", gi, round)
			}
		}
	}
}

// TestScratchComputeWarmAllocFree gates the arena payoff: after the
// first call on a graph shape, repeated per-II recomputation allocates
// nothing.
func TestScratchComputeWarmAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; accounting is meaningless")
	}
	loops := loopgen.Suite(loopgen.Options{Seed: 17, Count: 4})
	var s Scratch
	for _, g := range loops {
		for i := 0; i < 2; i++ {
			s.Compute(g, lat)
		}
	}
	for gi, g := range loops {
		g := g
		if avg := testing.AllocsPerRun(20, func() { s.Compute(g, lat) }); avg != 0 {
			t.Fatalf("loop %d: warm Compute allocates %.1f times per call, want 0", gi, avg)
		}
	}
}
