package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func lat(k ddg.OpKind) int { return machine.DefaultLatencies()[k] }

// figure6 builds the paper's introductory graph.
func figure6() *ddg.Graph {
	g := ddg.NewGraph(6, 6)
	a := g.AddNode(ddg.OpALU, "A")
	b := g.AddNode(ddg.OpALU, "B")
	c := g.AddNode(ddg.OpLoad, "C")
	d := g.AddNode(ddg.OpALU, "D")
	e := g.AddNode(ddg.OpALU, "E")
	f := g.AddNode(ddg.OpALU, "F")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, b, 1)
	g.AddEdge(d, e, 0)
	g.AddEdge(e, f, 0)
	return g
}

func TestSetsPutSCCFirst(t *testing.T) {
	g := figure6()
	sets := Sets(g, lat)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2 (SCC + rest)", len(sets))
	}
	if want := []int{1, 2, 3}; !sameMembers(sets[0], want) {
		t.Errorf("first set = %v, want the SCC %v", sets[0], want)
	}
	if want := []int{0, 4, 5}; !sameMembers(sets[1], want) {
		t.Errorf("second set = %v, want %v", sets[1], want)
	}
}

func TestSetsOrderedByCriticality(t *testing.T) {
	g := ddg.NewGraph(4, 4)
	a := g.AddNode(ddg.OpALU, "") // SCC 1: latency 2 cycle
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpFDiv, "") // SCC 2: latency 18 cycle
	d := g.AddNode(ddg.OpFDiv, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, c, 1)

	sets := Sets(g, lat)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	if !sameMembers(sets[0], []int{2, 3}) {
		t.Errorf("most critical SCC (fdiv cycle) must come first, got %v", sets[0])
	}
}

func TestComputeIsAPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := loopgen.Loop(rng)
		order := Compute(g, lat)
		if len(order) != g.NumNodes() {
			return false
		}
		seen := make([]bool, g.NumNodes())
		for _, v := range order {
			if v < 0 || v >= g.NumNodes() || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeListsSCCBeforeRest(t *testing.T) {
	g := figure6()
	order := Compute(g, lat)
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, scc := range []int{1, 2, 3} {
		for _, rest := range []int{0, 4, 5} {
			if pos[scc] > pos[rest] {
				t.Errorf("SCC node %d ordered after non-SCC node %d: %v", scc, rest, order)
			}
		}
	}
}

// TestSwingNeighbourProperty: when a node is listed, either all its
// distance-0 predecessors or all its distance-0 successors within the
// already-listed prefix form a "side" — more precisely, the heuristic
// guarantees a node is never listed after BOTH a predecessor and a
// successor unless it sits between two already-ordered regions (which
// only happens for recurrence closures). We check the weaker,
// testable form the paper relies on: for acyclic graphs, every node
// (except set seeds) has at least one neighbour listed before it.
func TestSwingNeighbourProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := loopgen.Loop(rng)
		order := Compute(g, lat)
		listed := make([]bool, g.NumNodes())
		for i, v := range order {
			if i > 0 && !hasListedNeighbour(g, v, listed) && hasAnyNeighbour(g, v) && !allNeighboursUnlisted(g, v, listed, order[:i]) {
				return false
			}
			listed[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func hasListedNeighbour(g *ddg.Graph, v int, listed []bool) bool {
	for _, p := range g.Predecessors(v) {
		if listed[p] {
			return true
		}
	}
	for _, s := range g.Successors(v) {
		if listed[s] {
			return true
		}
	}
	return false
}

func hasAnyNeighbour(g *ddg.Graph, v int) bool {
	return len(g.Predecessors(v)) > 0 || len(g.Successors(v)) > 0
}

// allNeighboursUnlisted reports whether none of v's neighbours appear
// in the listed prefix — then v is a legitimate fresh seed of a new
// connected component.
func allNeighboursUnlisted(g *ddg.Graph, v int, listed []bool, _ []int) bool {
	return !hasListedNeighbour(g, v, listed)
}

func TestComputeEmptyGraph(t *testing.T) {
	g := ddg.NewGraph(0, 0)
	if order := Compute(g, lat); len(order) != 0 {
		t.Errorf("empty graph order = %v", order)
	}
}

func TestComputeSingleNode(t *testing.T) {
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpALU, "")
	if order := Compute(g, lat); len(order) != 1 || order[0] != 0 {
		t.Errorf("order = %v, want [0]", order)
	}
}

func TestComputeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := loopgen.Loop(rng)
	a := Compute(g, lat)
	b := Compute(g, lat)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d: %v vs %v", i, a, b)
		}
	}
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}
