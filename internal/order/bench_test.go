package order

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func BenchmarkCompute(b *testing.B) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 128})
	lats := machine.DefaultLatencies()
	lat := func(k ddg.OpKind) int { return lats[k] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(loops[i%len(loops)], lat)
	}
}
