package postpart

import (
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
	"clustersched/internal/sched"
	"clustersched/internal/verify"
)

func TestBaselineSchedulesValidly(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 14, Count: 60})
	m := machine.NewBusedGP(2, 2, 1)
	for i, g := range loops {
		out, err := Run(g, m, Options{})
		if err != nil {
			t.Errorf("loop %d: %v", i, err)
			continue
		}
		in := sched.Input{
			Graph:       out.Assignment.Graph,
			Machine:     m,
			ClusterOf:   out.Assignment.ClusterOf,
			CopyTargets: out.Assignment.CopyTargets,
			II:          out.II,
		}
		if err := verify.Schedule(in, out.Schedule); err != nil {
			t.Errorf("loop %d: invalid schedule: %v", i, err)
		}
		if out.II < out.MII {
			t.Errorf("loop %d: II %d below MII %d", i, out.II, out.MII)
		}
	}
}

// TestPreSchedulingAssignmentBeatsBaseline reproduces the paper's
// related-work argument: partitioning after scheduling ignores
// recurrences, so the pre-scheduling assignment must match the unified
// II on clearly more loops.
func TestPreSchedulingAssignmentBeatsBaseline(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 16, Count: 200})
	m := machine.NewBusedGP(2, 2, 1)
	u := m.Unified()
	preMatch, postMatch, total := 0, 0, 0
	for _, g := range loops {
		uo, err := pipeline.Run(g, u, pipeline.Options{})
		if err != nil {
			continue
		}
		pre, err1 := pipeline.Run(g, m, pipeline.Options{
			Assign: assign.Options{Variant: assign.HeuristicIterative},
		})
		post, err2 := Run(g, m, Options{})
		if err1 != nil || err2 != nil {
			continue
		}
		total++
		if pre.II <= uo.II {
			preMatch++
		}
		if post.II <= uo.II {
			postMatch++
		}
	}
	if total < 150 {
		t.Fatalf("only %d comparable loops", total)
	}
	if preMatch <= postMatch {
		t.Errorf("pre-scheduling assignment (%d/%d) should beat post-scheduling partitioning (%d/%d)",
			preMatch, total, postMatch, total)
	}
}

func TestBaselineRejectsInvalidGraph(t *testing.T) {
	g := ddg.NewGraph(2, 2)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := Run(g, machine.NewBusedGP(2, 2, 1), Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}
