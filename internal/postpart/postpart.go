// Package postpart implements the post-scheduling cluster partitioning
// baseline of Capitanio, Dutt & Nicolau (MICRO 1992), which the
// paper's related-work section argues against for cyclic code: first
// modulo-schedule the loop for the equivalent unified machine, then
// partition the scheduled operations across clusters (balancing each
// cycle's issue load), insert the required copies, and re-run the
// modulo scheduler with the cluster annotations, escalating II until
// it fits. Because partitioning happens after scheduling, the impact
// of breaking critical recurrences across clusters is not considered —
// exactly the failure mode the paper predicts. The experiments package
// compares this baseline against pre-scheduling cluster assignment.
package postpart

import (
	"fmt"
	"sort"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/sched"
)

// Options configures the baseline.
type Options struct {
	// SchedBudgetRatio is passed to the modulo scheduler.
	SchedBudgetRatio int
	// MaxIISlack bounds the II search (default 96, as in pipeline).
	MaxIISlack int
}

// Outcome mirrors pipeline.Outcome for the baseline.
type Outcome struct {
	II         int
	MII        int
	Assignment *assign.Result
	Schedule   *sched.Schedule
}

// Run schedules loop g on clustered machine m with post-scheduling
// partitioning.
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Outcome, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("postpart: invalid graph: %w", err)
	}
	slack := opts.MaxIISlack
	if slack <= 0 {
		slack = 96
	}
	unified := m.Unified()
	base := mii.MII(g, m)

	for ii := base; ii <= base+slack; ii++ {
		// Phase 1: schedule as straight modulo-scheduled code on the
		// unified machine.
		us, ok := sched.IMS(sched.Input{Graph: g, Machine: unified, II: ii}, opts.SchedBudgetRatio)
		if !ok {
			continue
		}
		// Phase 2: partition the scheduled operations over clusters,
		// balancing per-slot issue load, with no regard for
		// recurrences (the defining property of the baseline).
		clusterOf := partition(g, m, us, ii)
		// Phase 3: materialize the copies this partition implies and
		// re-schedule with the annotations. We reuse the assignment
		// package's copy materialization by replaying the fixed
		// partition through its capacity model.
		res, ok := materialize(g, m, clusterOf, ii)
		if !ok {
			continue // partition needs more copies than the fabric has
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		s, ok := sched.IMS(in, opts.SchedBudgetRatio)
		if !ok {
			continue
		}
		return &Outcome{II: ii, MII: base, Assignment: res, Schedule: s}, nil
	}
	return nil, fmt.Errorf("postpart: no schedule for %q within II <= %d", m.Name, base+slack)
}

// partition distributes the unified schedule's operations across
// clusters: operations are visited slot by slot in scheduled order and
// dealt to the cluster with a capable free unit in that slot that
// currently holds the fewest operations — local load balancing with no
// recurrence awareness, in the spirit of treating the loop as straight
// line code.
func partition(g *ddg.Graph, m *machine.Config, s *sched.Schedule, ii int) []int {
	n := g.NumNodes()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa := ((s.CycleOf[order[a]] % ii) + ii) % ii
		sb := ((s.CycleOf[order[b]] % ii) + ii) % ii
		if sa != sb {
			return sa < sb
		}
		return s.CycleOf[order[a]] < s.CycleOf[order[b]]
	})

	clusterOf := make([]int, n)
	loadTotal := make([]int, m.NumClusters())
	type slotKey struct{ cl, slot int }
	slotUsed := map[slotKey]int{}

	for _, v := range order {
		slot := ((s.CycleOf[v] % ii) + ii) % ii
		kind := g.Nodes[v].Kind
		best, bestLoad := -1, 0
		for cl := 0; cl < m.NumClusters(); cl++ {
			cap := m.Clusters[cl].FUCountFor(kind)
			if cap == 0 || slotUsed[slotKey{cl, slot}] >= cap {
				continue
			}
			if best == -1 || loadTotal[cl] < bestLoad {
				best, bestLoad = cl, loadTotal[cl]
			}
		}
		if best == -1 {
			// The slot is saturated everywhere (can happen when the
			// unified schedule packed a wide row); fall back to the
			// least-loaded capable cluster and let re-scheduling move it.
			for cl := 0; cl < m.NumClusters(); cl++ {
				if m.Clusters[cl].FUCountFor(kind) == 0 {
					continue
				}
				if best == -1 || loadTotal[cl] < bestLoad {
					best, bestLoad = cl, loadTotal[cl]
				}
			}
		}
		clusterOf[v] = best
		loadTotal[best]++
		slotUsed[slotKey{best, slot}]++
	}
	return clusterOf
}

// materialize builds the annotated graph (copy nodes, rerouted edges)
// for a fixed partition, reporting false when the communication fabric
// cannot carry the implied copies at this II.
func materialize(g *ddg.Graph, m *machine.Config, clusterOf []int, ii int) (*assign.Result, bool) {
	return assign.Materialize(g, m, clusterOf, ii)
}
