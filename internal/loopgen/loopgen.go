// Package loopgen generates the synthetic loop suite that stands in
// for the paper's 1327 Fortran innermost loops (Perfect Club, SPEC-89,
// Livermore), which were provided privately by HP Labs and are not
// available. The generator is seeded and deterministic, and its output
// is tuned to match every statistic the paper publishes about the
// suite (Table 1): loop count, fraction of loops containing
// recurrences, node/edge counts, and SCC count and size distributions.
//
// Loops are built the way compiled Fortran bodies look after
// load-store elimination, back-substitution and IF-conversion: a
// sequence of mostly independent statements (loads feeding a small
// computation tree feeding a store), occasional value reuse across
// statements, reduction statements whose accumulator forms a
// recurrence cycle, and a closing branch. See DESIGN.md Section 4 for
// the substitution rationale.
package loopgen

import (
	"math"
	"math/rand"

	"clustersched/internal/ddg"
)

// Options configures suite generation.
type Options struct {
	// Seed makes the suite reproducible; the default suite uses Seed 1.
	Seed int64
	// Count is the number of loops (default 1327, as in the paper).
	Count int
}

// DefaultCount is the paper's suite size.
const DefaultCount = 1327

// Suite generates the loop suite. Loops are drawn from one RNG stream,
// so a given (seed, count) always yields the same suite.
func Suite(opts Options) []*ddg.Graph {
	if opts.Count == 0 {
		opts.Count = DefaultCount
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	loops := make([]*ddg.Graph, opts.Count)
	for i := range loops {
		loops[i] = Loop(rng)
	}
	return loops
}

// MaxNodes is the paper's largest loop size.
const MaxNodes = 161

// Loop generates a single synthetic loop body from the RNG stream.
func Loop(rng *rand.Rand) *ddg.Graph {
	target := drawNodeCount(rng)
	g := ddg.NewGraph(target, target*2)
	if target <= 3 {
		// Tiny loops: a bare copy-style body (Table 1's 2-node loops).
		ld := g.AddNode(ddg.OpLoad, "")
		st := g.AddNode(ddg.OpStore, "")
		g.AddEdge(ld, st, 0)
		if target == 3 {
			g.AddNode(ddg.OpBranch, "")
		}
		return g
	}
	b := &builder{rng: rng, g: g, target: target}

	for _, size := range planSCCs(rng, target) {
		b.reductionStatement(size)
	}
	for b.room(2) {
		b.plainStatement()
	}
	// The loop-closing branch; its induction variable was removed by
	// back-substitution, so it has no producers in the body.
	g.AddNode(ddg.OpBranch, "")
	return g
}

// builder emits statements into a graph under a node budget.
type builder struct {
	rng    *rand.Rand
	g      *ddg.Graph
	target int
	values []int // produced values usable as later inputs
	hubs   []int // designated widely shared values (subscripts etc.)
}

// room reports whether at least n more operations fit before the
// branch reserve.
func (b *builder) room(n int) bool {
	return b.g.NumNodes()+n <= b.target-1
}

// input connects a producer to consumer: usually a fresh load,
// sometimes a recently computed value (in-statement reuse), sometimes
// one of the loop's hub values (a shared subscript or invariant).
// Reuse keeps dataflow local — compiled bodies scatter few distinct
// values across statements — which is what keeps real loops
// partitionable across clusters. Occasionally the reuse is of the
// previous iteration's value (distance 1).
func (b *builder) input(consumer int) {
	r := b.rng.Float64()
	reuse := -1
	switch {
	case len(b.values) > 0 && (r < 0.18 || !b.room(1)):
		// Local reuse: one of the last few values.
		w := len(b.values)
		if w > 4 {
			w = 4
		}
		reuse = b.values[len(b.values)-1-b.rng.Intn(w)]
	case len(b.hubs) > 0 && r < 0.30:
		reuse = b.hubs[b.rng.Intn(len(b.hubs))]
	}
	if reuse >= 0 {
		dist := 0
		if b.rng.Float64() < 0.12 {
			dist = 1
		}
		b.g.AddEdge(reuse, consumer, dist)
		return
	}
	ld := b.g.AddNode(ddg.OpLoad, "")
	b.values = append(b.values, ld)
	b.g.AddEdge(ld, consumer, 0)
}

// designateHub occasionally promotes the statement's result to a hub
// value shared by later statements.
func (b *builder) designateHub() {
	if len(b.hubs) < 2 && len(b.values) > 0 && b.rng.Float64() < 0.35 {
		b.hubs = append(b.hubs, b.values[len(b.values)-1])
	}
}

// computeKind draws an arithmetic operation kind.
func (b *builder) computeKind() ddg.OpKind {
	r := b.rng.Float64()
	switch {
	case r < 0.42:
		return ddg.OpALU
	case r < 0.50:
		return ddg.OpShift
	case r < 0.72:
		return ddg.OpFAdd
	case r < 0.94:
		return ddg.OpFMul
	case r < 0.985:
		return ddg.OpFDiv
	default:
		return ddg.OpFSqrt
	}
}

// plainStatement emits loads -> a small computation chain/tree -> an
// optional store, the shape of "a(i) = b(i)*c(i) + d".
func (b *builder) plainStatement() {
	depth := 1 + b.rng.Intn(4)
	var cur int = -1
	for i := 0; i < depth && b.room(2); i++ {
		op := b.g.AddNode(b.computeKind(), "")
		if cur >= 0 {
			b.g.AddEdge(cur, op, 0)
		} else {
			b.input(op)
		}
		// Binary operations take a second input.
		if b.rng.Float64() < 0.70 {
			b.input(op)
		}
		cur = op
		b.values = append(b.values, op)
	}
	if cur >= 0 && b.room(1) && b.rng.Float64() < 0.70 {
		st := b.g.AddNode(ddg.OpStore, "")
		b.g.AddEdge(cur, st, 0)
	}
	b.designateHub()
}

// reductionStatement emits a recurrence of the given cycle size: a
// chain of operations whose last result feeds the first in the next
// iteration (an accumulator such as "s = s + a(i)*b(i)", or a linear
// recurrence), plus inputs from outside the cycle and an optional
// store of the accumulator.
func (b *builder) reductionStatement(size int) {
	if !b.room(size) {
		size = b.target - 1 - b.g.NumNodes()
	}
	if size < 2 {
		return
	}
	cyc := make([]int, size)
	for i := range cyc {
		cyc[i] = b.g.AddNode(b.computeKind(), "")
		if i > 0 {
			b.g.AddEdge(cyc[i-1], cyc[i], 0)
		}
	}
	dist := 1
	if b.rng.Float64() < 0.15 {
		dist = 2 // an occasional distance-2 recurrence
	}
	b.g.AddEdge(cyc[size-1], cyc[0], dist)
	// A chord inside larger recurrences, for non-simple cycles.
	if size >= 4 && b.rng.Float64() < 0.4 {
		a := b.rng.Intn(size - 2)
		c := a + 2 + b.rng.Intn(size-a-2)
		b.g.AddEdge(cyc[a], cyc[c], 0)
	}
	// External inputs into a couple of cycle members.
	if b.room(1) {
		b.input(cyc[0])
	}
	if size >= 3 && b.rng.Float64() < 0.5 && b.room(1) {
		b.input(cyc[b.rng.Intn(size)])
	}
	// The accumulator is usable (and often stored) downstream.
	b.values = append(b.values, cyc[size-1])
	if b.room(1) && b.rng.Float64() < 0.5 {
		st := b.g.AddNode(ddg.OpStore, "")
		b.g.AddEdge(cyc[size-1], st, 0)
	}
}

// planSCCs decides how many recurrence cycles a loop of n operations
// carries and their sizes, calibrated against Table 1: ~301/1327 loops
// contain recurrences, averaging 0.4 SCCs per loop and 9 recurrence
// nodes per SCC-bearing loop, at most 6 SCCs and 48 recurrence nodes.
func planSCCs(rng *rand.Rand, n int) []int {
	if n < 4 || rng.Float64() >= sccBias(n) {
		return nil
	}
	count := 1
	for count < 6 && rng.Float64() < 0.45 {
		count++
	}
	budget := n - 1
	if budget > 48 {
		budget = 48
	}
	var sizes []int
	for i := 0; i < count && budget >= 2; i++ {
		size := 2 + int(math.Exp(rng.NormFloat64()*0.9+1.15))
		if size > 24 {
			size = 24
		}
		if size > budget {
			size = budget
		}
		sizes = append(sizes, size)
		budget -= size
	}
	return sizes
}

// ShuffleIDs returns an isomorphic copy of g with node IDs permuted
// uniformly at random. The generator emits nodes in statement order,
// which makes plain ID order an artificially good assignment order;
// shuffled copies remove that correlation (used by the node-ordering
// ablation).
func ShuffleIDs(g *ddg.Graph, rng *rand.Rand) *ddg.Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := ddg.NewGraph(n, g.NumEdges())
	inverse := make([]int, n)
	for oldID, newID := range perm {
		inverse[newID] = oldID
	}
	for newID := 0; newID < n; newID++ {
		old := g.Nodes[inverse[newID]]
		out.AddNode(old.Kind, old.Name)
	}
	for _, e := range g.Edges {
		out.AddEdge(perm[e.From], perm[e.To], e.Distance)
	}
	return out
}

// sccBias is the probability that a loop of n operations contains
// recurrences, increasing with loop size and calibrated against the
// paper's 301/1327 overall fraction.
func sccBias(n int) float64 {
	p := 0.036 + 0.0125*float64(n)
	if p > 0.60 {
		p = 0.60
	}
	return p
}

// drawNodeCount samples the loop size: lognormal, clamped to the
// paper's [2, 161] range, with parameters tuned so the suite average
// lands near 17.5 operations.
func drawNodeCount(rng *rand.Rand) int {
	const mu, sigma = 2.55, 0.85
	v := math.Exp(rng.NormFloat64()*sigma + mu)
	n := int(v)
	if n < 2 {
		n = 2
	}
	if n > MaxNodes {
		n = MaxNodes
	}
	return n
}
