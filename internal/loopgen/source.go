package loopgen

import (
	"fmt"
	"math/rand"
	"strings"

	"clustersched/internal/frontend"
	"clustersched/internal/lint"
)

// SourceCorpus generates a deterministic corpus of count loop-language
// programs by fuzz-mining: candidate loops are drawn from one seeded
// RNG stream over the full surface of the language grammar — array
// streams, stencils, reductions, scalar temporaries, loop-carried
// array recurrences, sqrt and select intrinsics, negation and
// parenthesized subtrees — and a candidate survives only when it
// clears the same bar a user program faces: it compiles
// (frontend.Compile accepts it and the graph validates), it is
// completely lint-clean (zero findings from lint.Source, warnings
// included), and its graph lands in a useful size band. Rejected
// candidates are discarded and the stream advances, so a given
// (seed, count) always yields the same corpus text.
//
// internal/compile checks its checked-in corpus against this function
// byte for byte, so edits here (or to the frontend or the lint rules)
// deliberately fail that test until the corpus is regenerated.
func SourceCorpus(seed int64, count int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for accepted := 0; accepted < count; {
		src := sourceLoop(rng, fmt.Sprintf("gen%03d", accepted))
		if !sourceLoopOK(src) {
			continue
		}
		b.WriteString(src)
		accepted++
	}
	return b.String()
}

// sourceLoopOK is the mining filter.
func sourceLoopOK(src string) bool {
	loops, err := frontend.Compile(src)
	if err != nil || len(loops) != 1 {
		return false
	}
	if n := loops[0].Graph.NumNodes(); n < 5 || n > 48 {
		return false
	}
	return len(lint.Source("corpus", src)) == 0
}

// srcGen generates one candidate loop body.
type srcGen struct {
	rng *rand.Rand
	// ins and outs are the arrays this loop reads and writes; keeping
	// the palettes disjoint except through explicit recurrence
	// statements keeps most candidates well-formed.
	ins  []string
	outs []string
	// scalars defined so far, available as operands; pending is a
	// temporary the next statement must consume (so mined programs
	// rarely die to dead-scalar lint).
	scalars []string
	pending string
}

func sourceLoop(rng *rand.Rand, name string) string {
	g := &srcGen{
		rng:  rng,
		ins:  []string{"a", "b", "c", "d"},
		outs: []string{"u", "v", "w"},
	}
	nstmt := 1 + rng.Intn(4)
	var lines []string
	for k := 0; k < nstmt; k++ {
		lines = append(lines, g.statement(k, k == nstmt-1))
	}
	return "loop " + name + " {\n\t" + strings.Join(lines, "\n\t") + "\n}\n"
}

// statement draws one statement. The last statement never defines a
// fresh temporary (nothing could consume it).
func (g *srcGen) statement(k int, last bool) string {
	switch r := g.rng.Intn(10); {
	case r < 4 || last && r < 6:
		// Array store: u[i] = expr.
		return g.arrayRef(g.outs, 0) + " = " + g.expr(2)
	case r < 6:
		// Scalar temporary consumed by the next statement.
		t := fmt.Sprintf("t%d", k)
		s := t + " = " + g.expr(2)
		g.pending = t
		g.scalars = append(g.scalars, t)
		return s
	case r < 8:
		// Reduction: s = s + expr, a scalar recurrence.
		s := fmt.Sprintf("s%d", k)
		g.scalars = append(g.scalars, s)
		return s + " = " + s + " " + g.reduceOp() + " " + g.expr(1)
	default:
		// Loop-carried array recurrence: a[i] = f(a[i-k], ...).
		arr := g.ins[g.rng.Intn(len(g.ins))]
		dist := 1 + g.rng.Intn(2)
		return fmt.Sprintf("%s[i] = %s[i-%d] %s %s", arr, arr, dist, g.binOp(), g.expr(1))
	}
}

func (g *srcGen) reduceOp() string { return []string{"+", "+", "*"}[g.rng.Intn(3)] }
func (g *srcGen) binOp() string    { return []string{"+", "-", "*", "*", "/"}[g.rng.Intn(5)] }

// expr draws an expression of bounded depth; a pending temporary is
// folded into the first expression drawn after its definition.
func (g *srcGen) expr(depth int) string {
	if g.pending != "" {
		t := g.pending
		g.pending = ""
		return "(" + t + " " + g.binOp() + " " + g.expr(depth) + ")"
	}
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(8) {
	case 0:
		return "sqrt(" + g.expr(depth-1) + ")"
	case 1:
		return fmt.Sprintf("select(%s, %s, %s)", g.leaf(), g.expr(depth-1), g.leaf())
	case 2:
		return "-" + g.leaf()
	case 3:
		return g.leaf()
	default:
		return g.expr(depth-1) + " " + g.binOp() + " " + g.leaf()
	}
}

// leaf draws an operand: an input-array read (possibly a stencil
// neighbor), a defined scalar, or a constant.
func (g *srcGen) leaf() string {
	switch r := g.rng.Intn(10); {
	case r < 6:
		return g.arrayRef(g.ins, g.rng.Intn(5)-2)
	case r < 8 && len(g.scalars) > 0:
		return g.scalars[g.rng.Intn(len(g.scalars))]
	default:
		return []string{"2", "0.5", "3", "1.5"}[g.rng.Intn(4)]
	}
}

func (g *srcGen) arrayRef(pool []string, offset int) string {
	arr := pool[g.rng.Intn(len(pool))]
	switch {
	case offset > 0:
		return fmt.Sprintf("%s[i+%d]", arr, offset)
	case offset < 0:
		return fmt.Sprintf("%s[i%d]", arr, offset)
	default:
		return arr + "[i]"
	}
}
