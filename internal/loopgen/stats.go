package loopgen

import (
	"fmt"
	"strings"

	"clustersched/internal/ddg"
)

// MinAvgMax summarizes a distribution the way Table 1 does.
type MinAvgMax struct {
	Min int
	Avg float64
	Max int
}

func (m MinAvgMax) String() string {
	return fmt.Sprintf("min %d / avg %.1f / max %d", m.Min, m.Avg, m.Max)
}

// accumulate folds one observation into the summary.
func (m *MinAvgMax) accumulate(v, count int, sum *int) {
	if count == 0 || v < m.Min {
		m.Min = v
	}
	if v > m.Max {
		m.Max = v
	}
	*sum += v
}

// SuiteStats are the Table 1 statistics of a loop suite.
type SuiteStats struct {
	Loops         int
	LoopsWithSCC  int
	Nodes         MinAvgMax
	Edges         MinAvgMax
	SCCsPerLoop   MinAvgMax
	NodesInSCC    MinAvgMax // per loop containing non-trivial SCCs
	TotalNodes    int
	TotalEdges    int
	KindHistogram [ddg.NumOpKinds]int
}

// Stats computes the Table 1 statistics of a suite.
func Stats(loops []*ddg.Graph) SuiteStats {
	var s SuiteStats
	s.Loops = len(loops)
	var sumNodes, sumEdges, sumSCCs, sumSCCNodes int
	sccLoops := 0
	for i, g := range loops {
		s.Nodes.accumulate(g.NumNodes(), i, &sumNodes)
		s.Edges.accumulate(g.NumEdges(), i, &sumEdges)
		comps := g.NonTrivialSCCs()
		s.SCCsPerLoop.accumulate(len(comps), i, &sumSCCs)
		if len(comps) > 0 {
			inSCC := 0
			for _, c := range comps {
				inSCC += len(c.Nodes)
			}
			s.NodesInSCC.accumulate(inSCC, sccLoops, &sumSCCNodes)
			sccLoops++
		}
		for k, c := range g.KindCounts() {
			s.KindHistogram[k] += c
		}
	}
	s.LoopsWithSCC = sccLoops
	s.TotalNodes = sumNodes
	s.TotalEdges = sumEdges
	if s.Loops > 0 {
		s.Nodes.Avg = float64(sumNodes) / float64(s.Loops)
		s.Edges.Avg = float64(sumEdges) / float64(s.Loops)
		s.SCCsPerLoop.Avg = float64(sumSCCs) / float64(s.Loops)
	}
	if sccLoops > 0 {
		s.NodesInSCC.Avg = float64(sumSCCNodes) / float64(sccLoops)
	}
	return s
}

// Table renders the statistics in the layout of the paper's Table 1.
func (s SuiteStats) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %8s %6s\n", "Statistic", "Min", "Avg", "Max")
	row := func(name string, m MinAvgMax) {
		fmt.Fprintf(&b, "%-28s %6d %8.1f %6d\n", name, m.Min, m.Avg, m.Max)
	}
	row("Nodes", s.Nodes)
	row("SCCs per loop", s.SCCsPerLoop)
	row("Nodes in non-trivial SCCs", s.NodesInSCC)
	row("Edges", s.Edges)
	fmt.Fprintf(&b, "%-28s %6d\n", "Loops", s.Loops)
	fmt.Fprintf(&b, "%-28s %6d\n", "Loops containing SCCs", s.LoopsWithSCC)
	return b.String()
}
