package loopgen

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
)

func TestSuiteDefaults(t *testing.T) {
	loops := Suite(Options{})
	if len(loops) != DefaultCount {
		t.Fatalf("suite size = %d, want %d", len(loops), DefaultCount)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite(Options{Seed: 42, Count: 50})
	b := Suite(Options{Seed: 42, Count: 50})
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("loop %d differs between identical seeds", i)
		}
	}
	c := Suite(Options{Seed: 43, Count: 50})
	same := 0
	for i := range a {
		if a[i].String() == c[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical suites")
	}
}

func TestAllLoopsValid(t *testing.T) {
	for i, g := range Suite(Options{}) {
		if err := g.Validate(); err != nil {
			t.Fatalf("loop %d invalid: %v", i, err)
		}
	}
}

// TestTable1Statistics pins the suite to the paper's published
// statistics within tolerances: the generator exists precisely to
// reproduce Table 1.
func TestTable1Statistics(t *testing.T) {
	s := Stats(Suite(Options{}))

	if s.Loops != 1327 {
		t.Errorf("loops = %d, want 1327", s.Loops)
	}
	if s.LoopsWithSCC < 270 || s.LoopsWithSCC > 340 {
		t.Errorf("loops with SCCs = %d, want ~301", s.LoopsWithSCC)
	}
	if s.Nodes.Min != 2 {
		t.Errorf("min nodes = %d, want 2", s.Nodes.Min)
	}
	if s.Nodes.Max < 120 || s.Nodes.Max > 161 {
		t.Errorf("max nodes = %d, want ~161", s.Nodes.Max)
	}
	if s.Nodes.Avg < 15.5 || s.Nodes.Avg > 19.5 {
		t.Errorf("avg nodes = %.1f, want ~17.5", s.Nodes.Avg)
	}
	if s.SCCsPerLoop.Avg < 0.3 || s.SCCsPerLoop.Avg > 0.5 {
		t.Errorf("avg SCCs per loop = %.2f, want ~0.4", s.SCCsPerLoop.Avg)
	}
	if s.SCCsPerLoop.Max > 6 {
		t.Errorf("max SCCs per loop = %d, want <= 6", s.SCCsPerLoop.Max)
	}
	if s.NodesInSCC.Avg < 7 || s.NodesInSCC.Avg > 11 {
		t.Errorf("avg nodes in SCCs = %.1f, want ~9", s.NodesInSCC.Avg)
	}
	if s.NodesInSCC.Max > 48 {
		t.Errorf("max nodes in SCCs = %d, want <= 48", s.NodesInSCC.Max)
	}
	if s.NodesInSCC.Min != 2 {
		t.Errorf("min nodes in SCCs = %d, want 2", s.NodesInSCC.Min)
	}
	if s.Edges.Min != 1 {
		t.Errorf("min edges = %d, want 1", s.Edges.Min)
	}
	if s.Edges.Avg < 13 || s.Edges.Avg > 24 {
		t.Errorf("avg edges = %.1f, want ~15-22", s.Edges.Avg)
	}
}

func TestLoopSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Loop(rng)
		return g.NumNodes() >= 2 && g.NumNodes() <= MaxNodes && g.NumEdges() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSCCsAreRecurrencesWithPositiveDistance(t *testing.T) {
	// Every generated loop must be modulo-schedulable: no SCC may have
	// a zero-distance cycle (Validate covers this), and recurrence back
	// edges carry distance >= 1.
	loops := Suite(Options{Seed: 9, Count: 200})
	for i, g := range loops {
		for _, comp := range g.NonTrivialSCCs() {
			in := map[int]bool{}
			for _, n := range comp.Nodes {
				in[n] = true
			}
			hasCarried := false
			for _, e := range g.Edges {
				if in[e.From] && in[e.To] && e.Distance > 0 {
					hasCarried = true
					break
				}
			}
			if !hasCarried {
				t.Errorf("loop %d: SCC %v has no loop-carried edge", i, comp.Nodes)
			}
		}
	}
}

func TestKindMixIsPlausible(t *testing.T) {
	s := Stats(Suite(Options{}))
	total := 0
	for _, c := range s.KindHistogram {
		total += c
	}
	loads := float64(s.KindHistogram[ddg.OpLoad]) / float64(total)
	stores := float64(s.KindHistogram[ddg.OpStore]) / float64(total)
	branches := s.KindHistogram[ddg.OpBranch]
	if loads < 0.15 || loads > 0.50 {
		t.Errorf("load fraction = %.2f, implausible", loads)
	}
	if stores < 0.03 || stores > 0.25 {
		t.Errorf("store fraction = %.2f, implausible", stores)
	}
	if branches < s.Loops/2 {
		t.Errorf("only %d branches for %d loops", branches, s.Loops)
	}
	if s.KindHistogram[ddg.OpCopy] != 0 {
		t.Error("generator must not emit copies; they belong to assignment")
	}
}

func TestStatsOnEmptySuite(t *testing.T) {
	s := Stats(nil)
	if s.Loops != 0 || s.Nodes.Avg != 0 {
		t.Errorf("empty suite stats = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	out := Stats(Suite(Options{Seed: 2, Count: 20})).Table()
	for _, want := range []string{"Nodes", "SCCs per loop", "Edges", "Loops"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table() missing %q:\n%s", want, out)
		}
	}
}

func TestShuffleIDsIsIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 30; i++ {
		g := Loop(rng)
		s := ShuffleIDs(g, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("shuffled graph invalid: %v", err)
		}
		if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
			t.Fatal("shuffle changed graph size")
		}
		// Kind multiset preserved.
		if s.KindCounts() != g.KindCounts() {
			t.Fatal("shuffle changed operation mix")
		}
		// SCC size multiset preserved.
		a := sccSizes(g)
		b := sccSizes(s)
		if len(a) != len(b) {
			t.Fatalf("SCC count changed: %v vs %v", a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("SCC sizes changed: %v vs %v", a, b)
			}
		}
	}
}

func sccSizes(g *ddg.Graph) []int {
	var sizes []int
	for _, c := range g.NonTrivialSCCs() {
		sizes = append(sizes, len(c.Nodes))
	}
	sort.Ints(sizes)
	return sizes
}
