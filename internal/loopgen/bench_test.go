package loopgen

import "testing"

func BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Suite(Options{Seed: int64(i) + 1, Count: 100})
	}
}
