// Package sched implements modulo scheduling for cluster-annotated
// dependence graphs: Rau's iterative modulo scheduler (IMS) and a
// swing modulo scheduler (SMS). Both are "traditional" schedulers in
// the paper's sense — they know nothing about the cluster assignment
// algorithm and simply honour the cluster annotation and the copy
// nodes present in the graph.
package sched

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mrt"
	"clustersched/internal/obs"
)

// Input is a scheduling request: an annotated graph on a machine at a
// fixed candidate II. For a unified machine ClusterOf may be nil
// (everything runs on cluster 0) and CopyTargets empty.
type Input struct {
	Graph       *ddg.Graph
	Machine     *machine.Config
	ClusterOf   []int
	CopyTargets [][]int
	II          int
	// Trace carries observability hooks and the run's cancellation
	// context (see internal/obs); nil disables both. A canceled
	// context makes the scheduler return not-ok between placements.
	Trace *obs.Trace
	// Scratch, when non-nil, supplies reusable working buffers so
	// repeated scheduling attempts (the II-escalation loop) stop
	// allocating per candidate. Results never alias it.
	Scratch *Scratch
}

//schedvet:alloc-free
func (in *Input) clusterOf(n int) int {
	if in.ClusterOf == nil {
		return 0
	}
	return in.ClusterOf[n]
}

//schedvet:alloc-free
func (in *Input) copyTargets(n int) []int {
	if in.CopyTargets == nil {
		return nil
	}
	return in.CopyTargets[n]
}

//schedvet:alloc-free
func (in *Input) isCopy(n int) bool {
	return in.Graph.Nodes[n].Kind == ddg.OpCopy
}

// Schedule is a successful modulo schedule: an absolute start cycle
// per node, all resource and dependence constraints met at interval II.
type Schedule struct {
	II      int
	CycleOf []int
}

// StageCount returns the number of kernel stages (schedule length in
// IIs), i.e. the depth of software-pipelining overlap.
//
//schedvet:alloc-free
func (s *Schedule) StageCount() int {
	maxC := 0
	for _, c := range s.CycleOf {
		if c > maxC {
			maxC = c
		}
	}
	return maxC/s.II + 1
}

// validateInput panics on malformed requests; these are programming
// errors in the caller, not schedulable conditions.
func validateInput(in Input) {
	if in.II <= 0 {
		panic(fmt.Sprintf("sched: non-positive II %d", in.II))
	}
	if in.ClusterOf != nil && len(in.ClusterOf) != in.Graph.NumNodes() {
		panic("sched: ClusterOf length mismatch")
	}
}

// opOf builds the probe-API description of node n: a copy sourced on
// its cluster, or an ordinary operation of its kind.
//
//schedvet:alloc-free
func opOf(in *Input, n int) mrt.Op {
	if in.isCopy(n) {
		return mrt.CopyAt(n, in.clusterOf(n), in.copyTargets(n))
	}
	return mrt.OpAt(n, in.clusterOf(n), in.Graph.Nodes[n].Kind)
}

// place puts node n at the given cycle in the table. It reports false
// when resources are busy.
//
//schedvet:alloc-free
func place(in *Input, table *mrt.Cycle, n, cycle int) bool {
	return table.CommitOp(opOf(in, n), cycle)
}

// canPlace reports whether node n would fit at the given cycle.
//
//schedvet:alloc-free
func canPlace(in *Input, table *mrt.Cycle, n, cycle int) bool {
	return table.ProbeOp(opOf(in, n), cycle)
}

// unplace releases node n's slots.
//
//schedvet:alloc-free
func unplace(table *mrt.Cycle, n int) {
	table.ReleaseOp(mrt.Op{Node: n})
}

// conflictsAt appends to buf[:0] the nodes occupying the resources node
// n needs at the given cycle, reusing the scratch-held buffer.
//
//schedvet:alloc-free
func conflictsAt(in *Input, table *mrt.Cycle, n, cycle int, buf []int) []int {
	return table.ConflictsOf(opOf(in, n), cycle, buf)
}
