package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// unifiedInput wraps a graph for a unified machine at the given II.
func unifiedInput(g *ddg.Graph, width, ii int) Input {
	return Input{Graph: g, Machine: machine.NewUnifiedGP(width), II: ii}
}

// checkSchedule re-verifies dependences and (coarsely) resource counts;
// the full oracle lives in package verify, which cannot be imported
// here without a cycle, so this is the local variant for direct
// scheduler tests.
func checkSchedule(t *testing.T, in Input, s *Schedule) {
	t.Helper()
	lat := in.Machine.Latency
	for i, e := range in.Graph.Edges {
		need := s.CycleOf[e.From] + lat(in.Graph.Nodes[e.From].Kind) - in.II*e.Distance
		if s.CycleOf[e.To] < need {
			t.Errorf("edge %d violated: to@%d < %d", i, s.CycleOf[e.To], need)
		}
	}
	// Per-slot, per-cluster issue counts must respect FU capacity.
	type key struct{ cl, slot int }
	counts := map[key]int{}
	for n := 0; n < in.Graph.NumNodes(); n++ {
		if in.isCopy(n) {
			continue
		}
		slot := ((s.CycleOf[n] % in.II) + in.II) % in.II
		counts[key{in.clusterOf(n), slot}]++
	}
	for k, c := range counts {
		if width := in.Machine.Clusters[k.cl].Width(); c > width {
			t.Errorf("cluster %d slot %d issues %d ops, width %d", k.cl, k.slot, c, width)
		}
	}
}

func schedulers() map[string]func(Input, int) (*Schedule, bool) {
	return map[string]func(Input, int) (*Schedule, bool){
		"IMS": IMS,
		"SMS": SMS,
	}
}

func TestSchedulersOnChain(t *testing.T) {
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			g := ddg.NewGraph(3, 2)
			a := g.AddNode(ddg.OpLoad, "")
			b := g.AddNode(ddg.OpFMul, "")
			c := g.AddNode(ddg.OpStore, "")
			g.AddEdge(a, b, 0)
			g.AddEdge(b, c, 0)
			in := unifiedInput(g, 4, 1)
			s, ok := run(in, 0)
			if !ok {
				t.Fatal("chain unschedulable at II=1")
			}
			checkSchedule(t, in, s)
			if s.CycleOf[b] < 2 || s.CycleOf[c] < 5 {
				t.Errorf("latencies not respected: %v", s.CycleOf)
			}
		})
	}
}

func TestSchedulersRejectIIBelowRecMII(t *testing.T) {
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			g := ddg.NewGraph(2, 2)
			a := g.AddNode(ddg.OpALU, "")
			b := g.AddNode(ddg.OpALU, "")
			g.AddEdge(a, b, 0)
			g.AddEdge(b, a, 1) // RecMII 2
			if _, ok := run(unifiedInput(g, 4, 1), 0); ok {
				t.Error("scheduled below RecMII")
			}
			if _, ok := run(unifiedInput(g, 4, 2), 0); !ok {
				t.Error("failed at RecMII")
			}
		})
	}
}

func TestSchedulersResourceLimited(t *testing.T) {
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			// 8 independent ops on a 4-wide machine at II=2: exactly full.
			g := ddg.NewGraph(8, 0)
			for i := 0; i < 8; i++ {
				g.AddNode(ddg.OpALU, "")
			}
			in := unifiedInput(g, 4, 2)
			s, ok := run(in, 0)
			if !ok {
				t.Fatal("exact-fit schedule failed")
			}
			checkSchedule(t, in, s)
		})
	}
}

func TestSchedulersEmptyGraph(t *testing.T) {
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			g := ddg.NewGraph(0, 0)
			if _, ok := run(unifiedInput(g, 4, 1), 0); !ok {
				t.Error("empty graph should schedule")
			}
		})
	}
}

func TestStageCount(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpFDiv, "") // latency 9
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, b, 0)
	in := unifiedInput(g, 4, 1)
	s, ok := IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	if s.StageCount() < 10 {
		t.Errorf("StageCount = %d, want >= 10 (9-cycle latency at II=1)", s.StageCount())
	}
}

// TestSchedulersOnAssignedClusteredLoops drives both schedulers over
// assigned suite loops and re-checks all constraints, including copies.
func TestSchedulersOnAssignedClusteredLoops(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, mIdx uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				g := loopgen.Loop(rng)
				m := machines[int(mIdx)%len(machines)]
				base := mii.MII(g, m)
				for ii := base; ii < base+8; ii++ {
					res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
					if !ok {
						continue
					}
					in := Input{
						Graph:       res.Graph,
						Machine:     m,
						ClusterOf:   res.ClusterOf,
						CopyTargets: res.CopyTargets,
						II:          ii,
					}
					s, ok := run(in, 0)
					if !ok {
						continue
					}
					checkSchedule(t, in, s)
					return !t.Failed()
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestIMSDisplacementConverges(t *testing.T) {
	// Dense dependent graph with tight resources exercises eviction.
	g := ddg.NewGraph(12, 20)
	for i := 0; i < 12; i++ {
		g.AddNode(ddg.OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
		if i > 1 {
			g.AddEdge(i-2, i, 0)
		}
	}
	in := unifiedInput(g, 4, 3)
	s, ok := IMS(in, 0)
	if !ok {
		t.Fatal("IMS failed on a feasible dense chain")
	}
	checkSchedule(t, in, s)
}

func TestNormalizeShiftsByMultipleOfII(t *testing.T) {
	c := []int{-3, 0, 4}
	normalize(c, 3)
	if c[0] != 0 || c[1] != 3 || c[2] != 7 {
		t.Errorf("normalize = %v, want [0 3 7]", c)
	}
	d := []int{0, 2}
	normalize(d, 3)
	if d[0] != 0 || d[1] != 2 {
		t.Errorf("normalize changed non-negative cycles: %v", d)
	}
}

func TestValidateInputPanics(t *testing.T) {
	g := ddg.NewGraph(1, 0)
	g.AddNode(ddg.OpALU, "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on II=0")
		}
	}()
	IMS(Input{Graph: g, Machine: machine.NewUnifiedGP(4), II: 0}, 0)
}
