package sched

import (
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// fixtures prepares assigned inputs so the benchmarks time scheduling
// alone.
func fixtures(b *testing.B, m *machine.Config) []Input {
	b.Helper()
	loops := loopgen.Suite(loopgen.Options{Seed: 2, Count: 64})
	var ins []Input
	for _, g := range loops {
		base := mii.MII(g, m)
		for ii := base; ii < base+8; ii++ {
			res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
			if !ok {
				continue
			}
			ins = append(ins, Input{
				Graph:       res.Graph,
				Machine:     m,
				ClusterOf:   res.ClusterOf,
				CopyTargets: res.CopyTargets,
				II:          ii,
			})
			break
		}
	}
	if len(ins) == 0 {
		b.Fatal("no fixtures")
	}
	return ins
}

func BenchmarkIMS2Cluster(b *testing.B) {
	ins := fixtures(b, machine.NewBusedGP(2, 2, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IMS(ins[i%len(ins)], 0)
	}
}

func BenchmarkSMS2Cluster(b *testing.B) {
	ins := fixtures(b, machine.NewBusedGP(2, 2, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SMS(ins[i%len(ins)], 0)
	}
}

func BenchmarkIMSUnified16(b *testing.B) {
	m := machine.NewUnifiedGP(16)
	loops := loopgen.Suite(loopgen.Options{Seed: 3, Count: 64})
	var ins []Input
	for _, g := range loops {
		ins = append(ins, Input{Graph: g, Machine: m, II: mii.MII(g, m)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IMS(ins[i%len(ins)], 0)
	}
}
