//go:build !race

package sched

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation allocates and would fail the
// zero-allocation regression test for reasons unrelated to the code.
const raceEnabled = false
