package sched

import (
	"clustersched/internal/obs"
)

// DefaultIMSBudgetRatio is the scheduling-attempt budget per node used
// by IMS when the caller passes a non-positive ratio (Rau reports a
// ratio of a few attempts per operation suffices; we are generous).
const DefaultIMSBudgetRatio = 12

// IMS runs Rau's iterative modulo scheduler on the input at its fixed
// II. It reports false when no schedule was found within the budget
// (including the case where inserted copies push RecMII above II, so
// no schedule can exist).
func IMS(in Input, budgetRatio int) (*Schedule, bool) {
	validateInput(in)
	g := in.Graph
	lat := in.Machine.Latency
	n := g.NumNodes()
	if n == 0 {
		return &Schedule{II: in.II, CycleOf: nil}, true
	}

	s := in.Scratch
	if s == nil {
		s = new(Scratch)
	}
	// If the dependence constraints are unsatisfiable at this II (a
	// recurrence cycle exceeds II), fail immediately.
	lstart, ok := g.LatestStartInto(&s.start, lat, in.II)
	if !ok {
		return nil, false
	}

	if budgetRatio <= 0 {
		budgetRatio = DefaultIMSBudgetRatio
	}
	budget := budgetRatio * n

	table := s.tableFor(&in)
	cycleOf, scheduled, everTried, lastCycle := s.prep(n)

	// Priority: most critical first — smallest latest-start time, ties
	// by node ID for determinism.
	pq := s.heapFor(lstart)
	for i := 0; i < n; i++ {
		pq.push(i)
	}

	for pq.len() > 0 {
		if in.Trace.Canceled() {
			return nil, false
		}
		if budget <= 0 {
			in.Trace.BudgetExhausted(obs.PhaseSched, in.II, -1)
			return nil, false
		}
		budget--
		op := pq.pop()
		if scheduled[op] {
			continue
		}

		estart := 0
		for _, e := range g.InEdges(op) {
			if !scheduled[e.From] {
				continue
			}
			t := cycleOf[e.From] + lat(g.Nodes[e.From].Kind) - in.II*e.Distance
			if t > estart {
				estart = t
			}
		}

		placedAt := -1
		for t := estart; t < estart+in.II; t++ {
			if canPlace(&in, table, op, t) {
				placedAt = t
				break
			}
		}
		if placedAt < 0 {
			// Forced placement: displace whatever occupies the chosen
			// cycle (Rau's "schedule with displacement").
			placedAt = estart
			if everTried[op] && lastCycle[op]+1 > placedAt {
				placedAt = lastCycle[op] + 1
			}
			s.conflicts = conflictsAt(&in, table, op, placedAt, s.conflicts)
			for _, victim := range s.conflicts {
				unplace(table, victim)
				scheduled[victim] = false
				pq.push(victim)
				in.Trace.SchedDisplace(in.II, op, victim)
			}
			if !place(&in, table, op, placedAt) {
				// The conflict list covered every occupant, so this
				// cannot fail for resource reasons; treat defensively.
				return nil, false
			}
		} else if !place(&in, table, op, placedAt) {
			return nil, false
		}
		cycleOf[op] = placedAt
		scheduled[op] = true
		everTried[op] = true
		lastCycle[op] = placedAt

		// Unschedule successors whose dependence from op is now
		// violated; they will be re-placed later.
		for _, e := range g.OutEdges(op) {
			if !scheduled[e.To] || e.To == op {
				continue
			}
			need := placedAt + lat(g.Nodes[op].Kind) - in.II*e.Distance
			if cycleOf[e.To] < need {
				unplace(table, e.To)
				scheduled[e.To] = false
				pq.push(e.To)
				in.Trace.SchedDisplace(in.II, op, e.To)
			}
		}
	}

	return &Schedule{II: in.II, CycleOf: copyOut(cycleOf)}, true
}

// nodeHeap is a concrete binary min-heap of node IDs ordered by
// ascending priority value (critical first), breaking ties by ID. The
// key order is total and every node is enqueued at most once at a time,
// so the pop sequence is exactly the sorted key order — identical to
// what container/heap produced — without boxing every element through
// an any interface.
type nodeHeap struct {
	items []int
	prio  []int
}

//schedvet:alloc-free
func (h *nodeHeap) len() int { return len(h.items) }

//schedvet:alloc-free
func (h *nodeHeap) less(a, b int) bool {
	if h.prio[a] != h.prio[b] {
		return h.prio[a] < h.prio[b]
	}
	return a < b
}

//schedvet:alloc-free
func (h *nodeHeap) push(v int) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//schedvet:alloc-free
func (h *nodeHeap) pop() int {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(h.items[r], h.items[l]) {
			child = r
		}
		if !h.less(h.items[child], h.items[i]) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}
