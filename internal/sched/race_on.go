//go:build race

package sched

// raceEnabled reports whether the binary was built with the race
// detector; see race_off.go.
const raceEnabled = true
