package sched

import (
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// TestSchedulersWarmRunAllocs gates the per-II reset path: with a warm
// Scratch, a whole scheduler run allocates exactly twice — the
// returned Schedule and its copied-out cycle vector — so the per-II
// reset (table, run buffers, start vectors, ordering, work-list heap)
// and the placement loop itself are allocation-free.
func TestSchedulersWarmRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; accounting is meaningless")
	}
	m := machine.NewBusedGP(2, 2, 1)
	var g *ddg.Graph
	for _, cand := range loopgen.Suite(loopgen.Options{Seed: 13, Count: 32}) {
		if g == nil || cand.NumNodes() > g.NumNodes() {
			g = cand
		}
	}
	ii := mii.MII(g, m)
	var res *assign.Result
	for ; ; ii++ {
		r, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if ok {
			res = r
			break
		}
	}
	for name, run := range schedulers() {
		t.Run(name, func(t *testing.T) {
			sc := new(Scratch)
			in := Input{
				Graph:       res.Graph,
				Machine:     m,
				ClusterOf:   res.ClusterOf,
				CopyTargets: res.CopyTargets,
				II:          ii + 2, // slack so both schedulers succeed
				Scratch:     sc,
			}
			if _, ok := run(in, 0); !ok {
				t.Skipf("%s found no schedule; alloc gate not applicable", name)
			}
			if avg := testing.AllocsPerRun(20, func() {
				if _, ok := run(in, 0); !ok {
					t.Fatalf("%s failed on a warm rerun", name)
				}
			}); avg > 2 {
				t.Fatalf("warm %s run allocates %.1f times, want <= 2 (Schedule + cycle copy)", name, avg)
			}
		})
	}
}
