package sched

import (
	"clustersched/internal/ddg"
	"clustersched/internal/mrt"
	"clustersched/internal/order"
)

// Scratch holds the per-run working buffers of both schedulers so an
// II-escalation loop or a batch runner can reuse them across calls
// instead of reallocating per candidate II. The zero value is ready to
// use; buffers grow to the largest graph seen (and shrink when that
// graph was much larger than the current one) and are re-zeroed per
// run. A Scratch is single-threaded — parallel probes each need their
// own — and a successful Schedule copies its cycle vector out, so
// results never alias the scratch.
type Scratch struct {
	cycleOf   []int
	scheduled []bool
	everTried []bool
	lastCycle []int
	rank      []int
	conflicts []int
	table     *mrt.Cycle

	// start backs the per-II earliest/latest-start vectors and order
	// backs SMS's swing ordering, so the per-candidate-II reset path
	// stops allocating entirely after the first run.
	start ddg.StartScratch
	order order.Scratch

	// pq is the work-list heap, reset per run; its priority slice
	// aliases whichever rank/lstart vector the scheduler hands it.
	pq nodeHeap
}

// heapFor returns the scratch-held work-list heap, emptied and keyed
// by prio.
//
//schedvet:alloc-free
func (s *Scratch) heapFor(prio []int) *nodeHeap {
	s.pq.items = s.pq.items[:0]
	s.pq.prio = prio
	return &s.pq
}

// tableFor returns an empty cycle-exact reservation table sized for the
// request, reusing the scratch-held table's slabs when it was built for
// the same machine.
func (s *Scratch) tableFor(in *Input) *mrt.Cycle {
	if s.table != nil && s.table.Machine() == in.Machine {
		s.table.ResetII(in.II)
	} else {
		s.table = mrt.NewCycle(in.Machine, in.II)
	}
	return s.table
}

// prep returns the zeroed run buffers sized for n nodes, reallocating
// on growth and when the retained buffers are grossly oversized for
// this graph (so one big loop does not pin memory for the rest of a
// session).
func (s *Scratch) prep(n int) (cycleOf []int, scheduled, everTried []bool, lastCycle []int) {
	if cap(s.cycleOf) < n || oversized(cap(s.cycleOf), n) {
		s.cycleOf = make([]int, n)
		s.scheduled = make([]bool, n)
		s.everTried = make([]bool, n)
		s.lastCycle = make([]int, n)
	}
	s.cycleOf = s.cycleOf[:n]
	s.scheduled = s.scheduled[:n]
	s.everTried = s.everTried[:n]
	s.lastCycle = s.lastCycle[:n]
	for i := 0; i < n; i++ {
		s.cycleOf[i] = 0
		s.scheduled[i] = false
		s.everTried[i] = false
		s.lastCycle[i] = 0
	}
	return s.cycleOf, s.scheduled, s.everTried, s.lastCycle
}

// rankBuf returns an n-sized int buffer (contents unspecified; callers
// overwrite every slot).
func (s *Scratch) rankBuf(n int) []int {
	if cap(s.rank) < n {
		s.rank = make([]int, n)
	}
	return s.rank[:n]
}

// copyOut materializes a result cycle vector from a scratch-backed one.
func copyOut(cycleOf []int) []int {
	out := make([]int, len(cycleOf))
	copy(out, cycleOf)
	return out
}

// oversized reports whether a retained backing array of capacity c is
// wasteful for a need of n elements. The floor keeps small buffers
// stable: shrinking only ever saves meaningful memory on big ones.
//
//schedvet:alloc-free
func oversized(c, n int) bool {
	const shrinkFloor = 4096
	return c > shrinkFloor && c > 4*n
}
