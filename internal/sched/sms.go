package sched

import (
	"clustersched/internal/obs"
)

// DefaultSMSBudgetRatio is the displacement budget per node for the
// iterative swing modulo scheduler.
const DefaultSMSBudgetRatio = 12

// SMS runs an iterative swing modulo scheduler: nodes are taken in the
// swing order (criticality-ranked recurrences first, neighbours kept
// adjacent) and placed as close as possible to their already scheduled
// neighbours, scanning forward when driven by predecessors and
// backward when driven by successors. When no slot exists the node is
// force-placed and the conflicting occupants displaced, bounded by a
// budget — the "iterative version of the swing modulo scheduler" the
// paper uses in phase two.
func SMS(in Input, budgetRatio int) (*Schedule, bool) {
	validateInput(in)
	g := in.Graph
	lat := in.Machine.Latency
	n := g.NumNodes()
	if n == 0 {
		return &Schedule{II: in.II, CycleOf: nil}, true
	}
	s := in.Scratch
	if s == nil {
		s = new(Scratch)
	}
	estart0, ok := g.EarliestStartInto(&s.start, lat, in.II)
	if !ok {
		return nil, false // recurrence exceeds II; unschedulable
	}
	if budgetRatio <= 0 {
		budgetRatio = DefaultSMSBudgetRatio
	}
	budget := budgetRatio * n

	prio := s.order.Compute(g, lat)
	rank := s.rankBuf(n)
	for i, v := range prio {
		rank[v] = i
	}

	table := s.tableFor(&in)
	cycleOf, scheduled, everTried, lastCycle := s.prep(n)

	// Work list ordered by swing rank; displaced nodes re-enter it.
	pq := s.heapFor(rank)
	for _, v := range prio {
		pq.push(v)
	}

	const unset = int(^uint(0) >> 1) // max int sentinel

	for pq.len() > 0 {
		if in.Trace.Canceled() {
			return nil, false
		}
		if budget <= 0 {
			in.Trace.BudgetExhausted(obs.PhaseSched, in.II, -1)
			return nil, false
		}
		budget--
		op := pq.pop()
		if scheduled[op] {
			continue
		}

		early := unset
		for _, e := range g.InEdges(op) {
			if !scheduled[e.From] || e.From == op {
				continue
			}
			t := cycleOf[e.From] + lat(g.Nodes[e.From].Kind) - in.II*e.Distance
			if early == unset || t > early {
				early = t
			}
		}
		late := unset
		for _, e := range g.OutEdges(op) {
			if !scheduled[e.To] || e.To == op {
				continue
			}
			t := cycleOf[e.To] - lat(g.Nodes[op].Kind) + in.II*e.Distance
			if late == unset || t < late {
				late = t
			}
		}

		placedAt := unset
		switch {
		case early != unset && late != unset:
			for t := early; t <= late && t < early+in.II; t++ {
				if canPlace(&in, table, op, t) {
					placedAt = t
					break
				}
			}
		case early != unset:
			for t := early; t < early+in.II; t++ {
				if canPlace(&in, table, op, t) {
					placedAt = t
					break
				}
			}
		case late != unset:
			for t := late; t > late-in.II; t-- {
				if canPlace(&in, table, op, t) {
					placedAt = t
					break
				}
			}
		default:
			for t := estart0[op]; t < estart0[op]+in.II; t++ {
				if canPlace(&in, table, op, t) {
					placedAt = t
					break
				}
			}
		}

		if placedAt == unset {
			// Forced placement with displacement, as in IMS.
			placedAt = estart0[op]
			if early != unset && early > placedAt {
				placedAt = early
			}
			if everTried[op] && lastCycle[op]+1 > placedAt {
				placedAt = lastCycle[op] + 1
			}
			s.conflicts = conflictsAt(&in, table, op, placedAt, s.conflicts)
			for _, victim := range s.conflicts {
				unplace(table, victim)
				scheduled[victim] = false
				pq.push(victim)
				in.Trace.SchedDisplace(in.II, op, victim)
			}
		}
		if !place(&in, table, op, placedAt) {
			return nil, false
		}
		cycleOf[op] = placedAt
		scheduled[op] = true
		everTried[op] = true
		lastCycle[op] = placedAt

		// Displace neighbours whose dependences are now violated.
		for _, e := range g.OutEdges(op) {
			if !scheduled[e.To] || e.To == op {
				continue
			}
			if cycleOf[e.To] < placedAt+lat(g.Nodes[op].Kind)-in.II*e.Distance {
				unplace(table, e.To)
				scheduled[e.To] = false
				pq.push(e.To)
				in.Trace.SchedDisplace(in.II, op, e.To)
			}
		}
		for _, e := range g.InEdges(op) {
			if !scheduled[e.From] || e.From == op {
				continue
			}
			if cycleOf[e.From]+lat(g.Nodes[e.From].Kind)-in.II*e.Distance > placedAt {
				unplace(table, e.From)
				scheduled[e.From] = false
				pq.push(e.From)
				in.Trace.SchedDisplace(in.II, op, e.From)
			}
		}
	}

	normalize(cycleOf, in.II)
	return &Schedule{II: in.II, CycleOf: copyOut(cycleOf)}, true
}

// normalize shifts all cycles by a multiple of II so the earliest is
// non-negative; modulo slots are unchanged.
func normalize(cycleOf []int, ii int) {
	minC := 0
	for _, c := range cycleOf {
		if c < minC {
			minC = c
		}
	}
	if minC >= 0 {
		return
	}
	shift := ((-minC + ii - 1) / ii) * ii
	for i := range cycleOf {
		cycleOf[i] += shift
	}
}
