package ddg

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// chain returns a linear graph of n ALU nodes.
func chain(n int) *Graph {
	g := NewGraph(n, n)
	for i := 0; i < n; i++ {
		g.AddNode(OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
	}
	return g
}

func TestSCCChainHasOnlyTrivialComponents(t *testing.T) {
	g := chain(5)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 5 {
		t.Fatalf("got %d components, want 5", len(comps))
	}
	for _, c := range comps {
		if c.NonTrivial() {
			t.Errorf("component %v should be trivial", c.Nodes)
		}
	}
	if nt := g.NonTrivialSCCs(); len(nt) != 0 {
		t.Errorf("NonTrivialSCCs = %v, want none", nt)
	}
}

func TestSCCSingleCycle(t *testing.T) {
	g := chain(4)
	g.AddEdge(3, 1, 1) // cycle {1,2,3}
	nt := g.NonTrivialSCCs()
	if len(nt) != 1 {
		t.Fatalf("got %d non-trivial SCCs, want 1", len(nt))
	}
	if want := []int{1, 2, 3}; !equalInts(nt[0].Nodes, want) {
		t.Errorf("SCC nodes = %v, want %v", nt[0].Nodes, want)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := NewGraph(2, 2)
	a := g.AddNode(OpFAdd, "")
	g.AddNode(OpALU, "")
	g.AddEdge(a, a, 1)
	nt := g.NonTrivialSCCs()
	if len(nt) != 1 || len(nt[0].Nodes) != 1 || !nt[0].Self {
		t.Fatalf("self-loop not detected: %+v", nt)
	}
}

func TestSCCTwoSeparateCycles(t *testing.T) {
	g := NewGraph(6, 8)
	for i := 0; i < 6; i++ {
		g.AddNode(OpALU, "")
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 1)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 5, 0)
	g.AddEdge(5, 3, 2)
	g.AddEdge(1, 3, 0) // connection between the cycles, one direction only
	nt := g.NonTrivialSCCs()
	if len(nt) != 2 {
		t.Fatalf("got %d non-trivial SCCs, want 2", len(nt))
	}
	sizes := []int{len(nt[0].Nodes), len(nt[1].Nodes)}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Errorf("SCC sizes = %v, want [2 3]", sizes)
	}
}

func TestSCCIndex(t *testing.T) {
	g := chain(4)
	g.AddEdge(3, 2, 1)
	comps := g.NonTrivialSCCs()
	idx := SCCIndex(g.NumNodes(), comps)
	if idx[0] != -1 || idx[1] != -1 {
		t.Errorf("nodes 0,1 should be outside SCCs: %v", idx)
	}
	if idx[2] != 0 || idx[3] != 0 {
		t.Errorf("nodes 2,3 should be in SCC 0: %v", idx)
	}
}

// reachable computes the transitive closure by DFS, the brute-force
// oracle for the SCC property test.
func reachable(g *Graph, from int) map[int]bool {
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Successors(v) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// TestSCCMatchesBruteForce is a property test: for random graphs,
// Tarjan's components must equal the equivalence classes of mutual
// reachability.
func TestSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewGraph(n, n*2)
		for i := 0; i < n; i++ {
			g.AddNode(OpALU, "")
		}
		for e := 0; e < n+rng.Intn(n*2); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(2))
		}

		comps := g.StronglyConnectedComponents()
		// Every node appears exactly once.
		seen := make([]int, n)
		for _, c := range comps {
			for _, v := range c.Nodes {
				seen[v]++
			}
		}
		for v, cnt := range seen {
			if cnt != 1 {
				t.Logf("node %d appears %d times", v, cnt)
				return false
			}
		}
		// Same component iff mutually reachable.
		idx := SCCIndex(n, comps)
		reach := make([]map[int]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = reachable(g, v)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				mutual := reach[a][b] && reach[b][a]
				same := idx[a] == idx[b]
				if mutual != same {
					t.Logf("nodes %d,%d: mutual=%v same=%v", a, b, mutual, same)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSCCDeepGraph guards the iterative implementation against stack
// exhaustion on pathological depth.
func TestSCCDeepGraph(t *testing.T) {
	const n = 200000
	g := chain(n)
	g.AddEdge(n-1, 0, 1)
	nt := g.NonTrivialSCCs()
	if len(nt) != 1 || len(nt[0].Nodes) != n {
		t.Fatalf("deep cycle not found as one SCC")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
