package ddg

// LatencyFunc maps an operation kind to its latency in cycles. Latency
// is a machine property; package machine supplies the Table 2 values.
type LatencyFunc func(OpKind) int

// StartScratch holds the reusable buffers of EarliestStartInto and
// LatestStartInto so a per-candidate-II caller (the schedulers, the
// swing ordering) stops paying three slice allocations per call. The
// returned vectors alias the scratch and stay valid until the next
// call on it; the zero value is ready to use. A StartScratch is
// single-threaded.
type StartScratch struct {
	est, lst, w []int
}

// growInts returns buf resized to n, reallocating only on growth.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// EarliestStart computes, for a candidate initiation interval II, the
// earliest modulo-schedule slot of every node: the longest-path distance
// from any source using edge weight latency(from) - II*distance, clamped
// at zero. The result is the ASAP time used by the swing ordering and by
// schedulers as a lower bound.
//
// The relaxation converges only when the graph has no positive cycle at
// this II (i.e. II >= RecMII); ok reports whether it converged.
func (g *Graph) EarliestStart(lat LatencyFunc, ii int) (estart []int, ok bool) {
	var sc StartScratch
	return g.EarliestStartInto(&sc, lat, ii)
}

// EarliestStartInto is EarliestStart into sc's reusable buffers. The
// returned vector aliases sc and is overwritten by the next call.
func (g *Graph) EarliestStartInto(sc *StartScratch, lat LatencyFunc, ii int) (estart []int, ok bool) {
	n := len(g.Nodes)
	sc.est = growInts(sc.est, n)
	estart = sc.est
	for i := range estart {
		estart[i] = 0
	}
	w := g.edgeWeightsInto(sc, lat, ii)
	// Bellman-Ford over all edges. At most n rounds are needed when no
	// positive cycle exists; one extra round detects non-convergence.
	for round := 0; round <= n; round++ {
		changed := false
		for i, e := range g.Edges {
			if t := estart[e.From] + w[i]; t > estart[e.To] {
				estart[e.To] = t
				changed = true
			}
		}
		if !changed {
			return estart, true
		}
	}
	return estart, false
}

// edgeWeightsInto materializes the per-edge relaxation weight
// latency(from) - II*distance into sc's reusable buffer, hoisting the
// latency lookups out of the Bellman-Ford rounds.
//
//schedvet:alloc-free
func (g *Graph) edgeWeightsInto(sc *StartScratch, lat LatencyFunc, ii int) []int {
	sc.w = growInts(sc.w, len(g.Edges))
	for i, e := range g.Edges {
		sc.w[i] = lat(g.Nodes[e.From].Kind) - ii*e.Distance
	}
	return sc.w
}

// LatestStart computes the latest start times against the schedule-length
// horizon implied by the earliest starts: LStart(v) = horizon - longest
// path from v to any sink, mirrored from EarliestStart. ok is false when
// the relaxation fails to converge (positive cycle at this II).
func (g *Graph) LatestStart(lat LatencyFunc, ii int) (lstart []int, ok bool) {
	var sc StartScratch
	return g.LatestStartInto(&sc, lat, ii)
}

// LatestStartInto is LatestStart into sc's reusable buffers. It also
// overwrites sc's earliest-start vector (the horizon derives from it);
// the returned vector aliases sc and is overwritten by the next call.
func (g *Graph) LatestStartInto(sc *StartScratch, lat LatencyFunc, ii int) (lstart []int, ok bool) {
	estart, ok := g.EarliestStartInto(sc, lat, ii)
	if !ok {
		return nil, false
	}
	horizon := 0
	for i, t := range estart {
		if end := t + lat(g.Nodes[i].Kind); end > horizon {
			horizon = end
		}
	}
	n := len(g.Nodes)
	sc.lst = growInts(sc.lst, n)
	lstart = sc.lst
	for i := range lstart {
		lstart[i] = horizon - lat(g.Nodes[i].Kind)
	}
	w := sc.w // filled by EarliestStartInto for the same (lat, ii)
	for round := 0; round <= n; round++ {
		changed := false
		for i, e := range g.Edges {
			if t := lstart[e.To] - w[i]; t < lstart[e.From] {
				lstart[e.From] = t
				changed = true
			}
		}
		if !changed {
			return lstart, true
		}
	}
	return nil, false
}

// Height returns, per node, the longest-latency path from the node to
// any sink of the graph ignoring loop-carried edges (distance >= 1).
// This is the classic list-scheduling priority used by the iterative
// modulo scheduler.
func (g *Graph) Height(lat LatencyFunc) []int {
	n := len(g.Nodes)
	height := make([]int, n)
	order := g.reverseTopoAcyclic()
	adj := g.adjacencyCache()
	for _, v := range order {
		h := 0
		for _, e := range adj.out[v] {
			if e.Distance != 0 {
				continue
			}
			if t := height[e.To] + lat(g.Nodes[v].Kind); t > h {
				h = t
			}
		}
		if h == 0 {
			h = lat(g.Nodes[v].Kind)
		}
		height[v] = h
	}
	return height
}

// reverseTopoAcyclic returns the node IDs in reverse topological order
// of the subgraph of distance-0 edges (acyclic whenever Validate holds).
func (g *Graph) reverseTopoAcyclic() []int {
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	topo := make([]int, 0, n)
	adj := g.adjacencyCache()
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, e := range adj.out[v] {
			if e.Distance != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	// Reverse in place.
	for i, j := 0, len(topo)-1; i < j; i, j = i+1, j-1 {
		topo[i], topo[j] = topo[j], topo[i]
	}
	return topo
}
