// Package ddg implements the data-dependence graph (DDG) that drives
// cluster assignment and modulo scheduling.
//
// A DDG node is one loop operation; a DDG edge (From, To, Distance)
// states that the value produced by From in iteration i is consumed by
// To in iteration i+Distance. Distance 0 is an intra-iteration flow
// dependence; Distance >= 1 is a loop-carried dependence (a recurrence
// when it closes a cycle).
package ddg

import (
	"fmt"
	"sort"
	"sync/atomic"

	"clustersched/internal/diag"
)

// OpKind classifies an operation. The latency of each kind is a machine
// property (see package machine); the kind also selects which function
// unit class may execute the operation on a fully specialized machine.
type OpKind int

// Operation kinds, following Table 2 of the paper.
const (
	OpALU OpKind = iota
	OpShift
	OpBranch
	OpLoad
	OpStore
	OpFAdd
	OpFMul
	OpFDiv
	OpFSqrt
	OpCopy // explicit inter-cluster move, inserted by cluster assignment
	numOpKinds
)

// NumOpKinds is the number of distinct operation kinds.
const NumOpKinds = int(numOpKinds)

var opKindNames = [...]string{
	OpALU:    "alu",
	OpShift:  "shift",
	OpBranch: "branch",
	OpLoad:   "load",
	OpStore:  "store",
	OpFAdd:   "fadd",
	OpFMul:   "fmul",
	OpFDiv:   "fdiv",
	OpFSqrt:  "fsqrt",
	OpCopy:   "copy",
}

// String returns the lower-case mnemonic of the kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("opkind(%d)", int(k))
	}
	return opKindNames[k]
}

// ParseOpKind converts a mnemonic produced by OpKind.String back into an
// OpKind. It reports false for unknown mnemonics.
func ParseOpKind(s string) (OpKind, bool) {
	for k, name := range opKindNames {
		if name == s {
			return OpKind(k), true
		}
	}
	return 0, false
}

// Node is one operation of the loop body.
type Node struct {
	ID   int    // dense index into Graph.Nodes
	Kind OpKind // operation class
	Name string // optional human-readable label
}

// Edge is a data dependence between two operations.
type Edge struct {
	From     int // producing node ID
	To       int // consuming node ID
	Distance int // iteration distance (>= 0)
}

// Graph is a data-dependence graph. The zero value is an empty graph
// ready for use; add operations with AddNode and AddEdge.
type Graph struct {
	Nodes []*Node
	Edges []Edge

	// adj caches the materialized per-node edge and neighbor lists the
	// accessors below hand out. Built lazily on first query, discarded
	// by AddNode/AddEdge. An atomic pointer because read-only graphs are
	// queried from concurrent goroutines (speculative II probes, batch
	// workers); racing builders compute identical caches and the losing
	// store is merely wasted work.
	adj atomic.Pointer[adjacency]

	// scc caches the Tarjan decomposition under the same contract as
	// adj: lazy, invalidated by mutation, safe to rebuild racily.
	scc atomic.Pointer[sccCache]

	// nodeArena chunk-allocates the Node values Nodes points into, so
	// building a graph does not pay one allocation per operation. A
	// chunk is abandoned (not copied) when full, which keeps previously
	// returned *Node pointers valid.
	nodeArena []Node
}

// sccCache holds the component decomposition shared by every caller of
// StronglyConnectedComponents/NonTrivialSCCs.
type sccCache struct {
	all        []*SCC
	nonTrivial []*SCC
}

// adjacency holds the flat adjacency caches: per-node edge lists and
// distinct sorted neighbor lists, all sub-slices of four shared arrays.
type adjacency struct {
	out, in      [][]Edge
	succs, preds [][]int
}

// adjacencyCache returns the cache, building it on first use.
func (g *Graph) adjacencyCache() *adjacency {
	if a := g.adj.Load(); a != nil {
		return a
	}
	n := len(g.Nodes)
	ne := len(g.Edges)
	a := &adjacency{
		out:   make([][]Edge, n),
		in:    make([][]Edge, n),
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
	// Counting sort of the edge list into per-node out/in runs of two
	// flat arrays, preserving insertion order within each node.
	outOff := make([]int, n+1)
	inOff := make([]int, n+1)
	for _, e := range g.Edges {
		outOff[e.From+1]++
		inOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	flatOut := make([]Edge, ne)
	flatIn := make([]Edge, ne)
	ocur := make([]int, 2*n)
	icur := ocur[n:]
	copy(ocur[:n], outOff[:n])
	copy(icur, inOff[:n])
	for _, e := range g.Edges {
		flatOut[ocur[e.From]] = e
		ocur[e.From]++
		flatIn[icur[e.To]] = e
		icur[e.To]++
	}
	// Distinct-neighbor dedup via stamps: seen[v] == id marks v as a
	// recorded successor of id, id+n as a recorded predecessor. The
	// flats are capped at NumEdges, so the appends never reallocate and
	// the capped sub-slices stay valid.
	succFlat := make([]int, 0, ne)
	predFlat := make([]int, 0, ne)
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	for id := 0; id < n; id++ {
		a.out[id] = flatOut[outOff[id]:outOff[id+1]:outOff[id+1]]
		a.in[id] = flatIn[inOff[id]:inOff[id+1]:inOff[id+1]]

		ss := len(succFlat)
		for _, e := range a.out[id] {
			if seen[e.To] != id {
				seen[e.To] = id
				succFlat = append(succFlat, e.To)
			}
		}
		sort.Ints(succFlat[ss:])
		a.succs[id] = succFlat[ss:len(succFlat):len(succFlat)]

		ps := len(predFlat)
		for _, e := range a.in[id] {
			if seen[e.From] != id+n {
				seen[e.From] = id + n
				predFlat = append(predFlat, e.From)
			}
		}
		sort.Ints(predFlat[ps:])
		a.preds[id] = predFlat[ps:len(predFlat):len(predFlat)]
	}
	g.adj.Store(a)
	return a
}

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodeHint, edgeHint int) *Graph {
	return &Graph{
		Nodes:     make([]*Node, 0, nodeHint),
		Edges:     make([]Edge, 0, edgeHint),
		nodeArena: make([]Node, 0, nodeHint),
	}
}

// AddNode appends an operation of the given kind and returns its ID.
func (g *Graph) AddNode(kind OpKind, name string) int {
	id := len(g.Nodes)
	if len(g.nodeArena) == cap(g.nodeArena) {
		c := 2 * cap(g.nodeArena)
		if c < 16 {
			c = 16
		}
		g.nodeArena = make([]Node, 0, c)
	}
	g.nodeArena = append(g.nodeArena, Node{ID: id, Kind: kind, Name: name})
	g.Nodes = append(g.Nodes, &g.nodeArena[len(g.nodeArena)-1])
	g.adj.Store(nil)
	g.scc.Store(nil)
	return id
}

// AddEdge records a dependence from -> to with the given iteration
// distance. It panics on out-of-range IDs or negative distance, which
// are programming errors, not runtime conditions.
func (g *Graph) AddEdge(from, to, distance int) {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		panic(fmt.Sprintf("ddg: edge (%d,%d) references missing node (have %d nodes)", from, to, len(g.Nodes)))
	}
	if distance < 0 {
		panic(fmt.Sprintf("ddg: edge (%d,%d) has negative distance %d", from, to, distance))
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Distance: distance})
	g.adj.Store(nil)
	g.scc.Store(nil)
}

// NumNodes returns the number of operations.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the number of dependences.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutEdges returns the dependences produced by node id.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) OutEdges(id int) []Edge {
	return g.adjacencyCache().out[id]
}

// InEdges returns the dependences consumed by node id.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) InEdges(id int) []Edge {
	return g.adjacencyCache().in[id]
}

// Successors returns the distinct successor node IDs of id, sorted.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) Successors(id int) []int {
	return g.adjacencyCache().succs[id]
}

// Predecessors returns the distinct predecessor node IDs of id, sorted.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) Predecessors(id int) []int {
	return g.adjacencyCache().preds[id]
}

// Clone returns a deep copy of the graph. Annotated passes (cluster
// assignment) clone the input so callers keep an unmodified original.
func (g *Graph) Clone() *Graph {
	c := NewGraph(len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		c.AddNode(n.Kind, n.Name)
	}
	for _, e := range g.Edges {
		c.AddEdge(e.From, e.To, e.Distance)
	}
	return c
}

// Structural diagnostic codes reported by Lint. Package lint layers
// additional DDG-prefixed advisory codes on top of these.
const (
	CodeBadNode      = "DDG001" // nil node record or mismatched ID
	CodeBadKind      = "DDG002" // operation kind out of range
	CodeDanglingEdge = "DDG003" // edge endpoint references a missing node
	CodeNegativeDist = "DDG004" // edge with negative iteration distance
	CodeZeroSelfEdge = "DDG005" // self-edge with distance 0
	CodeZeroCycle    = "DDG006" // zero-distance dependence cycle
)

// Lint checks every structural invariant and returns all violations as
// diagnostics, not just the first. It trusts nothing about the graph:
// adjacency is rebuilt from the Edges slice, so graphs assembled by
// struct literal (bypassing AddNode/AddEdge) are checked correctly,
// and the cycle search runs only over edges whose endpoints exist.
func (g *Graph) Lint() []diag.Diagnostic {
	var r diag.Reporter
	for i, n := range g.Nodes {
		if n == nil {
			r.Errorf(CodeBadNode, fmt.Sprintf("node %d", i), "node %d is nil", i)
			continue
		}
		if n.ID != i {
			r.Errorf(CodeBadNode, fmt.Sprintf("node %d", i), "node %d has mismatched ID %d", i, n.ID)
		}
		if n.Kind < 0 || int(n.Kind) >= NumOpKinds {
			r.Errorf(CodeBadKind, fmt.Sprintf("node %d", i), "node %d has invalid kind %d", i, int(n.Kind))
		}
	}
	for i, e := range g.Edges {
		// Lint runs on the hot scheduling path; format the subject only
		// for edges that actually have findings.
		subject := func() string { return fmt.Sprintf("edge %d", i) }
		if e.From < 0 || e.From >= len(g.Nodes) {
			r.Errorf(CodeDanglingEdge, subject(), "edge %d has invalid source %d (have %d nodes)", i, e.From, len(g.Nodes))
		}
		if e.To < 0 || e.To >= len(g.Nodes) {
			r.Errorf(CodeDanglingEdge, subject(), "edge %d has invalid sink %d (have %d nodes)", i, e.To, len(g.Nodes))
		}
		if e.Distance < 0 {
			r.Errorf(CodeNegativeDist, subject(), "edge %d has negative distance %d", i, e.Distance)
		}
		if e.From == e.To && e.From >= 0 && e.From < len(g.Nodes) && e.Distance == 0 {
			r.Errorf(CodeZeroSelfEdge, subject(),
				"edge %d is a self-dependence of node %d at distance 0 (an operation cannot precede itself within one iteration)",
				i, e.From)
		}
	}
	// A zero-distance cycle is not schedulable at any II: every op in the
	// cycle would have to precede itself within one iteration. (A
	// distance-0 self-edge is the one-node case, reported above with its
	// own code and excluded here.)
	if cyc := g.zeroDistanceCycle(); cyc != nil && len(cyc) > 1 {
		r.Report(diag.Diagnostic{
			Code:     CodeZeroCycle,
			Severity: diag.Error,
			Subject:  fmt.Sprintf("nodes %v", cyc),
			Message:  fmt.Sprintf("zero-distance dependence cycle through nodes %v", cyc),
			Fix:      "give at least one edge of the cycle a positive iteration distance, or break the recurrence",
		})
	}
	return r.Diagnostics()
}

// Validate checks structural invariants. It returns nil for a
// well-formed graph, or a *diag.List carrying every violation (not
// just the first), whose Error string leads with the first one.
func (g *Graph) Validate() error {
	diags := g.Lint()
	if err := diag.AsError(diags); err != nil {
		return fmt.Errorf("ddg: %w", err)
	}
	return nil
}

// zeroDistanceCycle returns the node IDs of some cycle consisting only
// of distance-0 edges, or nil if none exists. Edges with out-of-range
// endpoints are skipped, so it is safe on graphs Lint has found other
// problems in.
func (g *Graph) zeroDistanceCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	// Rebuild adjacency from Edges: literal-constructed graphs may have
	// stale or missing succ slices.
	succ := make([][]int, len(g.Nodes))
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			continue
		}
		succ[e.From] = append(succ[e.From], i)
	}
	color := make([]int, len(g.Nodes))
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, ei := range succ[u] {
			e := g.Edges[ei]
			if e.Distance != 0 {
				continue
			}
			v := e.To
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u -> v along distance-0 edges.
				cycle = []int{v}
				for w := u; w != v && w != -1; w = parent[w] {
					cycle = append(cycle, w)
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for i := range g.Nodes {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// KindCounts returns how many nodes of each kind the graph contains.
func (g *Graph) KindCounts() [NumOpKinds]int {
	var counts [NumOpKinds]int
	for _, n := range g.Nodes {
		counts[n.Kind]++
	}
	return counts
}

// String renders a compact multi-line description, useful in tests and
// the schedview tool.
func (g *Graph) String() string {
	s := fmt.Sprintf("ddg: %d nodes, %d edges\n", len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		s += fmt.Sprintf("  n%d %s", n.ID, n.Kind)
		if n.Name != "" {
			s += " (" + n.Name + ")"
		}
		s += "\n"
	}
	for _, e := range g.Edges {
		s += fmt.Sprintf("  n%d -> n%d dist=%d\n", e.From, e.To, e.Distance)
	}
	return s
}
