package ddg

import (
	"testing"
)

// unitLat gives every kind latency 1 except loads (2).
func unitLat(k OpKind) int {
	if k == OpLoad {
		return 2
	}
	return 1
}

func TestEarliestStartChain(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(OpLoad, "") // latency 2
	b := g.AddNode(OpALU, "")
	c := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)

	estart, ok := g.EarliestStart(unitLat, 1)
	if !ok {
		t.Fatal("EarliestStart did not converge on an acyclic graph")
	}
	want := []int{0, 2, 3}
	for i, w := range want {
		if estart[i] != w {
			t.Errorf("estart[%d] = %d, want %d", i, estart[i], w)
		}
	}
}

func TestEarliestStartLoopCarried(t *testing.T) {
	// a -> b (dist 0), b -> a (dist 1): cycle latency 2, distance 1.
	g := NewGraph(2, 2)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)

	if _, ok := g.EarliestStart(unitLat, 1); ok {
		t.Error("II=1 should not converge (RecMII is 2)")
	}
	estart, ok := g.EarliestStart(unitLat, 2)
	if !ok {
		t.Fatal("II=2 should converge")
	}
	if estart[a] != 0 || estart[b] != 1 {
		t.Errorf("estart = %v, want [0 1]", estart)
	}
}

func TestLatestStartChain(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	c := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	// A second, shorter path a -> c leaves c's LStart unchanged but
	// gives a no slack either way.
	g.AddEdge(a, c, 0)

	lstart, ok := g.LatestStart(unitLat, 1)
	if !ok {
		t.Fatal("LatestStart did not converge")
	}
	estart, _ := g.EarliestStart(unitLat, 1)
	for i := range lstart {
		if lstart[i] < estart[i] {
			t.Errorf("node %d: lstart %d < estart %d", i, lstart[i], estart[i])
		}
	}
	if lstart[c] != 2 {
		t.Errorf("lstart[c] = %d, want 2", lstart[c])
	}
	if lstart[a] != 0 {
		t.Errorf("lstart[a] = %d, want 0 (on critical path)", lstart[a])
	}
}

func TestLatestStartDivergesBelowRecMII(t *testing.T) {
	g := NewGraph(2, 2)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	if _, ok := g.LatestStart(unitLat, 1); ok {
		t.Error("LatestStart converged below RecMII")
	}
}

func TestHeightIgnoresLoopCarriedEdges(t *testing.T) {
	g := NewGraph(3, 3)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	c := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 1) // back edge must not contribute to height

	h := g.Height(unitLat)
	if h[a] != 3 || h[b] != 2 || h[c] != 1 {
		t.Errorf("Height = %v, want [3 2 1]", h)
	}
}

func TestHeightOfSink(t *testing.T) {
	g := NewGraph(1, 0)
	g.AddNode(OpLoad, "")
	h := g.Height(unitLat)
	if h[0] != 2 {
		t.Errorf("Height of lone load = %d, want its latency 2", h[0])
	}
}

func TestEarliestStartEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	estart, ok := g.EarliestStart(unitLat, 1)
	if !ok || len(estart) != 0 {
		t.Errorf("empty graph: estart=%v ok=%v", estart, ok)
	}
}
