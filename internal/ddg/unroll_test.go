package ddg

import (
	"testing"
)

func TestUnrollFactorOneIsIdentity(t *testing.T) {
	g := NewGraph(3, 3)
	a := g.AddNode(OpALU, "a")
	b := g.AddNode(OpALU, "b")
	g.AddNode(OpStore, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	u := g.Unroll(1)
	if u.String() != g.String() {
		t.Errorf("Unroll(1) changed the graph:\n%s\nvs\n%s", u.String(), g.String())
	}
}

func TestUnrollCounts(t *testing.T) {
	g := NewGraph(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode(OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
	}
	g.AddEdge(3, 0, 1)
	u := g.Unroll(3)
	if u.NumNodes() != 12 || u.NumEdges() != 12 {
		t.Fatalf("unrolled size %d/%d, want 12/12", u.NumNodes(), u.NumEdges())
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("unrolled graph invalid: %v", err)
	}
}

func TestUnrollRedirectsLoopCarriedEdges(t *testing.T) {
	// Self recurrence a -> a distance 1, unrolled by 3: copy 0 feeds
	// copy 1 (distance 0), copy 1 feeds copy 2 (distance 0), copy 2
	// feeds copy 0 of the NEXT unrolled iteration (distance 1).
	g := NewGraph(1, 1)
	a := g.AddNode(OpFAdd, "s")
	g.AddEdge(a, a, 1)
	u := g.Unroll(3)
	type want struct{ from, to, dist int }
	wants := []want{{0, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, w := range wants {
		found := false
		for _, e := range u.Edges {
			if e.From == w.from && e.To == w.to && e.Distance == w.dist {
				found = true
			}
		}
		if !found {
			t.Errorf("missing edge %d->%d dist %d in %v", w.from, w.to, w.dist, u.Edges)
		}
	}
}

func TestUnrollDistanceTwo(t *testing.T) {
	// Distance-2 self edge unrolled by 2: copy i feeds copy i one full
	// new iteration later (the two interleaved chains stay separate).
	g := NewGraph(1, 1)
	a := g.AddNode(OpALU, "")
	g.AddEdge(a, a, 2)
	u := g.Unroll(2)
	for _, e := range u.Edges {
		if e.From != e.To || e.Distance != 1 {
			t.Errorf("unexpected edge %+v, want self edges at distance 1", e)
		}
	}
	if len(u.Edges) != 2 {
		t.Errorf("got %d edges, want 2", len(u.Edges))
	}
}

func TestUnrollPreservesRecurrenceLatencyPerIteration(t *testing.T) {
	// The unrolled recurrence executes `factor` original iterations, so
	// its cycle latency scales by the factor while the distance stays
	// one new iteration: ceil comparisons must scale accordingly.
	g := NewGraph(2, 2)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpLoad, "") // latency 2 in the default model
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1)
	u := g.Unroll(4)
	comps := u.NonTrivialSCCs()
	if len(comps) != 1 || len(comps[0].Nodes) != 8 {
		t.Fatalf("unrolled recurrence should be one SCC of 8 nodes, got %+v", comps)
	}
}

func TestUnrollPanicsOnBadFactor(t *testing.T) {
	g := NewGraph(1, 0)
	g.AddNode(OpALU, "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Unroll(0)
}
