package ddg

import (
	"strings"
	"testing"
)

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpALU:    "alu",
		OpShift:  "shift",
		OpBranch: "branch",
		OpLoad:   "load",
		OpStore:  "store",
		OpFAdd:   "fadd",
		OpFMul:   "fmul",
		OpFDiv:   "fdiv",
		OpFSqrt:  "fsqrt",
		OpCopy:   "copy",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := OpKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("invalid kind should render its number, got %q", got)
	}
}

func TestParseOpKindRoundTrip(t *testing.T) {
	for k := 0; k < NumOpKinds; k++ {
		kind := OpKind(k)
		got, ok := ParseOpKind(kind.String())
		if !ok || got != kind {
			t.Errorf("ParseOpKind(%q) = %v, %v; want %v, true", kind.String(), got, ok, kind)
		}
	}
	if _, ok := ParseOpKind("bogus"); ok {
		t.Error("ParseOpKind(bogus) should fail")
	}
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := NewGraph(4, 4)
	for i := 0; i < 5; i++ {
		if id := g.AddNode(OpALU, ""); id != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgePanicsOnBadInput(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddNode(OpALU, "")
	g.AddNode(OpALU, "")
	for _, tc := range []struct {
		name           string
		from, to, dist int
	}{
		{"bad from", 5, 0, 0},
		{"bad to", 0, 5, 0},
		{"negative from", -1, 0, 0},
		{"negative distance", 0, 1, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			g.AddEdge(tc.from, tc.to, tc.dist)
		})
	}
}

func TestSuccessorsAndPredecessors(t *testing.T) {
	g := NewGraph(4, 4)
	a := g.AddNode(OpLoad, "a")
	b := g.AddNode(OpLoad, "b")
	c := g.AddNode(OpFMul, "c")
	d := g.AddNode(OpFAdd, "d")
	g.AddEdge(a, c, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(a, d, 1)
	g.AddEdge(a, d, 2) // duplicate neighbour via second edge

	if got := g.Successors(a); len(got) != 2 || got[0] != c || got[1] != d {
		t.Errorf("Successors(a) = %v, want [%d %d]", got, c, d)
	}
	if got := g.Predecessors(d); len(got) != 2 || got[0] != a || got[1] != c {
		t.Errorf("Predecessors(d) = %v, want [%d %d]", got, a, c)
	}
	if got := g.Predecessors(a); len(got) != 0 {
		t.Errorf("Predecessors(a) = %v, want empty", got)
	}
	if got := g.OutEdges(a); len(got) != 3 {
		t.Errorf("OutEdges(a) has %d edges, want 3", len(got))
	}
	if got := g.InEdges(d); len(got) != 3 {
		t.Errorf("InEdges(d) has %d edges, want 3", len(got))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGraph(2, 2)
	a := g.AddNode(OpALU, "a")
	b := g.AddNode(OpALU, "b")
	g.AddEdge(a, b, 1)

	c := g.Clone()
	c.AddNode(OpStore, "extra")
	c.AddEdge(0, 2, 0)
	c.Nodes[0].Name = "mutated"

	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("original changed: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Nodes[0].Name != "a" {
		t.Errorf("original node name changed to %q", g.Nodes[0].Name)
	}
}

func TestValidateAcceptsLoopCarriedCycle(t *testing.T) {
	g := NewGraph(3, 3)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1) // recurrence: legal
	if err := g.Validate(); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
}

func TestValidateRejectsZeroDistanceCycle(t *testing.T) {
	g := NewGraph(3, 3)
	a := g.AddNode(OpALU, "")
	b := g.AddNode(OpALU, "")
	c := g.AddNode(OpALU, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 0)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a zero-distance cycle")
	}
}

func TestValidateRejectsZeroDistanceSelfLoop(t *testing.T) {
	g := NewGraph(1, 1)
	a := g.AddNode(OpALU, "")
	g.AddEdge(a, a, 0)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a zero-distance self loop")
	}
}

func TestValidateAcceptsSelfRecurrence(t *testing.T) {
	g := NewGraph(1, 1)
	a := g.AddNode(OpFAdd, "acc")
	g.AddEdge(a, a, 1)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
}

func TestValidateRejectsCorruptedNode(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddNode(OpALU, "")
	g.Nodes[0].ID = 7
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted mismatched node ID")
	}
	g.Nodes[0].ID = 0
	g.Nodes[0].Kind = OpKind(42)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted invalid kind")
	}
}

func TestKindCounts(t *testing.T) {
	g := NewGraph(4, 0)
	g.AddNode(OpLoad, "")
	g.AddNode(OpLoad, "")
	g.AddNode(OpStore, "")
	g.AddNode(OpBranch, "")
	counts := g.KindCounts()
	if counts[OpLoad] != 2 || counts[OpStore] != 1 || counts[OpBranch] != 1 || counts[OpALU] != 0 {
		t.Errorf("KindCounts = %v", counts)
	}
}

func TestStringMentionsEverything(t *testing.T) {
	g := NewGraph(2, 1)
	a := g.AddNode(OpLoad, "x")
	b := g.AddNode(OpStore, "")
	g.AddEdge(a, b, 2)
	s := g.String()
	for _, want := range []string{"2 nodes", "1 edges", "load", "store", "(x)", "dist=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
