package ddg

import "fmt"

// Unroll returns the dependence graph of `factor` consecutive original
// iterations fused into one new loop body. Copy i of original node v
// gets ID i*N + v. An edge (u -> v, distance d) becomes, from each
// copy i, an edge to copy (i+d) mod factor with the new iteration
// distance (i+d) / factor — the standard unrolling transformation that
// acyclic-scheduling approaches (BUG, Desoli) apply before cluster
// partitioning, and that modulo variable expansion applies to kernels.
func (g *Graph) Unroll(factor int) *Graph {
	if factor < 1 {
		panic(fmt.Sprintf("ddg: unroll factor %d < 1", factor))
	}
	n := g.NumNodes()
	out := NewGraph(n*factor, g.NumEdges()*factor)
	for i := 0; i < factor; i++ {
		for _, node := range g.Nodes {
			name := node.Name
			if name != "" && factor > 1 {
				name = fmt.Sprintf("%s.%d", name, i)
			}
			out.AddNode(node.Kind, name)
		}
	}
	for i := 0; i < factor; i++ {
		for _, e := range g.Edges {
			tgt := i + e.Distance
			out.AddEdge(i*n+e.From, (tgt%factor)*n+e.To, tgt/factor)
		}
	}
	return out
}
