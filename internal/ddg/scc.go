package ddg

import "sort"

// SCC is a strongly connected component of the dependence graph.
// A component is "non-trivial" when it represents a recurrence: it has
// more than one node, or a single node with a self edge.
type SCC struct {
	Nodes []int // member node IDs, sorted ascending
	Self  bool  // single node with a self-dependence
}

// NonTrivial reports whether the component forms a recurrence cycle.
func (s *SCC) NonTrivial() bool { return len(s.Nodes) > 1 || s.Self }

// StronglyConnectedComponents returns all SCCs, computed with Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine
// stack). Components are returned in reverse topological order of the
// condensation, which callers typically re-rank by criticality anyway.
// The decomposition is cached on the graph until the next mutation; the
// returned components are shared and must not be modified.
func (g *Graph) StronglyConnectedComponents() []*SCC {
	return g.sccs().all
}

func (g *Graph) sccs() *sccCache {
	if c := g.scc.Load(); c != nil {
		return c
	}
	c := &sccCache{all: g.computeSCCs()}
	for _, s := range c.all {
		if s.NonTrivial() {
			c.nonTrivial = append(c.nonTrivial, s)
		}
	}
	g.scc.Store(c)
	return c
}

func (g *Graph) computeSCCs() []*SCC {
	n := len(g.Nodes)
	adj := g.adjacencyCache()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int
		counter int
		out     []*SCC
	)

	type frame struct {
		v  int
		ei int // next out-edge index to examine
	}

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		work := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei < len(adj.out[v]) {
				e := adj.out[v][f.ei]
				f.ei++
				w := e.To
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				scc := &SCC{Nodes: comp}
				if len(comp) == 1 {
					for _, e := range adj.out[comp[0]] {
						if e.To == comp[0] {
							scc.Self = true
							break
						}
					}
				}
				out = append(out, scc)
			}
		}
	}
	return out
}

// NonTrivialSCCs filters StronglyConnectedComponents down to the
// recurrences, which is what cluster assignment cares about. Like
// StronglyConnectedComponents, the result is cached and shared.
func (g *Graph) NonTrivialSCCs() []*SCC {
	return g.sccs().nonTrivial
}

// SCCIndex returns, for every node, the position of its component in
// the comps slice, or -1 when the node belongs to none of them.
func SCCIndex(numNodes int, comps []*SCC) []int {
	idx := make([]int, numNodes)
	for i := range idx {
		idx[i] = -1
	}
	for ci, c := range comps {
		for _, n := range c.Nodes {
			idx[n] = ci
		}
	}
	return idx
}
