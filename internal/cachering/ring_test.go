package cachering

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("0123456789abcdef-key-%d", i)
	}
	return out
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New(7, []string{"w0", "w1", "w2"}, 64)
	b := New(7, []string{"w2", "w0", "w1", "w0"}, 64) // shuffled + duplicate
	for _, k := range keys(200) {
		oa, ok := a.Owner(k)
		ob, _ := b.Owner(k)
		if !ok || oa != ob {
			t.Fatalf("owner(%q) = %q vs %q", k, oa, ob)
		}
	}
	if a.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", a.Epoch())
	}
}

func TestDistributionIsRoughlyFair(t *testing.T) {
	ids := []string{"w0", "w1", "w2", "w3"}
	r := New(1, ids, 0) // default vnodes
	counts := map[string]int{}
	const n = 4000
	for _, k := range keys(n) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for _, id := range ids {
		share := float64(counts[id]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys, outside [10%%, 45%%]", id, share*100)
		}
	}
}

// TestRemovalOnlyRemapsTheLostArc is the property the cache tier is
// built on: removing one node moves only the keys it owned, and every
// remapped key lands on that key's previous first fallback.
func TestRemovalOnlyRemapsTheLostArc(t *testing.T) {
	full := New(1, []string{"w0", "w1", "w2"}, 64)
	reduced := New(2, []string{"w0", "w2"}, 64)
	moved := 0
	for _, k := range keys(1000) {
		before, _ := full.Owner(k)
		after, _ := reduced.Owner(k)
		if before != "w1" {
			if after != before {
				t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
			}
			continue
		}
		moved++
		owners := full.Owners(k, 2)
		if len(owners) != 2 || owners[0] != "w1" {
			t.Fatalf("owners(%q) = %v, want w1 first", k, owners)
		}
		if after != owners[1] {
			t.Fatalf("key %q remapped to %q, want previous fallback %q", k, after, owners[1])
		}
	}
	if moved < 200 || moved > 500 {
		t.Errorf("%d of 1000 keys owned by the removed node, outside [200, 500]", moved)
	}
}

func TestOwnersDistinctAndBounded(t *testing.T) {
	r := New(1, []string{"a", "b", "c"}, 16)
	for _, k := range keys(50) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("owners(%q, 5) = %v, want all 3 nodes", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(0, nil, 8)
	if !r.Empty() {
		t.Fatal("nil-ID ring not empty")
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
	if got := r.Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}
