// Package cachering places the daemon's canonical cache keys onto a
// consistent-hash ring of workers, so every result has one stable
// owner and a membership change only remaps the keys that belonged to
// the nodes that came or went. The balancer routes /v1/schedule
// requests to the owner of their content hash (cache.Key); when a
// worker dies, only its arc of the ring moves to the survivors, and
// every other worker keeps serving its own entries from cache.
//
// A ring is immutable: the balancer builds a fresh one from the
// membership table's eligible set whenever the membership epoch
// moves, and swaps it in atomically. Ring contents are a pure
// function of (epoch, node IDs, virtual-node count) — the package is
// determinism-critical under schedvet, and two balancers with the
// same view agree on every owner.
package cachering

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node point count used when New is
// given a non-positive one. 64 points per node keeps the largest
// ownership arc within a few percent of fair share for small fleets.
const DefaultVirtualNodes = 64

type point struct {
	hash uint64
	node int32 // index into ids
}

// Ring is an immutable consistent-hash ring. Create one with New.
type Ring struct {
	epoch  uint64
	vnodes int
	ids    []string
	points []point // sorted by (hash, node)
}

// hash64 maps s to a ring position. SHA-256 (truncated) rather than a
// small multiplicative hash: the point distribution decides ownership
// fairness, and the cache keys being hashed are themselves SHA-256
// hex, so keyed lookups stay uniform too.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds the ring for one membership epoch over the given node
// IDs (deduplicated; order does not matter). vnodes is the number of
// points per node (DefaultVirtualNodes when <= 0). An empty ID list
// yields an empty ring whose lookups report no owner.
func New(epoch uint64, ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			dedup = append(dedup, id)
		}
	}
	r := &Ring{epoch: epoch, vnodes: vnodes, ids: dedup}
	r.points = make([]point, 0, len(dedup)*vnodes)
	for ni, id := range dedup {
		for v := 0; v < vnodes; v++ {
			h := hash64("ring\x00" + id + "\x00" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Epoch returns the membership epoch the ring was built for.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Nodes returns the ring's node IDs in sorted order. The slice is
// shared and must not be modified.
func (r *Ring) Nodes() []string { return r.ids }

// Empty reports whether the ring has no nodes.
func (r *Ring) Empty() bool { return len(r.ids) == 0 }

// succ returns the index of the first point at or after h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning key (the first ring point clockwise
// from the key's hash), or "", false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	p := r.points[r.succ(hash64("key\x00"+key))]
	return r.ids[p.node], true
}

// Owners returns up to n distinct nodes for key in clockwise
// preference order: the owner first, then the fallback nodes a
// rebalance would promote. It returns fewer when the ring has fewer
// than n nodes.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]string, 0, n)
	seen := make([]bool, len(r.ids))
	start := r.succ(hash64("key\x00" + key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.ids[p.node])
		}
	}
	return out
}
