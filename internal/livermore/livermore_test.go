package livermore

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/pipeline"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/verify"
)

func TestKernelsCompile(t *testing.T) {
	loops, err := Kernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 14 {
		t.Fatalf("got %d kernels, want 14", len(loops))
	}
	for _, l := range loops {
		if !strings.HasPrefix(l.Name, "lfk") {
			t.Errorf("unexpected kernel name %q", l.Name)
		}
		if err := l.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

// TestKnownRecurrences pins the dependence structure of the kernels
// whose published form is a recurrence.
func TestKnownRecurrences(t *testing.T) {
	loops, err := Kernels()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ddg.Graph{}
	for _, l := range loops {
		byName[l.Name] = l.Graph
	}
	lat := machine.DefaultLatencies()
	latf := func(k ddg.OpKind) int { return lat[k] }

	recMII := func(name string) int {
		g, ok := byName[name]
		if !ok {
			t.Fatalf("kernel %q missing", name)
		}
		return mii.RecMII(g, latf)
	}

	// LFK 5: x[i] = z[i]*(y[i] - x[i-1]) — cycle is fadd(1) + fmul(3)
	// + store(1) + load(2) through memory = 7.
	if got := recMII("lfk05_tridiag"); got != 7 {
		t.Errorf("lfk05 RecMII = %d, want 7", got)
	}
	// LFK 11: x[i] = x[i-1] + y[i] — fadd(1) + store(1) + load(2) = 4.
	if got := recMII("lfk11_firstsum"); got != 4 {
		t.Errorf("lfk11 RecMII = %d, want 4", got)
	}
	// LFK 3: scalar reduction — the fadd self-cycle = 1.
	if got := recMII("lfk03_innerprod"); got != 1 {
		t.Errorf("lfk03 RecMII = %d, want 1", got)
	}
	// LFK 6: w = w*b[i] + v[i] — fmul(3) + fadd(1) = 4.
	if got := recMII("lfk06_linrec"); got != 4 {
		t.Errorf("lfk06 RecMII = %d, want 4", got)
	}
	// LFK 12: fully parallel.
	if got := recMII("lfk12_firstdiff"); got != 1 {
		t.Errorf("lfk12 RecMII = %d, want 1", got)
	}
	// LFK 24: running min through select — ALU(1) + fadd(1) = 2.
	if got := recMII("lfk24_argmin"); got != 2 {
		t.Errorf("lfk24 RecMII = %d, want 2", got)
	}
}

// TestKernelsScheduleOnEveryMachine runs every kernel through the full
// pipeline, verifier, and simulator on the paper's machines.
func TestKernelsScheduleOnEveryMachine(t *testing.T) {
	loops, err := Kernels()
	if err != nil {
		t.Fatal(err)
	}
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
	for _, m := range machines {
		for _, l := range loops {
			out, err := pipeline.Run(l.Graph, m, pipeline.Options{
				Assign: assign.Options{Variant: assign.HeuristicIterative},
			})
			if err != nil {
				t.Errorf("%s on %s: %v", l.Name, m.Name, err)
				continue
			}
			in := sched.Input{
				Graph:       out.Assignment.Graph,
				Machine:     m,
				ClusterOf:   out.Assignment.ClusterOf,
				CopyTargets: out.Assignment.CopyTargets,
				II:          out.II,
			}
			if err := verify.Schedule(in, out.Schedule); err != nil {
				t.Errorf("%s on %s: %v", l.Name, m.Name, err)
				continue
			}
			alloc := regalloc.AllocateMVE(in, out.Schedule)
			if err := sim.Run(in, out.Schedule, alloc, 0); err != nil {
				t.Errorf("%s on %s: simulation: %v", l.Name, m.Name, err)
			}
		}
	}
}

// TestKernelsMatchUnified measures the paper's headline metric on the
// real kernels: nearly all should match the unified machine's II on
// the 2-cluster machine.
func TestKernelsMatchUnified(t *testing.T) {
	loops, err := Graphs()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.NewBusedGP(2, 2, 1)
	u := m.Unified()
	match := 0
	for i, g := range loops {
		uo, err1 := pipeline.Run(g, u, pipeline.Options{})
		co, err2 := pipeline.Run(g, m, pipeline.Options{
			Assign: assign.Options{Variant: assign.HeuristicIterative},
		})
		if err1 != nil || err2 != nil {
			t.Fatalf("kernel %d: %v %v", i, err1, err2)
		}
		if co.II <= uo.II {
			match++
		}
	}
	if match < len(loops)-1 {
		t.Errorf("only %d/%d Livermore kernels match the unified II", match, len(loops))
	}
}
