// Package livermore provides real numeric kernels — the classic
// Livermore Fortran Kernels (McMahon, 1986), one of the paper's three
// benchmark sources — written in the clusterc loop language and
// compiled through the frontend. They complement the synthetic suite
// with loops whose dependence structure is exactly the published
// algorithms': reductions, linear recurrences, stencils carried
// through memory, and IF-converted conditionals.
//
// Kernels needing features outside the language subset (transcendental
// intrinsics, indirect addressing, inner loop nests) are represented
// by their innermost dependence-equivalent form or omitted; each
// kernel's comment states the correspondence.
package livermore

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/frontend"
)

// source is the kernel collection in clusterc loop syntax.
const source = `
# LFK 1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
loop lfk01_hydro {
    x[i] = q + y[i] * (r * z[i+10] + t * z[i+11])
}

# LFK 3 — inner product: q = q + z[k]*x[k]
loop lfk03_innerprod {
    q = q + z[i] * x[i]
}

# LFK 4 — banded linear equations (innermost update form)
loop lfk04_banded {
    xz[i] = y[i] * (xz[i] - temp * x[i])
}

# LFK 5 — tri-diagonal elimination, below diagonal:
# x[i] = z[i]*(y[i] - x[i-1]) — a true first-order recurrence through
# memory.
loop lfk05_tridiag {
    x[i] = z[i] * (y[i] - x[i-1])
}

# LFK 6 — general linear recurrence (scalar-accumulator form):
# w = w + b[k]*w_prev collapses to a multiply-accumulate recurrence.
loop lfk06_linrec {
    w = w * b[i] + v[i]
    out[i] = w
}

# LFK 7 — equation of state fragment (wide, independent expression)
loop lfk07_eos {
    x[i] = u[i] + r * (z[i] + r * y[i]) + t * (u[i+3] + r * (u[i+2] + r * u[i+1]) + t * (u[i+6] + q * (u[i+5] + q * u[i+4])))
}

# LFK 9 — integrate predictors (long independent polynomial)
loop lfk09_integrate {
    px[i] = dm28 * px9[i] + dm27 * px8[i] + dm26 * px7[i] + dm25 * px6[i] + dm24 * px5[i] + dm23 * px4[i] + dm22 * px3[i] + c0 * (px1[i] + px2[i]) + px0[i]
}

# LFK 10 — difference predictors (chained differences; scalar chain)
loop lfk10_diffpred {
    ar = cx[i]
    br = ar - px1[i]
    cr = br - px2[i]
    dx[i] = cr
}

# LFK 11 — first sum: x[k] = x[k-1] + y[k], the prefix-sum recurrence
# through memory.
loop lfk11_firstsum {
    x[i] = x[i-1] + y[i]
}

# LFK 12 — first difference: x[k] = y[k+1] - y[k], fully parallel.
loop lfk12_firstdiff {
    x[i] = y[i+1] - y[i]
}

# LFK 18 — 2-D explicit hydrodynamics fragment (one row strip: three
# coupled stencil updates per point).
loop lfk18_hydro2d {
    za[i] = zp[i+1] * zr[i] + zq[i+1] * zm[i]
    zb[i] = zp[i] * zr[i] + zq[i] * zm[i+1]
    zu[i] = zu[i] + s * (za[i] * (zz[i] - zz[i+1]) - zb[i] * (zz[i] - zz[i-1]))
}

# LFK 21 — matrix*matrix product, innermost accumulation.
loop lfk21_matmul {
    px[i] = px[i] + vy * cx[i]
}

# LFK 22 — Planckian distribution: y[k]=u[k]/v[k]; w[k]=x[k]/(exp(y)-1)
# exp is outside the subset; the division structure is preserved with
# the sqrt unit standing in for the transcendental (both are 9-cycle
# long-latency units on this machine).
loop lfk22_planck {
    yy[i] = u[i] / v[i]
    w[i] = x[i] / (sqrt(yy[i]) - 1.0)
}

# LFK 24 — find location of first minimum (IF-converted running min:
# m = select(x[k] - m, m, x[k])).
loop lfk24_argmin {
    d = x[i] - m
    m = select(d, m, x[i])
}
`

// Kernels compiles the collection. The result is deterministic; the
// error path exists only to guard against regressions in the frontend
// (the embedded source is tested to compile).
func Kernels() ([]frontend.Loop, error) {
	loops, err := frontend.Compile(source)
	if err != nil {
		return nil, fmt.Errorf("livermore: embedded kernels failed to compile: %w", err)
	}
	return loops, nil
}

// Graphs returns just the dependence graphs, for harnesses that take
// plain loop slices.
func Graphs() ([]*ddg.Graph, error) {
	loops, err := Kernels()
	if err != nil {
		return nil, err
	}
	out := make([]*ddg.Graph, len(loops))
	for i, l := range loops {
		out[i] = l.Graph
	}
	return out, nil
}
