package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEverything(t *testing.T) {
	const n = 200
	var seen [n]int32
	if err := ForEach(context.Background(), n, 8, func(i int) {
		atomic.AddInt32(&seen[i], 1)
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) { t.Error("ran") }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
}

func TestForEachNilContext(t *testing.T) {
	ran := int32(0)
	if err := ForEach(nil, 5, 0, func(int) { atomic.AddInt32(&ran, 1) }); err != nil { //nolint:staticcheck
		t.Fatalf("ForEach: %v", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d of 5", ran)
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	err := ForEach(context.Background(), 50, workers, func(int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if peak > workers {
		t.Errorf("peak concurrency %d > %d workers", peak, workers)
	}
}

func TestForEachDefaultsToGOMAXPROCS(t *testing.T) {
	// Just exercise the default path; the bound itself is covered above.
	n := runtime.GOMAXPROCS(0) * 4
	ran := int32(0)
	if err := ForEach(context.Background(), n, 0, func(int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatal(err)
	}
	if int(ran) != n {
		t.Fatalf("ran %d of %d", ran, n)
	}
}

func TestForEachCancelAbortsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEach(ctx, 10_000, 2, func(i int) {
		if atomic.AddInt32(&ran, 1) == 4 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got > 100 {
		t.Errorf("ran %d items after cancel; early abort did not bite", got)
	}
}

func TestForEachPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForEach(ctx, 100, 4, func(int) { atomic.AddInt32(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d items ran under a pre-canceled context", ran)
	}
}
