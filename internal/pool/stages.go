package pool

import "sync"

// Stage is one stage of a RunStages pipeline: a name for reporting, a
// worker bound, and the function applied to every item index.
type Stage struct {
	// Name labels the stage in progress and stats reporting; RunStages
	// itself does not interpret it.
	Name string
	// Workers bounds the goroutines running Fn concurrently (min 1).
	Workers int
	// Fn processes item i. It must be safe to call concurrently from
	// Workers goroutines for distinct i; RunStages never calls it twice
	// for the same i.
	Fn func(i int)
}

// RunStages streams items 0..n-1 through the stages in order: item i
// passes stage k's Fn before stage k+1's, and the channels between
// stages hold at most buf in-flight items each, so a slow stage
// backpressures the ones before it instead of letting work pile up.
// Distinct items overlap freely — item 3 can be in the last stage
// while item 7 is still in the first — which is what makes this a
// streaming pipeline rather than a sequence of barriers.
//
// sink(i) is called on the caller's goroutine as each item leaves the
// last stage, in completion order, not input order; callers needing
// input-order delivery keep a reorder buffer in the sink (see
// internal/compile). RunStages returns when every item has passed
// every stage and the sink.
//
// There is no context parameter by design: cancellation is the stage
// functions' business. The contract the callers follow is
// drain-through — on cancellation every stage Fn degrades to a cheap
// no-op (checking a per-item error or the caller's context first), so
// items flush through the pipeline quickly and RunStages still
// returns normally with every sink call made. That keeps this helper
// free of multi-channel selects and makes "canceled" just another
// per-item outcome.
func RunStages(n, buf int, stages []Stage, sink func(i int)) {
	if n <= 0 {
		return
	}
	if buf < 1 {
		buf = 1
	}
	feed := make(chan int, buf)
	go func() {
		for i := 0; i < n; i++ {
			feed <- i
		}
		close(feed)
	}()
	in := feed
	for _, st := range stages {
		src, dst := in, make(chan int, buf)
		workers := st.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		fn := st.Fn
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range src {
					fn(i)
					dst <- i
				}
			}()
		}
		go func() {
			wg.Wait()
			close(dst)
		}()
		in = dst
	}
	for i := range in {
		sink(i)
	}
}
