package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunStagesEveryItemEveryStage checks the basic contract: each
// item passes every stage exactly once, in stage order, and reaches
// the sink exactly once.
func TestRunStagesEveryItemEveryStage(t *testing.T) {
	const n, nstages = 100, 4
	var mu sync.Mutex
	trace := make([][]int, n) // per item: sequence of stage indices
	stages := make([]Stage, nstages)
	for s := 0; s < nstages; s++ {
		s := s
		stages[s] = Stage{Name: "s", Workers: 3, Fn: func(i int) {
			mu.Lock()
			trace[i] = append(trace[i], s)
			mu.Unlock()
		}}
	}
	sunk := make([]int, n)
	RunStages(n, 2, stages, func(i int) { sunk[i]++ })
	for i := 0; i < n; i++ {
		if sunk[i] != 1 {
			t.Fatalf("item %d reached the sink %d times, want 1", i, sunk[i])
		}
		if len(trace[i]) != nstages {
			t.Fatalf("item %d passed %d stages, want %d", i, len(trace[i]), nstages)
		}
		for s, got := range trace[i] {
			if got != s {
				t.Fatalf("item %d stage order %v, want 0..%d in order", i, trace[i], nstages-1)
			}
		}
	}
}

// TestRunStagesWorkerBound checks that a stage never runs more than
// its configured number of Fn calls concurrently.
func TestRunStagesWorkerBound(t *testing.T) {
	const n, workers = 64, 2
	var cur, peak atomic.Int64
	stages := []Stage{{Name: "only", Workers: workers, Fn: func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	}}}
	RunStages(n, 4, stages, func(int) {})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent Fn calls, want <= %d", p, workers)
	}
}

// TestRunStagesZeroItems must not call anything or hang.
func TestRunStagesZeroItems(t *testing.T) {
	called := false
	RunStages(0, 1, []Stage{{Fn: func(int) { called = true }}}, func(int) { called = true })
	if called {
		t.Fatal("RunStages(0, ...) invoked a stage or the sink")
	}
}

// TestRunStagesSinkSingleGoroutine relies on the race detector: the
// sink mutates unsynchronized state, which is legal because sink runs
// only on the caller's goroutine.
func TestRunStagesSinkSingleGoroutine(t *testing.T) {
	sum := 0
	RunStages(50, 3, []Stage{
		{Name: "a", Workers: 4, Fn: func(int) {}},
		{Name: "b", Workers: 4, Fn: func(int) {}},
	}, func(i int) { sum += i })
	if want := 50 * 49 / 2; sum != want {
		t.Fatalf("sink sum = %d, want %d", sum, want)
	}
}
