// Package pool is the bounded worker pool shared by the experiment and
// design-space harnesses: fan-out over an index range, capped at
// GOMAXPROCS goroutines, with context-based early abort. It replaces
// ad-hoc goroutine fan-outs so that concurrency in this repository is
// bounded in exactly one place.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n), on at most workers
// goroutines (GOMAXPROCS when workers <= 0, never more than n). It
// blocks until all started work finishes.
//
// When ctx is canceled, no further items are started — in-flight fn
// calls run to completion (fn receives ctx-derived cancellation only
// if it captures ctx itself) — and ForEach returns ctx.Err(). With an
// uncancelable ctx the return is always nil.
func ForEach(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// A cancel racing the feeder can leave items in the
				// channel; drain without running them.
				select {
				case <-done:
					continue
				default:
				}
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-done:
			break feed
		}
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}
