package obs

import "sync/atomic"

// FleetStats is the balancer's data-plane counter snapshot, exposed
// on clusterlb's /statsz next to the per-worker membership table. The
// placement counters say how requests were routed, the hedge counters
// say what the tail-latency duplicates bought, and RingRebalances
// counts membership epochs the consistent-hash ring moved through.
type FleetStats struct {
	// Placements counts requests dispatched to a worker (each request
	// once, however many attempts or hedges it took).
	Placements int64 `json:"placements"`
	// RingRouted counts schedule requests routed to their
	// consistent-hash owner; ChoiceRouted counts requests placed by
	// power-of-k-choices (batch, lint, and schedules whose owner was
	// unavailable or whose key could not be derived).
	RingRouted   int64 `json:"ring_routed"`
	ChoiceRouted int64 `json:"choice_routed"`
	// Failovers counts dispatch attempts abandoned on a transport
	// error and retried on another worker.
	Failovers int64 `json:"failovers"`
	// Hedges counts duplicate dispatches fired after the hedge delay;
	// HedgeWins is the subset where the duplicate answered first,
	// HedgeWasted where the original did.
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedge_wins"`
	HedgeWasted int64 `json:"hedge_wasted"`
	// RingRebalances counts consistent-hash ring rebuilds (one per
	// membership epoch the balancer observed).
	RingRebalances int64 `json:"ring_rebalances"`
	// HeartbeatProbes and HeartbeatFailures count /fleetz polls.
	HeartbeatProbes   int64 `json:"heartbeat_probes"`
	HeartbeatFailures int64 `json:"heartbeat_failures"`
}

// FleetCounters is the live, concurrency-safe form of FleetStats.
// The zero value is ready to use.
type FleetCounters struct {
	Placements        atomic.Int64
	RingRouted        atomic.Int64
	ChoiceRouted      atomic.Int64
	Failovers         atomic.Int64
	Hedges            atomic.Int64
	HedgeWins         atomic.Int64
	HedgeWasted       atomic.Int64
	RingRebalances    atomic.Int64
	HeartbeatProbes   atomic.Int64
	HeartbeatFailures atomic.Int64
}

// Snapshot copies the counters into their JSON form.
func (c *FleetCounters) Snapshot() FleetStats {
	return FleetStats{
		Placements:        c.Placements.Load(),
		RingRouted:        c.RingRouted.Load(),
		ChoiceRouted:      c.ChoiceRouted.Load(),
		Failovers:         c.Failovers.Load(),
		Hedges:            c.Hedges.Load(),
		HedgeWins:         c.HedgeWins.Load(),
		HedgeWasted:       c.HedgeWasted.Load(),
		RingRebalances:    c.RingRebalances.Load(),
		HeartbeatProbes:   c.HeartbeatProbes.Load(),
		HeartbeatFailures: c.HeartbeatFailures.Load(),
	}
}
