package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Canceled() {
		t.Error("nil trace reports canceled")
	}
	if tr.Err() != nil {
		t.Error("nil trace reports an error")
	}
	// Every hook must be a no-op on a nil receiver.
	start := tr.BeginPhase(PhaseAssign, 3)
	if !start.IsZero() {
		t.Error("nil trace BeginPhase returned a non-zero time")
	}
	tr.EndPhase(PhaseAssign, 3, start, true)
	tr.IICandidate(3)
	tr.AssignCommit(3, 0, 1, false)
	tr.Eviction(3, 0, 1)
	tr.PCRReject(3, 0, 1)
	tr.BudgetExhausted(PhaseAssign, 3, 0)
	tr.SchedDisplace(3, 0, 1)
}

func TestNewReturnsNilWhenNothingToDo(t *testing.T) {
	if tr := New(context.Background(), nil, false); tr != nil {
		t.Error("New with background ctx, no observer, no stats should be nil")
	}
	if tr := New(nil, nil, false); tr != nil {
		t.Error("New with nil ctx should behave like background")
	}
	if tr := New(context.Background(), nil, true); tr == nil {
		t.Error("stats request must produce a trace")
	}
	if tr := New(context.Background(), &Collector{}, false); tr == nil {
		t.Error("an observer must produce a trace")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if tr := New(ctx, nil, false); tr == nil {
		t.Error("a cancelable context must produce a trace")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := New(ctx, nil, false)
	if tr.Canceled() {
		t.Fatal("canceled before cancel")
	}
	cancel()
	if !tr.Canceled() {
		t.Fatal("not canceled after cancel")
	}
	if tr.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", tr.Err())
	}
}

func TestStatsCounting(t *testing.T) {
	tr := New(context.Background(), nil, true)
	tr.IICandidate(2)
	tr.IICandidate(3)
	tr.AssignCommit(3, 0, 0, false)
	tr.AssignCommit(3, 1, 1, true)
	tr.Eviction(3, 1, 0)
	tr.PCRReject(3, 2, 0)
	tr.BudgetExhausted(PhaseAssign, 3, 1)
	tr.BudgetExhausted(PhaseSched, 3, -1)
	tr.SchedDisplace(3, 2, 1)
	s0 := tr.BeginPhase(PhaseAssign, 3)
	tr.EndPhase(PhaseAssign, 3, s0, false)
	s1 := tr.BeginPhase(PhaseSched, 3)
	tr.EndPhase(PhaseSched, 3, s1, true)

	s := tr.Stats
	want := Stats{
		IICandidates: 2, AssignCommits: 2, ForcePlacements: 1, Evictions: 1,
		PCRRejections: 1, AssignBudgetExhausted: 1, SchedBudgetExhausted: 1,
		AssignRejects: 1, SchedDisplacements: 1,
	}
	// Durations are non-deterministic; compare counters only.
	got := s
	got.MIITime, got.AssignTime, got.SchedTime = 0, 0, 0
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
	if s.AssignTime <= 0 || s.SchedTime <= 0 {
		t.Errorf("phase durations not recorded: %+v", s)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{IICandidates: 1, Evictions: 2, SchedDisplacements: 3, AssignTime: time.Millisecond}
	b := Stats{IICandidates: 4, Evictions: 5, SchedDisplacements: 6, AssignTime: time.Second}
	a.Add(b)
	if a.IICandidates != 5 || a.Evictions != 7 || a.SchedDisplacements != 9 {
		t.Errorf("Add: %+v", a)
	}
	if a.AssignTime != time.Second+time.Millisecond {
		t.Errorf("Add durations: %v", a.AssignTime)
	}
	str := a.String()
	for _, want := range []string{"ii_candidates=5", "evictions=7", "displacements=9"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestObserverReceivesEvents(t *testing.T) {
	var c Collector
	tr := New(context.Background(), &c, false)
	tr.IICandidate(4)
	tr.AssignCommit(4, 7, 1, false)
	tr.AssignCommit(4, 8, 0, true)
	tr.SchedDisplace(4, 7, 8)

	if got := c.Count(KindIICandidate); got != 1 {
		t.Errorf("ii candidates = %d", got)
	}
	if got := c.Count(KindAssignCommit); got != 1 {
		t.Errorf("commits = %d", got)
	}
	if got := c.Count(KindForcePlace); got != 1 {
		t.Errorf("forced = %d", got)
	}
	events := c.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	if e := events[1]; e.Node != 7 || e.Cluster != 1 || e.Victim != -1 {
		t.Errorf("commit event = %+v", e)
	}
	if e := events[3]; e.Node != 7 || e.Victim != 8 {
		t.Errorf("displace event = %+v", e)
	}
}

func TestObserverFunc(t *testing.T) {
	n := 0
	tr := New(context.Background(), ObserverFunc(func(Event) { n++ }), false)
	tr.IICandidate(1)
	tr.Eviction(1, 0, 1)
	if n != 2 {
		t.Errorf("ObserverFunc saw %d events, want 2", n)
	}
}

func TestJSONObserver(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSON(&buf)
	tr := New(context.Background(), j, false)
	start := tr.BeginPhase(PhaseAssign, 2)
	tr.AssignCommit(2, 0, 1, false)
	tr.EndPhase(PhaseAssign, 2, start, true)
	if err := j.Err(); err != nil {
		t.Fatalf("JSON observer error: %v", err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d JSON lines, want 3", len(lines))
	}
	if lines[0]["kind"] != "phase_begin" || lines[0]["phase"] != "assign" {
		t.Errorf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "assign_commit" || lines[1]["node"] != float64(0) || lines[1]["cluster"] != float64(1) {
		t.Errorf("line 1 = %v", lines[1])
	}
	if lines[2]["kind"] != "phase_end" || lines[2]["ok"] != true {
		t.Errorf("line 2 = %v", lines[2])
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(EventKind(200).String(), "EventKind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

// BenchmarkTraceOverhead quantifies the disabled fast path: a nil
// *Trace hook must cost a branch, nothing more.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var tr *Trace
		for i := 0; i < b.N; i++ {
			tr.AssignCommit(2, 1, 0, false)
			tr.SchedDisplace(2, 1, 0)
		}
	})
	b.Run("stats", func(b *testing.B) {
		tr := New(context.Background(), nil, true)
		for i := 0; i < b.N; i++ {
			tr.AssignCommit(2, 1, 0, false)
			tr.SchedDisplace(2, 1, 0)
		}
	})
}
