package obs

import "time"

// Now is the repository's sanctioned wall clock for measurement code
// living in schedvet-critical packages. The nondet pass (VET002) bans
// lexical time.Now in those packages so that scheduling outcomes stay
// pure functions of their inputs; timing that is genuinely wanted —
// phase attribution here in obs, per-stage breakdowns in
// internal/compile — goes through this one audited entry point
// instead. obs is on the analyzer's NoFollow list: reading the clock
// is this package's job, exactly like BeginPhase/EndPhase above.
//
// Callers must use the returned time only for durations (t2.Sub(t1))
// reported alongside results, never to influence a scheduling
// decision; that contract is what keeps the carve-out sound.
func Now() time.Time { return time.Now() }
