// Package obs is the scheduling pipeline's observability layer:
// structured trace events, aggregate counters, and context-aware
// cancellation, threaded through the II-escalation loop, the cluster
// assignment backtracking of internal/assign, and the modulo
// schedulers of internal/sched.
//
// The central type is Trace. A nil *Trace is the disabled fast path:
// every hook method has a nil receiver check as its first instruction
// and touches nothing else, so code instrumented with obs hooks pays
// one predictable branch per hook when observability is off (see
// BenchmarkTraceOverhead and the package pipeline benchmarks).
//
// A Trace does three independent jobs, any subset of which may be
// active:
//
//   - Counting: every hook increments a field of Trace.Stats. The
//     caller reads the totals after the run (pipeline carries them on
//     its Outcome, clustersched on Result.Stats()).
//   - Eventing: when an Observer is installed, every hook also emits a
//     structured Event. Observers see events synchronously from the
//     scheduling goroutine and must be fast; they must be safe for
//     concurrent use if the same Observer is shared across runs.
//   - Cancellation: the Trace carries the run's context.Context.
//     Search loops poll Canceled(), so deadlines and cancellation take
//     effect mid-search, between node placements and displacements —
//     not just between II candidates.
package obs

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// EventKind identifies a trace event type. The catalogue is documented
// in docs/OBSERVABILITY.md.
type EventKind uint8

// Trace event kinds.
const (
	// KindPhaseBegin and KindPhaseEnd bracket one pipeline phase (see
	// the Phase* constants). KindPhaseEnd carries the duration and
	// whether the phase succeeded.
	KindPhaseBegin EventKind = iota
	KindPhaseEnd
	// KindIICandidate marks the start of one II-escalation step: the
	// pipeline is about to attempt assignment and scheduling at II.
	KindIICandidate
	// KindAssignCommit is one node committed to a cluster through the
	// normal selection chain.
	KindAssignCommit
	// KindForcePlace is a forced placement (paper Figure 11): no
	// cluster was feasible, the node was committed to the least-bad
	// one and conflicting nodes will be evicted.
	KindForcePlace
	// KindEviction is one already-assigned node removed to relieve a
	// resource violation during forced placement.
	KindEviction
	// KindPCRReject is a feasible candidate cluster rejected by the
	// PCR/MRC copy-pressure prediction (paper Figure 10 line 6, plus
	// this implementation's incoming-copy mirror).
	KindPCRReject
	// KindBudgetExhausted is a search giving up: the assignment
	// eviction budget (Phase == PhaseAssign) or the scheduler
	// displacement budget (Phase == PhaseSched) ran out at this II.
	KindBudgetExhausted
	// KindSchedDisplace is a modulo-scheduler displacement: Victim was
	// unscheduled to make room for Node (resource conflict) or because
	// placing Node violated a dependence to Victim.
	KindSchedDisplace

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	KindPhaseBegin:      "phase_begin",
	KindPhaseEnd:        "phase_end",
	KindIICandidate:     "ii_candidate",
	KindAssignCommit:    "assign_commit",
	KindForcePlace:      "force_place",
	KindEviction:        "eviction",
	KindPCRReject:       "pcr_reject",
	KindBudgetExhausted: "budget_exhausted",
	KindSchedDisplace:   "sched_displace",
}

// String returns the stable snake_case name used in the JSON stream.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Pipeline phases named in phase events.
const (
	// PhaseMII is the initiation-interval lower-bound computation.
	PhaseMII = "mii"
	// PhaseAssign is one cluster-assignment attempt at a candidate II.
	PhaseAssign = "assign"
	// PhaseSched is one modulo-scheduling attempt at a candidate II.
	PhaseSched = "sched"
)

// Event is one structured trace record. Fields that do not apply to a
// kind hold -1 (Node, Cluster, Victim) or their zero value.
type Event struct {
	Kind EventKind
	// Phase is the pipeline phase for KindPhaseBegin, KindPhaseEnd,
	// and KindBudgetExhausted; empty otherwise.
	Phase string
	// II is the current initiation-interval candidate (the MII for
	// PhaseMII events).
	II int
	// Node is the subject operation, -1 when not applicable.
	Node int
	// Cluster is the cluster involved, -1 when not applicable.
	Cluster int
	// Victim is the evicted or displaced node, -1 when not applicable.
	Victim int
	// Dur is the phase duration (KindPhaseEnd only).
	Dur time.Duration
	// OK reports phase success (KindPhaseEnd only).
	OK bool
}

// Observer receives trace events. Calls happen synchronously on the
// scheduling goroutine; implementations shared across concurrent runs
// must be safe for concurrent use.
type Observer interface {
	Event(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Event calls f(e).
func (f ObserverFunc) Event(e Event) { f(e) }

// Stats aggregates the search-effort counters of one pipeline run.
// Summed over many runs (Add) it is the effort profile of a whole
// experiment row.
type Stats struct {
	// IICandidates counts II values attempted (≥ 1 on success; the
	// achieved II is MII + IICandidates - 1 minus any skipped values).
	IICandidates int `json:"ii_candidates"`
	// AssignCommits counts node-to-cluster commitments, including
	// re-commitments of evicted nodes and forced placements.
	AssignCommits int `json:"assign_commits"`
	// ForcePlacements counts commitments made with no feasible cluster
	// (paper Figure 11).
	ForcePlacements int `json:"force_placements"`
	// Evictions counts node removals spent relieving resource
	// violations during forced placement.
	Evictions int `json:"evictions"`
	// PCRRejections counts feasible candidate clusters rejected by the
	// PCR/MRC copy-pressure prediction (full-selection variants only).
	PCRRejections int `json:"pcr_rejections"`
	// AssignBudgetExhausted counts assignment runs that gave up after
	// spending their eviction budget.
	AssignBudgetExhausted int `json:"assign_budget_exhausted"`
	// SchedBudgetExhausted counts scheduler runs that gave up after
	// spending their displacement budget.
	SchedBudgetExhausted int `json:"sched_budget_exhausted"`
	// AssignRejects and SchedRejects count II candidates rejected by
	// each phase before the final II was reached.
	AssignRejects int `json:"assign_rejects"`
	SchedRejects  int `json:"sched_rejects"`
	// SchedDisplacements counts modulo-scheduler displacements (nodes
	// unscheduled for resource conflicts or violated dependences).
	SchedDisplacements int `json:"sched_displacements"`
	// AssignDeltas counts degree-proportional incremental updates
	// (tentative placement, revert, commit, removal) applied by the
	// assignment engine. Each one replaces a from-scratch derive the
	// pre-incremental engine would have performed, so the ratio
	// AssignDeltas : AssignFullDerives is the derive work saved.
	AssignDeltas int `json:"assign_deltas"`
	// AssignFullDerives counts the from-scratch resource derives the
	// assignment phase still performs: forced-placement violation
	// attribution, engine resynchronization after evictions, and the
	// reference-oracle paths.
	AssignFullDerives int `json:"assign_full_derives"`
	// IIWarmStarts counts II probes seeded from the partial assignment
	// of an earlier failed candidate instead of starting from scratch.
	IIWarmStarts int `json:"ii_warm_starts"`
	// IIWarmFallbacks counts warm-started probes that failed and were
	// re-run from scratch at the same II to keep the search outcome
	// independent of the warm seed.
	IIWarmFallbacks int `json:"ii_warm_fallbacks"`
	// IISpeculativeWins counts II probe windows whose committed II was
	// produced by a speculative (parallel) probe.
	IISpeculativeWins int `json:"ii_speculative_wins"`
	// IISpeculativeWasted counts speculative probes whose result was
	// discarded because a lower II in the same window succeeded. Their
	// other counters are not merged into the run's totals, so every
	// remaining counter matches the sequential search exactly.
	IISpeculativeWasted int `json:"ii_speculative_wasted"`
	// MIITime, AssignTime, and SchedTime attribute wall-clock time to
	// the phases; AssignTime and SchedTime sum over all II candidates.
	MIITime    time.Duration `json:"mii_ns"`
	AssignTime time.Duration `json:"assign_ns"`
	SchedTime  time.Duration `json:"sched_ns"`
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.IICandidates += o.IICandidates
	s.AssignCommits += o.AssignCommits
	s.ForcePlacements += o.ForcePlacements
	s.Evictions += o.Evictions
	s.PCRRejections += o.PCRRejections
	s.AssignBudgetExhausted += o.AssignBudgetExhausted
	s.SchedBudgetExhausted += o.SchedBudgetExhausted
	s.AssignRejects += o.AssignRejects
	s.SchedRejects += o.SchedRejects
	s.SchedDisplacements += o.SchedDisplacements
	s.AssignDeltas += o.AssignDeltas
	s.AssignFullDerives += o.AssignFullDerives
	s.IIWarmStarts += o.IIWarmStarts
	s.IIWarmFallbacks += o.IIWarmFallbacks
	s.IISpeculativeWins += o.IISpeculativeWins
	s.IISpeculativeWasted += o.IISpeculativeWasted
	s.MIITime += o.MIITime
	s.AssignTime += o.AssignTime
	s.SchedTime += o.SchedTime
}

// String renders a compact one-line effort summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ii_candidates=%d commits=%d forced=%d evictions=%d pcr_rejects=%d",
		s.IICandidates, s.AssignCommits, s.ForcePlacements, s.Evictions, s.PCRRejections)
	fmt.Fprintf(&b, " displacements=%d rejects=%d/%d budget_out=%d/%d",
		s.SchedDisplacements, s.AssignRejects, s.SchedRejects,
		s.AssignBudgetExhausted, s.SchedBudgetExhausted)
	fmt.Fprintf(&b, " deltas=%d full_derives=%d", s.AssignDeltas, s.AssignFullDerives)
	fmt.Fprintf(&b, " warm=%d/%d spec=%d/%d",
		s.IIWarmStarts, s.IIWarmFallbacks, s.IISpeculativeWins, s.IISpeculativeWasted)
	fmt.Fprintf(&b, " t_mii=%s t_assign=%s t_sched=%s",
		s.MIITime.Round(time.Microsecond), s.AssignTime.Round(time.Microsecond),
		s.SchedTime.Round(time.Microsecond))
	return b.String()
}

// Trace threads observability through one pipeline run. It is owned by
// a single goroutine (the one running the search); only the installed
// Observer may be shared.
//
// A nil *Trace is valid and disables everything: hooks return after
// one nil check, Canceled reports false, Err reports nil.
type Trace struct {
	// Stats accumulates the run's counters; read it after the run.
	Stats Stats

	ctx  context.Context
	done <-chan struct{}
	obs  Observer
}

// New builds a Trace for one run. It returns nil — the zero-cost
// disabled path — when there is nothing to do: no observer, stats not
// requested, and a context that can never be canceled.
func New(ctx context.Context, o Observer, collectStats bool) *Trace {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	if o == nil && !collectStats && done == nil {
		return nil
	}
	return &Trace{ctx: ctx, done: done, obs: o}
}

// Canceled reports whether the run's context is done. It is the cheap
// poll for inner search loops: a nil receiver or a background context
// costs two branches.
func (t *Trace) Canceled() bool {
	if t == nil || t.done == nil {
		return false
	}
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Err returns the context's error (nil on a nil Trace or an active
// context).
func (t *Trace) Err() error {
	if t == nil || t.ctx == nil {
		return nil
	}
	return t.ctx.Err()
}

// emit forwards e to the observer, if any. Callers have already
// checked t != nil.
func (t *Trace) emit(e Event) {
	if t.obs != nil {
		t.obs.Event(e)
	}
}

// BeginPhase marks the start of a pipeline phase at candidate ii and
// returns the start time for the matching EndPhase (zero on a nil
// Trace).
func (t *Trace) BeginPhase(phase string, ii int) time.Time {
	if t == nil {
		return time.Time{}
	}
	t.emit(Event{Kind: KindPhaseBegin, Phase: phase, II: ii, Node: -1, Cluster: -1, Victim: -1})
	return time.Now()
}

// EndPhase closes a phase opened by BeginPhase, attributing its
// duration and recording rejection when ok is false.
func (t *Trace) EndPhase(phase string, ii int, start time.Time, ok bool) {
	if t == nil {
		return
	}
	d := time.Since(start)
	switch phase {
	case PhaseMII:
		t.Stats.MIITime += d
	case PhaseAssign:
		t.Stats.AssignTime += d
		if !ok {
			t.Stats.AssignRejects++
		}
	case PhaseSched:
		t.Stats.SchedTime += d
		if !ok {
			t.Stats.SchedRejects++
		}
	}
	t.emit(Event{Kind: KindPhaseEnd, Phase: phase, II: ii, Node: -1, Cluster: -1, Victim: -1, Dur: d, OK: ok})
}

// IICandidate records the start of one II-escalation step.
func (t *Trace) IICandidate(ii int) {
	if t == nil {
		return
	}
	t.Stats.IICandidates++
	t.emit(Event{Kind: KindIICandidate, II: ii, Node: -1, Cluster: -1, Victim: -1})
}

// AssignCommit records node committed to cluster; forced marks a
// Figure 11 forced placement.
func (t *Trace) AssignCommit(ii, node, cluster int, forced bool) {
	if t == nil {
		return
	}
	t.Stats.AssignCommits++
	kind := KindAssignCommit
	if forced {
		t.Stats.ForcePlacements++
		kind = KindForcePlace
	}
	t.emit(Event{Kind: kind, II: ii, Node: node, Cluster: cluster, Victim: -1})
}

// Eviction records victim removed to make the forced placement of node
// consistent.
func (t *Trace) Eviction(ii, node, victim int) {
	if t == nil {
		return
	}
	t.Stats.Evictions++
	t.emit(Event{Kind: KindEviction, II: ii, Node: node, Cluster: -1, Victim: victim})
}

// PCRReject records a feasible candidate cluster for node rejected by
// the copy-pressure prediction.
func (t *Trace) PCRReject(ii, node, cluster int) {
	if t == nil {
		return
	}
	t.Stats.PCRRejections++
	t.emit(Event{Kind: KindPCRReject, II: ii, Node: node, Cluster: cluster, Victim: -1})
}

// BudgetExhausted records a phase giving up its search at II after
// spending its backtracking budget.
func (t *Trace) BudgetExhausted(phase string, ii, node int) {
	if t == nil {
		return
	}
	switch phase {
	case PhaseAssign:
		t.Stats.AssignBudgetExhausted++
	case PhaseSched:
		t.Stats.SchedBudgetExhausted++
	}
	t.emit(Event{Kind: KindBudgetExhausted, Phase: phase, II: ii, Node: node, Cluster: -1, Victim: -1})
}

// AssignDeltas records n degree-proportional incremental updates
// applied by the assignment engine. It is a stats-only hook: delta
// applications are far too frequent (several per candidate cluster per
// node) to stream as events, so no Event is emitted and callers batch
// one call per evaluation round.
func (t *Trace) AssignDeltas(n int) {
	if t == nil {
		return
	}
	t.Stats.AssignDeltas += n
}

// AssignFullDerive records one from-scratch resource derive performed
// by the assignment phase. Stats-only, like AssignDeltas.
func (t *Trace) AssignFullDerive() {
	if t == nil {
		return
	}
	t.Stats.AssignFullDerives++
}

// WarmStart records one II probe seeded from an earlier candidate's
// partial assignment. Stats-only, like AssignDeltas.
func (t *Trace) WarmStart() {
	if t == nil {
		return
	}
	t.Stats.IIWarmStarts++
}

// WarmFallback records a warm-started probe whose warm attempt failed
// and was replayed from scratch. Stats-only.
func (t *Trace) WarmFallback() {
	if t == nil {
		return
	}
	t.Stats.IIWarmFallbacks++
}

// SpeculativeWin records a probe window committed from a speculative
// (parallel) probe. Stats-only.
func (t *Trace) SpeculativeWin() {
	if t == nil {
		return
	}
	t.Stats.IISpeculativeWins++
}

// SpeculativeWasted records n speculative probes whose work was
// discarded because a lower II in their window succeeded. Stats-only.
func (t *Trace) SpeculativeWasted(n int) {
	if t == nil {
		return
	}
	t.Stats.IISpeculativeWasted += n
}

// SchedDisplace records the modulo scheduler unscheduling victim on
// behalf of node.
func (t *Trace) SchedDisplace(ii, node, victim int) {
	if t == nil {
		return
	}
	t.Stats.SchedDisplacements++
	t.emit(Event{Kind: KindSchedDisplace, II: ii, Node: node, Cluster: -1, Victim: victim})
}
