package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// jsonEvent is the wire form of one event in the JSON trace stream:
// one object per line, stable snake_case keys, times in microseconds.
type jsonEvent struct {
	T       int64  `json:"t_us"`
	Kind    string `json:"kind"`
	Phase   string `json:"phase,omitempty"`
	II      int    `json:"ii"`
	Node    int    `json:"node"`
	Cluster int    `json:"cluster"`
	Victim  int    `json:"victim"`
	DurUS   int64  `json:"dur_us,omitempty"`
	OK      bool   `json:"ok,omitempty"`
}

// JSONObserver writes each event as one JSON object per line
// (JSON Lines). It is safe for concurrent use by many runs sharing one
// stream; the t_us field is the wall-clock offset from the observer's
// creation, so interleaved runs stay ordered.
type JSONObserver struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewJSON returns a JSONObserver writing to w.
func NewJSON(w io.Writer) *JSONObserver {
	return &JSONObserver{enc: json.NewEncoder(w), start: time.Now()}
}

// Event encodes e as one line. Encoding errors are sticky and stop
// further writes; check Err after the run.
func (j *JSONObserver) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonEvent{
		T:       time.Since(j.start).Microseconds(),
		Kind:    e.Kind.String(),
		Phase:   e.Phase,
		II:      e.II,
		Node:    e.Node,
		Cluster: e.Cluster,
		Victim:  e.Victim,
		DurUS:   e.Dur.Microseconds(),
		OK:      e.OK,
	})
}

// Err returns the first write error, if any.
func (j *JSONObserver) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Collector records events in memory, for tests and programmatic
// inspection. Safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many recorded events have kind k.
func (c *Collector) Count(k EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
