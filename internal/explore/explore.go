// Package explore quantifies the hardware trade the paper motivates:
// it sweeps machine configurations, measures delivered throughput
// (initiation intervals versus the equally wide unified machine) over
// the loop suite, and scores each design with the register-file cost
// models of Section 1.1 — area growing linearly with registers and
// quadratically with ports, cycle time growing with the logarithm of
// registers times read ports. The result is the quantified version of
// the paper's claim: clustering keeps the II while shrinking the
// register-file structures that set the clock.
package explore

import (
	"context"
	"fmt"
	"math"
	"strings"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
	"clustersched/internal/pool"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/stagesched"
)

// Point is one evaluated design.
type Point struct {
	Machine *machine.Config
	// MatchPct is the fraction of loops whose II equals the unified
	// machine's (100 for unified machines themselves).
	MatchPct float64
	// AvgII is the mean achieved initiation interval.
	AvgII float64
	// AvgRegsLargestFile is the mean size of the design's biggest
	// register file (after stage scheduling and MVE allocation).
	AvgRegsLargestFile float64
	// PortsLargestFile counts the ports of one cluster's register
	// file: two reads and one write per function unit, plus the bus
	// read/write ports.
	PortsLargestFile int
	// ReadPortsLargestFile is the read-port share, the cycle-time term.
	ReadPortsLargestFile int
	// AreaProxy is sum over clusters of regs * ports^2 (Section 1.1's
	// quadratic port growth), using the measured average register
	// counts.
	AreaProxy float64
	// DelayProxy is log2(regs * read ports) of the largest file
	// (Section 1.1 cites cycle time logarithmic in registers and read
	// ports).
	DelayProxy float64
	// Scheduled is how many loops produced schedules.
	Scheduled int
}

// filePorts returns the port counts of cluster c's register file.
func filePorts(m *machine.Config, c int) (total, reads int) {
	cl := &m.Clusters[c]
	reads = 2*len(cl.FUs) + cl.ReadPorts
	writes := len(cl.FUs) + cl.WritePorts
	return reads + writes, reads
}

// Evaluate measures one machine over the loops; it is EvaluateContext
// under context.Background().
func Evaluate(m *machine.Config, loops []*ddg.Graph, workers int) Point {
	p, _ := EvaluateContext(context.Background(), m, loops, workers)
	return p
}

// EvaluateContext measures one machine over the loops on a bounded
// worker pool, stopping early — with a partial Point and ctx.Err() —
// when ctx is canceled.
func EvaluateContext(ctx context.Context, m *machine.Config, loops []*ddg.Graph, workers int) (Point, error) {
	unified := m.Unified()
	type sample struct {
		ok      bool
		match   bool
		ii      int
		perFile []int
	}
	samples := make([]sample, len(loops))
	err := pool.ForEach(ctx, len(loops), workers, func(i int) {
		g := loops[i]
		uo, uerr := pipeline.RunContext(ctx, g, unified, pipeline.Options{})
		co, cerr := pipeline.RunContext(ctx, g, m, pipeline.Options{
			Assign: assign.Options{Variant: assign.HeuristicIterative},
		})
		if uerr != nil || cerr != nil {
			return
		}
		in := sched.Input{
			Graph:       co.Assignment.Graph,
			Machine:     m,
			ClusterOf:   co.Assignment.ClusterOf,
			CopyTargets: co.Assignment.CopyTargets,
			II:          co.II,
		}
		stagesched.Optimize(in, co.Schedule)
		alloc := regalloc.AllocateMVE(in, co.Schedule)
		samples[i] = sample{
			ok:      true,
			match:   co.II <= uo.II,
			ii:      co.II,
			perFile: alloc.RegsPerCluster,
		}
	})

	p := Point{Machine: m}
	avgPerFile := make([]float64, m.NumClusters())
	matches, iiSum := 0, 0
	var largest float64
	for _, s := range samples {
		if !s.ok {
			continue
		}
		p.Scheduled++
		if s.match {
			matches++
		}
		iiSum += s.ii
		big := 0
		for c, r := range s.perFile {
			avgPerFile[c] += float64(r)
			if r > big {
				big = r
			}
		}
		largest += float64(big)
	}
	if p.Scheduled == 0 {
		return p, err
	}
	n := float64(p.Scheduled)
	p.MatchPct = 100 * float64(matches) / n
	p.AvgII = float64(iiSum) / n
	p.AvgRegsLargestFile = largest / n

	// Cost models on the measured average register counts, with a
	// small floor so degenerate (near-empty) files do not zero out.
	maxDelay := 0.0
	for c := range m.Clusters {
		regs := math.Max(avgPerFile[c]/n, 1)
		ports, reads := filePorts(m, c)
		p.AreaProxy += regs * float64(ports) * float64(ports)
		if d := math.Log2(math.Max(regs*float64(reads), 2)); d > maxDelay {
			maxDelay = d
		}
		if c == 0 || ports > p.PortsLargestFile {
			p.PortsLargestFile = ports
			p.ReadPortsLargestFile = reads
		}
	}
	p.DelayProxy = maxDelay
	return p, err
}

// Sweep evaluates several machines; it is SweepContext under
// context.Background().
func Sweep(machines []*machine.Config, loops []*ddg.Graph, workers int) []Point {
	out, _ := SweepContext(context.Background(), machines, loops, workers)
	return out
}

// SweepContext evaluates several machines, stopping early — with the
// points measured so far and ctx.Err() — when ctx is canceled.
func SweepContext(ctx context.Context, machines []*machine.Config, loops []*ddg.Graph, workers int) ([]Point, error) {
	out := make([]Point, len(machines))
	for i, m := range machines {
		p, err := EvaluateContext(ctx, m, loops, workers)
		out[i] = p
		if err != nil {
			return out[:i+1], err
		}
	}
	return out, nil
}

// DefaultDesigns returns the paper-relevant corner of the design
// space: unified machines of width 8 and 16 against their clustered
// peers at the Table 3 bus/port sweet spots.
func DefaultDesigns() []*machine.Config {
	return []*machine.Config{
		machine.NewUnifiedGP(8),
		machine.NewBusedGP(2, 2, 1),
		machine.NewUnifiedGP(16),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedGP(8, 7, 3),
	}
}

// Report renders the sweep as a table.
func Report(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %7s %10s %7s %7s %10s %7s\n",
		"design", "match%", "avg II", "regs/file", "ports", "reads", "area", "delay")
	for _, p := range points {
		fmt.Fprintf(&b, "%-22s %7.1f %7.2f %10.1f %7d %7d %10.0f %7.2f\n",
			p.Machine.Name, p.MatchPct, p.AvgII, p.AvgRegsLargestFile,
			p.PortsLargestFile, p.ReadPortsLargestFile, p.AreaProxy, p.DelayProxy)
	}
	return b.String()
}
