package explore

import (
	"context"
	"errors"
	"testing"

	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func TestEvaluateContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loops := loopgen.Suite(loopgen.Options{Count: 20})
	p, err := EvaluateContext(ctx, machine.NewBusedGP(2, 2, 1), loops, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p.Scheduled != 0 {
		t.Errorf("scheduled %d loops under a pre-canceled context, want 0", p.Scheduled)
	}
}

func TestSweepContextStopsAtCanceledDesign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loops := loopgen.Suite(loopgen.Options{Count: 10})
	designs := DefaultDesigns()
	points, err := SweepContext(ctx, designs, loops, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(points) != 1 {
		t.Errorf("got %d points, want 1 (abort at the first design)", len(points))
	}
}

func TestEvaluateContextMatchesEvaluate(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Count: 15})
	m := machine.NewBusedGP(2, 2, 1)
	want := Evaluate(m, loops, 2)
	got, err := EvaluateContext(context.Background(), m, loops, 2)
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	if got.MatchPct != want.MatchPct || got.AvgII != want.AvgII || got.Scheduled != want.Scheduled {
		t.Errorf("EvaluateContext %+v != Evaluate %+v", got, want)
	}
}
