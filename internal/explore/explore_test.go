package explore

import (
	"strings"
	"testing"

	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func TestEvaluateUnifiedMatchesItself(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 3, Count: 60})
	p := Evaluate(machine.NewUnifiedGP(8), loops, 0)
	if p.Scheduled < 55 {
		t.Fatalf("scheduled only %d loops", p.Scheduled)
	}
	if p.MatchPct != 100 {
		t.Errorf("unified machine match = %.1f%%, want 100", p.MatchPct)
	}
	if p.AreaProxy <= 0 || p.DelayProxy <= 0 {
		t.Errorf("cost proxies not computed: %+v", p)
	}
}

func TestClusteringShrinksTheLargestFile(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 80})
	unified := Evaluate(machine.NewUnifiedGP(16), loops, 0)
	clustered := Evaluate(machine.NewBusedGP(4, 4, 2), loops, 0)

	if clustered.AvgRegsLargestFile >= unified.AvgRegsLargestFile {
		t.Errorf("clustered largest file %.1f regs >= unified %.1f",
			clustered.AvgRegsLargestFile, unified.AvgRegsLargestFile)
	}
	if clustered.PortsLargestFile >= unified.PortsLargestFile {
		t.Errorf("clustered file ports %d >= unified %d",
			clustered.PortsLargestFile, unified.PortsLargestFile)
	}
	if clustered.AreaProxy >= unified.AreaProxy {
		t.Errorf("clustered area %.0f >= unified %.0f (the paper's whole point)",
			clustered.AreaProxy, unified.AreaProxy)
	}
	if clustered.DelayProxy >= unified.DelayProxy {
		t.Errorf("clustered delay %.2f >= unified %.2f",
			clustered.DelayProxy, unified.DelayProxy)
	}
	// And the throughput price is small.
	if clustered.MatchPct < 90 {
		t.Errorf("clustered match %.1f%%, want > 90", clustered.MatchPct)
	}
}

func TestFilePorts(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1) // 4 FUs, 1 bus read, 1 bus write per cluster
	total, reads := filePorts(m, 0)
	// reads: 2*4 + 1 = 9; writes: 4 + 1 = 5; total 14.
	if reads != 9 || total != 14 {
		t.Errorf("filePorts = (%d, %d), want (14, 9)", total, reads)
	}
	u := machine.NewUnifiedGP(8) // no bus ports
	total, reads = filePorts(u, 0)
	if reads != 16 || total != 24 {
		t.Errorf("unified filePorts = (%d, %d), want (24, 16)", total, reads)
	}
}

func TestSweepAndReport(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 7, Count: 30})
	points := Sweep(DefaultDesigns()[:2], loops, 0)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	rep := Report(points)
	for _, want := range []string{"design", "match%", "area", "gp-unified-8w", "gp-2c-2b-1p"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
