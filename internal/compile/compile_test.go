package compile

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/frontend"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
)

// testOptions mirrors the library facade's defaults: the paper's full
// assignment algorithm with stats collection on.
func testOptions() Options {
	return Options{
		Pipeline: pipeline.Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			CollectStats: true,
		},
	}
}

func corpus(t testing.TB) []frontend.Loop {
	t.Helper()
	loops, err := Corpus()
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if len(loops) < 30 {
		t.Fatalf("corpus has %d loops, want >= 30 (Livermore + generated)", len(loops))
	}
	return loops
}

// TestCorpusMatchesGenerator pins the checked-in corpus to its
// generator: any frontend, lint, or loopgen change that would alter
// the mined corpus must regenerate the constant.
func TestCorpusMatchesGenerator(t *testing.T) {
	if got := loopgen.SourceCorpus(CorpusSeed, CorpusCount); got != corpusSource {
		t.Fatalf("corpusSource does not match loopgen.SourceCorpus(%d, %d); regenerate internal/compile/corpus.go", CorpusSeed, CorpusCount)
	}
}

// render flattens the deterministic portion of a result for
// byte-comparison across worker counts.
func render(res *Result) string {
	var b strings.Builder
	for i := range res.Loops {
		l := &res.Loops[i]
		fmt.Fprintf(&b, "=== %d %s (line %d) ===\n", l.Index, l.Name, l.Line)
		if l.Err != nil {
			fmt.Fprintf(&b, "error: %v\n", l.Err)
			continue
		}
		fmt.Fprintf(&b, "II=%d MII=%d copies=%d moved=%d regs=%v factor=%d\n",
			l.Outcome.II, l.Outcome.MII, l.Outcome.Assignment.Copies, l.Moved,
			l.Alloc.RegsPerCluster, l.Alloc.Factor)
		b.WriteString(l.Text)
	}
	return b.String()
}

// TestRunDeterministicAcrossWorkers is the tentpole's ordering
// contract: worker count and buffer depth change wall-clock time
// only. Emitted text, IIs, allocations, stats, and the Emit callback
// sequence must be byte-identical.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	loops := corpus(t)
	m := machine.NewBusedGP(2, 2, 1)

	type variant struct{ workers, buffer int }
	var base *Result
	var baseEmit []int
	for _, v := range []variant{{1, 1}, {4, 2}, {4, 8}, {8, 3}} {
		opts := testOptions()
		opts.Workers = v.workers
		opts.Buffer = v.buffer
		opts.StageSched = true
		var emitted []int
		opts.Emit = func(l *LoopResult) { emitted = append(emitted, l.Index) }
		res, err := NewExecutor(m, opts).Run(context.Background(), loops)
		if err != nil {
			t.Fatalf("workers=%d: %v", v.workers, err)
		}
		for i, idx := range emitted {
			if idx != i {
				t.Fatalf("workers=%d: emit order %v is not input order", v.workers, emitted)
			}
		}
		if base == nil {
			base, baseEmit = res, emitted
			continue
		}
		if len(emitted) != len(baseEmit) {
			t.Fatalf("workers=%d: %d emit callbacks, want %d", v.workers, len(emitted), len(baseEmit))
		}
		if got, want := render(res), render(base); got != want {
			t.Fatalf("workers=%d buffer=%d output differs from workers=1:\n%s", v.workers, v.buffer, firstDiff(got, want))
		}
		// Wall-clock durations vary run to run; every search-effort
		// counter must not.
		gs, bs := res.Stats, base.Stats
		gs.MIITime, gs.AssignTime, gs.SchedTime = 0, 0, 0
		bs.MIITime, bs.AssignTime, bs.SchedTime = 0, 0, 0
		if gs != bs {
			t.Fatalf("workers=%d: aggregated search stats differ from workers=1:\n got %+v\nwant %+v", v.workers, gs, bs)
		}
	}
	if base.Failed != 0 {
		t.Fatalf("%d corpus loops failed to compile", base.Failed)
	}
}

func firstDiff(a, b string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\n  got  ...%q\n  want ...%q", i, a[lo:i+40], b[lo:i+40])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

// TestCorpusSchedulesAndSimValidates is the corpus acceptance gate:
// every loop schedules on both reference machines and every emitted
// kernel passes the sim functional oracle, with and without stage
// scheduling.
func TestCorpusSchedulesAndSimValidates(t *testing.T) {
	loops := corpus(t)
	for _, tc := range []struct {
		m          *machine.Config
		stagesched bool
	}{
		{machine.NewBusedGP(2, 2, 1), false},
		{machine.NewBusedGP(2, 2, 1), true},
		{machine.NewBusedFS(4, 4, 2), true},
	} {
		opts := testOptions()
		opts.Validate = true
		opts.StageSched = tc.stagesched
		opts.Workers = 2
		res, err := NewExecutor(tc.m, opts).Run(context.Background(), loops)
		if err != nil {
			t.Fatalf("%s: %v", tc.m.Name, err)
		}
		for i := range res.Loops {
			if e := res.Loops[i].Err; e != nil {
				t.Errorf("%s (stagesched=%v): loop %s: %v", tc.m.Name, tc.stagesched, res.Loops[i].Name, e)
			}
		}
		if res.Scheduled != len(loops) {
			t.Fatalf("%s: scheduled %d of %d corpus loops", tc.m.Name, res.Scheduled, len(loops))
		}
	}
}

// TestLivermoreValueDifferential checks, for every Livermore kernel on
// two machine configs, that the emitted pipelined schedule computes
// exactly the values of a naive non-pipelined execution: copy
// insertion is value-transparent, and the scheduled kernel under its
// MVE binding reproduces the naive trace node for node, iteration for
// iteration.
func TestLivermoreValueDifferential(t *testing.T) {
	loops := corpus(t)
	for _, m := range []*machine.Config{machine.NewBusedGP(2, 2, 1), machine.NewBusedFS(4, 4, 2)} {
		opts := testOptions()
		e := NewExecutor(m, opts)
		for _, l := range loops {
			if !strings.HasPrefix(l.Name, "lfk") {
				continue
			}
			r := e.One(context.Background(), l)
			if r.Err != nil {
				t.Fatalf("%s on %s: %v", l.Name, m.Name, r.Err)
			}
			in, sch := schedInput(e, r)
			iters := 3*r.Alloc.Factor + 4
			naiveOrig := sim.NaiveValues(l.Graph, iters)
			naiveAnn := sim.NaiveValues(in.Graph, iters)
			pipe, err := sim.PipelinedValues(in, sch, iters, sim.MVEBinding(r.Alloc))
			if err != nil {
				t.Fatalf("%s on %s: pipelined execution: %v", l.Name, m.Name, err)
			}
			for it := 0; it < iters; it++ {
				for n := 0; n < l.Graph.NumNodes(); n++ {
					if naiveOrig[it][n] != naiveAnn[it][n] {
						t.Fatalf("%s on %s: copy insertion changed node %d's value at iteration %d", l.Name, m.Name, n, it)
					}
				}
				for n := 0; n < in.Graph.NumNodes(); n++ {
					if naiveAnn[it][n] != pipe[it][n] {
						t.Fatalf("%s on %s: node %d iteration %d: pipelined value diverges from naive execution", l.Name, m.Name, n, it)
					}
				}
			}
		}
	}
}

// TestOneMatchesRun: the sequential single-loop path (the server's
// entry point) must agree with the streaming batch path.
func TestOneMatchesRun(t *testing.T) {
	loops := corpus(t)[:6]
	m := machine.NewBusedGP(2, 2, 1)
	opts := testOptions()
	opts.StageSched = true
	e := NewExecutor(m, opts)
	batch, err := e.Run(context.Background(), loops)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loops {
		one := e.One(context.Background(), l)
		if one.Err != nil {
			t.Fatalf("%s: %v", l.Name, one.Err)
		}
		b := &batch.Loops[i]
		if one.Text != b.Text || one.Outcome.II != b.Outcome.II || one.Moved != b.Moved ||
			one.Alloc.Factor != b.Alloc.Factor {
			t.Fatalf("%s: One result differs from Run result", l.Name)
		}
	}
}

// TestRunCanceled: a dead context drains the pipeline; every loop is
// marked canceled and Run reports the cancellation.
func TestRunCanceled(t *testing.T) {
	loops := corpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOptions()
	opts.Workers = 4
	res, err := NewExecutor(machine.NewBusedGP(2, 2, 1), opts).Run(ctx, loops)
	if err == nil {
		t.Fatal("Run with a canceled context returned nil error")
	}
	if res == nil {
		t.Fatal("Run must still assemble a result on cancellation")
	}
	for i := range res.Loops {
		if res.Loops[i].Err == nil {
			t.Fatalf("loop %s finished despite pre-canceled context", res.Loops[i].Name)
		}
	}
	if res.Failed != len(loops) {
		t.Fatalf("Failed = %d, want %d", res.Failed, len(loops))
	}
}

// TestSourceCompilesUnit: the Source convenience front door measures
// the frontend and reports per-stage stats.
func TestSourceCompilesUnit(t *testing.T) {
	src := "loop dot { s = s + a[i]*b[i] }\nloop ax { y[i] = 2*x[i] + y[i] }\n"
	opts := testOptions()
	res, err := Source(context.Background(), src, machine.NewBusedGP(2, 2, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 || res.Failed != 0 {
		t.Fatalf("scheduled %d failed %d, want 2/0", res.Scheduled, res.Failed)
	}
	if res.FrontendNS <= 0 {
		t.Error("FrontendNS not measured")
	}
	seen := map[string]bool{}
	for _, st := range res.Stages {
		seen[st.Stage] = true
		if st.Loops != 2 {
			t.Errorf("stage %s processed %d loops, want 2", st.Stage, st.Loops)
		}
	}
	for _, want := range []string{"lint", "schedule", "regalloc", "emit"} {
		if !seen[want] {
			t.Errorf("missing stage row %q in %+v", want, res.Stages)
		}
	}
	if seen["stagesched"] || seen["validate"] {
		t.Errorf("disabled stages reported work: %+v", res.Stages)
	}
}

// schedInput rebuilds the sched.Input a LoopResult's schedule ran
// under (the executor's own recipe).
func schedInput(e *Executor, r *LoopResult) (sched.Input, *sched.Schedule) {
	return sched.Input{
		Graph:       r.Outcome.Assignment.Graph,
		Machine:     e.Machine(),
		ClusterOf:   r.Outcome.Assignment.ClusterOf,
		CopyTargets: r.Outcome.Assignment.CopyTargets,
		II:          r.Outcome.II,
	}, r.Outcome.Schedule
}
