// Package compile is the whole-translation-unit compile path: it
// takes a multi-loop program through lint → assign/schedule (on
// pooled pipeline.Sessions) → stage scheduling → register allocation
// → emission → optional sim cross-validation as one streaming,
// stage-parallel pipeline.
//
// The stage graph is fixed:
//
//	frontend → lint → schedule → stagesched → regalloc → emit → validate
//
// (frontend runs in the caller — see Source — and the stagesched and
// validate stages no-op unless enabled by Options). Loops flow
// through the stages as independent items over pool.RunStages:
// bounded per-stage worker pools, a bounded queue between adjacent
// stages (backpressure — a slow scheduler stalls lint, not memory),
// and loop 3 can be in regalloc while loop 7 is still in assignment.
// The schedule stage carries the worker budget; the light stages run
// narrow. Results are assembled in input order regardless of
// completion order, so Options.Emit observes exactly the sequence a
// sequential compiler would produce and output is byte-identical for
// every worker count.
//
// Cancellation is drain-through: every stage checks the run context
// and the loop's error before doing work, so once the context ends,
// in-flight loops flush through the remaining stages as no-ops and
// Run returns promptly with every loop marked canceled. There are no
// multi-channel selects and no goroutines in this package (they live
// in internal/pool); compile is on schedvet's critical list and holds
// to the same determinism contract as the scheduler itself.
package compile

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/emit"
	"clustersched/internal/frontend"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
	"clustersched/internal/pool"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/stagesched"
	"clustersched/internal/verify"
)

// Stage indices of the fixed stage graph, in flow order.
const (
	stageLint = iota
	stageSchedule
	stageStagesched
	stageRegalloc
	stageEmit
	stageValidate
	numStages
)

var stageNames = [numStages]string{"lint", "schedule", "stagesched", "regalloc", "emit", "validate"}

// Options configures an Executor.
type Options struct {
	// Pipeline are the per-loop scheduling options, passed verbatim to
	// the pooled pipeline.Sessions. Callers own the defaults: the zero
	// value selects the Simple assignment variant, which is almost
	// never what a compiler driver wants (cmd/clusterc and the server
	// pass HeuristicIterative explicitly, like the library facade).
	Pipeline pipeline.Options
	// Workers bounds the schedule stage's worker pool, the wide stage
	// of the pipeline; <= 0 selects GOMAXPROCS. Worker count changes
	// wall-clock time only, never output (deterministic assembly).
	Workers int
	// Buffer is the queue depth between adjacent stages; <= 0 selects
	// twice the worker count. Smaller buffers tighten backpressure,
	// larger ones smooth stage-time variance.
	Buffer int
	// NoLint skips the per-loop graph lint stage (the pipeline still
	// rejects graphs with Error-severity findings).
	NoLint bool
	// StageSched runs stage scheduling (Eichenberger & Davidson) on
	// every kernel before register allocation.
	StageSched bool
	// Pipelined emits prologue, kernel, and epilogue instead of the
	// steady-state kernel only.
	Pipelined bool
	// Validate cross-validates every emitted kernel with
	// internal/sim's functional execution under the MVE allocation.
	Validate bool
	// SimIters is the iteration count for Validate; <= 0 selects sim's
	// default (3*MVE factor + 4).
	SimIters int
	// Emit, when set, is called once per loop in input order as
	// results retire from the pipeline, on the goroutine that called
	// Run. It sees failed loops too (Err non-nil).
	Emit func(*LoopResult)
}

// LoopResult is one loop's journey through the pipeline.
type LoopResult struct {
	// Index is the loop's position in the translation unit.
	Index int
	// Name and Line identify the loop in the source.
	Name string
	Line int
	// Graph is the loop's input dependence graph (the annotated graph
	// with inserted copies is Outcome.Assignment.Graph).
	Graph *ddg.Graph
	// Err is the first stage failure; later stages pass a failed loop
	// through untouched, so at most one stage contributes.
	Err error
	// Outcome is the schedule-stage result (nil when that stage failed
	// or never ran).
	Outcome *pipeline.Outcome
	// Moved is the number of operations stage scheduling relocated
	// (zero unless Options.StageSched).
	Moved int
	// Alloc is the kernel's MVE register allocation.
	Alloc *regalloc.Allocation
	// Text is the emitted kernel (or full pipelined listing).
	Text string
}

// StageStat is one stage's aggregate over a Run.
type StageStat struct {
	Stage string `json:"stage"`
	// Loops counts loops the stage did work for (failed loops drain
	// through without being counted).
	Loops int `json:"loops"`
	// NS is the stage's summed wall-clock time across all loops and
	// workers (it can exceed the run's elapsed time when the stage ran
	// in parallel).
	NS int64 `json:"ns"`
}

// Result is a whole-translation-unit compile.
type Result struct {
	// Loops holds every loop's result, in input order.
	Loops []LoopResult
	// Stages is the per-stage time breakdown, in flow order; stages
	// that did no work are omitted.
	Stages []StageStat
	// FrontendNS is the source-to-graph time (set by Source; zero when
	// the caller compiled the graphs itself).
	FrontendNS int64
	// Scheduled and Failed partition the loops.
	Scheduled int
	Failed    int
	// Stats aggregates the search-effort counters of every scheduled
	// loop (zero unless Pipeline.CollectStats or an Observer is set).
	Stats obs.Stats
}

// Executor is a reusable whole-TU compiler for one machine: it owns a
// free list of pipeline.Sessions (machine lint verdict, ResMII
// tables, scheduler slabs) that survives across Run calls, so
// compiling a stream of translation units pays the per-machine setup
// once. An Executor is safe for concurrent Run calls; the session
// pool is shared.
type Executor struct {
	m       *machine.Config
	opts    Options
	workers int
	buffer  int

	// sessions is the free list of per-worker scheduling sessions,
	// the same single-communication idiom as pipeline.Session's
	// scratch pools.
	sessions chan *pipeline.Session
}

// NewExecutor builds an executor for machine m.
func NewExecutor(m *machine.Config, opts Options) *Executor {
	e := &Executor{m: m, opts: opts, workers: opts.Workers, buffer: opts.Buffer}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.buffer <= 0 {
		e.buffer = 2 * e.workers
	}
	e.sessions = make(chan *pipeline.Session, e.workers)
	return e
}

// Machine returns the executor's target machine.
func (e *Executor) Machine() *machine.Config { return e.m }

func (e *Executor) takeSession() *pipeline.Session {
	select {
	case s := <-e.sessions:
		return s
	default:
		return pipeline.NewSession(e.m, e.opts.Pipeline)
	}
}

func (e *Executor) putSession(s *pipeline.Session) {
	select {
	case e.sessions <- s:
	default:
	}
}

// Source compiles a whole translation unit from loop-language source:
// frontend, then Run over the compiled loops. Frontend errors (parse
// and graph construction) fail the whole unit, like any compiler.
func Source(ctx context.Context, src string, m *machine.Config, opts Options) (*Result, error) {
	t := obs.Now()
	loops, err := frontend.Compile(src)
	if err != nil {
		return nil, err
	}
	frontendNS := obs.Now().Sub(t).Nanoseconds()
	res, err := NewExecutor(m, opts).Run(ctx, loops)
	if res != nil {
		res.FrontendNS = frontendNS
	}
	return res, err
}

// Run compiles every loop of the translation unit. Per-loop failures
// land in LoopResult.Err and never abort the unit; the returned error
// is non-nil only when ctx ended the run early (every unfinished loop
// is then marked canceled). Results, stage stats, and Emit callbacks
// are identical for every worker count.
func (e *Executor) Run(ctx context.Context, loops []frontend.Loop) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &run{e: e, ctx: ctx, jobs: make([]job, len(loops))}
	for i := range loops {
		r.jobs[i].res = LoopResult{Index: i, Name: loops[i].Name, Line: loops[i].Line, Graph: loops[i].Graph}
	}

	stages := []pool.Stage{
		{Name: stageNames[stageLint], Workers: 1, Fn: r.stageFn(stageLint, r.lint)},
		{Name: stageNames[stageSchedule], Workers: e.workers, Fn: r.stageFn(stageSchedule, r.schedule)},
		{Name: stageNames[stageStagesched], Workers: 1, Fn: r.stageFn(stageStagesched, r.stagesched)},
		{Name: stageNames[stageRegalloc], Workers: 1, Fn: r.stageFn(stageRegalloc, r.regalloc)},
		{Name: stageNames[stageEmit], Workers: 1, Fn: r.stageFn(stageEmit, r.emit)},
		{Name: stageNames[stageValidate], Workers: 1, Fn: r.stageFn(stageValidate, r.validate)},
	}

	// The sink reorders completion order back to input order: emit
	// callbacks fire for loop i only once loops 0..i-1 have retired.
	// It runs on this goroutine only (pool.RunStages's contract), so
	// the cursor needs no synchronization.
	retired := make([]bool, len(r.jobs))
	next := 0
	pool.RunStages(len(r.jobs), e.buffer, stages, func(i int) {
		retired[i] = true
		for next < len(retired) && retired[next] {
			if e.opts.Emit != nil {
				e.opts.Emit(&r.jobs[next].res)
			}
			next++
		}
	})

	res := r.assemble()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("compile: translation unit canceled: %w", err)
	}
	return res, nil
}

// One compiles a single loop through the same stage functions,
// sequentially on the calling goroutine — the form the clusterd
// compile endpoint uses under its per-loop result cache. Its result
// is identical to the loop's LoopResult from a Run over any unit
// containing it.
func (e *Executor) One(ctx context.Context, loop frontend.Loop) *LoopResult {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &run{e: e, ctx: ctx, jobs: make([]job, 1)}
	r.jobs[0].res = LoopResult{Name: loop.Name, Line: loop.Line, Graph: loop.Graph}
	for idx, fn := range [numStages]func(*job) bool{
		stageLint:       r.lint,
		stageSchedule:   r.schedule,
		stageStagesched: r.stagesched,
		stageRegalloc:   r.regalloc,
		stageEmit:       r.emit,
		stageValidate:   r.validate,
	} {
		r.stageFn(idx, fn)(0)
	}
	return &r.jobs[0].res
}

// run is the per-Run state: the job slab plus per-stage counters
// (atomics — stages of one loop run on different goroutines).
type run struct {
	e    *Executor
	ctx  context.Context
	jobs []job
	ns   [numStages]atomic.Int64
	cnt  [numStages]atomic.Int64
}

// job carries one loop's intermediate state between stages. Exactly
// one stage touches a given job at a time (pool.RunStages's ordering
// guarantee), so the fields need no locks.
type job struct {
	res LoopResult
	in  sched.Input
	sch *sched.Schedule
}

// stageFn wraps a stage body with the drain-through checks and the
// per-stage accounting. A loop that already failed — or a run whose
// context ended — passes through without work, which is what lets
// cancellation flush the pipeline without a single select. A body
// returns false when its stage is disabled, keeping disabled stages
// out of the per-stage breakdown.
func (r *run) stageFn(idx int, fn func(*job) bool) func(int) {
	return func(i int) {
		j := &r.jobs[i]
		if j.res.Err != nil {
			return
		}
		if err := r.ctx.Err(); err != nil {
			j.res.Err = fmt.Errorf("compile: loop %q canceled in %s stage: %w", j.res.Name, stageNames[idx], err)
			return
		}
		t := obs.Now()
		if fn(j) {
			r.ns[idx].Add(obs.Now().Sub(t).Nanoseconds())
			r.cnt[idx].Add(1)
		}
	}
}

func (r *run) lint(j *job) bool {
	if r.e.opts.NoLint {
		return false
	}
	if err := diag.AsError(lint.Graph(j.res.Graph)); err != nil {
		j.res.Err = fmt.Errorf("compile: loop %q rejected by lint: %w", j.res.Name, err)
	}
	return true
}

func (r *run) schedule(j *job) bool {
	s := r.e.takeSession()
	out, err := s.Schedule(r.ctx, j.res.Graph)
	r.e.putSession(s)
	if err != nil {
		j.res.Err = err
		return true
	}
	j.res.Outcome = out
	j.in = sched.Input{
		Graph:       out.Assignment.Graph,
		Machine:     r.e.m,
		ClusterOf:   out.Assignment.ClusterOf,
		CopyTargets: out.Assignment.CopyTargets,
		II:          out.II,
	}
	j.sch = out.Schedule
	return true
}

func (r *run) stagesched(j *job) bool {
	if !r.e.opts.StageSched {
		return false
	}
	j.res.Moved = stagesched.Optimize(j.in, j.sch)
	return true
}

func (r *run) regalloc(j *job) bool {
	// The independent schedule check runs here, after any stage moves,
	// so an invalid schedule can never reach emission.
	if err := verify.Schedule(j.in, j.sch); err != nil {
		j.res.Err = fmt.Errorf("compile: loop %q produced an invalid schedule: %w", j.res.Name, err)
		return true
	}
	j.res.Alloc = regalloc.AllocateMVE(j.in, j.sch)
	if err := j.res.Alloc.Validate(j.in, j.sch); err != nil {
		j.res.Err = fmt.Errorf("compile: loop %q register allocation invalid: %w", j.res.Name, err)
	}
	return true
}

func (r *run) emit(j *job) bool {
	if r.e.opts.Pipelined {
		j.res.Text = emit.Pipelined(j.in, j.sch)
	} else {
		j.res.Text = emit.Kernel(j.in, j.sch)
	}
	return true
}

func (r *run) validate(j *job) bool {
	if !r.e.opts.Validate {
		return false
	}
	if err := sim.Run(j.in, j.sch, j.res.Alloc, r.e.opts.SimIters); err != nil {
		j.res.Err = fmt.Errorf("compile: loop %q failed sim cross-validation: %w", j.res.Name, err)
	}
	return true
}

func (r *run) assemble() *Result {
	res := &Result{Loops: make([]LoopResult, len(r.jobs))}
	for i := range r.jobs {
		res.Loops[i] = r.jobs[i].res
		if r.jobs[i].res.Err != nil {
			res.Failed++
			continue
		}
		res.Scheduled++
		if r.jobs[i].res.Outcome != nil {
			res.Stats.Add(r.jobs[i].res.Outcome.Stats)
		}
	}
	for idx := 0; idx < numStages; idx++ {
		if n := r.cnt[idx].Load(); n > 0 {
			res.Stages = append(res.Stages, StageStat{Stage: stageNames[idx], Loops: int(n), NS: r.ns[idx].Load()})
		}
	}
	return res
}
