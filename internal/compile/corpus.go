package compile

import (
	"clustersched/internal/frontend"
	"clustersched/internal/livermore"
)

// The generated slice of the regression corpus is pinned by
// (CorpusSeed, CorpusCount): TestCorpusMatchesGenerator regenerates
// it with loopgen.SourceCorpus and compares byte for byte, so the
// checked-in text can never drift from the generator, the frontend,
// or the lint rules without the drift being visible in review.
const (
	CorpusSeed  = 10
	CorpusCount = 24
)

// corpusSource is the fuzz-mined generated corpus: candidate programs
// drawn from the loop-language grammar, kept only when they compile,
// lint completely clean, and land in a useful size band. Regenerate
// with loopgen.SourceCorpus(CorpusSeed, CorpusCount) after frontend
// or lint changes.
const corpusSource = `loop gen000 {
	d[i] = d[i-2] * sqrt(1.5)
	t1 = -c[i+1]
	v[i] = (t1 / c[i+2] + b[i-1] * a[i-1])
}
loop gen001 {
	u[i] = select(2, b[i+1] - 1.5, c[i])
	w[i] = 2 / b[i]
	s2 = s2 * c[i] * c[i-1]
}
loop gen002 {
	b[i] = b[i-2] + -b[i]
	t1 = d[i-2] * a[i+2] * 0.5
	v[i] = (t1 / t1 * b[i-1])
}
loop gen003 {
	d[i] = d[i-1] - 3 + d[i-1]
	w[i] = 1.5 * c[i-2] * a[i-1]
	v[i] = 3 - 1.5 * 0.5
}
loop gen004 {
	v[i] = -c[i] * c[i-2]
}
loop gen005 {
	t0 = select(2, 1.5, b[i+2])
	w[i] = (t0 * 3)
	a[i] = a[i-1] / b[i+1] + a[i-2]
}
loop gen006 {
	s0 = s0 * -s0
	s1 = s1 + d[i-2] * c[i+1]
	s2 = s2 + sqrt(d[i-1])
}
loop gen007 {
	t0 = c[i+2]
	s1 = s1 + (t0 + t0 + a[i+1])
	v[i] = d[i] + 3 * a[i+1]
}
loop gen008 {
	c[i] = c[i-2] + sqrt(d[i-1])
}
loop gen009 {
	d[i] = d[i-2] + a[i+1] / b[i-1]
}
loop gen010 {
	v[i] = -b[i+2] * b[i-1]
	w[i] = -b[i+2]
}
loop gen011 {
	w[i] = c[i] - a[i+1] * a[i]
}
loop gen012 {
	w[i] = sqrt(d[i-1]) + 2
	v[i] = select(3, 1.5 * c[i-1], d[i-2])
	u[i] = b[i-2] / 2
}
loop gen013 {
	c[i] = c[i-2] / c[i+1] / 2
}
loop gen014 {
	c[i] = c[i-1] * -3
	v[i] = c[i] * d[i-2] * 1.5
}
loop gen015 {
	w[i] = a[i+1] * 0.5 - 0.5
}
loop gen016 {
	t0 = sqrt(c[i+1]) - b[i+1]
	s1 = s1 + (t0 * b[i] * 0.5)
	w[i] = 1.5 - b[i]
}
loop gen017 {
	d[i] = d[i-1] * select(b[i], 3, c[i+2])
	u[i] = select(3, sqrt(0.5), 3)
}
loop gen018 {
	b[i] = b[i-2] - -d[i]
	w[i] = -1.5 - 0.5
}
loop gen019 {
	s0 = s0 + select(s0, 3, a[i-1])
	w[i] = -b[i]
}
loop gen020 {
	s0 = s0 + 1.5 + c[i-1]
	s1 = s1 + sqrt(1.5)
	v[i] = b[i] * d[i+1] - a[i-2]
}
loop gen021 {
	u[i] = c[i+1] / 0.5 * b[i-1]
	w[i] = -d[i] + 1.5
}
loop gen022 {
	s0 = s0 + -s0
	v[i] = b[i] / b[i+1] / s0
	s2 = s2 * -3
	u[i] = s0 * 2 / b[i+2]
}
loop gen023 {
	b[i] = b[i-1] * b[i] + d[i+2]
}
`

// GeneratedSource returns the generated (non-Livermore) slice of the
// corpus as loop-language source.
func GeneratedSource() string { return corpusSource }

// Corpus returns the full compile regression corpus: the fourteen
// Livermore kernels followed by the fuzz-mined generated programs.
// Every loop in it schedules on the reference machines and passes sim
// cross-validation (enforced by TestCorpusSchedulesAndSimValidates).
func Corpus() ([]frontend.Loop, error) {
	kernels, err := livermore.Kernels()
	if err != nil {
		return nil, err
	}
	gen, err := frontend.Compile(corpusSource)
	if err != nil {
		return nil, err
	}
	return append(kernels, gen...), nil
}
