package assign

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/obs"
)

// Problem is a reusable cluster-assignment instance for one
// (graph, machine, options) triple. Construction performs every
// II-invariant precomputation — SCC decomposition, CSR adjacency,
// machine path/link tables, the Section 4.1 assignment order, the
// incremental engine with its arenas and scratch buffers — so that an
// II-escalation loop (the paper's Figure 5) pays only the II-dependent
// work per candidate instead of rebuilding all of it on every retry.
//
// A Problem is single-threaded: concurrent II probes each need their
// own (construction is cheap relative to a probe, and probes share
// only the immutable graph and machine).
type Problem struct {
	a *assigner
	// ranOnce distinguishes the pristine post-construction state from
	// one left behind by a previous run, so the first RunAt at the
	// construction II skips a redundant reset.
	ranOnce bool
}

// NewProblem builds a reusable assignment problem. The initial II is a
// placeholder; every RunAt re-targets the capacity tables in place.
func NewProblem(g *ddg.Graph, m *machine.Config, opts Options) *Problem {
	return &Problem{a: newAssigner(g, m, 1, opts)}
}

// Bind re-targets the problem at a new graph on the same machine and
// options, reusing every slab, capacity table, and scratch the
// previous graph grew. It is the cross-loop analogue of the per-II
// reset: a session scheduling many loops rebinds one Problem per loop
// instead of constructing one, and construction itself is a Bind from
// the empty state, so a rebound Problem behaves exactly like a fresh
// one. Any Partial slice handed out for the previous graph is
// invalidated.
//
// The rebound problem is re-targeted at the same placeholder II a
// NewProblem starts from, so the first RunAt performs (and traces)
// the identical reset a freshly constructed problem would — pooling a
// problem changes allocation counts, never stats or outcomes.
func (p *Problem) Bind(g *ddg.Graph) {
	p.a.bind(g, 1)
	p.ranOnce = false
}

// problemAt builds a problem already targeted at ii, so a single
// one-shot run (Run) performs exactly one engine build.
func problemAt(g *ddg.Graph, m *machine.Config, ii int, opts Options) *Problem {
	return &Problem{a: newAssigner(g, m, ii, opts)}
}

// RunAt assigns every operation of the graph to a cluster at
// initiation interval ii, reporting false when no valid assignment was
// found at this II (the caller then retries with a larger II).
//
// seed, when non-nil, warm-starts the run from a partial assignment
// captured by a previous failed RunAt at a lower II (see Partial);
// nodes whose seeded placement no longer fits are dropped, never
// failing the run. tr carries this run's observability hooks and
// cancellation context, replacing Options.Trace — per-run because
// speculative probes of one search each trace into their own buffer.
func (p *Problem) RunAt(ii int, seed []int, tr *obs.Trace) (*Result, bool) {
	if ii <= 0 {
		panic(fmt.Sprintf("assign: non-positive II %d", ii))
	}
	a := p.a
	a.opts.Trace = tr
	a.hasPartial = false
	if p.ranOnce || ii != a.ii {
		a.reset(ii)
	}
	p.ranOnce = true

	if !a.m.Clustered() {
		// Unified machine: everything on cluster 0; only FU capacity
		// can fail (ResMII > ii). No partial is kept — there is nothing
		// a warm start could reuse.
		for i := range a.cluster {
			a.cluster[i] = 0
		}
		if d := a.deriveScratch(); !d.ok {
			return nil, false
		}
		return a.buildResult(), true
	}

	if len(seed) > 0 {
		a.seedFrom(seed)
	}
	evictions := 0
	for {
		if a.opts.Trace.Canceled() {
			// Canceled runs leave no partial: the vector is valid but
			// the search is being abandoned, not escalated.
			return nil, false
		}
		n := a.nextUnassigned(a.prio)
		if n < 0 {
			break
		}
		cands := a.evaluate(n)
		list := a.feasibleList(cands)
		if len(list) > 0 {
			cl := a.selectCluster(n, list, cands)
			a.place(n, cl)
			a.opts.Trace.AssignCommit(ii, n, cl, false)
			continue
		}
		if !a.opts.Variant.iterative() {
			a.capturePartial(-1)
			return nil, false
		}
		used, ok := a.forcePlace(n, cands)
		evictions += used
		if !ok {
			if !a.opts.Trace.Canceled() {
				a.capturePartial(n)
			}
			return nil, false
		}
	}
	res := a.buildResult()
	res.Evictions = evictions
	return res, true
}

// Partial returns the last failed run's consistent partial assignment
// (per original node: cluster index or -1), the warm seed for a retry
// at a larger II — or nil when the last run succeeded, was canceled,
// or ran on a unified machine. The slice is owned by the Problem and
// overwritten by the next failing run; callers handing it to another
// Problem concurrently must copy it first.
func (p *Problem) Partial() []int {
	if !p.a.hasPartial {
		return nil
	}
	return p.a.partial
}
