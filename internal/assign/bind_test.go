package assign

import (
	"fmt"
	"reflect"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// runToSuccess escalates ii until the problem succeeds (bounded), and
// returns every per-II observable: the failing IIs' partials and the
// succeeding Result.
func runToSuccess(t *testing.T, p *Problem, g *ddg.Graph, m *machine.Config) (partials [][]int, res *Result, ii int) {
	t.Helper()
	ii = mii.MII(g, m)
	for end := ii + 16; ii <= end; ii++ {
		r, ok := p.RunAt(ii, nil, nil)
		if ok {
			return partials, r, ii
		}
		partials = append(partials, append([]int(nil), p.Partial()...))
	}
	t.Fatalf("no assignment within II %d", ii)
	return nil, nil, 0
}

// TestProblemBindMatchesFresh pins Bind's contract: a pooled problem
// rebound at a new graph runs byte-identical to a freshly constructed
// one — same per-II failures, same partials, same final Result.
func TestProblemBindMatchesFresh(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 21, Count: 24})
	for mi, m := range diffMachines() {
		opts := Options{Variant: HeuristicIterative}
		pooled := NewProblem(loops[0], m, opts)
		for li, g := range loops {
			pooled.Bind(g)
			fresh := NewProblem(g, m, opts)
			wantParts, wantRes, wantII := runToSuccess(t, fresh, g, m)
			gotParts, gotRes, gotII := runToSuccess(t, pooled, g, m)
			tag := fmt.Sprintf("machine %d loop %d", mi, li)
			if wantII != gotII {
				t.Fatalf("%s: success II %d (pooled) vs %d (fresh)", tag, gotII, wantII)
			}
			if !reflect.DeepEqual(gotParts, wantParts) {
				t.Fatalf("%s: partials diverge:\n pooled %v\n fresh  %v", tag, gotParts, wantParts)
			}
			if !reflect.DeepEqual(gotRes.ClusterOf, wantRes.ClusterOf) ||
				!reflect.DeepEqual(gotRes.CopyTargets, wantRes.CopyTargets) ||
				gotRes.NumOriginal != wantRes.NumOriginal ||
				gotRes.Copies != wantRes.Copies ||
				gotRes.Evictions != wantRes.Evictions {
				t.Fatalf("%s: results diverge:\n pooled %+v\n fresh  %+v", tag, gotRes, wantRes)
			}
		}
	}
}

// chainLoop builds a straight dependence chain of n ALU operations
// with a closing recurrence, big enough to stress slab sizing.
func chainLoop(n int) *ddg.Graph {
	g := ddg.NewGraph(n, n)
	for i := 0; i < n; i++ {
		g.AddNode(ddg.OpALU, fmt.Sprintf("n%d", i))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 0)
	}
	g.AddEdge(n-1, 0, 1)
	return g
}

// TestBindShrinksSlab checks the retention policy: rebinding a problem
// grown for a huge loop at a tiny one drops the oversized slab instead
// of pinning it for the rest of the session — and rebinding at a
// similar size keeps the backing stable.
func TestBindShrinksSlab(t *testing.T) {
	m := machine.NewBusedGP(2, 2, 1)
	big, small := chainLoop(1200), chainLoop(8)
	p := NewProblem(big, m, Options{Variant: HeuristicIterative})
	grown := cap(p.a.slabInts)
	p.Bind(small)
	if shrunk := cap(p.a.slabInts); shrunk >= grown {
		t.Fatalf("slab not shrunk: cap %d after big loop, %d after small", grown, shrunk)
	}
	if _, ok := p.RunAt(mii.MII(small, m), nil, nil); !ok {
		t.Fatalf("rebound problem failed on the small loop")
	}
	// Same-sized rebinds must not churn the backing array.
	p.Bind(big)
	stable := cap(p.a.slabInts)
	p.Bind(chainLoop(1200))
	if got := cap(p.a.slabInts); got != stable {
		t.Fatalf("slab churned on same-sized rebind: cap %d -> %d", stable, got)
	}
}

// TestBindWarmRebindAllocFree gates the pooling payoff: once a problem
// (and the graphs' lazy caches) are warm, rebinding between loops of
// the same shape allocates nothing.
func TestBindWarmRebindAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; accounting is meaningless")
	}
	m := machine.NewBusedGP(4, 4, 2)
	g1, g2 := chainLoop(64), chainLoop(64)
	p := NewProblem(g1, m, Options{Variant: HeuristicIterative})
	for i := 0; i < 4; i++ {
		p.Bind(g2)
		p.Bind(g1)
	}
	if avg := testing.AllocsPerRun(20, func() {
		p.Bind(g2)
		p.Bind(g1)
	}); avg != 0 {
		t.Fatalf("warm rebind allocates %.1f times per cycle, want 0", avg)
	}
}
