// Package assign implements the paper's contribution: the pre-modulo-
// scheduling cluster assignment pass. Given a loop's data-dependence
// graph, a clustered machine description, and a candidate initiation
// interval, it maps every operation to a cluster, inserts the explicit
// copy operations that move values between clusters, and returns an
// annotated graph that any traditional modulo scheduler can schedule
// with no knowledge of clustering (paper Sections 2.2 and 4).
package assign

import "clustersched/internal/obs"

// Variant selects which of the four algorithms from the paper's
// Figures 12/13 comparison runs.
type Variant int

// The four assignment variants evaluated in the paper.
const (
	// Simple: first feasible cluster, no backtracking (Figure 10
	// without lines 3-8, non-iterative).
	Simple Variant = iota
	// SimpleIterative: first feasible cluster, with node removal and
	// forced placement on failure.
	SimpleIterative
	// Heuristic: the full selection chain (SCC affinity, PCR/MRC copy
	// prediction, copy minimization, free space), no backtracking.
	Heuristic
	// HeuristicIterative: the paper's complete algorithm.
	HeuristicIterative
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Simple:
		return "Simple"
	case SimpleIterative:
		return "Simple Iterative"
	case Heuristic:
		return "Heuristic"
	case HeuristicIterative:
		return "Heuristic Iterative"
	default:
		return "Variant(?)"
	}
}

// fullSelection reports whether the variant uses the complete cluster
// selection heuristic of Figure 10.
func (v Variant) fullSelection() bool { return v == Heuristic || v == HeuristicIterative }

// iterative reports whether the variant may remove already assigned
// nodes to make forward progress (Section 4.3).
func (v Variant) iterative() bool { return v == SimpleIterative || v == HeuristicIterative }

// Options tunes an assignment run.
type Options struct {
	// Variant selects the algorithm; the zero value is Simple, so most
	// callers set it explicitly to HeuristicIterative.
	Variant Variant
	// BudgetPerNode bounds backtracking: at most BudgetPerNode * |V|
	// node removals before the run gives up and the caller must retry
	// at a larger II. Zero selects the default.
	BudgetPerNode int
	// DisableIncomingPrediction turns off the write-port mirror of the
	// paper's PCR/MRC check (see state.go: pic). The paper's Figure 10
	// line 6 predicts only source-side copy pressure; the incoming
	// mirror is this implementation's extension and is on by default
	// because reproducing the published match rates requires it. This
	// switch exists for the ablation benchmark.
	DisableIncomingPrediction bool
	// EvictOldest flips the victim policy of forced placement
	// (Section 4.3.1) from "most recently assigned" to "oldest
	// assignment first". Exists for the ablation benchmark.
	EvictOldest bool
	// NaiveOrdering replaces the Section 4.1 node order (critical SCCs
	// first, swing ordering inside each set) with plain node-ID order,
	// quantifying how much the ordering itself contributes. Exists for
	// the ablation benchmark.
	NaiveOrdering bool
	// Trace carries the run's observability hooks and cancellation
	// context (see internal/obs). nil — the default — disables both:
	// every hook is a single nil check. When the Trace's context is
	// canceled mid-run, Run returns not-ok like any other failed
	// assignment; the pipeline distinguishes cancellation by checking
	// the context itself.
	Trace *obs.Trace

	// scratchEval disables the incremental engine and runs the whole
	// assignment on the scratch-derive reference implementation. Test
	// hook for the differential layer (engine_test.go), deliberately
	// unexported: the engine is behavior-identical, so callers never
	// need to choose.
	scratchEval bool
	// selfCheck runs both evaluators on every node and panics on the
	// first candidate-metric disagreement. Test hook.
	selfCheck bool
}

// DefaultBudgetPerNode is the eviction budget multiplier used when
// Options.BudgetPerNode is zero.
const DefaultBudgetPerNode = 8

func (o Options) budget(numNodes int) int {
	per := o.BudgetPerNode
	if per <= 0 {
		per = DefaultBudgetPerNode
	}
	b := per * numNodes
	if b < 16 {
		b = 16
	}
	return b
}
