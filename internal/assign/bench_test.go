package assign

import (
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// benchAssign measures one full assignment run per iteration over a
// representative loop mix.
func benchAssign(b *testing.B, m *machine.Config, v Variant) {
	b.Helper()
	loops := loopgen.Suite(loopgen.Options{Seed: 1, Count: 64})
	iis := make([]int, len(loops))
	for i, g := range loops {
		iis[i] = mii.MII(g, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := loops[i%len(loops)]
		Run(g, m, iis[i%len(loops)], Options{Variant: v})
	}
}

func BenchmarkAssign2ClusterHeuristicIterative(b *testing.B) {
	benchAssign(b, machine.NewBusedGP(2, 2, 1), HeuristicIterative)
}

func BenchmarkAssign4ClusterHeuristicIterative(b *testing.B) {
	benchAssign(b, machine.NewBusedGP(4, 4, 2), HeuristicIterative)
}

func BenchmarkAssign2ClusterSimple(b *testing.B) {
	benchAssign(b, machine.NewBusedGP(2, 2, 1), Simple)
}

func BenchmarkAssignGrid(b *testing.B) {
	benchAssign(b, machine.NewGrid4(2), HeuristicIterative)
}

// BenchmarkAssignRing exercises the chained point-to-point path: a
// six-cluster ring where remote values forward over multi-hop link
// routes.
func BenchmarkAssignRing(b *testing.B) {
	benchAssign(b, machine.NewRing(6, 2), HeuristicIterative)
}

// BenchmarkAssignHighBacktracking starves the copy fabric (one bus,
// single ports across four clusters) so forced placement and eviction
// dominate — the worst case for the incremental engine, which must
// resynchronize with a full rebuild after every forced placement.
func BenchmarkAssignHighBacktracking(b *testing.B) {
	benchAssign(b, machine.NewBusedGP(4, 1, 1), HeuristicIterative)
}

// BenchmarkAssign4ClusterReference runs the scratch-derive reference
// implementation on the 4-cluster workload, quantifying in-tree what
// the incremental engine saves.
func BenchmarkAssign4ClusterReference(b *testing.B) {
	m := machine.NewBusedGP(4, 4, 2)
	loops := loopgen.Suite(loopgen.Options{Seed: 1, Count: 64})
	iis := make([]int, len(loops))
	for i, g := range loops {
		iis[i] = mii.MII(g, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := loops[i%len(loops)]
		Run(g, m, iis[i%len(loops)], Options{Variant: HeuristicIterative, scratchEval: true})
	}
}

// BenchmarkAssignLargeLoop isolates the cost on the suite's biggest
// graphs (around 160 operations).
func BenchmarkAssignLargeLoop(b *testing.B) {
	var g *ddg.Graph
	for _, cand := range loopgen.Suite(loopgen.Options{Seed: 1, Count: 400}) {
		if g == nil || cand.NumNodes() > g.NumNodes() {
			g = cand
		}
	}
	m := machine.NewBusedGP(4, 4, 2)
	ii := mii.MII(g, m)
	b.ReportMetric(float64(g.NumNodes()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, m, ii, Options{Variant: HeuristicIterative})
	}
}
