package assign

import (
	"fmt"

	"clustersched/internal/machine"
	"clustersched/internal/mrt"
)

// engine is the incremental counterpart of derive(): it maintains the
// capacity table, the copy structure, and the per-cluster PCR/PIC
// aggregates as a function of the cluster vector, updating all of them
// in O(degree) when a single node is assigned or removed instead of
// replaying the whole graph.
//
// The central fact the engine exploits is that the copy structure is a
// pure, deterministic function of the cluster vector: derive() visits
// producers in ID order with target clusters ascending, and on
// point-to-point machines routes over a fixed BFS tree per source
// cluster (machine.Path is deterministic, so every cluster reached
// from a given source is always reached over the same tree edge).
// Changing node n's assignment therefore only changes the records of
// producers in {n} ∪ Predecessors(n) — everyone else's remote-consumer
// set is untouched — and a producer's record set only ever grows when
// a consumer becomes assigned (hop sets are unions over target paths).
// That monotonicity makes the remove-then-replace delta of apply()
// component-wise non-negative, so the incremental placement succeeds
// exactly when a scratch derive of the new vector would: feasibility,
// copy counts, and record contents are byte-identical to the oracle,
// which the differential tests assert.
//
// Invariants between calls (checked by the engine invariant test):
//
//	cap          == capacity table derive() would build
//	recs/tgts[p] == derive()'s records for producer p, in order
//	copies       == Σ len(recs[p])
//	usc[n]       == distinct successors of n still unassigned
//	contrib[n]   == n's term of pcr(): min(upperBound(rc), usc[n]),
//	                0 when n is unassigned
//	pcrSum[cl]   == pcr(cl)  (sum of contrib over nodes on cl)
//	inRef[cl][q] == assigned nodes on cl having q as predecessor
//	picCnt[cl]   == pic(cl)  (unassigned q with inRef[cl][q] > 0)
type engine struct {
	a   *assigner
	cap *mrt.Capacity

	// capSave holds the counter snapshot taken at the top of apply.
	// An apply that fails restores cap wholesale from it — a fixed-size
	// memcpy via CopyFrom, cheaper than journaling every individual
	// commit and release on the hot path when the only rollback ever
	// needed is "back to the start of this apply".
	capSave *mrt.Capacity

	copies  int
	recs    [][]eRecord
	tgts    [][]int   // backing store for record targets, per producer
	recBack []eRecord // pre-sized backing recs[p] sub-slices are carved from

	usc     []int
	contrib []int
	pcrSum  []int
	inRef   []int // [cl*numNodes+q]
	picCnt  []int

	// Epoch-stamped scratch (no clearing between uses).
	one     [1]int // single-target buffer for link-hop commits
	tgtMark []int  // per cluster: computeTargets dedup
	tEpoch  int
	avMark  []int // per cluster: copy-routing availability
	avEpoch int
	tBuf    []int // computeTargets result, capacity NumClusters
}

// eRecord is one reserved copy operation of a producer: sourced on
// cluster src, writing to the record's targets, which live at
// tgts[p][off:off+n]. link is -1 on broadcast machines.
type eRecord struct {
	src  int
	link int
	off  int
	n    int
}

// newEngine allocates the machine-sized half of an engine — the
// capacity table and its rollback snapshot, both II-retargetable in
// place. The per-graph arrays are carved from the assigner's slab by
// bindSlab, and the caller (assigner.bind) runs the initial rebuild.
func newEngine(a *assigner) *engine {
	return &engine{
		a:       a,
		cap:     mrt.NewCapacity(a.m, a.ii),
		capSave: mrt.NewCapacity(a.m, a.ii),
	}
}

// bindSlab re-carves the engine's per-graph arrays for a graph of v
// nodes on a machine of c clusters, taking slices from the assigner's
// slab. Mark buffers are zeroed and their epochs reset (the
// slab may hold stale stamps a fresh counter would collide with);
// everything else is (re)initialized by the rebuild that follows.
//
// The record stores are pre-sized to their worst case so the record
// walk never allocates, even cold: a producer reserves at most c-1
// copy records (point-to-point routing adds one per newly reached
// cluster) holding at most c-1 target entries in total (a broadcast
// machine makes one record carrying every target). Each producer gets
// a fixed-capacity three-index sub-slice of one backing store, so an
// append can never bleed into a neighbour's region — if the bound were
// ever exceeded, append would fall back to a fresh backing array,
// trading the no-alloc property for unchanged correctness.
func (e *engine) bindSlab(v, c int) {
	a := e.a
	e.usc = a.carve(v)
	e.contrib = a.carve(v)
	e.pcrSum = a.carve(c)
	e.inRef = a.carve(c * v)
	e.picCnt = a.carve(c)
	e.tgtMark = a.carve(c)
	e.avMark = a.carve(c)
	for i := 0; i < c; i++ {
		e.tgtMark[i] = 0
		e.avMark[i] = 0
	}
	e.tEpoch = 0
	e.avEpoch = 0
	e.tBuf = a.carve(c)[:0]

	cm1 := c - 1
	tback := a.carve(v * cm1)
	if cap(e.recs) < v || oversized(cap(e.recs), v) {
		e.recs = make([][]eRecord, v)
		e.tgts = make([][]int, v)
	}
	e.recs = e.recs[:v]
	e.tgts = e.tgts[:v]
	e.recBack = ensureRecs(e.recBack, v*cm1)
	for p := 0; p < v; p++ {
		e.tgts[p] = tback[p*cm1 : p*cm1 : (p+1)*cm1]
		e.recs[p] = e.recBack[p*cm1 : p*cm1 : (p+1)*cm1]
	}
}

// ensureRecs is the eRecord analogue of ensureInts.
func ensureRecs(buf []eRecord, n int) []eRecord {
	if cap(buf) < n || oversized(cap(buf), n) {
		return make([]eRecord, n)
	}
	return buf[:n]
}

// reset returns the engine to its freshly built state at a new II: the
// capacity table is re-sized in place and every derived structure
// recomputed for the (empty) cluster vector, which the caller must
// have cleared first. Counted as a full derive, exactly like the
// rebuild newEngine performs.
//
//schedvet:alloc-free callees
func (e *engine) reset(ii int) {
	e.cap.ResetII(ii)
	if !e.rebuild() {
		panic("assign: engine rebuild failed on empty assignment")
	}
}

// targets returns record r's target clusters (aliasing the engine's
// backing store).
func (e *engine) targets(p int, r eRecord) []int { return e.tgts[p][r.off : r.off+r.n] }

// apply tentatively assigns node n to cluster cl, updating capacity,
// copy records, and aggregates. It reports false — leaving every
// structure exactly as before — when the operation or its implied
// copies do not fit. Cost is O(deg(n) + Σ deg(affected producers)).
//
//schedvet:alloc-free
func (e *engine) apply(n, cl int) bool {
	a := e.a
	e.capSave.CopyFrom(e.cap)
	if !e.cap.CommitOp(mrt.OpAt(n, cl, a.g.Nodes[n].Kind), 0) {
		return false
	}
	a.cluster[n] = cl
	saved := e.copies
	ok := e.replaceCopies(n)
	if ok {
		for _, q := range a.predsOf(n) {
			if q == n || a.cluster[q] < 0 {
				continue
			}
			if !e.replaceCopies(q) {
				ok = false
				break
			}
		}
	}
	if !ok {
		// Undo: the snapshot restores every capacity counter to its
		// state at the top of apply (including the op itself), and the
		// records of the affected producers are recomputed from the
		// restored vector — they are a pure function of it.
		a.cluster[n] = -1
		e.cap.CopyFrom(e.capSave)
		e.copies = saved
		e.fillRecords(n)
		for _, q := range a.predsOf(n) {
			if q != n && a.cluster[q] >= 0 {
				e.fillRecords(q)
			}
		}
		return false
	}

	// Aggregates. Order matters for self-edges: n first stops being an
	// unassigned producer (pre-assignment refs), then contributes its
	// own predecessor refs with cluster[n] already set, so a self-loop
	// never re-counts n as unassigned.
	v := a.g.NumNodes()
	for c := 0; c < a.m.NumClusters(); c++ {
		if e.inRef[c*v+n] > 0 {
			e.picCnt[c]--
		}
	}
	for _, q := range a.predsOf(n) {
		idx := cl*v + q
		e.inRef[idx]++
		if e.inRef[idx] == 1 && a.cluster[q] < 0 {
			e.picCnt[cl]++
		}
		e.usc[q]--
	}
	for _, q := range a.predsOf(n) {
		if q != n && a.cluster[q] >= 0 {
			e.refreshContrib(q)
		}
	}
	e.refreshContrib(n)
	return true
}

// probeResult carries the selection metrics of one tentative
// assignment, read out of the committed capacity state before probe
// restores it.
type probeResult struct {
	feasible  bool
	newCopies int
	pcrSum    int // pcr(cl) after the assignment
	picCnt    int // pic(cl) after the assignment
	mrc       int // MaxReservableCopies(cl) after the assignment
	mri       int // MaxReservableIncoming(cl) after the assignment
	freeSlots int // FreeSlots(cl) after the assignment
}

// probe evaluates assigning node n (unassigned) to cluster cl without
// mutating the record structures: it issues exactly the commit/release
// sequence apply would (so feasibility is byte-identical), reads the
// selection metrics, computes the aggregate deltas arithmetically, and
// restores the capacity table from the snapshot. Where evaluate
// previously paid apply+remove — deriving every affected producer's
// records twice and reverting every aggregate — a probe leaves the
// engine untouched.
//
//schedvet:alloc-free
func (e *engine) probe(n, cl int) probeResult {
	a := e.a
	v := a.g.NumNodes()
	e.capSave.CopyFrom(e.cap)
	if !e.cap.CommitOp(mrt.OpAt(n, cl, a.g.Nodes[n].Kind), 0) {
		return probeResult{}
	}
	a.cluster[n] = cl

	// n's records on the new cluster (recs[n] is empty in practice: n
	// is unassigned), then every assigned predecessor's, in apply's
	// commit order so a reservation fails at the identical point.
	delta := 0
	for _, r := range e.recs[n] {
		e.cap.ReleaseOp(mrt.CopyAt(n, r.src, e.targets(n, r)))
	}
	nNew := e.walkProbe(n)
	ok := nNew >= 0
	pcrSum := e.pcrSum[cl]
	selfPred := false
	if ok {
		delta = nNew - len(e.recs[n])
		for _, q := range a.predsOf(n) {
			if q == n {
				selfPred = true
				continue
			}
			if a.cluster[q] < 0 {
				continue
			}
			for _, r := range e.recs[q] {
				e.cap.ReleaseOp(mrt.CopyAt(q, r.src, e.targets(q, r)))
			}
			qNew := e.walkProbe(q)
			if qNew < 0 {
				ok = false
				break
			}
			delta += qNew - len(e.recs[q])
			if a.cluster[q] == cl {
				// q's PCR term with one fewer unassigned successor
				// and its re-derived record count.
				usc := e.usc[q] - 1
				nc := 0
				if usc > 0 {
					nc = a.upperBound(qNew)
					if usc < nc {
						nc = usc
					}
				}
				pcrSum += nc - e.contrib[q]
			}
		}
	}
	if !ok {
		a.cluster[n] = -1
		e.cap.CopyFrom(e.capSave)
		return probeResult{}
	}

	// n's own PCR term joins cl (its contrib was 0 while unassigned).
	usc := e.usc[n]
	if selfPred {
		usc--
	}
	if usc > 0 {
		nc := a.upperBound(nNew)
		if usc < nc {
			nc = usc
		}
		pcrSum += nc
	}
	picCnt := e.picCnt[cl]
	if e.inRef[cl*v+n] > 0 {
		picCnt--
	}
	for _, q := range a.predsOf(n) {
		if e.inRef[cl*v+q] == 0 && a.cluster[q] < 0 {
			picCnt++
		}
	}

	r := probeResult{
		feasible:  true,
		newCopies: delta,
		pcrSum:    pcrSum,
		picCnt:    picCnt,
		mrc:       e.cap.MaxReservableCopies(cl),
		mri:       e.cap.MaxReservableIncoming(cl),
		freeSlots: e.cap.FreeSlots(cl),
	}
	a.cluster[n] = -1
	e.cap.CopyFrom(e.capSave)
	return r
}

// walkProbe is walk(p, true) without the record appends: it charges the
// capacity table through the identical commit sequence and returns the
// number of records the real walk would produce, or -1 when a
// reservation fails.
//
//schedvet:alloc-free
func (e *engine) walkProbe(p int) int {
	a := e.a
	src := a.cluster[p]
	targets := e.computeTargets(p)
	if len(targets) == 0 {
		return 0
	}
	if a.m.Network == machine.Broadcast {
		if !e.cap.CommitOp(mrt.CopyAt(p, src, targets), 0) {
			return -1
		}
		return 1
	}
	e.avEpoch++
	e.avMark[src] = e.avEpoch
	added := 0
	for _, t := range targets {
		if e.avMark[t] == e.avEpoch {
			continue
		}
		path := a.pathOf(src, t)
		if path == nil {
			return -1
		}
		for i := 0; i+1 < len(path); i++ {
			u, w := path[i], path[i+1]
			if e.avMark[w] == e.avEpoch {
				continue
			}
			e.one[0] = w
			if !e.cap.CommitOp(mrt.CopyAt(p, u, e.one[:]), 0) {
				return -1
			}
			e.avMark[w] = e.avEpoch
			added++
		}
	}
	return added
}

// remove unassigns node n (which must be assigned), the exact inverse
// of apply. It cannot fail: the remaining copies are a subset of what
// already fit.
//
//schedvet:alloc-free
func (e *engine) remove(n int) {
	a := e.a
	cl := a.cluster[n]
	v := a.g.NumNodes()

	// Aggregates, mirroring apply in reverse order.
	e.pcrSum[cl] -= e.contrib[n]
	e.contrib[n] = 0
	for _, q := range a.predsOf(n) {
		idx := cl*v + q
		e.inRef[idx]--
		if e.inRef[idx] == 0 && a.cluster[q] < 0 {
			e.picCnt[cl]--
		}
		e.usc[q]++
	}
	for c := 0; c < a.m.NumClusters(); c++ {
		if e.inRef[c*v+n] > 0 {
			e.picCnt[c]++
		}
	}

	e.removeCopies(n)
	for _, q := range a.predsOf(n) {
		if q == n || a.cluster[q] < 0 {
			continue
		}
		e.removeCopies(q)
	}
	e.cap.ReleaseOp(mrt.OpAt(n, cl, a.g.Nodes[n].Kind))
	a.cluster[n] = -1
	for _, q := range a.predsOf(n) {
		if q == n || a.cluster[q] < 0 {
			continue
		}
		added := e.walk(q, true)
		if added < 0 {
			panic("assign: engine re-place failed while removing a node")
		}
		e.copies += added
		e.refreshContrib(q)
	}
}

// replaceCopies re-derives producer p's copy records after one of its
// consumers changed cluster: remove the old reservations, place the
// new set. Reports false when the new set does not fit (the caller
// rolls back via the journal).
//
//schedvet:alloc-free
func (e *engine) replaceCopies(p int) bool {
	e.removeCopies(p)
	added := e.walk(p, true)
	if added < 0 {
		return false
	}
	e.copies += added
	return true
}

// removeCopies releases and forgets all of p's copy records.
//
//schedvet:alloc-free
func (e *engine) removeCopies(p int) {
	if len(e.recs[p]) == 0 {
		return
	}
	for _, r := range e.recs[p] {
		e.cap.ReleaseOp(mrt.CopyAt(p, r.src, e.targets(p, r)))
	}
	e.copies -= len(e.recs[p])
	e.recs[p] = e.recs[p][:0]
	e.tgts[p] = e.tgts[p][:0]
}

// fillRecords recomputes p's records from the cluster vector without
// touching the capacity table, used to restore after a rollback.
//
//schedvet:alloc-free
func (e *engine) fillRecords(p int) {
	e.recs[p] = e.recs[p][:0]
	e.tgts[p] = e.tgts[p][:0]
	if e.a.cluster[p] < 0 {
		return
	}
	if e.walk(p, false) < 0 {
		panic("assign: engine record restore failed on consistent state")
	}
}

// walk derives p's copy records exactly as derive() would — targets
// ascending, routed over the precomputed BFS paths — appending to
// recs[p]/tgts[p], which must be empty. With place set it also charges
// the capacity table and reports -1 when a reservation fails (or a
// target is unreachable); otherwise it returns the number of records
// appended. The caller is responsible for adding that to e.copies.
//
//schedvet:alloc-free
func (e *engine) walk(p int, place bool) int {
	a := e.a
	src := a.cluster[p]
	targets := e.computeTargets(p)
	if len(targets) == 0 {
		return 0
	}
	if a.m.Network == machine.Broadcast {
		if place && !e.cap.CommitOp(mrt.CopyAt(p, src, targets), 0) {
			return -1
		}
		off := len(e.tgts[p])
		e.tgts[p] = append(e.tgts[p], targets...)
		e.recs[p] = append(e.recs[p], eRecord{src: src, link: -1, off: off, n: len(targets)})
		return 1
	}
	e.avEpoch++
	e.avMark[src] = e.avEpoch
	added := 0
	for _, t := range targets {
		if e.avMark[t] == e.avEpoch {
			continue
		}
		path := a.pathOf(src, t)
		if path == nil {
			return -1
		}
		for i := 0; i+1 < len(path); i++ {
			u, w := path[i], path[i+1]
			if e.avMark[w] == e.avEpoch {
				continue
			}
			li := a.linkOf(u, w)
			e.one[0] = w
			if place && !e.cap.CommitOp(mrt.CopyAt(p, u, e.one[:]), 0) {
				return -1
			}
			e.avMark[w] = e.avEpoch
			off := len(e.tgts[p])
			e.tgts[p] = append(e.tgts[p], w)
			e.recs[p] = append(e.recs[p], eRecord{src: u, link: li, off: off, n: 1})
			added++
		}
	}
	return added
}

// computeTargets returns the distinct clusters (ascending) holding
// assigned consumers of p, in a buffer valid until the next call.
//
//schedvet:alloc-free
func (e *engine) computeTargets(p int) []int {
	a := e.a
	home := a.cluster[p]
	e.tEpoch++
	buf := e.tBuf[:0]
	for _, s := range a.succsOf(p) {
		c := a.cluster[s]
		if c < 0 || c == home || e.tgtMark[c] == e.tEpoch {
			continue
		}
		e.tgtMark[c] = e.tEpoch
		buf = append(buf, c)
	}
	insertionSort(buf)
	e.tBuf = buf
	return buf
}

// refreshContrib recomputes assigned node v's PCR term after its copy
// count or unassigned-successor count changed, folding the difference
// into its cluster's aggregate.
//
//schedvet:alloc-free
func (e *engine) refreshContrib(v int) {
	cl := e.a.cluster[v]
	if cl < 0 {
		panic(fmt.Sprintf("assign: refreshContrib on unassigned node %d", v))
	}
	nc := 0
	if e.usc[v] > 0 {
		nc = e.a.upperBound(len(e.recs[v]))
		if e.usc[v] < nc {
			nc = e.usc[v]
		}
	}
	e.pcrSum[cl] += nc - e.contrib[v]
	e.contrib[v] = nc
}

// rebuild recomputes everything from the cluster vector, the engine's
// own full derive. It runs at construction and after forced placement
// rewrites the vector behind the engine's back, and reports false when
// the vector is infeasible (callers only invoke it on consistent
// state). Counted as a full derive by the work-saved counters.
func (e *engine) rebuild() bool {
	a := e.a
	a.opts.Trace.AssignFullDerive()
	e.cap.Reset()
	e.copies = 0
	for p := range e.recs {
		e.recs[p] = e.recs[p][:0]
		e.tgts[p] = e.tgts[p][:0]
	}
	v := a.g.NumNodes()
	c := a.m.NumClusters()
	for n := 0; n < v; n++ {
		if cl := a.cluster[n]; cl >= 0 {
			if !e.cap.CommitOp(mrt.OpAt(n, cl, a.g.Nodes[n].Kind), 0) {
				return false
			}
		}
	}
	for p := 0; p < v; p++ {
		if a.cluster[p] < 0 {
			continue
		}
		added := e.walk(p, true)
		if added < 0 {
			return false
		}
		e.copies += added
	}
	for i := range e.inRef {
		e.inRef[i] = 0
	}
	for i := 0; i < c; i++ {
		e.pcrSum[i], e.picCnt[i] = 0, 0
	}
	for n := 0; n < v; n++ {
		e.usc[n], e.contrib[n] = 0, 0
	}
	for n := 0; n < v; n++ {
		for _, s := range a.succsOf(n) {
			if a.cluster[s] < 0 {
				e.usc[n]++
			}
		}
		if cl := a.cluster[n]; cl >= 0 {
			for _, q := range a.predsOf(n) {
				e.inRef[cl*v+q]++
			}
		}
	}
	for i := 0; i < c; i++ {
		for q := 0; q < v; q++ {
			if a.cluster[q] < 0 && e.inRef[i*v+q] > 0 {
				e.picCnt[i]++
			}
		}
	}
	for n := 0; n < v; n++ {
		if a.cluster[n] >= 0 {
			e.refreshContrib(n)
		}
	}
	return true
}
