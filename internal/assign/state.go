package assign

import (
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mrt"
)

// assigner carries the mutable state of one assignment run at a fixed
// II. The single source of truth is the cluster[] vector; resource use
// and copy structure are derived from it, which makes node removal
// (Section 4.3) trivially consistent: unassign and re-derive.
type assigner struct {
	g    *ddg.Graph
	m    *machine.Config
	ii   int
	opts Options

	cluster   []int // per node: assigned cluster or -1
	assignSeq []int // per node: monotonic stamp of the last assignment
	seq       int
	prevMask  []uint64 // per node: clusters previously tried (selection A)
	sccOf     []int    // per node: non-trivial SCC index or -1
	budget    int
}

// violationKind labels which resource class ran out during a derive.
type violationKind int

const (
	violNone violationKind = iota
	violFU
	violReadPort
	violWritePort
	violBus
	violLink
)

// violation identifies the first over-subscribed resource found while
// deriving, with the nodes whose removal could relieve it.
type violation struct {
	kind       violationKind
	cluster    int // for FU and port violations
	candidates []int
}

// copyRecord describes one reserved copy operation: producer value p,
// moved from cluster src to the target clusters (one target and a link
// index on point-to-point machines).
type copyRecord struct {
	producer int
	src      int
	targets  []int
	link     int // -1 on broadcast machines
}

// derived is the resource view implied by the current cluster vector.
type derived struct {
	ok      bool
	viol    violation
	cap     *mrt.Capacity
	rc      []int // per node: copy operations generated for its value
	copies  int   // total copy operations
	records []copyRecord
}

// remoteConsumers returns the distinct target clusters that need node
// p's value, plus the assigned consumer IDs, given the cluster vector.
func (a *assigner) remoteConsumers(p int) (clusters []int, consumers []int) {
	home := a.cluster[p]
	seen := map[int]bool{}
	for _, s := range a.g.Successors(p) {
		c := a.cluster[s]
		if c < 0 || c == home {
			continue
		}
		consumers = append(consumers, s)
		if !seen[c] {
			seen[c] = true
			clusters = append(clusters, c)
		}
	}
	sort.Ints(clusters)
	return clusters, consumers
}

// derive recomputes resource usage and copy structure from scratch.
// Operations are placed in node-ID order and producers visited in ID
// order with target clusters ascending, the same deterministic order
// used when materializing the annotated graph, so the capacity
// accounting and the final graph always agree.
func (a *assigner) derive() *derived {
	d := &derived{
		cap: mrt.NewCapacity(a.m, a.ii),
		rc:  make([]int, a.g.NumNodes()),
	}
	// Victims for a function-unit violation share the charge class of
	// the failing operation (on GP clusters every kind shares one pool).
	type fuKey struct {
		cl  int
		cls machine.FUClass
	}
	fuOwners := map[fuKey][]int{}
	for n := 0; n < a.g.NumNodes(); n++ {
		cl := a.cluster[n]
		if cl < 0 {
			continue
		}
		k := a.g.Nodes[n].Kind
		key := fuKey{cl: cl, cls: d.cap.ChargeClass(cl, k)}
		if !d.cap.PlaceOp(cl, k) {
			d.viol = violation{kind: violFU, cluster: cl, candidates: fuOwners[key]}
			return d
		}
		fuOwners[key] = append(fuOwners[key], n)
	}

	for p := 0; p < a.g.NumNodes(); p++ {
		if a.cluster[p] < 0 {
			continue
		}
		targets, consumers := a.remoteConsumers(p)
		if len(targets) == 0 {
			continue
		}
		var ok bool
		if a.m.Network == machine.Broadcast {
			ok = a.placeBroadcast(d, p, targets, consumers)
		} else {
			ok = a.placeChained(d, p, targets, consumers)
		}
		if !ok {
			return d
		}
	}
	d.ok = true
	return d
}

// placeBroadcast reserves a single broadcast copy of p's value to all
// target clusters. On failure it fills in the violation with victim
// candidates and reports false.
func (a *assigner) placeBroadcast(d *derived, p int, targets, consumers []int) bool {
	src := a.cluster[p]
	if d.cap.PlaceBroadcastCopy(src, targets) {
		d.rc[p] = 1
		d.copies++
		d.records = append(d.records, copyRecord{producer: p, src: src, targets: targets, link: -1})
		return true
	}
	// Attribute the failure to a specific resource for victim selection.
	switch {
	case d.cap.FreeReadPortSlots(src) <= 0:
		d.viol = violation{kind: violReadPort, cluster: src,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.src == src })}
	case d.cap.FreeBusSlots() <= 0:
		d.viol = violation{kind: violBus,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return true })}
	default:
		for _, t := range targets {
			if d.cap.FreeWritePortSlots(t) <= 0 {
				d.viol = violation{kind: violWritePort, cluster: t,
					candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return hasTarget(r, t) })}
				break
			}
		}
	}
	return false
}

// placeChained reserves point-to-point copies that make p's value
// available on every target cluster, forwarding through intermediate
// clusters along shortest link paths when the target is not adjacent
// (the grid machine of Section 2.1).
func (a *assigner) placeChained(d *derived, p int, targets, consumers []int) bool {
	home := a.cluster[p]
	avail := map[int]bool{home: true}
	for _, t := range targets {
		if avail[t] {
			continue
		}
		path := a.m.Path(home, t)
		if path == nil {
			d.viol = violation{kind: violLink, candidates: nil}
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			u, v := path[i], path[i+1]
			if avail[v] {
				continue
			}
			li := a.m.LinkBetween(u, v)
			if !d.cap.PlaceLinkCopy(u, v, li) {
				d.viol = a.linkViolation(d, p, consumers, u, v, li)
				return false
			}
			avail[v] = true
			d.rc[p]++
			d.copies++
			d.records = append(d.records, copyRecord{producer: p, src: u, targets: []int{v}, link: li})
		}
	}
	return true
}

// linkViolation attributes a failed point-to-point copy to its scarce
// resource and gathers victim candidates.
func (a *assigner) linkViolation(d *derived, p int, consumers []int, u, v, li int) violation {
	switch {
	case d.cap.FreeReadPortSlots(u) <= 0:
		return violation{kind: violReadPort, cluster: u,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.src == u })}
	case d.cap.FreeWritePortSlots(v) <= 0:
		return violation{kind: violWritePort, cluster: v,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return hasTarget(r, v) })}
	default:
		return violation{kind: violLink,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.link == li })}
	}
}

func hasTarget(r copyRecord, t int) bool {
	for _, x := range r.targets {
		if x == t {
			return true
		}
	}
	return false
}

// copyVictims gathers nodes whose removal could relieve a copy-resource
// violation: the producers of every reserved copy that touches the
// resource (selected by match), their assigned remote consumers, plus
// the failing producer p and its consumers.
func (a *assigner) copyVictims(d *derived, p int, consumers []int, match func(copyRecord) bool) []int {
	seen := map[int]bool{}
	var out []int
	add := func(n int) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, r := range d.records {
		if !match(r) {
			continue
		}
		add(r.producer)
		_, cs := a.remoteConsumers(r.producer)
		for _, c := range cs {
			add(c)
		}
	}
	add(p)
	for _, c := range consumers {
		add(c)
	}
	return out
}

// pcr computes the paper's Predicted Copy Requests for cluster cl:
// the sum over operations already assigned there of
// min(UpperBound(N), UnassignedSuccessors(N)).
func (a *assigner) pcr(d *derived, cl int) int {
	total := 0
	for n := 0; n < a.g.NumNodes(); n++ {
		if a.cluster[n] != cl {
			continue
		}
		unassigned := 0
		for _, s := range a.g.Successors(n) {
			if a.cluster[s] < 0 {
				unassigned++
			}
		}
		if unassigned == 0 {
			continue
		}
		ub := a.upperBound(d.rc[n])
		if unassigned < ub {
			ub = unassigned
		}
		total += ub
	}
	return total
}

// pic is the incoming mirror of pcr: predicted copies arriving at
// cluster cl, one per distinct unassigned predecessor of each node
// already assigned there (worst case: the predecessor lands on another
// cluster and its value must be written into cl). The paper's Figure 10
// line 6 predicts only source-side (read-port) pressure; with single
// write ports the target side binds just as often, so the full
// heuristic checks both directions against their reservable room.
func (a *assigner) pic(cl int) int {
	producers := map[int]bool{}
	for n := 0; n < a.g.NumNodes(); n++ {
		if a.cluster[n] != cl {
			continue
		}
		for _, p := range a.g.Predecessors(n) {
			if a.cluster[p] < 0 {
				producers[p] = true
			}
		}
	}
	return len(producers)
}

// maxReservableIncoming is the headroom for copies arriving at cluster
// cl: write-port slot-cycles there, and — like MaxReservableCopies on
// the source side — the free slot-cycles of the shared fabric each
// arriving copy also consumes.
func (a *assigner) maxReservableIncoming(d *derived, cl int) int {
	free := d.cap.FreeWritePortSlots(cl)
	var fabric int
	if a.m.Network == machine.Broadcast {
		fabric = d.cap.FreeBusSlots()
	} else {
		for _, li := range a.m.LinksAt(cl) {
			fabric += d.cap.FreeLinkSlots(li)
		}
	}
	if fabric < free {
		free = fabric
	}
	if free < 0 {
		free = 0
	}
	return free
}

// upperBound is the paper's UpperBound(): the worst-case number of
// additional copies an operation could still require. On a broadcast
// machine a value is communicated at most once; otherwise at most once
// per other cluster.
func (a *assigner) upperBound(rc int) int {
	var ub int
	if a.m.Network == machine.Broadcast {
		ub = 1 - rc
	} else {
		ub = a.m.NumClusters() - rc - 1
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}
