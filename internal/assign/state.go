package assign

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mrt"
	"clustersched/internal/obs"
	"clustersched/internal/order"
)

// assigner carries the mutable state of one assignment run at a fixed
// II. The single source of truth is the cluster[] vector. Resource use
// and copy structure are maintained two ways:
//
//   - The incremental engine (engine.go) keeps a capacity table with a
//     snapshot for apply rollback, per-producer copy records, and
//     per-cluster PCR/PIC aggregates, all updated in O(degree) when one
//     node's cluster changes. The main evaluate/commit loop runs on it
//     exclusively.
//   - derive() recomputes everything from scratch. It is the reference
//     oracle: forced placement uses it to attribute resource
//     violations to victim candidates (the one place that needs a
//     deterministic first-violation scan of an inconsistent
//     assignment), and the differential tests replay whole runs on it
//     to prove the engine byte-identical.
type assigner struct {
	g    *ddg.Graph
	m    *machine.Config
	ii   int
	opts Options

	cluster   []int // per node: assigned cluster or -1
	assignSeq []int // per node: monotonic stamp of the last assignment
	seq       int
	prevMask  []uint64 // per node: clusters previously tried (selection A)
	sccOf     []int    // per node: non-trivial SCC index or -1
	budget    int

	// prio is the II-invariant assignment order (Section 4.1, or plain
	// node IDs with Options.NaiveOrdering), computed once per problem
	// and reused across candidate IIs. Empty for unified machines.
	prio []int

	// partial holds the consistent partial assignment captured when a
	// run fails, the warm seed for the next candidate II; hasPartial
	// gates it (a canceled run leaves no seed).
	partial    []int
	hasPartial bool

	eng *engine // nil in reference (scratch) mode and in Materialize

	// Adjacency, precomputed once at construction: the distinct sorted
	// neighbour IDs ddg.Graph.Successors/Predecessors would return,
	// flattened CSR-style so the hot loops index instead of allocate.
	succAdj, succOff []int
	predAdj, predOff []int

	// sccMembers lists, per non-trivial SCC, its member node IDs in
	// ascending order; sccOf indexes into it. Replaces the O(V) scan
	// the old per-evaluate sccMates performed.
	sccMembers [][]int

	// Machine topology precomputes: BFS paths and link indices between
	// every cluster pair, shared read-only across runs on the same
	// machine (see machine.TopologyOf).
	topo *machine.Topology

	// Reusable evaluate/selection buffers (allocation-free hot loop).
	cands   []candidate
	listBuf []int
	fpBuf   []int

	// Reusable derive scratch: epoch-stamped marks replacing the
	// per-call map[int]bool sets, and owner/victim buffers reused
	// across derives. A buffer's content is valid only until the next
	// derive call, which is how every caller uses it.
	fuOwners   [][]int
	chMark     []int // per cluster: chained-copy availability epoch
	chEpoch    int
	victimMark []int // per node: copyVictims dedup epoch
	vEpoch     int
	victimBuf  []int
	consBuf    []int

	// scratchD is the reusable derived for call sites that hold at
	// most one derived at a time (deriveScratch). Sites that compare
	// two deriveds or let records escape allocate fresh via derive().
	scratchD *derived

	// scratchRC is the slab-carved backing of scratchD.rc; bind re-points
	// the derived at it so the scratch survives re-targeting the
	// assigner at a new graph.
	scratchRC []int

	// slabInts backs every per-graph []int above (including the
	// engine's); bind re-carves it for each graph, so re-targeting a
	// session-owned Problem at a new loop costs at most one slab
	// reallocation instead of one per field. carveOff is the carve
	// cursor, meaningful only during bind.
	slabInts []int
	carveOff int

	// ord holds the swing-ordering scratch; prio aliases its buffers
	// between binds.
	ord order.Scratch

	// ctorTrace is the trace the assigner was constructed with. bind
	// restores it so a rebound problem traces its construction rebuild
	// exactly like a fresh one would, instead of into whatever per-run
	// trace the previous RunAt installed.
	ctorTrace *obs.Trace
}

// newAssigner builds the run state: the machine-sized buffers and
// topology tables once, then bind carves the per-graph state — cluster
// vector, SCC index, CSR adjacency, SCC member lists, and — unless the
// run is in reference mode — the incremental engine.
func newAssigner(g *ddg.Graph, m *machine.Config, ii int, opts Options) *assigner {
	a := &assigner{m: m, opts: opts, ctorTrace: opts.Trace}
	c := m.NumClusters()
	a.topo = machine.TopologyOf(m)
	a.cands = make([]candidate, c)
	a.listBuf = make([]int, 0, c)
	a.fpBuf = make([]int, 0, c)
	a.fuOwners = make([][]int, c*int(machine.NumFUClasses))
	a.bind(g, ii)
	return a
}

// bind re-targets the assigner at a new graph, re-carving every
// per-graph working array — its own and the engine's — out of the one
// reusable int slab. Construction is bind from an empty assigner, and
// a session-owned Problem rebinds instead of reconstructing, so across
// many loops the whole per-graph state costs at most one slab regrowth
// (or a shrink when the previous loop was much larger). Epoch-stamped
// mark buffers are zeroed and their epochs reset here: the slab may
// hold stale stamps from the previous graph that a fresh epoch counter
// would otherwise collide with.
func (a *assigner) bind(g *ddg.Graph, ii int) {
	a.g = g
	a.ii = ii
	a.opts.Trace = a.ctorTrace
	a.seq = 0
	a.budget = a.opts.budget(g.NumNodes())
	a.hasPartial = false
	a.chEpoch = 0
	a.vEpoch = 0

	comps := g.NonTrivialSCCs()
	a.sccMembers = a.sccMembers[:0]
	for _, c := range comps {
		a.sccMembers = append(a.sccMembers, c.Nodes)
	}

	v := g.NumNodes()
	c := a.m.NumClusters()
	adjTotal := 0
	for n := 0; n < v; n++ {
		adjTotal += len(g.Successors(n)) + len(g.Predecessors(n))
	}
	naive := a.m.Clustered() && a.opts.NaiveOrdering
	useEngine := !a.opts.scratchEval && a.m.Clustered()

	total := 10*v + 2 + adjTotal + c
	if naive {
		total += v
	}
	if useEngine {
		total += 2*v + c*v + 5*c + v*(c-1)
	}
	a.slabInts = ensureInts(a.slabInts, total)
	a.carveOff = 0

	a.cluster = a.carve(v)
	a.assignSeq = a.carve(v)
	for i := range a.cluster {
		a.cluster[i] = -1
		a.assignSeq[i] = 0
	}
	a.prevMask = ensureU64(a.prevMask, v)
	for i := range a.prevMask {
		a.prevMask[i] = 0
	}

	a.sccOf = a.carve(v)
	for i := range a.sccOf {
		a.sccOf[i] = -1
	}
	for ci, comp := range comps {
		for _, n := range comp.Nodes {
			a.sccOf[n] = ci
		}
	}

	a.succOff = a.carve(v + 1)
	a.predOff = a.carve(v + 1)
	a.succOff[0], a.predOff[0] = 0, 0
	adj := a.carve(adjTotal)
	idx := 0
	for n := 0; n < v; n++ {
		idx += copy(adj[idx:], g.Successors(n))
		a.succOff[n+1] = idx
	}
	a.succAdj = adj[:idx:idx]
	pbase := idx
	for n := 0; n < v; n++ {
		idx += copy(adj[idx:], g.Predecessors(n))
		a.predOff[n+1] = idx - pbase
	}
	a.predAdj = adj[pbase:idx]

	a.chMark = a.carve(c)
	a.victimMark = a.carve(v)
	for i := range a.chMark {
		a.chMark[i] = 0
	}
	for i := range a.victimMark {
		a.victimMark[i] = 0
	}
	a.victimBuf = a.carve(v)[:0]
	a.consBuf = a.carve(v)[:0]
	a.partial = a.carve(v)
	a.scratchRC = a.carve(v)
	for i := range a.scratchRC {
		a.scratchRC[i] = 0
	}
	if a.scratchD != nil {
		a.scratchD.rc = a.scratchRC
	}

	switch {
	case naive:
		a.prio = a.carve(v)
		for i := range a.prio {
			a.prio[i] = i
		}
	case a.m.Clustered():
		a.prio = a.ord.Compute(g, a.m.Latency)
	default:
		a.prio = nil
	}

	if useEngine {
		if a.eng == nil {
			a.eng = newEngine(a)
		}
		a.eng.bindSlab(v, c)
		a.eng.cap.ResetII(ii)
		if !a.eng.rebuild() {
			panic("assign: engine rebuild failed on empty assignment")
		}
	}
	if a.carveOff != total {
		panic(fmt.Sprintf("assign: slab carve mismatch: used %d of %d", a.carveOff, total))
	}
}

// carve takes the next n ints off the bind slab as a fixed-capacity
// sub-slice, so appends on the result can never bleed into the
// neighbouring carve.
//
//schedvet:alloc-free
func (a *assigner) carve(n int) []int {
	s := a.slabInts[a.carveOff : a.carveOff+n : a.carveOff+n]
	a.carveOff += n
	return s
}

// ensureInts returns a slab of length n, reusing buf when its capacity
// fits without being grossly oversized: a backing array beyond a floor
// and more than 4x the need is dropped for a right-sized one, so one
// big loop does not pin memory for the rest of a session.
func ensureInts(buf []int, n int) []int {
	if cap(buf) < n || oversized(cap(buf), n) {
		return make([]int, n)
	}
	return buf[:n]
}

// ensureU64 is ensureInts for uint64 slabs.
func ensureU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n || oversized(cap(buf), n) {
		return make([]uint64, n)
	}
	return buf[:n]
}

// oversized reports whether a retained backing array of capacity c is
// wasteful for a need of n elements. The floor keeps small buffers
// stable: shrinking only ever saves meaningful memory on big ones.
//
//schedvet:alloc-free
func oversized(c, n int) bool {
	const shrinkFloor = 4096
	return c > shrinkFloor && c > 4*n
}

// reset returns the assigner to its freshly constructed state at a new
// candidate II, reusing every precomputed table and buffer — this is
// what makes an escalation step pay only the II-dependent work.
//
//schedvet:alloc-free callees
func (a *assigner) reset(ii int) {
	a.ii = ii
	for i := range a.cluster {
		a.cluster[i] = -1
		a.assignSeq[i] = 0
		a.prevMask[i] = 0
	}
	a.seq = 0
	a.budget = a.opts.budget(a.g.NumNodes())
	if a.eng != nil {
		a.eng.reset(ii)
	}
}

// seedFrom warm-starts the run by pre-committing the node→cluster
// pairs of seed, a consistent partial assignment captured from a
// failed run at a lower II. Every per-resource budget is units × II,
// so capacity grows monotonically with II and a placement that fit at
// II-1 almost always re-applies verbatim; a node that nonetheless
// fails to fit is simply left unassigned for the normal selection
// loop (an eviction of the stale seed entry), never failing the run.
// Nodes are applied in ascending ID order so the committed state —
// including the assignSeq stamps the victim policy reads — is a pure
// function of the seed, which the determinism of speculative II
// probing relies on.
//
//schedvet:alloc-free
func (a *assigner) seedFrom(seed []int) {
	if a.eng != nil {
		deltas := 0
		for n, cl := range seed {
			if cl < 0 || cl >= a.m.NumClusters() {
				continue
			}
			if a.eng.apply(n, cl) {
				a.commit(n, cl)
				deltas++
			}
		}
		a.opts.Trace.AssignDeltas(deltas)
		return
	}
	// Reference mode: one scratch derive per seed entry. The engine's
	// apply succeeds exactly when a scratch derive of the same vector
	// would (the invariant the differential tests enforce), so this
	// commits the identical node set in the identical order.
	for n, cl := range seed {
		if cl < 0 || cl >= a.m.NumClusters() {
			continue
		}
		a.cluster[n] = cl
		if d := a.deriveScratch(); !d.ok {
			a.cluster[n] = -1
			continue
		}
		a.commit(n, cl)
	}
}

// capturePartial snapshots the current cluster vector as the warm seed
// for the next candidate II. skip, when >= 0, is a node whose forced
// placement made the vector inconsistent and is excluded; the
// remainder is a subset of the last consistent assignment and — since
// removing nodes only ever releases resources — consistent itself.
//
//schedvet:alloc-free
func (a *assigner) capturePartial(skip int) {
	copy(a.partial, a.cluster)
	if skip >= 0 {
		a.partial[skip] = -1
	}
	a.hasPartial = true
}

// succsOf and predsOf return the precomputed distinct sorted
// neighbours of n; the slices are owned by the assigner.
//
//schedvet:alloc-free
func (a *assigner) succsOf(n int) []int { return a.succAdj[a.succOff[n]:a.succOff[n+1]] }

//schedvet:alloc-free
func (a *assigner) predsOf(n int) []int { return a.predAdj[a.predOff[n]:a.predOff[n+1]] }

// violationKind labels which resource class ran out during a derive.
type violationKind int

const (
	violNone violationKind = iota
	violFU
	violReadPort
	violWritePort
	violBus
	violLink
)

// violation identifies the first over-subscribed resource found while
// deriving, with the nodes whose removal could relieve it. The
// candidates slice is backed by a reusable buffer, valid until the
// next derive.
type violation struct {
	kind       violationKind
	cluster    int // for FU and port violations
	candidates []int
}

// copyRecord describes one reserved copy operation: producer value p,
// moved from cluster src to the target clusters (one target and a link
// index on point-to-point machines).
type copyRecord struct {
	producer int
	src      int
	targets  []int
	link     int // -1 on broadcast machines
}

// derived is the resource view implied by the current cluster vector.
type derived struct {
	ok      bool
	viol    violation
	cap     *mrt.Capacity
	rc      []int // per node: copy operations generated for its value
	copies  int   // total copy operations
	records []copyRecord
	arena   []int // backing store for record target lists
}

// remoteTargets appends to d.arena the distinct target clusters that
// need node p's value (ascending) and returns the slice. Records keep
// sub-slices of the arena; append-driven regrowth leaves earlier
// slices pointing at the old backing array, whose contents are never
// mutated, so they stay valid.
//
//schedvet:alloc-free
func (a *assigner) remoteTargets(d *derived, p int) []int {
	home := a.cluster[p]
	start := len(d.arena)
	for _, s := range a.succsOf(p) {
		c := a.cluster[s]
		if c < 0 || c == home {
			continue
		}
		dup := false
		for _, t := range d.arena[start:] {
			if t == c {
				dup = true
				break
			}
		}
		if !dup {
			d.arena = append(d.arena, c)
		}
	}
	targets := d.arena[start:]
	insertionSort(targets)
	return targets
}

// assignedRemoteConsumers returns the assigned consumers of p living
// on other clusters, in a buffer valid until the next call.
//
//schedvet:alloc-free
func (a *assigner) assignedRemoteConsumers(p int) []int {
	home := a.cluster[p]
	out := a.consBuf[:0]
	for _, s := range a.succsOf(p) {
		c := a.cluster[s]
		if c >= 0 && c != home {
			out = append(out, s)
		}
	}
	a.consBuf = out
	return out
}

// insertionSort sorts the (small: at most one entry per cluster) slice
// ascending without allocating.
//
//schedvet:alloc-free
func insertionSort(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// derive recomputes resource usage and copy structure from scratch.
// Operations are placed in node-ID order and producers visited in ID
// order with target clusters ascending, the same deterministic order
// used when materializing the annotated graph, so the capacity
// accounting and the final graph always agree. This is the reference
// the incremental engine is differentially tested against, and the
// attribution path forced placement uses on inconsistent assignments.
func (a *assigner) derive() *derived {
	d := &derived{
		cap: mrt.NewCapacity(a.m, a.ii),
		rc:  make([]int, a.g.NumNodes()),
	}
	return a.deriveInto(d)
}

// deriveScratch is derive into a per-assigner reusable buffer. The
// result is valid only until the next deriveScratch call; it is for
// the call sites that inspect one derived and drop it (seeding,
// forced-placement attribution, the unified-machine check). Sites
// that hold two deriveds at once (evaluateScratch) or whose records
// escape into the result (finalRecords) must use derive instead.
func (a *assigner) deriveScratch() *derived {
	d := a.scratchD
	if d == nil {
		d = &derived{
			cap: mrt.NewCapacity(a.m, a.ii),
			rc:  a.scratchRC,
		}
		a.scratchD = d
	} else {
		d.cap.ResetII(a.ii)
		for i := range d.rc {
			d.rc[i] = 0
		}
		d.records = d.records[:0]
		d.arena = d.arena[:0]
		d.copies = 0
		d.viol = violation{}
		d.ok = false
	}
	return a.deriveInto(d)
}

// deriveInto fills d (assumed zeroed/reset) from the current cluster
// vector and returns it.
//
//schedvet:alloc-free
func (a *assigner) deriveInto(d *derived) *derived {
	a.opts.Trace.AssignFullDerive()
	// Victims for a function-unit violation share the charge class of
	// the failing operation (on GP clusters every kind shares one
	// pool). fuOwners is keyed cluster*NumFUClasses+class.
	for i := range a.fuOwners {
		a.fuOwners[i] = a.fuOwners[i][:0]
	}
	for n := 0; n < a.g.NumNodes(); n++ {
		cl := a.cluster[n]
		if cl < 0 {
			continue
		}
		k := a.g.Nodes[n].Kind
		key := -1
		if cls := d.cap.ChargeClass(cl, k); cls >= 0 {
			key = cl*int(machine.NumFUClasses) + int(cls)
		}
		if !d.cap.CommitOp(mrt.OpAt(n, cl, k), 0) {
			var owners []int
			if key >= 0 {
				owners = a.fuOwners[key]
			}
			d.viol = violation{kind: violFU, cluster: cl, candidates: owners}
			return d
		}
		a.fuOwners[key] = append(a.fuOwners[key], n)
	}

	for p := 0; p < a.g.NumNodes(); p++ {
		if a.cluster[p] < 0 {
			continue
		}
		targets := a.remoteTargets(d, p)
		if len(targets) == 0 {
			continue
		}
		var ok bool
		if a.m.Network == machine.Broadcast {
			ok = a.placeBroadcast(d, p, targets)
		} else {
			ok = a.placeChained(d, p, targets)
		}
		if !ok {
			return d
		}
	}
	d.ok = true
	return d
}

// placeBroadcast reserves a single broadcast copy of p's value to all
// target clusters. On failure it fills in the violation with victim
// candidates and reports false.
func (a *assigner) placeBroadcast(d *derived, p int, targets []int) bool {
	src := a.cluster[p]
	if d.cap.CommitOp(mrt.CopyAt(p, src, targets), 0) {
		d.rc[p] = 1
		d.copies++
		d.records = append(d.records, copyRecord{producer: p, src: src, targets: targets, link: -1})
		return true
	}
	// Attribute the failure to a specific resource for victim selection.
	consumers := a.assignedRemoteConsumers(p)
	switch {
	case d.cap.FreeReadPortSlots(src) <= 0:
		d.viol = violation{kind: violReadPort, cluster: src,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.src == src })}
	case d.cap.FreeBusSlots() <= 0:
		d.viol = violation{kind: violBus,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return true })}
	default:
		for _, t := range targets {
			if d.cap.FreeWritePortSlots(t) <= 0 {
				d.viol = violation{kind: violWritePort, cluster: t,
					candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return hasTarget(r, t) })}
				break
			}
		}
	}
	return false
}

// placeChained reserves point-to-point copies that make p's value
// available on every target cluster, forwarding through intermediate
// clusters along shortest link paths when the target is not adjacent
// (the grid machine of Section 2.1).
//
//schedvet:alloc-free
func (a *assigner) placeChained(d *derived, p int, targets []int) bool {
	home := a.cluster[p]
	a.chEpoch++
	avail := a.chMark
	avail[home] = a.chEpoch
	for _, t := range targets {
		if avail[t] == a.chEpoch {
			continue
		}
		path := a.pathOf(home, t)
		if path == nil {
			d.viol = violation{kind: violLink, candidates: nil}
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			u, v := path[i], path[i+1]
			if avail[v] == a.chEpoch {
				continue
			}
			li := a.linkOf(u, v)
			d.arena = append(d.arena, v)
			if !d.cap.CommitOp(mrt.CopyAt(p, u, d.arena[len(d.arena)-1:]), 0) {
				d.arena = d.arena[:len(d.arena)-1]
				d.viol = a.linkViolation(d, p, u, v, li)
				return false
			}
			avail[v] = a.chEpoch
			d.rc[p]++
			d.copies++
			d.records = append(d.records, copyRecord{producer: p, src: u,
				targets: d.arena[len(d.arena)-1:], link: li})
		}
	}
	return true
}

// pathOf and linkOf are the precomputed forms of machine.Path and
// machine.LinkBetween.
//
//schedvet:alloc-free
func (a *assigner) pathOf(u, v int) []int { return a.topo.Path(u, v) }

//schedvet:alloc-free
func (a *assigner) linkOf(u, v int) int { return a.topo.LinkBetween(u, v) }

// linkViolation attributes a failed point-to-point copy to its scarce
// resource and gathers victim candidates.
func (a *assigner) linkViolation(d *derived, p int, u, v, li int) violation {
	consumers := a.assignedRemoteConsumers(p)
	switch {
	case d.cap.FreeReadPortSlots(u) <= 0:
		return violation{kind: violReadPort, cluster: u,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.src == u })}
	case d.cap.FreeWritePortSlots(v) <= 0:
		return violation{kind: violWritePort, cluster: v,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return hasTarget(r, v) })}
	default:
		return violation{kind: violLink,
			candidates: a.copyVictims(d, p, consumers, func(r copyRecord) bool { return r.link == li })}
	}
}

//schedvet:alloc-free
func hasTarget(r copyRecord, t int) bool {
	for _, x := range r.targets {
		if x == t {
			return true
		}
	}
	return false
}

// copyVictims gathers nodes whose removal could relieve a copy-resource
// violation: the producers of every reserved copy that touches the
// resource (selected by match), their assigned remote consumers, plus
// the failing producer p and its consumers. The result is backed by a
// reusable buffer, valid until the next derive.
func (a *assigner) copyVictims(d *derived, p int, consumers []int, match func(copyRecord) bool) []int {
	a.vEpoch++
	out := a.victimBuf[:0]
	add := func(n int) {
		if a.victimMark[n] != a.vEpoch {
			a.victimMark[n] = a.vEpoch
			out = append(out, n)
		}
	}
	for _, r := range d.records {
		if !match(r) {
			continue
		}
		add(r.producer)
		home := a.cluster[r.producer]
		for _, s := range a.succsOf(r.producer) {
			if c := a.cluster[s]; c >= 0 && c != home {
				add(s)
			}
		}
	}
	add(p)
	for _, c := range consumers {
		add(c)
	}
	a.victimBuf = out
	return out
}

// pcr computes the paper's Predicted Copy Requests for cluster cl:
// the sum over operations already assigned there of
// min(UpperBound(N), UnassignedSuccessors(N)). Reference form; the
// engine maintains the same quantity as a per-cluster aggregate.
//
//schedvet:alloc-free
func (a *assigner) pcr(d *derived, cl int) int {
	total := 0
	for n := 0; n < a.g.NumNodes(); n++ {
		if a.cluster[n] != cl {
			continue
		}
		unassigned := 0
		for _, s := range a.g.Successors(n) {
			if a.cluster[s] < 0 {
				unassigned++
			}
		}
		if unassigned == 0 {
			continue
		}
		ub := a.upperBound(d.rc[n])
		if unassigned < ub {
			ub = unassigned
		}
		total += ub
	}
	return total
}

// pic is the incoming mirror of pcr: predicted copies arriving at
// cluster cl, one per distinct unassigned predecessor of each node
// already assigned there (worst case: the predecessor lands on another
// cluster and its value must be written into cl). The paper's Figure 10
// line 6 predicts only source-side (read-port) pressure; with single
// write ports the target side binds just as often, so the full
// heuristic checks both directions against their reservable room.
// Reference form; the engine keeps a refcounted distinct-predecessor
// count per cluster instead.
func (a *assigner) pic(cl int) int {
	producers := map[int]bool{}
	for n := 0; n < a.g.NumNodes(); n++ {
		if a.cluster[n] != cl {
			continue
		}
		for _, p := range a.g.Predecessors(n) {
			if a.cluster[p] < 0 {
				producers[p] = true
			}
		}
	}
	return len(producers)
}

// maxReservableIncoming is the headroom for copies arriving at cluster
// cl: write-port slot-cycles there, and — like MaxReservableCopies on
// the source side — the free slot-cycles of the shared fabric each
// arriving copy also consumes.
//
//schedvet:alloc-free
func (a *assigner) maxReservableIncoming(d *derived, cl int) int {
	return a.maxReservableIncomingCap(d.cap, cl)
}

//schedvet:alloc-free
func (a *assigner) maxReservableIncomingCap(cap *mrt.Capacity, cl int) int {
	return cap.MaxReservableIncoming(cl)
}

// upperBound is the paper's UpperBound(): the worst-case number of
// additional copies an operation could still require. On a broadcast
// machine a value is communicated at most once; otherwise at most once
// per other cluster.
//
//schedvet:alloc-free
func (a *assigner) upperBound(rc int) int {
	var ub int
	if a.m.Network == machine.Broadcast {
		ub = 1 - rc
	} else {
		ub = a.m.NumClusters() - rc - 1
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}
