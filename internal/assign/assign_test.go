package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// figure6 builds the paper's introductory example graph.
func figure6() *ddg.Graph {
	g := ddg.NewGraph(6, 6)
	a := g.AddNode(ddg.OpALU, "A")
	b := g.AddNode(ddg.OpALU, "B")
	c := g.AddNode(ddg.OpLoad, "C")
	d := g.AddNode(ddg.OpALU, "D")
	e := g.AddNode(ddg.OpALU, "E")
	f := g.AddNode(ddg.OpALU, "F")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, d, 0)
	g.AddEdge(d, b, 1)
	g.AddEdge(d, e, 0)
	g.AddEdge(e, f, 0)
	return g
}

// introMachine is the Section 3 target: two single-unit clusters, two
// buses, one port per side.
func introMachine() *machine.Config {
	return &machine.Config{
		Name:    "intro",
		Network: machine.Broadcast,
		Buses:   2,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 1, 1),
			machine.GPCluster(1, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
}

func TestPaperExampleKeepsSCCTogether(t *testing.T) {
	g := figure6()
	m := introMachine()
	res, ok := Run(g, m, 4, Options{Variant: HeuristicIterative})
	if !ok {
		t.Fatal("assignment failed at II=4 (the paper succeeds)")
	}
	b, c, d := res.ClusterOf[1], res.ClusterOf[2], res.ClusterOf[3]
	if b != c || c != d {
		t.Errorf("SCC {B,C,D} split: clusters %d,%d,%d", b, c, d)
	}
	// Splitting off A, E, F requires at most 2 copies (A's value into
	// the SCC cluster is only needed if A is remote; D's value must
	// reach E/F's cluster).
	if res.Copies > 2 {
		t.Errorf("copies = %d, want <= 2", res.Copies)
	}
}

func TestUnifiedMachineTrivialAssignment(t *testing.T) {
	g := figure6()
	m := machine.NewUnifiedGP(8)
	res, ok := Run(g, m, 1, Options{})
	if !ok {
		t.Fatal("unified assignment failed")
	}
	if res.Copies != 0 {
		t.Errorf("unified machine produced %d copies", res.Copies)
	}
	for n, cl := range res.ClusterOf {
		if cl != 0 {
			t.Errorf("node %d on cluster %d, want 0", n, cl)
		}
	}
}

func TestUnifiedMachineFailsBelowResMII(t *testing.T) {
	g := ddg.NewGraph(9, 0)
	for i := 0; i < 9; i++ {
		g.AddNode(ddg.OpALU, "")
	}
	m := machine.NewUnifiedGP(4)
	if _, ok := Run(g, m, 2, Options{}); ok {
		t.Error("9 ops on 4 units at II=2 (capacity 8) should fail")
	}
	if _, ok := Run(g, m, 3, Options{}); !ok {
		t.Error("9 ops on 4 units at II=3 (capacity 12) should fit")
	}
}

func TestBroadcastSharesOneCopyAcrossTargets(t *testing.T) {
	// One producer with consumers pinned (by capacity) onto three other
	// clusters must broadcast once, not thrice: 4 single-unit clusters
	// at II=1 hold one op each.
	g := ddg.NewGraph(4, 3)
	p := g.AddNode(ddg.OpALU, "p")
	for i := 0; i < 3; i++ {
		c := g.AddNode(ddg.OpALU, "")
		g.AddEdge(p, c, 0)
	}
	m := &machine.Config{
		Name:    "4x1",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 1, 1), machine.GPCluster(1, 1, 1),
			machine.GPCluster(1, 1, 1), machine.GPCluster(1, 1, 1),
		},
		Latencies: machine.DefaultLatencies(),
	}
	res, ok := Run(g, m, 1, Options{Variant: HeuristicIterative})
	if !ok {
		t.Fatal("assignment failed")
	}
	if res.Copies != 1 {
		t.Fatalf("copies = %d, want 1 broadcast copy", res.Copies)
	}
	copyID := res.NumOriginal
	if got := len(res.CopyTargets[copyID]); got != 3 {
		t.Errorf("copy has %d targets, want 3", got)
	}
	for _, target := range res.CopyTargets[copyID] {
		if target == res.ClusterOf[copyID] {
			t.Error("copy targets its own cluster")
		}
	}
}

func TestGridChainsCopiesThroughNeighbours(t *testing.T) {
	// Grid of 3-unit clusters at II=1: each cluster holds one int op.
	// Four dependent ALU ops force a producer's value across the grid;
	// any value reaching a diagonal cluster needs two chained copies.
	g := ddg.NewGraph(5, 4)
	p := g.AddNode(ddg.OpALU, "p")
	for i := 0; i < 3; i++ {
		c := g.AddNode(ddg.OpALU, "")
		g.AddEdge(p, c, 0)
	}
	m := machine.NewGrid4(2)
	res, ok := Run(g, m, 1, Options{Variant: HeuristicIterative})
	if !ok {
		t.Fatal("assignment failed on the grid")
	}
	// Every copy must be between adjacent clusters.
	for n := res.NumOriginal; n < res.Graph.NumNodes(); n++ {
		src := res.ClusterOf[n]
		for _, target := range res.CopyTargets[n] {
			if m.LinkBetween(src, target) < 0 {
				t.Errorf("copy %d goes %d -> %d without a link", n, src, target)
			}
		}
		if len(res.CopyTargets[n]) != 1 {
			t.Errorf("point-to-point copy %d has %d targets", n, len(res.CopyTargets[n]))
		}
	}
	// The producer's consumers sit on three other clusters, one of them
	// diagonal: at least 3 copies (2 direct + chain) are needed.
	if res.Copies < 3 {
		t.Errorf("copies = %d, want >= 3 (chained forwarding)", res.Copies)
	}
}

func TestFailsWhenCopiesImpossible(t *testing.T) {
	// Five chained ops over two 1-unit clusters at II=3: capacity needs
	// a split, but the machine has no ports at all, so any split is
	// unassignable and the run must fail rather than loop.
	g := ddg.NewGraph(5, 4)
	for i := 0; i < 5; i++ {
		g.AddNode(ddg.OpALU, "")
		if i > 0 {
			g.AddEdge(i-1, i, 0)
		}
	}
	m := &machine.Config{
		Name:    "portless",
		Network: machine.Broadcast,
		Buses:   1,
		Clusters: []machine.Cluster{
			machine.GPCluster(1, 0, 0),
			machine.GPCluster(1, 0, 0),
		},
		Latencies: machine.DefaultLatencies(),
	}
	if _, ok := Run(g, m, 3, Options{Variant: HeuristicIterative}); ok {
		t.Error("assignment succeeded although no copy can ever be placed")
	}
	// With II=5 everything fits one cluster: must succeed with 0 copies.
	res, ok := Run(g, m, 5, Options{Variant: HeuristicIterative})
	if !ok || res.Copies != 0 {
		t.Errorf("II=5 single-cluster assignment: ok=%v copies=%d", ok, res.Copies)
	}
}

func TestVariantFlags(t *testing.T) {
	if Simple.fullSelection() || Simple.iterative() {
		t.Error("Simple must be neither full nor iterative")
	}
	if !SimpleIterative.iterative() || SimpleIterative.fullSelection() {
		t.Error("SimpleIterative flags wrong")
	}
	if !Heuristic.fullSelection() || Heuristic.iterative() {
		t.Error("Heuristic flags wrong")
	}
	if !HeuristicIterative.fullSelection() || !HeuristicIterative.iterative() {
		t.Error("HeuristicIterative flags wrong")
	}
	for _, v := range []Variant{Simple, SimpleIterative, Heuristic, HeuristicIterative} {
		if v.String() == "" || v.String() == "Variant(?)" {
			t.Errorf("variant %d has no name", int(v))
		}
	}
}

func TestHeuristicDominatesSimpleOnSuite(t *testing.T) {
	// The Figure 12/13 ordering: the full iterative heuristic must
	// match MII at least as often as the simple variant over a sample.
	loops := loopgen.Suite(loopgen.Options{Seed: 3, Count: 120})
	m := machine.NewBusedGP(2, 2, 1)
	okAt := func(v Variant) int {
		n := 0
		for _, g := range loops {
			ii := mii.MII(g, m)
			if _, ok := Run(g, m, ii, Options{Variant: v}); ok {
				n++
			}
		}
		return n
	}
	simple := okAt(Simple)
	heuristic := okAt(Heuristic)
	full := okAt(HeuristicIterative)
	if heuristic < simple {
		t.Errorf("Heuristic (%d) worse than Simple (%d)", heuristic, simple)
	}
	if full < heuristic {
		t.Errorf("HeuristicIterative (%d) worse than Heuristic (%d)", full, heuristic)
	}
	if full <= simple {
		t.Errorf("full algorithm (%d) should clearly beat Simple (%d)", full, simple)
	}
}

// TestResultStructuralInvariants is the core property test: for random
// suite loops on several machines, any successful assignment must be
// structurally sound — annotated graph valid, clusters in range, copy
// routing cluster-local, original edge semantics preserved.
func TestResultStructuralInvariants(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
	}
	f := func(seed int64, mIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := loopgen.Loop(rng)
		m := machines[int(mIdx)%len(machines)]
		ii := mii.MII(g, m)
		res, ok := Run(g, m, ii, Options{Variant: HeuristicIterative})
		if !ok {
			res, ok = Run(g, m, ii+4, Options{Variant: HeuristicIterative})
			if !ok {
				return true // legitimately hard; nothing to check
			}
		}
		return checkResult(t, g, m, res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func checkResult(t *testing.T, g *ddg.Graph, m *machine.Config, res *Result) bool {
	t.Helper()
	if err := res.Graph.Validate(); err != nil {
		t.Logf("annotated graph invalid: %v", err)
		return false
	}
	if res.NumOriginal != g.NumNodes() {
		t.Logf("NumOriginal = %d, want %d", res.NumOriginal, g.NumNodes())
		return false
	}
	if res.Graph.NumNodes() != g.NumNodes()+res.Copies {
		t.Logf("node count %d != original %d + copies %d", res.Graph.NumNodes(), g.NumNodes(), res.Copies)
		return false
	}
	for n := 0; n < res.Graph.NumNodes(); n++ {
		cl := res.ClusterOf[n]
		if cl < 0 || cl >= m.NumClusters() {
			t.Logf("node %d cluster %d out of range", n, cl)
			return false
		}
		isCopy := res.Graph.Nodes[n].Kind == ddg.OpCopy
		if isCopy != res.IsCopy(n) {
			t.Logf("node %d copy classification mismatch", n)
			return false
		}
		if isCopy {
			if len(res.CopyTargets[n]) == 0 {
				t.Logf("copy %d has no targets", n)
				return false
			}
			for _, target := range res.CopyTargets[n] {
				if target == cl {
					t.Logf("copy %d targets its own cluster", n)
					return false
				}
				if m.Network == machine.PointToPoint && m.LinkBetween(cl, target) < 0 {
					t.Logf("copy %d crosses non-adjacent clusters %d->%d", n, cl, target)
					return false
				}
			}
		}
	}
	// Every consumer reads cluster-local values.
	for _, e := range res.Graph.Edges {
		prodCl, consCl := res.ClusterOf[e.From], res.ClusterOf[e.To]
		if prodCl == consCl {
			continue
		}
		if res.Graph.Nodes[e.From].Kind != ddg.OpCopy {
			t.Logf("edge n%d->n%d crosses clusters %d->%d without a copy", e.From, e.To, prodCl, consCl)
			return false
		}
		found := false
		for _, target := range res.CopyTargets[e.From] {
			if target == consCl {
				found = true
				break
			}
		}
		if !found {
			t.Logf("copy %d feeds cluster %d it does not target", e.From, consCl)
			return false
		}
	}
	// Original dependence structure preserved: for each original edge
	// (u, v, d) there must be a path u ->* v in the annotated graph
	// whose distances sum to d, with only copies in between.
	for _, e := range g.Edges {
		if !pathPreserved(res, e) {
			t.Logf("original edge n%d->n%d (dist %d) not preserved", e.From, e.To, e.Distance)
			return false
		}
	}
	return true
}

// pathPreserved checks an original dependence survives, possibly
// rerouted through copy nodes, with total distance preserved.
func pathPreserved(res *Result, orig ddg.Edge) bool {
	type state struct {
		node, dist int
	}
	stack := []state{{orig.From, 0}}
	seen := map[state]bool{}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] || s.dist > orig.Distance {
			continue
		}
		seen[s] = true
		for _, e := range res.Graph.OutEdges(s.node) {
			nd := s.dist + e.Distance
			if e.To == orig.To && nd == orig.Distance {
				return true
			}
			if res.Graph.Nodes[e.To].Kind == ddg.OpCopy {
				stack = append(stack, state{e.To, nd})
			}
		}
	}
	return false
}

func TestBudgetExhaustionTerminates(t *testing.T) {
	// A hostile case: tight machine, tiny budget. The run must return
	// (either way) rather than loop forever.
	loops := loopgen.Suite(loopgen.Options{Seed: 11, Count: 40})
	m := machine.NewBusedGP(4, 1, 1)
	for _, g := range loops {
		ii := mii.MII(g, m)
		Run(g, m, ii, Options{Variant: HeuristicIterative, BudgetPerNode: 1})
	}
}

func TestRunPanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on II=0")
		}
	}()
	Run(figure6(), introMachine(), 0, Options{})
}

func TestDeterminism(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 30})
	m := machine.NewBusedGP(2, 2, 1)
	for _, g := range loops {
		ii := mii.MII(g, m)
		r1, ok1 := Run(g, m, ii, Options{Variant: HeuristicIterative})
		r2, ok2 := Run(g, m, ii, Options{Variant: HeuristicIterative})
		if ok1 != ok2 {
			t.Fatal("non-deterministic success")
		}
		if !ok1 {
			continue
		}
		for n := range r1.ClusterOf {
			if r1.ClusterOf[n] != r2.ClusterOf[n] {
				t.Fatalf("non-deterministic cluster for node %d", n)
			}
		}
	}
}

func TestNaiveOrderingStillProducesValidResults(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 19, Count: 50})
	m := machine.NewBusedGP(2, 2, 1)
	for i, g := range loops {
		ii := mii.MII(g, m)
		res, ok := Run(g, m, ii+2, Options{Variant: HeuristicIterative, NaiveOrdering: true})
		if !ok {
			continue
		}
		if !checkResult(t, g, m, res) {
			t.Fatalf("loop %d: naive-ordering result structurally invalid", i)
		}
	}
}

func TestEvictOldestStillProducesValidResults(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 23, Count: 50})
	m := machine.NewBusedGP(4, 4, 2)
	for i, g := range loops {
		ii := mii.MII(g, m)
		res, ok := Run(g, m, ii, Options{Variant: HeuristicIterative, EvictOldest: true})
		if !ok {
			continue
		}
		if !checkResult(t, g, m, res) {
			t.Fatalf("loop %d: evict-oldest result structurally invalid", i)
		}
	}
}

func TestDisableIncomingPredictionStillValid(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 29, Count: 50})
	m := machine.NewBusedGP(4, 4, 2)
	okWith, okWithout := 0, 0
	for _, g := range loops {
		ii := mii.MII(g, m)
		if res, ok := Run(g, m, ii, Options{Variant: HeuristicIterative}); ok {
			okWith++
			if !checkResult(t, g, m, res) {
				t.Fatal("structurally invalid")
			}
		}
		if res, ok := Run(g, m, ii, Options{Variant: HeuristicIterative, DisableIncomingPrediction: true}); ok {
			okWithout++
			if !checkResult(t, g, m, res) {
				t.Fatal("structurally invalid")
			}
		}
	}
	if okWith < okWithout {
		t.Errorf("incoming prediction should not hurt: with=%d without=%d", okWith, okWithout)
	}
}
