package assign

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
)

// diffMachines is the machine mix the differential layer exercises:
// broadcast GP, broadcast with specialized FS clusters, the paper's
// point-to-point grid, a larger ring with multi-hop routes, and a
// deliberately starved bused machine that forces heavy backtracking.
func diffMachines() []*machine.Config {
	return []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedGP(4, 1, 1),
		machine.NewBusedFS(2, 2, 1),
		machine.NewGrid4(2),
		machine.NewRing(6, 2),
	}
}

// equalResults compares every observable field of two assignment
// results, byte for byte.
func equalResults(got, want *Result) error {
	if (got == nil) != (want == nil) {
		return fmt.Errorf("got result %v, want %v", got != nil, want != nil)
	}
	if got == nil {
		return nil
	}
	if !reflect.DeepEqual(got.ClusterOf, want.ClusterOf) {
		return fmt.Errorf("ClusterOf: got %v, want %v", got.ClusterOf, want.ClusterOf)
	}
	if !reflect.DeepEqual(got.CopyTargets, want.CopyTargets) {
		return fmt.Errorf("CopyTargets: got %v, want %v", got.CopyTargets, want.CopyTargets)
	}
	if got.NumOriginal != want.NumOriginal || got.Copies != want.Copies || got.Evictions != want.Evictions {
		return fmt.Errorf("counts: got (orig=%d copies=%d evict=%d), want (orig=%d copies=%d evict=%d)",
			got.NumOriginal, got.Copies, got.Evictions, want.NumOriginal, want.Copies, want.Evictions)
	}
	if !reflect.DeepEqual(got.Graph.Nodes, want.Graph.Nodes) {
		return fmt.Errorf("graph nodes differ")
	}
	if !reflect.DeepEqual(got.Graph.Edges, want.Graph.Edges) {
		return fmt.Errorf("graph edges differ: got %v, want %v", got.Graph.Edges, want.Graph.Edges)
	}
	return nil
}

// runBoth assigns g on m at ii with the incremental engine and with
// the scratch reference, and reports any observable difference.
func runBoth(g *ddg.Graph, m *machine.Config, ii int, opts Options) error {
	inc, incOK := Run(g, m, ii, opts)
	ref := opts
	ref.scratchEval = true
	sc, scOK := Run(g, m, ii, ref)
	if incOK != scOK {
		return fmt.Errorf("feasibility: engine %v, reference %v", incOK, scOK)
	}
	if !incOK {
		return nil
	}
	return equalResults(inc, sc)
}

// TestIncrementalMatchesReferenceOnSuite replays a slice of the
// benchmark suite on every machine shape at MII and under II slack,
// asserting the engine-backed Run is byte-identical to the scratch
// reference: same feasibility, cluster vector, copies, rerouted graph,
// and eviction count.
func TestIncrementalMatchesReferenceOnSuite(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 7, Count: 24})
	for mi, m := range diffMachines() {
		for li, g := range loops {
			base := mii.MII(g, m)
			for _, bump := range []int{0, 2} {
				opts := Options{Variant: HeuristicIterative}
				if err := runBoth(g, m, base+bump, opts); err != nil {
					t.Fatalf("machine %d loop %d ii %d: %v", mi, li, base+bump, err)
				}
			}
		}
	}
}

// TestIncrementalMatchesReferenceVariants covers the other three paper
// variants and both ablation switches on a smaller slice.
func TestIncrementalMatchesReferenceVariants(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 11, Count: 8})
	m := machine.NewBusedGP(4, 2, 1)
	for li, g := range loops {
		ii := mii.MII(g, m)
		for _, opts := range []Options{
			{Variant: Simple},
			{Variant: SimpleIterative},
			{Variant: Heuristic},
			{Variant: HeuristicIterative, DisableIncomingPrediction: true},
			{Variant: HeuristicIterative, EvictOldest: true},
			{Variant: HeuristicIterative, NaiveOrdering: true},
		} {
			if err := runBoth(g, m, ii, opts); err != nil {
				t.Fatalf("loop %d opts %+v: %v", li, opts, err)
			}
		}
	}
}

// TestSelfCheckOnSuite runs with the per-evaluate oracle comparison
// enabled: every candidate metric of every node on every cluster must
// match the reference exactly, not just the final result.
func TestSelfCheckOnSuite(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 3, Count: 10})
	for mi, m := range diffMachines() {
		for li, g := range loops {
			ii := mii.MII(g, m)
			opts := Options{Variant: HeuristicIterative, selfCheck: true}
			if _, ok := Run(g, m, ii, opts); !ok {
				// Infeasible at MII is fine; the self-check ran on the
				// way there. Retry with slack so feasible paths are
				// covered too.
				Run(g, m, ii+2, opts)
			}
			_ = mi
			_ = li
		}
	}
}

// TestSCCMatesPrecomputed checks the constructor's sccMembers lists
// against the brute-force scan for every node.
func TestSCCMatesPrecomputed(t *testing.T) {
	loops := loopgen.Suite(loopgen.Options{Seed: 5, Count: 12})
	m := machine.NewBusedGP(2, 2, 1)
	for li, g := range loops {
		a := newAssigner(g, m, mii.MII(g, m), Options{})
		for n := 0; n < g.NumNodes(); n++ {
			want := a.sccMatesScan(n)
			var got []int
			if scc := a.sccOf[n]; scc >= 0 {
				for _, mate := range a.sccMembers[scc] {
					if mate != n {
						got = append(got, mate)
					}
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("loop %d node %d: precomputed mates %v, scan %v", li, n, got, want)
			}
		}
	}
}

// checkEngineAgainstDerive asserts every engine invariant against a
// fresh scratch derive of the same cluster vector.
func checkEngineAgainstDerive(t *testing.T, a *assigner) {
	t.Helper()
	e := a.eng
	d := a.derive()
	if !d.ok {
		t.Fatalf("engine reached a state the oracle calls infeasible: %+v", d.viol)
	}
	if e.copies != d.copies {
		t.Fatalf("copies: engine %d, derive %d", e.copies, d.copies)
	}
	var flat []copyRecord
	for p := 0; p < a.g.NumNodes(); p++ {
		if len(e.recs[p]) != d.rc[p] {
			t.Fatalf("rc[%d]: engine %d, derive %d", p, len(e.recs[p]), d.rc[p])
		}
		for _, r := range e.recs[p] {
			flat = append(flat, copyRecord{producer: p, src: r.src, targets: e.targets(p, r), link: r.link})
		}
	}
	if len(flat) != len(d.records) {
		t.Fatalf("record count: engine %d, derive %d", len(flat), len(d.records))
	}
	for i := range flat {
		g, w := flat[i], d.records[i]
		if g.producer != w.producer || g.src != w.src || g.link != w.link ||
			!reflect.DeepEqual(append([]int{}, g.targets...), append([]int{}, w.targets...)) {
			t.Fatalf("record %d: engine %+v, derive %+v", i, g, w)
		}
	}
	for cl := 0; cl < a.m.NumClusters(); cl++ {
		if e.pcrSum[cl] != a.pcr(d, cl) {
			t.Fatalf("pcrSum[%d]: engine %d, oracle %d", cl, e.pcrSum[cl], a.pcr(d, cl))
		}
		if e.picCnt[cl] != a.pic(cl) {
			t.Fatalf("picCnt[%d]: engine %d, oracle %d", cl, e.picCnt[cl], a.pic(cl))
		}
		if e.cap.FreeSlots(cl) != d.cap.FreeSlots(cl) {
			t.Fatalf("FreeSlots[%d]: engine %d, derive %d", cl, e.cap.FreeSlots(cl), d.cap.FreeSlots(cl))
		}
		if e.cap.FreeReadPortSlots(cl) != d.cap.FreeReadPortSlots(cl) {
			t.Fatalf("FreeReadPortSlots[%d]: engine %d, derive %d",
				cl, e.cap.FreeReadPortSlots(cl), d.cap.FreeReadPortSlots(cl))
		}
		if e.cap.FreeWritePortSlots(cl) != d.cap.FreeWritePortSlots(cl) {
			t.Fatalf("FreeWritePortSlots[%d]: engine %d, derive %d",
				cl, e.cap.FreeWritePortSlots(cl), d.cap.FreeWritePortSlots(cl))
		}
	}
	if e.cap.FreeBusSlots() != d.cap.FreeBusSlots() {
		t.Fatalf("FreeBusSlots: engine %d, derive %d", e.cap.FreeBusSlots(), d.cap.FreeBusSlots())
	}
	for li := range a.m.Links {
		if e.cap.FreeLinkSlots(li) != d.cap.FreeLinkSlots(li) {
			t.Fatalf("FreeLinkSlots[%d]: engine %d, derive %d",
				li, e.cap.FreeLinkSlots(li), d.cap.FreeLinkSlots(li))
		}
	}
	for n := 0; n < a.g.NumNodes(); n++ {
		want := 0
		for _, s := range a.succsOf(n) {
			if a.cluster[s] < 0 {
				want++
			}
		}
		if e.usc[n] != want {
			t.Fatalf("usc[%d]: engine %d, recount %d", n, e.usc[n], want)
		}
	}
}

// TestEngineInvariants drives the engine through random apply/remove
// sequences and validates every maintained quantity against a scratch
// derive after each step; failed applies must leave no trace.
func TestEngineInvariants(t *testing.T) {
	for mi, m := range diffMachines() {
		rng := rand.New(rand.NewSource(int64(100 + mi)))
		for trial := 0; trial < 6; trial++ {
			g := loopgen.Loop(rng)
			a := newAssigner(g, m, mii.MII(g, m)+rng.Intn(3), Options{Variant: HeuristicIterative})
			e := a.eng
			for step := 0; step < 120; step++ {
				n := rng.Intn(g.NumNodes())
				if a.cluster[n] >= 0 {
					e.remove(n)
					checkEngineAgainstDerive(t, a)
					continue
				}
				cl := rng.Intn(m.NumClusters())
				before := struct {
					copies, free, bus int
				}{e.copies, e.cap.FreeSlots(cl), e.cap.FreeBusSlots()}
				if !e.apply(n, cl) {
					if a.cluster[n] != -1 {
						t.Fatalf("failed apply left node %d assigned", n)
					}
					if e.copies != before.copies || e.cap.FreeSlots(cl) != before.free ||
						e.cap.FreeBusSlots() != before.bus {
						t.Fatalf("failed apply leaked state on machine %d", mi)
					}
				}
				checkEngineAgainstDerive(t, a)
			}
		}
	}
}

// FuzzAssignDifferential feeds random loops, machines, variants, and
// II slack through both the incremental and reference implementations
// and requires byte-identical results, plus a clean self-check pass.
func FuzzAssignDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(3), uint8(0))
	f.Add(int64(2), uint8(1), uint8(3), uint8(1))
	f.Add(int64(3), uint8(2), uint8(1), uint8(0))
	f.Add(int64(4), uint8(3), uint8(2), uint8(2))
	f.Add(int64(5), uint8(4), uint8(3), uint8(0))
	f.Add(int64(6), uint8(5), uint8(3), uint8(1))
	f.Add(int64(7), uint8(2), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, mSel, vSel, iiBump uint8) {
		machines := diffMachines()
		m := machines[int(mSel)%len(machines)]
		g := loopgen.Loop(rand.New(rand.NewSource(seed)))
		ii := mii.MII(g, m) + int(iiBump%3)
		opts := Options{Variant: Variant(int(vSel) % 4)}
		if err := runBoth(g, m, ii, opts); err != nil {
			t.Fatalf("seed %d machine %d variant %v ii %d: %v", seed, int(mSel)%len(machines), opts.Variant, ii, err)
		}
		opts.selfCheck = true
		Run(g, m, ii, opts) // panics on any per-candidate divergence
	})
}

// TestAssignSteadyStateAllocs pins the allocation behavior of the
// steady-state evaluate/select/commit loop at zero: after the reusable
// buffers reach their high-water marks, assigning and unassigning a
// whole loop touches the heap not at all.
func TestAssignSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; accounting is meaningless")
	}
	var g *ddg.Graph
	for _, cand := range loopgen.Suite(loopgen.Options{Seed: 1, Count: 64}) {
		if g == nil || cand.NumNodes() > g.NumNodes() {
			g = cand
		}
	}
	m := machine.NewBusedGP(4, 4, 2)
	a := newAssigner(g, m, mii.MII(g, m), Options{Variant: HeuristicIterative})
	cycle := func() {
		for n := 0; n < g.NumNodes(); n++ {
			if a.cluster[n] >= 0 {
				continue
			}
			cands := a.evaluate(n)
			list := a.feasibleList(cands)
			if len(list) == 0 {
				continue // forced placement is the non-steady-state path
			}
			a.place(n, a.selectCluster(n, list, cands))
		}
		for n := g.NumNodes() - 1; n >= 0; n-- {
			if a.cluster[n] >= 0 {
				a.eng.remove(n)
			}
		}
	}
	// Grow every reusable buffer to its high-water mark before
	// measuring (AllocsPerRun's own warmup run is not always enough:
	// the Section 4.3.2 prevMask bookkeeping shifts later passes onto
	// slightly different placements).
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Fatalf("steady-state evaluate/commit loop allocates %.1f times per pass, want 0", avg)
	}
}
