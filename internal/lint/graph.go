package lint

import (
	"fmt"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
)

// Advisory graph codes, continuing the DDG001-DDG006 structural codes
// owned by ddg.Graph.Lint.
const (
	CodeDuplicateEdge = "DDG007" // identical dependence recorded twice
	CodeIsolatedNode  = "DDG008" // non-branch node with no dependences
	CodePreAssignCopy = "DDG009" // copy node in a pre-assignment graph
)

// Graph checks a pre-assignment dependence graph: every structural
// invariant of ddg.Graph.Lint plus advisory findings — duplicate
// edges, isolated nodes, and copy nodes (which only cluster assignment
// should introduce).
func Graph(g *ddg.Graph) []diag.Diagnostic {
	diags := g.Lint()
	var r diag.Reporter

	// Two identical edges are idiomatic — one value feeding both
	// operands of a consumer (x*x). Three or more identical records
	// cannot all be operand uses and indicate a redundant dependence.
	count := make(map[ddg.Edge]int, len(g.Edges))
	for _, e := range g.Edges {
		count[e]++
	}
	for i, e := range g.Edges {
		if c := count[e]; c > 2 {
			count[e] = -1 // report each offending dependence once, at its first edge
			dups := make([]int, 0, c)
			for j, e2 := range g.Edges {
				if e2 == e {
					dups = append(dups, j)
				}
			}
			r.Report(diag.Diagnostic{
				Code: CodeDuplicateEdge, Severity: diag.Warning,
				Subject: fmt.Sprintf("edge %d", i),
				Message: fmt.Sprintf("dependence n%d -> n%d dist=%d is recorded %d times (edges %v)",
					e.From, e.To, e.Distance, c, dups),
				Fix: "record a dependence once per operand use; drop the redundant edges",
			})
		}
	}

	if g.NumNodes() > 1 {
		degree := make([]int, g.NumNodes())
		for _, e := range g.Edges {
			if e.From >= 0 && e.From < g.NumNodes() {
				degree[e.From]++
			}
			if e.To >= 0 && e.To < g.NumNodes() {
				degree[e.To]++
			}
		}
		for i, n := range g.Nodes {
			if n == nil || degree[i] > 0 {
				continue
			}
			// The loop-closing branch legitimately carries no data
			// dependences; anything else dangling is suspect.
			if n.Kind == ddg.OpBranch {
				continue
			}
			r.Report(diag.Diagnostic{
				Code: CodeIsolatedNode, Severity: diag.Warning,
				Subject: fmt.Sprintf("node %d", i),
				Message: fmt.Sprintf("node %d (%s) has no dependences; it is unreachable from the rest of the loop", i, n.Kind),
				Fix:     "remove the operation or wire it into the dataflow",
			})
		}
	}

	for i, n := range g.Nodes {
		if n != nil && n.Kind == ddg.OpCopy {
			r.Report(diag.Diagnostic{
				Code: CodePreAssignCopy, Severity: diag.Warning,
				Subject: fmt.Sprintf("node %d", i),
				Message: fmt.Sprintf("node %d is an explicit copy; copies are normally inserted by cluster assignment, not present in its input", i),
				Fix:     "drop the copy and let assignment place inter-cluster moves",
			})
		}
	}

	return append(diags, r.Diagnostics()...)
}
