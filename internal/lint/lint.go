// Package lint implements the static-analysis passes that gate the
// scheduling pipeline: data-dependence-graph well-formedness, machine
// configuration validation, and loop-language lint over the frontend
// AST. Each pass returns structured diagnostics (package diag) with
// stable codes; docs/DIAGNOSTICS.md catalogues all of them.
//
// The passes layer advisory findings (warnings, infos) on top of the
// hard structural checks owned by ddg.Graph.Lint and
// machine.Config.Lint: an input with Error-severity findings produces
// garbage assignments or crashes downstream, while warnings flag
// legal-but-suspect inputs (dead values, isolated nodes, unused
// fabric) that usually indicate a mistake.
package lint

import (
	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/machine"
)

// Input runs the graph and machine passes a pipeline run depends on
// and returns their combined findings. The pipeline rejects the run
// when any finding is Error severity, before assignment starts.
func Input(g *ddg.Graph, m *machine.Config) []diag.Diagnostic {
	diags := Graph(g)
	diags = append(diags, Machine(m)...)
	return diags
}
