package lint_test

import (
	"regexp"
	"testing"

	"clustersched/internal/diag"
	"clustersched/internal/lint"
)

var codePattern = regexp.MustCompile(`^(DDG|MACH|LOOP|SCHED)\d{3}$`)

// FuzzLintLoop feeds arbitrary source through the loop-language linter.
// The linter must never panic, and every diagnostic it emits must carry
// a well-formed code, a valid severity, and the location it was asked
// to lint.
func FuzzLintLoop(f *testing.F) {
	f.Add("loop dot { s = s + a[i]*b[i] }")
	f.Add("loop d {\n t = a[i]\n t = b[i]\n out[i] = t\n}")
	f.Add("loop d {\n x[i] = a[i]\n x[i] = b[i]\n}")
	f.Add("loop d { i = i + 1.0 }")
	f.Add("loop d { s = s + 1.0\n s[i] = s }")
	f.Add("loop d { x[i] = a[i] }\nloop d { y[i] = b[i] }")
	f.Add("loop {")
	f.Add("")
	f.Add("loop rec { x[i] = x[i-3] + 0.5 }")
	f.Add("# comment only\n")
	f.Add("loop w { q[i] = sqrt(u[i]*u[i] + w[i]*w[i]) }")
	f.Fuzz(func(t *testing.T, src string) {
		diags := lint.Source("fuzz.loop", src)
		for _, d := range diags {
			if !codePattern.MatchString(d.Code) {
				t.Errorf("malformed diagnostic code %q in %+v", d.Code, d)
			}
			if d.Severity != diag.Error && d.Severity != diag.Warning && d.Severity != diag.Info {
				t.Errorf("invalid severity %d in %+v", int(d.Severity), d)
			}
			if d.File != "fuzz.loop" {
				t.Errorf("diagnostic lost its location: %+v", d)
			}
			if d.Line < 0 {
				t.Errorf("negative line in %+v", d)
			}
			if d.Message == "" {
				t.Errorf("empty message in %+v", d)
			}
		}
	})
}
