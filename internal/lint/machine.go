package lint

import (
	"fmt"

	"clustersched/internal/diag"
	"clustersched/internal/machine"
)

// Advisory machine codes, continuing the MACH001-MACH010 consistency
// codes owned by machine.Config.Lint.
const (
	CodeFabricMismatch  = "MACH011" // fabric fields inconsistent with network kind
	CodePortlessCluster = "MACH012" // clustered machine with a port-less cluster
	CodeDuplicateLink   = "MACH013" // same cluster pair linked twice
	CodeUnusedFabric    = "MACH014" // single-cluster machine with a fabric
)

// Machine checks a machine configuration: every consistency invariant
// of machine.Config.Lint plus advisory findings about fabric fields
// that the network kind ignores, clusters no copy can reach or leave,
// and redundant links.
func Machine(m *machine.Config) []diag.Diagnostic {
	diags := m.Lint()
	var r diag.Reporter
	mname := fmt.Sprintf("machine %q", m.Name)

	switch m.Network {
	case machine.Broadcast:
		if len(m.Links) > 0 {
			r.Warnf(CodeFabricMismatch, mname,
				"machine %q is a broadcast machine but declares %d point-to-point link(s), which are ignored",
				m.Name, len(m.Links))
		}
	case machine.PointToPoint:
		if m.Buses > 0 {
			r.Warnf(CodeFabricMismatch, mname,
				"machine %q is a point-to-point machine but declares %d broadcast bus(es), which are ignored",
				m.Name, m.Buses)
		}
	}

	if m.Clustered() {
		for i := range m.Clusters {
			c := &m.Clusters[i]
			if c.ReadPorts == 0 || c.WritePorts == 0 {
				r.Report(diag.Diagnostic{
					Code: CodePortlessCluster, Severity: diag.Warning,
					Subject: fmt.Sprintf("cluster %d", i),
					Message: fmt.Sprintf("machine %q: cluster %d has %d read / %d write port(s); values cannot %s it, so any loop needing communication there is unschedulable",
						m.Name, i, c.ReadPorts, c.WritePorts, portVerb(c)),
					Fix: "give every cluster of a clustered machine at least one read and one write port",
				})
			}
		}
	} else if m.Buses > 0 || len(m.Links) > 0 {
		r.Infof(CodeUnusedFabric, mname,
			"machine %q has a single cluster; its %s is never used",
			m.Name, fabricName(m))
	}

	seen := make(map[[2]int]int, len(m.Links))
	for i, l := range m.Links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if first, dup := seen[key]; dup {
			r.Warnf(CodeDuplicateLink, fmt.Sprintf("link %d", i),
				"machine %q: link %d duplicates link %d (clusters %d-%d)", m.Name, i, first, a, b)
			continue
		}
		seen[key] = i
	}

	return append(diags, r.Diagnostics()...)
}

func portVerb(c *machine.Cluster) string {
	switch {
	case c.ReadPorts == 0 && c.WritePorts == 0:
		return "enter or leave"
	case c.ReadPorts == 0:
		return "leave"
	default:
		return "enter"
	}
}

func fabricName(m *machine.Config) string {
	if len(m.Links) > 0 {
		return fmt.Sprintf("%d link(s)", len(m.Links))
	}
	return fmt.Sprintf("%d bus(es)", m.Buses)
}
