package lint_test

import (
	"strings"
	"testing"

	"clustersched/internal/ddg"
	"clustersched/internal/diag"
	"clustersched/internal/experiments"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
)

func hasCode(diags []diag.Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func codes(diags []diag.Diagnostic) string {
	var cs []string
	for _, d := range diags {
		cs = append(cs, d.Code)
	}
	return strings.Join(cs, ",")
}

// chainGraph is a minimal clean fixture: load -> alu -> store.
func chainGraph() *ddg.Graph {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "a[i]")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "x[i]")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	return g
}

func TestGraphLintCodes(t *testing.T) {
	cases := []struct {
		name    string
		code    string
		trigger func() *ddg.Graph
		clean   func() *ddg.Graph
	}{
		{
			name: "bad node record", code: "DDG001",
			trigger: func() *ddg.Graph {
				return &ddg.Graph{Nodes: []*ddg.Node{{ID: 5, Kind: ddg.OpALU}}}
			},
			clean: chainGraph,
		},
		{
			name: "nil node record", code: "DDG001",
			trigger: func() *ddg.Graph {
				return &ddg.Graph{Nodes: []*ddg.Node{nil}}
			},
			clean: chainGraph,
		},
		{
			name: "invalid kind", code: "DDG002",
			trigger: func() *ddg.Graph {
				return &ddg.Graph{Nodes: []*ddg.Node{{ID: 0, Kind: ddg.OpKind(99)}}}
			},
			clean: chainGraph,
		},
		{
			name: "dangling edge", code: "DDG003",
			trigger: func() *ddg.Graph {
				g := chainGraph()
				g.Edges = append(g.Edges, ddg.Edge{From: 0, To: 17, Distance: 0})
				return g
			},
			clean: chainGraph,
		},
		{
			name: "negative distance", code: "DDG004",
			trigger: func() *ddg.Graph {
				g := chainGraph()
				g.Edges = append(g.Edges, ddg.Edge{From: 0, To: 1, Distance: -1})
				return g
			},
			clean: chainGraph,
		},
		{
			name: "zero-distance self edge", code: "DDG005",
			trigger: func() *ddg.Graph {
				g := chainGraph()
				g.Edges = append(g.Edges, ddg.Edge{From: 1, To: 1, Distance: 0})
				return g
			},
			clean: func() *ddg.Graph {
				// A self recurrence at distance 1 is legal.
				g := chainGraph()
				g.AddEdge(1, 1, 1)
				return g
			},
		},
		{
			name: "zero-distance cycle", code: "DDG006",
			trigger: func() *ddg.Graph {
				g := ddg.NewGraph(2, 2)
				a := g.AddNode(ddg.OpALU, "")
				b := g.AddNode(ddg.OpALU, "")
				g.AddEdge(a, b, 0)
				g.AddEdge(b, a, 0)
				return g
			},
			clean: func() *ddg.Graph {
				// The same cycle closed at distance 1 is a recurrence.
				g := ddg.NewGraph(2, 2)
				a := g.AddNode(ddg.OpALU, "")
				b := g.AddNode(ddg.OpALU, "")
				g.AddEdge(a, b, 0)
				g.AddEdge(b, a, 1)
				return g
			},
		},
		{
			name: "redundant duplicate edge", code: "DDG007",
			trigger: func() *ddg.Graph {
				g := chainGraph()
				g.AddEdge(0, 1, 0)
				g.AddEdge(0, 1, 0) // three identical records in total
				return g
			},
			clean: func() *ddg.Graph {
				// Two identical edges are one value feeding both
				// operands (x*x): idiomatic, not redundant.
				g := chainGraph()
				g.AddEdge(0, 1, 0)
				return g
			},
		},
		{
			name: "isolated node", code: "DDG008",
			trigger: func() *ddg.Graph {
				g := chainGraph()
				g.AddNode(ddg.OpALU, "orphan")
				return g
			},
			clean: func() *ddg.Graph {
				// The loop-closing branch legitimately has no edges.
				g := chainGraph()
				g.AddNode(ddg.OpBranch, "loop")
				return g
			},
		},
		{
			name: "pre-assignment copy", code: "DDG009",
			trigger: func() *ddg.Graph {
				g := ddg.NewGraph(2, 1)
				a := g.AddNode(ddg.OpALU, "")
				k := g.AddNode(ddg.OpCopy, "")
				g.AddEdge(a, k, 0)
				return g
			},
			clean: chainGraph,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint.Graph(tc.trigger())
			if !hasCode(got, tc.code) {
				t.Errorf("trigger fixture: want %s, got [%s]", tc.code, codes(got))
			}
			if clean := lint.Graph(tc.clean()); hasCode(clean, tc.code) {
				t.Errorf("clean fixture: unexpected %s in [%s]", tc.code, codes(clean))
			}
		})
	}
}

func TestMachineLintCodes(t *testing.T) {
	lat := machine.DefaultLatencies()
	cleanGP := func() *machine.Config { return machine.NewBusedGP(2, 2, 1) }
	cases := []struct {
		name    string
		code    string
		trigger func() *machine.Config
		clean   func() *machine.Config
	}{
		{
			name: "no clusters", code: "MACH001",
			trigger: func() *machine.Config {
				return &machine.Config{Name: "empty", Network: machine.Broadcast, Latencies: lat}
			},
			clean: cleanGP,
		},
		{
			name: "empty cluster", code: "MACH002",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Clusters[1].FUs = nil
				return m
			},
			clean: cleanGP,
		},
		{
			name: "orphan kind", code: "MACH003",
			trigger: func() *machine.Config {
				// Integer units only: loads, stores, and FP execute nowhere.
				return &machine.Config{
					Name:    "intonly",
					Network: machine.Broadcast, Buses: 1,
					Clusters: []machine.Cluster{
						{FUs: []machine.FUClass{machine.FUInteger}, ReadPorts: 1, WritePorts: 1},
						{FUs: []machine.FUClass{machine.FUInteger}, ReadPorts: 1, WritePorts: 1},
					},
					Latencies: lat,
				}
			},
			clean: func() *machine.Config { return machine.NewBusedFS(2, 2, 1) },
		},
		{
			name: "negative ports", code: "MACH004",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Clusters[0].ReadPorts = -1
				return m
			},
			clean: cleanGP,
		},
		{
			name: "clustered broadcast without buses", code: "MACH005",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Buses = 0
				return m
			},
			clean: func() *machine.Config { return machine.NewUnifiedGP(8) },
		},
		{
			name: "clustered point-to-point without links", code: "MACH006",
			trigger: func() *machine.Config {
				m := machine.NewGrid4(2)
				m.Links = nil
				return m
			},
			clean: func() *machine.Config { return machine.NewGrid4(2) },
		},
		{
			name: "invalid link", code: "MACH007",
			trigger: func() *machine.Config {
				m := machine.NewGrid4(2)
				m.Links[0] = machine.Link{A: 0, B: 9}
				return m
			},
			clean: func() *machine.Config { return machine.NewGrid4(2) },
		},
		{
			name: "unreachable cluster", code: "MACH008",
			trigger: func() *machine.Config {
				m := machine.NewGrid4(2)
				m.Links = []machine.Link{{A: 0, B: 1}} // clusters 2, 3 cut off
				return m
			},
			clean: func() *machine.Config { return machine.NewRing(6, 2) },
		},
		{
			name: "unknown network", code: "MACH009",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Network = machine.Network(7)
				return m
			},
			clean: cleanGP,
		},
		{
			name: "latency gap", code: "MACH010",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Latencies[ddg.OpFMul] = 0
				return m
			},
			clean: cleanGP,
		},
		{
			name: "fabric mismatch", code: "MACH011",
			trigger: func() *machine.Config {
				m := machine.NewGrid4(2)
				m.Buses = 4 // ignored on a point-to-point machine
				return m
			},
			clean: func() *machine.Config { return machine.NewGrid4(2) },
		},
		{
			name: "portless cluster", code: "MACH012",
			trigger: func() *machine.Config {
				m := cleanGP()
				m.Clusters[0].WritePorts = 0
				return m
			},
			clean: cleanGP,
		},
		{
			name: "duplicate link", code: "MACH013",
			trigger: func() *machine.Config {
				m := machine.NewGrid4(2)
				m.Links = append(m.Links, machine.Link{A: 1, B: 0})
				return m
			},
			clean: func() *machine.Config { return machine.NewGrid4(2) },
		},
		{
			name: "unused fabric", code: "MACH014",
			trigger: func() *machine.Config {
				m := machine.NewUnifiedGP(8)
				m.Buses = 2
				return m
			},
			clean: func() *machine.Config { return machine.NewUnifiedGP(8) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint.Machine(tc.trigger())
			if !hasCode(got, tc.code) {
				t.Errorf("trigger fixture: want %s, got [%s]", tc.code, codes(got))
			}
			if clean := lint.Machine(tc.clean()); hasCode(clean, tc.code) {
				t.Errorf("clean fixture: unexpected %s in [%s]", tc.code, codes(clean))
			}
		})
	}
}

func TestSourceLintCodes(t *testing.T) {
	cases := []struct {
		name    string
		code    string
		trigger string
		clean   string
	}{
		{
			name: "parse error", code: "LOOP001",
			trigger: "loop {",
			clean:   "loop d { s = s + a[i] * b[i] }",
		},
		{
			name: "scalar never read", code: "LOOP002",
			trigger: "loop d {\n t = a[i] + 1.0\n out[i] = a[i]\n}",
			clean:   "loop d { s = s + a[i] }", // carried reduction read
		},
		{
			name: "value overwritten unread", code: "LOOP002",
			trigger: "loop d {\n t = a[i]\n t = b[i]\n out[i] = t\n}",
			clean:   "loop d {\n t = a[i]\n u = t + 1.0\n t = b[i]\n out[i] = t * u\n}",
		},
		{
			name: "dead store", code: "LOOP003",
			trigger: "loop d {\n x[i] = a[i]\n x[i] = b[i]\n}",
			clean:   "loop d {\n x[i] = a[i]\n y[i] = x[i]\n x[i] = b[i]\n}",
		},
		{
			name: "index shadowing", code: "LOOP004",
			trigger: "loop d { i = i + 1.0 }",
			clean:   "loop d { s = s + 1.0 }",
		},
		{
			name: "scalar/array name collision", code: "LOOP005",
			trigger: "loop d {\n s = s + 1.0\n s[i] = s\n}",
			clean:   "loop d {\n s = s + 1.0\n out[i] = s\n}",
		},
		{
			name: "duplicate loop name", code: "LOOP006",
			trigger: "loop d { x[i] = a[i] }\nloop d { y[i] = b[i] }",
			clean:   "loop d { x[i] = a[i] }\nloop e { y[i] = b[i] }",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint.Source("t.loop", tc.trigger)
			if !hasCode(got, tc.code) {
				t.Errorf("trigger fixture: want %s, got [%s]", tc.code, codes(got))
			}
			if clean := lint.Source("t.loop", tc.clean); hasCode(clean, tc.code) {
				t.Errorf("clean fixture: unexpected %s in [%s]", tc.code, codes(clean))
			}
		})
	}
}

func TestSourceDiagnosticsCarryLocation(t *testing.T) {
	diags := lint.Source("dead.loop", "loop d {\n t = a[i] + 1.0\n out[i] = a[i]\n}")
	if len(diags) == 0 {
		t.Fatal("want a finding")
	}
	for _, d := range diags {
		if d.File != "dead.loop" {
			t.Errorf("finding %s has file %q, want dead.loop", d.Code, d.File)
		}
		if d.Line <= 0 {
			t.Errorf("finding %s has no line: %+v", d.Code, d)
		}
	}
}

func TestParseErrorCarriesLine(t *testing.T) {
	diags := lint.Source("bad.loop", "loop d {\n x[i] = +\n}")
	if len(diags) != 1 || diags[0].Code != "LOOP001" {
		t.Fatalf("want one LOOP001, got [%s]", codes(diags))
	}
	if diags[0].Line != 2 {
		t.Errorf("parse error line = %d, want 2", diags[0].Line)
	}
}

// TestBuiltinMachinesLintClean is the acceptance gate: every machine
// configuration the repository ships — the constructor families and
// every experiment row, paper set and extensions — lints with zero
// findings of any severity.
func TestBuiltinMachinesLintClean(t *testing.T) {
	var machines []*machine.Config
	machines = append(machines,
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
		machine.NewRing(2, 1),
		machine.NewRing(4, 2),
		machine.NewRing(6, 2),
		machine.NewRing(8, 2),
		machine.NewUnifiedGP(4),
		machine.NewUnifiedGP(8),
		machine.NewUnifiedGP(16),
	)
	for _, cfg := range append(experiments.All(), experiments.Extensions()...) {
		for _, row := range cfg.Rows {
			machines = append(machines, row.Machine)
		}
	}
	machines = append(machines, experiments.LivermoreMachines()...)
	seen := map[string]bool{}
	for _, m := range machines {
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		if diags := lint.Machine(m); len(diags) != 0 {
			t.Errorf("built-in machine %s is not lint-clean: [%s]", m.Name, codes(diags))
		}
		if u := m.Unified(); !seen[u.Name] {
			seen[u.Name] = true
			if diags := lint.Machine(u); len(diags) != 0 {
				t.Errorf("unified baseline %s is not lint-clean: [%s]", u.Name, codes(diags))
			}
		}
	}
	if len(seen) < 15 {
		t.Fatalf("only %d distinct built-in machines found; the sweep looks broken", len(seen))
	}
}
