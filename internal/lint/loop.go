package lint

import (
	"fmt"
	"strings"

	"clustersched/internal/diag"
	"clustersched/internal/frontend"
)

// Loop-language codes.
const (
	CodeParseError    = "LOOP001" // source does not parse
	CodeDeadValue     = "LOOP002" // scalar assignment never read
	CodeDeadStore     = "LOOP003" // store overwritten before any read
	CodeIndexShadow   = "LOOP004" // assignment shadows the loop index
	CodeNameShadow    = "LOOP005" // name used as both scalar and array
	CodeDuplicateLoop = "LOOP006" // two loops share a name
)

// Source lints loop-language source code. The file name is attached
// to every finding for error reporting; it may be empty. A source
// that fails to parse yields a single CodeParseError finding carrying
// the parser's message.
func Source(file, src string) []diag.Diagnostic {
	loops, err := frontend.ParseSyntax(src)
	if err != nil {
		return []diag.Diagnostic{parseDiagnostic(file, err)}
	}
	var r diag.Reporter
	seen := map[string]int{}
	for _, l := range loops {
		if firstLine, dup := seen[l.Name]; dup {
			r.Report(diag.Diagnostic{
				Code: CodeDuplicateLoop, Severity: diag.Warning,
				File: file, Line: l.Line, Subject: "loop " + l.Name,
				Message: fmt.Sprintf("loop %q is already defined at line %d", l.Name, firstLine),
				Fix:     "rename one of the loops",
			})
		} else {
			seen[l.Name] = l.Line
		}
		lintLoop(&r, file, l)
	}
	diags := r.Diagnostics()
	diag.Sort(diags)
	return diags
}

// parseDiagnostic converts a frontend error ("frontend: line 3: ...")
// into a located diagnostic.
func parseDiagnostic(file string, err error) diag.Diagnostic {
	msg := strings.TrimPrefix(err.Error(), "frontend: ")
	line := 0
	if rest, ok := strings.CutPrefix(msg, "line "); ok {
		if n, _ := fmt.Sscanf(rest, "%d:", &line); n != 1 {
			line = 0
		}
	}
	return diag.Diagnostic{
		Code: CodeParseError, Severity: diag.Error,
		File: file, Line: line,
		Message: msg,
	}
}

// lintLoop runs the per-loop AST passes.
func lintLoop(r *diag.Reporter, file string, l frontend.LoopSyntax) {
	subject := "loop " + l.Name

	// Index shadowing and scalar/array name collisions.
	asScalar := map[string]int{} // name -> first line seen as scalar
	asArray := map[string]int{}
	note := func(ref frontend.Ref) {
		m := asScalar
		if ref.Array {
			m = asArray
		}
		if _, ok := m[ref.Name]; !ok {
			m[ref.Name] = ref.Line
		}
	}
	for _, st := range l.Stmts {
		note(st.Target)
		for _, rd := range st.Reads {
			note(rd)
		}
		if !st.Target.Array && st.Target.Name == "i" {
			r.Report(diag.Diagnostic{
				Code: CodeIndexShadow, Severity: diag.Warning,
				File: file, Line: st.Line, Subject: subject,
				Message: "assignment to \"i\" shadows the loop index",
				Fix:     "rename the scalar; 'i' is reserved for the iteration index",
			})
		}
	}
	for name, line := range asScalar {
		if aline, both := asArray[name]; both {
			first := line
			if aline < first {
				first = aline
			}
			r.Report(diag.Diagnostic{
				Code: CodeNameShadow, Severity: diag.Warning,
				File: file, Line: first, Subject: subject,
				Message: fmt.Sprintf("%q is used both as a scalar and as an array", name),
				Fix:     "use distinct names for the scalar and the array",
			})
		}
	}

	lintDeadScalars(r, file, subject, l)
	lintDeadStores(r, file, subject, l)
}

// lintDeadScalars reports scalar assignments no read ever consumes.
//
// Semantics (package frontend): a scalar read consumes the closest
// preceding definition in the body; a read with no preceding
// definition consumes the previous iteration's final definition
// (a recurrence). Reads on a statement's right-hand side happen
// before its own assignment.
func lintDeadScalars(r *diag.Reporter, file, subject string, l frontend.LoopSyntax) {
	type def struct {
		stmt, line int
	}
	defs := map[string][]def{}
	reads := map[string][]int{} // name -> statement indices with a scalar read
	for i, st := range l.Stmts {
		for _, rd := range st.Reads {
			if !rd.Array {
				reads[rd.Name] = append(reads[rd.Name], i)
			}
		}
		if !st.Target.Array {
			defs[st.Target.Name] = append(defs[st.Target.Name], def{stmt: i, line: st.Line})
		}
	}
	for name, ds := range defs {
		rs := reads[name]
		if len(rs) == 0 {
			r.Report(diag.Diagnostic{
				Code: CodeDeadValue, Severity: diag.Warning,
				File: file, Line: ds[0].line, Subject: subject,
				Message: fmt.Sprintf("scalar %q is assigned but never read", name),
				Fix:     "delete the assignment(s) or store the result to an array",
			})
			continue
		}
		for p, d := range ds {
			live := false
			if p+1 < len(ds) {
				// Overwritten later: live only if some read falls after
				// this definition and no later than the overwriting
				// statement (whose right-hand side still sees this value).
				next := ds[p+1].stmt
				for _, j := range rs {
					if j > d.stmt && j <= next {
						live = true
						break
					}
				}
			} else {
				// Final definition: consumed by any later read, or
				// carried into the next iteration by a read preceding
				// (or on the right-hand side of) the first definition.
				first := ds[0].stmt
				for _, j := range rs {
					if j > d.stmt || j <= first {
						live = true
						break
					}
				}
			}
			if !live {
				r.Report(diag.Diagnostic{
					Code: CodeDeadValue, Severity: diag.Warning,
					File: file, Line: d.line, Subject: subject,
					Message: fmt.Sprintf("value assigned to %q is overwritten before it is read", name),
					Fix:     "delete the assignment or read the value before reassigning",
				})
			}
		}
	}
}

// lintDeadStores reports stores overwritten by a later store to the
// same element in the same iteration with no intervening read: the
// stored value is observable nowhere, in this or any other iteration.
func lintDeadStores(r *diag.Reporter, file, subject string, l frontend.LoopSyntax) {
	type site struct {
		stmt, line int
	}
	stores := map[[2]interface{}][]site{}
	reads := map[[2]interface{}][]int{}
	for i, st := range l.Stmts {
		for _, rd := range st.Reads {
			if rd.Array {
				key := [2]interface{}{rd.Name, rd.Offset}
				reads[key] = append(reads[key], i)
			}
		}
		if st.Target.Array {
			key := [2]interface{}{st.Target.Name, st.Target.Offset}
			stores[key] = append(stores[key], site{stmt: i, line: st.Line})
		}
	}
	for key, ss := range stores {
		rs := reads[key]
		for p := 0; p+1 < len(ss); p++ {
			cur, next := ss[p], ss[p+1]
			consumed := false
			for _, j := range rs {
				// A read on the overwriting statement's right-hand side
				// still sees the old value.
				if j > cur.stmt && j <= next.stmt {
					consumed = true
					break
				}
			}
			if !consumed {
				r.Report(diag.Diagnostic{
					Code: CodeDeadStore, Severity: diag.Warning,
					File: file, Line: cur.line, Subject: subject,
					Message: fmt.Sprintf("store to %s[i%+d] is overwritten at line %d before it is read", key[0], key[1], next.line),
					Fix:     "delete the earlier store",
				})
			}
		}
	}
}
