// Package dot renders dependence graphs and scheduled loops in the
// Graphviz DOT language, clustered by register file, so assignments
// and copy routes can be inspected visually (`dot -Tsvg`).
package dot

import (
	"fmt"
	"sort"
	"strings"

	"clustersched/internal/ddg"
	"clustersched/internal/sched"
)

// Graph renders a bare dependence graph.
func Graph(g *ddg.Graph) string {
	var b strings.Builder
	b.WriteString("digraph ddg {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, nodeLabel(g, n.ID, -1))
	}
	writeEdges(&b, g)
	b.WriteString("}\n")
	return b.String()
}

// Render renders an assigned (and possibly scheduled) loop: one DOT
// subgraph cluster per machine cluster, copy nodes as ellipses, and
// scheduled cycles in the labels. The schedule may be nil.
func Render(in sched.Input, s *sched.Schedule) string {
	g := in.Graph
	var b strings.Builder
	b.WriteString("digraph schedule {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n")

	byCluster := map[int][]int{}
	for n := 0; n < g.NumNodes(); n++ {
		cl := 0
		if in.ClusterOf != nil {
			cl = in.ClusterOf[n]
		}
		byCluster[cl] = append(byCluster[cl], n)
	}
	clusters := make([]int, 0, len(byCluster))
	for cl := range byCluster {
		clusters = append(clusters, cl)
	}
	sort.Ints(clusters)

	for _, cl := range clusters {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"cluster %d\";\n    style=dashed;\n", cl, cl)
		for _, n := range byCluster[cl] {
			cycle := -1
			if s != nil {
				cycle = s.CycleOf[n]
			}
			shape := ""
			if g.Nodes[n].Kind == ddg.OpCopy {
				shape = ", shape=ellipse"
			}
			fmt.Fprintf(&b, "    n%d [label=%q%s];\n", n, nodeLabel(g, n, cycle), shape)
		}
		b.WriteString("  }\n")
	}
	writeEdges(&b, g)
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(g *ddg.Graph, n, cycle int) string {
	node := g.Nodes[n]
	label := fmt.Sprintf("n%d %s", n, node.Kind)
	if node.Name != "" {
		label += " " + node.Name
	}
	if cycle >= 0 {
		label += fmt.Sprintf("\n@%d", cycle)
	}
	return label
}

func writeEdges(b *strings.Builder, g *ddg.Graph) {
	for _, e := range g.Edges {
		attrs := ""
		if e.Distance > 0 {
			attrs = fmt.Sprintf(" [label=\"%d\", style=dashed]", e.Distance)
		}
		fmt.Fprintf(b, "  n%d -> n%d%s;\n", e.From, e.To, attrs)
	}
}
