package dot

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/sched"
)

func sample() *ddg.Graph {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "x")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(b, b, 1)
	return g
}

func TestGraphRendersAllNodesAndEdges(t *testing.T) {
	out := Graph(sample())
	for _, want := range []string{"digraph ddg", "n0", "n1", "n2", "load x", "n0 -> n1", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Graph() missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "->") != 3 {
		t.Errorf("want 3 edges:\n%s", out)
	}
}

func TestRenderGroupsByCluster(t *testing.T) {
	g := sample()
	m := machine.NewBusedGP(2, 2, 1)
	res, ok := assign.Run(g, m, 2, assign.Options{Variant: assign.HeuristicIterative})
	if !ok {
		t.Fatal("assignment failed")
	}
	in := sched.Input{
		Graph:       res.Graph,
		Machine:     m,
		ClusterOf:   res.ClusterOf,
		CopyTargets: res.CopyTargets,
		II:          2,
	}
	s, ok := sched.IMS(in, 0)
	if !ok {
		t.Fatal("unschedulable")
	}
	out := Render(in, s)
	for _, want := range []string{"digraph schedule", "subgraph cluster_0", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestRenderWithoutSchedule(t *testing.T) {
	g := sample()
	in := sched.Input{Graph: g, Machine: machine.NewUnifiedGP(4), II: 1}
	out := Render(in, nil)
	if strings.Contains(out, "@") {
		t.Errorf("unscheduled render should not show cycles:\n%s", out)
	}
	if !strings.Contains(out, "subgraph cluster_0") {
		t.Errorf("missing cluster subgraph:\n%s", out)
	}
}

func TestRenderMarksCopiesAsEllipses(t *testing.T) {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpALU, "")
	k := g.AddNode(ddg.OpCopy, "")
	b := g.AddNode(ddg.OpALU, "")
	g.AddEdge(a, k, 0)
	g.AddEdge(k, b, 0)
	m := machine.NewBusedGP(2, 2, 1)
	in := sched.Input{
		Graph:       g,
		Machine:     m,
		ClusterOf:   []int{0, 0, 1},
		CopyTargets: [][]int{nil, {1}, nil},
		II:          1,
	}
	out := Render(in, nil)
	if !strings.Contains(out, "shape=ellipse") {
		t.Errorf("copy not drawn as ellipse:\n%s", out)
	}
}
