package client

import (
	"context"
	"errors"
	"net/http"
	"sync"

	"clustersched/internal/server"
)

// Fleet is a failover transport over several equivalent daemon
// endpoints — clusterd workers, or clusterlb balancers behind one
// fleet. A request is tried against one endpoint; on a transport
// error (connection refused, reset, timeout of the dial — anything
// where no HTTP response arrived) the next endpoint is tried, until
// one answers or all have failed. HTTP-level replies, including error
// statuses, come from exactly one endpoint and are returned as-is:
// they are authoritative answers, not transport failures.
//
// Scheduling requests are pure computations with content-addressed
// identities, so retrying one on another worker is always safe and
// yields byte-identical bytes.
type Fleet struct {
	clients []*Client

	mu     sync.Mutex
	cursor int // rotation start, advanced past endpoints that fail
}

// NewFleet builds a fleet client over the given base URLs (at least
// one). httpClient may be nil for http.DefaultClient and is shared by
// every endpoint.
func NewFleet(urls []string, httpClient *http.Client) (*Fleet, error) {
	if len(urls) == 0 {
		return nil, errors.New("fleet client needs at least one endpoint")
	}
	f := &Fleet{clients: make([]*Client, len(urls))}
	for i, u := range urls {
		f.clients[i] = New(u, httpClient)
	}
	return f, nil
}

// Endpoints returns the per-endpoint clients in configuration order.
func (f *Fleet) Endpoints() []*Client { return f.clients }

// start returns the endpoint rotation offset for a fresh request.
func (f *Fleet) start() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.cursor
	f.cursor = (f.cursor + 1) % len(f.clients)
	return s
}

// fail notes a transport failure of endpoint i, so later requests
// start their rotation elsewhere.
func (f *Fleet) fail(i int) {
	f.mu.Lock()
	if f.cursor == i {
		f.cursor = (i + 1) % len(f.clients)
	}
	f.mu.Unlock()
}

// transportFailed reports whether err means "no endpoint answered" —
// retryable — as opposed to an authoritative API error or the
// caller's own context ending.
func transportFailed(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var apiErr *APIError
	return !errors.As(err, &apiErr)
}

// try runs one attempt per endpoint until fn succeeds or returns an
// authoritative error.
func (f *Fleet) try(ctx context.Context, fn func(c *Client) error) error {
	start := f.start()
	var lastErr error
	for n := 0; n < len(f.clients); n++ {
		i := (start + n) % len(f.clients)
		err := fn(f.clients[i])
		if !transportFailed(ctx, err) {
			return err
		}
		f.fail(i)
		lastErr = err
	}
	return lastErr
}

// Schedule runs one loop with endpoint failover.
func (f *Fleet) Schedule(ctx context.Context, req server.ScheduleRequest) (resp *server.ScheduleResponse, cached bool, err error) {
	err = f.try(ctx, func(c *Client) error {
		var e error
		resp, cached, e = c.Schedule(ctx, req)
		return e
	})
	return resp, cached, err
}

// ScheduleRaw is Schedule returning the undecoded body and X-Cache
// header, with endpoint failover.
func (f *Fleet) ScheduleRaw(ctx context.Context, req server.ScheduleRequest) (body []byte, xcache string, err error) {
	err = f.try(ctx, func(c *Client) error {
		var e error
		body, xcache, e = c.ScheduleRaw(ctx, req)
		return e
	})
	return body, xcache, err
}

// Batch runs a multi-loop payload with endpoint failover.
func (f *Fleet) Batch(ctx context.Context, req server.BatchRequest) (resp *server.BatchResponse, err error) {
	err = f.try(ctx, func(c *Client) error {
		var e error
		resp, e = c.Batch(ctx, req)
		return e
	})
	return resp, err
}

// Lint runs the static-analysis passes with endpoint failover.
func (f *Fleet) Lint(ctx context.Context, req server.LintRequest) (resp *server.LintResponse, err error) {
	err = f.try(ctx, func(c *Client) error {
		var e error
		resp, e = c.Lint(ctx, req)
		return e
	})
	return resp, err
}

// Health reports success if any endpoint answers its liveness probe.
func (f *Fleet) Health(ctx context.Context) error {
	return f.try(ctx, func(c *Client) error { return c.Health(ctx) })
}
