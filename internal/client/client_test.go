// Unit tests for the daemon client against stub HTTP servers: error
// mapping onto APIError, X-Cache header handling, context timeout
// propagation, and the fleet transport's failover behavior. The real
// daemon's end-to-end behavior is covered in internal/server's tests;
// these pin the client's own contract.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"clustersched/internal/diag"
	"clustersched/internal/server"
)

// stubSchedule returns a handler serving a fixed ScheduleResponse
// with the given X-Cache header.
func stubSchedule(t *testing.T, xcache string, hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		if r.Method != http.MethodPost || r.URL.Path != "/v1/schedule" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var req server.ScheduleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("stub could not decode request: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		if xcache != "" {
			w.Header().Set("X-Cache", xcache)
		}
		json.NewEncoder(w).Encode(server.ScheduleResponse{Name: "stub", Machine: req.Machine, II: 2, MII: 2})
	}
}

func TestXCacheHeaderMapping(t *testing.T) {
	for _, tc := range []struct {
		xcache string
		cached bool
	}{
		{"miss", false},
		{"hit", true},
		{"coalesced", true},
		{"", false},
	} {
		ts := httptest.NewServer(stubSchedule(t, tc.xcache, nil))
		c := New(ts.URL, ts.Client())
		resp, cached, err := c.Schedule(context.Background(), server.ScheduleRequest{Machine: "gp:2:2:1"})
		if err != nil {
			t.Fatalf("X-Cache %q: %v", tc.xcache, err)
		}
		if cached != tc.cached {
			t.Errorf("X-Cache %q: cached = %v, want %v", tc.xcache, cached, tc.cached)
		}
		if resp.Name != "stub" || resp.II != 2 {
			t.Errorf("X-Cache %q: decoded %+v", tc.xcache, resp)
		}
		_, xcache, err := c.ScheduleRaw(context.Background(), server.ScheduleRequest{Machine: "gp:2:2:1"})
		if err != nil || xcache != tc.xcache {
			t.Errorf("ScheduleRaw xcache = %q (%v), want %q", xcache, err, tc.xcache)
		}
		ts.Close()
	}
}

func TestErrorMapping(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(server.ErrorResponse{
			Error:       "loop is unschedulable",
			Diagnostics: []diag.Diagnostic{{Code: "LINT001", Severity: diag.Error, Message: "bad loop"}},
		})
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	_, _, err := c.Schedule(context.Background(), server.ScheduleRequest{Machine: "gp:2:2:1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an *APIError", err, err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", apiErr.Status)
	}
	if apiErr.ErrorResponse.Error != "loop is unschedulable" {
		t.Errorf("message = %q", apiErr.ErrorResponse.Error)
	}
	if len(apiErr.Diagnostics) != 1 || apiErr.Diagnostics[0].Code != "LINT001" {
		t.Errorf("diagnostics not carried through: %+v", apiErr.Diagnostics)
	}
}

// TestErrorMappingNonJSONBody: a non-JSON error body (a proxy's HTML
// 502, say) still yields an APIError carrying the status.
func TestErrorMappingNonJSONBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError with status 502", err)
	}
}

func TestTimeoutPropagation(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)
	c := New(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Schedule(ctx, server.ScheduleRequest{Machine: "gp:2:2:1"})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, deadline did not propagate", elapsed)
	}
}

func TestFleetFailover(t *testing.T) {
	var hits atomic.Int64
	alive := httptest.NewServer(stubSchedule(t, "hit", &hits))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	f, err := NewFleet([]string{dead.URL, alive.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, cached, err := f.Schedule(context.Background(), server.ScheduleRequest{Machine: "gp:2:2:1"})
		if err != nil {
			t.Fatalf("fleet schedule %d: %v", i, err)
		}
		if !cached || resp.Name != "stub" {
			t.Errorf("fleet schedule %d: cached=%v resp=%+v", i, cached, resp)
		}
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("alive endpoint served %d requests, want 3", got)
	}
}

// TestFleetAPIErrorIsAuthoritative: an HTTP-level error reply must
// not trigger failover — one endpoint answered, and that answer
// stands.
func TestFleetAPIErrorIsAuthoritative(t *testing.T) {
	var first, second atomic.Int64
	e1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		first.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "nope"})
	}))
	defer e1.Close()
	e2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		second.Add(1)
	}))
	defer e2.Close()

	f, err := NewFleet([]string{e1.URL, e2.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.Schedule(context.Background(), server.ScheduleRequest{Machine: "gp:2:2:1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want the 422 APIError", err)
	}
	if first.Load() != 1 || second.Load() != 0 {
		t.Errorf("endpoint hits = %d/%d, want 1/0 (no failover on API error)", first.Load(), second.Load())
	}
}

func TestFleetNeedsEndpoints(t *testing.T) {
	if _, err := NewFleet(nil, nil); err == nil {
		t.Fatal("NewFleet(nil) succeeded")
	}
}

func TestFleetzDecodes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleetz" {
			t.Errorf("path = %s", r.URL.Path)
		}
		json.NewEncoder(w).Encode(server.FleetzResponse{ID: "w1", Accepting: true, Inflight: 2, MaxInflight: 8})
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	fz, err := c.Fleetz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fz.ID != "w1" || fz.Inflight != 2 || !fz.Accepting {
		t.Errorf("fleetz = %+v", fz)
	}
}
