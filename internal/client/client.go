// Package client is the Go client for clusterd's HTTP API (package
// server). It is used by the end-to-end tests and by clusterbench's
// -server replay mode; the request and response types are the server's
// own, so the two cannot drift apart.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"clustersched/internal/server"
)

// Client talks to one clusterd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8425"). httpClient may be nil for
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// BaseURL returns the daemon address this client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx reply, carrying the server's structured error
// body when one was sent.
type APIError struct {
	Status int
	server.ErrorResponse
}

// Error renders the status and the server's message.
func (e *APIError) Error() string {
	if e.ErrorResponse.Error != "" {
		return fmt.Sprintf("server: %d: %s", e.Status, e.ErrorResponse.Error)
	}
	return fmt.Sprintf("server: unexpected status %d", e.Status)
}

// do posts req as JSON (or GETs when req is nil) and decodes a 200
// reply into out. It returns the raw body and the X-Cache header.
func (c *Client) do(ctx context.Context, method, path string, req, out any) (body []byte, xcache string, err error) {
	var payload io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, "", err
		}
		payload = bytes.NewReader(b)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, payload)
	if err != nil {
		return nil, "", err
	}
	if req != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode}
		_ = json.Unmarshal(body, &apiErr.ErrorResponse) // best effort; keep the status regardless
		return nil, "", apiErr
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return nil, "", fmt.Errorf("decoding %s reply: %w", path, err)
		}
	}
	return body, resp.Header.Get("X-Cache"), nil
}

// Schedule runs one loop through /v1/schedule. cached reports whether
// the daemon served the result from its cache (hit or coalesced)
// rather than running the pipeline for this request.
func (c *Client) Schedule(ctx context.Context, req server.ScheduleRequest) (resp *server.ScheduleResponse, cached bool, err error) {
	resp = new(server.ScheduleResponse)
	_, xcache, err := c.do(ctx, http.MethodPost, "/v1/schedule", req, resp)
	if err != nil {
		return nil, false, err
	}
	return resp, xcache == "hit" || xcache == "coalesced", nil
}

// ScheduleRaw is Schedule returning the undecoded response body, for
// byte-level comparisons.
func (c *Client) ScheduleRaw(ctx context.Context, req server.ScheduleRequest) (body []byte, xcache string, err error) {
	return c.do(ctx, http.MethodPost, "/v1/schedule", req, nil)
}

// Batch runs a multi-loop payload through /v1/batch.
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) (*server.BatchResponse, error) {
	resp := new(server.BatchResponse)
	if _, _, err := c.do(ctx, http.MethodPost, "/v1/batch", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Compile runs a whole translation unit through /v1/compile: every
// loop comes back as an emitted kernel (or a per-loop error), with
// per-loop cache accounting.
func (c *Client) Compile(ctx context.Context, req server.CompileRequest) (*server.CompileResponse, error) {
	resp := new(server.CompileResponse)
	if _, _, err := c.do(ctx, http.MethodPost, "/v1/compile", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Lint runs the static-analysis passes through /v1/lint.
func (c *Client) Lint(ctx context.Context, req server.LintRequest) (*server.LintResponse, error) {
	resp := new(server.LintResponse)
	if _, _, err := c.do(ctx, http.MethodPost, "/v1/lint", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Fleetz fetches the worker's /fleetz heartbeat snapshot (used by
// the clusterlb balancer's membership poller).
func (c *Client) Fleetz(ctx context.Context) (*server.FleetzResponse, error) {
	resp := new(server.FleetzResponse)
	if _, _, err := c.do(ctx, http.MethodGet, "/fleetz", nil, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Stats fetches the /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	resp := new(server.StatsResponse)
	if _, _, err := c.do(ctx, http.MethodGet, "/statsz", nil, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err
}
