package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/sched"
)

func TestRotatingSimpleChain(t *testing.T) {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 2, 3}}
	rot := AllocateRotating(in, s)
	if err := rot.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if rot.TotalRegisters() < 2 {
		t.Errorf("two simultaneously live values need >= 2 rotating registers, got %d", rot.TotalRegisters())
	}
}

func TestRotatingLongLifetimeNeedsNoUnrolling(t *testing.T) {
	// The MVE case: a value live 7 cycles at II=3 forces kernel
	// unrolling by 3 without rotation; a rotating file of 3 registers
	// handles it with ONE kernel copy.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	rot := AllocateRotating(in, s)
	if err := rot.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if rot.RegsPerCluster[0] != 3 {
		t.Errorf("rotating file = %d registers, want 3", rot.RegsPerCluster[0])
	}
	if rot.MaxSpan() != 3 {
		t.Errorf("MaxSpan = %d, want 3", rot.MaxSpan())
	}
}

func TestRotatingDetectsImpossiblyTightValidate(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	rot := AllocateRotating(in, s)
	rot.RegsPerCluster[0] = 2 // lie about the file size
	if err := rot.Validate(in, s); err == nil {
		t.Error("Validate accepted a file too small for the value's span")
	}
}

// TestRotatingValidatesOnSuiteLoops is the rotating analogue of the
// MVE property test, and compares the two allocators' register needs:
// rotation must never need kernel unrolling and should use no more
// registers than MVE allocates in total.
func TestRotatingValidatesOnSuiteLoops(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	f := func(seed int64, mIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := loopgen.Loop(rng)
		m := machines[int(mIdx)%len(machines)]
		in, s := schedule(t, g, m)
		rot := AllocateRotating(in, s)
		if err := rot.Validate(in, s); err != nil {
			t.Logf("seed %d on %s: %v", seed, m.Name, err)
			return false
		}
		// Rotation trades registers for zero unrolling: a single logical
		// name per value must avoid every instance of every neighbour,
		// so a rotating file can exceed MVE's pooled arc coloring —
		// but not unboundedly.
		mve := AllocateMVE(in, s)
		if rot.TotalRegisters() > 2*mve.TotalRegisters()+2*m.NumClusters() {
			t.Logf("seed %d on %s: rotating %d regs vs MVE %d — implausibly wasteful",
				seed, m.Name, rot.TotalRegisters(), mve.TotalRegisters())
			return false
		}
		_, perCluster := LowerBound(in, s)
		for cl, need := range perCluster {
			if rot.RegsPerCluster[cl] < need {
				t.Logf("seed %d on %s: cluster %d file %d below lower bound %d",
					seed, m.Name, cl, rot.RegsPerCluster[cl], need)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOverlapDeltas(t *testing.T) {
	// a live [0, 2), b live [1, 3) at II=4: only δ=0 overlaps.
	a := Lifetime{Start: 0, Len: 2}
	b := Lifetime{Start: 1, Len: 2}
	d := overlapDeltas(a, b, 4, 8)
	if len(d) != 1 || d[0] != 0 {
		t.Errorf("deltas = %v, want [0]", d)
	}
	// b live [0, 9) at II=2 against a live [0, 2): δ in {-4..0}.
	b2 := Lifetime{Start: 0, Len: 9}
	d2 := overlapDeltas(a, b2, 2, 8)
	if len(d2) != 5 || d2[0] != -4 || d2[4] != 0 {
		t.Errorf("deltas = %v, want [-4..0]", d2)
	}
}
