package regalloc

import (
	"fmt"
	"sort"

	"clustersched/internal/sched"
)

// Rotating is a rotating-register-file allocation, the hardware
// alternative to modulo variable expansion (Cydra 5, IA-64): each
// cluster's file rotates its base by one register per kernel
// iteration, so a value bound to logical register L is physically in
// (L + i) mod R during iteration i and successive instances never
// collide without any kernel unrolling.
type Rotating struct {
	// RegsPerCluster is the rotating file size per cluster.
	RegsPerCluster []int
	logical        map[vcKey]int
	maxSpan        int
}

type vcKey struct {
	value   int
	cluster int
}

// Logical returns value's logical register in cluster's file.
func (r *Rotating) Logical(value, cluster int) (int, bool) {
	l, ok := r.logical[vcKey{value: value, cluster: cluster}]
	return l, ok
}

// MaxSpan returns the largest number of iterations any single value
// stays live (the MVE factor equivalent), useful for sizing
// simulations.
func (r *Rotating) MaxSpan() int {
	if r.maxSpan < 1 {
		return 1
	}
	return r.maxSpan
}

// TotalRegisters sums the rotating files.
func (r *Rotating) TotalRegisters() int {
	t := 0
	for _, n := range r.RegsPerCluster {
		t += n
	}
	return t
}

// AllocateRotating assigns logical rotating registers to every value
// lifetime. Two lifetimes a and b of one cluster collide when some
// instances i of a and j of b overlap in time and land on the same
// physical register, i.e. L(b) ≡ L(a) - (j - i) (mod R) with
// [startA, endA) ∩ [startB + (j-i)·II, endB + (j-i)·II) non-empty.
// The allocator forbids exactly those residues and first-fits logical
// numbers, growing R (and restarting the cluster) when a value cannot
// be placed — R starts at the cluster's lifetime-sum lower bound.
func AllocateRotating(in sched.Input, s *sched.Schedule) *Rotating {
	rot := &Rotating{
		RegsPerCluster: make([]int, in.Machine.NumClusters()),
		logical:        map[vcKey]int{},
	}
	byCluster := make([][]Lifetime, in.Machine.NumClusters())
	for _, l := range Lifetimes(in, s) {
		byCluster[l.Cluster] = append(byCluster[l.Cluster], l)
		if span := (l.Len + s.II - 1) / s.II; span > rot.maxSpan {
			rot.maxSpan = span
		}
	}
	for cl, lifetimes := range byCluster {
		if len(lifetimes) == 0 {
			continue
		}
		sort.Slice(lifetimes, func(i, j int) bool {
			a, b := lifetimes[i], lifetimes[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Value < b.Value
		})
		// Lower bounds: the lifetime-sum bound and the longest single
		// value's span.
		sum := 0
		for _, l := range lifetimes {
			sum += l.Len
		}
		r := (sum + s.II - 1) / s.II
		if r < rot.maxSpan {
			r = rot.maxSpan
		}
		if r < 1 {
			r = 1
		}
		for {
			assignment, ok := tryRotating(lifetimes, r, s.II)
			if ok {
				rot.RegsPerCluster[cl] = r
				for i, l := range lifetimes {
					rot.logical[vcKey{value: l.Value, cluster: cl}] = assignment[i]
				}
				break
			}
			r++
		}
	}
	return rot
}

// tryRotating first-fits logical registers at file size r.
func tryRotating(lifetimes []Lifetime, r, ii int) ([]int, bool) {
	assignment := make([]int, len(lifetimes))
	for i, b := range lifetimes {
		// A value overlapping its own later instances needs the file
		// to out-rotate it.
		if (b.Len+ii-1)/ii > r {
			return nil, false
		}
		forbidden := make([]bool, r)
		for j := 0; j < i; j++ {
			a := lifetimes[j]
			for _, delta := range overlapDeltas(a, b, ii, r) {
				res := ((assignment[j]-delta)%r + r) % r
				forbidden[res] = true
			}
		}
		placed := false
		for l := 0; l < r && !placed; l++ {
			if !forbidden[l] {
				assignment[i] = l
				placed = true
			}
		}
		if !placed {
			return nil, false
		}
	}
	return assignment, true
}

// overlapDeltas lists the instance offsets δ = j - i at which instance
// i of a and instance j of b overlap in time.
func overlapDeltas(a, b Lifetime, ii, r int) []int {
	var out []int
	// Overlap: startA < endB + δ·II and startB + δ·II < endA.
	// δ > (startA - endB)/II and δ < (endA - startB)/II.
	lo := floorDiv(a.Start-(b.Start+b.Len), ii) + 1
	hi := ceilDivInt(a.Start+a.Len-b.Start, ii) - 1
	for d := lo; d <= hi; d++ {
		out = append(out, d)
	}
	return out
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDivInt(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// Validate re-checks the rotating allocation pair by pair.
func (r *Rotating) Validate(in sched.Input, s *sched.Schedule) error {
	byCluster := make([][]Lifetime, in.Machine.NumClusters())
	for _, l := range Lifetimes(in, s) {
		byCluster[l.Cluster] = append(byCluster[l.Cluster], l)
	}
	for cl, lifetimes := range byCluster {
		size := r.RegsPerCluster[cl]
		for _, l := range lifetimes {
			if _, ok := r.Logical(l.Value, cl); !ok {
				return fmt.Errorf("regalloc: value %d has no logical register in cluster %d", l.Value, cl)
			}
			if (l.Len+s.II-1)/s.II > size {
				return fmt.Errorf("regalloc: value %d outlives the rotation of cluster %d (%d regs)", l.Value, cl, size)
			}
		}
		for i := 0; i < len(lifetimes); i++ {
			for j := i + 1; j < len(lifetimes); j++ {
				a, b := lifetimes[i], lifetimes[j]
				la, _ := r.Logical(a.Value, cl)
				lb, _ := r.Logical(b.Value, cl)
				for _, delta := range overlapDeltas(a, b, s.II, size) {
					if ((lb-(la-delta))%size+size)%size == 0 {
						return fmt.Errorf("regalloc: cluster %d: values %d and %d collide at instance offset %d",
							cl, a.Value, b.Value, delta)
					}
				}
			}
		}
	}
	return nil
}
