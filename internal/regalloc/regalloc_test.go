package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/sched"
	"clustersched/internal/verify"
)

func schedule(t testing.TB, g *ddg.Graph, m *machine.Config) (sched.Input, *sched.Schedule) {
	t.Helper()
	base := mii.MII(g, m)
	for ii := base; ii < base+32; ii++ {
		res, ok := assign.Run(g, m, ii, assign.Options{Variant: assign.HeuristicIterative})
		if !ok {
			continue
		}
		in := sched.Input{
			Graph:       res.Graph,
			Machine:     m,
			ClusterOf:   res.ClusterOf,
			CopyTargets: res.CopyTargets,
			II:          ii,
		}
		if s, ok := sched.IMS(in, 0); ok {
			return in, s
		}
	}
	t.Fatal("unschedulable fixture")
	return sched.Input{}, nil
}

func TestLifetimesSimpleChain(t *testing.T) {
	g := ddg.NewGraph(3, 2)
	a := g.AddNode(ddg.OpLoad, "")
	b := g.AddNode(ddg.OpALU, "")
	c := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 2, 3}}

	ls := Lifetimes(in, s)
	if len(ls) != 2 {
		t.Fatalf("got %d lifetimes, want 2 (store has none)", len(ls))
	}
	// a: available at 2, used at 2 -> [2, 3): len 1.
	if ls[0].Value != a || ls[0].Start != 2 || ls[0].Len != 1 {
		t.Errorf("lifetime of a = %+v", ls[0])
	}
	// b: available at 3, used at 3 -> len 1.
	if ls[1].Value != b || ls[1].Start != 3 || ls[1].Len != 1 {
		t.Errorf("lifetime of b = %+v", ls[1])
	}
}

func TestLifetimeSpansLoopCarriedUse(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2) // used two iterations later
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	ls := Lifetimes(in, s)
	// def at 1, last use at 1 + 2*3 = 7 -> [1, 8): len 7.
	if ls[0].Len != 7 {
		t.Errorf("lifetime len = %d, want 7", ls[0].Len)
	}
	if MVEFactor(in, s) != 3 {
		t.Errorf("MVE factor = %d, want ceil(7/3)=3", MVEFactor(in, s))
	}
}

func TestMVEFactorOneForShortLifetimes(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 0)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 4}
	s := &sched.Schedule{II: 4, CycleOf: []int{0, 1}}
	if f := MVEFactor(in, s); f != 1 {
		t.Errorf("MVE factor = %d, want 1", f)
	}
}

func TestLowerBound(t *testing.T) {
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	total, perCluster := LowerBound(in, s)
	if total != 3 { // ceil(7/3)
		t.Errorf("LowerBound = %d, want 3", total)
	}
	if perCluster[0] != 3 {
		t.Errorf("perCluster = %v", perCluster)
	}
}

func TestAllocateMVEValidatesOnSuiteLoops(t *testing.T) {
	machines := []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
	}
	f := func(seed int64, mIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := loopgen.Loop(rng)
		m := machines[int(mIdx)%len(machines)]
		in, s := schedule(t, g, m)
		alloc := AllocateMVE(in, s)
		if err := alloc.Validate(in, s); err != nil {
			t.Logf("seed %d on %s: %v", seed, m.Name, err)
			return false
		}
		// Sanity: register count at least the per-cluster MaxLive-ish
		// lower bound and not absurdly high.
		lbTotal, _ := LowerBound(in, s)
		if alloc.TotalRegisters() < lbTotal {
			t.Logf("allocated %d < lower bound %d", alloc.TotalRegisters(), lbTotal)
			return false
		}
		live, _ := verify.MaxLive(in, s)
		if alloc.TotalRegisters() > 4*live+4*alloc.Factor+8 {
			t.Logf("allocated %d registers vs MaxLive %d: implausibly wasteful", alloc.TotalRegisters(), live)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllocationSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m := machine.NewBusedGP(2, 2, 1)
	for i := 0; i < 20; i++ {
		g := loopgen.Loop(rng)
		in, s := schedule(t, g, m)
		alloc := AllocateMVE(in, s)
		for _, b := range alloc.Bindings {
			if in.ClusterOf == nil {
				continue
			}
			if in.Graph.Nodes[b.Value].Kind == ddg.OpCopy {
				// A copy's registers live in its target clusters.
				found := false
				for _, target := range in.CopyTargets[b.Value] {
					if target == b.Cluster {
						found = true
					}
				}
				if !found {
					t.Fatalf("copy %d bound in cluster %d, not a target %v",
						b.Value, b.Cluster, in.CopyTargets[b.Value])
				}
				continue
			}
			if in.ClusterOf[b.Value] != b.Cluster {
				t.Fatalf("binding cluster %d != value cluster %d", b.Cluster, in.ClusterOf[b.Value])
			}
		}
	}
}

func TestArcsOverlap(t *testing.T) {
	cases := []struct {
		s1, l1, s2, l2, circle int
		want                   bool
	}{
		{0, 2, 1, 2, 8, true},  // plain overlap
		{0, 2, 2, 2, 8, false}, // adjacent
		{6, 4, 0, 2, 8, true},  // wraparound hits [0,2)
		{6, 2, 0, 2, 8, false}, // wraparound stops at 0
		{0, 8, 5, 1, 8, true},  // full-circle arc hits everything
		{3, 1, 3, 1, 8, true},  // identical
		{0, 1, 4, 1, 8, false}, // disjoint
		{7, 3, 1, 1, 8, true},  // wrap covers [7,0,1): hits [1,2)
		{7, 2, 1, 1, 8, false}, // wrap covers [7,0): misses [1,2)
	}
	for _, tc := range cases {
		if got := arcsOverlap(tc.s1, tc.l1, tc.s2, tc.l2, tc.circle); got != tc.want {
			t.Errorf("arcsOverlap(%d,%d, %d,%d, %d) = %v, want %v",
				tc.s1, tc.l1, tc.s2, tc.l2, tc.circle, got, tc.want)
		}
	}
}

func TestLongLifetimeGetsMultipleRegisters(t *testing.T) {
	// A value live for 7 cycles at II=3 needs MVE factor 3: its three
	// in-flight instances must hold three distinct registers.
	g := ddg.NewGraph(2, 1)
	a := g.AddNode(ddg.OpALU, "")
	b := g.AddNode(ddg.OpStore, "")
	g.AddEdge(a, b, 2)
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 3}
	s := &sched.Schedule{II: 3, CycleOf: []int{0, 1}}
	alloc := AllocateMVE(in, s)
	if err := alloc.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if alloc.Factor != 3 {
		t.Fatalf("factor = %d, want 3", alloc.Factor)
	}
	regs := map[int]bool{}
	for _, bind := range alloc.Bindings {
		if bind.Value == a {
			regs[bind.Register] = true
		}
	}
	if len(regs) != 3 {
		t.Errorf("value a holds %d distinct registers, want 3", len(regs))
	}
}

func TestStoresAndBranchesGetNoRegisters(t *testing.T) {
	g := ddg.NewGraph(2, 0)
	g.AddNode(ddg.OpStore, "")
	g.AddNode(ddg.OpBranch, "")
	m := machine.NewUnifiedGP(4)
	in := sched.Input{Graph: g, Machine: m, II: 1}
	s := &sched.Schedule{II: 1, CycleOf: []int{0, 0}}
	if ls := Lifetimes(in, s); len(ls) != 0 {
		t.Errorf("got %d lifetimes, want 0", len(ls))
	}
	alloc := AllocateMVE(in, s)
	if alloc.TotalRegisters() != 0 {
		t.Errorf("allocated %d registers for no values", alloc.TotalRegisters())
	}
}
