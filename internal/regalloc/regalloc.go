// Package regalloc analyses and allocates the registers of a modulo
// schedule, the concern that motivates clustering in the first place:
// each cluster's register file only has to hold the values produced on
// that cluster. It implements:
//
//   - value lifetimes of the steady-state kernel;
//   - the modulo-variable-expansion factor (Lam, PLDI 1988): the
//     kernel unroll needed on machines without rotating register
//     files, because a value whose lifetime exceeds II would be
//     overwritten by the next iteration's instance;
//   - an MVE register allocator: the kernel is unrolled by that
//     factor and the per-iteration value instances are colored as
//     circular arcs on the unrolled kernel, giving a valid register
//     binding and per-cluster register counts.
package regalloc

import (
	"fmt"
	"sort"

	"clustersched/internal/ddg"
	"clustersched/internal/sched"
)

// Lifetime is the register occupancy of one value of the kernel.
type Lifetime struct {
	Value   int // producing node
	Cluster int // register file holding the value
	Start   int // first cycle the value exists (def + latency)
	Len     int // cycles until after the last use (>= 1 for produced values)
}

// producesValue reports whether a node kind defines a register.
func producesValue(k ddg.OpKind) bool {
	return k != ddg.OpStore && k != ddg.OpBranch
}

// Lifetimes computes every value lifetime of the schedule. Values with
// no consumers still occupy their register for one cycle. A copy's
// result physically lands in each *target* cluster's register file (a
// broadcast copy with several targets writes several files), so a copy
// yields one lifetime per target cluster, each ending at the last use
// by that cluster's consumers.
func Lifetimes(in sched.Input, s *sched.Schedule) []Lifetime {
	g := in.Graph
	lat := in.Machine.Latency
	var out []Lifetime
	for v := 0; v < g.NumNodes(); v++ {
		if !producesValue(g.Nodes[v].Kind) {
			continue
		}
		start := s.CycleOf[v] + lat(g.Nodes[v].Kind)
		if g.Nodes[v].Kind == ddg.OpCopy && in.CopyTargets != nil {
			for _, target := range in.CopyTargets[v] {
				end := start + 1
				for _, e := range g.OutEdges(v) {
					if clusterOf(in, e.To) != target {
						continue
					}
					if use := s.CycleOf[e.To] + s.II*e.Distance + 1; use > end {
						end = use
					}
				}
				out = append(out, Lifetime{Value: v, Cluster: target, Start: start, Len: end - start})
			}
			continue
		}
		end := start + 1
		for _, e := range g.OutEdges(v) {
			if use := s.CycleOf[e.To] + s.II*e.Distance + 1; use > end {
				end = use
			}
		}
		out = append(out, Lifetime{Value: v, Cluster: clusterOf(in, v), Start: start, Len: end - start})
	}
	return out
}

func clusterOf(in sched.Input, n int) int {
	if in.ClusterOf == nil {
		return 0
	}
	return in.ClusterOf[n]
}

// MVEFactor returns the kernel unroll factor modulo variable expansion
// needs: the maximum ceil(lifetime/II) over all values. A factor of 1
// means no value outlives its iteration's slot and the plain kernel is
// safe even without rotating registers.
func MVEFactor(in sched.Input, s *sched.Schedule) int {
	factor := 1
	for _, l := range Lifetimes(in, s) {
		if f := (l.Len + s.II - 1) / s.II; f > factor {
			factor = f
		}
	}
	return factor
}

// LowerBound returns Rau's averaged lower bound on register need:
// ceil(sum of lifetimes / II), machine-wide and per cluster.
func LowerBound(in sched.Input, s *sched.Schedule) (total int, perCluster []int) {
	perSum := make([]int, in.Machine.NumClusters())
	sum := 0
	for _, l := range Lifetimes(in, s) {
		sum += l.Len
		perSum[l.Cluster] += l.Len
	}
	perCluster = make([]int, len(perSum))
	for i, v := range perSum {
		perCluster[i] = (v + s.II - 1) / s.II
	}
	return (sum + s.II - 1) / s.II, perCluster
}

// Binding is one value instance's register assignment: in an
// MVE-unrolled kernel each of the Factor unrolled iterations writes
// the value into its own register.
type Binding struct {
	Lifetime
	Instance int // which unrolled copy (0..Factor-1)
	Register int // register index within the cluster's file
}

// Allocation is a complete MVE register allocation.
type Allocation struct {
	Factor         int // kernel unroll factor
	RegsPerCluster []int
	Bindings       []Binding
}

// TotalRegisters sums the per-cluster register files.
func (a *Allocation) TotalRegisters() int {
	t := 0
	for _, r := range a.RegsPerCluster {
		t += r
	}
	return t
}

// AllocateMVE unrolls the kernel by the MVE factor and colors each
// cluster's value instances as circular arcs over the unrolled kernel
// length (first-fit, longest arcs first). The result is a valid
// register binding: no two arcs sharing a register overlap on the
// circle, which Validate re-checks independently.
func AllocateMVE(in sched.Input, s *sched.Schedule) *Allocation {
	factor := MVEFactor(in, s)
	circle := factor * s.II
	alloc := &Allocation{
		Factor:         factor,
		RegsPerCluster: make([]int, in.Machine.NumClusters()),
	}

	byCluster := make([][]Binding, in.Machine.NumClusters())
	for _, l := range Lifetimes(in, s) {
		for i := 0; i < factor; i++ {
			b := Binding{Lifetime: l, Instance: i, Register: -1}
			byCluster[l.Cluster] = append(byCluster[l.Cluster], b)
		}
	}

	for cl, arcs := range byCluster {
		// Longest first, then earliest start, then value ID: stable and
		// effective for first-fit circular coloring.
		sort.Slice(arcs, func(i, j int) bool {
			a, b := arcs[i], arcs[j]
			if a.Len != b.Len {
				return a.Len > b.Len
			}
			if sa, sb := a.arcStart(s.II, circle), b.arcStart(s.II, circle); sa != sb {
				return sa < sb
			}
			if a.Value != b.Value {
				return a.Value < b.Value
			}
			return a.Instance < b.Instance
		})
		var regs [][]Binding // per register: its assigned arcs
		for i := range arcs {
			placed := false
			for r := 0; r < len(regs) && !placed; r++ {
				if fits(arcs[i], regs[r], s.II, circle) {
					arcs[i].Register = r
					regs[r] = append(regs[r], arcs[i])
					placed = true
				}
			}
			if !placed {
				arcs[i].Register = len(regs)
				regs = append(regs, []Binding{arcs[i]})
			}
		}
		alloc.RegsPerCluster[cl] = len(regs)
		alloc.Bindings = append(alloc.Bindings, arcs...)
	}
	return alloc
}

// arcStart is where the instance's lifetime begins on the circle.
func (b Binding) arcStart(ii, circle int) int {
	s := (b.Start + b.Instance*ii) % circle
	if s < 0 {
		s += circle
	}
	return s
}

// fits reports whether arc a overlaps none of the register's arcs.
func fits(a Binding, assigned []Binding, ii, circle int) bool {
	for _, b := range assigned {
		if arcsOverlap(a.arcStart(ii, circle), a.Len, b.arcStart(ii, circle), b.Len, circle) {
			return false
		}
	}
	return true
}

// arcsOverlap tests two circular arcs (start, length) on a circle.
func arcsOverlap(s1, l1, s2, l2, circle int) bool {
	d12 := (s2 - s1) % circle
	if d12 < 0 {
		d12 += circle
	}
	d21 := (s1 - s2) % circle
	if d21 < 0 {
		d21 += circle
	}
	return d12 < l1 || d21 < l2
}

// Validate independently re-checks the allocation: every value
// instance bound, bindings within the per-cluster register counts, and
// no same-register overlap.
func (a *Allocation) Validate(in sched.Input, s *sched.Schedule) error {
	circle := a.Factor * s.II
	wantInstances := len(Lifetimes(in, s)) * a.Factor
	if len(a.Bindings) != wantInstances {
		return fmt.Errorf("regalloc: %d bindings for %d value instances", len(a.Bindings), wantInstances)
	}
	type key struct{ cluster, reg int }
	byReg := map[key][]Binding{}
	for _, b := range a.Bindings {
		if b.Register < 0 || b.Register >= a.RegsPerCluster[b.Cluster] {
			return fmt.Errorf("regalloc: value %d instance %d register %d out of range", b.Value, b.Instance, b.Register)
		}
		byReg[key{b.Cluster, b.Register}] = append(byReg[key{b.Cluster, b.Register}], b)
	}
	for k, arcs := range byReg {
		for i := 0; i < len(arcs); i++ {
			for j := i + 1; j < len(arcs); j++ {
				if arcsOverlap(arcs[i].arcStart(s.II, circle), arcs[i].Len,
					arcs[j].arcStart(s.II, circle), arcs[j].Len, circle) {
					return fmt.Errorf("regalloc: cluster %d register %d double-booked by values %d/%d and %d/%d",
						k.cluster, k.reg, arcs[i].Value, arcs[i].Instance, arcs[j].Value, arcs[j].Instance)
				}
			}
		}
	}
	return nil
}
