// Package cli holds the small helpers the command-line tools share:
// the machine-spec mini-language ("gp:4:4:2", "fs:2:2:1", "grid:2",
// "ring:6:2") and the assignment-variant and scheduler name parsers.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"clustersched/internal/assign"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
)

// ParseMachine builds a machine from a spec string:
//
//	gp:<clusters>:<buses>:<ports>    bused general-purpose clusters
//	fs:<clusters>:<buses>:<ports>    bused fully specialized clusters
//	grid:<ports>                     the paper's 4-cluster grid
//	ring:<clusters>:<ports>          point-to-point ring
//	unified:<width>                  non-clustered baseline
func ParseMachine(spec string) (*machine.Config, error) {
	parts := strings.Split(spec, ":")
	nums := make([]int, 0, 3)
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad machine spec %q: %q is not a number", spec, p)
		}
		nums = append(nums, v)
	}
	need := func(n int, shape string) error {
		if len(nums) != n {
			return fmt.Errorf("machine spec %q: want %s", spec, shape)
		}
		return nil
	}
	switch parts[0] {
	case "gp":
		if err := need(3, "gp:clusters:buses:ports"); err != nil {
			return nil, err
		}
		return machine.NewBusedGP(nums[0], nums[1], nums[2]), nil
	case "fs":
		if err := need(3, "fs:clusters:buses:ports"); err != nil {
			return nil, err
		}
		return machine.NewBusedFS(nums[0], nums[1], nums[2]), nil
	case "grid":
		if err := need(1, "grid:ports"); err != nil {
			return nil, err
		}
		return machine.NewGrid4(nums[0]), nil
	case "ring":
		if err := need(2, "ring:clusters:ports"); err != nil {
			return nil, err
		}
		return machine.NewRing(nums[0], nums[1]), nil
	case "unified":
		if err := need(1, "unified:width"); err != nil {
			return nil, err
		}
		return machine.NewUnifiedGP(nums[0]), nil
	default:
		return nil, fmt.Errorf("unknown machine family %q (want gp, fs, grid, ring, or unified)", parts[0])
	}
}

// ParseVariant resolves an assignment-variant name.
func ParseVariant(s string) (assign.Variant, error) {
	switch strings.ToLower(s) {
	case "simple":
		return assign.Simple, nil
	case "simple-iterative":
		return assign.SimpleIterative, nil
	case "heuristic":
		return assign.Heuristic, nil
	case "heuristic-iterative":
		return assign.HeuristicIterative, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want simple, simple-iterative, heuristic, heuristic-iterative)", s)
	}
}

// ParseScheduler resolves a phase-two scheduler name.
func ParseScheduler(s string) (pipeline.Scheduler, error) {
	switch strings.ToLower(s) {
	case "ims":
		return pipeline.IMS, nil
	case "sms":
		return pipeline.SMS, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (want ims or sms)", s)
	}
}
