package cli

import (
	"strings"
	"testing"

	"clustersched/internal/assign"
	"clustersched/internal/machine"
	"clustersched/internal/pipeline"
)

func TestParseMachineSpecs(t *testing.T) {
	cases := []struct {
		spec     string
		clusters int
		network  machine.Network
	}{
		{"gp:2:2:1", 2, machine.Broadcast},
		{"gp:8:7:3", 8, machine.Broadcast},
		{"fs:4:4:2", 4, machine.Broadcast},
		{"grid:2", 4, machine.PointToPoint},
		{"ring:6:2", 6, machine.PointToPoint},
		{"unified:16", 1, machine.Broadcast},
	}
	for _, tc := range cases {
		m, err := ParseMachine(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: invalid machine: %v", tc.spec, err)
		}
		if m.NumClusters() != tc.clusters || m.Network != tc.network {
			t.Errorf("%s: got %d clusters / %v", tc.spec, m.NumClusters(), m.Network)
		}
	}
}

func TestParseMachineErrors(t *testing.T) {
	for _, spec := range []string{
		"gp:2:2", "gp:a:b:c", "fs:1", "grid", "grid:1:2", "ring:4",
		"unified", "vliw:4:4:2", "",
	} {
		if _, err := ParseMachine(spec); err == nil {
			t.Errorf("ParseMachine(%q) accepted bad spec", spec)
		}
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]assign.Variant{
		"simple":              assign.Simple,
		"Simple-Iterative":    assign.SimpleIterative,
		"heuristic":           assign.Heuristic,
		"HEURISTIC-ITERATIVE": assign.HeuristicIterative,
	}
	for s, want := range cases {
		got, err := ParseVariant(s)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseVariant("optimal"); err == nil || !strings.Contains(err.Error(), "unknown variant") {
		t.Errorf("bad variant accepted: %v", err)
	}
}

func TestParseScheduler(t *testing.T) {
	if s, err := ParseScheduler("IMS"); err != nil || s != pipeline.IMS {
		t.Errorf("ParseScheduler(IMS) = %v, %v", s, err)
	}
	if s, err := ParseScheduler("sms"); err != nil || s != pipeline.SMS {
		t.Errorf("ParseScheduler(sms) = %v, %v", s, err)
	}
	if _, err := ParseScheduler("greedy"); err == nil {
		t.Error("bad scheduler accepted")
	}
}
