package server

import (
	"testing"
)

const fleetDotDDG = `loop dotproduct
node 0 load a[i]
node 1 load b[i]
node 2 fmul
node 3 fadd s
edge 0 2 0
edge 1 2 0
edge 2 3 0
edge 3 3 1
end
`

// TestKeyForRequestMatchesHandlerKey pins the contract the fleet's
// ring routing stands on: the key the balancer computes for a request
// is the key the worker's handler will look up.
func TestKeyForRequestMatchesHandlerKey(t *testing.T) {
	reqs := []ScheduleRequest{
		{DDG: fleetDotDDG, Machine: "gp:2:2:1"},
		{DDG: fleetDotDDG, Machine: "gp:2:2:1", Name: "override"},
		{DDG: fleetDotDDG, Machine: "fs:4:4:2", Variant: "simple", Scheduler: "sms"},
		{DDG: fleetDotDDG, Machine: "gp:2:2:1", BudgetPerNode: 9, MaxIISlack: 3},
	}
	s := New(Config{})
	for _, req := range reqs {
		m, opts, optID, err := s.resolveCommon(req.Machine, req.Variant, req.Scheduler, req.BudgetPerNode, req.MaxIISlack)
		if err != nil {
			t.Fatalf("resolveCommon(%+v): %v", req, err)
		}
		loops, err := parseLoops(req.DDG, req.Source)
		if err != nil {
			t.Fatalf("parseLoops: %v", err)
		}
		job := s.buildJob(req.Name, req.Machine, loops[0], m, opts, optID)
		key, err := KeyForRequest(req)
		if err != nil {
			t.Fatalf("KeyForRequest(%+v): %v", req, err)
		}
		if key != job.key {
			t.Errorf("KeyForRequest = %s, handler key = %s (req %+v)", key, job.key, req)
		}
	}
}

// TestKeyForRequestRejectsWhatTheHandlerRejects: requests the handler
// would refuse yield an error, not a bogus routing key.
func TestKeyForRequestRejects(t *testing.T) {
	bad := []ScheduleRequest{
		{DDG: fleetDotDDG},                                            // no machine
		{Machine: "gp:2:2:1"},                                         // no loop
		{DDG: fleetDotDDG, Machine: "nonsense"},                       // bad machine
		{DDG: fleetDotDDG, Machine: "gp:2:2:1", Variant: "wat"},       // bad variant
		{DDG: fleetDotDDG, Machine: "gp:2:2:1", Scheduler: "wat"},     // bad scheduler
		{DDG: fleetDotDDG + fleetDotDDG, Machine: "gp:2:2:1"},         // two loops
		{DDG: fleetDotDDG, Source: "loop x { }", Machine: "gp:2:2:1"}, // both payloads
	}
	for _, req := range bad {
		if key, err := KeyForRequest(req); err == nil {
			t.Errorf("KeyForRequest(%+v) = %s, want error", req, key)
		}
	}
}
